(** Process credentials, modeled on Linux [struct cred] (paper §4.1).

    A committed credential is immutable and carries a unique [id] (the analog
    of the kernel object's address).  Updates follow the kernel's
    copy-on-write convention: [prepare] yields a mutable builder, [commit]
    produces the new credential — and, as in the paper's optimization, if the
    contents did not actually change, [commit] returns the {e original}
    credential so attached caches (the PCC) keep being shared.

    Subsystems attach private per-credential data through the extensible
    [slot] type; the optimized dcache stores its prefix-check caches there. *)

type t

type slot = ..
(** Extensible per-credential storage (the analog of [cred->security]). *)

val make : ?groups:int list -> ?label:string -> uid:int -> gid:int -> unit -> t
val root : unit -> t
(** A fresh uid 0 / gid 0 credential. *)

val id : t -> int
val uid : t -> int
val gid : t -> int
val groups : t -> int list
(** Supplementary groups, sorted. *)

val label : t -> string option
(** MAC security context (e.g. an SELinux-style domain). *)

val in_group : t -> int -> bool
(** True iff [gid] matches the primary or a supplementary group. *)

val equal_contents : t -> t -> bool
(** Content equality, ignoring [id] and slots. *)

(** Mutable builder for the COW update protocol. *)
module Builder : sig
  type cred := t
  type t

  val set_uid : t -> int -> unit
  val set_gid : t -> int -> unit
  val set_groups : t -> int list -> unit
  val set_label : t -> string option -> unit
  val commit : t -> cred
  (** Returns the original credential when nothing changed (sharing its
      caches); otherwise a fresh credential with a new [id]. *)
end

val prepare : t -> Builder.t

val find_slot : t -> (slot -> 'a option) -> 'a option
(** [find_slot t f] returns the first slot for which [f] is [Some _]. *)

val slots : t -> slot list
(** The raw slot list, for subsystems that scan it with their own top-level
    matcher instead of paying {!find_slot}'s [Some] wrapper per probe. *)

val add_slot : t -> slot -> unit
