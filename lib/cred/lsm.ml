open Dcache_types

type hooks = {
  name : string;
  inode_permission : Cred.t -> Attr.t -> Access.t -> bool;
}

type registry = { mutable modules : hooks list (* registration order *) }

let create () = { modules = [] }
let register registry hooks = registry.modules <- registry.modules @ [ hooks ]
let names registry = List.map (fun h -> h.name) registry.modules

let dac_permission cred (attr : Attr.t) mask =
  let wants_exec = mask land Access.may_exec <> 0 in
  if Cred.uid cred = 0 then
    (* CAP_DAC_OVERRIDE: root bypasses rw checks; executing a regular file
       still requires at least one x bit. *)
    (not wants_exec)
    || (not (File_kind.equal attr.kind File_kind.Regular))
    || attr.mode land 0o111 <> 0
  else begin
    let class_bits =
      if Cred.uid cred = attr.uid then Mode.owner_bits attr.mode
      else if Cred.in_group cred attr.gid then Mode.group_bits attr.mode
      else Mode.other_bits attr.mode
    in
    (* MAY_* masks and rwx class bits share the same encoding (r=4 w=2 x=1). *)
    class_bits land mask = mask
  end

(* Top-level recursion instead of [List.for_all (fun h -> ...)]: the closure
   capturing cred/attr/mask costs 6 minor words per call, and this sits on
   zero-allocation paths (batched access probes, walk exec checks). *)
let rec all_permit modules cred attr mask =
  match modules with
  | [] -> true
  | h :: tl -> h.inode_permission cred attr mask && all_permit tl cred attr mask

let permission registry cred attr mask =
  dac_permission cred attr mask && all_permit registry.modules cred attr mask

let counting hooks =
  let calls = ref 0 in
  let wrapped cred attr mask =
    incr calls;
    hooks.inode_permission cred attr mask
  in
  ({ hooks with inode_permission = wrapped }, fun () -> !calls)
