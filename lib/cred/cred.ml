type slot = ..

type t = {
  id : int;
  uid : int;
  gid : int;
  groups : int list;
  label : string option;
  mutable slots : slot list;
}

let next_id = Atomic.make 1
let fresh_id () = Atomic.fetch_and_add next_id 1

let make ?(groups = []) ?label ~uid ~gid () =
  { id = fresh_id (); uid; gid; groups = List.sort_uniq compare groups; label; slots = [] }

let root () = make ~uid:0 ~gid:0 ()
let id t = t.id
let uid t = t.uid
let gid t = t.gid
let groups t = t.groups
let label t = t.label
let in_group t g = t.gid = g || List.mem g t.groups

let equal_contents a b =
  a.uid = b.uid && a.gid = b.gid && a.groups = b.groups && a.label = b.label

module Builder = struct
  type cred = t

  type t = {
    original : cred;
    mutable b_uid : int;
    mutable b_gid : int;
    mutable b_groups : int list;
    mutable b_label : string option;
  }

  let set_uid b uid = b.b_uid <- uid
  let set_gid b gid = b.b_gid <- gid
  let set_groups b groups = b.b_groups <- List.sort_uniq compare groups
  let set_label b label = b.b_label <- label

  let commit b =
    let candidate =
      {
        id = 0;
        uid = b.b_uid;
        gid = b.b_gid;
        groups = b.b_groups;
        label = b.b_label;
        slots = [];
      }
    in
    (* The paper's commit_creds optimization: identical contents keep the old
       cred object, so the attached PCC continues to be shared. *)
    if equal_contents candidate b.original then b.original
    else { candidate with id = fresh_id () }
end

let prepare t =
  {
    Builder.original = t;
    b_uid = t.uid;
    b_gid = t.gid;
    b_groups = t.groups;
    b_label = t.label;
  }

let slots t = t.slots

let find_slot t f =
  let rec go = function
    | [] -> None
    | slot :: rest -> ( match f slot with Some _ as r -> r | None -> go rest)
  in
  go t.slots

let add_slot t slot = t.slots <- slot :: t.slots
