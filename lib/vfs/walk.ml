open Dcache_types
open Types
module Lsm = Dcache_cred.Lsm
module Counter = Dcache_util.Stats.Counter
module Trace = Dcache_util.Trace
module Profiler = Dcache_util.Profiler

type ctx = {
  cred : Dcache_cred.Cred.t;
  root : path_ref;
  cwd : path_ref;
  ns : namespace;
  registry : Lsm.registry;
}

type mode = Rcu | Ref

type flags = { follow_last : bool; must_dir : bool; collect : bool }

let default_flags = { follow_last = true; must_dir = false; collect = false }

type result_ = {
  outcome : (path_ref, Errno.t) result;
  visited : path_ref list;
  absolute : bool;
}

exception Need_refwalk

type parent_result = {
  parent : path_ref;
  last : string;
  child : dentry option;
  trailing_slash : bool;
  p_visited : path_ref list;
  p_absolute : bool;
}

let max_symlink_depth = 40

(* Internal control-flow exception carrying a definitive walk error. *)
exception Walk_error of Errno.t

(* Work items: path components, plus a marker that restores the literal
   alias chain after a spliced symlink target has been consumed (§4.2) —
   the target's own components are not part of the literal lookup path. *)
type item = Comp of Path.component | Resume_alias of dentry option

let items_of comps = List.map (fun c -> Comp c) comps

(* Trailing alias-resume markers do not count as remaining components. *)
let rec no_more_components = function
  | [] -> true
  | Resume_alias _ :: rest -> no_more_components rest
  | Comp _ :: _ -> false

let check_exec ctx inode =
  Lsm.permission ctx.registry ctx.cred (Inode.attr inode) Access.may_exec

let may_lookup ctx inode =
  let allowed = Phases.timed Phases.Permission (fun () -> check_exec ctx inode) in
  if not allowed then raise (Walk_error Errno.EACCES)

(* Require a positive directory to descend into; promotes Partial dentries
   (readdir-cached children, §5.1) which mutates the cache, hence Ref-only. *)
let dir_inode_of mode d =
  match d.d_state with
  | Positive inode ->
    if Inode.is_dir inode then inode else raise (Walk_error Errno.ENOTDIR)
  | Partial { p_kind; _ } ->
    if not (File_kind.equal p_kind File_kind.Directory) then raise (Walk_error Errno.ENOTDIR)
    else if mode = Rcu then raise Need_refwalk
    else begin
      match Dcache.promote d with
      | Ok inode -> inode
      | Error e -> raise (Walk_error e)
    end
  | Negative e -> raise (Walk_error e)

let inode_of mode d =
  match d.d_state with
  | Positive inode -> Some inode
  | Partial _ ->
    if mode = Rcu then raise Need_refwalk
    else begin
      match Dcache.promote d with
      | Ok inode -> Some inode
      | Error e -> raise (Walk_error e)
    end
  | Negative _ -> None

(* Dot-dot: climb, exiting mounts at their roots, but never above the
   process root (the chroot barrier). *)
let rec follow_dotdot ctx (cur : path_ref) =
  if cur.dentry == ctx.root.dentry && cur.mnt == ctx.root.mnt then cur
  else begin
    match Mount.follow_up cur with
    | Some up -> follow_dotdot ctx up
    | None -> (
      match cur.dentry.d_parent with
      | Some parent -> { cur with dentry = parent }
      | None -> cur)
  end

(* Close-to-open consistency (§4.3): on a revalidating (stateless network)
   file system a cached hit must still be checked at the server; a stale
   entry is dropped and refilled. *)
let revalidate_hit mode t child =
  match child.d_sb.sb_fs.Dcache_fs.Fs_intf.revalidate with
  | None -> true
  | Some check -> (
    let ino =
      match child.d_state with
      | Positive inode -> Some (Inode.ino inode)
      | Partial { p_ino; _ } -> Some p_ino
      | Negative _ -> None
    in
    match ino with
    | None -> true (* stateless clients do not cache negatives *)
    | Some ino -> (
      Counter.incr (Dcache.counters t) "netfs_revalidate";
      match check ino with
      | Ok true -> true
      | Ok false | Error _ ->
        if mode = Rcu then raise Need_refwalk;
        Counter.incr (Dcache.counters t) "netfs_stale_dentry";
        (* A stale child proves the parent's cached listing diverged from
           the server; its completeness claim cannot survive, or the refill
           below would be answered ENOENT from the cache itself. *)
        (match child.d_parent with
        | Some parent -> Dcache.clear_complete parent
        | None -> ());
        Dcache.unhash t child;
        false))

(* The dcache probe + miss fill for one component. *)
let step mode t (cur : path_ref) name =
  let cached = Phases.timed Phases.Table_lookup (fun () -> Dcache.lookup t cur.dentry name) in
  (* Per-mount negative invalidation: a negative earned under an older
     generation is a miss, and a Ref walk drops it so the refill below can
     re-earn the verdict (Rcu leaves the cleanup to the next Ref walk —
     treating the hit as a miss is already correct). *)
  let cached =
    match cached with
    | Some child when dentry_is_negative child && not (Dcache.negative_current child) ->
      if mode = Ref then begin
        Counter.incr (Dcache.counters t) "walk_stale_negative";
        Dcache.unhash t child
      end;
      None
    | c -> c
  in
  match cached with
  | Some child when revalidate_hit mode t child ->
    if dentry_is_negative child then Counter.incr (Dcache.counters t) "walk_negative_hit";
    Some child
  | Some _ (* stale and dropped: fall through to a fresh fill *)
  | None ->
    if Dcache.is_complete t cur.dentry then begin
      (* A complete directory answers misses definitively without consulting
         the file system (§5.1).  In Rcu mode skip caching the negative; the
         answer is still correct. *)
      Counter.incr (Dcache.counters t) "complete_dir_negative";
      Trace.stamp Trace.ev_complete_neg 0;
      if !Profiler.armed then
        Profiler.hh_record cur.dentry.d_id cur.dentry.d_name Profiler.m_neg;
      if mode = Rcu then None
      else begin
        match Dcache.add_child t cur.dentry name (Negative Errno.ENOENT) with
        | Ok child -> Some child
        | Error _ -> None
      end
    end
    else begin
      if mode = Rcu then raise Need_refwalk;
      (* Counted in Ref mode only, or the Rcu attempt and its Ref replay
         would attribute the same miss twice. *)
      Trace.bump_cause Trace.cause_dir_incomplete;
      match Dcache.fill t cur.dentry name with
      | Ok child -> Some child
      | Error Errno.ENOENT -> None (* fs without negative caching *)
      | Error e -> raise (Walk_error e)
    end

(* Deep negative dentries (§5.2): after a definitive failure at [d], cache
   the remaining plain-name components as a chain of negative children so a
   repeat lookup of the full path can hit on the fastpath. *)
let build_deep_negatives mode t d errno rest ~record =
  if mode = Ref && (Dcache.config t).Config.deep_negative then begin
    let rec chain parent = function
      | [] -> ()
      | Comp (Path.Name name) :: more -> (
        match Dcache.lookup t parent name with
        | Some child ->
          if dentry_is_negative child then begin
            record child;
            chain child more
          end
        | None -> (
          match Dcache.add_child t parent name (Negative errno) with
          | Ok child ->
            Counter.incr (Dcache.counters t) "deep_negative_created";
            record child;
            chain child more
          | Error _ -> ()))
      | (Comp (Path.Cur | Path.Up) | Resume_alias _) :: _ -> ()
    in
    chain d rest
  end

(* Symlink alias dentries (§4.2): under an alias parent, mirror the resolved
   component as a child whose [d_alias] redirects to the real dentry. *)
let get_or_make_alias mode t alias_parent name real =
  match Dcache.lookup t alias_parent name with
  | Some a ->
    if not (match a.d_alias with Some target -> target == real | None -> false) then begin
      if mode = Rcu then raise Need_refwalk;
      if dentry_is_negative a && not (dentry_is_negative real) then Dcache.neg_forget t a;
      let track = dentry_is_negative real && not (dentry_is_negative a) in
      a.d_alias <- Some real;
      a.d_state <- real.d_state;
      a.d_target_sig <- None;
      if track then Dcache.neg_track t a;
      Dcache.invalidate_structure t a |> ignore
    end;
    Some a
  | None ->
    if mode = Rcu then None
    else begin
      match Dcache.add_child t alias_parent name real.d_state with
      | Ok a ->
        a.d_alias <- Some real;
        Counter.incr (Dcache.counters t) "symlink_alias_created";
        Some a
      | Error _ -> None
    end

let split_components config path =
  match Path.split path with
  | Ok comps ->
    if config.Config.dotdot = Config.Dotdot_lexical then Path.lexical_normalize comps
    else comps
  | Error e -> raise (Walk_error e)

let walk_internal mode t ctx ~flags ~stop_at_parent ?start_at path =
  let config = Dcache.config t in
  let counters = Dcache.counters t in
  Counter.incr counters "walk_slowpath";
  Trace.stamp Trace.ev_slowpath 0;
  let visited = ref [] in
  let push r = if flags.collect then visited := r :: !visited in
  (* A resumed walk is never "absolute", whatever its suffix text looks
     like: it starts at an interior directory reference, so population must
     apply the directory-reference rule against that start, not the root. *)
  let absolute =
    match start_at with Some _ -> false | None -> Path.is_absolute path
  in
  let trailing_slash = Path.has_trailing_slash path in
  let items =
    Phases.timed Phases.Scan_hash (fun () -> items_of (split_components config path))
  in
  let start =
    Phases.timed Phases.Init (fun () ->
        match start_at with
        | Some r -> r
        | None -> if absolute then Mount.traverse_mounts ctx.root else ctx.cwd)
  in
  (* [alias] is the current literal dentry when the walk has passed through
     a symlink; [None] when literal = real. *)
  let rec loop (cur : path_ref) alias depth items =
    match items with
    | Resume_alias a :: rest -> loop cur a depth rest
    | [] ->
      if stop_at_parent then raise (Walk_error Errno.EINVAL)
      else begin
        let final_literal = match alias with Some a -> a | None -> cur.dentry in
        (match !visited with
        | hd :: _ when hd.dentry == final_literal -> ()
        | _ -> push { cur with dentry = final_literal });
        `Final cur
      end
    | Comp comp :: rest -> (
      let dir = dir_inode_of mode cur.dentry in
      may_lookup ctx dir;
      match comp with
      | Path.Cur -> loop cur alias depth rest
      | Path.Up -> loop (follow_dotdot ctx cur) None depth rest
      | Path.Name name ->
        if stop_at_parent && no_more_components rest then `Parent (cur, name)
        else handle_name cur alias depth name rest)
  and handle_name (cur : path_ref) alias depth name rest =
    (* Per-component accounting: lets the deepmiss benchmark verify that a
       prefix-resumed miss walks only the uncached suffix. *)
    Counter.incr counters "walk_components";
    let is_last = no_more_components rest in
    match step mode t cur name with
    | None ->
      (* Definitive miss, nothing cacheable. *)
      raise (Walk_error Errno.ENOENT)
    | Some child -> (
      match child.d_state with
      | Negative errno ->
        (* Record the negative leaf so the caller can publish it in the
           DLHT; chain deeper negatives for the remaining components. *)
        let literal =
          match alias with
          | Some ap -> get_or_make_alias mode t ap name child
          | None -> Some child
        in
        (match literal with Some l -> push { cur with dentry = l } | None -> ());
        build_deep_negatives mode t child errno rest
          ~record:(fun deep -> push { cur with dentry = deep });
        raise (Walk_error errno)
      | Partial _ | Positive _ -> (
        let inode = inode_of mode child in
        let inode = match inode with Some i -> i | None -> raise (Walk_error Errno.ENOENT) in
        match Inode.kind inode with
        | File_kind.Symlink when (not is_last) || flags.follow_last ->
          if depth + 1 > max_symlink_depth then raise (Walk_error Errno.ELOOP);
          let target =
            match Inode.symlink_target inode with
            | Ok target -> target
            | Error e -> raise (Walk_error e)
          in
          let target_items = items_of (split_components config target) in
          Counter.incr counters "symlink_resolved";
          (* Literal dentry standing for this symlink in the lookup path;
             the spliced target components are walked with no alias chain
             and the literal chain resumes afterwards. *)
          let symlink_literal =
            if config.Config.symlink_aliases then begin
              match alias with
              | Some ap -> get_or_make_alias mode t ap name child
              | None -> Some child
            end
            else None
          in
          let cur' =
            if Path.is_absolute target then Mount.traverse_mounts ctx.root else cur
          in
          loop cur' None (depth + 1)
            (target_items @ (Resume_alias symlink_literal :: rest))
        | kind ->
          if (not is_last) && not (File_kind.equal kind File_kind.Directory) then begin
            (* Looking *under* a non-directory: ENOTDIR, cacheable as deep
               ENOTDIR dentries (§5.2). *)
            build_deep_negatives mode t child Errno.ENOTDIR rest
              ~record:(fun deep -> push { cur with dentry = deep });
            raise (Walk_error Errno.ENOTDIR)
          end;
          let child_ref = Mount.traverse_mounts { mnt = cur.mnt; dentry = child } in
          let alias' =
            match alias with
            | Some ap -> get_or_make_alias mode t ap name child_ref.dentry
            | None -> None
          in
          (match alias' with
          | Some a -> push { mnt = child_ref.mnt; dentry = a }
          | None -> push child_ref);
          loop child_ref alias' depth rest))
  in
  let finished =
    (* Definitive failures must still surface the visited chain: negative
       leaves and deep negatives are published to the DLHT by the caller. *)
    try loop start None 0 items
    with Walk_error e when not stop_at_parent -> `Err e
  in
  match finished with
  | `Err e -> `Resolved { outcome = Error e; visited = List.rev !visited; absolute }
  | `Final cur ->
    let final =
      Phases.timed Phases.Finalize (fun () ->
          if flags.must_dir || trailing_slash then begin
            if dentry_is_dir cur.dentry then cur else raise (Walk_error Errno.ENOTDIR)
          end
          else cur)
    in
    `Resolved { outcome = Ok final; visited = List.rev !visited; absolute }
  | `Parent (cur, name) ->
    (* Parent-style termination: [cur] is the containing directory; the
       child is looked up without following symlinks or crossing mounts. *)
    let child = step mode t cur name in
    `ParentOf
      {
        parent = cur;
        last = name;
        child;
        trailing_slash;
        p_visited = List.rev !visited;
        p_absolute = absolute;
      }

let resolve_in_mode mode t ctx ?(flags = default_flags) path =
  try
    match walk_internal mode t ctx ~flags ~stop_at_parent:false path with
    | `Resolved r -> r
    | `ParentOf _ -> assert false
  with Walk_error e -> { outcome = Error e; visited = []; absolute = Path.is_absolute path }

(* Prefix-resumed entry (§3.5): resolve [suffix] starting at [start_at] —
   the deepest DLHT-cached, PCC-validated ancestor of a missed path —
   instead of the root or cwd.  Ref mode only: the caller holds the write
   lock and has re-validated the ancestor under it (DLHT membership, PCC
   coverage, positive directory, invalidation counter) before trusting the
   shortcut.  The visited chain covers only the suffix components, and
   [absolute] is false, so the caller's population applies the
   directory-reference rule against [start_at]. *)
let resolve_resumed t ctx ?(flags = default_flags) ~start_at suffix =
  Counter.incr (Dcache.counters t) "walk_resumed";
  try
    match walk_internal Ref t ctx ~flags ~stop_at_parent:false ~start_at suffix with
    | `Resolved r -> r
    | `ParentOf _ -> assert false
  with Walk_error e -> { outcome = Error e; visited = []; absolute = false }

(* Grouped resumed walks (§3.9): the batched slowpath's common shape is a
   run of misses that share a cached parent and differ only in the leaf —
   after the first miss in the group walks (and populates) the shared
   prefix, each remaining member needs exactly one dcache probe-or-fill
   under the parent, not a [walk_internal] invocation of its own.  This
   entry performs that single step: permission check on the parent, one
   {!step} for [name], mount traversal on the result.  It deliberately
   bumps neither "walk_slowpath" nor "walk_components" — the whole point
   is that no walk happens — and counts itself as "walk_resumed_sibling"
   so the grouping is visible in /proc.  Anything off the happy path
   (trailing symlink to follow) returns [`Bail] and the caller falls back
   to {!resolve_resumed}.  Ref mode only: caller holds the write lock and
   has re-validated [start_at] under it, exactly as for
   {!resolve_resumed}. *)
let resume_sibling t ctx ~start_at ~follow name =
  Counter.incr (Dcache.counters t) "walk_resumed_sibling";
  try
    let dir = dir_inode_of Ref start_at.dentry in
    may_lookup ctx dir;
    match step Ref t start_at name with
    | None -> `Err Errno.ENOENT
    | Some child -> (
      match child.d_state with
      | Negative errno -> `Neg (child, errno)
      | Partial _ | Positive _ -> (
        match inode_of Ref child with
        | None -> `Err Errno.ENOENT
        | Some inode -> (
          match Inode.kind inode with
          | File_kind.Symlink when follow -> `Bail
          | _ -> `Child (Mount.traverse_mounts { mnt = start_at.mnt; dentry = child }))))
  with Walk_error e -> `Err e

let resolve t ctx ?(flags = default_flags) path =
  match Dcache.with_read t (fun () -> resolve_in_mode Rcu t ctx ~flags path) with
  | result -> result
  | exception Need_refwalk ->
    Counter.incr (Dcache.counters t) "walk_refwalk_fallback";
    Trace.bump_cause Trace.cause_seqcount_retry;
    Trace.stamp Trace.ev_refwalk 0;
    Dcache.with_write t (fun () -> resolve_in_mode Ref t ctx ~flags path)

let resolve_parent mode t ctx ?(collect = false) path =
  let flags = { default_flags with collect } in
  try
    match walk_internal mode t ctx ~flags ~stop_at_parent:true path with
    | `ParentOf p -> Ok p
    | `Resolved _ -> assert false
  with Walk_error e -> Error e
