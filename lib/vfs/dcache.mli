(** The directory cache: dentry allocation, the primary hash table keyed by
    (parent, name), the eviction clock, negative-dentry management, and the
    coherence (invalidation) entry points used by the optimized fastpath.

    Faithful to the Linux dcache structure (§2.2): every dentry is reachable
    through (a) the primary hash table, (b) its parent's child list, and
    (c) the reclaim list; the invariant that a cached dentry's ancestors are
    all cached is maintained by only evicting childless dentries bottom-up.

    Locking: callers bracket read-mostly work (walks, fastpath probes) with
    {!with_read} and anything that can mutate the cache with {!with_write},
    mirroring RCU-walk vs ref-walk in Linux. *)

open Types

(** Hook points installed by the optimized-dcache layer (the analog of the
    paper's ~1000 LoC of hooks in dcache.c/namei.c, Table 4). *)
type hooks = {
  mutable on_shootdown : dentry -> unit;
      (** dentry is leaving the cache or its canonical path changed: remove
          any direct-lookup state (DLHT entry, signature). *)
}

type t

val create : Config.t -> t
val config : t -> Config.t
val hooks : t -> hooks
val counters : t -> Dcache_util.Stats.Counter.t
val lock : t -> Dcache_util.Rwlock.t
val rename_lock : t -> Dcache_util.Seqcount.t

val stripes : t -> Dcache_util.Locktab.t option
(** The sharded mutation path's lock table ([dcache_stripes > 0] and
    fastpath on), keyed by parent-directory identity: stripe
    [Locktab.index tab parent.d_id] serializes every mutation of that
    directory's children — their state/name/seq transitions, the parent's
    child list, DIR_COMPLETE flag and dir generation.  Lockless readers
    record the stripe seqcounts their probe depends on and revalidate them
    at commit time.  Sharded sections hold the {!lock} read side, so
    {!with_write} still excludes them wholesale. *)

val sharded : t -> bool
(** [stripes t <> None]. *)

val write_seq : t -> Dcache_util.Seqcount.t
(** Dcache-wide write sequence: bumped around every {!with_write} section
    (all mutation — dcache structure, DLHT splices, incremental resize —
    runs under the write lock).  The lockless fastpath snapshots it before
    an optimistic probe and revalidates before committing, retrying under
    the read lock on mismatch (RCU-walk → ref-walk, §3.2). *)

val with_read : t -> (unit -> 'a) -> 'a
val with_write : t -> (unit -> 'a) -> 'a

val invalidation_counter : t -> int
(** Global shootdown sequence (§3.2): read before and after a slowpath walk;
    direct-lookup state may be populated only if unchanged. *)

val dentry_count : t -> int

(** {1 Superblocks and roots} *)

val make_superblock : Dcache_fs.Fs_intf.t -> (superblock, Dcache_types.Errno.t) result
(** Wrap a low-level fs; reads its root inode and creates the root dentry. *)

val sb_root : superblock -> dentry

val iget : superblock -> Dcache_types.Attr.t -> Inode.t
(** Inode-cache lookup/insert, so hard links share one in-memory inode. *)

val iforget : superblock -> int -> unit
(** Drop an inode whose last link is gone; inode numbers may be recycled by
    the low-level fs, so stale cache entries must not survive. *)

(** {1 Lookup and fill} *)

val lookup : t -> dentry -> string -> dentry option
(** Primary hash table probe; the per-component step of every walk. *)

val contains_child : t -> dentry -> string -> pos:int -> len:int -> bool
(** Does [parent] have a hashed child named [path\[pos, pos+len)]?
    Read-only substring probe for the §3.5 prefix fast-fail: no LRU tick,
    no hit accounting, no allocation — safe on the lockless tier. *)

val fill : t -> dentry -> string -> (dentry, Dcache_types.Errno.t) result
(** Cache miss: ask the low-level fs.  Returns the (hashed) child dentry —
    possibly a fresh negative dentry — or [Error ENOENT] when the fs reports
    absence but this fs opts out of negative caching, or another errno on
    fs failure.  Caller must hold the write side. *)

val promote : dentry -> (Inode.t, Dcache_types.Errno.t) result
(** Materialize the inode of a [Partial] dentry (from readdir caching, §5.1)
    with a single getattr; no directory scan. *)

val add_child :
  t -> dentry -> string -> dentry_state -> (dentry, Dcache_types.Errno.t) result
(** Insert a child dentry with the given state; [Error EEXIST] if the name is
    already cached.  Used for instantiating created files, readdir-derived
    [Partial] children, and deep negative dentries. *)

val dget : dentry -> unit
val dput : dentry -> unit

(** {1 Mutation-side maintenance} *)

val unhash : ?reclaim:bool -> t -> dentry -> unit
(** Remove from the hash table and parent's child list (e.g. an unlinked but
    still-open file).  Recursively drops cached children.  [reclaim]
    (default false) marks removals that are {e not} tracking a coherent fs
    mutation — e.g. forced eviction by a network callback — which must also
    break the parent's DIR_COMPLETE invariant (§5.1). *)

val make_negative : t -> dentry -> Dcache_types.Errno.t -> unit
(** Convert a (childless, unpinned) dentry in place to a negative dentry. *)

val note_unlinked : t -> dentry -> unit
(** Baseline-Linux behaviour after unlink: unused dentries become negative,
    in-use dentries are unhashed.  With aggressive negative caching the name
    always ends up as a cached negative (§5.2). *)

val d_move : t -> dentry -> new_parent:dentry -> new_name:string -> unit
(** Re-key a dentry after rename; the displaced target (if cached) is
    unhashed by the caller. *)

val set_complete : t -> dentry -> unit
(** Mark a directory's cached children as the complete listing (§5.1);
    no-op unless directory completeness is enabled. *)

val clear_complete : dentry -> unit
val is_complete : t -> dentry -> bool

val bump_dir_gen : dentry -> unit
(** Note a directory-content mutation; invalidates in-flight readdir
    completion sequences (§5.1). *)

(** {1 Per-stripe negative-dentry lists (§6.3)} *)

val neg_track : t -> dentry -> unit
(** Track a dentry that just turned negative in place (outside the dcache's
    own transitions, e.g. alias retargeting): stamps the current negative
    generation, splices it onto its stripe's list, and enforces
    [neg_list_cap].  Caller holds the parent's stripe or the write lock. *)

val neg_forget : t -> dentry -> unit
(** Drop a dentry from its stripe's negative list — call when promoting a
    cached negative to positive in place (a create over a negative).  The
    caller holds the parent's stripe or the write lock, exactly as for the
    state transition itself.  No-op for untracked dentries. *)

val negative_current : dentry -> bool
(** Is this dentry's verdict still current against its superblock's
    negative generation?  Always true for positive/partial dentries; for a
    negative, one int compare (allocation-free, safe on the lockless tier).
    A stale negative must be treated as a miss. *)

val invalidate_negatives : t -> superblock -> unit
(** Bump the superblock's negative generation (per-mount invalidation,
    DragonFly-style): every cached negative on it lazily becomes a miss at
    its next use, without walking the cache. *)

val neg_list_cap : t -> int
(** The configured per-stripe bound ([Config.neg_list_cap]). *)

val neg_occupancy : t -> int array
(** Current length of each stripe's negative list (one slot when
    unsharded).  Diagnostics (procfs/bench); allocates. *)

val prune_children : t -> dentry -> unit
(** Drop all cached children (recursively) but keep the dentry itself —
    e.g. deep negative children after a non-directory is created over a
    negative dentry (§5.2). *)

val bump_seq : dentry -> unit
(** Advance a dentry's version counter (from the global monotonic source),
    invalidating every PCC entry referring to it. *)

val invalidate_permissions : t -> dentry -> int
(** Before chmod/chown of a directory: bump the version counter of every
    cached descendant so stale PCC entries die (§3.2).  Returns the number
    of dentries visited.  No-op (returning 0) when the fastpath is off. *)

val invalidate_structure : t -> dentry -> int
(** Before rename/mount changes: additionally evict direct-lookup state and
    cached signatures of the dentry and all descendants. *)

val purge : t -> unit
(** Evict every unpinned dentry regardless of recency (the cold-cache
    setup, Table 2). *)

val evict_some : t -> int -> int
(** [evict_some t n] tries to reclaim up to [n] dentries; returns the number
    evicted.  Also invoked automatically when over capacity. *)

val reclaim_overflow : t -> unit
(** Deferred capacity enforcement for the sharded mutation path: sharded
    sections cannot evict (the clock walk crosses stripes), so callers
    invoke this {e after} dropping every lock; it takes {!with_write} only
    when the cache actually overflowed. *)

val iter_children : dentry -> (dentry -> unit) -> unit
(** Snapshot iteration over cached children. *)

val bucket_occupancy : t -> int array
(** Histogram of primary-table bucket chain lengths: slot [i] counts
    buckets with [i] entries; the last slot aggregates longer chains
    (paper §6.5). *)

val self_check : t -> string list
(** Verify the cache's structural invariants (reclaim-list/hash-table/child
    -list agreement, bottom-up caching, fast-dentry consistency); returns
    human-readable violations, [[]] when healthy.  O(cache size); a test
    oracle, not a production call. *)

type scrub_report = {
  scrub_scanned : int;  (** dentries examined *)
  scrub_quarantined : int;  (** inconsistent dentries force-detached *)
  scrub_problems : string list;  (** one line per quarantined dentry *)
}

val scrub : t -> scrub_report
(** Repairing integrity pass: dentries whose hash-table / child-list /
    reclaim-list state is inconsistent are quarantined (force-detached,
    children included, firing the shootdown hook so stale direct-lookup
    state dies too) instead of left to answer lookups.  The next walk
    re-resolves them from the file system.  Caller holds the write side. *)

val new_tick : t -> int
