(** In-memory (VFS-level) inodes.

    The VFS caches each low-level inode's attributes so that the dcache hit
    path never calls into the file system — the Linux-distinctive behaviour
    the paper builds on (§2.3).  All metadata mutations must go through
    {!setattr} (or {!refresh}) to keep the cached attributes coherent. *)

type t

val make : fs:Dcache_fs.Fs_intf.t -> Dcache_types.Attr.t -> t
val fs : t -> Dcache_fs.Fs_intf.t
val ino : t -> int
val attr : t -> Dcache_types.Attr.t
(** Cached attributes; a pure memory read. *)

val kind : t -> Dcache_types.File_kind.t
val is_dir : t -> bool

val adopt_attr : t -> Dcache_types.Attr.t -> unit
(** Replace the cached attributes with ones the caller just heard from the
    file system (a lookup or getattr result).  Used by the inode cache when
    a refill re-finds an existing inode: without it a network file system's
    post-invalidation refill would resurrect the pre-mutation attribute
    snapshot.  A changed attribute record also voids the cached symlink
    target. *)

val refresh : t -> (unit, Dcache_types.Errno.t) result
(** Re-read attributes from the low-level file system. *)

val setattr : t -> Dcache_fs.Fs_intf.setattr -> (unit, Dcache_types.Errno.t) result
(** Apply changes at the file system and update the cached attributes. *)

val bump_nlink : t -> int -> unit
(** Adjust the cached link count after a VFS-level link/unlink. *)

val note_size : t -> int -> unit
(** Update the cached size after a VFS-level write/truncate. *)

val cached_symlink_target : t -> string option
(** The symlink body if some earlier resolution already read it; never
    calls into the file system. *)

val symlink_target : t -> (string, Dcache_types.Errno.t) result
(** Target of a symlink inode, cached after the first read (like Linux's
    [i_link]). *)

val invalidate_symlink_cache : t -> unit
