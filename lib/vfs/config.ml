(** Directory-cache configuration.

    [baseline] models unmodified Linux 3.14; [optimized] enables every
    optimization the paper proposes.  Individual flags exist so the benchmark
    harness can ablate each design choice (paper §6, Fig. 2 series). *)

type dotdot_semantics =
  | Dotdot_linux  (** check permissions at every [..] (paper §4.2) *)
  | Dotdot_lexical  (** Plan 9 lexical preprocessing of [..] *)

type t = {
  (* §3: hit latency *)
  fastpath : bool;  (** direct lookup via DLHT + PCC *)
  pcc_entries : int;  (** prefix-check-cache capacity (paper: 64 KB ~ 4096) *)
  pcc_max_entries : int;
      (** dynamic-PCC growth ceiling; equal to [pcc_entries] disables growth
          (the paper's prototype is static; resizing is its future work) *)
  dlht_buckets : int;  (** direct lookup hash table buckets (paper: 2^16) *)
  dlht_grow_load : int;
      (** entries per bucket before the DLHT doubles (incremental, a few
          buckets migrated per mutation); 0 keeps the paper's fixed-size
          prototype table *)
  sig_bits : int;  (** signature bits compared (paper: 240) *)
  prefix_resume : bool;
      (** on a DLHT miss, resume the slowpath from the longest cached,
          PCC-validated ancestor prefix instead of walking from the
          root/cwd (§3.5); includes negative fast-fail on cached-negative
          or DIR_COMPLETE ancestors *)
  symlink_aliases : bool;  (** cache symlink resolutions as alias dentries (§4.2) *)
  dotdot : dotdot_semantics;
  (* §5: hit rate *)
  dir_completeness : bool;  (** DIR_COMPLETE tracking + readdir from cache (§5.1) *)
  dnlc_style_completeness : bool;
      (** comparison mode (§2.3/§5.1): cache complete listings in a {e
          separate} side table, as Solaris's DNLC does — repeated readdirs
          are served, but lookups, stat-after-readdir and negative elision
          see no benefit.  Mutually exclusive with [dir_completeness]. *)
  aggressive_negative : bool;  (** negatives on rename/unlink + pseudo-fs (§5.2) *)
  deep_negative : bool;  (** deep ENOENT/ENOTDIR dentries (§5.2) *)
  neg_list_cap : int;
      (** per-stripe negative-dentry LRU list capacity (§6.3 decay/shrink
          study): a create/stat storm of unique absent names evicts the
          oldest negative on its own stripe once the stripe's list exceeds
          this bound, so negatives can neither grow the cache without limit
          nor serialize eviction on a global lock; 0 disables the bound *)
  (* substrate sizing *)
  dcache_buckets : int;  (** primary hash table buckets (Linux default 262144) *)
  max_dentries : int;  (** dcache capacity before LRU eviction *)
  hash_seed : int;  (** boot-time signature key seed *)
  dcache_stripes : int;
      (** stripes in the sharded mutation path's lock table (power of two);
          0 funnels every mutation through the single global write lock
          (the pre-sharding behaviour, kept as the scaling baseline) *)
  (* §3.7: netfs lease coherence.  Canonical defaults for the knobs
     [Netfs.server] takes directly (lib/fs cannot depend on lib/vfs);
     benchmarks and tests thread these through so an ablation run can vary
     them in one place.  All virtual nanoseconds. *)
  lease_ttl_ns : int;
      (** how long a server-granted per-inode lease stays live on the
          client; a warm hit is served locklessly only under a live lease *)
  lease_grace_ns : int;
      (** post-crash grace period during which the restarted server delays
          mutations; must be >= lease_ttl_ns + lease_skew_ns so every
          pre-crash lease (which the server no longer remembers) expires
          before the first post-crash mutation can land *)
  lease_skew_ns : int;
      (** modeled client/server clock-skew margin: the server keeps a grant
          on its books for ttl + skew, so a client whose clock lags by up
          to [skew] still never serves past the server's horizon *)
}

let baseline =
  {
    fastpath = false;
    pcc_entries = 4096;
    pcc_max_entries = 4096;
    dlht_buckets = 1 lsl 16;
    dlht_grow_load = 2;
    sig_bits = 240;
    prefix_resume = false;
    symlink_aliases = false;
    dotdot = Dotdot_linux;
    dir_completeness = false;
    dnlc_style_completeness = false;
    aggressive_negative = false;
    deep_negative = false;
    neg_list_cap = 4096;
    dcache_buckets = 1 lsl 18;
    max_dentries = 1 lsl 20;
    hash_seed = 0x5eed;
    dcache_stripes = 0;
    lease_ttl_ns = 50_000_000;
    lease_grace_ns = 52_000_000;
    lease_skew_ns = 2_000_000;
  }

let optimized =
  {
    baseline with
    fastpath = true;
    prefix_resume = true;
    symlink_aliases = true;
    dir_completeness = true;
    aggressive_negative = true;
    deep_negative = true;
    dcache_stripes = 128;
  }
