(** Mutually recursive VFS object types: dentries, superblocks, mounts and
    mount namespaces.

    Dentries carry the paper's [fast_dentry] extension fields inline
    (signature, resumable hash state, version counter, mount pointer, DLHT
    membership), mirroring how the prototype embeds an 88-byte fast dentry
    in [struct dentry] (§3.1, Fig. 5).  The structures are defined together
    because a mount's root is a dentry while a dentry remembers the mount it
    was last reached under (needed for direct lookup, §4.3). *)

module Dlist = Dcache_util.Dlist
module Signature = Dcache_sig.Signature

type dentry_state =
  | Positive of Inode.t
  | Partial of { p_ino : int; p_kind : Dcache_types.File_kind.t }
      (** Created from readdir results (§5.1): name and inode number are
          known but the inode has not been read; a lookup promotes it with a
          [getattr] instead of a directory scan. *)
  | Negative of Dcache_types.Errno.t
      (** Cached lookup failure: [ENOENT], or [ENOTDIR] for deep negative
          dentries under regular files (§5.2). *)

type ns_ext = ..
(** Extension slot on namespaces; the optimized dcache stores the
    per-namespace direct lookup hash table here. *)

type dentry = {
  d_id : int;  (** unique; the analog of the dentry's kernel virtual address *)
  mutable d_name : string;
  mutable d_parent : dentry option;  (** [None] only for superblock roots *)
  mutable d_state : dentry_state;
  d_sb : superblock;
  d_children : dentry Dlist.t;
  mutable d_sibling : dentry Dlist.node option;  (** node in parent's children *)
  mutable d_lru : dentry Dlist.node option;  (** node in the dcache clock list *)
  mutable d_neg : dentry Dlist.node option;
      (** node in the per-stripe negative-dentry LRU list (§6.3); [Some] only
          while [d_state] is [Negative] *)
  mutable d_neg_gen : int;
      (** [sb_neg_gen] snapshot taken when this dentry turned negative; a
          mismatch means a per-mount negative flush has run since and the
          verdict must be re-earned (DragonFly-style generation
          invalidation) *)
  d_refcount : int Atomic.t;  (** pins: open files, cwd/root, mountpoints *)
  mutable d_hashed : bool;  (** present in the primary hash table *)
  mutable d_last_used : int;  (** lazy-LRU tick; racy update is benign *)
  mutable d_complete : bool;  (** DIR_COMPLETE (§5.1) *)
  mutable d_dir_gen : int;
      (** bumped on every create/unlink/rename in this directory; readdir
          sequences compare it to detect concurrent changes (§5.1) *)
  (* fast dentry fields (§3.1) *)
  mutable d_seq : int;  (** version counter validated by PCC entries *)
  mutable d_sig : Signature.t option;  (** signature of the canonical path *)
  mutable d_hstate : Signature.state option;  (** resumable hash state *)
  mutable d_dlht_ns : namespace option;  (** the (single) DLHT holding us *)
  mutable d_dlht_next : dentry option;  (** intrusive DLHT bucket chain *)
  mutable d_dlht_prev : dentry option;
      (** chain predecessor; [None] when we head the bucket.  Intrusive links
          make DLHT insert/remove O(1) pointer splices with no per-entry cons
          cells, at the cost of the single-table invariant already implied by
          [d_dlht_ns]. *)
  mutable d_mnt : mount option;  (** mount we were most recently reached under *)
  mutable d_alias : dentry option;  (** symlink-alias redirect target (§4.2) *)
  mutable d_target_sig : Signature.t option;
      (** for a symlink dentry: the signature of its (canonicalized) target
          path, so a trailing symlink is followed on the fastpath by one
          more DLHT probe per hop — and stays coherent when intermediate
          links are replaced (§4.2) *)
}

and superblock = {
  sb_id : int;
  sb_fs : Dcache_fs.Fs_intf.t;
  sb_icache : (int, Inode.t) Hashtbl.t;
  mutable sb_root : dentry option;
  mutable sb_neg_gen : int;
      (** per-mount negative-dentry generation (one superblock = one mount
          here): bumping it lazily invalidates every cached negative on this
          superblock without walking them *)
}

and mount = {
  mnt_id : int;
  mnt_sb : superblock;
  mnt_root : dentry;
  mnt_mountpoint : (mount * dentry) option;  (** where this mount is attached *)
  mnt_ns : namespace;
  mnt_readonly : bool;
  mnt_nosuid : bool;
}

and namespace = {
  ns_id : int;
  mutable ns_root : mount option;
  mutable ns_mounts : mount list;
  ns_mountpoints : (int * int, mount) Hashtbl.t;
      (** (parent mount id, mountpoint dentry id) -> child mount *)
  mutable ns_ext : ns_ext option;
}

(** A resolved location: dentry plus the mount it was reached through. *)
type path_ref = { mnt : mount; dentry : dentry }

let dentry_inode d =
  match d.d_state with
  | Positive inode -> Some inode
  | Partial _ | Negative _ -> None

let dentry_is_positive d =
  match d.d_state with Positive _ | Partial _ -> true | Negative _ -> false

let dentry_is_negative d =
  match d.d_state with Negative _ -> true | Positive _ | Partial _ -> false

let dentry_kind d =
  match d.d_state with
  | Positive inode -> Some (Inode.kind inode)
  | Partial { p_kind; _ } -> Some p_kind
  | Negative _ -> None

(* Matches [d_state] directly rather than going through [dentry_kind]'s
   [Some] wrapper: this predicate runs per component on the lookup fastpath,
   which must not allocate. *)
let dentry_is_dir d =
  match d.d_state with
  | Positive inode -> Dcache_types.File_kind.equal (Inode.kind inode) Dcache_types.File_kind.Directory
  | Partial { p_kind; _ } -> Dcache_types.File_kind.equal p_kind Dcache_types.File_kind.Directory
  | Negative _ -> false

(** Canonical path of a dentry within its superblock (diagnostics only; the
    kernel proper never builds path strings this way). *)
let rec dentry_path d =
  match d.d_parent with
  | None -> ""
  | Some parent ->
    let prefix = dentry_path parent in
    prefix ^ "/" ^ d.d_name

let dentry_path_display d =
  match dentry_path d with "" -> "/" | path -> path
