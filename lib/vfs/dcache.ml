open Dcache_types
open Types
module Dlist = Dcache_util.Dlist
module Rwlock = Dcache_util.Rwlock
module Seqcount = Dcache_util.Seqcount
module Locktab = Dcache_util.Locktab
module Counter = Dcache_util.Stats.Counter
module Trace = Dcache_util.Trace
module Profiler = Dcache_util.Profiler
module Fs_intf = Dcache_fs.Fs_intf

type hooks = { mutable on_shootdown : dentry -> unit }

type t = {
  config : Config.t;
  buckets : dentry list Atomic.t array;
      (** primary hash table.  Each bucket holds an immutable list updated
          by CAS, so two sharded writers whose parents collide on a bucket
          never lose each other's splice, and lockless readers scan a
          consistent snapshot of the chain. *)
  count : int Atomic.t;
  clock : dentry Dlist.t;  (** reclaim list; front = recently inserted *)
  lru_mu : Mutex.t;
      (** serializes reclaim-list splices reachable from sharded mutation
          sections ([alloc_child]/[detach]); the clock is one global
          intrusive list, so stripe locks cannot protect it.  Bulk clock
          work (eviction, purge, scrub) runs only under the exclusive
          write lock and needs no extra serialization. *)
  tick : int Atomic.t;
  lock : Rwlock.t;
  rename_lock : Seqcount.t;
  write_seq : Seqcount.t;
      (** dcache-wide write sequence for the lockless fastpath (§3.2):
          every exclusive write section ([with_write]) bumps it, so an
          optimistic reader that snapshots it even and revalidates it
          unchanged has provably raced no exclusive mutation — DLHT resize
          migration included.  Sharded mutations do NOT bump it: they bump
          the stripe seqcounts the reader records per probed dentry
          instead (the per-entry half of the validation protocol). *)
  invalidation : int Atomic.t;
  stripes : Locktab.t option;
      (** the sharded mutation path's lock table, keyed by parent-directory
          identity: stripe [parent.d_id land mask] serializes all mutation
          of that directory's children (their state/name/seq, the parent's
          child list, its DIR_COMPLETE flag and dir generation).  [None]
          when [dcache_stripes = 0] or the fastpath is off — every
          mutation then funnels through [with_write] as before. *)
  neg_lists : dentry Dlist.t array;
      (** per-stripe negative-dentry LRU lists (§6.3, DragonFly-style):
          slot [i] tracks every cached negative whose parent hashes to
          stripe [i], most recently created first.  A list is mutated only
          under its stripe's lock (or under the exclusive write lock, which
          excludes every sharded section), so a create/stat storm of unique
          names bounds and evicts negatives without a global lock.  One
          slot when unsharded — everything is then under the write lock. *)
  hooks : hooks;
  counters : Counter.t;
}

(* Global generators.  Dentry ids model kernel virtual addresses (unique,
   never reused while cached); the seq generator guarantees that a dentry
   slot "reallocated" for a new path starts with a version number no stale
   PCC entry can match (§3.1). *)
let next_dentry_id = Atomic.make 1
let next_sb_id = Atomic.make 1
let next_seq = Atomic.make 1

let create config =
  let sharded =
    config.Config.fastpath
    && config.Config.dcache_stripes > 0
    && config.Config.dotdot = Config.Dotdot_linux
  in
  {
    config;
    buckets = Array.init config.Config.dcache_buckets (fun _ -> Atomic.make []);
    count = Atomic.make 0;
    clock = Dlist.create ();
    lru_mu = Mutex.create ();
    tick = Atomic.make 0;
    lock = Rwlock.create ();
    rename_lock = Seqcount.create ();
    write_seq = Seqcount.create ();
    invalidation = Atomic.make 0;
    stripes =
      (* Lexical dot-dot keeps the list-based probe, which runs under the
         read lock with no stripe validation — sharding would let writers
         race it, so only the (default) Linux mode gets stripes. *)
      (if sharded then Some (Locktab.create config.Config.dcache_stripes) else None);
    neg_lists =
      Array.init
        (if sharded then config.Config.dcache_stripes else 1)
        (fun _ -> Dlist.create ());
    hooks = { on_shootdown = (fun _ -> ()) };
    counters = Counter.create ();
  }

let config t = t.config
let hooks t = t.hooks
let counters t = t.counters
let lock t = t.lock
let rename_lock t = t.rename_lock
let write_seq t = t.write_seq
let stripes t = t.stripes
let sharded t = t.stripes <> None
let with_read t f = Rwlock.with_read t.lock f

(* The write sequence is bumped strictly inside the write lock, so it is
   never incremented concurrently and readers see it odd exactly while a
   write section is open.  Sharded mutation sections hold the lock's READ
   side: they exclude [with_write] (and are excluded by it) but run
   concurrently with each other, serialized per-stripe. *)
let with_write t f =
  Rwlock.write_lock t.lock;
  (* Residual-global accounting: with stripes on, every mutation that still
     funnels through the exclusive lock (Legacy bailouts, eviction, DLHT
     grow, subtree invalidation too wide to stripe) shows up here, surfaced
     in /proc/dcache/stripes so the sharding follow-ons can be tracked. *)
  Counter.incr t.counters "global_write_acquired";
  Seqcount.write_begin t.write_seq;
  match f () with
  | result ->
    Seqcount.write_end t.write_seq;
    Rwlock.write_unlock t.lock;
    result
  | exception e ->
    Seqcount.write_end t.write_seq;
    Rwlock.write_unlock t.lock;
    raise e
let invalidation_counter t = Atomic.get t.invalidation
let dentry_count t = Atomic.get t.count

(* Occupancy histogram of the primary hash table (paper §6.5): index i =
   buckets holding i entries; the last slot aggregates longer chains. *)
let bucket_occupancy t =
  let hist = Array.make 5 0 in
  Array.iter
    (fun bucket ->
      let len = min (List.length (Atomic.get bucket)) (Array.length hist - 1) in
      hist.(len) <- hist.(len) + 1)
    t.buckets;
  hist

let new_tick t = Atomic.fetch_and_add t.tick 1 + 1

(* FNV-1a over the name, mixed with the parent identity — the same shape as
   Linux's (parent pointer, name) hash (§2.2, Fig. 4). *)
let name_hash parent_id name =
  let h = ref 0xbf29ce484222325 in
  String.iter (fun c -> h := (!h lxor Char.code c) * 0x100000001b3) name;
  let h = !h lxor (parent_id * 0x1e3779b97f4a7c15) in
  let h = h lxor (h lsr 29) in
  h land max_int

let bucket_index t parent_id name = name_hash parent_id name land (Array.length t.buckets - 1)

(* --- inode cache ---

   The icache Hashtbl is touched from sharded mutation sections (a created
   file's iget, an unlinked file's iforget) on different stripes at once, so
   a leaf mutex serializes it.  Module-level because superblocks don't carry
   one; the critical section is a single table operation. *)

let icache_mu = Mutex.create ()

let iget sb (attr : Attr.t) =
  Mutex.lock icache_mu;
  let inode =
    match Hashtbl.find_opt sb.sb_icache attr.ino with
    | Some inode ->
      (* The caller just heard [attr] from the file system; adopt it, or a
         refill after a remote mutation would serve the stale snapshot. *)
      Inode.adopt_attr inode attr;
      inode
    | None ->
      let inode = Inode.make ~fs:sb.sb_fs attr in
      Hashtbl.add sb.sb_icache attr.ino inode;
      inode
  in
  Mutex.unlock icache_mu;
  inode

(* Forget a dead inode so a recycled inode number cannot resurrect stale
   attributes (the iput-side eviction of Linux's inode cache). *)
let iforget sb ino =
  Mutex.lock icache_mu;
  Hashtbl.remove sb.sb_icache ino;
  Mutex.unlock icache_mu

let make_superblock fs =
  match fs.Fs_intf.getattr fs.Fs_intf.root_ino with
  | Error _ as e -> Result.map (fun _ -> assert false) e
  | Ok attr ->
    let sb =
      {
        sb_id = Atomic.fetch_and_add next_sb_id 1;
        sb_fs = fs;
        sb_icache = Hashtbl.create 256;
        sb_root = None;
        sb_neg_gen = 0;
      }
    in
    let inode = iget sb attr in
    let root =
      {
        d_id = Atomic.fetch_and_add next_dentry_id 1;
        d_name = "";
        d_parent = None;
        d_state = Positive inode;
        d_sb = sb;
        d_children = Dlist.create ();
        d_sibling = None;
        d_lru = None;
        d_neg = None;
        d_neg_gen = 0;
        d_refcount = Atomic.make 1;
        d_hashed = false;
        d_last_used = 0;
        d_complete = false;
        d_dir_gen = 0;
        d_seq = Atomic.fetch_and_add next_seq 1;
        d_sig = None;
        d_hstate = None;
        d_dlht_ns = None;
        d_dlht_next = None;
        d_dlht_prev = None;
        d_mnt = None;
        d_alias = None;
        d_target_sig = None;
      }
    in
    sb.sb_root <- Some root;
    Ok sb

let sb_root sb = match sb.sb_root with Some d -> d | None -> assert false

(* --- primary hash table --- *)

let lookup t parent name =
  let idx = bucket_index t parent.d_id name in
  let rec scan = function
    | [] -> None
    | d :: rest ->
      if
        (match d.d_parent with Some p -> p == parent | None -> false)
        && String.equal d.d_name name
      then Some d
      else scan rest
  in
  match scan (Atomic.get t.buckets.(idx)) with
  | Some d ->
    d.d_last_used <- Atomic.get t.tick;
    Counter.incr t.counters "dcache_hit";
    Some d
  | None -> None

(* Substring variant of [lookup] for the lockless prefix fast-fail scan
   (§3.5): purely read-only — no LRU tick, no hit accounting — and
   allocation-free (the name is addressed in place in the caller's path
   string; top-level recursions instead of refs/closures), so the verdict
   stays at zero words even when it fires on every probe of a repeatedly
   missed name. *)
let rec fnv_sub path pos stop h =
  if pos >= stop then h
  else fnv_sub path (pos + 1) stop ((h lxor Char.code (String.unsafe_get path pos)) * 0x100000001b3)

let name_hash_sub parent_id path ~pos ~len =
  let h = fnv_sub path pos (pos + len) 0xbf29ce484222325 in
  let h = h lxor (parent_id * 0x1e3779b97f4a7c15) in
  let h = h lxor (h lsr 29) in
  h land max_int

let rec name_eq_sub name path pos i len =
  i >= len
  || (String.unsafe_get name i = String.unsafe_get path (pos + i)
      && name_eq_sub name path pos (i + 1) len)

let rec child_scan parent path pos len = function
  | [] -> false
  | d :: rest ->
    if
      (match d.d_parent with Some p -> p == parent | None -> false)
      && String.length d.d_name = len
      && name_eq_sub d.d_name path pos 0 len
    then true
    else child_scan parent path pos len rest

let contains_child t parent path ~pos ~len =
  let idx = name_hash_sub parent.d_id path ~pos ~len land (Array.length t.buckets - 1) in
  child_scan parent path pos len (Atomic.get t.buckets.(idx))

(* Bucket splices are CAS loops over the immutable chain: two sharded
   writers whose (distinct, separately-striped) parents collide on a
   bucket retry instead of losing each other's update.  Within one stripe
   splices are already serialized, so the loop terminates after at most a
   handful of cross-stripe collisions. *)
let rec bucket_cons slot d =
  let cur = Atomic.get slot in
  if not (Atomic.compare_and_set slot cur (d :: cur)) then bucket_cons slot d

let rec bucket_excise slot d =
  let cur = Atomic.get slot in
  let next = List.filter (fun other -> not (other == d)) cur in
  if not (Atomic.compare_and_set slot cur next) then bucket_excise slot d

let hash_insert t d =
  let parent_id = match d.d_parent with Some p -> p.d_id | None -> 0 in
  let idx = bucket_index t parent_id d.d_name in
  bucket_cons t.buckets.(idx) d;
  d.d_hashed <- true

let hash_remove t d =
  let parent_id = match d.d_parent with Some p -> p.d_id | None -> 0 in
  let idx = bucket_index t parent_id d.d_name in
  bucket_excise t.buckets.(idx) d;
  d.d_hashed <- false

let iter_children d f = List.iter f (Dlist.to_list d.d_children)

(* --- per-stripe negative-dentry lists (§6.3) ---

   Every cached negative is tracked on the list of its parent's stripe, so
   the lock already held by whatever created it (the parent's stripe in a
   sharded section, the exclusive write lock otherwise) also covers the
   list splice and any eviction it triggers: victims on the same list have
   parents on the same stripe by construction. *)

let neg_index t parent =
  match t.stripes with Some tab -> Locktab.index tab parent.d_id | None -> 0

let neg_list_of t d =
  match d.d_parent with
  | None -> t.neg_lists.(0) (* roots are never negative *)
  | Some parent -> t.neg_lists.(neg_index t parent)

(* Drop [d] from its stripe's negative list (promotion to positive, or any
   removal from the cache).  Callers hold the lock that covers [d]. *)
let neg_forget t d =
  match d.d_neg with
  | None -> ()
  | Some node ->
    Dlist.remove (neg_list_of t d) node;
    d.d_neg <- None

(* --- eviction ---

   Clock-with-pins: dentries are evicted from the back of the reclaim list;
   pinned dentries, dentries with cached children (the bottom-up invariant),
   and recently used dentries get rotated to the front.  Evicting a child
   clears the parent's DIR_COMPLETE flag (§5.1). *)

(* [reclaim] distinguishes space reclamation (which breaks the parent's
   DIR_COMPLETE invariant) from coherent removal tracking an fs mutation,
   which preserves completeness (§5.1). *)
let clock_remove t d =
  Mutex.lock t.lru_mu;
  (match d.d_lru with Some node -> Dlist.remove t.clock node | None -> ());
  d.d_lru <- None;
  Mutex.unlock t.lru_mu

let clock_push_front t d node =
  Mutex.lock t.lru_mu;
  Dlist.push_front t.clock node;
  d.d_lru <- Some node;
  Mutex.unlock t.lru_mu

let detach ?(reclaim = true) t d =
  neg_forget t d;
  hash_remove t d;
  (match (d.d_parent, d.d_sibling) with
  | Some parent, Some node ->
    Dlist.remove parent.d_children node;
    if reclaim && parent.d_complete then begin
      parent.d_complete <- false;
      Counter.incr t.counters "completeness_lost"
    end
  | _ -> ());
  d.d_sibling <- None;
  clock_remove t d;
  t.hooks.on_shootdown d;
  d.d_sig <- None;
  d.d_hstate <- None;
  d.d_alias <- None;
  d.d_target_sig <- None;
  ignore (Atomic.fetch_and_add t.count (-1))

let evictable d =
  Atomic.get d.d_refcount = 0 && Dlist.is_empty d.d_children && d.d_parent <> None

(* Bounded negative caching (§6.3): shrink [list] to [cap] by evicting from
   the back (the oldest negatives).  Entries that turned positive in place
   (alias retargeting) or are somehow pinned just lose their tracking node —
   the pop still shrinks the list, so the loop terminates.  Eviction is a
   coherent removal ([reclaim:false]): a negative is not a real child, so
   the parent's DIR_COMPLETE claim survives it. *)
let rec neg_shrink t list cap =
  if Dlist.length list > cap then begin
    match Dlist.pop_back list with
    | None -> ()
    | Some node ->
      let victim = Dlist.value node in
      victim.d_neg <- None;
      if dentry_is_negative victim && evictable victim && victim.d_hashed then begin
        detach ~reclaim:false t victim;
        Counter.incr t.counters "neg_evicted"
      end;
      neg_shrink t list cap
  end

(* Track a dentry that just became negative: stamp the per-mount generation
   it was earned under, splice it onto its stripe's list, and enforce the
   bound.  Caller holds the parent's stripe or the write lock. *)
let neg_note_created t d =
  d.d_neg_gen <- d.d_sb.sb_neg_gen;
  let cap = t.config.Config.neg_list_cap in
  if cap > 0 then begin
    let list = neg_list_of t d in
    (match d.d_neg with
    | Some _ -> ()
    | None ->
      let node = Dlist.node d in
      Dlist.push_front list node;
      d.d_neg <- Some node);
    neg_shrink t list cap
  end

(* --- per-mount generation invalidation (DragonFly-style) ---

   Bumping the superblock's generation lazily invalidates every cached
   negative on it: verdict sites compare the dentry's stamped generation
   (one int compare, allocation-free) and treat a mismatch as a miss; the
   stale dentry itself is dropped by the next write-locked walk that trips
   over it. *)

(* Public alias: in-place transitions *to* negative outside this module
   (alias retargeting in the walk) must join the tracking list too. *)
let neg_track = neg_note_created

let negative_current d =
  match d.d_state with
  | Negative _ -> d.d_neg_gen = d.d_sb.sb_neg_gen
  | Positive _ | Partial _ -> true

let invalidate_negatives t sb =
  sb.sb_neg_gen <- sb.sb_neg_gen + 1;
  Counter.incr t.counters "neg_gen_invalidations"

let neg_list_cap t = t.config.Config.neg_list_cap
let neg_occupancy t = Array.map Dlist.length t.neg_lists

(* Eviction and purge run only under the exclusive write lock (never from
   a sharded section), so their clock traversal needs no [lru_mu] — the
   [detach] they call still takes it, uncontended. *)
let evict_some t want =
  let evicted = ref 0 in
  (* Enough attempts that every entry can consume its second chance and
     still be revisited. *)
  let attempts = ref ((2 * Dlist.length t.clock) + 1) in
  while !evicted < want && !attempts > 0 do
    decr attempts;
    match Dlist.pop_back t.clock with
    | None -> attempts := 0
    | Some node ->
      let d = Dlist.value node in
      d.d_lru <- None;
      if not (evictable d) then begin
        Dlist.push_front t.clock node;
        d.d_lru <- Some node
      end
      else if d.d_last_used > Atomic.get t.tick - (t.config.Config.max_dentries / 4)
      then begin
        (* Second chance for recently used entries. *)
        d.d_last_used <- d.d_last_used - (t.config.Config.max_dentries / 2);
        Dlist.push_front t.clock node;
        d.d_lru <- Some node
      end
      else begin
        Dlist.push_back t.clock node;
        d.d_lru <- Some node;
        detach t d;
        Counter.incr t.counters "dcache_evicted";
        incr evicted
      end
  done;
  !evicted

(* Unconditional reclaim of every unpinned dentry (drop_caches): recency is
   ignored, and passes repeat because evicting leaves exposes parents. *)
let purge t =
  let rec sweep () =
    let evicted = ref 0 in
    let attempts = ref (Dlist.length t.clock) in
    while !attempts > 0 do
      decr attempts;
      match Dlist.pop_back t.clock with
      | None -> attempts := 0
      | Some node ->
        let d = Dlist.value node in
        Dlist.push_front t.clock node;
        if evictable d then begin
          detach t d;
          Counter.incr t.counters "dcache_evicted";
          incr evicted
        end
    done;
    if !evicted > 0 then sweep ()
  in
  sweep ()

let maybe_reclaim t =
  let count = Atomic.get t.count in
  if count > t.config.Config.max_dentries then
    ignore (evict_some t (count - t.config.Config.max_dentries))

(* Capacity enforcement for the sharded path.  A sharded section cannot
   evict (the clock walk touches dentries on arbitrary stripes), so
   [alloc_child] defers reclaim there; callers invoke this after dropping
   all their locks, and it upgrades to the exclusive write lock only when
   the cache actually overflowed. *)
let reclaim_overflow t =
  if Atomic.get t.count > t.config.Config.max_dentries then
    with_write t (fun () -> maybe_reclaim t)

(* --- allocation --- *)

let alloc_child t parent name state =
  let d =
    {
      d_id = Atomic.fetch_and_add next_dentry_id 1;
      d_name = name;
      d_parent = Some parent;
      d_state = state;
      d_sb = parent.d_sb;
      d_children = Dlist.create ();
      d_sibling = None;
      d_lru = None;
      d_neg = None;
      d_neg_gen = 0;
      d_refcount = Atomic.make 0;
      d_hashed = false;
      d_last_used = Atomic.get t.tick;
      d_complete = false;
      d_dir_gen = 0;
      d_seq = Atomic.fetch_and_add next_seq 1;
      d_sig = None;
      d_hstate = None;
      d_dlht_ns = None;
      d_dlht_next = None;
      d_dlht_prev = None;
      d_mnt = None;
      d_alias = None;
      d_target_sig = None;
    }
  in
  let sibling = Dlist.node d in
  Dlist.push_back parent.d_children sibling;
  d.d_sibling <- Some sibling;
  clock_push_front t d (Dlist.node d);
  hash_insert t d;
  (match state with Negative _ -> neg_note_created t d | Positive _ | Partial _ -> ());
  ignore (Atomic.fetch_and_add t.count 1);
  (* Inline reclaim needs the exclusive lock; a sharded section (read side
     held) defers it to the caller's post-section [reclaim_overflow]. *)
  if t.stripes = None || Rwlock.write_held t.lock then maybe_reclaim t;
  d

let add_child t parent name state =
  match lookup t parent name with
  | Some _ -> Error Errno.EEXIST
  | None -> Ok (alloc_child t parent name state)

let dget d = ignore (Atomic.fetch_and_add d.d_refcount 1)

let dput d =
  let old = Atomic.fetch_and_add d.d_refcount (-1) in
  assert (old > 0)

(* --- fill (the dcache miss path) --- *)

let should_cache_negatives t sb =
  sb.sb_fs.Fs_intf.negative_dentries || t.config.Config.aggressive_negative

let fill t parent name =
  Counter.incr t.counters "dcache_miss";
  (* §3.8: misses are attributed here, directory-precise and config-
     agnostic (every kernel flavor funnels cold lookups through fill),
     rather than in the fastpath fallback, which would double count. *)
  if !Profiler.armed then Profiler.hh_record parent.d_id parent.d_name Profiler.m_miss;
  let sb = parent.d_sb in
  match dentry_inode parent with
  | None -> Error Errno.ENOENT
  | Some dir_inode -> (
    match sb.sb_fs.Fs_intf.lookup (Inode.ino dir_inode) name with
    | Ok attr ->
      let inode = iget sb attr in
      Ok (alloc_child t parent name (Positive inode))
    | Error Errno.ENOENT ->
      if should_cache_negatives t sb then begin
        Counter.incr t.counters "negative_created";
        Ok (alloc_child t parent name (Negative Errno.ENOENT))
      end
      else Error Errno.ENOENT
    | Error _ as e -> Result.map (fun _ -> assert false) e)

let promote d =
  match d.d_state with
  | Positive inode -> Ok inode
  | Negative e -> Error e
  | Partial { p_ino; _ } -> (
    match d.d_sb.sb_fs.Fs_intf.getattr p_ino with
    | Ok attr ->
      let inode = iget d.d_sb attr in
      d.d_state <- Positive inode;
      Ok inode
    | Error _ as e -> Result.map (fun _ -> assert false) e)

(* --- invalidation (§3.2) --- *)

let bump_seq d = d.d_seq <- Atomic.fetch_and_add next_seq 1

let rec walk_subtree d f =
  f d;
  List.iter (fun child -> walk_subtree child f) (Dlist.to_list d.d_children)

let invalidate_permissions t dir =
  if not t.config.Config.fastpath then 0
  else begin
    let visited = ref 0 in
    iter_children dir (fun child ->
        walk_subtree child (fun d ->
            incr visited;
            bump_seq d;
            Trace.bump_cause Trace.cause_inval_chmod));
    Atomic.incr t.invalidation;
    Trace.stamp Trace.ev_inval_chmod !visited;
    if !Profiler.armed then Profiler.hh_record dir.d_id dir.d_name Profiler.m_inval;
    Counter.add t.counters "invalidate_permission_dentries" !visited;
    !visited
  end

let shootdown t d =
  bump_seq d;
  t.hooks.on_shootdown d;
  d.d_sig <- None;
  d.d_hstate <- None;
  d.d_target_sig <- None

let invalidate_structure t dentry =
  if not t.config.Config.fastpath then 0
  else begin
    let visited = ref 0 in
    walk_subtree dentry (fun d ->
        incr visited;
        shootdown t d;
        Trace.bump_cause Trace.cause_inval_rename);
    Atomic.incr t.invalidation;
    Trace.stamp Trace.ev_inval_rename !visited;
    (* Attributed to the containing directory (the shot-down subtree's
       parent), matching how hits and misses are charged; a rootless
       dentry charges itself. *)
    (if !Profiler.armed then
       match dentry.d_parent with
       | Some p -> Profiler.hh_record p.d_id p.d_name Profiler.m_inval
       | None -> Profiler.hh_record dentry.d_id dentry.d_name Profiler.m_inval);
    Counter.add t.counters "invalidate_structure_dentries" !visited;
    !visited
  end

(* --- unhash / negative conversion / rename --- *)

let rec drop_children t d =
  iter_children d (fun child ->
      drop_children t child;
      detach ~reclaim:false t child)

let unhash ?(reclaim = false) t d =
  drop_children t d;
  if d.d_hashed then detach ~reclaim t d

let make_negative t d errno =
  assert (Dlist.is_empty d.d_children);
  (* The canonical path and its prefix checks are unchanged: the dentry
     keeps its signature, DLHT entry, and version, so the fastpath serves
     the new negative result immediately (§5.2). *)
  d.d_state <- Negative errno;
  d.d_complete <- false;
  d.d_alias <- None;
  d.d_target_sig <- None;
  neg_note_created t d;
  Counter.incr t.counters "negative_created"

let note_unlinked t d =
  match d.d_parent with
  | None -> ()
  | Some parent ->
    if Atomic.get d.d_refcount = 0 && Dlist.is_empty d.d_children then
      make_negative t d Errno.ENOENT
    else begin
      let name = d.d_name in
      unhash t d;
      (* Aggressive negative caching (§5.2): the name itself stays cached as
         a negative dentry even though the old dentry lives on unhashed. *)
      if t.config.Config.aggressive_negative && parent.d_hashed then
        ignore (alloc_child t parent name (Negative Errno.ENOENT))
    end

let d_move t d ~new_parent ~new_name =
  hash_remove t d;
  (* A rename is tracked coherently in the cache: completeness of both the
     old and new parents survives (§5.1). *)
  (match (d.d_parent, d.d_sibling) with
  | Some parent, Some node ->
    Dlist.remove parent.d_children node;
    d.d_sibling <- None
  | _ -> ());
  d.d_parent <- Some new_parent;
  d.d_name <- new_name;
  let sibling = Dlist.node d in
  Dlist.push_back new_parent.d_children sibling;
  d.d_sibling <- Some sibling;
  hash_insert t d

(* --- self check ---

   Structural invariants of the cache, used as a property-test oracle:
   every cached dentry is on the reclaim list, hashed, reachable from its
   parent's child list, findable through the primary hash table, and its
   fast-dentry state is internally consistent. *)

let self_check t =
  let problems = ref [] in
  let problem fmt = Printf.ksprintf (fun m -> problems := m :: !problems) fmt in
  let seen = ref 0 in
  Dlist.iter
    (fun d ->
      incr seen;
      if not d.d_hashed then problem "dentry %d (%s) on reclaim list but unhashed" d.d_id d.d_name;
      (match d.d_parent with
      | None -> problem "dentry %d (%s) on reclaim list without a parent" d.d_id d.d_name
      | Some parent ->
        if not (parent.d_sb == d.d_sb) then
          problem "dentry %d crosses superblocks to its parent" d.d_id;
        if not (parent.d_hashed || parent.d_parent = None) then
          problem "dentry %d (%s) cached under an unhashed parent" d.d_id d.d_name;
        (match d.d_sibling with
        | None -> problem "dentry %d (%s) missing from its parent's child list" d.d_id d.d_name
        | Some node ->
          if not (Dlist.value node == d) then problem "dentry %d sibling node mismatch" d.d_id);
        (match lookup t parent d.d_name with
        | Some found when found == d -> ()
        | Some _ -> problem "hash table finds a different dentry for %d (%s)" d.d_id d.d_name
        | None -> problem "dentry %d (%s) not findable in the hash table" d.d_id d.d_name));
      if d.d_complete && not (dentry_is_dir d) then
        problem "non-directory dentry %d marked DIR_COMPLETE" d.d_id;
      if d.d_dlht_ns <> None && d.d_sig = None then
        problem "dentry %d in a DLHT without a signature" d.d_id;
      (match d.d_alias with
      | Some real when real == d -> problem "dentry %d aliases itself" d.d_id
      | _ -> ()))
    t.clock;
  let count = Atomic.get t.count in
  if !seen <> count then
    problem "reclaim list holds %d dentries but count is %d" !seen count;
  let in_buckets =
    Array.fold_left (fun acc bucket -> acc + List.length (Atomic.get bucket)) 0 t.buckets
  in
  (* roots are unhashed and not counted; every counted dentry is hashed *)
  if in_buckets <> count then
    problem "hash table holds %d entries but count is %d" in_buckets count;
  List.rev !problems

(* --- scrub ---

   The repairing counterpart of [self_check]: a dentry whose hash-table,
   child-list or reclaim-list state is inconsistent cannot be trusted to
   answer lookups, so it is quarantined — force-detached together with its
   (equally unreachable) cached children.  Detaching runs the shootdown
   hook, so any direct-lookup state the broken dentry still held dies with
   it; the next walk re-resolves from the file system. *)

type scrub_report = {
  scrub_scanned : int;
  scrub_quarantined : int;
  scrub_problems : string list;
}

let scrub t =
  let problems = ref [] in
  let note fmt = Printf.ksprintf (fun m -> problems := m :: !problems) fmt in
  let scanned = ref 0 in
  let bad = ref [] in
  Dlist.iter
    (fun d ->
      incr scanned;
      let broken =
        if not d.d_hashed then Some "on the reclaim list but unhashed"
        else
          match d.d_parent with
          | None -> Some "no parent"
          | Some parent -> (
            match d.d_sibling with
            | None -> Some "missing from its parent's child list"
            | Some node when not (Dlist.value node == d) -> Some "sibling node mismatch"
            | Some _ -> (
              match lookup t parent d.d_name with
              | Some found when found == d -> None
              | Some _ -> Some "shadowed in the hash table"
              | None -> Some "not findable in the hash table"))
      in
      match broken with
      | None -> ()
      | Some why ->
        note "quarantined dentry %d (%s): %s" d.d_id d.d_name why;
        bad := d :: !bad)
    t.clock;
  let quarantined = ref 0 in
  List.iter
    (fun d ->
      (* A quarantined parent takes its children down in [drop_children];
         skip entries already detached that way ([d_lru] cleared). *)
      if d.d_lru <> None then begin
        drop_children t d;
        detach ~reclaim:true t d;
        incr quarantined;
        Trace.bump_cause Trace.cause_quarantined;
        Trace.stamp Trace.ev_quarantine d.d_id;
        Counter.incr t.counters "dcache_quarantined"
      end)
    !bad;
  {
    scrub_scanned = !scanned;
    scrub_quarantined = !quarantined;
    scrub_problems = List.rev !problems;
  }

(* --- completeness (§5.1) --- *)

let bump_dir_gen d = d.d_dir_gen <- d.d_dir_gen + 1

let prune_children t d = drop_children t d

let set_complete t d =
  if t.config.Config.dir_completeness && dentry_is_dir d then begin
    d.d_complete <- true;
    Counter.incr t.counters "completeness_set"
  end

let clear_complete d = d.d_complete <- false
let is_complete t d = t.config.Config.dir_completeness && d.d_complete
