(** Path resolution: the component-at-a-time slowpath (paper §2.2).

    This is the faithful model of Linux's [link_path_walk]: for every
    component, check search permission on the directory (through the LSM
    stack), probe the primary hash table, fill from the low-level file
    system on a miss, resolve symlinks with a depth limit, and cross mount
    points.  Cost is linear in the number of components — exactly what the
    optimized fastpath (in [dcache_core]) avoids.

    Like Linux's RCU-walk/ref-walk split, resolution first runs in {!Rcu}
    mode under the read lock (no cache mutation allowed; raises internally
    and retries) and falls back to {!Ref} mode under the write lock when the
    cache must be filled.  In [Ref] mode the walk also performs the paper's
    mutation-side caching: deep negative dentries (§5.2) and symlink alias
    dentries (§4.2), when enabled in the configuration. *)

open Types

type ctx = {
  cred : Dcache_cred.Cred.t;
  root : path_ref;
  cwd : path_ref;
  ns : namespace;
  registry : Dcache_cred.Lsm.registry;
}

type mode = Rcu  (** read-locked; no cache mutation *) | Ref  (** write-locked *)

type flags = {
  follow_last : bool;  (** follow a trailing symlink (stat vs lstat) *)
  must_dir : bool;  (** final component must be a directory *)
  collect : bool;  (** record the visited chain for DLHT/PCC population *)
}

val default_flags : flags
(** [{follow_last = true; must_dir = false; collect = false}] *)

type result_ = {
  outcome : (path_ref, Dcache_types.Errno.t) result;
      (** The final (mount, dentry), after mount traversal; negative results
          surface as the errno. *)
  visited : path_ref list;
      (** With [collect]: the literal-path chain in walk order — every
          directory whose search permission passed, symlink-alias dentries
          where applicable, and the final dentry (even a negative one). *)
  absolute : bool;  (** the walk started at the process root *)
}

val resolve : Dcache.t -> ctx -> ?flags:flags -> string -> result_
(** Two-phase resolution: Rcu attempt under the read lock, Ref retry under
    the write lock.  Do not call with either lock held. *)

val resolve_in_mode : mode -> Dcache.t -> ctx -> ?flags:flags -> string -> result_
(** Caller already holds the matching lock side.  In [Rcu] mode, a needed
    mutation aborts the walk with outcome [Error EAGAIN]-like retry: the
    exception is mapped to [Need_refwalk]. *)

val resolve_resumed :
  Dcache.t -> ctx -> ?flags:flags -> start_at:path_ref -> string -> result_
(** Prefix-resumed slowpath entry (§3.5): resolve the remaining [suffix]
    of a missed path starting at [start_at], the longest cached ancestor,
    instead of the root/cwd.  Runs in {!Ref} mode — the caller must hold
    the write lock and must already have re-validated [start_at] under it
    (cached, PCC-covered, positive directory, mount-traversed).  The
    result's [visited] covers only the suffix components walked, and
    [absolute] is [false] regardless of the suffix text, so population
    applies the directory-reference rule against [start_at]. *)

val resume_sibling :
  Dcache.t ->
  ctx ->
  start_at:path_ref ->
  follow:bool ->
  string ->
  [ `Child of path_ref  (** positive hit/fill, mount-traversed *)
  | `Neg of dentry * Dcache_types.Errno.t
    (** negative child (cached or freshly filled), for DLHT publication *)
  | `Err of Dcache_types.Errno.t  (** definitive failure, nothing to publish *)
  | `Bail  (** off the happy path (trailing symlink to follow): use
               {!resolve_resumed} *) ]
(** Grouped resumed walk (§3.9): resolve a {e single} plain final
    component under [start_at] with one permission check and one dcache
    probe-or-fill, skipping [walk_internal] entirely — the batched
    slowpath uses it for runs of misses sharing an already-walked parent.
    [follow] is the caller's [follow_last]; a symlink result bails rather
    than splicing.  Same locking contract as {!resolve_resumed}.  Bumps
    "walk_resumed_sibling" instead of "walk_slowpath"/"walk_components". *)

exception Need_refwalk
(** Raised (only) from [resolve_in_mode Rcu] when the walk cannot proceed
    without mutating the cache. *)

type parent_result = {
  parent : path_ref;  (** the containing directory (positive, searchable) *)
  last : string;  (** final component name *)
  child : dentry option;
      (** cached/filled child — positive or negative; [None] when the fs
          reports absence but does not cache negatives *)
  trailing_slash : bool;
  p_visited : path_ref list;
  p_absolute : bool;
}

val resolve_parent :
  mode -> Dcache.t -> ctx -> ?collect:bool -> string ->
  (parent_result, Dcache_types.Errno.t) result
(** Resolve all but the final component (used by create/unlink/rename-style
    operations).  The final component must be a plain name — [.] and [..]
    yield [EINVAL].  The child, if present, is returned as-is: no symlink
    following, no mount crossing. *)

val check_exec : ctx -> Inode.t -> bool
(** Search-permission check on a directory inode via DAC + LSM stack. *)
