open Dcache_types

type t = {
  fs : Dcache_fs.Fs_intf.t;
  ino : int;
  mutable attr : Attr.t;
  mutable link_cache : string option;
}

let make ~fs attr = { fs; ino = attr.Attr.ino; attr; link_cache = None }
let fs t = t.fs
let ino t = t.ino
let attr t = t.attr
let kind t = t.attr.Attr.kind
let is_dir t = File_kind.equal (kind t) File_kind.Directory

let adopt_attr t (attr : Attr.t) =
  if t.attr <> attr then begin
    t.attr <- attr;
    (* The file changed under the same inode number; a cached symlink
       target can no longer be trusted either. *)
    t.link_cache <- None
  end

let refresh t =
  match t.fs.Dcache_fs.Fs_intf.getattr t.ino with
  | Ok attr ->
    t.attr <- attr;
    Ok ()
  | Error _ as e -> Result.map (fun _ -> ()) e

let setattr t changes =
  match t.fs.Dcache_fs.Fs_intf.setattr t.ino changes with
  | Ok attr ->
    t.attr <- attr;
    Ok ()
  | Error e -> Error e

let bump_nlink t delta = t.attr <- { t.attr with Attr.nlink = t.attr.Attr.nlink + delta }
let note_size t size = t.attr <- { t.attr with Attr.size }

let cached_symlink_target t = t.link_cache

let symlink_target t =
  match t.link_cache with
  | Some target -> Ok target
  | None -> (
    match t.fs.Dcache_fs.Fs_intf.readlink t.ino with
    | Ok target ->
      t.link_cache <- Some target;
      Ok target
    | Error _ as e -> e)

let invalidate_symlink_cache t = t.link_cache <- None
