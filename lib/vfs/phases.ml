(** Per-phase lookup instrumentation (reproduces paper Fig. 3).

    When enabled, the walk and fastpath code attribute elapsed wall time to
    the paper's five principal components of a path lookup.  Disabled by
    default because timestamping costs more than some phases themselves. *)

type phase = Init | Permission | Scan_hash | Table_lookup | Finalize

let all = [ Init; Permission; Scan_hash; Table_lookup; Finalize ]

let name = function
  | Init -> "initialization"
  | Permission -> "permission check"
  | Scan_hash -> "path scanning & hashing"
  | Table_lookup -> "hash table lookup"
  | Finalize -> "finalization"

let index = function
  | Init -> 0
  | Permission -> 1
  | Scan_hash -> 2
  | Table_lookup -> 3
  | Finalize -> 4

let enabled = ref false

(* Native-int nanosecond accumulators: the fastpath stamps spans straight
   into this array, and int arithmetic keeps even the enabled case free of
   Int64 boxing on the recording side. *)
let acc = Array.make 5 0
let counts = Array.make 5 0

let reset () =
  Array.fill acc 0 5 0;
  Array.fill counts 0 5 0

let record phase ns =
  let i = index phase in
  acc.(i) <- acc.(i) + ns;
  counts.(i) <- counts.(i) + 1

(** {2 Direct stamping (fastpath)}

    [timed] wraps the phase in a closure, which the probe path cannot afford
    (each closure captures its environment and allocates).  The fastpath
    instead takes raw stamps and charges the span explicitly:
    {[
      let t0 = Phases.stamp () in
      ... phase body ...
      Phases.record_span Phases.Scan_hash t0
    ]}
    When instrumentation is disabled, [stamp] returns 0 without reading the
    clock and [record_span] is a single branch. *)

let[@inline] stamp () = if !enabled then Dcache_util.Clock.now_int_ns () else 0

let[@inline] record_span phase t0 =
  if !enabled then record phase (Dcache_util.Clock.now_int_ns () - t0)

(** [timed phase f] runs [f], charging its duration to [phase] when
    instrumentation is enabled.  Convenient for the slowpath walk, where the
    closure cost is noise. *)
let timed phase f =
  if not !enabled then f ()
  else begin
    let t0 = Dcache_util.Clock.now_int_ns () in
    let result = f () in
    record phase (Dcache_util.Clock.now_int_ns () - t0);
    result
  end

let totals () = List.map (fun p -> (p, Int64.of_int acc.(index p))) all
