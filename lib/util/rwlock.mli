(** Reader-writer lock with an atomic reader count.

    The Linux dcache read path is RCU; we model the same read-mostly shape
    with a lock whose read side is two atomic operations and never blocks
    other readers, so lookup scalability (paper Fig. 8) is observable under
    OCaml 5 domains. Writers exclude both readers and other writers. *)

type t

val create : unit -> t
val read_lock : t -> unit
val read_unlock : t -> unit
val write_lock : t -> unit
val write_unlock : t -> unit
val with_read : t -> (unit -> 'a) -> 'a
val with_write : t -> (unit -> 'a) -> 'a

val write_held : t -> bool
(** True while a writer holds the lock.  Stable when asked from inside
    one's own critical section; elsewhere just a snapshot. *)

val acquisition_counts : unit -> int * int
(** [(reads, writes)] acquired by the {e calling domain} since its last
    reset, across all locks.  Per-domain (DLS), so a reader domain's count
    stays exact while other domains hammer the same locks.  Test oracle
    for the lockless fastpath's "zero rwlock acquisitions" guarantee. *)

val reset_acquisition_counts : unit -> unit
(** Reset the calling domain's counts. *)
