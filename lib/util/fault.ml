(* Central fault-injection registry.

   Every layer that can fail registers named sites ("blockdev.read_eio",
   "netfs.drop", ...) against an injector and asks [fire] at the point the
   failure would be observed.  Schedules are driven by the deterministic
   PRNG, so a fault campaign replays exactly from its seed.

   The disabled path is deliberately allocation-free: a disarmed [fire] is
   one integer bump and a constructor match, so production-shaped code can
   keep its fault hooks compiled in without perturbing the warm-fastpath
   zero-allocation guarantee (asserted in test/t_alloc.ml and t_fault.ml). *)

type schedule =
  | Off
  | Always
  | Nth of int
  | Probability of float
  | Window of { first : int; last : int }

type site = {
  s_name : string;
  s_prng : Prng.t;
  mutable s_schedule : schedule;
  mutable s_armed_at : int;  (* [s_arrivals] when the schedule was armed *)
  mutable s_arrivals : int;
  mutable s_injected : int;
}

type t = {
  seed : int;
  by_name : (string, site) Hashtbl.t;
  mutable order : site list;  (* reverse registration order *)
}

exception Crash of string

let checks_enabled = ref false

let create ?(seed = 1) () = { seed; by_name = Hashtbl.create 16; order = [] }

let seed t = t.seed

let site t name =
  match Hashtbl.find_opt t.by_name name with
  | Some s -> s
  | None ->
    (* Derive the per-site stream from (injector seed, site name) so adding
       or reordering sites never perturbs another site's schedule. *)
    let s =
      {
        s_name = name;
        s_prng = Prng.create ((t.seed lxor (Hashtbl.hash name * 0x9e3779b9)) land max_int);
        s_schedule = Off;
        s_armed_at = 0;
        s_arrivals = 0;
        s_injected = 0;
      }
    in
    Hashtbl.add t.by_name name s;
    t.order <- s :: t.order;
    s

let sites t = List.rev t.order
let name s = s.s_name
let arrivals s = s.s_arrivals
let injected s = s.s_injected

let schedule_name s =
  match s.s_schedule with
  | Off -> "off"
  | Always -> "always"
  | Nth n -> Printf.sprintf "nth:%d" n
  | Probability p -> Printf.sprintf "p:%.3f" p
  | Window { first; last } -> Printf.sprintf "window:%d-%d" first last

let arm s schedule =
  (match schedule with
  | Nth n when n <= 0 -> invalid_arg "Fault.arm: Nth wants a positive ordinal"
  | Probability p when not (p >= 0.0 && p <= 1.0) ->
    invalid_arg "Fault.arm: Probability wants p in [0, 1]"
  | Window { first; last } when first <= 0 || last < first ->
    invalid_arg "Fault.arm: Window wants 1 <= first <= last"
  | _ -> ());
  s.s_schedule <- schedule;
  s.s_armed_at <- s.s_arrivals

let disarm s = s.s_schedule <- Off

let hit s =
  s.s_injected <- s.s_injected + 1;
  Trace.stamp Trace.ev_fault_fire s.s_arrivals;
  true

let fire s =
  s.s_arrivals <- s.s_arrivals + 1;
  match s.s_schedule with
  | Off -> false
  | Always -> hit s
  | Nth n ->
    (* One-shot: the nth arrival after arming fails, then the site disarms. *)
    if s.s_arrivals - s.s_armed_at = n then begin
      s.s_schedule <- Off;
      hit s
    end
    else false
  | Probability p -> if Prng.float s.s_prng 1.0 < p then hit s else false
  | Window { first; last } ->
    let k = s.s_arrivals - s.s_armed_at in
    if k >= first && k <= last then hit s else false

let crash_point s = if fire s then raise (Crash s.s_name)

let prng s = s.s_prng
