(** Striped lock table: a fixed power-of-two array of (mutex, seqcount)
    pairs plus per-stripe acquisition/contention counters.

    The sharded mutation path hashes a dentry (or DLHT bucket) to a stripe
    and serializes mutations per-stripe instead of through the global write
    lock.  Each stripe's seqcount is bracketed inside the mutex hold, so a
    lockless reader that recorded the stripe's seq before probing can
    detect any overlapping mutation at commit time.

    Deadlock discipline: never take a second stripe except through
    {!lock2}, which acquires in index order. *)

type t

val create : int -> t
(** [create n] builds a table of [n] stripes.
    @raise Invalid_argument unless [n] is a positive power of two. *)

val size : t -> int
val index : t -> int -> int
(** [index t hash] maps a hash to its stripe: [hash land (size t - 1)]. *)

val seq : t -> int -> Seqcount.t
(** The stripe's seqcount — odd while a mutation is in flight. *)

val lock : t -> int -> unit
(** Acquire stripe [i]: mutex (counting contention on [try_lock] failure,
    stamping {!Trace.ev_stripe_contended}), then [Seqcount.write_begin]. *)

val unlock : t -> int -> unit

val lock2 : t -> int -> int -> unit
(** Acquire two stripes in index order; [i = j] collapses to one. *)

val unlock2 : t -> int -> int -> unit
val with_lock : t -> int -> (unit -> 'a) -> 'a

val acquisitions : t -> int -> int
val contentions : t -> int -> int

val totals : t -> int * int
(** [(acquired, contended)] summed over all stripes. *)

val to_string : t -> string
(** Header ([stripes]/[acquired]/[contended]) plus one
    [stripe index acquired contended] line per stripe. *)
