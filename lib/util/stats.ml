type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  ci95 : float;
}

let mean samples =
  let n = Array.length samples in
  assert (n > 0);
  Array.fold_left ( +. ) 0.0 samples /. float_of_int n

let summarize samples =
  let n = Array.length samples in
  assert (n > 0);
  let m = mean samples in
  let var =
    if n < 2 then 0.0
    else begin
      let acc = ref 0.0 in
      Array.iter
        (fun x ->
          let d = x -. m in
          acc := !acc +. (d *. d))
        samples;
      !acc /. float_of_int (n - 1)
    end
  in
  let stddev = sqrt var in
  let min = Array.fold_left Float.min samples.(0) samples in
  let max = Array.fold_left Float.max samples.(0) samples in
  (* 1.96 is the asymptotic z for 95%; fine for our sample counts. *)
  let ci95 = if n < 2 then 0.0 else 1.96 *. stddev /. sqrt (float_of_int n) in
  { n; mean = m; stddev; min; max; ci95 }

let summarize_ns samples = summarize (Array.map Int64.to_float samples)

let sorted_copy samples =
  let copy = Array.copy samples in
  (* [Float.compare], not polymorphic [compare]: every percentile/median in
     every benchmark report sorts through here, and the polymorphic version
     dispatches on the runtime representation per element. *)
  Array.sort Float.compare copy;
  copy

let median samples =
  let s = sorted_copy samples in
  let n = Array.length s in
  assert (n > 0);
  if n mod 2 = 1 then s.(n / 2) else (s.((n / 2) - 1) +. s.(n / 2)) /. 2.0

(* Nearest-rank percentile.  p = 0 is defined as the minimum (the ceil
   formula would give rank 0, and clamping that to index 0 only happens to
   be right — make it explicit); p = 100 lands on rank n = the maximum.
   The [min] guard protects against float rounding pushing the rank past n
   for p just under 100. *)
let percentile samples p =
  if not (p >= 0.0 && p <= 100.0) then
    invalid_arg "Stats.percentile: p outside [0, 100]";
  let s = sorted_copy samples in
  let n = Array.length s in
  assert (n > 0);
  if p = 0.0 then s.(0)
  else begin
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
    s.(Stdlib.min (n - 1) (rank - 1))
  end

let summary_to_string s =
  Printf.sprintf "n=%d mean=%.1f stddev=%.1f min=%.1f max=%.1f ci95=%.1f" s.n
    s.mean s.stddev s.min s.max s.ci95

type histogram = { lo : float; hi : float; counts : int array }

let histogram ?(buckets = 10) samples =
  assert (Array.length samples > 0 && buckets > 0);
  let lo = Array.fold_left Float.min samples.(0) samples in
  let hi = Array.fold_left Float.max samples.(0) samples in
  let counts = Array.make buckets 0 in
  let width = if hi > lo then (hi -. lo) /. float_of_int buckets else 1.0 in
  Array.iter
    (fun x ->
      let idx =
        Stdlib.min (buckets - 1) (int_of_float ((x -. lo) /. width))
      in
      counts.(idx) <- counts.(idx) + 1)
    samples;
  { lo; hi; counts }

(* --- GC-aware measurement (words of minor-heap allocation per op) ---

   [Gc.minor_words] counts every word ever allocated in the minor heap
   (including values later promoted), so a delta across a loop divided by
   the iteration count is the average allocation cost of one operation —
   the number the fastpath's memory discipline drives to zero. *)

let minor_words_per_op ~iters f =
  assert (iters > 0);
  f ();
  (* warm: first call may build caches/scratch *)
  let w0 = Gc.minor_words () in
  for _ = 1 to iters do
    f ()
  done;
  let w1 = Gc.minor_words () in
  (w1 -. w0) /. float_of_int iters

let hist_to_string h =
  let buf = Buffer.create 256 in
  let buckets = Array.length h.counts in
  let width = (h.hi -. h.lo) /. float_of_int buckets in
  let peak = Array.fold_left Stdlib.max 1 h.counts in
  Array.iteri
    (fun i count ->
      let lo = h.lo +. (float_of_int i *. width) in
      let bar = String.make (count * 40 / peak) '#' in
      Buffer.add_string buf (Printf.sprintf "%12.1f | %-40s %d\n" lo bar count))
    h.counts;
  Buffer.contents buf

(* --- log2-bucketed integer histograms (HDR-style) ---

   Fixed-size int arrays so [record] is a handful of stores and compares —
   no allocation, ever — which lets the tracing layer keep latency
   histograms armed on the fastpath without breaking the zero-allocation
   discipline.  Bucket 0 holds value 0 (and clamped negatives); bucket i>0
   holds [2^(i-1), 2^i).  63-bit ints need at most bucket 62, so 64 buckets
   cover every value with no range check on the hot path. *)

module Lhist = struct
  let nbuckets = 64

  type t = {
    counts : int array;
    mutable n : int;
    mutable sum : int;
    mutable vmin : int;
    mutable vmax : int;
  }

  let create () =
    { counts = Array.make nbuckets 0; n = 0; sum = 0; vmin = max_int; vmax = min_int }

  let reset t =
    Array.fill t.counts 0 nbuckets 0;
    t.n <- 0;
    t.sum <- 0;
    t.vmin <- max_int;
    t.vmax <- min_int

  (* Top-level recursion, not a loop over a ref: the shift count is the
     floor log2, and tail calls over ints allocate nothing. *)
  let rec log2_floor v acc = if v <= 1 then acc else log2_floor (v lsr 1) (acc + 1)

  let bucket_of v = if v <= 0 then 0 else 1 + log2_floor v 0
  let bucket_lo i = if i <= 0 then 0 else 1 lsl (i - 1)

  let record t v =
    let v = if v < 0 then 0 else v in
    let b = bucket_of v in
    t.counts.(b) <- t.counts.(b) + 1;
    t.n <- t.n + 1;
    t.sum <- t.sum + v;
    if v < t.vmin then t.vmin <- v;
    if v > t.vmax then t.vmax <- v

  let count t = t.n
  let bucket_count t i = t.counts.(i)
  let min_value t = if t.n = 0 then 0 else t.vmin
  let max_value t = if t.n = 0 then 0 else t.vmax
  let mean t = if t.n = 0 then 0.0 else float_of_int t.sum /. float_of_int t.n

  (* Nearest-rank over the buckets: find the bucket holding the rank'th
     sample and report its midpoint, clamped into the exact [vmin, vmax]
     envelope so a one-bucket histogram reports exact figures. *)
  let percentile t p =
    if not (p >= 0.0 && p <= 100.0) then
      invalid_arg "Stats.Lhist.percentile: p outside [0, 100]";
    if t.n = 0 then 0
    else if p = 0.0 then t.vmin
    else if p = 100.0 then t.vmax
    else begin
      let rank = int_of_float (ceil (p /. 100.0 *. float_of_int t.n)) in
      let rec go i cum =
        if i >= nbuckets then t.vmax
        else begin
          let cum = cum + t.counts.(i) in
          if cum >= rank then begin
            let lo = bucket_lo i in
            let mid = if i = 0 then 0 else lo + (lo / 2) in
            Stdlib.max t.vmin (Stdlib.min t.vmax mid)
          end
          else go (i + 1) cum
        end
      in
      go 0 0
    end

  let to_string t =
    Printf.sprintf "n %d min %d p50 %d p90 %d p99 %d max %d mean %.1f"
      t.n (min_value t) (percentile t 50.0) (percentile t 90.0)
      (percentile t 99.0) (max_value t) (mean t)
end

module Counter = struct
  (* Multi-writer-safe counter sets.  A cell is a small array of atomic
     slots indexed by [domain id mod slots]: a bump is one uncontended
     fetch-and-add on (usually) the caller's own slot, so concurrent
     domains never lose counts — the slot is atomic even when two domain
     ids collide on it — and a single-domain test still reads exact
     figures.  The bump allocates nothing, which keeps cached cells legal
     inside the zero-allocation warm fastpath.

     The key → cell map is an immutable [Map] behind an [Atomic]: lookups
     are lock-free over a persistent snapshot, and the rare first-use
     insertion CAS-loops.  Cells are never removed, so a cell cached at
     create time stays valid forever; [reset] zeroes slots in place. *)

  let slots = 8
  let slot_mask = slots - 1

  type cell = int Atomic.t array

  module M = Map.Make (String)

  type t = cell M.t Atomic.t

  let create () : t = Atomic.make M.empty

  let rec cell (t : t) key =
    let m = Atomic.get t in
    match M.find_opt key m with
    | Some c -> c
    | None ->
      let c = Array.init slots (fun _ -> Atomic.make 0) in
      if Atomic.compare_and_set t m (M.add key c m) then c else cell t key

  let[@inline] bump (c : cell) = Atomic.incr c.((Domain.self () :> int) land slot_mask)

  let[@inline] bump_by (c : cell) n =
    ignore (Atomic.fetch_and_add c.((Domain.self () :> int) land slot_mask) n)

  let cell_value (c : cell) =
    let sum = ref 0 in
    for i = 0 to slots - 1 do
      sum := !sum + Atomic.get c.(i)
    done;
    !sum

  let incr t key = bump (cell t key)
  let add t key n = bump_by (cell t key) n

  let get t key =
    match M.find_opt key (Atomic.get t) with Some c -> cell_value c | None -> 0

  (* Zero in place: hot paths hold on to cells obtained from [cell], and
     those cells must survive a stats reset. *)
  let reset t = M.iter (fun _ c -> Array.iter (fun a -> Atomic.set a 0) c) (Atomic.get t)

  (* [M.fold] visits keys in increasing order; the cons builds descending,
     so reverse to keep the documented sorted-by-key contract. *)
  let to_assoc t =
    List.rev (M.fold (fun k c acc -> (k, cell_value c) :: acc) (Atomic.get t) [])
end
