type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  ci95 : float;
}

let mean samples =
  let n = Array.length samples in
  assert (n > 0);
  Array.fold_left ( +. ) 0.0 samples /. float_of_int n

let summarize samples =
  let n = Array.length samples in
  assert (n > 0);
  let m = mean samples in
  let var =
    if n < 2 then 0.0
    else begin
      let acc = ref 0.0 in
      Array.iter
        (fun x ->
          let d = x -. m in
          acc := !acc +. (d *. d))
        samples;
      !acc /. float_of_int (n - 1)
    end
  in
  let stddev = sqrt var in
  let min = Array.fold_left Float.min samples.(0) samples in
  let max = Array.fold_left Float.max samples.(0) samples in
  (* 1.96 is the asymptotic z for 95%; fine for our sample counts. *)
  let ci95 = if n < 2 then 0.0 else 1.96 *. stddev /. sqrt (float_of_int n) in
  { n; mean = m; stddev; min; max; ci95 }

let summarize_ns samples = summarize (Array.map Int64.to_float samples)

let sorted_copy samples =
  let copy = Array.copy samples in
  (* [Float.compare], not polymorphic [compare]: every percentile/median in
     every benchmark report sorts through here, and the polymorphic version
     dispatches on the runtime representation per element. *)
  Array.sort Float.compare copy;
  copy

let median samples =
  let s = sorted_copy samples in
  let n = Array.length s in
  assert (n > 0);
  if n mod 2 = 1 then s.(n / 2) else (s.((n / 2) - 1) +. s.(n / 2)) /. 2.0

let percentile samples p =
  let s = sorted_copy samples in
  let n = Array.length s in
  assert (n > 0);
  let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
  let idx = Stdlib.max 0 (Stdlib.min (n - 1) (rank - 1)) in
  s.(idx)

type histogram = { lo : float; hi : float; counts : int array }

let histogram ?(buckets = 10) samples =
  assert (Array.length samples > 0 && buckets > 0);
  let lo = Array.fold_left Float.min samples.(0) samples in
  let hi = Array.fold_left Float.max samples.(0) samples in
  let counts = Array.make buckets 0 in
  let width = if hi > lo then (hi -. lo) /. float_of_int buckets else 1.0 in
  Array.iter
    (fun x ->
      let idx =
        Stdlib.min (buckets - 1) (int_of_float ((x -. lo) /. width))
      in
      counts.(idx) <- counts.(idx) + 1)
    samples;
  { lo; hi; counts }

(* --- GC-aware measurement (words of minor-heap allocation per op) ---

   [Gc.minor_words] counts every word ever allocated in the minor heap
   (including values later promoted), so a delta across a loop divided by
   the iteration count is the average allocation cost of one operation —
   the number the fastpath's memory discipline drives to zero. *)

let minor_words_per_op ~iters f =
  assert (iters > 0);
  f ();
  (* warm: first call may build caches/scratch *)
  let w0 = Gc.minor_words () in
  for _ = 1 to iters do
    f ()
  done;
  let w1 = Gc.minor_words () in
  (w1 -. w0) /. float_of_int iters

let hist_to_string h =
  let buf = Buffer.create 256 in
  let buckets = Array.length h.counts in
  let width = (h.hi -. h.lo) /. float_of_int buckets in
  let peak = Array.fold_left Stdlib.max 1 h.counts in
  Array.iteri
    (fun i count ->
      let lo = h.lo +. (float_of_int i *. width) in
      let bar = String.make (count * 40 / peak) '#' in
      Buffer.add_string buf (Printf.sprintf "%12.1f | %-40s %d\n" lo bar count))
    h.counts;
  Buffer.contents buf

module Counter = struct
  type t = (string, int ref) Hashtbl.t

  let create () : t = Hashtbl.create 32

  let cell t key =
    match Hashtbl.find_opt t key with
    | Some r -> r
    | None ->
      let r = ref 0 in
      Hashtbl.add t key r;
      r

  let incr t key = Stdlib.incr (cell t key)
  let add t key n = cell t key := !(cell t key) + n
  let get t key = match Hashtbl.find_opt t key with Some r -> !r | None -> 0

  (* Zero in place rather than [Hashtbl.reset]: hot paths hold on to cells
     obtained from [cell] so each increment is a single store with no table
     lookup, and those cells must survive a stats reset. *)
  let reset t = Hashtbl.iter (fun _ r -> r := 0) t

  let to_assoc t =
    Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
end
