(* A fixed power-of-two table of stripe locks (lock striping, DragonFly
   namecache style): each stripe pairs a mutex with a seqcount so lockless
   readers can record the stripes their probe touched and revalidate them at
   commit time, exactly like the global write seqcount but scoped to the
   hash range a mutation actually disturbed.

   Deadlock discipline: a holder of one stripe may only acquire a second
   through [lock2], which orders by stripe index; everything else takes a
   single stripe at a time.  The seqcount bracket is opened after the mutex
   is won and closed before it is released, so an odd stripe seq always
   means "mutation in flight here".

   Each stripe also carries acquisition / contention counters (atomic, the
   stripes are the multi-writer hot path) surfaced through /proc/dcache. *)

type t = {
  mask : int;
  locks : Mutex.t array;
  seqs : Seqcount.t array;
  acquired : int Atomic.t array;
  contended : int Atomic.t array;
}

let create n =
  if n <= 0 || n land (n - 1) <> 0 then
    invalid_arg "Locktab.create: stripe count must be a positive power of two";
  {
    mask = n - 1;
    locks = Array.init n (fun _ -> Mutex.create ());
    seqs = Array.init n (fun _ -> Seqcount.create ());
    acquired = Array.init n (fun _ -> Atomic.make 0);
    contended = Array.init n (fun _ -> Atomic.make 0);
  }

let size t = t.mask + 1
let index t hash = hash land t.mask

(* The seqcount for stripe [i]: readers snapshot it before probing state
   guarded by the stripe and revalidate before trusting what they read. *)
let seq t i = t.seqs.(i)

let lock t i =
  if not (Mutex.try_lock t.locks.(i)) then begin
    Atomic.incr t.contended.(i);
    Trace.stamp Trace.ev_stripe_contended i;
    Mutex.lock t.locks.(i)
  end;
  Atomic.incr t.acquired.(i);
  Seqcount.write_begin t.seqs.(i)

let unlock t i =
  Seqcount.write_end t.seqs.(i);
  Mutex.unlock t.locks.(i)

(* Two stripes in index order; [i = j] degenerates to a single acquisition
   (a stripe mutex is not recursive). *)
let lock2 t i j =
  if i = j then lock t i
  else if i < j then begin
    lock t i;
    lock t j
  end
  else begin
    lock t j;
    lock t i
  end

let unlock2 t i j =
  if i = j then unlock t i
  else begin
    unlock t i;
    unlock t j
  end

let with_lock t i f =
  lock t i;
  match f () with
  | result ->
    unlock t i;
    result
  | exception e ->
    unlock t i;
    raise e

let acquisitions t i = Atomic.get t.acquired.(i)
let contentions t i = Atomic.get t.contended.(i)

let totals t =
  let acq = ref 0 and cont = ref 0 in
  for i = 0 to t.mask do
    acq := !acq + Atomic.get t.acquired.(i);
    cont := !cont + Atomic.get t.contended.(i)
  done;
  (!acq, !cont)

(* One [stripe index acquired contended] line per stripe — /proc fodder. *)
let to_string t =
  let buf = Buffer.create 256 in
  Printf.bprintf buf "stripes %d\n" (size t);
  let acq, cont = totals t in
  Printf.bprintf buf "acquired %d\ncontended %d\n" acq cont;
  for i = 0 to t.mask do
    Printf.bprintf buf "stripe %d %d %d\n" i (Atomic.get t.acquired.(i))
      (Atomic.get t.contended.(i))
  done;
  Buffer.contents buf
