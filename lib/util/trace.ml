(* Kernel-wide tracing & metrics (ftrace-shaped, sized for the simulator).

   Three always-compiled-in, disarmed-by-default facilities:

   - an event ring: one preallocated int array, four interleaved words per
     entry (timestamp, event id, argument, span) behind a power-of-two
     mask.  An armed [stamp] is four adjacent int stores and an increment —
     no allocation, so the ring can stay armed across a zero-allocation
     fastpath run.  Disarmed it is a single
     load-and-branch.  Timestamps are the stamp's own sequence number by
     default (a total order is what trace analysis needs); flipping
     [real_clock] stamps [Clock.monotonic_ns] instead, which buys real
     nanoseconds at the cost of a boxed Int64 per stamp.

   - per-outcome-class latency histograms ({!Stats.Lhist}): armed by
     [timing], recorded by the fastpath entry around every lookup.  The
     histogram write itself never allocates; the clock read does (see
     Clock), which is why [timing] is a separate switch from [armed].

   - cause-attributed counters: why did a lookup miss or an entry die?
     Always on — each is bumped off the warm path (miss, invalidation and
     scrub paths only) with a single array store.

   Everything here is global state, like the subsystems it observes cutting
   across kernel instances; [reset ()] between experiments. *)

(* --- event taxonomy --- *)

let ev_fast_hit = 0
let ev_fast_neg = 1
let ev_fallback = 2
let ev_slowpath = 3
let ev_dlht_insert = 4
let ev_dlht_remove = 5
let ev_pcc_insert = 6
let ev_pcc_stale = 7
let ev_inval_rename = 8
let ev_inval_chmod = 9
let ev_quarantine = 10
let ev_complete_neg = 11
let ev_refwalk = 12
let ev_rpc_drop = 13
let ev_rpc_retry = 14
let ev_rpc_giveup = 15
let ev_rpc_drc_hit = 16
let ev_fault_fire = 17
let ev_dlht_resize_begin = 18
let ev_dlht_resize_end = 19
let ev_lockless_retry = 20
let ev_dlht_sigless_scan = 21
let ev_prefix_resume = 22
let ev_prefix_negfail = 23
let ev_stripe_contended = 24
let ev_lease_grant = 25
let ev_lease_expire = 26
let ev_lease_break = 27
let ev_lease_fence = 28
let ev_rpc_partition = 29
let ev_netfs_crash = 30
let ev_syscall = 31
let ev_rpc_send = 32
let ev_span_link = 33
let ev_batch_submit = 34
let ev_batch_split = 35
let n_events = 36

let event_names =
  [|
    "fastpath_hit";
    "fastpath_negative";
    "fastpath_fallback";
    "slowpath_walk";
    "dlht_insert";
    "dlht_remove";
    "pcc_insert";
    "pcc_stale_drop";
    "invalidate_rename";
    "invalidate_chmod";
    "quarantine";
    "complete_dir_negative";
    "refwalk_retry";
    "rpc_drop";
    "rpc_retry";
    "rpc_giveup";
    "rpc_drc_hit";
    "fault_fire";
    "dlht_resize_begin";
    "dlht_resize_end";
    "fastpath_lockless_retry";
    "dlht_sigless_scan";
    "prefix_resume";
    "prefix_negfail";
    "stripe_contended";
    "lease_grant";
    "lease_expire";
    "lease_break";
    "lease_fence";
    "rpc_partition";
    "netfs_crash";
    "syscall";
    "rpc_send";
    "span_link";
    "batch_submit";
    "batch_split";
  |]

let event_name ev = if ev >= 0 && ev < n_events then event_names.(ev) else "unknown"

(* --- the event ring --- *)

let default_capacity = 8192

(* One flat array, four words per entry (ts, ev, arg, span interleaved):
   an armed stamp's four stores land on one or two adjacent cache lines
   instead of four distinct lines in four parallel arrays — on a ring this
   size the lanes never stay resident, so the layout is most of the armed
   stamp's cost. *)
let ring_stride = 4
let armed = ref false
let real_clock = ref false
let timing = ref false
let ring_buf = ref (Array.make (default_capacity * ring_stride) 0)
let mask = ref (default_capacity - 1)

(* The ring cursor is atomic: sharded writers stamp from many domains at
   once, and a fetch-and-add hands each stamp its own slot so concurrent
   stamps never collapse into one.  The slot stores themselves stay plain —
   two stamps racing a full ring apart could tear a slot, which trace
   consumers already tolerate (the ring is diagnostic, not a statistic). *)
let seq = Atomic.make 0

let capacity () = Array.length !ring_buf / ring_stride

let configure ~capacity =
  if capacity <= 0 || capacity land (capacity - 1) <> 0 then
    invalid_arg "Trace.configure: capacity must be a positive power of two";
  ring_buf := Array.make (capacity * ring_stride) 0;
  mask := capacity - 1;
  Atomic.set seq 0

(* The entry base is masked by the array's own length (capacity and stride
   are both powers of two, so entry count = length lsr 2): no bounds-check
   branch, yet memory-safe even if a racing [configure] swaps the buffer
   mid-stamp. *)
let[@inline] stamp ev arg =
  if !armed then begin
    let s = Atomic.fetch_and_add seq 1 in
    let a = !ring_buf in
    let base = (s land ((Array.length a lsr 2) - 1)) * ring_stride in
    Array.unsafe_set a base (if !real_clock then Clock.monotonic_ns () else s);
    Array.unsafe_set a (base + 1) ev;
    Array.unsafe_set a (base + 2) arg;
    Array.unsafe_set a (base + 3) (Profiler.current ())
  end

let recorded () = Atomic.get seq
let dropped () = Stdlib.max 0 (Atomic.get seq - capacity ())

(* Oldest-first over whatever the ring still holds; [f seq ts ev arg span]. *)
let iter_events f =
  let cap = capacity () in
  let total = Atomic.get seq in
  let count = Stdlib.min total cap in
  let start = total - count in
  let a = !ring_buf in
  for k = 0 to count - 1 do
    let base = ((start + k) land !mask) * ring_stride in
    f (start + k) a.(base) a.(base + 1) a.(base + 2) a.(base + 3)
  done

(* --- cause-attributed counters --- *)

let cause_cold = 0
let cause_inval_rename = 1
let cause_inval_chmod = 2
let cause_seqcount_retry = 3
let cause_dir_incomplete = 4
let cause_quarantined = 5
let cause_resize_retry = 6
let n_causes = 7

let cause_names =
  [|
    "cold";
    "invalidated_by_rename";
    "invalidated_by_chmod";
    "seqcount_retry";
    "dir_incomplete";
    "quarantined";
    "seqcount_retry_resize";
  |]

(* Atomic: cause bumps come from miss/invalidation paths that run
   concurrently on sharded writer domains. *)
let causes = Array.init n_causes (fun _ -> Atomic.make 0)

let[@inline] bump_cause c = Atomic.incr causes.(c)
let cause_count c = Atomic.get causes.(c)
let cause_name c = cause_names.(c)

let causes_to_string () =
  let buf = Buffer.create 128 in
  for c = 0 to n_causes - 1 do
    Buffer.add_string buf
      (Printf.sprintf "%s %d\n" cause_names.(c) (Atomic.get causes.(c)))
  done;
  Buffer.contents buf

(* --- per-outcome-class latency histograms --- *)

let cls_fast = 0
let cls_fallback = 1
let cls_slowpath = 2
let cls_negative = 3
let cls_eio = 4
let n_classes = 5

let class_names = [| "fastpath_hit"; "fallback_hit"; "slowpath"; "negative"; "eio" |]
let class_name c = class_names.(c)

let lat = Array.init n_classes (fun _ -> Stats.Lhist.create ())
let latency c = lat.(c)

(* Also feeds the profiler's sliding window for the class: the cumulative
   histogram answers "since reset", the window answers "lately" (§3.8).
   Both stores are preallocated; the window store is a no-op unless the
   profiler is armed. *)
let[@inline] record_latency c ns =
  Stats.Lhist.record lat.(c) ns;
  Profiler.record_window c ns

(* Resume-depth histogram (§3.5): how many already-cached components each
   prefix-resumed miss skipped.  Not a latency class — depths, not ns — but
   the same preallocated log2 store, so recording is fastpath-safe. *)
let resume_depth = Stats.Lhist.create ()
let[@inline] record_resume_depth depth = Stats.Lhist.record resume_depth depth

(* Lease-age histogram (§3.7): how far into its ttl each lease was when the
   client consulted it at the lockless gate — ages in virtual ns, recorded
   on both verdicts (a live gate records the age served, an expired gate
   the overshoot clamped to the recordable range).  Same preallocated log2
   store as the latency classes, so the gate stays allocation-free. *)
let lease_age = Stats.Lhist.create ()
let[@inline] record_lease_age age = Stats.Lhist.record lease_age age

let histograms_to_string () =
  let buf = Buffer.create 512 in
  for c = 0 to n_classes - 1 do
    Buffer.add_string buf
      (Printf.sprintf "class %s %s\n" class_names.(c) (Stats.Lhist.to_string lat.(c)))
  done;
  Buffer.add_string buf
    (Printf.sprintf "class resume_depth %s\n" (Stats.Lhist.to_string resume_depth));
  Buffer.add_string buf
    (Printf.sprintf "class lease_age %s\n" (Stats.Lhist.to_string lease_age));
  (* Sliding windows (§3.8): the epoch in progress and the last completed
     one, per class — same line grammar with a [window cur|prev] prefix. *)
  Buffer.add_string buf (Printf.sprintf "window_epoch %d\n" (Profiler.window_epoch ()));
  for c = 0 to n_classes - 1 do
    Buffer.add_string buf
      (Printf.sprintf "window cur %s %s\n" class_names.(c)
         (Stats.Lhist.to_string (Profiler.window_cur c)));
    Buffer.add_string buf
      (Printf.sprintf "window prev %s %s\n" class_names.(c)
         (Stats.Lhist.to_string (Profiler.window_prev c)))
  done;
  Buffer.contents buf

(* --- arming / reset --- *)

let arm () =
  armed := true;
  timing := true

let disarm () =
  armed := false;
  timing := false

let reset () =
  Atomic.set seq 0;
  Array.iter (fun c -> Atomic.set c 0) causes;
  Array.iter Stats.Lhist.reset lat;
  Stats.Lhist.reset resume_depth;
  Stats.Lhist.reset lease_age

(* --- rendering --- *)

let ring_to_string ?(limit = 64) () =
  let buf = Buffer.create 1024 in
  Printf.bprintf buf "armed %b\n" !armed;
  Printf.bprintf buf "timing %b\n" !timing;
  Printf.bprintf buf "real_clock %b\n" !real_clock;
  Printf.bprintf buf "capacity %d\n" (capacity ());
  Printf.bprintf buf "recorded %d\n" (recorded ());
  Printf.bprintf buf "dropped %d\n" (dropped ());
  let total = recorded () in
  let skip = Stdlib.max 0 (Stdlib.min total (capacity ()) - limit) in
  let shown = ref 0 in
  iter_events (fun s ts ev arg span ->
      incr shown;
      if !shown > skip then
        if span = 0 then Printf.bprintf buf "%d %d %s %d\n" s ts (event_name ev) arg
        else Printf.bprintf buf "%d %d %s %d span=%d\n" s ts (event_name ev) arg span);
  Buffer.contents buf

(* Chrome trace_event JSON (the "JSON Array Format" with a traceEvents
   wrapper), loadable in chrome://tracing and Perfetto.  Every ring entry
   becomes a global instant event; [ts] is the raw stamp (sequence number,
   or ns when [real_clock] was set — the viewer's timescale label reads µs
   either way, which only affects the axis captions).  Event names are
   drawn from [event_names] and contain no characters needing escapes.

   Span-aware additions (§3.8): each distinct nonzero span among the
   retained events gets an async "b"/"e" bracket spanning its first and
   last stamp, so a request reads as one lane; each [ev_span_link] stamp
   (arg = the causing span, e.g. the mutator whose lease break forced this
   client's fallback) gets a flow "s"/"f" pair from the causing span's
   last retained event to the link — the cross-client causal edge. *)
let dump_chrome () =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  let first = ref true in
  let sep () = if !first then first := false else Buffer.add_char buf ',' in
  (* Span extents among retained events: span -> (first_ts, last_ts).
     Render path — allocation is fine here. *)
  let extents = Hashtbl.create 64 in
  let order = ref [] in
  iter_events (fun _s ts _ev _arg span ->
      if span <> 0 then
        match Hashtbl.find_opt extents span with
        | None ->
            Hashtbl.add extents span (ts, ts);
            order := span :: !order
        | Some (t0, _) -> Hashtbl.replace extents span (t0, ts));
  iter_events (fun s ts ev arg span ->
      sep ();
      Printf.bprintf buf
        "{\"name\":\"%s\",\"cat\":\"dcache\",\"ph\":\"i\",\"s\":\"g\",\"pid\":1,\"tid\":1,\"ts\":%d,\"args\":{\"seq\":%d,\"arg\":%d,\"span\":%d}}"
        (event_name ev) ts s arg span;
      if ev = ev_span_link && arg <> 0 then
        match Hashtbl.find_opt extents arg with
        | None -> ()  (* causing span's events already overwritten *)
        | Some (_, last) ->
            sep ();
            Printf.bprintf buf
              "{\"name\":\"cause\",\"cat\":\"flow\",\"ph\":\"s\",\"id\":%d,\"pid\":1,\"tid\":1,\"ts\":%d}"
              arg last;
            sep ();
            Printf.bprintf buf
              "{\"name\":\"cause\",\"cat\":\"flow\",\"ph\":\"f\",\"bp\":\"e\",\"id\":%d,\"pid\":1,\"tid\":1,\"ts\":%d}"
              arg ts);
  List.iter
    (fun span ->
      let t0, t1 = Hashtbl.find extents span in
      sep ();
      Printf.bprintf buf
        "{\"name\":\"span\",\"cat\":\"span\",\"ph\":\"b\",\"id\":%d,\"pid\":1,\"tid\":1,\"ts\":%d}"
        span t0;
      sep ();
      Printf.bprintf buf
        "{\"name\":\"span\",\"cat\":\"span\",\"ph\":\"e\",\"id\":%d,\"pid\":1,\"tid\":1,\"ts\":%d}"
        span t1)
    (List.rev !order);
  Buffer.add_string buf "]}";
  Buffer.contents buf
