(** Kernel-wide tracing & metrics: event ring, per-outcome-class latency
    histograms, cause-attributed counters.

    Everything is compiled in unconditionally and disarmed by default.
    The overhead discipline, proven by [test/t_alloc.ml] and the [trace]
    benchmark:

    - disarmed, every probe-site hook is one load-and-branch and allocates
      nothing — the warm fastpath keeps its zero-allocation guarantee;
    - an {e armed} ring {!stamp} is still allocation-free (the ring is
      three preallocated int arrays; the default timestamp is the stamp's
      own sequence number);
    - only [timing] mode pays for clock reads (two {!Clock.monotonic_ns}
      calls per lookup — ~100-150 ns, and allocation-free only as long as
      the compiler inlines the clock stub), which is why it is a separate
      switch.

    State is global (the subsystems it observes span kernel instances);
    call {!reset} between experiments. *)

(** {2 Switches} *)

val armed : bool ref
(** Gates the event ring.  {!arm}/{!disarm} flip it together with
    [timing]; set directly for ring-only capture. *)

val timing : bool ref
(** Gates latency-histogram recording (and its clock reads) in the
    fastpath entry. *)

val real_clock : bool ref
(** When set, ring stamps record {!Clock.monotonic_ns} instead of the
    sequence number — real timestamps at the cost of a clock read per
    stamp.  Default [false]. *)

val arm : unit -> unit
(** [armed := true; timing := true]. *)

val disarm : unit -> unit

val reset : unit -> unit
(** Empty the ring, zero the cause counters, reset the histograms.  Leaves
    the switches alone. *)

(** {2 The event ring} *)

val stamp : int -> int -> unit
(** [stamp ev arg] appends an event when armed; disarmed it is a branch.
    Never allocates ([real_clock] adds a clock read per stamp; see
    {!Clock.monotonic_ns} for its allocation caveat). *)

val configure : capacity:int -> unit
(** Replace the ring (default capacity 8192 events); empties it.
    @raise Invalid_argument unless [capacity] is a positive power of 2. *)

val capacity : unit -> int

val recorded : unit -> int
(** Total stamps since the last {!reset}/{!configure} (may exceed
    {!capacity}; the ring keeps the newest). *)

val dropped : unit -> int
(** Stamps the ring has overwritten: [max 0 (recorded - capacity)]. *)

val iter_events : (int -> int -> int -> int -> int -> unit) -> unit
(** [iter_events f] calls [f seq ts ev arg span] oldest-first over the
    retained events ([span] is the recording request's {!Profiler} span
    id, 0 when none). *)

val ring_to_string : ?limit:int -> unit -> string
(** Header ([armed]/[timing]/[capacity]/[recorded]/[dropped]) plus the
    newest [limit] (default 64) events, one [seq ts name arg] per line
    (with a [span=N] suffix when the event carries a span). *)

val dump_chrome : unit -> string
(** The retained ring as Chrome [trace_event] JSON, loadable in
    chrome://tracing / Perfetto: one instant per ring entry (span id in
    [args]), an async "b"/"e" bracket per distinct span, and a flow
    "s"/"f" pair per {!ev_span_link} connecting the causing span's lane to
    the link — cross-client lease-break causality reads as one flow. *)

(** {2 Event ids} *)

val ev_fast_hit : int
val ev_fast_neg : int
val ev_fallback : int
val ev_slowpath : int
val ev_dlht_insert : int
val ev_dlht_remove : int
val ev_pcc_insert : int
val ev_pcc_stale : int
val ev_inval_rename : int
val ev_inval_chmod : int
val ev_quarantine : int
val ev_complete_neg : int
val ev_refwalk : int
val ev_rpc_drop : int
val ev_rpc_retry : int
val ev_rpc_giveup : int
val ev_rpc_drc_hit : int
val ev_fault_fire : int

val ev_dlht_resize_begin : int
(** DLHT incremental resize started; arg = new bucket count. *)

val ev_dlht_resize_end : int
(** Last old bucket migrated; arg = bucket count of the (now only) table. *)

val ev_lockless_retry : int
(** An optimistic (lockless) fastpath probe failed seqcount validation and
    was retried under the read lock. *)

val ev_dlht_sigless_scan : int
(** [Dlht.remove] could not locate the bucket head from the dentry's
    signature and fell back to a whole-table identity scan; arg = dentry
    id.  Defensive path — loud because it means the detach ordering
    invariant was broken somewhere. *)

val ev_prefix_resume : int
(** A missed lookup resumed the slowpath from a cached ancestor (§3.5);
    arg = number of already-cached components skipped (the resume depth). *)

val ev_prefix_negfail : int
(** A missed lookup was answered negatively from its prefix alone — a
    cached negative ancestor, or a DIR_COMPLETE deepest ancestor lacking
    the next component — with no write lock and no walk; arg = depth of
    the deciding ancestor. *)

val ev_stripe_contended : int
(** A sharded mutation found its stripe mutex already held and had to
    block; arg = stripe index.  Stamped by {!Locktab.lock}. *)

val ev_lease_grant : int
(** The netfs server granted (or refreshed) a per-inode lease to a client;
    arg = inode number. *)

val ev_lease_expire : int
(** A client's lockless lease gate found the lease past its expiry and
    forced a revalidating fallback; arg = inode number. *)

val ev_lease_break : int
(** The server broke a granted lease because the inode was mutated; arg =
    inode number.  One stamp per (inode, holder) delivery attempt. *)

val ev_lease_fence : int
(** Epoch fencing: a duplicate-reply-cache entry or a client lease table
    from a pre-crash server epoch was discarded instead of trusted; arg =
    the stale epoch. *)

val ev_rpc_partition : int
(** The network partition fault site swallowed an exchange (request lost
    before execution, regardless of idempotency); arg = attempt number. *)

val ev_netfs_crash : int
(** The netfs server crash site fired: epoch bumped, all grants voided,
    grace period opened; arg = the new epoch. *)

val ev_syscall : int
(** A syscall entry minted a fresh {!Profiler} span (stamped only when the
    profiler is armed; the span id rides the stamp's span lane). *)

val ev_rpc_send : int
(** A netfs RPC attempt left the client carrying the current span in the
    wire message; arg = attempt number. *)

val ev_span_link : int
(** Cross-request causal edge: this request's miss/fallback was caused by
    another request (arg = the causing span id) — e.g. a lease-gate miss
    on an inode whose lease a remote client's mutation broke.
    [dump_chrome] renders each link as a flow event pair. *)

val ev_batch_submit : int
(** A vectored submission (§3.9) minted its shared span: one stamp per
    {!Batch.submit} rather than one per op; arg = the number of queued
    ops the span covers. *)

val ev_batch_split : int
(** A batched lockless run observed a seqcount bump (or recorded-stripe
    motion) mid-window and had to re-snapshot before continuing; arg =
    the submission-queue index the split occurred at. *)

val n_events : int
val event_name : int -> string

(** {2 Cause-attributed counters}

    Why a lookup missed or a cache entry died.  Always on: each bump is a
    single array store on a path that is already off the warm fastpath
    (miss, invalidation, scrub). *)

val cause_cold : int
(** DLHT probe found no entry for the signature. *)

val cause_inval_rename : int
(** Dentry shot down by a structural change (rename / alias retarget);
    counted per dentry at invalidation time. *)

val cause_inval_chmod : int
(** Dentry's PCC protection bumped by a permission change; counted per
    dentry at invalidation time. *)

val cause_seqcount_retry : int
(** A stale-seq PCC entry was dropped, or an Rcu-mode walk restarted in
    Ref mode — the simulator's analogs of seqlock retries. *)

val cause_dir_incomplete : int
(** A dcache miss had to consult the file system because the directory's
    cached listing is not complete (§5.1). *)

val cause_quarantined : int
(** Entry removed by a scrub pass (DLHT or dcache). *)

val cause_resize_retry : int
(** A lockless fastpath probe retried under the read lock while a DLHT
    incremental resize was in flight — the writer that invalidated the
    optimistic read section was (at least in part) the table migration. *)

val n_causes : int
val bump_cause : int -> unit
val cause_count : int -> int
val cause_name : int -> string
val causes_to_string : unit -> string
(** One [name value] per line. *)

(** {2 Per-outcome-class latency histograms} *)

val cls_fast : int
val cls_fallback : int
val cls_slowpath : int
val cls_negative : int
val cls_eio : int
val n_classes : int
val class_name : int -> string

val latency : int -> Stats.Lhist.t
val record_latency : int -> int -> unit
(** [record_latency cls ns]: allocation-free histogram store.  Also feeds
    the class's {!Profiler} sliding window (no-op unless the profiler is
    armed). *)

val histograms_to_string : unit -> string
(** One [class name n … p50 … p90 … p99 … max … mean …] line per latency
    class, plus the [resume_depth] histogram in the same format, plus the
    profiler's sliding windows ([window_epoch N] then
    [window cur|prev name …] lines). *)

(** {2 Resume-depth histogram (§3.5)} *)

val resume_depth : Stats.Lhist.t
(** Components skipped per prefix-resumed miss (depths, not nanoseconds);
    reset by {!reset} alongside the latency histograms. *)

val record_resume_depth : int -> unit
(** Allocation-free histogram store. *)

(** {2 Lease-age histogram (§3.7)} *)

val lease_age : Stats.Lhist.t
(** Virtual-ns age of each lease when the client's lockless gate consulted
    it (live and expired verdicts both record); reset by {!reset}. *)

val record_lease_age : int -> unit
(** Allocation-free histogram store. *)
