(** Central fault-injection registry.

    An injector [t] owns a set of named fault {e sites} — points in the
    storage and network stacks where a failure can be observed
    ("blockdev.read_eio", "netfs.drop", ...).  Each site carries a
    deterministic schedule driven by the injector's PRNG seed, so a fault
    campaign replays bit-for-bit from its seed.

    Layers are built with their sites compiled in unconditionally; a
    disarmed {!fire} costs one integer increment and a match, and allocates
    nothing, preserving the warm-fastpath zero-allocation guarantee. *)

type t
type site

type schedule =
  | Off  (** never fires *)
  | Always
  | Nth of int
      (** the [n]th arrival after arming fails, once; the site then
          disarms (a one-shot crash point) *)
  | Probability of float  (** each arrival fails independently with rate p *)
  | Window of { first : int; last : int }
      (** arrivals numbered [first..last] (1-based, counted from arming)
          all fail: a bounded outage *)

val create : ?seed:int -> unit -> t
(** Fresh injector; [seed] (default 1) drives every probabilistic site. *)

val seed : t -> int

val site : t -> string -> site
(** [site t name] finds or registers the named site (initially [Off]).
    The site's PRNG stream depends only on the injector seed and the name,
    never on registration order. *)

val arm : site -> schedule -> unit
(** Install a schedule; arrival counting for [Nth]/[Window] restarts here.
    @raise Invalid_argument on a malformed schedule. *)

val disarm : site -> unit

val fire : site -> bool
(** [fire s] records an arrival and reports whether the fault injects this
    time.  Allocation-free when the site is [Off]. *)

exception Crash of string  (** carries the site name *)

val crash_point : site -> unit
(** Like {!fire} but raises {!Crash} on injection — for sites modelling
    whole-machine power loss rather than an erroring operation. *)

val name : site -> string

val schedule_name : site -> string
(** The active schedule, rendered ("off", "always", "nth:3", "p:0.050",
    "window:2-5") — for /proc reporting. *)

val arrivals : site -> int
(** Operations that passed this site since creation (armed or not). *)

val injected : site -> int
(** Faults actually injected. *)

val sites : t -> site list
(** All registered sites, in registration order (for reporting). *)

val prng : site -> Prng.t
(** The site's private random stream — used by corruption modes (bit
    flips, torn lengths) so payload randomness is as reproducible as the
    schedule. *)

val checks_enabled : bool ref
(** Global debug-checks flag: expensive integrity assertions (for example
    the {!Dcache_storage.Pagecache.with_page} mutation check) run only
    when set.  Default [false]. *)
