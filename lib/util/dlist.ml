type 'a node = {
  value : 'a;
  mutable prev : 'a node option;
  mutable next : 'a node option;
  mutable owner : 'a t option;
}

and 'a t = {
  mutable first : 'a node option;
  mutable last : 'a node option;
  mutable size : int;
}

let create () = { first = None; last = None; size = 0 }
let node v = { value = v; prev = None; next = None; owner = None }
let value n = n.value
let length t = t.size
let is_empty t = t.size = 0
let linked n = n.owner <> None

let push_front t n =
  assert (n.owner = None);
  n.owner <- Some t;
  n.prev <- None;
  n.next <- t.first;
  (match t.first with Some f -> f.prev <- Some n | None -> t.last <- Some n);
  t.first <- Some n;
  t.size <- t.size + 1

let push_back t n =
  assert (n.owner = None);
  n.owner <- Some t;
  n.next <- None;
  n.prev <- t.last;
  (match t.last with Some l -> l.next <- Some n | None -> t.first <- Some n);
  t.last <- Some n;
  t.size <- t.size + 1

let remove t n =
  match n.owner with
  | None -> ()
  | Some owner ->
    assert (owner == t);
    (match n.prev with Some p -> p.next <- n.next | None -> t.first <- n.next);
    (match n.next with Some s -> s.prev <- n.prev | None -> t.last <- n.prev);
    n.prev <- None;
    n.next <- None;
    n.owner <- None;
    t.size <- t.size - 1

let pop_front t =
  match t.first with
  | None -> None
  | Some n ->
    remove t n;
    Some n

let pop_back t =
  match t.last with
  | None -> None
  | Some n ->
    remove t n;
    Some n

let peek_back t = t.last
let peek_front t = t.first

(* Returns the stored option field, not a fresh [Some]: node-by-node
   traversal via [peek_front]/[next] allocates nothing, which the lockless
   cache-fed readdir path depends on. *)
let next n = n.next

let move_to_front t n =
  (match n.owner with None -> () | Some _ -> remove t n);
  push_front t n

let iter f t =
  let rec go = function
    | None -> ()
    | Some n ->
      let next = n.next in
      f n.value;
      go next
  in
  go t.first

let fold f acc t =
  let rec go acc = function
    | None -> acc
    | Some n -> go (f acc n.value) n.next
  in
  go acc t.first

let to_list t = List.rev (fold (fun acc v -> v :: acc) [] t)

let exists p t =
  let rec go = function
    | None -> false
    | Some n -> p n.value || go n.next
  in
  go t.first
