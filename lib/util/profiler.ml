(* Request-scoped causal profiling (§3.8).

   Three pillars, all preallocated and disarmed-by-default, matching the
   Trace ring's overhead discipline: disarmed every hook is a single
   load-and-branch; armed, recording is plain int/pointer stores into
   preallocated arrays — zero minor-heap words, so the whole profiler can
   stay armed across a zero-allocation fastpath run.

   1. Span ids.  Every syscall entry allocates a request-scoped span id
      from a per-domain scratch counter (ids are handed out in per-domain
      blocks off one global atomic, so two domains never mint the same id)
      and installs it as the domain's current span.  The id rides every
      {!Trace.stamp} (the ring grew a span lane), is carried in the netfs
      wire message, re-installed server-side, and recorded at lease-break
      delivery — so a cross-client invalidation storm renders as one
      connected trace.  Span 0 means "no span".

   2. Per-directory cache efficacy.  A space-saving top-K heavy-hitters
      sketch (Metwally et al.) over directory ids: fixed K slots held in
      parallel int/string arrays, intrusive (the label is the directory
      dentry's own name string — storing the pointer allocates nothing),
      no allocation at record time.  Each slot attributes hits, misses,
      negative hits, seqcount retries, lease fallbacks and invalidations
      to one directory, with the classic exact-count error bound: a
      slot's [total] overcounts its key by at most [err] (the evicted
      minimum it inherited), and any key not in the sketch has true count
      <= the minimum resident total.  With fewer than K distinct keys no
      eviction happens and every count is exact.

   3. Sliding-window percentiles.  Two banks of log2 histograms per
      latency class; {!rotate} flips the banks and resets the new current
      one, so [window_cur] always covers the epoch in progress and
      [window_prev] the last completed one.  Rotation is driven by the
      observer ({!tick} against a virtual or real clock), keeping the
      record path free of clock reads.

   Global state, like the Trace ring it extends; [reset] between
   experiments. *)

(* --- switches --- *)

let armed = ref false

(* --- request-scoped span ids --- *)

(* Ids are minted in per-domain blocks carved off one global atomic: block
   0 is never handed out, so a real span id is always >= [span_block] and
   0 can mean "no span". *)
let span_block = 1 lsl 20
let next_block = Atomic.make 1

(* Per-domain span state lives in Domain.DLS: on this compiler the DLS
   read ("%dls_get", an intrinsic) is measurably cheaper than a
   [Domain.self] C call, and [current] runs inside every armed ring
   stamp, so the access path is the whole cost.  The record is mutated in
   place — one DLS read per hook, int stores after that. *)
type span_scratch = {
  mutable sp_cur : int;  (* the domain's current span; 0 = none *)
  mutable sp_next : int;  (* next id to mint from the domain's block *)
  mutable sp_limit : int;  (* exclusive end of the block *)
}

let span_key =
  Domain.DLS.new_key (fun () -> { sp_cur = 0; sp_next = 0; sp_limit = 0 })

(* Every domain that ever minted or installed a span, so [reset] can zero
   stale [sp_cur]s from other domains (registration happens at most once
   per domain per reset-cycle, off the hot path). *)
let span_scratches = Atomic.make ([] : span_scratch list)

let rec register_scratch s =
  let seen = Atomic.get span_scratches in
  if List.memq s seen then ()
  else if not (Atomic.compare_and_set span_scratches seen (s :: seen)) then
    register_scratch s

(* Allocate and install a fresh span (returns 0 disarmed).  Armed cost:
   a DLS read and three int stores; the block refill is one atomic
   fetch-and-add every 2^20 spans.  Nothing allocates. *)
let span_enter () =
  if not !armed then 0
  else begin
    let s = Domain.DLS.get span_key in
    if s.sp_next >= s.sp_limit then begin
      let b = Atomic.fetch_and_add next_block 1 in
      s.sp_next <- b * span_block;
      s.sp_limit <- (b + 1) * span_block;
      register_scratch s
    end;
    let id = s.sp_next in
    s.sp_next <- id + 1;
    s.sp_cur <- id;
    id
  end

let[@inline] current () = (Domain.DLS.get span_key).sp_cur
let set_current id = (Domain.DLS.get span_key).sp_cur <- id

(* Run [f] under span [id] (the server side of a wire message), restoring
   the caller's span afterwards.  Allocates a closure — RPC-path only. *)
let with_span id f =
  let s = Domain.DLS.get span_key in
  let saved = s.sp_cur in
  s.sp_cur <- id;
  Fun.protect ~finally:(fun () -> s.sp_cur <- saved) f

(* --- batch span accounting (§3.9) --- *)

(* A vectored submission mints ONE span and shares it across every probe
   in the batch; these three cells record the amortization the sharing
   buys.  [batch_windows] counts validation windows opened inside
   submissions (1 per batch when no writer interferes; each mid-batch
   seqcount bump adds one), so windows/submit ~ 1 is the "shared
   validation" claim made measurable.  Always-on atomics: bumped once per
   submit, never on the per-op path, never allocating. *)
let batch_submits = Atomic.make 0
let batch_ops = Atomic.make 0
let batch_windows = Atomic.make 0

let note_batch ~ops ~windows =
  Atomic.incr batch_submits;
  ignore (Atomic.fetch_and_add batch_ops ops);
  ignore (Atomic.fetch_and_add batch_windows windows)

let batch_stats () =
  (Atomic.get batch_submits, Atomic.get batch_ops, Atomic.get batch_windows)

(* --- per-directory heavy hitters (space-saving top-K) --- *)

let hh_k = 32

let m_hit = 0
let m_miss = 1
let m_neg = 2
let m_retry = 3
let m_lease = 4
let m_inval = 5
let n_metrics = 6

let metric_names = [| "hit"; "miss"; "neg"; "retry"; "lease"; "inval" |]

(* Parallel slot arrays; [hh_key] = directory dentry id, -1 = empty.
   [hh_label] keeps a pointer to the directory's name string for rendering
   (storing an existing string is one pointer store).  Plain stores: the
   sketch is diagnostic, and concurrent recorders may race a slot exactly
   as ring stamps may tear — consumers tolerate it. *)
let hh_key = Array.make hh_k (-1)
let hh_label = Array.make hh_k ""
let hh_total = Array.make hh_k 0
let hh_err = Array.make hh_k 0
let hh_metrics = Array.make (hh_k * n_metrics) 0
let hh_evictions = ref 0
let hh_recorded = ref 0

(* Top-level recursions, not closures — the record path runs on the
   zero-allocation warm hit. *)
let rec hh_find_from key i =
  if i >= hh_k then -1
  else if Array.unsafe_get hh_key i = key then i
  else hh_find_from key (i + 1)

let rec hh_free_from i =
  if i >= hh_k then -1
  else if Array.unsafe_get hh_key i < 0 then i
  else hh_free_from (i + 1)

let rec hh_min_from best i =
  if i >= hh_k then best
  else
    hh_min_from
      (if Array.unsafe_get hh_total i < Array.unsafe_get hh_total best then i else best)
      (i + 1)

let[@inline] hh_zero_metrics i =
  let base = i * n_metrics in
  for m = 0 to n_metrics - 1 do
    hh_metrics.(base + m) <- 0
  done

(* Last slot that matched: workloads are skewed, so most records hit the
   directory the previous record hit, and the memo turns the K-slot scan
   into one compare.  Plain (racy) global — it is only ever a hint, and a
   wrong hint just falls back to the scan. *)
let hh_memo = ref 0

(* Record one event of [metric] against directory [key]/[label].  Armed:
   one memo compare (falling back to a linear scan of K ints) plus a
   handful of int stores (space-saving eviction replaces the minimum
   slot, inheriting its total as the new key's error bound).  Disarmed:
   a load and a branch.  Never allocates. *)
let hh_record key label metric =
  if !armed then begin
    hh_recorded := !hh_recorded + 1;
    let i =
      let m = !hh_memo in
      if Array.unsafe_get hh_key m = key then m
      else begin
        let i = hh_find_from key 0 in
        if i >= 0 then hh_memo := i;
        i
      end
    in
    if i >= 0 then begin
      Array.unsafe_set hh_total i (Array.unsafe_get hh_total i + 1);
      let m = (i * n_metrics) + metric in
      hh_metrics.(m) <- hh_metrics.(m) + 1
    end
    else begin
      let j = hh_free_from 0 in
      if j >= 0 then begin
        hh_key.(j) <- key;
        hh_label.(j) <- label;
        hh_total.(j) <- 1;
        hh_err.(j) <- 0;
        hh_zero_metrics j;
        hh_metrics.((j * n_metrics) + metric) <- 1
      end
      else begin
        let j = hh_min_from 0 1 in
        hh_evictions := !hh_evictions + 1;
        hh_err.(j) <- hh_total.(j);
        hh_total.(j) <- hh_total.(j) + 1;
        hh_key.(j) <- key;
        hh_label.(j) <- label;
        hh_zero_metrics j;
        hh_metrics.((j * n_metrics) + metric) <- 1
      end
    end
  end

type hot_slot = {
  h_key : int;
  h_label : string;
  h_total : int;
  h_err : int;
  h_metrics : int array;  (** indexed by [m_hit] … [m_inval] *)
}

(* Snapshot of the resident slots, sorted by total descending (render
   path: allocation is fine here). *)
let hot () =
  let acc = ref [] in
  for i = hh_k - 1 downto 0 do
    if hh_key.(i) >= 0 then
      acc :=
        {
          h_key = hh_key.(i);
          h_label = hh_label.(i);
          h_total = hh_total.(i);
          h_err = hh_err.(i);
          h_metrics = Array.init n_metrics (fun m -> hh_metrics.((i * n_metrics) + m));
        }
        :: !acc
  done;
  List.sort (fun a b -> compare (b.h_total, a.h_key) (a.h_total, b.h_key)) !acc

let hot_to_string () =
  let buf = Buffer.create 1024 in
  Printf.bprintf buf "armed %b\n" !armed;
  Printf.bprintf buf "k %d\n" hh_k;
  Printf.bprintf buf "recorded %d\n" !hh_recorded;
  Printf.bprintf buf "evictions %d\n" !hh_evictions;
  List.iter
    (fun s ->
      Printf.bprintf buf "dir %d %s total %d err %d" s.h_key s.h_label s.h_total s.h_err;
      Array.iteri
        (fun m v -> Printf.bprintf buf " %s %d" metric_names.(m) v)
        s.h_metrics;
      Buffer.add_char buf '\n')
    (hot ());
  Buffer.contents buf

(* --- sliding-window histograms --- *)

(* Generic class slots; {!Trace} maps its latency classes onto them and
   owns the labels.  Two banks: [cur] collects the epoch in progress,
   [prev] holds the last completed epoch.  [rotate] flips and resets. *)
let n_windows = 8

let win_banks =
  [| Array.init n_windows (fun _ -> Stats.Lhist.create ());
     Array.init n_windows (fun _ -> Stats.Lhist.create ()) |]

let win_bank = ref 0
let win_epoch = ref 0

let[@inline] record_window cls v =
  if !armed && cls >= 0 && cls < n_windows then
    Stats.Lhist.record win_banks.(!win_bank).(cls) v

let window_cur cls = win_banks.(!win_bank).(cls)
let window_prev cls = win_banks.(1 - !win_bank).(cls)
let window_epoch () = !win_epoch

let rotate () =
  win_bank := 1 - !win_bank;
  Array.iter Stats.Lhist.reset win_banks.(!win_bank);
  win_epoch := !win_epoch + 1

(* Epoch-rotate against an external clock (virtual or monotonic ns): the
   caller ticks with "now" and the window length; rotation happens when
   the current epoch's end has passed.  Keeping the clock out of the
   profiler keeps the record path clock-free and the rotation source
   explicit (the coherence bench ticks on the shared virtual clock). *)
let win_next = ref 0

let tick ~epoch_ns now =
  if epoch_ns > 0 && now >= !win_next then begin
    if !win_next > 0 then rotate ();
    win_next := now + epoch_ns
  end

(* --- arming / reset --- *)

let arm () = armed := true
let disarm () = armed := false

let reset () =
  Atomic.set batch_submits 0;
  Atomic.set batch_ops 0;
  Atomic.set batch_windows 0;
  Array.fill hh_key 0 hh_k (-1);
  Array.fill hh_label 0 hh_k "";
  Array.fill hh_total 0 hh_k 0;
  Array.fill hh_err 0 hh_k 0;
  Array.fill hh_metrics 0 (hh_k * n_metrics) 0;
  hh_evictions := 0;
  hh_recorded := 0;
  hh_memo := 0;
  Array.iter (fun bank -> Array.iter Stats.Lhist.reset bank) win_banks;
  win_bank := 0;
  win_epoch := 0;
  win_next := 0;
  (Domain.DLS.get span_key).sp_cur <- 0;
  List.iter (fun s -> s.sp_cur <- 0) (Atomic.get span_scratches)
