(* State encoding: -1 = writer holds the lock; n >= 0 = n active readers.
   Writers first win [writer_pending] among themselves via the mutex, then
   spin waiting for readers to drain.  Readers back off while a writer is
   pending so writers cannot starve. *)

type t = {
  state : int Atomic.t;
  writer_pending : bool Atomic.t;
  writers : Mutex.t;
}

let create () =
  { state = Atomic.make 0; writer_pending = Atomic.make false; writers = Mutex.create () }

(* Acquisition accounting, used by test/t_alloc.ml and the churn benchmark
   to prove the lockless warm fastpath takes zero rwlock acquisitions.
   Per-domain (DLS) rather than module-global: a reader domain's count is
   exact even while writer domains are hammering the lock from the sharded
   mutation path — each domain observes only its own acquisitions, which
   is precisely what the "this domain never locked" oracle needs.  The hot
   path pays one DLS load and one non-atomic increment of a domain-private
   record. *)
type acq = { mutable reads : int; mutable writes : int }

let acq_key = Domain.DLS.new_key (fun () -> { reads = 0; writes = 0 })

let acquisition_counts () =
  let a = Domain.DLS.get acq_key in
  (a.reads, a.writes)

let reset_acquisition_counts () =
  let a = Domain.DLS.get acq_key in
  a.reads <- 0;
  a.writes <- 0

(* Spin briefly, then yield the processor: on oversubscribed (or single-)
   core hosts a pure spin burns the whole quantum waiting for a descheduled
   lock holder. *)
let backoff spins =
  if spins < 64 then Domain.cpu_relax () else Unix.sleepf 0.0000005

(* Top-level, not a local [rec] capturing [t]: without flambda a capturing
   local function allocates its closure on every [read_lock], and the lookup
   fastpath takes this lock once per operation. *)
let rec read_acquire t spins =
  if Atomic.get t.writer_pending then begin
    backoff spins;
    read_acquire t (spins + 1)
  end
  else begin
    let observed = Atomic.get t.state in
    if observed >= 0 && Atomic.compare_and_set t.state observed (observed + 1) then ()
    else begin
      backoff spins;
      read_acquire t (spins + 1)
    end
  end

let read_lock t =
  let a = Domain.DLS.get acq_key in
  a.reads <- a.reads + 1;
  read_acquire t 0

let read_unlock t = ignore (Atomic.fetch_and_add t.state (-1))

(* True while any writer holds the lock.  Callers use it from inside their
   own critical section ("am I in the exclusive side right now?"), where
   the answer is stable; sampled from outside it is only a snapshot. *)
let write_held t = Atomic.get t.state = -1

let write_lock t =
  let a = Domain.DLS.get acq_key in
  a.writes <- a.writes + 1;
  Mutex.lock t.writers;
  Atomic.set t.writer_pending true;
  let rec drain spins =
    if not (Atomic.compare_and_set t.state 0 (-1)) then begin
      backoff spins;
      drain (spins + 1)
    end
  in
  drain 0

let write_unlock t =
  Atomic.set t.state 0;
  Atomic.set t.writer_pending false;
  Mutex.unlock t.writers

let with_read t f =
  read_lock t;
  match f () with
  | result ->
    read_unlock t;
    result
  | exception e ->
    read_unlock t;
    raise e

let with_write t f =
  write_lock t;
  match f () with
  | result ->
    write_unlock t;
    result
  | exception e ->
    write_unlock t;
    raise e
