(** Sample statistics and histograms for the benchmark harness. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  ci95 : float;  (** half-width of the 95% confidence interval of the mean *)
}

val summarize : float array -> summary
(** [summarize samples] computes a summary; requires a non-empty array. *)

val summarize_ns : int64 array -> summary
(** Like {!summarize} on nanosecond samples. *)

val mean : float array -> float
val median : float array -> float

val percentile : float array -> float -> float
(** [percentile samples p] for [p] in [\[0,100\]] (nearest-rank, on a sorted
    copy).  [p = 0] is the minimum, [p = 100] the maximum.
    @raise Invalid_argument when [p] is outside [\[0, 100\]]. *)

val summary_to_string : summary -> string
(** One-line [n=… mean=… stddev=… min=… max=… ci95=…] rendering. *)

type histogram

val histogram : ?buckets:int -> float array -> histogram
val hist_to_string : histogram -> string

val minor_words_per_op : iters:int -> (unit -> unit) -> float
(** [minor_words_per_op ~iters f] runs [f] once to warm, then measures the
    {!Gc.minor_words} delta over [iters] further calls and reports the mean
    words of minor-heap allocation per call.  0.0 means the operation is
    allocation-free. *)

(** Log2-bucketed integer histograms (HDR-style): preallocated int arrays,
    so {!Lhist.record} never allocates — usable from armed fastpath
    instrumentation.  Bucket 0 holds value 0; bucket [i > 0] holds
    [\[2^(i-1), 2^i)]. *)
module Lhist : sig
  type t

  val create : unit -> t

  val record : t -> int -> unit
  (** Count one sample (negatives clamp to 0).  Allocation-free. *)

  val count : t -> int
  val min_value : t -> int
  val max_value : t -> int
  val mean : t -> float

  val percentile : t -> float -> int
  (** Nearest-rank over the buckets; reports the covering bucket's midpoint
      clamped into [\[min_value, max_value\]].  [p = 0] and [p = 100] report
      the exact minimum and maximum.  0 on an empty histogram.
      @raise Invalid_argument when [p] is outside [\[0, 100\]]. *)

  val reset : t -> unit

  val nbuckets : int
  val bucket_count : t -> int -> int
  val bucket_lo : int -> int
  (** Inclusive lower bound of bucket [i]. *)

  val to_string : t -> string
  (** One-line [n … min … p50 … p90 … p99 … max … mean …] rendering. *)
end

(** Online counter sets, used by the kernel instrumentation.  Safe under
    concurrent domains: each cell is a small array of atomic slots indexed
    by domain id, so bumps are never lost and (mostly) uncontended. *)
module Counter : sig
  type t
  type cell

  val create : unit -> t

  val cell : t -> string -> cell
  (** The counter's underlying cell, created on first use.  Hot paths cache
      the cell once and {!bump} it — one atomic fetch-and-add on the
      calling domain's slot, no hashing, no allocation.  Cells stay live
      across {!reset}. *)

  val bump : cell -> unit
  (** Count one on the calling domain's slot.  Allocation-free. *)

  val bump_by : cell -> int -> unit
  val cell_value : cell -> int
  (** Sum over all domain slots. *)

  val incr : t -> string -> unit
  val add : t -> string -> int -> unit
  val get : t -> string -> int

  val reset : t -> unit
  (** Zeroes every counter in place (cached cells remain valid). *)

  val to_assoc : t -> (string * int) list
  (** Sorted by key. *)
end
