(** Intrusive doubly-linked lists with O(1) insert and remove.

    The kernel dcache chains dentries on several lists at once (sibling list,
    LRU list, hash chains); each chain needs O(1) unlink given only the node.
    A ['a node] belongs to at most one [t] at a time. *)

type 'a t
type 'a node

val create : unit -> 'a t

val node : 'a -> 'a node
(** [node v] makes a detached node carrying [v]. *)

val value : 'a node -> 'a
val length : 'a t -> int
val is_empty : 'a t -> bool

val linked : 'a node -> bool
(** [linked n] is true iff [n] is currently on some list. *)

val push_front : 'a t -> 'a node -> unit
val push_back : 'a t -> 'a node -> unit

val remove : 'a t -> 'a node -> unit
(** [remove t n] unlinks [n]; no-op if [n] is detached.  [n] must not be on a
    different list. *)

val pop_front : 'a t -> 'a node option
val pop_back : 'a t -> 'a node option
val peek_back : 'a t -> 'a node option
val peek_front : 'a t -> 'a node option

val next : 'a node -> 'a node option
(** [next n] is the node after [n] on its list.  Returns the node's stored
    successor field (no fresh [Some]), so a [peek_front]/[next] walk is
    allocation-free — the lockless readdir path iterates children this
    way. *)

val move_to_front : 'a t -> 'a node -> unit
(** [move_to_front t n] relinks [n] at the head (inserting if detached). *)

val iter : ('a -> unit) -> 'a t -> unit
(** Front-to-back iteration.  The visited node may be removed by [f]; other
    concurrent structural changes are not supported. *)

val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val to_list : 'a t -> 'a list
val exists : ('a -> bool) -> 'a t -> bool
