(** Request-scoped causal profiling (§3.8).

    Three preallocated, disarmed-by-default facilities sharing the Trace
    ring's overhead discipline (disarmed: one load-and-branch; armed:
    int/pointer stores only, zero minor-heap words):

    - {b span ids} minted per syscall from per-domain blocks, threaded
      through the fastpath, the netfs wire format and lease-break
      delivery so cross-client causality renders as one connected trace;
    - a {b space-saving top-K sketch} attributing cache efficacy (hits,
      misses, negatives, retries, lease fallbacks, invalidations) to
      individual directories with exact-count error bounds;
    - {b sliding-window histograms}: two epoch-rotated banks of log2
      histograms for per-class latency trends.

    Global state, like {!Trace}; call {!reset} between experiments. *)

val armed : bool ref
(** Master switch for span minting, sketch recording and window
    recording.  Prefer {!arm}/{!disarm}; exposed for armed-path tests. *)

val arm : unit -> unit
val disarm : unit -> unit

val reset : unit -> unit
(** Clear the sketch, both window banks and the calling domain's current
    span.  Does not change {!armed}. *)

(** {1 Request-scoped spans} *)

val span_enter : unit -> int
(** Mint a fresh span id and install it as the calling domain's current
    span.  Returns 0 when disarmed.  Zero-allocation. *)

val current : unit -> int
(** The calling domain's current span id; 0 = no span. *)

val set_current : int -> unit
(** Install [id] as the calling domain's current span (trace replay /
    tests; integration points use {!span_enter} and {!with_span}). *)

val with_span : int -> (unit -> 'a) -> 'a
(** Run under span [id], restoring the caller's span afterwards — the
    server side of a wire message carrying the client's span.  Allocates
    (closure); RPC-path only, never on the warm hit. *)

(** {1 Batch span accounting (§3.9)} *)

val note_batch : ops:int -> windows:int -> unit
(** Record one vectored submission: [ops] queued ops shared one span and
    opened [windows] validation windows (1 + mid-batch splits).  Always
    on — one submit-granularity bump, never per op, zero-allocation. *)

val batch_stats : unit -> int * int * int
(** [(submits, ops, windows)] since the last {!reset}: total batch
    submissions, total ops carried by them, and total validation windows
    opened.  [windows /. submits] near 1.0 means validation was shared
    across whole batches; [ops /. submits] is the span amortization
    factor. *)

(** {1 Per-directory cache efficacy (space-saving top-K)} *)

val hh_k : int
(** Number of sketch slots. *)

(** Metric column indices within a slot. *)

val m_hit : int
val m_miss : int
val m_neg : int
val m_retry : int
val m_lease : int
val m_inval : int
val n_metrics : int

val metric_names : string array

val hh_record : int -> string -> int -> unit
(** [hh_record key label metric] attributes one event of [metric] to
    directory [key] (label kept by pointer for rendering).  Space-saving
    update: monitored keys increment; unmonitored keys evict the minimum
    slot and inherit its total as their error bound.  Zero-allocation;
    no-op when disarmed. *)

type hot_slot = {
  h_key : int;
  h_label : string;
  h_total : int;  (** estimated count; >= true count *)
  h_err : int;  (** overcount bound: true count >= h_total - h_err *)
  h_metrics : int array;  (** indexed by [m_hit] … [m_inval] *)
}

val hot : unit -> hot_slot list
(** Resident slots, sorted by estimated total descending.  While fewer
    than {!hh_k} distinct keys have been recorded, every [h_err] is 0 and
    counts are exact. *)

val hot_to_string : unit -> string
(** Render for [/proc/dcache/hot]: header lines
    [armed]/[k]/[recorded]/[evictions], then one
    [dir <key> <label> total <t> err <e> hit <n> … inval <n>] line per
    slot in {!hot} order. *)

(** {1 Sliding-window histograms} *)

val n_windows : int
(** Number of class slots per bank; {!Trace} maps its latency classes
    onto them. *)

val record_window : int -> int -> unit
(** [record_window cls v] records [v] into class [cls] of the current
    bank.  Zero-allocation; no-op when disarmed or [cls] out of range. *)

val window_cur : int -> Stats.Lhist.t
(** Histogram collecting the epoch in progress. *)

val window_prev : int -> Stats.Lhist.t
(** Histogram of the last completed epoch. *)

val window_epoch : unit -> int
(** Number of completed rotations. *)

val rotate : unit -> unit
(** Flip banks: current becomes previous, the new current is reset. *)

val tick : epoch_ns:int -> int -> unit
(** [tick ~epoch_ns now] rotates when [now] (virtual or monotonic ns —
    the caller owns the clock) has passed the current epoch's end.  The
    first tick only anchors the epoch origin. *)
