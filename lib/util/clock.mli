(** Wall-clock time helpers for measurement code. *)

val now_ns : unit -> int64
(** Monotonic-enough wall clock in nanoseconds (from [Unix.gettimeofday]). *)

val now_int_ns : unit -> int
(** {!now_ns} as a native int (no [Int64] boxing on the consumer side). *)

val time_ns : (unit -> 'a) -> 'a * int64
(** [time_ns f] runs [f] and returns its result and elapsed nanoseconds. *)
