(** Wall-clock time helpers for measurement code. *)

val now_ns : unit -> int64
(** Monotonic-enough wall clock in nanoseconds (from [Unix.gettimeofday]). *)

val now_int_ns : unit -> int
(** {!now_ns} as a native int (no [Int64] boxing on the consumer side). *)

val monotonic_ns : unit -> int
(** [CLOCK_MONOTONIC] in nanoseconds as a native int: real ns resolution
    (the wall clock above only resolves µs).  Reads through an [@unboxed]
    [@noalloc] C stub and measures allocation-free in this build, but that
    relies on compiler inlining — gate clock reads behind an armed flag on
    paths that must guarantee zero allocation. *)

val time_ns : (unit -> 'a) -> 'a * int64
(** [time_ns f] runs [f] and returns its result and elapsed nanoseconds. *)
