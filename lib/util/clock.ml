let now_ns () = Int64.of_float (Unix.gettimeofday () *. 1e9)

(* Native-int variant for hot-path phase stamps: 63 bits of nanoseconds
   (~292 years) never overflow, and int arithmetic keeps the accumulating
   side free of Int64 boxing.  (The clock read itself still boxes the float
   returned by [gettimeofday]; phase instrumentation is therefore only
   allocation-free while disabled.) *)
let now_int_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

let time_ns f =
  let t0 = now_ns () in
  let result = f () in
  let t1 = now_ns () in
  (result, Int64.sub t1 t0)
