let now_ns () = Int64.of_float (Unix.gettimeofday () *. 1e9)

(* Native-int variant for hot-path phase stamps: 63 bits of nanoseconds
   (~292 years) never overflow, and int arithmetic keeps the accumulating
   side free of Int64 boxing.  (The clock read itself still boxes the float
   returned by [gettimeofday]; phase instrumentation is therefore only
   allocation-free while disabled.) *)
let now_int_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

(* CLOCK_MONOTONIC through bechamel's C stub: true nanosecond resolution
   where [gettimeofday] only resolves microseconds (a warm fastpath hit is
   a few hundred ns — invisible to the wall clock above), and immune to
   wall-clock steps.  The stub is an [@unboxed] [@noalloc] external, and
   with the immediate [Int64.to_int] the whole read measures 0 minor words
   in the alloc benchmark — but that depends on the compiler inlining a
   cross-module one-liner, so allocation-free paths still gate clock reads
   behind an armed flag rather than relying on it. *)
let monotonic_ns () = Int64.to_int (Monotonic_clock.now ())

let time_ns f =
  let t0 = now_ns () in
  let result = f () in
  let t1 = now_ns () in
  (result, Int64.sub t1 t0)
