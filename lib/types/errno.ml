type t =
  | EPERM
  | ENOENT
  | EIO
  | EBADF
  | EACCES
  | EBUSY
  | EEXIST
  | EXDEV
  | ENOTDIR
  | EISDIR
  | EINVAL
  | EMFILE
  | ENOSPC
  | EROFS
  | EMLINK
  | ERANGE
  | ENAMETOOLONG
  | ENOTEMPTY
  | ELOOP
  | ENOTSUP

let to_string = function
  | EPERM -> "EPERM"
  | ENOENT -> "ENOENT"
  | EIO -> "EIO"
  | EBADF -> "EBADF"
  | EACCES -> "EACCES"
  | EBUSY -> "EBUSY"
  | EEXIST -> "EEXIST"
  | EXDEV -> "EXDEV"
  | ENOTDIR -> "ENOTDIR"
  | EISDIR -> "EISDIR"
  | EINVAL -> "EINVAL"
  | EMFILE -> "EMFILE"
  | ENOSPC -> "ENOSPC"
  | EROFS -> "EROFS"
  | EMLINK -> "EMLINK"
  | ERANGE -> "ERANGE"
  | ENAMETOOLONG -> "ENAMETOOLONG"
  | ENOTEMPTY -> "ENOTEMPTY"
  | ELOOP -> "ELOOP"
  | ENOTSUP -> "ENOTSUP"

let message = function
  | EPERM -> "Operation not permitted"
  | ENOENT -> "No such file or directory"
  | EIO -> "Input/output error"
  | EBADF -> "Bad file descriptor"
  | EACCES -> "Permission denied"
  | EBUSY -> "Device or resource busy"
  | EEXIST -> "File exists"
  | EXDEV -> "Invalid cross-device link"
  | ENOTDIR -> "Not a directory"
  | EISDIR -> "Is a directory"
  | EINVAL -> "Invalid argument"
  | EMFILE -> "Too many open files"
  | ENOSPC -> "No space left on device"
  | EROFS -> "Read-only file system"
  | EMLINK -> "Too many links"
  | ERANGE -> "Result too large"
  | ENAMETOOLONG -> "File name too long"
  | ENOTEMPTY -> "Directory not empty"
  | ELOOP -> "Too many levels of symbolic links"
  | ENOTSUP -> "Operation not supported"

exception Error of t

(* Every arm applies a constant constructor to a constant argument, so the
   [Error _] results are built once at module init; hot paths that fail with
   a known errno fetch the shared value instead of allocating. *)
let to_error : t -> ('a, t) result = function
  | EPERM -> Error EPERM
  | ENOENT -> Error ENOENT
  | EIO -> Error EIO
  | EBADF -> Error EBADF
  | EACCES -> Error EACCES
  | EBUSY -> Error EBUSY
  | EEXIST -> Error EEXIST
  | EXDEV -> Error EXDEV
  | ENOTDIR -> Error ENOTDIR
  | EISDIR -> Error EISDIR
  | EINVAL -> Error EINVAL
  | EMFILE -> Error EMFILE
  | ENOSPC -> Error ENOSPC
  | EROFS -> Error EROFS
  | EMLINK -> Error EMLINK
  | ERANGE -> Error ERANGE
  | ENAMETOOLONG -> Error ENAMETOOLONG
  | ENOTEMPTY -> Error ENOTEMPTY
  | ELOOP -> Error ELOOP
  | ENOTSUP -> Error ENOTSUP
