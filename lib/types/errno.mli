(** POSIX error numbers used throughout the simulated kernel. *)

type t =
  | EPERM
  | ENOENT
  | EIO
  | EBADF
  | EACCES
  | EBUSY
  | EEXIST
  | EXDEV
  | ENOTDIR
  | EISDIR
  | EINVAL
  | EMFILE
  | ENOSPC
  | EROFS
  | EMLINK
  | ERANGE
  | ENAMETOOLONG
  | ENOTEMPTY
  | ELOOP
  | ENOTSUP

val to_string : t -> string
val message : t -> string

exception Error of t
(** Used only at module boundaries that prefer exceptions (e.g. test
    helpers); kernel APIs return [('a, t) result]. *)

val to_error : t -> ('a, t) result
(** [to_error e] is [Error e] fetched from a statically-allocated table —
    zero minor-heap allocation, for error returns on hot paths. *)
