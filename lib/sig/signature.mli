(** Path signatures (paper §3.3).

    The optimized directory cache keys its Direct Lookup Hash Table by the
    full canonical path.  Comparing multi-kilobyte path strings on every
    probe would erode the algorithmic win, so paths are summarized by a
    multilinear 2-universal hash over four independent lanes: the low
    22 bits index the hash bucket and the bits above 16 form the signature
    compared on probes.  (The paper uses a 240-bit signature; our lanes are
    the native 63-bit integers, giving a 236-bit signature — same design,
    avoids boxed arithmetic.)

    The hash is resumable: a dentry stores the intermediate [state] of its
    canonical path, so a relative lookup under a cwd resumes hashing from
    the cwd's state instead of re-hashing the prefix (§3.1).

    The hash function is keyed with a boot-time random value, so collisions
    cannot be precomputed offline (§3.3).  For tests, [create_key] accepts
    [~sig_bits] to truncate the compared signature and force collisions,
    exercising the safety fallback. *)

type t
(** A 4-lane digest: 22-bit bucket index + up to 236-bit signature. *)

type key
(** Hash-function key plus comparison configuration. *)

type state = { pos : int; l0 : int; l1 : int; l2 : int; l3 : int }
(** Intermediate multilinear state after feeding [pos] bytes.  Exposed as a
    plain record so resuming allocates nothing beyond the record itself. *)

val max_sig_bits : int

val create_key : ?sig_bits:int -> seed:int -> unit -> key
(** [create_key ~seed ()] derives the per-boot key material.  [sig_bits]
    (default {!max_sig_bits}, clamped to [1, max_sig_bits]) narrows the
    number of signature bits compared by {!equal}, for collision-injection
    tests. *)

val random_key : unit -> key
(** A key seeded from the environment, as a real kernel would at boot. *)

val sig_bits : key -> int
val empty_state : state
val feed_string : key -> state -> string -> state
val feed_char : key -> state -> char -> state

val state_pos : state -> int
(** Number of bytes fed so far (the resume offset). *)

val finalize : key -> state -> t
(** Mix the lanes into the final digest; non-destructive. *)

val hash_string : key -> string -> t

val bucket : t -> int
(** Low 22 bits: DLHT bucket index in [0, 2^22).  Tables mask it down to
    their current size; 22 bits covers the resize ceiling, so doublings
    keep spreading entries instead of stalling at 2^16 used buckets.
    Bits 16..21 double as compared-signature bits, which is harmless (the
    index is derived from the signature, not a substitute for it). *)

val equal : key -> t -> t -> bool
(** Signature comparison over the configured [sig_bits] (excluding the
    bucket bits, mirroring the paper's index/signature split). *)

val to_hex : t -> string

val compare_full : t -> t -> int
(** Total order over all lanes, for use in test containers. *)

(** {1 In-place hashing (allocation-free fastpath)}

    Mutable mirrors of [state] and [t].  A probe preallocates one {!mstate}
    and one {!buf} (per domain) and reuses them for every lookup, so feeding
    bytes, finalizing and comparing against stored signatures allocate
    nothing on the minor heap.  The pure API above remains the source of
    truth for the slowpath and for states cached on dentries. *)

type mstate
(** Mutable running multilinear state. *)

val mstate : unit -> mstate
val mstate_reset : mstate -> unit

val mstate_resume : mstate -> state -> unit
(** Load a cached pure state (e.g. a cwd dentry's resume point). *)

val mstate_snapshot : mstate -> state
(** Allocating escape hatch: capture the current running state as a pure
    [state] (used when a probe must hand off to slowpath machinery). *)

val mstate_pos : mstate -> int
val feed_char_into : key -> mstate -> char -> unit
val feed_bytes_into : key -> mstate -> string -> pos:int -> len:int -> unit

val scan_done : int
val scan_toolong : int

val hash_path_into : key -> mstate -> max_name:int -> string -> pos:int -> int
(** [hash_path_into key ms ~max_name s ~pos] scans the raw path string [s]
    from byte offset [pos], feeding ["/" ^ name] into [ms] for every real
    component while skipping empty components (leading / doubled / trailing
    slashes) and ["."] — the same canonicalization the list-based walk
    applies to [Path.split] output, with no intermediate list.  Returns
    {!scan_done} when the string is exhausted, {!scan_toolong} if a
    component exceeds [max_name], or the cursor just past a [".."]
    component so the caller can apply its dot-dot semantics and resume. *)

(** {1 Component-boundary snapshots (prefix-resumed slowpath)}

    A preallocated store of intermediate hash states, one per component
    boundary fed by {!hash_path_into_rec}.  On a table miss the caller
    re-finalizes the recorded slots deepest-first ({!finalize_snap_into})
    to look for the longest cached ancestor prefix — without re-hashing
    and without allocating. *)

type snaps
(** Flat int-array snapshot store; created once, reused for every probe. *)

val snaps : slots:int -> snaps
(** [snaps ~slots] preallocates room for [slots] boundaries.  Size it to
    the maximum possible component count (e.g. [max_path / 2 + 2]) so
    steady state never overflows. *)

val snaps_reset : snaps -> unit
(** Forget all recorded boundaries (two int stores; call per probe). *)

val snaps_count : snaps -> int
(** Number of boundaries recorded since the last reset.  Slot [n - 1] is
    the state after the final fed component (i.e. the full path). *)

val snaps_cursor : snaps -> int -> int
(** Byte offset in the raw path just past the component of slot [i]: the
    remaining suffix of the scanned path starts there. *)

val snaps_overflowed : snaps -> bool
(** True when more boundaries were fed than [slots]; recorded slots remain
    valid, deeper ones were dropped. *)

val hash_path_into_rec : key -> mstate -> snaps -> max_name:int -> string -> pos:int -> int
(** Exactly {!hash_path_into}, additionally recording a boundary snapshot
    into [snaps] after every fed component.  Allocation-free. *)

type buf
(** Mutable finalized digest (the in-place counterpart of [t]). *)

val buf : unit -> buf

val finalize_snap_into : key -> snaps -> int -> buf -> unit
(** Finalize the boundary state recorded in slot [i] into the buffer — the
    prefix signature covering the first [i + 1] fed components.  Does not
    disturb any [mstate].  Allocation-free. *)

val finalize_into : key -> mstate -> buf -> unit
(** Non-destructive on the [mstate]; overwrites the [buf]. *)

val buf_bucket : buf -> int
val equal_buf : key -> buf -> t -> bool
val of_buf : buf -> t
(** Allocating: freeze the buffer into an immutable [t] (slowpath only). *)
