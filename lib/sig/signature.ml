(* All arithmetic is on native (63-bit, untagged) ints: multiplication wraps
   modulo 2^63, which preserves the multilinear construction's universality
   for our purposes while keeping the per-byte loop allocation-free. *)

type t = { a : int; b : int; c : int; d : int }

type key = {
  seed : int;
  sig_bits : int;
  (* Per-lane per-position key material, grown on demand; entry
     [lane].(pos) is a pure function of (seed, lane, pos), so growth never
     changes existing values. *)
  mutable t0 : int array;
  mutable t1 : int array;
  mutable t2 : int array;
  mutable t3 : int array;
  (* Finalization (per-length) keys, one per lane, precomputed alongside. *)
  mutable f0 : int array;
  mutable f1 : int array;
  mutable f2 : int array;
  mutable f3 : int array;
  mutable capacity : int;
}

type state = { pos : int; l0 : int; l1 : int; l2 : int; l3 : int }

let lanes = 4
let initial_capacity = 512
let bucket_bits = 16

(* The bucket index is wider than the 16 bits excluded from signature
   comparison: an incrementally-resized DLHT can reach 2^22 buckets, and a
   16-bit index would stop spreading past 2^16 (chains grow with the table
   while half the buckets stay empty).  Bits 16..21 serve both as index and
   compared-signature bits, which is harmless — bucket placement is derived
   from the signature, never a substitute for comparing it. *)
let bucket_index_mask = (1 lsl 22) - 1
let max_sig_bits = 47 + (3 * 63)

let fmix z =
  let z = (z lxor (z lsr 30)) * 0x1F58476D1CE4E5B9 in
  let z = (z lxor (z lsr 27)) * 0x14D049BB133111EB in
  z lxor (z lsr 31)

let key_material seed lane pos =
  fmix (seed + (lane * 0x224BAED4963EE407) + ((pos + 1) * 0x1E3779B97F4A7C15))

let table key lane =
  match lane with 0 -> key.t0 | 1 -> key.t1 | 2 -> key.t2 | _ -> key.t3

let fin_table key lane =
  match lane with 0 -> key.f0 | 1 -> key.f1 | 2 -> key.f2 | _ -> key.f3

let fill_tables key from_pos =
  for lane = 0 to lanes - 1 do
    let t = table key lane in
    let f = fin_table key lane in
    for pos = from_pos to key.capacity - 1 do
      t.(pos) <- key_material key.seed lane pos;
      (* The finalization term for a string of length [pos]. *)
      f.(pos) <- key_material key.seed (lane + lanes) pos
    done
  done

let create_key ?(sig_bits = max_sig_bits) ~seed () =
  let sig_bits = max 1 (min max_sig_bits sig_bits) in
  let seed = fmix seed in
  let key =
    {
      seed;
      sig_bits;
      t0 = Array.make initial_capacity 0;
      t1 = Array.make initial_capacity 0;
      t2 = Array.make initial_capacity 0;
      t3 = Array.make initial_capacity 0;
      f0 = Array.make initial_capacity 0;
      f1 = Array.make initial_capacity 0;
      f2 = Array.make initial_capacity 0;
      f3 = Array.make initial_capacity 0;
      capacity = initial_capacity;
    }
  in
  fill_tables key 0;
  key

let random_key () =
  let seed =
    Hashtbl.hash (Unix.gettimeofday (), Unix.getpid (), Sys.opaque_identity (ref ()))
  in
  create_key ~seed ()

let sig_bits key = key.sig_bits

let grow key needed =
  let capacity = ref key.capacity in
  while !capacity <= needed do
    capacity := !capacity * 2
  done;
  let extend t =
    let bigger = Array.make !capacity 0 in
    Array.blit t 0 bigger 0 key.capacity;
    bigger
  in
  key.t0 <- extend key.t0;
  key.t1 <- extend key.t1;
  key.t2 <- extend key.t2;
  key.t3 <- extend key.t3;
  key.f0 <- extend key.f0;
  key.f1 <- extend key.f1;
  key.f2 <- extend key.f2;
  key.f3 <- extend key.f3;
  let old = key.capacity in
  key.capacity <- !capacity;
  fill_tables key old

let empty_state = { pos = 0; l0 = 0; l1 = 0; l2 = 0; l3 = 0 }

let feed_string key state s =
  let len = String.length s in
  if len = 0 then state
  else begin
    if state.pos + len > key.capacity then grow key (state.pos + len);
    let t0 = key.t0 and t1 = key.t1 and t2 = key.t2 and t3 = key.t3 in
    let l0 = ref state.l0 and l1 = ref state.l1 and l2 = ref state.l2 and l3 = ref state.l3 in
    let base = state.pos in
    for i = 0 to len - 1 do
      let byte = Char.code (String.unsafe_get s i) + 1 in
      let pos = base + i in
      l0 := !l0 + (Array.unsafe_get t0 pos * byte);
      l1 := !l1 + (Array.unsafe_get t1 pos * byte);
      l2 := !l2 + (Array.unsafe_get t2 pos * byte);
      l3 := !l3 + (Array.unsafe_get t3 pos * byte)
    done;
    { pos = base + len; l0 = !l0; l1 = !l1; l2 = !l2; l3 = !l3 }
  end

let feed_char key state ch =
  if state.pos >= key.capacity then grow key state.pos;
  let byte = Char.code ch + 1 in
  let pos = state.pos in
  {
    pos = pos + 1;
    l0 = state.l0 + (key.t0.(pos) * byte);
    l1 = state.l1 + (key.t1.(pos) * byte);
    l2 = state.l2 + (key.t2.(pos) * byte);
    l3 = state.l3 + (key.t3.(pos) * byte);
  }

let state_pos state = state.pos

let finalize key state =
  (* The per-length key term guarantees avalanche in the bucket bits even
     for empty or one-byte paths. *)
  if state.pos >= key.capacity then grow key state.pos;
  let pos = state.pos in
  {
    a = fmix (state.l0 + Array.unsafe_get key.f0 pos);
    b = fmix (state.l1 + Array.unsafe_get key.f1 pos);
    c = fmix (state.l2 + Array.unsafe_get key.f2 pos);
    d = fmix (state.l3 + Array.unsafe_get key.f3 pos);
  }

let hash_string key s = finalize key (feed_string key empty_state s)
let bucket t = t.a land bucket_index_mask

(* The signature is laid out as: lane [a] bits 16..62 (47 bits), then lanes
   [b], [c], [d] (63 bits each).  [equal] compares the first [sig_bits] of
   that string, so a truncated key widens collision odds for tests while
   production keys compare everything.

   The helpers are top-level [@inline] functions taking [bits] explicitly —
   local closures here would put two allocations on every DLHT chain
   comparison, i.e. on every warm probe. *)
let[@inline] mask_low n v = if n >= 63 then v else v land ((1 lsl n) - 1)

let[@inline] seg_equal bits consumed width xv yv =
  let take = min width (max 0 (bits - consumed)) in
  take = 0 || mask_low take xv = mask_low take yv

let[@inline] equal_lanes bits xa xb xc xd y =
  seg_equal bits 0 47 (xa lsr bucket_bits) (y.a lsr bucket_bits)
  && seg_equal bits 47 63 xb y.b
  && seg_equal bits 110 63 xc y.c
  && seg_equal bits 173 63 xd y.d

let equal key x y = equal_lanes key.sig_bits x.a x.b x.c x.d y

(* --- in-place (allocation-free) hashing --------------------------------

   The pure [state]/[t] API above allocates a fresh record per feed and per
   finalize; fine for the slowpath and for states cached on dentries, but a
   warm fastpath probe must not pay a GC tax.  The mutable mirror below
   threads one preallocated [mstate] (the running multilinear state) and one
   [buf] (the finalized digest) through the whole probe, so a warm hit
   performs zero minor-heap allocation. *)

type mstate = {
  mutable mpos : int;
  mutable m0 : int;
  mutable m1 : int;
  mutable m2 : int;
  mutable m3 : int;
}

let mstate () = { mpos = 0; m0 = 0; m1 = 0; m2 = 0; m3 = 0 }

let mstate_reset ms =
  ms.mpos <- 0;
  ms.m0 <- 0;
  ms.m1 <- 0;
  ms.m2 <- 0;
  ms.m3 <- 0

let mstate_resume ms (s : state) =
  ms.mpos <- s.pos;
  ms.m0 <- s.l0;
  ms.m1 <- s.l1;
  ms.m2 <- s.l2;
  ms.m3 <- s.l3

let mstate_snapshot ms = { pos = ms.mpos; l0 = ms.m0; l1 = ms.m1; l2 = ms.m2; l3 = ms.m3 }
let mstate_pos ms = ms.mpos

let[@inline] feed_char_into key ms ch =
  if ms.mpos >= key.capacity then grow key ms.mpos;
  let byte = Char.code ch + 1 in
  let pos = ms.mpos in
  ms.m0 <- ms.m0 + (Array.unsafe_get key.t0 pos * byte);
  ms.m1 <- ms.m1 + (Array.unsafe_get key.t1 pos * byte);
  ms.m2 <- ms.m2 + (Array.unsafe_get key.t2 pos * byte);
  ms.m3 <- ms.m3 + (Array.unsafe_get key.t3 pos * byte);
  ms.mpos <- pos + 1

(* Lane sums accumulate through the mutable fields, not local [ref]s: the
   compiler (no flambda here) would box each ref on the minor heap, and this
   loop runs on the allocation-free probe.  Components are short (≤ 255
   bytes), so the extra field traffic is noise. *)
let feed_bytes_into key ms s ~pos ~len =
  if len > 0 then begin
    if ms.mpos + len > key.capacity then grow key (ms.mpos + len);
    let base = ms.mpos in
    for i = 0 to len - 1 do
      let byte = Char.code (String.unsafe_get s (pos + i)) + 1 in
      let p = base + i in
      ms.m0 <- ms.m0 + (Array.unsafe_get key.t0 p * byte);
      ms.m1 <- ms.m1 + (Array.unsafe_get key.t1 p * byte);
      ms.m2 <- ms.m2 + (Array.unsafe_get key.t2 p * byte);
      ms.m3 <- ms.m3 + (Array.unsafe_get key.t3 p * byte)
    done;
    ms.mpos <- base + len
  end

(* In-place scanner over a raw path string: feeds ['/' ^ name] for every
   real component, skipping empty ones (leading, doubled and trailing
   slashes) and ["."] — exactly the canonicalization the list-based probe
   applies to [Path.split] output, without materializing the list.

   Returns [scan_done] when the path is exhausted, [scan_toolong] when a
   component exceeds [max_name], or the cursor just past a [".."] component
   so the caller can run its dot-dot semantics and resume with [~pos]. *)

let scan_done = -1
let scan_toolong = -2

(* Cursor movement is tail recursion over int arguments — a [ref]-and-while
   formulation would cost minor-heap boxes per call without flambda. *)
let rec skip_slashes s len i =
  if i < len && String.unsafe_get s i = '/' then skip_slashes s len (i + 1) else i

let rec component_end s len j =
  if j < len && String.unsafe_get s j <> '/' then component_end s len (j + 1) else j

let rec hash_path_into key ms ~max_name s ~pos =
  let len = String.length s in
  let i = skip_slashes s len pos in
  if i >= len then scan_done
  else begin
    let j = component_end s len i in
    let clen = j - i in
    if clen = 1 && String.unsafe_get s i = '.' then hash_path_into key ms ~max_name s ~pos:j
    else if clen = 2 && String.unsafe_get s i = '.' && String.unsafe_get s (i + 1) = '.' then j
    else if clen > max_name then scan_toolong
    else begin
      feed_char_into key ms '/';
      feed_bytes_into key ms s ~pos:i ~len:clen;
      hash_path_into key ms ~max_name s ~pos:j
    end
  end

(* --- component-boundary snapshots (prefix-resumed slowpath) -------------

   A probe that may miss wants to know, afterwards, what the running state
   was at every component boundary it hashed: the longest cached ancestor
   of a missing path is found by re-finalizing those intermediate states
   and probing the table deepest-first.  [snaps] is a preallocated flat
   store — recording one boundary is six unchecked int stores — so the warm
   path can record unconditionally and stay allocation-free.  Lane values
   are stored raw (pos, l0..l3), not finalized: finalization is deferred to
   the rare miss, and only for the slots actually probed. *)

type snaps = {
  snap_cap : int;
  snap_cursors : int array;  (* byte offset in the raw path just past component i *)
  snap_states : int array;  (* [snap_words] ints per boundary: pos, l0..l3 *)
  mutable snap_n : int;
  mutable snap_overflowed : bool;
}

let snap_words = 5

let snaps ~slots =
  let cap = if slots < 1 then 1 else slots in
  {
    snap_cap = cap;
    snap_cursors = Array.make cap 0;
    snap_states = Array.make (cap * snap_words) 0;
    snap_n = 0;
    snap_overflowed = false;
  }

let snaps_reset sn =
  sn.snap_n <- 0;
  sn.snap_overflowed <- false

let snaps_count sn = sn.snap_n
let snaps_overflowed sn = sn.snap_overflowed
let snaps_cursor sn i = sn.snap_cursors.(i)

(* Overflow (more components than slots) simply stops recording: every slot
   already stored is still a valid prefix state, so callers may keep using
   them — they just cannot resume deeper than the capacity. *)
let[@inline] record_snap sn ms cursor =
  if sn.snap_n >= sn.snap_cap then sn.snap_overflowed <- true
  else begin
    let base = sn.snap_n * snap_words in
    let st = sn.snap_states in
    Array.unsafe_set sn.snap_cursors sn.snap_n cursor;
    Array.unsafe_set st base ms.mpos;
    Array.unsafe_set st (base + 1) ms.m0;
    Array.unsafe_set st (base + 2) ms.m1;
    Array.unsafe_set st (base + 3) ms.m2;
    Array.unsafe_set st (base + 4) ms.m3;
    sn.snap_n <- sn.snap_n + 1
  end

(* [hash_path_into] with a boundary snapshot after every fed component. *)
let rec hash_path_into_rec key ms sn ~max_name s ~pos =
  let len = String.length s in
  let i = skip_slashes s len pos in
  if i >= len then scan_done
  else begin
    let j = component_end s len i in
    let clen = j - i in
    if clen = 1 && String.unsafe_get s i = '.' then hash_path_into_rec key ms sn ~max_name s ~pos:j
    else if clen = 2 && String.unsafe_get s i = '.' && String.unsafe_get s (i + 1) = '.' then j
    else if clen > max_name then scan_toolong
    else begin
      feed_char_into key ms '/';
      feed_bytes_into key ms s ~pos:i ~len:clen;
      record_snap sn ms j;
      hash_path_into_rec key ms sn ~max_name s ~pos:j
    end
  end

type buf = { mutable ba : int; mutable bb : int; mutable bc : int; mutable bd : int }

let buf () = { ba = 0; bb = 0; bc = 0; bd = 0 }

let finalize_into key ms b =
  if ms.mpos >= key.capacity then grow key ms.mpos;
  let pos = ms.mpos in
  b.ba <- fmix (ms.m0 + Array.unsafe_get key.f0 pos);
  b.bb <- fmix (ms.m1 + Array.unsafe_get key.f1 pos);
  b.bc <- fmix (ms.m2 + Array.unsafe_get key.f2 pos);
  b.bd <- fmix (ms.m3 + Array.unsafe_get key.f3 pos)

(* Finalize the recorded boundary state in slot [i] into [b] — the
   non-allocating counterpart of [finalize] for snapshot lanes, used by the
   deepest-first ancestor scan on a miss. *)
let finalize_snap_into key sn i b =
  let base = i * snap_words in
  let st = sn.snap_states in
  let pos = st.(base) in
  if pos >= key.capacity then grow key pos;
  b.ba <- fmix (st.(base + 1) + Array.unsafe_get key.f0 pos);
  b.bb <- fmix (st.(base + 2) + Array.unsafe_get key.f1 pos);
  b.bc <- fmix (st.(base + 3) + Array.unsafe_get key.f2 pos);
  b.bd <- fmix (st.(base + 4) + Array.unsafe_get key.f3 pos)

let buf_bucket b = b.ba land bucket_index_mask
let equal_buf key b y = equal_lanes key.sig_bits b.ba b.bb b.bc b.bd y
let of_buf b = { a = b.ba; b = b.bb; c = b.bc; d = b.bd }

let to_hex t = Printf.sprintf "%016x%016x%016x%016x" t.a t.b t.c t.d

let compare_full x y =
  match compare x.a y.a with
  | 0 -> (
    match compare x.b y.b with
    | 0 -> ( match compare x.c y.c with 0 -> compare x.d y.d | r -> r)
    | r -> r)
  | r -> r
