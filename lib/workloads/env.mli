(** Benchmark environments: a kernel + root process over either a memory
    file system (warm-cache experiments) or the simulated disk (cold-cache
    experiments, Table 2). *)

type t = {
  kernel : Dcache_syscalls.Kernel.t;
  proc : Dcache_syscalls.Proc.t;
  vclock : Dcache_util.Vclock.t;
      (** accumulates simulated device latency; zero for ram environments *)
  pagecache : Dcache_storage.Pagecache.t option;
}

val ram : ?lsms:Dcache_cred.Lsm.hooks list -> Dcache_vfs.Config.t -> t

val disk :
  ?lsms:Dcache_cred.Lsm.hooks list ->
  ?device_config:Dcache_storage.Blockdev.config ->
  ?cache_pages:int ->
  ?faults:Dcache_util.Fault.t ->
  Dcache_vfs.Config.t ->
  t
(** [faults] attaches the simulated disk to a fault injector (see
    {!Dcache_storage.Blockdev}); disarmed sites cost nothing. *)

val drop_caches : t -> unit
(** Evict the dcache and the page cache: the cold-cache state. *)

val reset_measurement : t -> unit
(** Zero counters and the virtual clock before a measured run. *)
