(** Measured workload execution: wall time + simulated device time, and the
    path-lookup statistics the paper reports per application (Table 1/2). *)

type result = {
  label : string;
  real_ns : int64;  (** measured wall-clock time *)
  virt_ns : int64;  (** simulated device latency accrued (cold-cache runs) *)
  total_ns : int64;  (** real + virtual: the reported execution time *)
  path_lookups : int;
  hit_rate : float;  (** component-level dcache hit rate *)
  neg_rate : float;  (** share of lookups answered by negative dentries *)
  counters : (string * int) list;
}

val run : ?label:string -> Env.t -> (unit -> unit) -> result
(** Reset measurement state, run the workload, and collect the result. *)

type open_loop = {
  ol_label : string;
  ol_batch : int;  (** ops per submission *)
  ol_rate_per_s : float;  (** offered Poisson arrival rate *)
  ol_ops : int;  (** total ops completed *)
  ol_busy_ns : int64;  (** summed service time (wall + charged device ns) *)
  ol_span_ns : int64;  (** virtual makespan: last completion or arrival *)
  ol_p50_ns : int;  (** median per-op sojourn (completion - arrival) *)
  ol_p99_ns : int;
  ol_mean_ns : float;
}

val run_open_loop :
  ?label:string ->
  ?seed:int ->
  Env.t ->
  rate_per_s:float ->
  batch:int ->
  batches:int ->
  fill:(Dcache_syscalls.Batch.t -> int -> unit) ->
  unit ->
  open_loop
(** Open-loop vectored driver (§3.9): ops arrive on the virtual clock as a
    Poisson process at [rate_per_s] — arrivals never wait for service, so
    queueing shows up in the sojourn percentiles.  Every [batch] arrivals,
    [fill ring i] (with [i] the global op index) pushes one op per call
    into the preallocated ring, which is then submitted; service time is
    measured wall time plus simulated device time charged during the
    submit.  Sojourns land in a PR-3 latency histogram ({!Dcache_util.Stats.Lhist});
    the result carries its p50/p99/mean. *)

val seconds : result -> float
val gain : baseline:result -> result -> float
(** Relative improvement of [result] over [baseline] in percent (positive =
    faster). *)
