module Kernel = Dcache_syscalls.Kernel
module Batch = Dcache_syscalls.Batch
module Counter = Dcache_util.Stats.Counter
module Vclock = Dcache_util.Vclock
module Prng = Dcache_util.Prng
module Lhist = Dcache_util.Stats.Lhist

type result = {
  label : string;
  real_ns : int64;
  virt_ns : int64;
  total_ns : int64;
  path_lookups : int;
  hit_rate : float;
  neg_rate : float;
  counters : (string * int) list;
}

let run ?(label = "workload") env f =
  Env.reset_measurement env;
  let _, real_ns = Dcache_util.Clock.time_ns f in
  let virt_ns = Dcache_util.Vclock.elapsed_ns env.Env.vclock in
  let counters = Kernel.stats_snapshot env.Env.kernel in
  let get key = try List.assoc key counters with Not_found -> 0 in
  let hits = get "dcache_hit" in
  let misses = get "dcache_miss" in
  let lookups = get "path_lookup" in
  let negatives =
    get "walk_negative_hit" + get "fastpath_negative_hit" + get "complete_dir_negative"
  in
  {
    label;
    real_ns;
    virt_ns;
    total_ns = Int64.add real_ns virt_ns;
    path_lookups = lookups;
    hit_rate =
      (if hits + misses = 0 then 1.0
       else float_of_int hits /. float_of_int (hits + misses));
    neg_rate =
      (if lookups = 0 then 0.0 else float_of_int negatives /. float_of_int lookups);
    counters;
  }

type open_loop = {
  ol_label : string;
  ol_batch : int;
  ol_rate_per_s : float;
  ol_ops : int;
  ol_busy_ns : int64;
  ol_span_ns : int64;
  ol_p50_ns : int;
  ol_p99_ns : int;
  ol_mean_ns : float;
}

(* Open-loop driver (§3.9): ops arrive on the virtual timeline as a Poisson
   process at [rate_per_s] regardless of service progress — the arrival
   clock never waits for the server, so queueing delay is visible in the
   sojourn times instead of being absorbed by a closed loop's back-pressure.
   Each batch of [batch] arrivals is pushed into the ring by [fill] and
   submitted once its last op has arrived; service time is the submit's
   measured wall time plus whatever simulated device time it charged, and
   per-op sojourn (completion - arrival) lands in a PR-3 latency histogram
   whose p50/p99 the result reports. *)
let run_open_loop ?(label = "open-loop") ?(seed = 42) env ~rate_per_s ~batch ~batches
    ~fill () =
  if batch <= 0 || batches <= 0 then invalid_arg "Runner.run_open_loop";
  if rate_per_s <= 0.0 then invalid_arg "Runner.run_open_loop: rate";
  let ring = Batch.create ~cap:batch env.Env.proc in
  let prng = Prng.create (0x0b5e55ed + seed) in
  let hist = Lhist.create () in
  let arrivals = Array.make batch 0L in
  let now = ref 0L (* virtual arrival clock *) in
  let completed = ref 0L (* completion time of the previous batch *) in
  let busy = ref 0L in
  for b = 0 to batches - 1 do
    for k = 0 to batch - 1 do
      let u = Prng.float prng 1.0 in
      let gap_ns = -.log (1.0 -. u) /. rate_per_s *. 1e9 in
      now := Int64.add !now (Int64.of_float gap_ns);
      arrivals.(k) <- !now
    done;
    Batch.reset ring;
    for k = 0 to batch - 1 do
      fill ring ((b * batch) + k)
    done;
    let virt0 = Vclock.elapsed_ns env.Env.vclock in
    let (), wall_ns = Dcache_util.Clock.time_ns (fun () -> Batch.submit ring) in
    let service_ns =
      Int64.add wall_ns (Int64.sub (Vclock.elapsed_ns env.Env.vclock) virt0)
    in
    let start = if Int64.compare !completed !now > 0 then !completed else !now in
    let finish = Int64.add start service_ns in
    completed := finish;
    busy := Int64.add !busy service_ns;
    for k = 0 to batch - 1 do
      Lhist.record hist (Int64.to_int (Int64.sub finish arrivals.(k)))
    done
  done;
  {
    ol_label = label;
    ol_batch = batch;
    ol_rate_per_s = rate_per_s;
    ol_ops = batch * batches;
    ol_busy_ns = !busy;
    ol_span_ns = (if Int64.compare !completed !now > 0 then !completed else !now);
    ol_p50_ns = Lhist.percentile hist 50.0;
    ol_p99_ns = Lhist.percentile hist 99.0;
    ol_mean_ns = Lhist.mean hist;
  }

let seconds r = Int64.to_float r.total_ns /. 1e9

let gain ~baseline r =
  let b = Int64.to_float baseline.total_ns in
  let v = Int64.to_float r.total_ns in
  if b = 0.0 then 0.0 else (b -. v) /. b *. 100.0
