module Kernel = Dcache_syscalls.Kernel
module Proc = Dcache_syscalls.Proc
module Vclock = Dcache_util.Vclock
module Blockdev = Dcache_storage.Blockdev
module Pagecache = Dcache_storage.Pagecache

type t = {
  kernel : Kernel.t;
  proc : Proc.t;
  vclock : Vclock.t;
  pagecache : Pagecache.t option;
}

let ram ?(lsms = []) config =
  let fs = Dcache_fs.Ramfs.create () in
  let kernel = Kernel.create ~config ~lsms ~root_fs:fs () in
  { kernel; proc = Proc.spawn kernel; vclock = Vclock.create (); pagecache = None }

let disk ?(lsms = []) ?(device_config = Blockdev.default_config) ?(cache_pages = 8192)
    ?faults config =
  let vclock = Vclock.create () in
  let device = Blockdev.create ~config:device_config ?faults vclock in
  let cache = Pagecache.create ~capacity_pages:cache_pages device in
  let fs = Dcache_fs.Extfs.mkfs_and_mount cache in
  (* Charge deterministic virtual time per low-level fs call: the real
     kernel-side cost of leaving the VFS (see Fs_overhead). *)
  let fs = Dcache_fs.Fs_overhead.wrap ~clock:vclock fs in
  let kernel = Kernel.create ~config ~lsms ~root_fs:fs () in
  { kernel; proc = Proc.spawn kernel; vclock; pagecache = Some cache }

let drop_caches t =
  Kernel.drop_caches t.kernel;
  match t.pagecache with Some cache -> Pagecache.drop_caches cache | None -> ()

let reset_measurement t =
  Kernel.reset_stats t.kernel;
  Vclock.reset t.vclock;
  match t.pagecache with Some cache -> Pagecache.reset_stats cache | None -> ()
