(** The optimized lookup fastpath (paper §3).

    A lookup computes the signature of the full canonical path — resuming
    the hash from the starting directory's stored state for relative paths —
    probes the per-namespace {!Dlht} with it, and validates the result
    against the per-credential {!Pcc}.  A hit resolves any path in a
    constant number of hash-table operations; any miss (no DLHT entry, no
    valid PCC entry, unresolvable trailing symlink, ...) falls back to the
    ordinary component-at-a-time slowpath, whose successful prefix checks
    repopulate the DLHT and PCC for next time.

    Dot-dot components follow the configured semantics (§4.2): Linux mode
    issues an extra fastpath sub-lookup per [..] to preserve permission
    semantics; Plan 9 lexical mode pre-processes them away. *)

open Dcache_vfs.Types
module Walk = Dcache_vfs.Walk

type t

val create : Dcache_vfs.Dcache.t -> t
(** Builds the fastpath state over a directory cache and installs the
    shootdown hook that keeps the DLHT coherent with evictions and
    invalidations.  The signature key is derived from the configuration's
    [hash_seed] (a boot-time random value in a real kernel). *)

val dcache : t -> Dcache_vfs.Dcache.t
val key : t -> Dcache_sig.Signature.key

val set_simulate_pcc_miss : t -> bool -> unit
(** Force every probe to miss in the PCC (and skip PCC repopulation): the
    paper's "fastpath miss + slowpath" worst case (Fig. 6). *)

val lookup : t -> Walk.ctx -> ?start:path_ref -> ?flags:Walk.flags -> string -> Walk.result_
(** Resolve a path: fastpath probe, then slowpath-with-population fallback.
    [start] overrides the walk origin for relative paths (the *at() family);
    default is the context's cwd.  The warm probe is {e lockless}: it runs
    without the dcache lock, validated against the dcache-wide write
    sequence, and retries under the read lock when a concurrent write
    section invalidated it (RCU-walk → ref-walk, §3.2); only the fallback
    takes the write lock.  With the fastpath disabled in the configuration,
    this is the baseline kernel's two-phase (Rcu then Ref) slowpath. *)

val lookup_with :
  t ->
  Walk.ctx ->
  ?start:path_ref ->
  ?flags:Walk.flags ->
  string ->
  within:(path_ref -> ('a, Dcache_types.Errno.t) result) ->
  ('a, Dcache_types.Errno.t) result
(** Like {!lookup}, but runs [within] on the result while the protecting
    lock is still held, so the caller can pin the dentry or evaluate
    permissions without racing evictions.  Thin wrapper over
    {!lookup_into} that boxes the location into a [path_ref]. *)

val lookup_into :
  t ->
  Walk.ctx ->
  ?start:path_ref ->
  ?flags:Walk.flags ->
  string ->
  within:(mount -> dentry -> ('a, Dcache_types.Errno.t) result) ->
  ('a, Dcache_types.Errno.t) result
(** The allocation-free lookup: like {!lookup_with} but hands the resolved
    location to [within] as separate arguments instead of building a
    [path_ref].  On the default configuration (fastpath on, Linux dot-dot
    semantics) a warm DLHT hit over a plain path — no ".." components —
    performs {e zero} minor-heap allocation and {e zero} rwlock
    acquisitions beyond what [within] itself does: the path is hashed in
    place from the raw string into per-domain scratch state, the bucket
    chain is walked intrusively, the probe is validated by one seqcount
    read, and counters and phase accounting are single stores.  [within]
    runs after validation but outside any lock on this tier, so its effects
    (pinning, permission evaluation) must tolerate being linearized just
    before any concurrent mutation — the same contract an open racing an
    unlink already has. *)

val probe_batch :
  t ->
  Walk.ctx ->
  n:int ->
  path:(int -> string) ->
  flags:(int -> Walk.flags) ->
  prepare:(int -> unit) ->
  within:(mount -> dentry -> ('a, Dcache_types.Errno.t) result) ->
  complete:(int -> ('a, Dcache_types.Errno.t) result -> unit) ->
  deferred:int array ->
  unit
(** Vectored probe (§3.9): resolve ops [0..n-1] with amortized
    validation.  The accessors ([path i], [flags i]) and the sinks
    ([prepare i] before op [i] touches shared scratch, [complete i r]
    with its result) must be allocated once per ring by the caller — the
    warm all-hit batch performs zero minor-heap allocation end to end.
    [deferred] is caller-owned scratch of length >= [n].

    Phase 1 probes every op locklessly under one shared seqcount window
    (re-snapshotting on a mid-batch bump — a "batch split"); each op's
    commit check validates the shared snapshot plus its own recorded
    stripes, which is strictly stronger than the sequential per-op
    window, so batched results always match the same ops issued
    sequentially at the same point.  Misses defer to phase 2: sorted by
    path, resolved under a single write-lock acquisition, with runs of
    single-component siblings resolved by one probe-or-fill each
    ({!Walk.resume_sibling}) and all publication through the stripe-free
    exclusive DLHT insert.  Ops resolve relative to the context's cwd.
    On baseline/lexical configurations degrades to per-op sequential
    lookups. *)

val populate :
  ?exclusive:bool ->
  t ->
  Walk.ctx ->
  visited:path_ref list ->
  absolute:bool ->
  start:path_ref ->
  unit
(** Publish a collected slowpath chain into the DLHT and PCC.  Must be
    called with the write side held; respects the global invalidation
    counter protocol (§3.2) and the directory-reference gating rule for
    relative walks.  [exclusive] (default false) publishes through
    {!Dlht.insert_exclusive} — valid only under the write lock, used by
    batched group populates (§3.9) to skip per-splice stripe locks. *)

val ensure_hstate : t -> path_ref -> Dcache_sig.Signature.state
(** Resumable hash state of a location's canonical path, computing and
    caching it (and its ancestors') on first use. *)
