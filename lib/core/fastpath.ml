open Dcache_types
open Dcache_vfs.Types
module Vfs = Dcache_vfs
module Dcache = Vfs.Dcache
module Walk = Vfs.Walk
module Path = Vfs.Path
module Config = Vfs.Config
module Phases = Vfs.Phases
module Signature = Dcache_sig.Signature
module Counter = Dcache_util.Stats.Counter
module Rwlock = Dcache_util.Rwlock
module Seqcount = Dcache_util.Seqcount
module Trace = Dcache_util.Trace
module Profiler = Dcache_util.Profiler
module Clock = Dcache_util.Clock

module Locktab = Dcache_util.Locktab

type t = {
  dcache : Dcache.t;
  key : Signature.key;
  mutable simulate_pcc_miss : bool;
  (* Preallocated [Some max] for [Pcc.of_cred]: passing [~max_entries:n] to
     an optional parameter would box a fresh [Some] on every probe. *)
  pcc_max : int option;
  (* The dcache's sharded-mutation stripe table, resolved once: lockless
     probes record the stripes their dentry reads depend on (None when
     unsharded — recording is then a dead branch). *)
  dtab : Locktab.t option;
  (* Counter cells resolved once at creation: the probe bumps statistics
     with a per-domain atomic store instead of a per-lookup map lookup.
     Cells survive [Kernel.reset_stats] (Counter.reset zeroes in place). *)
  c_hit : Counter.cell;
  c_fallback : Counter.cell;
  c_neg : Counter.cell;
  c_dotdot : Counter.cell;
  c_refwalk : Counter.cell;
  c_lockless_retry : Counter.cell;
  c_locked_probe : Counter.cell;
  c_prefix_resume : Counter.cell;
  c_prefix_negfail : Counter.cell;
  c_prefix_stale : Counter.cell;
  c_negfail_promoted : Counter.cell;
  c_lease_fallback : Counter.cell;
}

let create dcache =
  let config = Dcache.config dcache in
  let key =
    Signature.create_key ~sig_bits:config.Config.sig_bits ~seed:config.Config.hash_seed ()
  in
  let counters = Dcache.counters dcache in
  let t =
    {
      dcache;
      key;
      simulate_pcc_miss = false;
      pcc_max = Some config.Config.pcc_max_entries;
      dtab = Dcache.stripes dcache;
      c_hit = Counter.cell counters "fastpath_hit";
      c_fallback = Counter.cell counters "fastpath_fallback";
      c_neg = Counter.cell counters "fastpath_negative_hit";
      c_dotdot = Counter.cell counters "fastpath_dotdot_sublookup";
      c_refwalk = Counter.cell counters "walk_refwalk_fallback";
      c_lockless_retry = Counter.cell counters "fastpath_lockless_retry";
      c_locked_probe = Counter.cell counters "fastpath_locked_probe";
      c_prefix_resume = Counter.cell counters "fastpath_prefix_resume";
      c_prefix_negfail = Counter.cell counters "fastpath_prefix_negfail";
      c_prefix_stale = Counter.cell counters "fastpath_prefix_stale";
      c_negfail_promoted = Counter.cell counters "fastpath_negfail_promoted";
      c_lease_fallback = Counter.cell counters "fastpath_lease_fallback";
    }
  in
  (Dcache.hooks dcache).on_shootdown <- Dlht.remove;
  t

let dcache t = t.dcache
let key t = t.key
let set_simulate_pcc_miss t v = t.simulate_pcc_miss <- v
let config t = Dcache.config t.dcache
let counters t = Dcache.counters t.dcache

(* --- canonical hash states (§3.1) ---

   A dentry's hash state is the multilinear state after feeding its full
   canonical path *in the mount tree of the namespace it was reached in*:
   a mounted root inherits the state of its mountpoint.  States are computed
   lazily and cached on the dentry; plain single-field writes make this safe
   to run under the read lock (racing recomputations produce equal values). *)

let rec ensure_hstate t (r : path_ref) =
  let d = r.dentry in
  match d.d_hstate with
  | Some state -> state
  | None ->
    let state =
      if d == r.mnt.mnt_root then begin
        match r.mnt.mnt_mountpoint with
        | None -> Signature.empty_state
        | Some (pmnt, mountpoint) -> ensure_hstate t { mnt = pmnt; dentry = mountpoint }
      end
      else begin
        match d.d_parent with
        | None -> Signature.empty_state
        | Some parent ->
          let parent_state = ensure_hstate t { r with dentry = parent } in
          Signature.feed_string t.key (Signature.feed_char t.key parent_state '/') d.d_name
      end
    in
    d.d_hstate <- Some state;
    if d.d_mnt = None then d.d_mnt <- Some r.mnt;
    state

(* --- the probe (§3.1, §4.2) --- *)

exception Fall_back

(* The optimistic (lockless) probe observed a dcache write sequence change:
   everything it read is suspect, retry under the read lock (RCU-walk →
   ref-walk, §3.2).  Constant constructor — raising it allocates nothing. *)
exception Seq_retry

let real_of d = match d.d_alias with Some real -> real | None -> d

let pcc_valid t pcc d =
  (not t.simulate_pcc_miss) && Pcc.check pcc d

(* Validate a DLHT hit against the PCC: the literal dentry covers the
   literal prefix's permissions, the real dentry the translated one. *)
let validate t pcc literal real =
  if not (pcc_valid t pcc literal) then raise Fall_back;
  if (not (real == literal)) && not (pcc_valid t pcc real) then raise Fall_back

(* --- the lease gate (§3.7) ---

   On a leased (stateful network) file system a cached verdict may be
   served locklessly only while this client holds a live lease on the
   inode that decides it: the final inode (and its containing directory)
   for a positive hit, the containing directory for a cached absence.  A
   dead or missing lease forces the write-locked fallback, whose walk
   revalidates at the server and re-earns the lease — the middle rung of
   the degradation ladder.  [lease_check] is supplied by the netfs client
   and is allocation-free (Hashtbl.find on an int + integer compares), so
   a live-lease warm hit keeps the 0-words/0-locks guarantee.  Local file
   systems carry no [lease_check] and skip all of this on one load. *)

let[@inline] dentry_leased live d =
  match d.d_state with
  | Positive inode -> live (Vfs.Inode.ino inode)
  | Partial { p_ino; _ } -> live p_ino
  | Negative _ -> false

(* §3.8 cache-efficacy attribution: charge [metric] to the directory that
   decided the verdict on [d] — its parent, or [d] itself at an fs root.
   Armed-only (the armed check skips even the parent match disarmed);
   [hh_record] is int/pointer stores into preallocated sketch slots, so
   the zero-allocation warm hit can stay profiled. *)
let[@inline] note_dir metric d =
  if !Profiler.armed then
    match d.d_parent with
    | Some p -> Profiler.hh_record p.d_id p.d_name metric
    | None -> Profiler.hh_record d.d_id d.d_name metric

(* A positive verdict for [final]: its own lease and (when it has a cached
   parent) the containing directory's lease must both be live — the parent
   lease is what makes the name binding trustworthy, AFS-callback style. *)
let gate_positive t final =
  match final.d_sb.sb_fs.Dcache_fs.Fs_intf.lease_check with
  | None -> ()
  | Some live ->
    if
      (not (dentry_leased live final))
      || (match final.d_parent with
         | None -> false (* the fs root: no containing directory to lease *)
         | Some parent -> not (dentry_leased live parent))
    then begin
      Counter.bump t.c_lease_fallback;
      note_dir Profiler.m_lease final;
      raise Fall_back
    end

(* A cached absence in some directory is only as fresh as that directory's
   lease.  [true] = the verdict is blocked (caller falls back or skips the
   candidate); negatives under an unleased or non-positive parent never
   fast-fail. *)
let lease_blocks_negative t d =
  match d.d_sb.sb_fs.Dcache_fs.Fs_intf.lease_check with
  | None -> false
  | Some live ->
    let blocked =
      match d.d_parent with None -> true | Some parent -> not (dentry_leased live parent)
    in
    if blocked then begin
      Counter.bump t.c_lease_fallback;
      note_dir Profiler.m_lease d
    end;
    blocked

(* A DIR_COMPLETE absence verdict is decided by directory [dir] itself. *)
let lease_blocks_dir t dir =
  match dir.d_sb.sb_fs.Dcache_fs.Fs_intf.lease_check with
  | None -> false
  | Some live ->
    let blocked = not (dentry_leased live dir) in
    if blocked then begin
      Counter.bump t.c_lease_fallback;
      if !Profiler.armed then Profiler.hh_record dir.d_id dir.d_name Profiler.m_lease
    end;
    blocked

let dlht_of t ctx =
  let cfg = config t in
  (* The DLHT gets stripes exactly when the dcache did: both tables are
     mutated by the same sharded sections. *)
  let stripes = match t.dtab with Some _ -> cfg.Config.dcache_stripes | None -> 0 in
  Dlht.of_namespace ~stripes ~buckets:cfg.Config.dlht_buckets
    ~grow_load:cfg.Config.dlht_grow_load ctx.Walk.ns

let pcc_of t ctx =
  let cfg = config t in
  Pcc.of_cred ?max_entries:t.pcc_max ctx.Walk.cred ctx.Walk.ns
    ~entries:cfg.Config.pcc_entries

(* --- lockless-probe discipline ---

   A probe with [vsnap >= 0] runs without the read lock, validated against
   the dcache write sequence it snapshotted.  Such a probe must be purely
   optimistic: it may read anything (racy single-field reads of immediates
   and pointers cannot tear in OCaml) but must not create subsystem state —
   creation is a mutation, and mutations belong under the lock.  So the
   lockless variants of the accessors below refuse to create (retrying
   under the lock instead, where the creating versions run), and cached
   hash states are consumed but never computed ([hstate_of]): a state
   derived from a concurrently-mutated ancestor chain could be garbage, and
   caching garbage would outlive the retry. *)

let dlht_for t ctx vsnap =
  if vsnap < 0 then dlht_of t ctx
  else begin
    match Dlht.of_namespace_exn ctx.Walk.ns with
    | dlht -> dlht
    | exception Not_found -> raise Seq_retry
  end

let pcc_for t ctx vsnap =
  if vsnap < 0 then pcc_of t ctx
  else begin
    match Pcc.of_cred_exn ctx.Walk.cred ctx.Walk.ns with
    | pcc -> pcc
    | exception Not_found -> raise Seq_retry
  end

let hstate_of t vsnap (r : path_ref) =
  if vsnap < 0 then ensure_hstate t r
  else begin
    match r.dentry.d_hstate with Some state -> state | None -> raise Seq_retry
  end

(* --- per-domain probe scratch --- *)

type scratch = {
  ms : Signature.mstate;
  sbuf : Signature.buf;
  (* Prefix-resume state (§3.5).  [snaps] records a hash-state snapshot at
     every component boundary the probe feeds — six int stores per
     component, preallocated once per domain, so the warm hit stays
     allocation-free.  On a miss the snapshots are re-finalized into
     [pbuf] ([sbuf] still holds the full-path digest) for the
     deepest-first ancestor scan.  The three mutable fields carry the
     probe's verdict to the write-locked fallback: which path the
     snapshots describe (physical identity — never read as a string), the
     global invalidation counter observed before any cached state was
     consumed, and the deepest viable ancestor slot (-1: none). *)
  snaps : Signature.snaps;
  pbuf : Signature.buf;
  mutable snap_path : string;
  mutable snap_inval : int;
  mutable resume_slot : int;
  (* Errno carried by a [Neg_fail] verdict — stashed here so the exception
     itself can stay constant (raising allocates nothing: the fast-fail may
     fire on every probe of a repeatedly missed name). *)
  mutable neg_errno : Errno.t;
  (* Stripe validation (sharded mode).  A lockless probe records every
     stripe seqcount its dentry-field and chain reads depend on — the DLHT
     stripe of each walked bucket, the dcache stripe of each trusted
     dentry's parent, the own-id stripe of each directory whose
     completeness answers for an absent child — and the commit check
     revalidates them all.  Preallocated; the dummy seqcount is never read
     (slots are written before [stripe_n] admits them). *)
  mutable stripe_n : int;
  stripe_seqs : Seqcount.t array;
  stripe_snaps : int array;
  (* Deep-negative promotion (§5.2): the DIR_COMPLETE fast-fail verdict's
     deciding directory and the absent next component's span, stashed so
     the miss handler can publish a negative dentry for it afterwards. *)
  mutable promote_dir : dentry option;
  mutable promote_pos : int;
  mutable promote_len : int;
  (* §3.8 retry attribution: the deciding directory of the most recent
     probe's verdict (set armed-only when the literal is found), so
     [note_lockless_retry] can charge the seqcount retry to the directory
     whose chain the raced writer touched.  -1: no candidate. *)
  mutable hh_id : int;
  mutable hh_name : string;
}

(* Per-domain because fig8-style benchmarks probe concurrently from several
   domains under the read lock. *)
let stripe_cap = 4096

let scratch_key =
  Domain.DLS.new_key (fun () ->
      {
        ms = Signature.mstate ();
        sbuf = Signature.buf ();
        snaps = Signature.snaps ~slots:((Path.max_path / 2) + 2);
        pbuf = Signature.buf ();
        snap_path = "";
        snap_inval = -1;
        resume_slot = -1;
        neg_errno = Errno.ENOENT;
        stripe_n = 0;
        stripe_seqs = Array.make stripe_cap (Seqcount.create ());
        stripe_snaps = Array.make stripe_cap 0;
        promote_dir = None;
        promote_pos = 0;
        promote_len = 0;
        hh_id = -1;
        hh_name = "";
      })

(* --- stripe recording (sharded mode) ---

   Unsharded, every helper below is a dead [None] branch — the legacy
   lockless probe is unchanged to the instruction.  Sharded, the probe
   records each stripe seqcount before performing the reads that stripe
   guards; [commit_check] then proves the whole read set raced no sharded
   writer, exactly as the dcache-wide write sequence proves it raced no
   exclusive one. *)

(* An odd snapshot means a mutation is in flight on that stripe right now:
   fail fast instead of walking suspect chains.  Overflow (an absurdly deep
   path) degrades to a retry that ends in the authoritative fallback. *)
let[@inline] record_seq sc q =
  let n = sc.stripe_n in
  if n >= stripe_cap then raise_notrace Seq_retry;
  let snap = Seqcount.read_begin q in
  if snap land 1 <> 0 then raise_notrace Seq_retry;
  sc.stripe_seqs.(n) <- q;
  sc.stripe_snaps.(n) <- snap;
  sc.stripe_n <- n + 1

(* The stripe guarding [d]'s own fields (state, seq, alias, target sig):
   its parent directory's stripe — every sharded mutation of a child runs
   under [index tab parent.d_id].  The racy [d_parent] read is safe: a
   racing rename holds {e both} parents' stripes, so whichever parent the
   reader observes, that stripe's seq is bumped by the move.  Roots have
   no parent and are never mutated by sharded sections. *)
let[@inline] record_dentry t sc (d : dentry) =
  match t.dtab with
  | None -> ()
  | Some tab -> (
    match d.d_parent with
    | None -> ()
    | Some p -> record_seq sc (Locktab.seq tab (Locktab.index tab p.d_id)))

(* The stripe guarding directory [d]'s children — its own id's stripe:
   DIR_COMPLETE and child-presence answers are stable only against it. *)
let[@inline] record_dir t sc (d : dentry) =
  match t.dtab with
  | None -> ()
  | Some tab -> record_seq sc (Locktab.seq tab (Locktab.index tab d.d_id))

(* The DLHT stripe guarding the bucket about to be walked. *)
let[@inline] record_chain sc dlht bucket =
  match Dlht.locktab dlht with
  | None -> ()
  | Some tab -> record_seq sc (Locktab.seq tab (Locktab.index tab bucket))

(* Top-level recursion, not a closure over [sc] — the commit check runs on
   the zero-allocation warm path. *)
let rec stripes_ok_from seqs snaps n i =
  i >= n
  || (Seqcount.read_validate seqs.(i) snaps.(i) && stripes_ok_from seqs snaps n (i + 1))

let[@inline] stripes_ok sc = stripes_ok_from sc.stripe_seqs sc.stripe_snaps sc.stripe_n 0

let[@inline] commit_check t sc vsnap =
  if
    vsnap >= 0
    && not (Seqcount.read_validate (Dcache.write_seq t.dcache) vsnap && stripes_ok sc)
  then raise Seq_retry

(* A trailing symlink is followed by one DLHT probe per hop on its cached
   target-path signature (§4.2): replacing any intermediate link refreshes
   that link's own dentry, so the chain can never serve a stale endpoint.
   Symlink targets resolve against the process root, so the shortcut only
   applies to non-chrooted processes ([at_ns_root]).

   Top-level (not a closure inside the probe): the warm path calls this once
   per lookup and must not allocate an environment for it. *)
let rec chase t dlht pcc sc ~follow_last ~at_ns_root d limit =
  if limit = 0 then raise Fall_back
  else begin
    record_dentry t sc d;
    let is_symlink =
      match d.d_state with
      | Positive inode -> File_kind.equal (Vfs.Inode.kind inode) File_kind.Symlink
      | Partial { p_kind; _ } -> File_kind.equal p_kind File_kind.Symlink
      | Negative _ -> false
    in
    if is_symlink && follow_last then begin
      match d.d_alias with
      | Some real when not (real == d) ->
        record_dentry t sc real;
        if not (pcc_valid t pcc real) then raise Fall_back;
        chase t dlht pcc sc ~follow_last ~at_ns_root real (limit - 1)
      | Some _ | None -> (
        if not at_ns_root then raise Fall_back;
        match d.d_target_sig with
        | None -> raise Fall_back
        | Some target_sig -> (
          record_chain sc dlht (Signature.bucket target_sig);
          match Dlht.find dlht ~key:t.key target_sig with
          | None -> raise Fall_back
          | Some next ->
            let real = real_of next in
            record_dentry t sc next;
            if not (real == next) then record_dentry t sc real;
            validate t pcc next real;
            chase t dlht pcc sc ~follow_last ~at_ns_root next (limit - 1)))
    end
    else begin
      match d.d_alias with
      | Some real ->
        record_dentry t sc real;
        if not (pcc_valid t pcc real) then raise Fall_back;
        real
      | None -> d
    end
  end

let at_ns_root ctx =
  ctx.Walk.root.mnt.mnt_mountpoint = None
  && ctx.Walk.root.dentry == ctx.Walk.root.mnt.mnt_root

(* One fastpath sub-lookup used by Linux dot-dot semantics (§4.2): resolve
   the prefix walked so far to a (checked) directory. *)
let probe_prefix t dlht pcc state =
  let signature = Signature.finalize t.key state in
  match Dlht.find dlht ~key:t.key signature with
  | None -> raise Fall_back
  | Some literal ->
    let real = real_of literal in
    validate t pcc literal real;
    if not (dentry_is_dir real) then raise Fall_back;
    (match real.d_mnt with Some mnt -> { mnt; dentry = real } | None -> raise Fall_back)

let rec fast_dotdot ctx (cur : path_ref) =
  if cur.dentry == ctx.Walk.root.dentry && cur.mnt == ctx.Walk.root.mnt then cur
  else begin
    match Vfs.Mount.follow_up cur with
    | Some up -> fast_dotdot ctx up
    | None -> (
      match cur.dentry.d_parent with
      | Some parent -> { cur with dentry = parent }
      | None -> cur)
  end

(* --- list-based probe (lexical dot-dot mode) ---

   Plan 9 lexical semantics rewrite the component list before hashing, so
   this mode keeps the [Path.split]-based walk; only the (default) Linux
   mode gets the in-place scanner below. *)

let probe t ctx ~(start : path_ref) ~(flags : Walk.flags) path =
  let cfg = config t in
  let dlht = dlht_of t ctx in
  let pcc = pcc_of t ctx in
  let absolute = Path.is_absolute path in
  let trailing_slash = Path.has_trailing_slash path in
  let components =
    Phases.timed Phases.Scan_hash (fun () ->
        match Path.split path with
        | Ok comps ->
          if cfg.Config.dotdot = Config.Dotdot_lexical then Path.lexical_normalize comps
          else comps
        | Error e -> raise (Errno.Error e))
  in
  let base =
    Phases.timed Phases.Init (fun () ->
        let base = if absolute then ctx.Walk.root else start in
        ensure_hstate t base)
  in
  (* Hash the canonical path, handling dot-dot per the configured
     semantics; lexical mode has already removed them. *)
  let state =
    Phases.timed Phases.Scan_hash (fun () ->
        List.fold_left
          (fun state comp ->
            match comp with
            | Path.Cur -> state
            | Path.Name name ->
              Signature.feed_string t.key (Signature.feed_char t.key state '/') name
            | Path.Up ->
              (* Linux semantics: an extra fastpath lookup of the prefix to
                 preserve permission checks, then resume from the parent's
                 state (§4.2). *)
              Counter.bump t.c_dotdot;
              let prefix = probe_prefix t dlht pcc state in
              let up = fast_dotdot ctx prefix in
              ensure_hstate t up)
          base components)
  in
  let signature = Signature.finalize t.key state in
  let literal =
    Phases.timed Phases.Table_lookup (fun () ->
        match Dlht.find dlht ~key:t.key signature with
        | Some d -> d
        | None ->
          Trace.bump_cause Trace.cause_cold;
          raise Fall_back)
  in
  Phases.timed Phases.Permission (fun () ->
      let shallow_real = real_of literal in
      validate t pcc literal shallow_real);
  Phases.timed Phases.Finalize (fun () ->
      let at_root = at_ns_root ctx in
      match literal.d_state with
      | Negative errno ->
        if not (Dcache.negative_current literal) then raise Fall_back;
        Counter.bump t.c_neg;
        Trace.stamp Trace.ev_fast_neg 0;
        Error errno
      | Positive _ | Partial _ -> (
        let sc = Domain.DLS.get scratch_key in
        let final =
          chase t dlht pcc sc ~follow_last:flags.Walk.follow_last ~at_ns_root:at_root
            literal 8
        in
        match final.d_state with
        | Negative errno ->
          if not (Dcache.negative_current final) then raise Fall_back;
          Counter.bump t.c_neg;
          Trace.stamp Trace.ev_fast_neg 0;
          Error errno
        | Partial _ -> raise Fall_back
        | Positive _ ->
          if (flags.Walk.must_dir || trailing_slash) && not (dentry_is_dir final) then
            Error Errno.ENOTDIR
          else begin
            match final.d_mnt with
            | None -> raise Fall_back
            | Some mnt ->
              final.d_last_used <- Dcache.new_tick t.dcache;
              Ok { mnt; dentry = final }
          end))

(* --- in-place probe (allocation-free warm path) ---

   The default (Linux dot-dot) mode scans the raw path string component by
   component, feeding bytes straight into a preallocated per-domain hash
   state — no [Path.split] list, no intermediate state records, no closures.
   A warm DLHT hit on a plain path performs zero minor-heap allocation
   (asserted by test and measured by the [alloc] benchmark). *)

(* Raw-string mirror of [Path.split]'s validation, so the scanner never
   discovers a limit violation halfway through a probe: 0 ok, 1 empty path
   (ENOENT), 2 length limit (ENAMETOOLONG).  Tail recursion over ints — no
   refs, no closures (no flambda to unbox them). *)
let rec component_end s len j =
  if j < len && String.unsafe_get s j <> '/' then component_end s len (j + 1) else j

let rec skip_slashes s len i =
  if i < len && String.unsafe_get s i = '/' then skip_slashes s len (i + 1) else i

let rec validate_components path len i =
  if i >= len then 0
  else begin
    let j = component_end path len i in
    if j - i > Path.max_name then 2 else validate_components path len (j + 1)
  end

let validate_raw path =
  let len = String.length path in
  if len = 0 then 1 else if len > Path.max_path then 2 else validate_components path len 0

(* Dot-dot sub-probe against the running in-place state.  Allocates a
   [path_ref] for the prefix hop: paths with ".." are not part of the
   zero-allocation guarantee (they were never constant-time either). *)
let probe_prefix_buf t dlht pcc sc =
  Signature.finalize_into t.key sc.ms sc.sbuf;
  record_chain sc dlht (Signature.buf_bucket sc.sbuf);
  match Dlht.find_buf dlht ~key:t.key sc.sbuf with
  | None -> raise Fall_back
  | Some literal ->
    let real = real_of literal in
    record_dentry t sc literal;
    if not (real == literal) then record_dentry t sc real;
    validate t pcc literal real;
    if not (dentry_is_dir real) then raise Fall_back;
    (match real.d_mnt with Some mnt -> { mnt; dentry = real } | None -> raise Fall_back)

(* --- prefix-resumed miss handling (§3.5) ---

   The in-place scanner records a hash-state snapshot at every component
   boundary, so when the full-path probe misses we can ask, deepest-first,
   whether any proper ancestor prefix is already cached — and either answer
   the lookup from the prefix alone (negative fast-fail) or mark the
   ancestor as the point to resume the slowpath walk from, instead of
   re-walking from the root. *)

(* Negative fast-fail verdict.  Constant constructor — the errno travels in
   [sc.neg_errno] — so raising allocates nothing: a repeatedly probed absent
   name takes this path on every lookup (no negative dentry is populated by
   a fast-fail) and must stay at zero words per op like any other warm
   verdict. *)
exception Neg_fail

(* PCC validation for prefix candidates: [Pcc.probe] is the read-only
   variant — no hit/miss accounting, no stale-entry drop — safe on the
   lockless tier and statistics-neutral for a scan that expects misses. *)
let pcc_probe t pcc d = (not t.simulate_pcc_miss) && Pcc.probe pcc d

(* First real component of [path] at or after [pos], skipping slashes and
   ["."], as a packed [(start lsl 13) lor end] span ([max_path] = 4096 fits
   in 13 bits) — no [String.sub], no option: the fast-fail scan addresses
   the name in place.  [-1] at end of string or on a [".."] — those the
   walk must handle itself. *)
let rec next_component_span path pos =
  let len = String.length path in
  let i = skip_slashes path len pos in
  if i >= len then -1
  else begin
    let j = component_end path len i in
    if j - i = 1 && String.unsafe_get path i = '.' then next_component_span path j
    else if j - i = 2 && String.unsafe_get path i = '.' && String.unsafe_get path (i + 1) = '.'
    then -1
    else (i lsl 13) lor j
  end

(* Deepest-first scan over the recorded boundary snapshots, run at the
   probe's final-miss site (lockless or read-locked).  The first cached
   ancestor found decides:

   - a cached negative: the whole path fails with its errno — return it
     without the write lock or a walk, exactly as a from-root walk would
     fail at that component (fast-fail is only trusted after the same
     seqcount validation as any other lockless verdict);
   - a DIR_COMPLETE positive directory whose next suffix component is not
     in the dcache: definitive ENOENT (§5.1), same no-lock fast-fail;
   - any other PCC-valid positive directory: the resume candidate — its
     slot is left in [sc.resume_slot] for [fallback] to re-validate under
     the write lock, and the probe falls back.

   Candidates that fail PCC validation, are not directories, or carry no
   mount are skipped in favor of shallower ancestors: a shallower resume
   is still correct (the walk rediscovers whatever made the deeper prefix
   unusable — including EACCES on a revoked interior directory, which is
   re-checked per component by the resumed walk itself). *)
(* Top-level recursion (not an inner [let rec] — a closure over seven
   captured variables costs ~10 minor words per miss without flambda; the
   fast-fail verdict must stay at zero). *)
let rec prefix_scan t dlht pcc sc path ~vsnap k =
  if k >= 0 then begin
    let sn = sc.snaps in
    Signature.finalize_snap_into t.key sn k sc.pbuf;
    record_chain sc dlht (Signature.buf_bucket sc.pbuf);
    match Dlht.find_buf dlht ~key:t.key sc.pbuf with
    | None -> prefix_scan t dlht pcc sc path ~vsnap (k - 1)
    | Some literal ->
      let real = real_of literal in
      record_dentry t sc literal;
      if not (real == literal) then record_dentry t sc real;
      if not (pcc_probe t pcc literal && ((real == literal) || pcc_probe t pcc real))
      then prefix_scan t dlht pcc sc path ~vsnap (k - 1)
      else begin
        match literal.d_state with
        | Negative _ when lease_blocks_negative t literal ->
          (* The deciding directory's lease is dead: this cached absence
             cannot fast-fail the path.  A shallower (leased) ancestor may
             still resume or decide it. *)
          prefix_scan t dlht pcc sc path ~vsnap (k - 1)
        | Negative _ when not (Dcache.negative_current literal) ->
          (* A per-mount negative flush outdated this verdict (int compare,
             allocation-free); skip it like any other unusable candidate. *)
          prefix_scan t dlht pcc sc path ~vsnap (k - 1)
        | Negative errno ->
          commit_check t sc vsnap;
          Counter.bump t.c_prefix_negfail;
          Trace.stamp Trace.ev_prefix_negfail (k + 1);
          note_dir Profiler.m_neg literal;
          sc.neg_errno <- errno;
          raise_notrace Neg_fail
        | Positive _ | Partial _ ->
          if dentry_is_dir real && (match real.d_mnt with Some _ -> true | None -> false)
          then begin
            (* A DIR_COMPLETE absence verdict needs the directory's own
               lease live (§3.7); a dead lease only forfeits the fast-fail
               — the directory still serves as a resume candidate, since
               the resumed walk revalidates at the server. *)
            (if Dcache.is_complete t.dcache real && not (lease_blocks_dir t real) then begin
               (* Completeness and child-presence are guarded by the
                  directory's own-id stripe, not its parent's. *)
               record_dir t sc real;
               let span = next_component_span path (Signature.snaps_cursor sn k) in
               if span >= 0 then begin
                 let pos = span lsr 13 in
                 let len = (span land 0x1fff) - pos in
                 if not (Dcache.contains_child t.dcache real path ~pos ~len) then begin
                   commit_check t sc vsnap;
                   Counter.bump t.c_prefix_negfail;
                   Trace.stamp Trace.ev_prefix_negfail (k + 1);
                   if !Profiler.armed then
                     Profiler.hh_record real.d_id real.d_name Profiler.m_neg;
                   sc.neg_errno <- Errno.ENOENT;
                   (* §5.2 promotion: remember the deciding directory and
                      the absent component so the miss handler can publish
                      a deep negative dentry for it (the one allocation —
                      the [Some] — happens only on a promotable verdict;
                      once promoted, later probes are warm negative hits
                      and never reach this point). *)
                   if (config t).Config.deep_negative then begin
                     sc.promote_dir <- Some real;
                     sc.promote_pos <- pos;
                     sc.promote_len <- len
                   end;
                   raise_notrace Neg_fail
                 end
               end
             end);
            sc.resume_slot <- k
          end
          else prefix_scan t dlht pcc sc path ~vsnap (k - 1)
      end
  end

let prefix_miss t dlht pcc sc path ~vsnap =
  if (config t).Config.prefix_resume then
    (* Slot [n-1] is the full path — the probe that just missed. *)
    prefix_scan t dlht pcc sc path ~vsnap (Signature.snaps_count sc.snaps - 2);
  raise Fall_back

(* Scan-and-hash driver for the in-place probe.  On a ".." (Linux
   semantics): sub-probe the prefix walked so far, step up, resume hashing
   from the parent's cached state (§4.2).  Top-level recursion, not a loop
   over refs, for the usual no-flambda reason.  Every fed component leaves
   a boundary snapshot in [sc.snaps] for the miss handler — including
   across ".." hops: post-resume states are still canonical-prefix states
   and their cursors still delimit the remaining suffix, so resuming from
   any recorded slot replays exactly what a from-scratch walk would do. *)
let rec scan_and_hash t ctx dlht pcc sc path pos vsnap =
  let rc =
    Signature.hash_path_into_rec t.key sc.ms sc.snaps ~max_name:Path.max_name path ~pos
  in
  if rc = Signature.scan_done then ()
  else if rc = Signature.scan_toolong then raise Fall_back (* pre-validated; defensive *)
  else begin
    Counter.bump t.c_dotdot;
    let prefix = probe_prefix_buf t dlht pcc sc in
    let up = fast_dotdot ctx prefix in
    Signature.mstate_resume sc.ms (hstate_of t vsnap up);
    scan_and_hash t ctx dlht pcc sc path rc vsnap
  end

(* [vsnap >= 0]: optimistic mode — no lock held, [vsnap] is the write-
   sequence snapshot to validate against at every commit point (just before
   an error, a success, or [within] — which has caller side effects and
   must run at most once on state that provably raced no writer).
   [vsnap < 0]: the read lock is held, no validation needed. *)
let probe_into t ctx ~(start : path_ref) ~(flags : Walk.flags) sc path ~within ~vsnap =
  let dlht = dlht_for t ctx vsnap in
  let pcc = pcc_for t ctx vsnap in
  let absolute = Path.is_absolute path in
  let trailing_slash = Path.has_trailing_slash path in
  let t0 = Phases.stamp () in
  let base = if absolute then ctx.Walk.root else start in
  (* Prefix-resume bookkeeping: the invalidation counter must be read
     before any cached state (hash states, table entries) is consumed, so
     that an unchanged counter at resume time proves the snapshots raced no
     shootdown (§3.2, §3.5).  Plain int/pointer stores — no allocation. *)
  sc.snap_path <- path;
  sc.snap_inval <- Dcache.invalidation_counter t.dcache;
  sc.resume_slot <- -1;
  sc.stripe_n <- 0;
  sc.promote_dir <- None;
  sc.hh_id <- -1;
  Signature.snaps_reset sc.snaps;
  Signature.mstate_resume sc.ms (hstate_of t vsnap base);
  Phases.record_span Phases.Init t0;
  let t1 = Phases.stamp () in
  scan_and_hash t ctx dlht pcc sc path 0 vsnap;
  Signature.finalize_into t.key sc.ms sc.sbuf;
  Phases.record_span Phases.Scan_hash t1;
  let t2 = Phases.stamp () in
  record_chain sc dlht (Signature.buf_bucket sc.sbuf);
  let literal =
    match Dlht.find_buf dlht ~key:t.key sc.sbuf with
    | Some d -> d
    | None ->
      commit_check t sc vsnap;
      Trace.bump_cause Trace.cause_cold;
      (* Genuine miss: scan the boundary snapshots for the longest cached
         ancestor — fast-fail from the prefix or mark the resume point —
         then fall back (§3.5).  Never returns. *)
      prefix_miss t dlht pcc sc path ~vsnap
  in
  Phases.record_span Phases.Table_lookup t2;
  let t3 = Phases.stamp () in
  let shallow_real = real_of literal in
  record_dentry t sc literal;
  if not (shallow_real == literal) then record_dentry t sc shallow_real;
  (* Stash the verdict's deciding directory for retry attribution (§3.8):
     a seqcount retry aborts the probe before any per-directory metric is
     charged, so the retry handler needs the candidate remembered here. *)
  if !Profiler.armed then begin
    match literal.d_parent with
    | Some p ->
      sc.hh_id <- p.d_id;
      sc.hh_name <- p.d_name
    | None ->
      sc.hh_id <- literal.d_id;
      sc.hh_name <- literal.d_name
  end;
  validate t pcc literal shallow_real;
  Phases.record_span Phases.Permission t3;
  let t4 = Phases.stamp () in
  let at_root = at_ns_root ctx in
  let result =
    match literal.d_state with
    | Negative errno ->
      if lease_blocks_negative t literal then raise Fall_back;
      if not (Dcache.negative_current literal) then raise Fall_back;
      commit_check t sc vsnap;
      Counter.bump t.c_neg;
      Trace.stamp Trace.ev_fast_neg 0;
      note_dir Profiler.m_neg literal;
      Errno.to_error errno
    | Positive _ | Partial _ -> (
      let final =
        chase t dlht pcc sc ~follow_last:flags.Walk.follow_last ~at_ns_root:at_root
          literal 8
      in
      match final.d_state with
      | Negative errno ->
        if lease_blocks_negative t final then raise Fall_back;
        if not (Dcache.negative_current final) then raise Fall_back;
        commit_check t sc vsnap;
        Counter.bump t.c_neg;
        Trace.stamp Trace.ev_fast_neg 0;
        note_dir Profiler.m_neg final;
        Errno.to_error errno
      | Partial _ -> raise Fall_back
      | Positive _ ->
        if (flags.Walk.must_dir || trailing_slash) && not (dentry_is_dir final) then begin
          gate_positive t final;
          commit_check t sc vsnap;
          Errno.to_error Errno.ENOTDIR
        end
        else begin
          match final.d_mnt with
          | None -> raise Fall_back
          | Some mnt ->
            gate_positive t final;
            commit_check t sc vsnap;
            final.d_last_used <- Dcache.new_tick t.dcache;
            note_dir Profiler.m_hit final;
            within mnt final
        end)
  in
  Phases.record_span Phases.Finalize t4;
  result

(* --- population (§3.1, §3.2) --- *)

(* Canonical signature of a symlink's target path: absolute targets resolve
   from the namespace root, relative targets from the link's own directory.
   Targets containing "." or ".." are left to the slowpath. *)
let target_signature t (r : path_ref) d inode =
  (* Only links whose body a previous (followed) resolution already read:
     population must never trigger file system calls of its own. *)
  match Vfs.Inode.cached_symlink_target inode with
  | None -> None
  | Some target -> (
    match Path.split target with
    | Error _ -> None
    | Ok comps ->
      let plain =
        List.for_all (function Path.Name _ -> true | Path.Cur | Path.Up -> false) comps
      in
      if not plain then None
      else begin
        let base =
          if Path.is_absolute target then ensure_hstate t (Vfs.Mount.root r.mnt.mnt_ns)
          else begin
            match d.d_parent with
            | Some parent -> ensure_hstate t { r with dentry = parent }
            | None -> Signature.empty_state
          end
        in
        let state =
          List.fold_left
            (fun st comp ->
              match comp with
              | Path.Name name ->
                Signature.feed_string t.key (Signature.feed_char t.key st '/') name
              | Path.Cur | Path.Up -> st)
            base comps
        in
        Some (Signature.finalize t.key state)
      end)

let populate ?(exclusive = false) t ctx ~visited ~absolute ~start =
  match visited with
  | [] -> ()
  | _ :: _ ->
    let ns = ctx.Walk.ns in
    let dlht = dlht_of t ctx in
    let pcc = pcc_of t ctx in
    (* Directory-reference rule (§3.2): results of a relative walk may rely
       on an open directory reference whose ancestors are no longer
       searchable; only cache prefix checks when the starting directory's
       own prefix check is still known-good. *)
    let allow_pcc =
      absolute || pcc_valid t pcc (real_of start.dentry)
    in
    List.iter
      (fun (r : path_ref) ->
        let d = r.dentry in
        (* Dentries of a revalidating (stateless network) file system can
           never be trusted without a server round trip, so they are not
           published for direct lookup at all (§4.3).  A {e leased}
           (stateful) file system also revalidates — but only as its
           lease-recovery path: its dentries are published, and the probe's
           lease gate decides per hit whether the lockless verdict stands
           (§3.7). *)
        if
          d.d_sb.sb_fs.Dcache_fs.Fs_intf.revalidate <> None
          && d.d_sb.sb_fs.Dcache_fs.Fs_intf.lease_check = None
        then ()
        else begin
        (* Mount aliases (§4.3): a dentry is indexed under one path at a
           time; reaching it under a different mount re-signatures it and
           bumps its version in case the alias prefixes differ. *)
        (match d.d_mnt with
        | Some m when not (m == r.mnt) ->
          Dlht.remove d;
          d.d_hstate <- None;
          d.d_sig <- None;
          d.d_mnt <- Some r.mnt;
          Dcache.bump_seq d;
          Counter.incr (counters t) "mount_alias_resignature"
        | Some _ | None -> ());
        let state = ensure_hstate t r in
        let signature =
          match d.d_sig with
          | Some s -> s
          | None ->
            let s = Signature.finalize t.key state in
            d.d_sig <- Some s;
            s
        in
        d.d_mnt <- Some r.mnt;
        (* The dentries an alias redirects to must carry a mount and a PCC
           entry too, or the probe could never finish on them. *)
        let publish_target target =
          if target.d_mnt = None then target.d_mnt <- Some r.mnt;
          if allow_pcc && not t.simulate_pcc_miss then Pcc.insert pcc target
        in
        (match d.d_alias with Some real -> publish_target real | None -> ());
        (* Symlink dentries carry the signature of their target path so the
           probe can follow a trailing link (§4.2). *)
        (match (d.d_target_sig, d.d_state) with
        | None, Positive inode
          when File_kind.equal (Vfs.Inode.kind inode) File_kind.Symlink ->
          d.d_target_sig <- target_signature t r d inode
        | _ -> ());
        if not (d.d_dlht_ns == Some ns && d.d_sig = Some signature) then begin
          (* §3.9: a batched (grouped) populate runs under the exclusive
             write lock and skips the per-splice stripe lock — the lock
             already excludes every sharded section, and lockless probes
             validate the global write sequence it bumps. *)
          if exclusive then Dlht.insert_exclusive dlht ns d signature
          else Dlht.insert dlht ns d signature
        end;
        if allow_pcc && not t.simulate_pcc_miss then Pcc.insert pcc d
        end)
      visited;
    Counter.add (counters t) "fastpath_populated" (List.length visited);
    (* Sharded mode defers DLHT migration/growth out of the per-splice path
       (a stripe section must stay within its stripe); this write-locked
       populate is where the table catches up. *)
    if Dcache.sharded t.dcache then Dlht.housekeep dlht

(* Publish the deep negative dentry a DIR_COMPLETE fast-fail verdict
   promised (§5.2): the fast-fail answered ENOENT from the completeness of
   a cached directory, so the absent child's name can be cached as a
   negative dentry — and signed into the DLHT — turning every later lookup
   of that path into a warm negative hit instead of a prefix scan.  The
   verdict was an unlocked snapshot; everything it relied on is
   re-established under the write lock before anything is published (a
   complete directory with no cached child of the name definitively has no
   such child, §5.1).  Never called with a lock held. *)
let promote_negfail_in t ctx dir name =
  if
    dir.d_hashed && dentry_is_dir dir
    && Dcache.is_complete t.dcache dir
    && Dcache.lookup t.dcache dir name = None
  then begin
    match Dcache.add_child t.dcache dir name (Negative Errno.ENOENT) with
    | Error _ -> ()
    | Ok child -> (
      Counter.bump t.c_negfail_promoted;
      (* Sign and publish for direct lookup when the parent's own
         canonical state is available; otherwise the plain negative
         dentry still serves walks and later fast-fails. *)
      match (dir.d_hstate, dir.d_mnt) with
      | Some state, Some mnt ->
        let st =
          Signature.feed_string t.key (Signature.feed_char t.key state '/') name
        in
        let s = Signature.finalize t.key st in
        child.d_hstate <- Some st;
        child.d_sig <- Some s;
        child.d_mnt <- Some mnt;
        (match Dlht.of_namespace_opt ctx.Walk.ns with
        | Some dlht -> Dlht.insert dlht ctx.Walk.ns child s
        | None -> ())
      | _ -> ())
  end

(* [locked]: the caller (a batched phase-2 section, §3.9) already holds
   the write lock; otherwise it is taken here, per the historical
   contract above. *)
let promote_negfail_at t ctx sc path ~locked =
  match sc.promote_dir with
  | None -> ()
  | Some dir ->
    sc.promote_dir <- None;
    let pos = sc.promote_pos and len = sc.promote_len in
    if sc.snap_path == path && pos >= 0 && len > 0 && pos + len <= String.length path
    then begin
      let name = String.sub path pos len in
      if locked then promote_negfail_in t ctx dir name
      else Dcache.with_write t.dcache (fun () -> promote_negfail_in t ctx dir name)
    end

let promote_negfail t ctx sc path = promote_negfail_at t ctx sc path ~locked:false

(* --- the public lookup --- *)

(* Re-derive and re-validate the probe's resume candidate under the write
   lock (§3.5).  The lockless scan only *suggested* a slot; everything it
   read is re-checked here where it is authoritative: the ancestor must
   still be in the DLHT under the snapshot's signature, PCC-valid for this
   cred, a positive directory with a mount — and, before any of that is
   even consulted, the global invalidation counter must equal the value
   snapshotted before the probe consumed any cached state.  A rename or
   chmod between snapshot and resume bumps that counter (§3.2), forcing
   the from-scratch walk; a revoked search permission *above* the ancestor
   bumps the ancestor's seq, so the PCC re-check fails; a revoked
   permission on the ancestor itself (or below) is re-checked per
   component by the resumed walk.  Revocation can therefore never be
   walked past. *)
let resume_plan t ctx sc path =
  if (not (config t).Config.prefix_resume)
     || sc.resume_slot < 0
     || not (sc.snap_path == path)
  then None
  else if Dcache.invalidation_counter t.dcache <> sc.snap_inval then begin
    Counter.bump t.c_prefix_stale;
    None
  end
  else begin
    let k = sc.resume_slot in
    Signature.finalize_snap_into t.key sc.snaps k sc.pbuf;
    let dlht = dlht_of t ctx in
    let pcc = pcc_of t ctx in
    match Dlht.find_buf dlht ~key:t.key sc.pbuf with
    | None ->
      Counter.bump t.c_prefix_stale;
      None
    | Some literal -> (
      let real = real_of literal in
      if
        not
          (pcc_valid t pcc literal
          && ((real == literal) || pcc_valid t pcc real)
          && dentry_is_dir real)
      then begin
        Counter.bump t.c_prefix_stale;
        None
      end
      else begin
        match real.d_mnt with
        | None ->
          Counter.bump t.c_prefix_stale;
          None
        | Some mnt ->
          let ancestor = Vfs.Mount.traverse_mounts { mnt; dentry = real } in
          let cursor = Signature.snaps_cursor sc.snaps k in
          let suffix = String.sub path cursor (String.length path - cursor) in
          Some (ancestor, k + 1, suffix)
      end)
  end

(* Slowpath fallback: resolve with collection under the write lock and
   repopulate the DLHT/PCC.  When the probe left a validated resume
   candidate, only the uncached suffix is walked — from the longest cached
   ancestor — so a deep miss costs O(suffix), not O(depth) (§3.5).  §3.2:
   results may only repopulate if no shootdown ran concurrently; under the
   coarse write lock the counter check never fires, but it documents (and
   preserves) the protocol. *)
(* The write-locked body, shared by the sequential [fallback] below and
   the batched phase-2 group loop (§3.9).  [exclusive] threads to
   {!populate}: a batched caller publishes through the stripe-free DLHT
   insert, since its write lock covers the whole group. *)
let fallback_walk t ctx ~flags ~absolute ~start ~plan ~exclusive path ~within =
  let invalidation_before = Dcache.invalidation_counter t.dcache in
  let result, pop_start, pop_absolute =
    match plan with
    | Some (ancestor, depth, suffix) ->
      Counter.bump t.c_prefix_resume;
      Trace.stamp Trace.ev_prefix_resume depth;
      Trace.record_resume_depth depth;
      (* The resumed walk still collects, so the suffix prefixes are
         published and the next miss lands one component deeper. *)
      let r =
        Walk.resolve_resumed t.dcache ctx
          ~flags:{ flags with Walk.collect = true }
          ~start_at:ancestor suffix
      in
      (r, ancestor, false)
    | None ->
      let r =
        Walk.resolve_in_mode Walk.Ref t.dcache ctx
          ~flags:{ flags with Walk.collect = true }
          path
      in
      (r, start, absolute)
  in
  (* §3.2 extended to I/O failures: a walk that died on a transient
     EIO says nothing trustworthy about the tree — the visited prefix
     may describe state the device no longer backs — so publish
     nothing and let a later, healthy walk repopulate. *)
  (match result.Walk.outcome with
  | Error Errno.EIO -> Counter.incr (Dcache.counters t.dcache) "fastpath_eio_no_populate"
  | Ok _ | Error _ ->
    if Dcache.invalidation_counter t.dcache = invalidation_before then
      populate ~exclusive t ctx ~visited:result.Walk.visited ~absolute:pop_absolute
        ~start:pop_start);
  match result.Walk.outcome with
  | Ok r -> within r.mnt r.dentry
  | Error e -> Error e

let fallback t ctx ~flags ~absolute ~start ?sc path ~within =
  Counter.bump t.c_fallback;
  Trace.stamp Trace.ev_fallback 0;
  Dcache.with_write t.dcache (fun () ->
      let plan = match sc with Some sc -> resume_plan t ctx sc path | None -> None in
      fallback_walk t ctx ~flags ~absolute ~start ~plan ~exclusive:false path ~within)

(* One deferred miss of a batched submission, under the write lock the
   whole group shares (§3.9).  Beyond [fallback_walk] it adds the grouped
   shortcut: when the resume candidate's uncached suffix is a single
   plain component — the dominant shape once the group's first miss has
   walked and populated the shared prefix — the full resumed walk
   collapses to {!Walk.resume_sibling}: one permission check and one
   probe-or-fill, no [walk_internal], no per-component accounting.  The
   single-component test requires the span to end exactly at the suffix
   end, so shapes like "leaf/." (which constrain the leaf's kind) still
   take the full walk. *)
let fallback_grouped t ctx ~flags ~absolute ~start ~sc path ~within =
  let plan = resume_plan t ctx sc path in
  match plan with
  | Some (ancestor, depth, suffix)
    when (not flags.Walk.must_dir) && not (Path.has_trailing_slash path) -> (
    let span = next_component_span suffix 0 in
    if span < 0 || span land 0x1fff <> String.length suffix then
      fallback_walk t ctx ~flags ~absolute ~start ~plan ~exclusive:true path ~within
    else begin
      let pos = span lsr 13 in
      let name = String.sub suffix pos ((span land 0x1fff) - pos) in
      let invalidation_before = Dcache.invalidation_counter t.dcache in
      match
        Walk.resume_sibling t.dcache ctx ~start_at:ancestor
          ~follow:flags.Walk.follow_last name
      with
      | `Bail ->
        (* Trailing symlink to follow: splicing is the walk's business. *)
        fallback_walk t ctx ~flags ~absolute ~start ~plan ~exclusive:true path ~within
      | `Err e ->
        Counter.bump t.c_prefix_resume;
        Trace.stamp Trace.ev_prefix_resume depth;
        Trace.record_resume_depth depth;
        Error e
      | `Neg (child, errno) ->
        Counter.bump t.c_prefix_resume;
        Trace.stamp Trace.ev_prefix_resume depth;
        Trace.record_resume_depth depth;
        if Dcache.invalidation_counter t.dcache = invalidation_before then
          populate ~exclusive:true t ctx
            ~visited:[ { ancestor with dentry = child } ]
            ~absolute:false ~start:ancestor;
        Error errno
      | `Child cref ->
        Counter.bump t.c_prefix_resume;
        Trace.stamp Trace.ev_prefix_resume depth;
        Trace.record_resume_depth depth;
        if Dcache.invalidation_counter t.dcache = invalidation_before then
          populate ~exclusive:true t ctx ~visited:[ cref ] ~absolute:false
            ~start:ancestor;
        within cref.mnt cref.dentry
    end)
  | plan -> fallback_walk t ctx ~flags ~absolute ~start ~plan ~exclusive:true path ~within

(* Second tier of the retry discipline: the optimistic probe failed its
   seqcount validation, so probe again under the read lock, where writers
   are excluded and no validation is needed.  Top-level (not a local
   closure in [lookup_into_raw]): the warm path must not allocate an
   environment for a function it calls only on retry. *)
let probe_locked t ctx ~start ~flags sc path ~within =
  Counter.bump t.c_locked_probe;
  let lock = Dcache.lock t.dcache in
  Rwlock.read_lock lock;
  match probe_into t ctx ~start ~flags sc path ~within ~vsnap:(-1) with
  | result ->
    Rwlock.read_unlock lock;
    Counter.bump t.c_hit;
    Trace.stamp Trace.ev_fast_hit 0;
    result
  | exception Fall_back ->
    Rwlock.read_unlock lock;
    fallback t { ctx with Walk.cwd = start } ~flags ~absolute:(Path.is_absolute path) ~start
      ~sc path ~within
  | exception Neg_fail ->
    (* Prefix fast-fail (§3.5): answered from a cached ancestor, no walk,
       no write lock (promotion, if any, takes it after the unlock). *)
    Rwlock.read_unlock lock;
    promote_negfail t ctx sc path;
    Errno.to_error sc.neg_errno
  | exception e ->
    Rwlock.read_unlock lock;
    raise e

(* Attribute a lockless retry: if the namespace's DLHT is mid-resize, the
   write section we raced was (at least plausibly) the migration.  §3.8:
   also charge the retry to the raced probe's deciding directory when the
   probe got far enough to stash one. *)
let note_lockless_retry t ctx sc =
  Counter.bump t.c_lockless_retry;
  Trace.stamp Trace.ev_lockless_retry 0;
  if !Profiler.armed && sc.hh_id >= 0 then
    Profiler.hh_record sc.hh_id sc.hh_name Profiler.m_retry;
  match Dlht.of_namespace_opt ctx.Walk.ns with
  | Some dlht when Dlht.resizing dlht -> Trace.bump_cause Trace.cause_resize_retry
  | Some _ | None -> Trace.bump_cause Trace.cause_seqcount_retry

(* --- sharded-mode retry discipline ---

   Sharded writers hold the {e read} side of the dcache lock, so tier 2's
   read-locked re-probe would exclude nothing: a probe that raced a stripe
   write under the read lock would race it again.  Instead the optimistic
   probe itself is retried a bounded number of times — a raced stripe
   section is a few dozen instructions, so the race is gone almost
   immediately — and only then does the lookup escalate to the
   write-locked slowpath, which excludes sharded sections wholesale. *)
let max_sharded_attempts = 8

let rec probe_sharded t ctx ~start ~flags sc path ~within ~attempt =
  let seq = Dcache.write_seq t.dcache in
  let snap = Seqcount.read_begin seq in
  if snap land 1 <> 0 then retry_sharded t ctx ~start ~flags sc path ~within ~attempt
  else begin
    match probe_into t ctx ~start ~flags sc path ~within ~vsnap:snap with
    | result ->
      Counter.bump t.c_hit;
      Trace.stamp Trace.ev_fast_hit 0;
      result
    | exception Neg_fail ->
      promote_negfail t ctx sc path;
      Errno.to_error sc.neg_errno
    | exception Seq_retry ->
      note_lockless_retry t ctx sc;
      retry_sharded t ctx ~start ~flags sc path ~within ~attempt
    | exception Fall_back ->
      if Seqcount.read_validate seq snap && stripes_ok sc then
        fallback t { ctx with Walk.cwd = start } ~flags ~absolute:(Path.is_absolute path)
          ~start ~sc path ~within
      else begin
        note_lockless_retry t ctx sc;
        retry_sharded t ctx ~start ~flags sc path ~within ~attempt
      end
  end

and retry_sharded t ctx ~start ~flags sc path ~within ~attempt =
  if attempt + 1 >= max_sharded_attempts then begin
    (* Retries exhausted (writer storm on these stripes): resolve
       authoritatively under the write lock.  The scratch resume state is
       re-validated there before use, so passing it is safe even after a
       raced probe. *)
    Counter.bump t.c_locked_probe;
    fallback t { ctx with Walk.cwd = start } ~flags ~absolute:(Path.is_absolute path)
      ~start ~sc path ~within
  end
  else begin
    Domain.cpu_relax ();
    probe_sharded t ctx ~start ~flags sc path ~within ~attempt:(attempt + 1)
  end

(* [within] runs on the resolved (mount, dentry) while the lookup is still
   protected (lockless-validated or read-locked on a fastpath hit, write
   side on fallback), so callers can pin dentries or check permissions
   without a race against eviction.  This is the allocation-free entry
   point: on the default configuration a warm DLHT hit builds no
   [path_ref], no closure and no option — the only allocation is whatever
   [within] itself does. *)
let lookup_into_raw t ctx ?start ?(flags = Walk.default_flags) path ~within =
  let cfg = config t in
  let start = match start with Some s -> s | None -> ctx.Walk.cwd in
  let absolute = Path.is_absolute path in
  if not cfg.Config.fastpath then begin
    (* Baseline kernel: component-at-a-time only.  *at()-style lookups
       resolve relative to [start]; the slowpath reads the origin from the
       context's cwd. *)
    let ctx = { ctx with Walk.cwd = start } in
    match
      Dcache.with_read t.dcache (fun () ->
          match (Walk.resolve_in_mode Walk.Rcu t.dcache ctx ~flags path).Walk.outcome with
          | Ok r -> within r.mnt r.dentry
          | Error e -> Error e)
    with
    | result -> result
    | exception Walk.Need_refwalk ->
      Counter.bump t.c_refwalk;
      Trace.bump_cause Trace.cause_seqcount_retry;
      Trace.stamp Trace.ev_refwalk 0;
      Dcache.with_write t.dcache (fun () ->
          match (Walk.resolve_in_mode Walk.Ref t.dcache ctx ~flags path).Walk.outcome with
          | Ok r -> within r.mnt r.dentry
          | Error e -> Error e)
  end
  else if cfg.Config.dotdot = Config.Dotdot_lexical then begin
    (* Lexical mode keeps the list-based probe (it must normalize the
       component list before hashing); allocation discipline only targets
       the default mode. *)
    let attempt =
      Dcache.with_read t.dcache (fun () ->
          match probe t ctx ~start ~flags path with
          | Ok r ->
            Counter.bump t.c_hit;
            Trace.stamp Trace.ev_fast_hit 0;
            Some (within r.mnt r.dentry)
          | Error e ->
            Counter.bump t.c_hit;
            Trace.stamp Trace.ev_fast_hit 0;
            Some (Error e)
          | exception Fall_back -> None
          | exception Errno.Error e -> Some (Error e))
    in
    match attempt with
    | Some outcome -> outcome
    | None -> fallback t { ctx with Walk.cwd = start } ~flags ~absolute ~start path ~within
  end
  else begin
    match validate_raw path with
    | 1 -> Errno.to_error Errno.ENOENT
    | 2 -> Errno.to_error Errno.ENAMETOOLONG
    | _ -> (
      (* Three-tier retry discipline (§3.2, mirroring RCU-walk → ref-walk):
         1. optimistic probe, no lock, validated against the dcache write
            sequence at its commit point;
         2. on validation failure (or a writer already in its section),
            the same probe under the read lock;
         3. on a genuine miss, the slowpath fallback under the write lock.
         A lockless [Fall_back] is only believed — i.e. only triggers the
         expensive slowpath — if the probe's reads were valid; otherwise it
         is retried locked first.

         Sharded mode swaps tier 2 for bounded optimistic retries: the
         read lock no longer excludes (sharded) writers, so re-probing
         under it proves nothing — see [probe_sharded]. *)
      let sc = Domain.DLS.get scratch_key in
      match t.dtab with
      | Some _ -> probe_sharded t ctx ~start ~flags sc path ~within ~attempt:0
      | None -> (
        let seq = Dcache.write_seq t.dcache in
        let snap = Seqcount.read_begin seq in
        if snap land 1 <> 0 then probe_locked t ctx ~start ~flags sc path ~within
        else begin
          match probe_into t ctx ~start ~flags sc path ~within ~vsnap:snap with
          | result ->
            Counter.bump t.c_hit;
            Trace.stamp Trace.ev_fast_hit 0;
            result
          | exception Seq_retry ->
            note_lockless_retry t ctx sc;
            probe_locked t ctx ~start ~flags sc path ~within
          | exception Neg_fail ->
            (* Prefix fast-fail (§3.5): the verdict passed its seqcount
               validation inside the probe, so it is as good as a hit —
               answered without a lock or a walk. *)
            promote_negfail t ctx sc path;
            Errno.to_error sc.neg_errno
          | exception Fall_back ->
            if Seqcount.read_validate seq snap then
              fallback t { ctx with Walk.cwd = start } ~flags ~absolute ~start ~sc path
                ~within
            else begin
              note_lockless_retry t ctx sc;
              probe_locked t ctx ~start ~flags sc path ~within
            end
        end))
  end

(* Latency attribution (Trace timing mode): every public lookup is timed
   with the monotonic ns clock and recorded into the histogram of its
   outcome class.  Classification works backwards from what is observable
   after the fact: an EIO is its own class (I/O failure, never cached); any
   other error is a negative; a success on a fastpath-less configuration is
   the slowpath; a success that bumped the fallback counter went
   probe-miss-then-slowpath; the rest are fastpath hits (including hits
   served through the lexical probe).  Disarmed, the wrapper is one
   load-and-branch — the warm path stays allocation-free. *)
let lookup_into t ctx ?start ?flags path ~within =
  if not !Trace.timing then lookup_into_raw t ctx ?start ?flags path ~within
  else begin
    let fallbacks_before = Counter.cell_value t.c_fallback in
    let t0 = Clock.monotonic_ns () in
    let result = lookup_into_raw t ctx ?start ?flags path ~within in
    let dt = Clock.monotonic_ns () - t0 in
    let cls =
      match result with
      | Error Errno.EIO -> Trace.cls_eio
      | Error _ -> Trace.cls_negative
      | Ok _ ->
        if not (config t).Config.fastpath then Trace.cls_slowpath
        else if Counter.cell_value t.c_fallback > fallbacks_before then Trace.cls_fallback
        else Trace.cls_fast
    in
    Trace.record_latency cls dt;
    result
  end

let lookup_with t ctx ?start ?flags path ~within =
  lookup_into t ctx ?start ?flags path ~within:(fun mnt dentry -> within { mnt; dentry })

let lookup t ctx ?start ?flags path =
  let absolute = Path.is_absolute path in
  match lookup_into t ctx ?start ?flags path ~within:(fun mnt dentry -> Ok { mnt; dentry }) with
  | Ok r -> { Walk.outcome = Ok r; visited = []; absolute }
  | Error e -> { Walk.outcome = Error e; visited = []; absolute }

(* --- vectored probes (§3.9) ---

   Phase 1 runs every queued op through the lockless probe under ONE
   shared validation window: a single [Seqcount.read_begin] snapshot
   serves the whole run, and each op's commit check validates that shared
   snapshot plus its own recorded stripes.  This is strictly stronger
   than the sequential per-op window — the shared snapshot is older than
   any per-op one would be — so every interleaving accepted here would
   also be accepted by the same ops issued back to back.  A mid-batch
   seqcount bump splits the batch ("fastpath_batch_split"): the op
   re-snapshots and the run continues under the new window, bounded by
   [max_sharded_attempts] consecutive splits per op before the op is
   deferred to phase 2 (writer storm: resolve authoritatively).  Misses
   never walk in phase 1; they collect into [deferred].

   The loop state (windows opened, deferred count, split spins) threads
   through top-level recursions and returns packed as
   [(windows lsl 20) lor ndef] — not a tuple, not refs: phase 1 is part
   of the zero-allocation warm path, asserted per batch by [t_alloc]. *)

let rec batch_run t ctx sc path flags prepare within complete deferred n i ndef windows
    spins =
  if i >= n then (windows lsl 20) lor ndef
  else begin
    let seq = Dcache.write_seq t.dcache in
    let snap = Seqcount.read_begin seq in
    if snap land 1 <> 0 then begin
      (* A writer is mid-section right now; brief by construction. *)
      if spins + 1 >= max_sharded_attempts then begin
        deferred.(ndef) <- i;
        batch_run t ctx sc path flags prepare within complete deferred n (i + 1) (ndef + 1)
          windows 0
      end
      else begin
        Domain.cpu_relax ();
        batch_run t ctx sc path flags prepare within complete deferred n i ndef windows
          (spins + 1)
      end
    end
    else
      batch_window t ctx sc path flags prepare within complete deferred n i ndef
        (windows + 1) spins seq snap
  end

and batch_window t ctx sc path flags prepare within complete deferred n i ndef windows
    spins seq snap =
  if i >= n then (windows lsl 20) lor ndef
  else begin
    prepare i;
    let p = path i in
    let vr = validate_raw p in
    if vr = 1 then begin
      complete i (Errno.to_error Errno.ENOENT);
      batch_window t ctx sc path flags prepare within complete deferred n (i + 1) ndef
        windows 0 seq snap
    end
    else if vr = 2 then begin
      complete i (Errno.to_error Errno.ENAMETOOLONG);
      batch_window t ctx sc path flags prepare within complete deferred n (i + 1) ndef
        windows 0 seq snap
    end
    else begin
      match probe_into t ctx ~start:ctx.Walk.cwd ~flags:(flags i) sc p ~within ~vsnap:snap with
      | r ->
        Counter.bump t.c_hit;
        Trace.stamp Trace.ev_fast_hit 0;
        complete i r;
        batch_window t ctx sc path flags prepare within complete deferred n (i + 1) ndef
          windows 0 seq snap
      | exception Neg_fail ->
        (* A promotable verdict takes the write lock to publish the deep
           negative, which bumps the sequence this window snapshotted:
           reopen the window (not counted as a split — self-inflicted). *)
        let reopen = match sc.promote_dir with Some _ -> true | None -> false in
        promote_negfail t ctx sc p;
        complete i (Errno.to_error sc.neg_errno);
        if reopen then
          batch_run t ctx sc path flags prepare within complete deferred n (i + 1) ndef
            windows 0
        else
          batch_window t ctx sc path flags prepare within complete deferred n (i + 1) ndef
            windows 0 seq snap
      | exception Seq_retry ->
        batch_split t ctx sc path flags prepare within complete deferred n i ndef windows
          spins
      | exception Fall_back ->
        if Seqcount.read_validate seq snap && stripes_ok sc then begin
          (* A believed miss: defer, keep the window — the probe mutated
             nothing, and later ops validate against the same snapshot. *)
          deferred.(ndef) <- i;
          batch_window t ctx sc path flags prepare within complete deferred n (i + 1)
            (ndef + 1) windows 0 seq snap
        end
        else
          batch_split t ctx sc path flags prepare within complete deferred n i ndef
            windows spins
    end
  end

and batch_split t ctx sc path flags prepare within complete deferred n i ndef windows
    spins =
  note_lockless_retry t ctx sc;
  Counter.incr (counters t) "fastpath_batch_split";
  Trace.stamp Trace.ev_batch_split i;
  if spins + 1 >= max_sharded_attempts then begin
    deferred.(ndef) <- i;
    batch_run t ctx sc path flags prepare within complete deferred n (i + 1) (ndef + 1)
      windows 0
  end
  else begin
    Domain.cpu_relax ();
    batch_run t ctx sc path flags prepare within complete deferred n i ndef windows
      (spins + 1)
  end

(* Phase 2: the deferred misses, sorted by path so ops sharing ancestors
   run adjacently — the group's first miss walks (and populates) the
   shared prefix, the rest resume from it, most via the single-step
   {!fallback_grouped} shortcut — under ONE write-lock acquisition and
   with stripe-free (exclusive) DLHT populates for the whole group.
   Misses allocate anyway (walks build lists); no packing games here. *)
let batch_slowpath t ctx sc path flags prepare within complete deferred ndef =
  (* Insertion sort of the index slice: batches are small, and adjacency
     by path prefix is all the grouping needs. *)
  for k = 1 to ndef - 1 do
    let v = deferred.(k) in
    let pv = path v in
    let j = ref (k - 1) in
    while !j >= 0 && String.compare (path deferred.(!j)) pv > 0 do
      deferred.(!j + 1) <- deferred.(!j);
      decr j
    done;
    deferred.(!j + 1) <- v
  done;
  Counter.add (counters t) "fastpath_batch_deferred" ndef;
  Dcache.with_write t.dcache (fun () ->
      for k = 0 to ndef - 1 do
        let i = deferred.(k) in
        prepare i;
        let p = path i in
        let fl = flags i in
        let r =
          match probe_into t ctx ~start:ctx.Walk.cwd ~flags:fl sc p ~within ~vsnap:(-1) with
          | r ->
            (* An earlier miss in the group already populated this path. *)
            Counter.bump t.c_hit;
            Trace.stamp Trace.ev_fast_hit 0;
            r
          | exception Neg_fail ->
            promote_negfail_at t ctx sc p ~locked:true;
            Errno.to_error sc.neg_errno
          | exception Fall_back ->
            Counter.bump t.c_fallback;
            Trace.stamp Trace.ev_fallback 0;
            fallback_grouped t ctx ~flags:fl ~absolute:(Path.is_absolute p)
              ~start:ctx.Walk.cwd ~sc p ~within
          | exception Seq_retry ->
            (* Stripe-recording overflow on an absurdly deep path (no
               concurrent stripe section can be live under the write
               lock): resolve by walking, as the sequential tiers
               ultimately would. *)
            Counter.bump t.c_fallback;
            Trace.stamp Trace.ev_fallback 0;
            fallback_grouped t ctx ~flags:fl ~absolute:(Path.is_absolute p)
              ~start:ctx.Walk.cwd ~sc p ~within
        in
        complete i r
      done)

(* The public batched entry (§3.9).  [path]/[flags]/[prepare]/[complete]
   are indexed accessors the caller allocates once per ring — not per
   submit — and [deferred] is caller-owned scratch of length >= [n]; ops
   resolve relative to the context's cwd, like the sequential default.
   Baseline and lexical configurations degrade to per-op sequential
   lookups so the API is uniformly available.  Reports span/window
   amortization to {!Profiler.note_batch}. *)
let probe_batch t ctx ~n ~path ~flags ~prepare ~within ~complete ~deferred =
  let cfg = config t in
  if (not cfg.Config.fastpath) || cfg.Config.dotdot = Config.Dotdot_lexical then begin
    for i = 0 to n - 1 do
      prepare i;
      complete i (lookup_into_raw t ctx ~flags:(flags i) (path i) ~within)
    done;
    Profiler.note_batch ~ops:n ~windows:n
  end
  else begin
    let sc = Domain.DLS.get scratch_key in
    let packed = batch_run t ctx sc path flags prepare within complete deferred n 0 0 0 0 in
    let windows = packed lsr 20 in
    let ndef = packed land 0xfffff in
    if ndef > 0 then batch_slowpath t ctx sc path flags prepare within complete deferred ndef;
    Profiler.note_batch ~ops:n ~windows
  end
