(** Prefix Check Cache (paper §3.1, Fig. 5).

    Memoizes the result of {e passed} prefix (search-permission) checks per
    credential: an entry is a (dentry identity, dentry version) pair meaning
    "a process with these credentials completed a permission-checked walk to
    this dentry when its version counter was [seq]".  A probe hits only if
    the dentry's current version still matches, so any chmod/chown/rename of
    an ancestor (which bumps descendants' versions, §3.2) invalidates
    entries implicitly, without touching each PCC.

    Misses are {e not} cached: a miss means either "denied" or "not checked
    recently" and simply forces the slowpath (§3.1).

    The cache is a 4-way set-associative array of packed (id, seq) words
    with per-set rotating replacement — an LRU approximation.  Packed
    single-word entries make unsynchronized readers safe: a torn update can
    only produce a mismatch, never a false hit. *)

open Dcache_vfs.Types

type t

val create : ?max_entries:int -> entries:int -> unit -> t
(** [entries] is rounded up to a power of two, minimum 16.  The paper's
    64 KB PCC corresponds to 4096 entries.  When [max_entries] exceeds
    [entries], the cache grows dynamically: the paper leaves the resize
    policy as future work (§6.3); ours doubles the table whenever capacity
    replacement has evicted more than a quarter of the cache since the
    last growth. *)

val capacity : t -> int
val grows : t -> int
(** Number of dynamic growth steps performed. *)

val check : t -> dentry -> bool
(** True iff a valid (current-version) entry for [dentry] is present;
    refreshes its recency. *)

val probe : t -> dentry -> bool
(** Read-only variant of {!check} for prefix validation (§3.5): same
    answer, but no hit/miss accounting and no stale-entry eviction, so it
    is safe on the lockless tier and does not skew statistics when a miss
    scan probes many absent ancestors.  Allocation-free. *)

val insert : t -> dentry -> unit
(** Record a passed prefix check at the dentry's current version. *)

val invalidate_all : t -> unit

val of_cred : ?max_entries:int -> Dcache_cred.Cred.t -> namespace -> entries:int -> t
(** The PCC shared by all processes holding this credential {e in this
    mount namespace} (§4.1, §4.3); created on first use and stored in the
    credential's security slot. *)

val of_cred_exn : Dcache_cred.Cred.t -> namespace -> t
(** Like {!of_cred} but never creates and never allocates; raises
    [Not_found] when this credential has no PCC for the namespace yet.
    The lockless fastpath uses it because creation is a mutation that
    belongs under the lock. *)

val hits : t -> int
val misses : t -> int
