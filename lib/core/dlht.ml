open Dcache_vfs.Types
module Signature = Dcache_sig.Signature
module Trace = Dcache_util.Trace

(* Buckets are intrusive singly-headed doubly-linked chains threaded through
   the dentries themselves ([d_dlht_next] / [d_dlht_prev]): insert and remove
   are O(1) pointer splices with no per-entry cons cells, so table churn
   (renames, mount-alias re-signatures, evictions) never allocates.  The
   chain fields can live on the dentry because a dentry is in at most one
   DLHT at a time (§4.3).

   Invariant relied on by head removal: while a dentry is in the table its
   [d_sig] holds the signature it was inserted under (membership is removed
   before the signature changes — Dcache.detach/shootdown ordering), so the
   owning bucket is always recomputable. *)

type t = {
  buckets : dentry option array;
  mask : int;  (** [Array.length buckets - 1]; length is a power of two *)
  ns : namespace;
  mutable count : int;
}

type ns_ext += Dlht_ext of t

let of_namespace_opt ns =
  match ns.ns_ext with Some (Dlht_ext t) -> Some t | Some _ | None -> None

let of_namespace ~buckets ns =
  match ns.ns_ext with
  | Some (Dlht_ext t) -> t
  | Some _ | None ->
    if buckets <= 0 || buckets land (buckets - 1) <> 0 then
      invalid_arg "Dlht.of_namespace: bucket count must be a positive power of two";
    let t = { buckets = Array.make buckets None; mask = buckets - 1; ns; count = 0 } in
    ns.ns_ext <- Some (Dlht_ext t);
    t

let bucket_of t signature = Signature.bucket signature land t.mask

let remove_from t d =
  let next = d.d_dlht_next in
  let prev = d.d_dlht_prev in
  (match prev with
  | Some p -> p.d_dlht_next <- next
  | None -> (
    (* Head of its bucket: recompute the slot from the signature (stable
       while the dentry is in the table; see invariant above). *)
    match d.d_sig with
    | Some signature -> t.buckets.(bucket_of t signature) <- next
    | None ->
      (* Defensive only — the detach ordering makes this unreachable.  Find
         the slot by identity so [count] stays exact even if the invariant
         is ever broken. *)
      let n = Array.length t.buckets in
      let i = ref 0 in
      let found = ref false in
      while (not !found) && !i < n do
        (match t.buckets.(!i) with
        | Some h when h == d ->
          t.buckets.(!i) <- next;
          found := true
        | _ -> ());
        incr i
      done));
  (match next with Some n -> n.d_dlht_prev <- prev | None -> ());
  d.d_dlht_next <- None;
  d.d_dlht_prev <- None;
  t.count <- t.count - 1

let remove d =
  match d.d_dlht_ns with
  | None -> ()
  | Some ns ->
    (match ns.ns_ext with Some (Dlht_ext t) -> remove_from t d | Some _ | None -> ());
    d.d_dlht_ns <- None;
    Trace.stamp Trace.ev_dlht_remove d.d_id

let insert t ns d signature =
  remove d;
  let idx = bucket_of t signature in
  let head = t.buckets.(idx) in
  let cell = Some d in
  d.d_dlht_next <- head;
  d.d_dlht_prev <- None;
  (match head with Some h -> h.d_dlht_prev <- cell | None -> ());
  t.buckets.(idx) <- cell;
  t.count <- t.count + 1;
  d.d_dlht_ns <- Some ns;
  Trace.stamp Trace.ev_dlht_insert d.d_id

(* Both probes return the chain cell that already holds the match ([Some d as
   cell]) instead of rebuilding it, so a hit allocates nothing.  The chain
   scanners are top-level (not local closures over [key]/[signature]): a
   capturing local function would allocate its closure on every probe. *)

let rec scan_chain key signature cell =
  match cell with
  | None -> None
  | Some d as found -> (
    match d.d_sig with
    | Some s when Signature.equal key s signature -> found
    | Some _ | None -> scan_chain key signature d.d_dlht_next)

let find t ~key signature = scan_chain key signature t.buckets.(bucket_of t signature)

let rec scan_chain_buf key b cell =
  match cell with
  | None -> None
  | Some d as found -> (
    match d.d_sig with
    | Some s when Signature.equal_buf key b s -> found
    | Some _ | None -> scan_chain_buf key b d.d_dlht_next)

let find_buf t ~key b = scan_chain_buf key b t.buckets.(Signature.buf_bucket b land t.mask)

let population t = t.count

type occupancy = {
  occ_entries : int;
  occ_buckets : int;
  occ_used : int;
  occ_longest : int;
}

let rec chain_length acc = function
  | None -> acc
  | Some d -> chain_length (acc + 1) d.d_dlht_next

let occupancy t =
  let entries = ref 0 and used = ref 0 and longest = ref 0 in
  Array.iter
    (fun head ->
      let len = chain_length 0 head in
      if len > 0 then begin
        incr used;
        entries := !entries + len;
        if len > !longest then longest := len
      end)
    t.buckets;
  {
    occ_entries = !entries;
    occ_buckets = Array.length t.buckets;
    occ_used = !used;
    occ_longest = !longest;
  }

let self_check t =
  let problems = ref [] in
  let note fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  let entries = ref 0 in
  Array.iteri
    (fun idx head ->
      (match head with
      | Some h when h.d_dlht_prev <> None ->
        note "bucket %d: head %s has a predecessor" idx h.d_name
      | _ -> ());
      let rec walk prev = function
        | None -> ()
        | Some d ->
          incr entries;
          (match (prev, d.d_dlht_prev) with
          | None, _ -> ()
          | Some p, Some q when q == p -> ()
          | Some _, _ -> note "bucket %d: %s has a broken prev link" idx d.d_name);
          (match d.d_dlht_ns with
          | Some ns when ns == t.ns -> ()
          | _ -> note "bucket %d: %s is chained but not marked as a member" idx d.d_name);
          (match d.d_sig with
          | Some s when bucket_of t s = idx -> ()
          | Some _ -> note "bucket %d: %s is chained in the wrong bucket" idx d.d_name
          | None -> note "bucket %d: %s is chained with no signature" idx d.d_name);
          walk (Some d) d.d_dlht_next
      in
      walk None head)
    t.buckets;
  if !entries <> t.count then
    note "population: counted %d chained entries but count = %d" !entries t.count;
  List.rev !problems

(* --- scrub ---

   Where [self_check] reports inconsistencies, [scrub] removes them: an
   entry whose chain links, membership mark or signature disagree with the
   table must not be served (a probe could return a dentry for the wrong
   path), so it is quarantined — spliced out and stripped of membership.
   The dentry itself stays cached; the slowpath re-resolves and, if the
   dentry is healthy, republishes it. *)

type scrub_report = {
  scrub_scanned : int;
  scrub_quarantined : int;
  scrub_problems : string list;
}

(* Splice [d] out of bucket [idx] by identity: the quarantined entry's
   signature and prev link are exactly what we cannot trust, so re-walk the
   chain from the head instead of using [remove_from]. *)
let unchain t idx d =
  let rec fix prev cell =
    match cell with
    | None -> ()
    | Some x when x == d -> (
      let next = d.d_dlht_next in
      (match prev with
      | None -> t.buckets.(idx) <- next
      | Some p -> p.d_dlht_next <- next);
      match next with Some n -> n.d_dlht_prev <- prev | None -> ())
    | Some x -> fix (Some x) x.d_dlht_next
  in
  fix None t.buckets.(idx);
  d.d_dlht_next <- None;
  d.d_dlht_prev <- None;
  d.d_dlht_ns <- None;
  t.count <- t.count - 1

let scrub t =
  let problems = ref [] in
  let note fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  let scanned = ref 0 in
  let bad = ref [] in
  Array.iteri
    (fun idx head ->
      let rec walk prev = function
        | None -> ()
        | Some d ->
          incr scanned;
          let prev_ok =
            match (prev, d.d_dlht_prev) with
            | None, None -> true
            | Some p, Some q -> q == p
            | None, Some _ | Some _, None -> false
          in
          let member_ok = match d.d_dlht_ns with Some ns -> ns == t.ns | None -> false in
          let sig_ok = match d.d_sig with Some s -> bucket_of t s = idx | None -> false in
          if not (prev_ok && member_ok && sig_ok) then begin
            note "bucket %d: quarantined %s (%s)" idx d.d_name
              (if not sig_ok then "signature/bucket mismatch"
               else if not member_ok then "membership mark"
               else "broken prev link");
            bad := (idx, d) :: !bad
          end;
          walk (Some d) d.d_dlht_next
      in
      walk None head)
    t.buckets;
  List.iter
    (fun (idx, d) ->
      unchain t idx d;
      Trace.bump_cause Trace.cause_quarantined;
      Trace.stamp Trace.ev_quarantine d.d_id)
    !bad;
  {
    scrub_scanned = !scanned;
    scrub_quarantined = List.length !bad;
    scrub_problems = List.rev !problems;
  }
