open Dcache_vfs.Types
module Signature = Dcache_sig.Signature
module Trace = Dcache_util.Trace
module Locktab = Dcache_util.Locktab

(* Buckets are intrusive singly-headed doubly-linked chains threaded through
   the dentries themselves ([d_dlht_next] / [d_dlht_prev]): insert and remove
   are O(1) pointer splices with no per-entry cons cells, so table churn
   (renames, mount-alias re-signatures, evictions) never allocates.  The
   chain fields can live on the dentry because a dentry is in at most one
   DLHT at a time (§4.3).

   Invariant relied on by head removal: while a dentry is in the table its
   [d_sig] holds the signature it was inserted under (membership is removed
   before the signature changes — Dcache.detach/shootdown ordering), so the
   owning bucket is always recomputable.

   --- incremental resize ---

   The table doubles when [count / buckets] crosses [grow_load], without a
   stop-the-world rehash: the current bucket array is demoted to [old], a
   fresh, twice-as-large array becomes [tbl], and every subsequent mutation
   migrates [migrate_quantum] old buckets by re-splicing their chains into
   [tbl] (the signature is stable while chained, so the new slot is just a
   re-mask).  Inserts always go to [tbl]; probes check [tbl] first, then
   [old].  Between two doublings at load factor L, at least L * buckets
   inserts must happen while only [buckets] old buckets need migration, so
   with [migrate_quantum] >= 1 a resize always completes before the next
   one can start — [old] is None again by then, which [maybe_grow] requires.

   Lockless readers: exclusive mutation (resize migration, scrub, legacy
   write sections) runs under the dcache write lock, which brackets the
   dcache-wide write sequence; sharded mutation splices under per-stripe
   locks whose seqcounts the reader records before walking the chain.  An
   optimistic probe that overlaps either kind of write section fails its
   validation and retries, so probes never need the old/new split to be
   atomic — they only need racy chain walks to be crash-free (single-field
   reads of immediate ints and pointers) and finite, which the scan fuel
   guarantees even across transiently inconsistent splices.

   --- stripe locks ---

   With [stripes] attached, every splice ([insert]/[remove]) runs under
   the stripe for the signature's 22-bit bucket index masked to the stripe
   count.  The stripe count never exceeds the initial bucket count and
   tables only grow, so the stripe mask is a submask of every table mask:
   one signature maps to the same stripe in both tables, a whole bucket
   lives inside one stripe, and a bucket's migration re-splice stays
   within its own stripe.  Inline migration/growth is deferred in sharded
   mode — a sharded section must not touch buckets outside its stripe —
   and runs via [housekeep] from the exclusive write sections instead. *)

type table = { buckets : dentry option array; mask : int }

type t = {
  mutable tbl : table;  (** current table; inserts and first probes land here *)
  mutable old : table option;  (** pre-resize table still being drained *)
  mutable migrate_idx : int;  (** next [old] bucket to migrate *)
  grow_load : int;  (** entries per bucket before doubling; 0 = fixed size *)
  mutable resize_count : int;
  sigless_scans : int Atomic.t;
      (** times [remove] had to fall back to a whole-table identity scan *)
  stripe_migrations : int Atomic.t;
      (** old-table buckets drained by sharded sections under their own
          stripe (resize settling off the global write lock) *)
  ns : namespace;
  count : int Atomic.t;
  stripes : Locktab.t option;  (** sharded-mutation stripe locks; None = legacy *)
}

type ns_ext += Dlht_ext of t

(* A racy (lockless) chain walk can observe transiently inconsistent links
   while a writer splices; the fuel bound turns a would-be infinite walk
   into a miss, which the caller's seqcount validation then converts into a
   locked retry.  Far above any legitimate chain length (load factor is
   bounded by [grow_load] once resize is on, and even the fixed-size table
   needs 2^12 entries per bucket to get near it). *)
let scan_fuel = 4096

(* Old buckets migrated per mutation; >= 1 guarantees completion between
   doublings (see above), 4 keeps the drain an order of magnitude ahead. *)
let migrate_quantum = 4

let max_buckets = 1 lsl 22

let make_table buckets = { buckets = Array.make buckets None; mask = buckets - 1 }

let of_namespace_opt ns =
  match ns.ns_ext with Some (Dlht_ext t) -> Some t | Some _ | None -> None

let of_namespace_exn ns =
  match ns.ns_ext with Some (Dlht_ext t) -> t | Some _ | None -> raise Not_found

let of_namespace ?(stripes = 0) ~buckets ~grow_load ns =
  match ns.ns_ext with
  | Some (Dlht_ext t) -> t
  | Some _ | None ->
    if buckets <= 0 || buckets land (buckets - 1) <> 0 then
      invalid_arg "Dlht.of_namespace: bucket count must be a positive power of two";
    let t =
      {
        tbl = make_table buckets;
        old = None;
        migrate_idx = 0;
        grow_load;
        resize_count = 0;
        sigless_scans = Atomic.make 0;
        stripe_migrations = Atomic.make 0;
        ns;
        count = Atomic.make 0;
        stripes =
          (* Clamp to the initial bucket count so the stripe mask stays a
             submask of every (only ever growing) table mask. *)
          (if stripes > 0 then Some (Locktab.create (Stdlib.min stripes buckets))
           else None);
      }
    in
    ns.ns_ext <- Some (Dlht_ext t);
    t

let locktab t = t.stripes

let bucket_in tbl signature = Signature.bucket signature land tbl.mask

let resizing t = t.old <> None
let resizes t = t.resize_count
let sigless_scans t = Atomic.get t.sigless_scans
let stripe_migrations t = Atomic.get t.stripe_migrations

(* Splice [d] in as the head of [tbl]'s bucket for [signature]. *)
let splice tbl d signature =
  let idx = bucket_in tbl signature in
  let head = tbl.buckets.(idx) in
  let cell = Some d in
  d.d_dlht_next <- head;
  d.d_dlht_prev <- None;
  (match head with Some h -> h.d_dlht_prev <- cell | None -> ());
  tbl.buckets.(idx) <- cell

(* Re-splice one old bucket's chain into the current table and empty it.
   The chain's entries all share the bucket index, so in sharded mode the
   whole drain stays inside the bucket's stripe. *)
let drain_bucket t old i =
  let rec drain cell =
    match cell with
    | None -> ()
    | Some d ->
      let next = d.d_dlht_next in
      (match d.d_sig with
      | Some signature -> splice t.tbl d signature
      | None ->
        (* Chained with no signature: cannot be re-placed, and a probe
           could never have matched it anyway.  Quarantine, as scrub
           would. *)
        d.d_dlht_next <- None;
        d.d_dlht_prev <- None;
        d.d_dlht_ns <- None;
        Atomic.decr t.count;
        Trace.bump_cause Trace.cause_quarantined;
        Trace.stamp Trace.ev_quarantine d.d_id);
      drain next
  in
  drain old.buckets.(i);
  old.buckets.(i) <- None

(* Migrate up to [n] old buckets into the current table.  Caller holds the
   dcache write lock (like every mutator here). *)
let migrate_some t n =
  match t.old with
  | None -> ()
  | Some old ->
    let total = Array.length old.buckets in
    let stop = Stdlib.min total (t.migrate_idx + n) in
    let i = ref t.migrate_idx in
    while !i < stop do
      drain_bucket t old !i;
      incr i
    done;
    t.migrate_idx <- stop;
    if stop = total then begin
      t.old <- None;
      Trace.stamp Trace.ev_dlht_resize_end (Array.length t.tbl.buckets)
    end

(* Resize settling on the stripe table: a sharded splice already holds the
   stripe covering [signature]'s bucket in {e both} tables (the stripe mask
   is a submask of every table mask), so it drains the signature's old
   bucket in passing — migration proceeds under stripe locks instead of
   waiting for an exclusive section.  The cursor sweep in [migrate_some]
   later finds these buckets empty; the [old <- None] completion and the
   table swap themselves remain exclusive ([housekeep]), and that residue
   is what /proc/dcache/stripes' global-acquisition counter tracks. *)
let settle_in_stripe t signature =
  match t.old with
  | None -> ()
  | Some old -> (
    let i = bucket_in old signature in
    match old.buckets.(i) with
    | None -> ()
    | Some _ ->
      drain_bucket t old i;
      Atomic.incr t.stripe_migrations)

let settle t = migrate_some t max_int

let maybe_grow t =
  match t.old with
  | Some _ -> ()
  | None ->
    let buckets = Array.length t.tbl.buckets in
    if
      t.grow_load > 0 && buckets < max_buckets
      && Atomic.get t.count > buckets * t.grow_load
    then begin
      t.old <- Some t.tbl;
      t.migrate_idx <- 0;
      t.resize_count <- t.resize_count + 1;
      t.tbl <- make_table (buckets * 2);
      Trace.stamp Trace.ev_dlht_resize_begin (buckets * 2)
    end

(* Clear [d] from the head slot it owns, consulting both tables and
   verifying head identity before writing (never blindly overwrite a slot a
   stale signature merely points at).  Returns false when neither table's
   candidate slot is headed by [d]. *)
let clear_head t d next =
  match d.d_sig with
  | None -> false
  | Some signature -> (
    let tbl = t.tbl in
    let idx = bucket_in tbl signature in
    match tbl.buckets.(idx) with
    | Some h when h == d ->
      tbl.buckets.(idx) <- next;
      true
    | _ -> (
      match t.old with
      | None -> false
      | Some old -> (
        let oidx = bucket_in old signature in
        match old.buckets.(oidx) with
        | Some h when h == d ->
          old.buckets.(oidx) <- next;
          true
        | _ -> false)))

(* Defensive only — the detach ordering makes this unreachable.  Find the
   slot by identity so [count] stays exact even if the invariant is ever
   broken, and make the degradation loud: it is an O(buckets) scan on what
   should be an O(1) splice. *)
let scan_out_head t d next =
  Atomic.incr t.sigless_scans;
  Trace.stamp Trace.ev_dlht_sigless_scan d.d_id;
  let clear_in tbl =
    let n = Array.length tbl.buckets in
    let i = ref 0 in
    let found = ref false in
    while (not !found) && !i < n do
      (match tbl.buckets.(!i) with
      | Some h when h == d ->
        tbl.buckets.(!i) <- next;
        found := true
      | _ -> ());
      incr i
    done;
    !found
  in
  if not (clear_in t.tbl) then
    match t.old with Some old -> ignore (clear_in old) | None -> ()

let remove_splice t d =
  let next = d.d_dlht_next in
  let prev = d.d_dlht_prev in
  (match prev with
  | Some p -> p.d_dlht_next <- next
  | None ->
    (* Head of its bucket: recompute the slot from the signature (stable
       while the dentry is in the table; see invariant above). *)
    if not (clear_head t d next) then scan_out_head t d next);
  (match next with Some n -> n.d_dlht_prev <- prev | None -> ());
  d.d_dlht_next <- None;
  d.d_dlht_prev <- None;
  Atomic.decr t.count

let remove_from t d =
  match t.stripes with
  | None ->
    migrate_some t migrate_quantum;
    remove_splice t d
  | Some tab -> (
    match d.d_sig with
    | Some signature ->
      let i = Locktab.index tab (Signature.bucket signature) in
      Locktab.with_lock tab i (fun () ->
          settle_in_stripe t signature;
          remove_splice t d)
    | None ->
      (* Chained with no signature only happens when the detach ordering is
         broken, which only exclusive (write-locked) callers can do — the
         whole-table identity scan below is not stripe-safe anyway, so run
         it unlocked exactly as the legacy path would. *)
      remove_splice t d)

let remove d =
  match d.d_dlht_ns with
  | None -> ()
  | Some ns ->
    (match ns.ns_ext with Some (Dlht_ext t) -> remove_from t d | Some _ | None -> ());
    d.d_dlht_ns <- None;
    Trace.stamp Trace.ev_dlht_remove d.d_id

let insert t ns d signature =
  remove d;
  (match t.stripes with
  | None ->
    migrate_some t migrate_quantum;
    splice t.tbl d signature;
    Atomic.incr t.count;
    d.d_dlht_ns <- Some ns;
    maybe_grow t
  | Some tab ->
    (* [t.tbl] is stable here even though we only hold a stripe: it is
       only swapped by [maybe_grow], which runs under the dcache write
       lock, and every sharded section holds the read side. *)
    let i = Locktab.index tab (Signature.bucket signature) in
    Locktab.with_lock tab i (fun () ->
        settle_in_stripe t signature;
        splice t.tbl d signature;
        Atomic.incr t.count;
        d.d_dlht_ns <- Some ns));
  Trace.stamp Trace.ev_dlht_insert d.d_id

(* Exclusive-section variants (§3.9).  The caller holds the dcache write
   lock, which excludes every sharded section (they all hold the read
   side), and lockless probes validate against the global write sequence
   — which the exclusive section bumps — so the per-bucket stripe locks
   add nothing here.  The batched slowpath populates a whole group of
   misses through these, taking zero DLHT stripe acquisitions where the
   sequential fallback pays one [Locktab.with_lock] per splice. *)
let remove_exclusive d =
  match d.d_dlht_ns with
  | None -> ()
  | Some ns ->
    (match ns.ns_ext with Some (Dlht_ext t) -> remove_splice t d | Some _ | None -> ());
    d.d_dlht_ns <- None;
    Trace.stamp Trace.ev_dlht_remove d.d_id

let insert_exclusive t ns d signature =
  remove_exclusive d;
  (match t.stripes with
  | None -> migrate_some t migrate_quantum
  | Some _ -> ());
  splice t.tbl d signature;
  Atomic.incr t.count;
  d.d_dlht_ns <- Some ns;
  (match t.stripes with
  | None -> maybe_grow t
  | Some _ -> () (* migration/growth deferred to [housekeep] *));
  Trace.stamp Trace.ev_dlht_insert d.d_id

(* Sharded-mode replacement for the migration/growth work that [insert] and
   [remove] no longer do inline (a sharded section must not touch buckets
   outside its own stripe).  Called from exclusive write sections — the
   fastpath's slowpath populate — which excludes every sharded section. *)
let housekeep t =
  migrate_some t migrate_quantum;
  maybe_grow t

(* Both probes return the chain cell that already holds the match ([Some d as
   cell]) instead of rebuilding it, so a hit allocates nothing.  The chain
   scanners are top-level (not local closures over [key]/[signature]): a
   capturing local function would allocate its closure on every probe.
   During a resize the probe checks the current table first, then the
   pre-resize one; a miss in both on a lockless probe is re-checked by the
   caller's seqcount validation before it is believed. *)

let rec scan_chain key signature cell fuel =
  if fuel = 0 then None
  else begin
    match cell with
    | None -> None
    | Some d as found -> (
      match d.d_sig with
      | Some s when Signature.equal key s signature -> found
      | Some _ | None -> scan_chain key signature d.d_dlht_next (fuel - 1))
  end

let find t ~key signature =
  let tbl = t.tbl in
  match scan_chain key signature tbl.buckets.(bucket_in tbl signature) scan_fuel with
  | Some _ as hit -> hit
  | None -> (
    match t.old with
    | None -> None
    | Some old ->
      scan_chain key signature old.buckets.(bucket_in old signature) scan_fuel)

let rec scan_chain_buf key b cell fuel =
  if fuel = 0 then None
  else begin
    match cell with
    | None -> None
    | Some d as found -> (
      match d.d_sig with
      | Some s when Signature.equal_buf key b s -> found
      | Some _ | None -> scan_chain_buf key b d.d_dlht_next (fuel - 1))
  end

let find_buf t ~key b =
  let tbl = t.tbl in
  match scan_chain_buf key b tbl.buckets.(Signature.buf_bucket b land tbl.mask) scan_fuel with
  | Some _ as hit -> hit
  | None -> (
    match t.old with
    | None -> None
    | Some old ->
      scan_chain_buf key b old.buckets.(Signature.buf_bucket b land old.mask) scan_fuel)

let population t = Atomic.get t.count

type occupancy = {
  occ_entries : int;
  occ_buckets : int;
  occ_used : int;
  occ_longest : int;
  occ_old_pending : int;
}

let rec chain_length acc = function
  | None -> acc
  | Some d -> chain_length (acc + 1) d.d_dlht_next

let occupancy t =
  let entries = ref 0 and used = ref 0 and longest = ref 0 in
  let sweep tbl =
    Array.iter
      (fun head ->
        let len = chain_length 0 head in
        if len > 0 then begin
          incr used;
          entries := !entries + len;
          if len > !longest then longest := len
        end)
      tbl.buckets
  in
  sweep t.tbl;
  let in_new = !entries in
  (match t.old with Some old -> sweep old | None -> ());
  {
    occ_entries = !entries;
    occ_buckets = Array.length t.tbl.buckets;
    occ_used = !used;
    occ_longest = !longest;
    occ_old_pending = !entries - in_new;
  }

let self_check t =
  let problems = ref [] in
  let note fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  let entries = ref 0 in
  let check_table label tbl =
    Array.iteri
      (fun idx head ->
        (match head with
        | Some h when h.d_dlht_prev <> None ->
          note "%s bucket %d: head %s has a predecessor" label idx h.d_name
        | _ -> ());
        let rec walk prev = function
          | None -> ()
          | Some d ->
            incr entries;
            (match (prev, d.d_dlht_prev) with
            | None, _ -> ()
            | Some p, Some q when q == p -> ()
            | Some _, _ -> note "%s bucket %d: %s has a broken prev link" label idx d.d_name);
            (match d.d_dlht_ns with
            | Some ns when ns == t.ns -> ()
            | _ -> note "%s bucket %d: %s is chained but not marked as a member" label idx d.d_name);
            (match d.d_sig with
            | Some s when bucket_in tbl s = idx -> ()
            | Some _ -> note "%s bucket %d: %s is chained in the wrong bucket" label idx d.d_name
            | None -> note "%s bucket %d: %s is chained with no signature" label idx d.d_name);
            walk (Some d) d.d_dlht_next
        in
        walk None head)
      tbl.buckets
  in
  check_table "tbl" t.tbl;
  (match t.old with
  | None -> ()
  | Some old ->
    check_table "old" old;
    (* Buckets the migration cursor has passed must be empty. *)
    for i = 0 to Stdlib.min t.migrate_idx (Array.length old.buckets) - 1 do
      match old.buckets.(i) with
      | Some d -> note "old bucket %d: %s left behind the migration cursor" i d.d_name
      | None -> ()
    done);
  if !entries <> Atomic.get t.count then
    note "population: counted %d chained entries but count = %d" !entries
      (Atomic.get t.count);
  List.rev !problems

(* --- scrub ---

   Where [self_check] reports inconsistencies, [scrub] removes them: an
   entry whose chain links, membership mark or signature disagree with the
   table must not be served (a probe could return a dentry for the wrong
   path), so it is quarantined — spliced out and stripped of membership.
   The dentry itself stays cached; the slowpath re-resolves and, if the
   dentry is healthy, republishes it. *)

type scrub_report = {
  scrub_scanned : int;
  scrub_quarantined : int;
  scrub_problems : string list;
}

(* Splice [d] out of bucket [idx] of [tbl] by identity: the quarantined
   entry's signature and prev link are exactly what we cannot trust, so
   re-walk the chain from the head instead of using [remove_from]. *)
let unchain t tbl idx d =
  let rec fix prev cell =
    match cell with
    | None -> ()
    | Some x when x == d -> (
      let next = d.d_dlht_next in
      (match prev with
      | None -> tbl.buckets.(idx) <- next
      | Some p -> p.d_dlht_next <- next);
      match next with Some n -> n.d_dlht_prev <- prev | None -> ())
    | Some x -> fix (Some x) x.d_dlht_next
  in
  fix None tbl.buckets.(idx);
  d.d_dlht_next <- None;
  d.d_dlht_prev <- None;
  d.d_dlht_ns <- None;
  Atomic.decr t.count

let scrub t =
  let problems = ref [] in
  let note fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  let scanned = ref 0 in
  let bad = ref [] in
  let scan_table tbl =
    Array.iteri
      (fun idx head ->
        let rec walk prev = function
          | None -> ()
          | Some d ->
            incr scanned;
            let prev_ok =
              match (prev, d.d_dlht_prev) with
              | None, None -> true
              | Some p, Some q -> q == p
              | None, Some _ | Some _, None -> false
            in
            let member_ok = match d.d_dlht_ns with Some ns -> ns == t.ns | None -> false in
            let sig_ok = match d.d_sig with Some s -> bucket_in tbl s = idx | None -> false in
            if not (prev_ok && member_ok && sig_ok) then begin
              note "bucket %d: quarantined %s (%s)" idx d.d_name
                (if not sig_ok then "signature/bucket mismatch"
                 else if not member_ok then "membership mark"
                 else "broken prev link");
              bad := (tbl, idx, d) :: !bad
            end;
            walk (Some d) d.d_dlht_next
        in
        walk None head)
      tbl.buckets
  in
  scan_table t.tbl;
  (match t.old with Some old -> scan_table old | None -> ());
  List.iter
    (fun (tbl, idx, d) ->
      unchain t tbl idx d;
      Trace.bump_cause Trace.cause_quarantined;
      Trace.stamp Trace.ev_quarantine d.d_id)
    !bad;
  {
    scrub_scanned = !scanned;
    scrub_quarantined = List.length !bad;
    scrub_problems = List.rev !problems;
  }
