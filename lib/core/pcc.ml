open Dcache_vfs.Types
module Cred = Dcache_cred.Cred
module Trace = Dcache_util.Trace

(* Entries pack (dentry id, dentry seq) into one immediate int so that a
   concurrent reader can never observe a half-updated pair.  31 bits of id
   and 31 bits of seq leave the word well inside OCaml's 63-bit ints. *)
let id_bits = 31
let seq_mask = (1 lsl 31) - 1
let pack id seq = ((id land ((1 lsl id_bits) - 1)) lsl 31) lor (seq land seq_mask)
let packed_id e = (e lsr 31) land ((1 lsl id_bits) - 1)
let packed_seq e = e land seq_mask

let ways = 4

type table = {
  slots : int array;  (* 0 = empty *)
  sets : int;
  victims : int array;  (* per-set rotating replacement cursor *)
}

type t = {
  mutable table : table;
  max_entries : int;  (* dynamic-growth ceiling; = capacity when static *)
  mutable hit_count : int;
  mutable miss_count : int;
  mutable displaced : int;  (* replacement-victim evictions since last grow *)
  mutable grow_count : int;
}

let rec next_pow2 n acc = if acc >= n then acc else next_pow2 n (acc * 2)

let make_table entries =
  let sets = entries / ways in
  { slots = Array.make entries 0; sets; victims = Array.make sets 0 }

let create ?max_entries ~entries () =
  let entries = next_pow2 (max 16 entries) 16 in
  let max_entries =
    match max_entries with
    | Some m -> next_pow2 (max entries m) entries
    | None -> entries
  in
  { table = make_table entries; max_entries; hit_count = 0; miss_count = 0;
    displaced = 0; grow_count = 0 }

let capacity t = Array.length t.table.slots
let grows t = t.grow_count

let set_of table id =
  let h = id * 0x2545F491 in
  (h lxor (h lsr 13)) land (table.sets - 1)

(* The set scan is a top-level recursion: [check] runs (twice, for literal
   and real dentries) on every fastpath probe, and a capturing local [rec]
   would allocate a closure per call. *)
let rec check_scan t table id seq base i =
  if i >= ways then begin
    t.miss_count <- t.miss_count + 1;
    false
  end
  else begin
    let e = table.slots.(base + i) in
    if e <> 0 && packed_id e = id then begin
      if packed_seq e = seq then begin
        t.hit_count <- t.hit_count + 1;
        true
      end
      else begin
        (* Stale version: the ancestor chain changed.  Drop the entry so
           the paper's directory-reference rule can rely on "most recent
           entry" semantics (§3.2). *)
        table.slots.(base + i) <- 0;
        t.miss_count <- t.miss_count + 1;
        Trace.bump_cause Trace.cause_seqcount_retry;
        Trace.stamp Trace.ev_pcc_stale id;
        false
      end
    end
    else check_scan t table id seq base (i + 1)
  end

let check t d =
  let table = t.table in
  let id = d.d_id land ((1 lsl id_bits) - 1) in
  let base = set_of table d.d_id * ways in
  check_scan t table id (d.d_seq land seq_mask) base 0

(* Read-only prefix validation (§3.5): like [check], but perturbs nothing —
   no hit/miss accounting and no stale-entry drop.  The prefix-resume scan
   probes several ancestors per miss, most of which are expected to be
   absent, so counting them would skew the hit-rate figures; and it may run
   on the lockless tier, where dropping an entry is a mutation that belongs
   under the lock.  Top-level recursion for the usual no-closure reason. *)
let rec probe_scan table id seq base i =
  if i >= ways then false
  else begin
    let e = table.slots.(base + i) in
    if e <> 0 && packed_id e = id then packed_seq e = seq
    else probe_scan table id seq base (i + 1)
  end

let probe t d =
  let table = t.table in
  let id = d.d_id land ((1 lsl id_bits) - 1) in
  probe_scan table id (d.d_seq land seq_mask) (set_of table d.d_id * ways) 0

(* Dynamic resizing (the paper leaves the policy as future work, §6.3): when
   capacity replacement is evicting entries faster than a quarter of the
   cache per window, double the table — the working set has outgrown it.
   Growth rehashes under the caller's write lock. *)
let maybe_grow t =
  let cap = Array.length t.table.slots in
  if cap < t.max_entries && t.displaced > cap / 4 then begin
    let old = t.table in
    let bigger = make_table (cap * 2) in
    Array.iter
      (fun e ->
        if e <> 0 then begin
          let base = set_of bigger (packed_id e) * ways in
          let rec place i =
            if i < ways then begin
              if bigger.slots.(base + i) = 0 then bigger.slots.(base + i) <- e
              else place (i + 1)
            end
          in
          place 0
        end)
      old.slots;
    t.table <- bigger;
    t.displaced <- 0;
    t.grow_count <- t.grow_count + 1
  end

let insert t d =
  Trace.stamp Trace.ev_pcc_insert d.d_id;
  let table = t.table in
  let id = d.d_id land ((1 lsl id_bits) - 1) in
  let set = set_of table d.d_id in
  let base = set * ways in
  let entry = pack id d.d_seq in
  let rec place i =
    if i >= ways then begin
      let victim = table.victims.(set) land (ways - 1) in
      table.victims.(set) <- table.victims.(set) + 1;
      table.slots.(base + victim) <- entry;
      t.displaced <- t.displaced + 1;
      maybe_grow t
    end
    else begin
      let e = table.slots.(base + i) in
      if e = 0 || packed_id e = id then table.slots.(base + i) <- entry else place (i + 1)
    end
  in
  place 0

let invalidate_all t = Array.fill t.table.slots 0 (Array.length t.table.slots) 0
let hits t = t.hit_count
let misses t = t.miss_count

(* --- per-credential storage (§4.1) --- *)

type Cred.slot += Pcc_slot of (int, t) Hashtbl.t

(* [of_cred] runs on every fastpath lookup, so the warm path must not
   allocate: the slot list is scanned by a top-level matcher (no closure, no
   [Some] wrapper) and the per-namespace table is probed with [Hashtbl.find]
   plus an exception branch rather than [find_opt].  Only the first lookup by
   a fresh credential (attach slot, create cache) allocates. *)
let rec slot_table = function
  | [] -> raise Not_found
  | Pcc_slot tbl :: _ -> tbl
  | _ :: rest -> slot_table rest

(* Non-creating variant for the lockless fastpath: creation mutates the
   credential's slot list and the per-cred Hashtbl, which only the locked
   paths may do.  Raises [Not_found] (caught by the probe, which retries
   under the read lock) instead of boxing an option, so the warm lockless
   hit stays allocation-free.  Racing a concurrent creator under the write
   lock is safe: [Cred.add_slot] publishes an immutable cons and a Hashtbl
   lookup that loses the race merely misses. *)
let of_cred_exn cred ns = Hashtbl.find (slot_table (Cred.slots cred)) ns.ns_id

let of_cred ?max_entries cred ns ~entries =
  let table =
    match slot_table (Cred.slots cred) with
    | tbl -> tbl
    | exception Not_found ->
      let tbl = Hashtbl.create 4 in
      Cred.add_slot cred (Pcc_slot tbl);
      tbl
  in
  match Hashtbl.find table ns.ns_id with
  | pcc -> pcc
  | exception Not_found ->
    let pcc = create ?max_entries ~entries () in
    Hashtbl.add table ns.ns_id pcc;
    pcc
