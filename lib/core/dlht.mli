(** Direct Lookup Hash Table (paper §3.1, Fig. 4).

    A second, per-mount-namespace hash table that maps the {e signature of a
    full canonical path} straight to a dentry, so a warm lookup is one probe
    instead of a component-at-a-time walk.  Lazily populated after slowpath
    walks; entries are shot down on renames, mount changes and evictions.

    A dentry lives in at most one DLHT at a time — across namespaces and
    mount aliases — favouring locality and keeping invalidation tractable
    (§4.3).  The table is keyed by the signature's 22-bit bucket index
    masked to the current size; chains compare the 236 signature bits only
    (never the path string).

    Buckets are intrusive: the chain links live on the dentry itself
    ([d_dlht_next]/[d_dlht_prev]), so insert and remove are O(1) pointer
    splices and probes allocate nothing.

    The table resizes {e incrementally}: when the load factor crosses
    [grow_load] the bucket array doubles, and subsequent mutations migrate a
    few pre-resize buckets each by re-splicing their intrusive chains — no
    stop-the-world rehash.  Probes check the current table, then the
    pre-resize one while it drains.  Exclusive mutation (migration, scrub)
    runs under the dcache write lock; with [stripes] attached, plain
    insert/remove splices instead run under a per-stripe lock so multiple
    writer domains can publish concurrently.  Lockless fastpath probes are
    validated against the dcache write sequence — plus the probed stripe's
    seqcount when sharded — by the caller. *)

open Dcache_vfs.Types
module Signature = Dcache_sig.Signature
module Locktab = Dcache_util.Locktab

type t

val of_namespace : ?stripes:int -> buckets:int -> grow_load:int -> namespace -> t
(** The namespace's table, created on first use (stored in [ns_ext]).
    [grow_load] is the entries-per-bucket threshold past which the table
    doubles; 0 keeps it fixed-size.  [stripes] (default 0 = none) attaches
    a sharded-mutation lock table, clamped to [buckets] so the stripe mask
    stays a submask of every table mask: a signature maps to the same
    stripe in the current and pre-resize tables, and one bucket never
    spans stripes.
    @raise Invalid_argument if [buckets] is not a positive power of two
    (the bucket index is computed by masking the signature's low bits). *)

val locktab : t -> Locktab.t option
(** The table's stripe locks, when sharded.  Readers index it with
    [Locktab.index tab (Signature.bucket s)] (or [Signature.buf_bucket])
    and record [Locktab.seq] snapshots before walking the chain; sharded
    writers must take the stripe around {!insert}/{!remove} — which they
    do internally — and nothing else. *)

val of_namespace_opt : namespace -> t option
(** The namespace's table if one has been created; never creates. *)

val of_namespace_exn : namespace -> t
(** Like {!of_namespace_opt} but raises [Not_found] instead of boxing an
    option — the allocation-free variant the lockless fastpath uses (it
    must neither allocate nor create, since creation is a mutation).  *)

val insert : t -> namespace -> dentry -> Signature.t -> unit
(** Publish [dentry] under [signature]; removes any previous membership
    (other signature or other namespace) first and records the membership
    on the dentry.  Unsharded, advances any in-flight incremental resize
    and may start one; sharded, splices under the signature's stripe and
    defers migration/growth to {!housekeep}. *)

val insert_exclusive : t -> namespace -> dentry -> Signature.t -> unit
(** {!insert} from an exclusive (dcache write-locked) section, skipping
    the per-bucket stripe lock: the write lock excludes every sharded
    section, and lockless probes validate against the global write
    sequence the exclusive section bumps, so the stripe adds nothing.
    The batched slowpath (§3.9) publishes a whole group of misses
    through this — zero stripe acquisitions where sequential fallbacks
    pay one per splice.  Sharded-mode migration/growth is deferred to
    {!housekeep}, exactly as with sharded {!insert}. *)

val housekeep : t -> unit
(** Advance any in-flight incremental resize by one quantum and start one
    if the load factor calls for it.  The sharded-mode home for the
    migration/growth work {!insert}/{!remove} no longer do inline (a
    sharded section must stay within its own stripe).  Call under the
    dcache write lock. *)

val find : t -> key:Signature.key -> Signature.t -> dentry option
(** Probe; compares signatures per the key's configured width.  A hit
    returns the chain cell already holding the dentry — no allocation. *)

val find_buf : t -> key:Signature.key -> Signature.buf -> dentry option
(** Like {!find}, keyed by an in-place digest buffer (fastpath probes). *)

val remove : dentry -> unit
(** Remove [dentry] from whichever DLHT holds it (no-op when none).  O(1)
    splice; must be called while the dentry's signature still matches the
    one it was inserted under (the dcache's detach ordering guarantees
    this).  If the invariant is ever broken the removal degrades to a
    whole-table identity scan — counted by {!sigless_scans} and stamped as
    [ev_dlht_sigless_scan] so the degradation is never silent. *)

val population : t -> int
(** Exact number of entries currently in the table. *)

val resizing : t -> bool
(** An incremental resize is in flight (pre-resize buckets still drain). *)

val resizes : t -> int
(** Doublings since creation. *)

val sigless_scans : t -> int
(** Times {!remove} fell back to the defensive whole-table scan. *)

val stripe_migrations : t -> int
(** Old-table buckets drained by sharded sections under their own stripe
    (resize settling off the global write lock): each sharded splice drains
    its signature's pre-resize bucket in passing, which the stripe-submask
    invariant keeps inside the already-held stripe. *)

val settle : t -> unit
(** Complete any in-flight migration now.  Call under the dcache write
    lock; tests and benchmarks use it for deterministic occupancy. *)

type occupancy = {
  occ_entries : int;  (** chained entries (= {!population} when healthy) *)
  occ_buckets : int;  (** current (post-resize) bucket count *)
  occ_used : int;  (** buckets with at least one entry, both tables *)
  occ_longest : int;  (** longest chain, both tables *)
  occ_old_pending : int;  (** entries still awaiting migration *)
}

val occupancy : t -> occupancy
(** Walk every bucket and summarize load; diagnostics / bench reporting. *)

val self_check : t -> string list
(** Structural invariant check over the intrusive chains (prev/next
    consistency, membership marks, bucket placement, exact count, migration
    cursor); empty when healthy.  For tests. *)

type scrub_report = {
  scrub_scanned : int;  (** chained entries examined *)
  scrub_quarantined : int;  (** entries spliced out *)
  scrub_problems : string list;  (** one line per quarantined entry *)
}

val scrub : t -> scrub_report
(** Integrity pass that {e repairs}: every chained entry whose links,
    membership mark or signature disagree with the table is quarantined —
    removed from its bucket and stripped of DLHT membership — instead of
    being left to answer probes for the wrong path.  The dentry itself
    stays in the dcache; a later slowpath walk republishes it if healthy.
    Call under the dcache write lock. *)
