(** Direct Lookup Hash Table (paper §3.1, Fig. 4).

    A second, per-mount-namespace hash table that maps the {e signature of a
    full canonical path} straight to a dentry, so a warm lookup is one probe
    instead of a component-at-a-time walk.  Lazily populated after slowpath
    walks; entries are shot down on renames, mount changes and evictions.

    A dentry lives in at most one DLHT at a time — across namespaces and
    mount aliases — favouring locality and keeping invalidation tractable
    (§4.3).  The table is keyed by the low 16 bits of the signature; chains
    compare the remaining 240 bits only (never the path string).

    Buckets are intrusive: the chain links live on the dentry itself
    ([d_dlht_next]/[d_dlht_prev]), so insert and remove are O(1) pointer
    splices and probes allocate nothing. *)

open Dcache_vfs.Types
module Signature = Dcache_sig.Signature

type t

val of_namespace : buckets:int -> namespace -> t
(** The namespace's table, created on first use (stored in [ns_ext]).
    @raise Invalid_argument if [buckets] is not a positive power of two
    (the bucket index is computed by masking the signature's low bits). *)

val of_namespace_opt : namespace -> t option
(** The namespace's table if one has been created; never creates. *)

val insert : t -> namespace -> dentry -> Signature.t -> unit
(** Publish [dentry] under [signature]; removes any previous membership
    (other signature or other namespace) first and records the membership
    on the dentry. *)

val find : t -> key:Signature.key -> Signature.t -> dentry option
(** Probe; compares signatures per the key's configured width.  A hit
    returns the chain cell already holding the dentry — no allocation. *)

val find_buf : t -> key:Signature.key -> Signature.buf -> dentry option
(** Like {!find}, keyed by an in-place digest buffer (fastpath probes). *)

val remove : dentry -> unit
(** Remove [dentry] from whichever DLHT holds it (no-op when none).  O(1)
    splice; must be called while the dentry's signature still matches the
    one it was inserted under (the dcache's detach ordering guarantees
    this). *)

val population : t -> int
(** Exact number of entries currently in the table. *)

type occupancy = {
  occ_entries : int;  (** chained entries (= {!population} when healthy) *)
  occ_buckets : int;
  occ_used : int;  (** buckets with at least one entry *)
  occ_longest : int;  (** longest chain *)
}

val occupancy : t -> occupancy
(** Walk every bucket and summarize load; diagnostics / bench reporting. *)

val self_check : t -> string list
(** Structural invariant check over the intrusive chains (prev/next
    consistency, membership marks, bucket placement, exact count); empty
    when healthy.  For tests. *)

type scrub_report = {
  scrub_scanned : int;  (** chained entries examined *)
  scrub_quarantined : int;  (** entries spliced out *)
  scrub_problems : string list;  (** one line per quarantined entry *)
}

val scrub : t -> scrub_report
(** Integrity pass that {e repairs}: every chained entry whose links,
    membership mark or signature disagree with the table is quarantined —
    removed from its bucket and stripped of DLHT membership — instead of
    being left to answer probes for the wrong path.  The dentry itself
    stays in the dcache; a later slowpath walk republishes it if healthy.
    Call under the dcache write lock. *)
