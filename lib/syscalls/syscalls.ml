open Dcache_types
open Dcache_vfs.Types
module Vfs = Dcache_vfs
module Dcache = Vfs.Dcache
module Walk = Vfs.Walk
module Mount = Vfs.Mount
module Inode = Vfs.Inode
module Config = Vfs.Config
module Lsm = Dcache_cred.Lsm
module Cred = Dcache_cred.Cred
module Fastpath = Dcache_core.Fastpath
module Fs = Dcache_fs.Fs_intf
module Counter = Dcache_util.Stats.Counter
module Rwlock = Dcache_util.Rwlock
module Locktab = Dcache_util.Locktab
module Dlist = Dcache_util.Dlist
module Fault = Dcache_util.Fault
module Trace = Dcache_util.Trace
module Profiler = Dcache_util.Profiler
module Batch = Batch

type 'a r = ('a, Errno.t) result

let ( let* ) = Result.bind
let counters proc = Kernel.counters proc.Proc.kernel
let dcache proc = Kernel.dcache proc.Proc.kernel
let kconfig proc = Kernel.config proc.Proc.kernel
let count proc name = Counter.incr (counters proc) name

(* Syscall entry: bump the per-kernel counter and mint a request-scoped
   span (§3.8).  The span id installs as this domain's current span and
   rides every subsequent Trace stamp, netfs RPC and lease-break
   notification until the next syscall entry on the domain.  Disarmed,
   [span_enter] is a load-and-branch returning 0 and nothing is stamped. *)
let sys proc name =
  count proc name;
  if Profiler.span_enter () <> 0 then Trace.stamp Trace.ev_syscall 0

(* Per-lookup path statistics (reported in the paper's Table 1). *)
let note_lookup proc path =
  let c = counters proc in
  Counter.incr c "path_lookup";
  Counter.add c "path_bytes" (String.length path);
  let comps = ref 0 in
  let in_comp = ref false in
  String.iter
    (fun ch ->
      if ch = '/' then in_comp := false
      else if not !in_comp then begin
        in_comp := true;
        incr comps
      end)
    path;
  Counter.add c "path_comps" !comps

let permission proc inode mask =
  if Lsm.permission (Kernel.registry proc.Proc.kernel) proc.Proc.cred (Inode.attr inode) mask
  then Ok ()
  else Error Errno.EACCES

let positive_inode d =
  match d.d_state with
  | Positive inode -> Ok inode
  | Partial _ -> Dcache.promote d
  | Negative e -> Error e

(* --- resolution helpers --- *)

let lookup_flags ?(follow = true) ?(must_dir = false) () =
  { Walk.follow_last = follow; must_dir; collect = false }

(** Non-mutating resolution via the configured lookup machinery (fastpath
    with fallback, or the baseline two-phase slowpath).  Takes locks
    internally; must not be called with the dcache lock held. *)
let resolve ?start ?flags proc path =
  note_lookup proc path;
  let flags = match flags with Some f -> f | None -> lookup_flags () in
  let ctx = Proc.walk_ctx proc in
  (Fastpath.lookup (Kernel.fastpath proc.Proc.kernel) ctx ?start ~flags path).Walk.outcome

let resolve_with ?start ?flags proc path ~within =
  note_lookup proc path;
  let flags = match flags with Some f -> f | None -> lookup_flags () in
  let ctx = Proc.walk_ctx proc in
  Fastpath.lookup_with (Kernel.fastpath proc.Proc.kernel) ctx ?start ~flags path ~within

(** Resolution for mutating operations: caller must hold the write lock.
    Collects and publishes the prefix chain so that the optimized kernel's
    subsequent lookups of these directories take the fastpath. *)
let resolve_parent_locked ?start proc path =
  note_lookup proc path;
  let ctx = Proc.walk_ctx proc in
  let ctx = match start with Some s -> { ctx with Walk.cwd = s } | None -> ctx in
  let collect = (kconfig proc).Config.fastpath in
  let* p = Walk.resolve_parent Walk.Ref (dcache proc) ctx ~collect path in
  if collect then
    Fastpath.populate (Kernel.fastpath proc.Proc.kernel) ctx ~visited:p.Walk.p_visited
      ~absolute:p.Walk.p_absolute ~start:ctx.Walk.cwd;
  Ok p

let resolve_locked ?flags proc path =
  note_lookup proc path;
  let flags = match flags with Some f -> f | None -> lookup_flags () in
  let ctx = Proc.walk_ctx proc in
  (Walk.resolve_in_mode Walk.Ref (dcache proc) ctx ~flags path).Walk.outcome

let with_write proc f = Dcache.with_write (dcache proc) f

let parent_dir_inode (p : Walk.parent_result) = positive_inode p.Walk.parent.dentry

let check_write_dir proc (p : Walk.parent_result) =
  if p.Walk.parent.mnt.mnt_readonly then Error Errno.EROFS
  else begin
    let* dir_inode = parent_dir_inode p in
    permission proc dir_inode (Access.union Access.may_write Access.may_exec)
  end

(* Instantiate a freshly created child in the dcache.  Creating a
   non-directory over a cached negative dentry evicts any deep negative
   children; a new directory is empty, so deep negatives below it stay
   valid (§5.2). *)
let instantiate proc (p : Walk.parent_result) (attr : Attr.t) =
  let d = dcache proc in
  let parent = p.Walk.parent.dentry in
  let inode = Dcache.iget parent.d_sb attr in
  Dcache.bump_dir_gen parent;
  match p.Walk.child with
  | Some child when dentry_is_negative child ->
    if not (File_kind.equal attr.Attr.kind File_kind.Directory) then
      Dcache.prune_children d child;
    Dcache.neg_forget d child;
    child.d_state <- Positive inode;
    child.d_target_sig <- None;
    child
  | Some child ->
    child.d_state <- Positive inode;
    child.d_target_sig <- None;
    child
  | None -> (
    match Dcache.add_child d parent p.Walk.last (Positive inode) with
    | Ok child -> child
    | Error _ -> assert false)

let map_fs_result result = Result.map_error (fun e -> e) result

(* --- metadata --- *)

let do_stat ?(follow = true) ?start proc path =
  let* ref_ = resolve ?start ~flags:(lookup_flags ~follow ()) proc path in
  match ref_.dentry.d_state with
  | Positive inode -> Ok (Inode.attr inode)
  | Partial _ | Negative _ -> Error Errno.ENOENT

let stat proc path =
  Systime.timed Systime.Access_stat (fun () ->
      sys proc "sys_stat";
      do_stat proc path)

let lstat proc path =
  Systime.timed Systime.Access_stat (fun () ->
      sys proc "sys_lstat";
      do_stat ~follow:false proc path)

let fstatat proc dirfd path ?(follow = true) () =
  Systime.timed Systime.Access_stat (fun () ->
      sys proc "sys_fstatat";
      let* fd = Proc.find_fd proc dirfd in
      do_stat ~follow ~start:fd.Proc.fd_ref proc path)

let fstat proc fdnum =
  sys proc "sys_fstat";
  let* fd = Proc.find_fd proc fdnum in
  Ok (Inode.attr fd.Proc.fd_inode)

let access proc path mask =
  Systime.timed Systime.Access_stat (fun () ->
      sys proc "sys_access";
      resolve_with proc path ~within:(fun ref_ ->
          let* inode = positive_inode ref_.dentry in
          permission proc inode mask))

let readlink proc path =
  sys proc "sys_readlink";
  let* ref_ = resolve ~flags:(lookup_flags ~follow:false ()) proc path in
  let* inode = positive_inode ref_.dentry in
  if File_kind.equal (Inode.kind inode) File_kind.Symlink then Inode.symlink_target inode
  else Error Errno.EINVAL

(* --- open and file IO --- *)

let flag_mem flag flags = List.mem flag flags

let finish_open proc flags (ref_ : path_ref) =
  let writable = flag_mem Proc.O_WRONLY flags || flag_mem Proc.O_RDWR flags in
  let readable = not (flag_mem Proc.O_WRONLY flags) in
  let want_dir = flag_mem Proc.O_DIRECTORY flags in
  let* inode = positive_inode ref_.dentry in
  let kind = Inode.kind inode in
  let* () =
    match kind with
    | File_kind.Symlink -> Error Errno.ELOOP (* only reachable with O_NOFOLLOW *)
    | File_kind.Directory -> if writable then Error Errno.EISDIR else Ok ()
    | _ -> if want_dir then Error Errno.ENOTDIR else Ok ()
  in
  let* () = if readable then permission proc inode Access.may_read else Ok () in
  let* () =
    if writable then begin
      if ref_.mnt.mnt_readonly then Error Errno.EROFS
      else permission proc inode Access.may_write
    end
    else Ok ()
  in
  let* () =
    if flag_mem Proc.O_TRUNC flags && writable && File_kind.equal kind File_kind.Regular
    then Inode.setattr inode { Fs.no_setattr with Fs.set_size = Some 0 }
    else Ok ()
  in
  Dcache.dget ref_.dentry;
  (Inode.fs inode).Fs.pin_inode (Inode.ino inode);
  let fd =
    Proc.install_fd proc ~fd:(fun num ->
        {
          Proc.fd_num = num;
          fd_ref = ref_;
          fd_inode = inode;
          fd_readable = readable;
          fd_writable = writable;
          fd_append = flag_mem Proc.O_APPEND flags;
          fd_pos = 0;
          fd_dir = None;
        })
  in
  Ok fd.Proc.fd_num

(* --- the sharded mutation path ---

   With [dcache_stripes > 0] (and the fastpath on, Linux dot-dot mode) the
   three churn-critical mutations — regular-file create, unlink and rename —
   run under the dcache lock's {e read} side plus the parent directory's
   stripe(s) instead of the exclusive write lock, so writer domains mutating
   different directories proceed concurrently.  Anything off the happy path
   (uncached parents or children, [Partial] dentries, directories, extra
   hard links, mountpoints, deep-negative subtrees, cross-sb renames) falls
   back to the classic write-locked implementation: [Legacy] means "take
   the big lock", never "fail".

   Lock order inside a sharded section: rwlock read side, then the parent
   directory stripe(s) — two at once only through [Locktab.lock2]'s index
   ordering — then leaf locks (the DLHT stripe inside [Dlht] splices,
   [lru_mu], [icache_mu]).  Eviction cannot run here (the clock walk
   crosses stripes), so capacity enforcement is deferred to
   [Dcache.reclaim_overflow] after every lock is dropped. *)

type 'a attempt = Done of 'a r | Legacy

(* Crash-fault coverage for the stripe-locked sections: a [Fault.crash_point]
   sits between each stripe's seqcount bump (inside [Locktab.lock]) and the
   dcache splice.  A firing site raises {!Fault.Crash} out of the section;
   the handlers below release the stripe(s) and the read lock on the way out
   — a leaked stripe would leave its seqcount odd, wedging every later
   lockless probe that records it and deadlocking [Kernel.scrub]'s
   [with_write].  Sites default to [Off]; [install_crash_sites] registers
   them on a caller-owned injector. *)
type crash_sites = {
  cs_create : Fault.site;
  cs_unlink : Fault.site;
  cs_rename : Fault.site;
  cs_invalidate : Fault.site;
  cs_mkdir : Fault.site;
  cs_rmdir : Fault.site;
}

let crash_sites : crash_sites option ref = ref None

let install_crash_sites inj =
  crash_sites :=
    Some
      {
        cs_create = Fault.site inj "syscalls.sharded_create";
        cs_unlink = Fault.site inj "syscalls.sharded_unlink";
        cs_rename = Fault.site inj "syscalls.sharded_rename";
        cs_invalidate = Fault.site inj "syscalls.sharded_invalidate";
        cs_mkdir = Fault.site inj "syscalls.sharded_mkdir";
        cs_rmdir = Fault.site inj "syscalls.sharded_rmdir";
      };
  (* The stripe-locked readdir promotion lives in [Readdir] (it is shared
     with the batch front-end); its site rides the same injector. *)
  Readdir.set_crash_site (Fault.site inj "syscalls.sharded_readdir")

let clear_crash_sites () =
  crash_sites := None;
  Readdir.clear_crash_site ()
let[@inline] crash_point pick = match !crash_sites with None -> () | Some cs -> Fault.crash_point (pick cs)

(* Split [path] into (dirname, basename) when the final component is a
   plain name.  [None] dirname means the walk start itself (cwd / dirfd).
   Trailing slashes, ".", ".." and empty basenames are Legacy cases. *)
let split_basename path =
  let n = String.length path in
  if n = 0 || path.[n - 1] = '/' then None
  else begin
    match String.rindex_opt path '/' with
    | None -> if path = "." || path = ".." then None else Some (None, path)
    | Some i ->
      let base = String.sub path (i + 1) (n - i - 1) in
      if base = "." || base = ".." then None
      else Some (Some (String.sub path 0 (if i = 0 then 1 else i)), base)
  end

(* Resolve the containing directory with no lock held — warm parents
   resolve locklessly through the fastpath; cold ones take the ordinary
   locked fallback inside [Fastpath.lookup].  The result is re-validated
   under the parent's stripe before anything trusts it. *)
let resolve_dir ?start proc dirname =
  let ctx = Proc.walk_ctx proc in
  let ctx = match start with Some s -> { ctx with Walk.cwd = s } | None -> ctx in
  match dirname with
  | None -> Some ctx.Walk.cwd
  | Some dir -> (
    match
      (Fastpath.lookup (Kernel.fastpath proc.Proc.kernel) ctx
         ~flags:(lookup_flags ~must_dir:true ()) dir)
        .Walk.outcome
    with
    | Ok ref_ -> Some ref_
    | Error _ -> None)

(* Parent validity under its stripe: still cached (roots are never hashed)
   and still a positive directory.  A [Partial] parent would need a
   promoting mutation guarded by the {e grandparent}'s stripe — Legacy. *)
let dir_valid (pref : path_ref) =
  let d = pref.dentry in
  (d.d_hashed || d.d_parent = None)
  &&
  match d.d_state with
  | Positive inode -> Inode.is_dir inode
  | Partial _ | Negative _ -> false

let dir_inode_exn (pref : path_ref) =
  match pref.dentry.d_state with Positive i -> i | _ -> assert false

let writable_dir proc (pref : path_ref) =
  if pref.mnt.mnt_readonly then Error Errno.EROFS
  else
    permission proc (dir_inode_exn pref) (Access.union Access.may_write Access.may_exec)

(* Backend entry mutations change the parent directory's own attributes
   (size at minimum; each backend accounts differently), so the cached
   snapshot must be re-read or a later eviction-and-refetch would observe
   a different answer than the warm cache.  The mutation itself already
   succeeded, so a failed re-read is ignored rather than surfaced. *)
let refresh_dir_attr dir_inode =
  ignore (Inode.refresh dir_inode : (unit, Errno.t) result)

let sharded_create ?start ~mode proc path flags : int attempt =
  let d = dcache proc in
  match Dcache.stripes d with
  | None -> Legacy
  | Some tab -> (
    match split_basename path with
    | None -> Legacy
    | Some (dirname, name) -> (
      match resolve_dir ?start proc dirname with
      | None -> Legacy
      | Some pref ->
        let lock = Dcache.lock d in
        Rwlock.read_lock lock;
        let si = Locktab.index tab pref.dentry.d_id in
        Locktab.lock tab si;
        let finish r =
          Locktab.unlock tab si;
          Rwlock.read_unlock lock;
          (match r with
          | Done _ ->
            note_lookup proc path;
            Dcache.reclaim_overflow d
          | Legacy -> ());
          r
        in
        (* The injected crash fires between the stripe seqcount bump (in
           [Locktab.lock] above) and the splice: release the section's locks
           before letting it propagate, exactly as a kernel oops handler
           unwinds held spinlocks. *)
        (try crash_point (fun cs -> cs.cs_create)
         with e ->
           Locktab.unlock tab si;
           Rwlock.read_unlock lock;
           raise e);
        if not (dir_valid pref) then finish Legacy
        else begin
          let parent = pref.dentry in
          let existing = Dcache.lookup d parent name in
          match existing with
          | Some child when dentry_is_positive child ->
            if flag_mem Proc.O_EXCL flags then finish (Done (Error Errno.EEXIST))
            else finish Legacy (* plain open of an existing file *)
          | Some child when not (dentry_is_negative child) -> finish Legacy
          | Some child when not (Dlist.is_empty child.d_children) ->
            (* deep negatives below the name: pruning crosses stripes *)
            finish Legacy
          | None when not (Dcache.is_complete d parent) ->
            (* an uncached name may still exist on the fs: only a complete
               directory's absence verdict is authoritative (§5.1) *)
            finish Legacy
          | existing -> (
            match writable_dir proc pref with
            | Error e -> finish (Done (Error e))
            | Ok () -> (
              let dir_inode = dir_inode_exn pref in
              match
                parent.d_sb.sb_fs.Fs.create (Inode.ino dir_inode) name
                  File_kind.Regular mode ~uid:(Cred.uid proc.Proc.cred)
                  ~gid:(Cred.gid proc.Proc.cred)
              with
              | Error e -> finish (Done (Error e))
              | Ok attr ->
                refresh_dir_attr dir_inode;
                count proc "files_created";
                count proc "sharded_create";
                (* Either verdict — a cached negative or a complete parent's
                   authoritative absence — let this create skip the backend
                   existence probe entirely (§5). *)
                count proc "create_neg_shortcut";
                (* The absence verdict that authorized this create came from
                   directory completeness (§5.1) — count it like the walk's
                   complete-dir miss would have been. *)
                if existing = None then count proc "complete_dir_negative";
                let inode = Dcache.iget parent.d_sb attr in
                Dcache.bump_dir_gen parent;
                let child =
                  match existing with
                  | Some child ->
                    (* negative promotion in place: the name keeps its
                       signature and DLHT entry, so the fastpath serves the
                       new positive result immediately (§5.2) *)
                    Dcache.neg_forget d child;
                    child.d_state <- Positive inode;
                    child.d_target_sig <- None;
                    child
                  | None -> (
                    match Dcache.add_child d parent name (Positive inode) with
                    | Ok child -> child
                    | Error _ -> assert false)
                in
                finish (Done (finish_open proc flags { pref with dentry = child }))))
        end))

let sharded_unlink ?start proc path : unit attempt =
  let d = dcache proc in
  match Dcache.stripes d with
  | None -> Legacy
  | Some tab -> (
    match split_basename path with
    | None -> Legacy
    | Some (dirname, name) -> (
      match resolve_dir ?start proc dirname with
      | None -> Legacy
      | Some pref ->
        let lock = Dcache.lock d in
        Rwlock.read_lock lock;
        let si = Locktab.index tab pref.dentry.d_id in
        Locktab.lock tab si;
        let finish r =
          Locktab.unlock tab si;
          Rwlock.read_unlock lock;
          (match r with
          | Done _ ->
            note_lookup proc path;
            Dcache.reclaim_overflow d
          | Legacy -> ());
          r
        in
        (try crash_point (fun cs -> cs.cs_unlink)
         with e ->
           Locktab.unlock tab si;
           Rwlock.read_unlock lock;
           raise e);
        if not (dir_valid pref) then finish Legacy
        else begin
          match Dcache.lookup d pref.dentry name with
          | None -> finish Legacy (* uncached: the fill needs the slowpath *)
          | Some child -> (
            match child.d_state with
            | Negative e -> finish (Done (Error e))
            | Partial _ -> finish Legacy
            | Positive child_inode ->
              if dentry_is_dir child then finish (Done (Error Errno.EISDIR))
              else if
                (not (Dlist.is_empty child.d_children))
                || Mount.is_mountpoint proc.Proc.ns pref.mnt child
                || (Inode.attr child_inode).Attr.nlink <> 1
                (* extra hard links: the shared inode's nlink is mutated
                   from other parents' stripes — Legacy serializes *)
              then finish Legacy
              else begin
                match writable_dir proc pref with
                | Error e -> finish (Done (Error e))
                | Ok () -> (
                  match
                    pref.dentry.d_sb.sb_fs.Fs.unlink
                      (Inode.ino (dir_inode_exn pref)) name
                  with
                  | Error e -> finish (Done (Error e))
                  | Ok () ->
                    refresh_dir_attr (dir_inode_exn pref);
                    count proc "sharded_unlink";
                    Dcache.bump_dir_gen pref.dentry;
                    Inode.bump_nlink child_inode (-1);
                    if (Inode.attr child_inode).Attr.nlink <= 0 then
                      Dcache.iforget child.d_sb (Inode.ino child_inode);
                    Dcache.note_unlinked d child;
                    finish (Done (Ok ())))
              end)
        end))

let sharded_rename proc old_path new_path : unit attempt =
  let d = dcache proc in
  match Dcache.stripes d with
  | None -> Legacy
  | Some tab -> (
    match (split_basename old_path, split_basename new_path) with
    | Some (old_dir, old_name), Some (new_dir, new_name) -> (
      match (resolve_dir proc old_dir, resolve_dir proc new_dir) with
      | Some po, Some pn when po.dentry.d_sb == pn.dentry.d_sb ->
        let lock = Dcache.lock d in
        Rwlock.read_lock lock;
        let si = Locktab.index tab po.dentry.d_id in
        let sj = Locktab.index tab pn.dentry.d_id in
        (* both parents' stripes, in index order — the cross-rename
           deadlock case (A→B in one domain, B→A in another) serializes
           on whichever stripe sorts first *)
        Locktab.lock2 tab si sj;
        let finish r =
          Locktab.unlock2 tab si sj;
          Rwlock.read_unlock lock;
          (match r with
          | Done _ ->
            note_lookup proc old_path;
            note_lookup proc new_path;
            Dcache.reclaim_overflow d
          | Legacy -> ());
          r
        in
        (try crash_point (fun cs -> cs.cs_rename)
         with e ->
           Locktab.unlock2 tab si sj;
           Rwlock.read_unlock lock;
           raise e);
        if not (dir_valid po && dir_valid pn) then finish Legacy
        else begin
          match Dcache.lookup d po.dentry old_name with
          | None -> finish Legacy
          | Some src -> (
            match src.d_state with
            | Negative _ -> finish (Done (Error Errno.ENOENT))
            | Partial _ -> finish Legacy
            | Positive src_inode ->
              if
                Inode.is_dir src_inode
                || (not (Dlist.is_empty src.d_children))
                || Mount.is_mountpoint proc.Proc.ns po.mnt src
              then finish Legacy
              else begin
                match (writable_dir proc po, writable_dir proc pn) with
                | Error e, _ | _, Error e -> finish (Done (Error e))
                | Ok (), Ok () -> (
                  let target = Dcache.lookup d pn.dentry new_name in
                  match target with
                  | Some tgt when tgt == src ->
                    finish (Done (Ok ())) (* rename onto itself: no-op *)
                  | Some tgt
                    when dentry_is_positive tgt
                         || (not (dentry_is_negative tgt))
                         || not (Dlist.is_empty tgt.d_children) ->
                    (* displaced positive/partial targets carry nlink and
                       inode-cache bookkeeping — Legacy *)
                    finish Legacy
                  | _ -> (
                    let rename_lock = Dcache.rename_lock d in
                    Dcache_util.Seqcount.write_begin rename_lock;
                    ignore (Dcache.invalidate_structure d src);
                    let result =
                      src.d_sb.sb_fs.Fs.rename
                        (Inode.ino (dir_inode_exn po)) old_name
                        (Inode.ino (dir_inode_exn pn)) new_name
                    in
                    match result with
                    | Error e ->
                      Dcache_util.Seqcount.write_end rename_lock;
                      finish (Done (Error e))
                    | Ok () ->
                      refresh_dir_attr (dir_inode_exn po);
                      if not (po.dentry == pn.dentry) then
                        refresh_dir_attr (dir_inode_exn pn);
                      count proc "sharded_rename";
                      Dcache.bump_dir_gen po.dentry;
                      Dcache.bump_dir_gen pn.dentry;
                      (match target with
                      | Some tgt -> Dcache.unhash d tgt
                      | None -> ());
                      Dcache.d_move d src ~new_parent:pn.dentry ~new_name;
                      (* Keep the old name cached as a negative (§5.2). *)
                      if (kconfig proc).Config.aggressive_negative then
                        ignore
                          (Dcache.add_child d po.dentry old_name
                             (Negative Errno.ENOENT));
                      Dcache_util.Seqcount.write_end rename_lock;
                      finish (Done (Ok ()))))
              end)
        end
      | _ -> Legacy)
    | _ -> Legacy)

(* Callback invalidation through the parent stripe (§3.7): a netfs lease
   break evicts one cached name, and funnelling every break through the
   global write lock would reserialize exactly the workload the stripes
   exist for.  The target's direct children are guarded by its {e own-id}
   stripe, so the section needs parent + target stripes.  The target's id
   is only learnable under the parent stripe, and parent-then-child
   acquisition would invert [Locktab.lock2]'s index ordering — so the
   target is peeked under the parent stripe alone, both stripes are then
   taken in order, and the peek is re-validated before anything trusts it.
   Subtrees deeper than one level (grandchildren live under {e their}
   parents' stripes), mountpoints, and every other off-happy-path shape
   fall back to the write-locked implementation. *)
let sharded_invalidate proc path : unit attempt =
  let d = dcache proc in
  match Dcache.stripes d with
  | None -> Legacy
  | Some tab -> (
    match split_basename path with
    | None -> Legacy
    | Some (dirname, name) -> (
      match resolve_dir proc dirname with
      | None -> Legacy
      | Some pref ->
        let lock = Dcache.lock d in
        Rwlock.read_lock lock;
        let si = Locktab.index tab pref.dentry.d_id in
        Locktab.lock tab si;
        let peek =
          if dir_valid pref then Dcache.lookup d pref.dentry name else None
        in
        Locktab.unlock tab si;
        (match peek with
        | None ->
          Rwlock.read_unlock lock;
          Legacy
        | Some child0 ->
          let sj = Locktab.index tab child0.d_id in
          Locktab.lock2 tab si sj;
          let finish r =
            Locktab.unlock2 tab si sj;
            Rwlock.read_unlock lock;
            (match r with
            | Done _ ->
              note_lookup proc path;
              Dcache.reclaim_overflow d
            | Legacy -> ());
            r
          in
          (try crash_point (fun cs -> cs.cs_invalidate)
           with e ->
             Locktab.unlock2 tab si sj;
             Rwlock.read_unlock lock;
             raise e);
          if not (dir_valid pref) then finish Legacy
          else begin
            match Dcache.lookup d pref.dentry name with
            | Some child when child == child0 -> (
              match child.d_state with
              | Negative e -> finish (Done (Error e))
              | Partial _ -> finish Legacy
              | Positive _ ->
                let deep = ref false in
                Dcache.iter_children child (fun gc ->
                    if not (Dlist.is_empty gc.d_children) then deep := true);
                if !deep || Mount.is_mountpoint proc.Proc.ns pref.mnt child then
                  finish Legacy
                else begin
                  ignore (Dcache.invalidate_structure d child);
                  Dcache.unhash ~reclaim:true d child;
                  count proc "sharded_cb_invalidate";
                  finish (Done (Ok ()))
                end)
            | Some _ | None -> finish Legacy (* raced: re-resolve under the big lock *)
          end)))

(* mkdir through the parent stripe, modeled on [sharded_create]: every
   verdict the section relies on — the child's cached state, the parent's
   completeness — is recorded against the parent's own-id stripe by
   concurrent lockless probes, so holding that one stripe suffices.  A new
   directory is empty, so a promoted negative keeps its deep-negative
   children valid (§5.2), same as [instantiate]. *)
let sharded_mkdir ?start ~mode proc path : unit attempt =
  let d = dcache proc in
  match Dcache.stripes d with
  | None -> Legacy
  | Some tab -> (
    match split_basename path with
    | None -> Legacy
    | Some (dirname, name) -> (
      match resolve_dir ?start proc dirname with
      | None -> Legacy
      | Some pref ->
        let lock = Dcache.lock d in
        Rwlock.read_lock lock;
        let si = Locktab.index tab pref.dentry.d_id in
        Locktab.lock tab si;
        let finish r =
          Locktab.unlock tab si;
          Rwlock.read_unlock lock;
          (match r with
          | Done _ ->
            note_lookup proc path;
            Dcache.reclaim_overflow d
          | Legacy -> ());
          r
        in
        (try crash_point (fun cs -> cs.cs_mkdir)
         with e ->
           Locktab.unlock tab si;
           Rwlock.read_unlock lock;
           raise e);
        if not (dir_valid pref) then finish Legacy
        else begin
          let parent = pref.dentry in
          let existing = Dcache.lookup d parent name in
          match existing with
          | Some child when dentry_is_positive child ->
            finish (Done (Error Errno.EEXIST))
          | Some child when not (dentry_is_negative child) -> finish Legacy
          | None when not (Dcache.is_complete d parent) ->
            (* only a complete directory's absence verdict is authoritative
               (§5.1): an uncached name may still exist on the fs *)
            finish Legacy
          | existing -> (
            match writable_dir proc pref with
            | Error e -> finish (Done (Error e))
            | Ok () -> (
              let dir_inode = dir_inode_exn pref in
              match
                parent.d_sb.sb_fs.Fs.create (Inode.ino dir_inode) name
                  File_kind.Directory mode ~uid:(Cred.uid proc.Proc.cred)
                  ~gid:(Cred.gid proc.Proc.cred)
              with
              | Error e -> finish (Done (Error e))
              | Ok attr ->
                count proc "sharded_mkdir";
                count proc "create_neg_shortcut";
                if existing = None then count proc "complete_dir_negative";
                Inode.bump_nlink dir_inode 1;
                refresh_dir_attr dir_inode;
                let inode = Dcache.iget parent.d_sb attr in
                Dcache.bump_dir_gen parent;
                let child =
                  match existing with
                  | Some child ->
                    Dcache.neg_forget d child;
                    child.d_state <- Positive inode;
                    child.d_target_sig <- None;
                    child
                  | None -> (
                    match Dcache.add_child d parent name (Positive inode) with
                    | Ok child -> child
                    | Error _ -> assert false)
                in
                (* A brand-new directory's (empty) listing is fully cached
                   (§5.1). *)
                Dcache.set_complete d child;
                finish (Done (Ok ()))))
        end))

(* rmdir through parent + target stripes, with [sharded_invalidate]'s
   peek-then-lock2 shape: the target's direct children (cached names inside
   the removed directory) are guarded by its own-id stripe, and the id is
   only learnable under the parent stripe, so the target is peeked, both
   stripes are taken in index order, and the peek is re-validated.
   Grandchildren with children of their own, mountpoints and partial
   dentries fall back to the write-locked implementation. *)
let sharded_rmdir proc path : unit attempt =
  let d = dcache proc in
  match Dcache.stripes d with
  | None -> Legacy
  | Some tab -> (
    match split_basename path with
    | None -> Legacy
    | Some (dirname, name) -> (
      match resolve_dir proc dirname with
      | None -> Legacy
      | Some pref ->
        let lock = Dcache.lock d in
        Rwlock.read_lock lock;
        let si = Locktab.index tab pref.dentry.d_id in
        Locktab.lock tab si;
        let peek =
          if dir_valid pref then Dcache.lookup d pref.dentry name else None
        in
        Locktab.unlock tab si;
        (match peek with
        | None ->
          Rwlock.read_unlock lock;
          Legacy (* uncached: the fill needs the slowpath *)
        | Some child0 ->
          let sj = Locktab.index tab child0.d_id in
          Locktab.lock2 tab si sj;
          let finish r =
            Locktab.unlock2 tab si sj;
            Rwlock.read_unlock lock;
            (match r with
            | Done _ ->
              note_lookup proc path;
              Dcache.reclaim_overflow d
            | Legacy -> ());
            r
          in
          (try crash_point (fun cs -> cs.cs_rmdir)
           with e ->
             Locktab.unlock2 tab si sj;
             Rwlock.read_unlock lock;
             raise e);
          if not (dir_valid pref) then finish Legacy
          else begin
            match Dcache.lookup d pref.dentry name with
            | Some child when child == child0 -> (
              match child.d_state with
              | Negative e -> finish (Done (Error e))
              | Partial _ -> finish Legacy
              | Positive child_inode ->
                if not (Inode.is_dir child_inode) then
                  finish (Done (Error Errno.ENOTDIR))
                else if Mount.is_mountpoint proc.Proc.ns pref.mnt child then
                  finish Legacy (* the sequential path reports EBUSY *)
                else begin
                  let deep = ref false in
                  Dcache.iter_children child (fun gc ->
                      if not (Dlist.is_empty gc.d_children) then deep := true);
                  if !deep then finish Legacy
                  else begin
                    match writable_dir proc pref with
                    | Error e -> finish (Done (Error e))
                    | Ok () -> (
                      match
                        pref.dentry.d_sb.sb_fs.Fs.rmdir
                          (Inode.ino (dir_inode_exn pref)) name
                      with
                      | Error e -> finish (Done (Error e))
                      | Ok () ->
                        count proc "sharded_rmdir";
                        Dcache.bump_dir_gen pref.dentry;
                        Inode.bump_nlink (dir_inode_exn pref) (-1);
                        refresh_dir_attr (dir_inode_exn pref);
                        Dcache.iforget child.d_sb (Inode.ino child_inode);
                        Dcache.invalidate_structure d child |> ignore;
                        Dcache.note_unlinked d child;
                        finish (Done (Ok ())))
                  end
                end)
            | Some _ | None -> finish Legacy (* raced: re-resolve under the big lock *)
          end)))

let rec do_open ?(mode = Mode.default_file) ?start proc path flags =
  let follow = not (flag_mem Proc.O_NOFOLLOW flags) in
  if not (flag_mem Proc.O_CREAT flags) then
    resolve_with ?start proc path
      ~flags:(lookup_flags ~follow ~must_dir:(flag_mem Proc.O_DIRECTORY flags) ())
      ~within:(finish_open proc flags)
  else begin
    match sharded_create ?start ~mode proc path flags with
    | Done r -> r
    | Legacy ->
    let result =
      with_write proc (fun () ->
          let* p = resolve_parent_locked proc path in
          match p.Walk.child with
          | Some child when dentry_is_positive child -> (
            if flag_mem Proc.O_EXCL flags then Error Errno.EEXIST
            else begin
              match dentry_kind child with
              | Some File_kind.Symlink when follow ->
                (* Re-resolve the full path following the trailing link. *)
                Ok `Follow_symlink
              | _ ->
                let target = Mount.traverse_mounts { p.Walk.parent with dentry = child } in
                Result.map (fun fd -> `Opened fd) (finish_open proc flags target)
            end)
          | _ ->
            let* () = check_write_dir proc p in
            let* dir_inode = parent_dir_inode p in
            let* attr =
              map_fs_result
                (p.Walk.parent.dentry.d_sb.sb_fs.Fs.create (Inode.ino dir_inode) p.Walk.last
                   File_kind.Regular mode ~uid:(Cred.uid proc.Proc.cred)
                   ~gid:(Cred.gid proc.Proc.cred))
            in
            refresh_dir_attr dir_inode;
            count proc "files_created";
            let child = instantiate proc p attr in
            Result.map
              (fun fd -> `Opened fd)
              (finish_open proc flags { p.Walk.parent with dentry = child }))
    in
    match result with
    | Ok (`Opened fd) -> Ok fd
    | Ok `Follow_symlink -> do_open ~mode ?start proc path (List.filter (( <> ) Proc.O_CREAT) flags)
    | Error _ as e -> e
  end

let openf ?mode proc path flags =
  Systime.timed Systime.Open (fun () ->
      sys proc "sys_open";
      do_open ?mode proc path flags)

let openat ?mode proc dirfd path flags =
  Systime.timed Systime.Open (fun () ->
      sys proc "sys_openat";
      let* fd = Proc.find_fd proc dirfd in
      do_open ?mode ~start:fd.Proc.fd_ref proc path flags)

let close proc fdnum =
  sys proc "sys_close";
  let* fd = Proc.remove_fd proc fdnum in
  Dcache.dput fd.Proc.fd_ref.dentry;
  let inode = fd.Proc.fd_inode in
  (Inode.fs inode).Fs.unpin_inode (Inode.ino inode);
  Ok ()

let read proc fdnum len =
  sys proc "sys_read";
  let* fd = Proc.find_fd proc fdnum in
  if not fd.Proc.fd_readable then Error Errno.EBADF
  else begin
    let inode = fd.Proc.fd_inode in
    let* data = (Inode.fs inode).Fs.read (Inode.ino inode) ~off:fd.Proc.fd_pos ~len in
    fd.Proc.fd_pos <- fd.Proc.fd_pos + String.length data;
    Ok data
  end

let pread proc fdnum ~off ~len =
  sys proc "sys_pread";
  let* fd = Proc.find_fd proc fdnum in
  if not fd.Proc.fd_readable then Error Errno.EBADF
  else begin
    let inode = fd.Proc.fd_inode in
    (Inode.fs inode).Fs.read (Inode.ino inode) ~off ~len
  end

let do_write (fd : Proc.fd) ~off data =
  if not fd.Proc.fd_writable then Error Errno.EBADF
  else begin
    let inode = fd.Proc.fd_inode in
    let* written = (Inode.fs inode).Fs.write (Inode.ino inode) ~off data in
    Inode.note_size inode (max (Inode.attr inode).Attr.size (off + written));
    Ok written
  end

let write proc fdnum data =
  sys proc "sys_write";
  let* fd = Proc.find_fd proc fdnum in
  let off =
    if fd.Proc.fd_append then (Inode.attr fd.Proc.fd_inode).Attr.size else fd.Proc.fd_pos
  in
  let* written = do_write fd ~off data in
  fd.Proc.fd_pos <- off + written;
  Ok written

let pwrite proc fdnum ~off data =
  sys proc "sys_pwrite";
  let* fd = Proc.find_fd proc fdnum in
  do_write fd ~off data

(* --- directory streams (§5.1) --- *)

let dirent_of_child d =
  match d.d_state with
  | Negative _ -> None
  | Partial { p_ino; p_kind } -> Some { Fs.name = d.d_name; ino = p_ino; kind = p_kind }
  | Positive inode ->
    let attr = Inode.attr inode in
    Some { Fs.name = d.d_name; ino = attr.Attr.ino; kind = attr.Attr.kind }

let dummy_dirent = { Fs.name = ""; ino = 0; kind = File_kind.Regular }

(* Single-traversal snapshot of a complete directory's cached listing:
   size the array from the child-list length and fill it in one pass.
   (This path used to build a list, reverse it and convert to an array —
   three traversals per listing.)  Caller holds the directory's stripe or
   the write lock. *)
let listing_of_children dir =
  let buf = Array.make (Dlist.length dir.d_children) dummy_dirent in
  let n = ref 0 in
  Dcache.iter_children dir (fun child ->
      match dirent_of_child child with
      | Some entry ->
        buf.(!n) <- entry;
        incr n
      | None -> ());
  if !n = Array.length buf then buf else Array.sub buf 0 !n

let dir_stream_of (fd : Proc.fd) =
  match fd.Proc.fd_dir with
  | Some s -> s
  | None ->
    let s =
      { Proc.entries = None; index = 0; eligible = true; from_cache = false;
        snapshot_gen = 0 }
    in
    fd.Proc.fd_dir <- Some s;
    s

(* Deferred completeness promotion for a drained [getdents] stream: the
   eligibility checks at the call site ran unlocked, so the generation is
   revalidated under the directory's own-id stripe before the listing is
   cached (§5.1).  Never the global write lock on sharded configurations. *)
let promote_listing proc dir entries snapshot_gen =
  Readdir.with_dir_stripe proc dir (fun () ->
      if Readdir.dir_live dir && dir.d_dir_gen = snapshot_gen then
        ignore (Readdir.promote_listing_locked proc dir entries));
  Dcache.reclaim_overflow (dcache proc)

(* Solaris-style DNLC mode: a separate listing cache that serves repeated
   readdirs but feeds nothing back into the dcache.  A baseline model —
   kept under the write lock as before. *)
let getdents_dnlc proc (fd : Proc.fd) want =
  with_write proc (fun () ->
      let dir = fd.Proc.fd_ref.dentry in
      let stream = dir_stream_of fd in
      let dnlc = Kernel.dnlc proc.Proc.kernel in
      let* entries =
        match stream.Proc.entries with
        | Some entries -> Ok entries
        | None ->
          stream.Proc.snapshot_gen <- dir.d_dir_gen;
          let* entries =
            match Hashtbl.find_opt dnlc dir.d_id with
            | Some (gen, entries) when gen = dir.d_dir_gen ->
              count proc "readdir_from_dnlc";
              stream.Proc.from_cache <- true;
              Ok entries
            | _ ->
              count proc "readdir_from_fs";
              stream.Proc.from_cache <- false;
              let inode = fd.Proc.fd_inode in
              let* listing = (Inode.fs inode).Fs.readdir (Inode.ino inode) in
              Ok (Array.of_list listing)
          in
          stream.Proc.entries <- Some entries;
          Ok entries
      in
      let n = Array.length entries in
      let take = max 0 (min want (n - stream.Proc.index)) in
      let chunk = Array.to_list (Array.sub entries stream.Proc.index take) in
      stream.Proc.index <- stream.Proc.index + take;
      (if
         stream.Proc.index >= n && stream.Proc.eligible
         && (not stream.Proc.from_cache)
         && dir.d_dir_gen = stream.Proc.snapshot_gen
       then Hashtbl.replace dnlc dir.d_id (stream.Proc.snapshot_gen, entries));
      Ok chunk)

let getdents proc fdnum want =
  sys proc "sys_getdents";
  let* fd = Proc.find_fd proc fdnum in
  if not (Inode.is_dir fd.Proc.fd_inode) then Error Errno.ENOTDIR
  else if (kconfig proc).Config.dnlc_style_completeness then
    getdents_dnlc proc fd want
  else begin
    let d = dcache proc in
    let dir = fd.Proc.fd_ref.dentry in
    let stream = dir_stream_of fd in
    let* entries =
      match stream.Proc.entries with
      | Some entries -> Ok entries
      | None ->
        (* Capture the generation with the snapshot: completion later is
           only valid if no mutation happened since this point. *)
        stream.Proc.snapshot_gen <- dir.d_dir_gen;
        let cached =
          (* A complete directory's cached children are the listing;
             snapshot them under its own-id stripe, not the global write
             lock, so concurrent listings of different directories don't
             serialize (§5.1). *)
          Readdir.with_dir_stripe proc dir (fun () ->
              if Dcache.is_complete d dir then Some (listing_of_children dir)
              else None)
        in
        let* entries =
          match cached with
          | Some entries ->
            count proc "readdir_from_cache";
            stream.Proc.from_cache <- true;
            Ok entries
          | None ->
            count proc "readdir_from_fs";
            stream.Proc.from_cache <- false;
            let inode = fd.Proc.fd_inode in
            let* listing = (Inode.fs inode).Fs.readdir (Inode.ino inode) in
            Ok (Array.of_list listing)
        in
        stream.Proc.entries <- Some entries;
        Ok entries
    in
    let n = Array.length entries in
    let take = max 0 (min want (n - stream.Proc.index)) in
    let chunk = Array.to_list (Array.sub entries stream.Proc.index take) in
    stream.Proc.index <- stream.Proc.index + take;
    (* Sequence completed without a seek, from the fs, and the directory
       did not change under us: cache the children and mark complete. *)
    (if
       stream.Proc.index >= n && stream.Proc.eligible
       && (not stream.Proc.from_cache)
       && (kconfig proc).Config.dir_completeness
       && dir.d_dir_gen = stream.Proc.snapshot_gen
     then promote_listing proc dir entries stream.Proc.snapshot_gen);
    Ok chunk
  end

(* --- scratch readdir (§5.1): whole listings, zero words warm --- *)

exception Readdir_errno = Readdir.Readdir_errno

(** Fill the per-process dirent scratch with the full listing of the open
    directory [fdnum]; returns the entry count.  Entries are readable
    through [proc.Proc.dirents] (parallel name/ino/kind arrays) until the
    next scratch-filling call on the same process.  A warm call — sharded
    configuration, DIR_COMPLETE directory — is lockless and performs zero
    minor-heap allocation; see {!Readdir}.  @raise Readdir_errno instead
    of boxing a [result] (two words) on that path. *)
let readdir_fill proc fdnum =
  Counter.bump proc.Proc.c_scratch_sys;
  if Profiler.span_enter () <> 0 then Trace.stamp Trace.ev_syscall 0;
  let fd =
    try Proc.find_fd_exn proc fdnum
    with Not_found -> raise (Readdir_errno Errno.EBADF)
  in
  if not (Inode.is_dir fd.Proc.fd_inode) then raise (Readdir_errno Errno.ENOTDIR);
  Readdir.fill proc fd.Proc.fd_inode fd.Proc.fd_ref.dentry ~base:0

let lseek proc fdnum off =
  sys proc "sys_lseek";
  let* fd = Proc.find_fd proc fdnum in
  if off < 0 then Error Errno.EINVAL
  else begin
    (match fd.Proc.fd_dir with
    | Some stream ->
      if off = 0 then begin
        stream.Proc.entries <- None;
        stream.Proc.index <- 0;
        stream.Proc.eligible <- true;
        stream.Proc.from_cache <- false
      end
      else begin
        stream.Proc.index <- off;
        stream.Proc.eligible <- false
      end
    | None -> ());
    fd.Proc.fd_pos <- off;
    Ok off
  end

let truncate proc path size =
  sys proc "sys_truncate";
  if size < 0 then Error Errno.EINVAL
  else
    resolve_with proc path ~within:(fun ref_ ->
        let* inode = positive_inode ref_.dentry in
        if not (File_kind.equal (Inode.kind inode) File_kind.Regular) then
          Error Errno.EINVAL
        else if ref_.mnt.mnt_readonly then Error Errno.EROFS
        else begin
          let* () = permission proc inode Access.may_write in
          Inode.setattr inode { Fs.no_setattr with Fs.set_size = Some size }
        end)

(* --- namespace mutations --- *)

let mkdir ?(mode = Mode.default_dir) proc path =
  sys proc "sys_mkdir";
  match sharded_mkdir ~mode proc path with
  | Done r -> r
  | Legacy ->
  with_write proc (fun () ->
      let* p = resolve_parent_locked proc path in
      match p.Walk.child with
      | Some child when dentry_is_positive child -> Error Errno.EEXIST
      | _ ->
        let* () = check_write_dir proc p in
        let* dir_inode = parent_dir_inode p in
        let* attr =
          map_fs_result
            (p.Walk.parent.dentry.d_sb.sb_fs.Fs.create (Inode.ino dir_inode) p.Walk.last
               File_kind.Directory mode ~uid:(Cred.uid proc.Proc.cred)
               ~gid:(Cred.gid proc.Proc.cred))
        in
        Inode.bump_nlink dir_inode 1;
        refresh_dir_attr dir_inode;
        let child = instantiate proc p attr in
        (* A brand-new directory's (empty) listing is fully cached (§5.1). *)
        Dcache.set_complete (dcache proc) child;
        Ok ())

let check_not_mountpoint proc (p : Walk.parent_result) child =
  if Mount.is_mountpoint proc.Proc.ns p.Walk.parent.mnt child then Error Errno.EBUSY
  else Ok ()

let unlink proc path =
  Systime.timed Systime.Unlink (fun () ->
      sys proc "sys_unlink";
      match sharded_unlink proc path with
      | Done r -> r
      | Legacy ->
      with_write proc (fun () ->
          let* p = resolve_parent_locked proc path in
          match p.Walk.child with
          | None -> Error Errno.ENOENT
          | Some child -> (
            match child.d_state with
            | Negative e -> Error e
            | Partial _ | Positive _ ->
              if dentry_is_dir child then Error Errno.EISDIR
              else begin
                let* () = check_not_mountpoint proc p child in
                let* () = check_write_dir proc p in
                let* dir_inode = parent_dir_inode p in
                let* child_inode = positive_inode child in
                let* () =
                  map_fs_result
                    (p.Walk.parent.dentry.d_sb.sb_fs.Fs.unlink (Inode.ino dir_inode)
                       p.Walk.last)
                in
                refresh_dir_attr dir_inode;
                Dcache.bump_dir_gen p.Walk.parent.dentry;
                Inode.bump_nlink child_inode (-1);
                if (Inode.attr child_inode).Attr.nlink <= 0 then
                  Dcache.iforget child.d_sb (Inode.ino child_inode);
                Dcache.note_unlinked (dcache proc) child;
                Ok ()
              end)))

let rmdir proc path =
  sys proc "sys_rmdir";
  match sharded_rmdir proc path with
  | Done r -> r
  | Legacy ->
  with_write proc (fun () ->
      let* p = resolve_parent_locked proc path in
      match p.Walk.child with
      | None -> Error Errno.ENOENT
      | Some child -> (
        match child.d_state with
        | Negative e -> Error e
        | Partial _ | Positive _ ->
          if not (dentry_is_dir child) then Error Errno.ENOTDIR
          else begin
            let* () = check_not_mountpoint proc p child in
            let* () = check_write_dir proc p in
            let* dir_inode = parent_dir_inode p in
            let* () =
              map_fs_result
                (p.Walk.parent.dentry.d_sb.sb_fs.Fs.rmdir (Inode.ino dir_inode) p.Walk.last)
            in
            Dcache.bump_dir_gen p.Walk.parent.dentry;
            Inode.bump_nlink dir_inode (-1);
            refresh_dir_attr dir_inode;
            (match dentry_inode child with
            | Some child_inode -> Dcache.iforget child.d_sb (Inode.ino child_inode)
            | None -> ());
            Dcache.invalidate_structure (dcache proc) child |> ignore;
            Dcache.note_unlinked (dcache proc) child;
            Ok ()
          end))

let rec is_ancestor ~(of_ : dentry) candidate =
  candidate == of_
  || (match of_.d_parent with Some parent -> is_ancestor ~of_:parent candidate | None -> false)

let rename proc old_path new_path =
  sys proc "sys_rename";
  match sharded_rename proc old_path new_path with
  | Done r -> r
  | Legacy ->
  with_write proc (fun () ->
      let d = dcache proc in
      let* po = resolve_parent_locked proc old_path in
      let* pn = resolve_parent_locked proc new_path in
      match po.Walk.child with
      | None -> Error Errno.ENOENT
      | Some src when dentry_is_negative src -> Error Errno.ENOENT
      | Some src ->
        if not (po.Walk.parent.dentry.d_sb == pn.Walk.parent.dentry.d_sb) then
          Error Errno.EXDEV
        else begin
          let* () = check_not_mountpoint proc po src in
          let* () = check_write_dir proc po in
          let* () = check_write_dir proc pn in
          let* src_inode = positive_inode src in
          let src_is_dir = Inode.is_dir src_inode in
          if src_is_dir && is_ancestor ~of_:pn.Walk.parent.dentry src then Error Errno.EINVAL
          else begin
            let target = pn.Walk.child in
            let target_same =
              match target with
              | Some tgt when dentry_is_positive tgt -> (
                match dentry_inode tgt with
                | Some tgt_inode -> Inode.ino tgt_inode = Inode.ino src_inode
                                    && tgt.d_sb == src.d_sb
                | None -> false)
              | _ -> false
            in
            let same_dentry =
              match target with Some tgt -> tgt == src | None -> false
            in
            if same_dentry then Ok () (* rename onto itself: POSIX no-op *)
            else if target_same then Ok ()
            else if src == po.Walk.parent.dentry then Error Errno.EINVAL
            else begin
              let* () =
                match target with
                | Some tgt when dentry_is_positive tgt ->
                  check_not_mountpoint proc pn tgt
                | _ -> Ok ()
              in
              let rename_lock = Dcache.rename_lock d in
              Dcache_util.Seqcount.write_begin rename_lock;
              (* Invalidate direct-lookup state under both the old and new
                 paths before mutating (§3.2). *)
              Dcache.invalidate_structure d src |> ignore;
              (match target with
              | Some tgt when dentry_is_positive tgt ->
                Dcache.invalidate_structure d tgt |> ignore
              | _ -> ());
              let* old_dir = parent_dir_inode po in
              let* new_dir = parent_dir_inode pn in
              let result =
                map_fs_result
                  (src.d_sb.sb_fs.Fs.rename (Inode.ino old_dir) po.Walk.last
                     (Inode.ino new_dir) pn.Walk.last)
              in
              match result with
              | Error _ as e ->
                Dcache_util.Seqcount.write_end rename_lock;
                e
              | Ok () ->
                Dcache.bump_dir_gen po.Walk.parent.dentry;
                Dcache.bump_dir_gen pn.Walk.parent.dentry;
                (match target with
                | Some tgt when dentry_is_positive tgt ->
                  (match dentry_inode tgt with
                  | Some tgt_inode ->
                    Inode.bump_nlink tgt_inode (-1);
                    if (Inode.attr tgt_inode).Attr.nlink <= 0 then
                      Dcache.iforget tgt.d_sb (Inode.ino tgt_inode)
                  | None -> ());
                  Dcache.unhash d tgt
                | Some tgt -> Dcache.unhash d tgt
                | None -> ());
                let old_name = po.Walk.last in
                Dcache.d_move d src ~new_parent:pn.Walk.parent.dentry ~new_name:pn.Walk.last;
                if src_is_dir && not (po.Walk.parent.dentry == pn.Walk.parent.dentry) then begin
                  Inode.bump_nlink old_dir (-1);
                  Inode.bump_nlink new_dir 1
                end;
                refresh_dir_attr old_dir;
                if not (po.Walk.parent.dentry == pn.Walk.parent.dentry) then
                  refresh_dir_attr new_dir;
                (* Keep the old name cached as a negative dentry (§5.2). *)
                if (kconfig proc).Config.aggressive_negative then
                  ignore
                    (Dcache.add_child d po.Walk.parent.dentry old_name
                       (Negative Errno.ENOENT));
                Dcache_util.Seqcount.write_end rename_lock;
                Ok ()
            end
          end
        end)

let link proc old_path new_path =
  sys proc "sys_link";
  with_write proc (fun () ->
      let* old_ref = resolve_locked ~flags:(lookup_flags ~follow:false ()) proc old_path in
      let* old_inode = positive_inode old_ref.dentry in
      if Inode.is_dir old_inode then Error Errno.EPERM
      else begin
        let* p = resolve_parent_locked proc new_path in
        if not (p.Walk.parent.dentry.d_sb == old_ref.dentry.d_sb) then Error Errno.EXDEV
        else begin
          match p.Walk.child with
          | Some child when dentry_is_positive child -> Error Errno.EEXIST
          | _ ->
            let* () = check_write_dir proc p in
            let* dir_inode = parent_dir_inode p in
            let* attr =
              map_fs_result
                (p.Walk.parent.dentry.d_sb.sb_fs.Fs.link (Inode.ino dir_inode) p.Walk.last
                   (Inode.ino old_inode))
            in
            refresh_dir_attr dir_inode;
            Inode.bump_nlink old_inode 1;
            ignore (instantiate proc p { attr with Attr.nlink = (Inode.attr old_inode).Attr.nlink });
            Ok ()
        end
      end)

let symlink proc ~target path =
  sys proc "sys_symlink";
  with_write proc (fun () ->
      let* p = resolve_parent_locked proc path in
      match p.Walk.child with
      | Some child when dentry_is_positive child -> Error Errno.EEXIST
      | _ ->
        let* () = check_write_dir proc p in
        let* dir_inode = parent_dir_inode p in
        let* attr =
          map_fs_result
            (p.Walk.parent.dentry.d_sb.sb_fs.Fs.symlink (Inode.ino dir_inode) p.Walk.last
               ~target ~uid:(Cred.uid proc.Proc.cred) ~gid:(Cred.gid proc.Proc.cred))
        in
        refresh_dir_attr dir_inode;
        ignore (instantiate proc p attr);
        Ok ())

let mkstemp ?prng ?(prefix = "tmp") proc dir =
  sys proc "sys_mkstemp";
  let prng =
    match prng with Some p -> p | None -> Dcache_util.Prng.create (Hashtbl.hash dir)
  in
  let rec attempt tries =
    if tries = 0 then Error Errno.EEXIST
    else begin
      let name = prefix ^ Dcache_util.Prng.string prng ~min_len:6 ~max_len:6 in
      let path = Vfs.Path.join dir name in
      match do_open proc path [ Proc.O_CREAT; Proc.O_EXCL; Proc.O_RDWR ] with
      | Ok fd -> Ok (fd, path)
      | Error Errno.EEXIST -> attempt (tries - 1)
      | Error _ as e -> e
    end
  in
  attempt 100

(* --- attributes and security --- *)

let owner_or_root proc (attr : Attr.t) =
  if Cred.uid proc.Proc.cred = 0 || Cred.uid proc.Proc.cred = attr.Attr.uid then Ok ()
  else Error Errno.EPERM

(* chmod/chown of a directory invalidates every cached descendant's memoized
   prefix check before the change lands (§3.2). *)
let setattr_path proc path ~privileged changes =
  with_write proc (fun () ->
      let* ref_ = resolve_locked proc path in
      let* inode = positive_inode ref_.dentry in
      let* () =
        if privileged then begin
          if Cred.uid proc.Proc.cred = 0 then Ok () else Error Errno.EPERM
        end
        else owner_or_root proc (Inode.attr inode)
      in
      if ref_.mnt.mnt_readonly then Error Errno.EROFS
      else begin
        if Inode.is_dir inode then
          Dcache.invalidate_permissions (dcache proc) ref_.dentry |> ignore;
        Inode.setattr inode changes
      end)

let chmod proc path mode =
  Systime.timed Systime.Chmod_chown (fun () ->
      sys proc "sys_chmod";
      setattr_path proc path ~privileged:false { Fs.no_setattr with Fs.set_mode = Some mode })

let chown proc path ~uid ~gid =
  Systime.timed Systime.Chmod_chown (fun () ->
      sys proc "sys_chown";
      setattr_path proc path ~privileged:true
        { Fs.no_setattr with Fs.set_uid = Some uid; set_gid = Some gid })

let set_label proc path label =
  sys proc "sys_set_label";
  setattr_path proc path ~privileged:true { Fs.no_setattr with Fs.set_label = Some label }

(* --- process state --- *)

let chdir proc path =
  sys proc "sys_chdir";
  resolve_with proc path ~flags:(lookup_flags ~must_dir:true ()) ~within:(fun ref_ ->
      let* inode = positive_inode ref_.dentry in
      let* () = permission proc inode Access.may_exec in
      Dcache.dget ref_.dentry;
      Ok ref_)
  |> Result.map (fun ref_ ->
         Dcache.dput proc.Proc.cwd.dentry;
         proc.Proc.cwd <- ref_)

let fchdir proc fdnum =
  sys proc "sys_fchdir";
  let* fd = Proc.find_fd proc fdnum in
  if not (Inode.is_dir fd.Proc.fd_inode) then Error Errno.ENOTDIR
  else begin
    Dcache.dget fd.Proc.fd_ref.dentry;
    Dcache.dput proc.Proc.cwd.dentry;
    proc.Proc.cwd <- fd.Proc.fd_ref;
    Ok ()
  end

let chroot proc path =
  sys proc "sys_chroot";
  if Cred.uid proc.Proc.cred <> 0 then Error Errno.EPERM
  else
    resolve_with proc path ~flags:(lookup_flags ~must_dir:true ()) ~within:(fun ref_ ->
        let* inode = positive_inode ref_.dentry in
        let* () = permission proc inode Access.may_exec in
        Dcache.dget ref_.dentry;
        Ok ref_)
    |> Result.map (fun ref_ ->
           Dcache.dput proc.Proc.root.dentry;
           proc.Proc.root <- ref_)

(* --- mounts --- *)

let mount_fs ?(readonly = false) ?(nosuid = false) proc fs path =
  sys proc "sys_mount";
  if Cred.uid proc.Proc.cred <> 0 then Error Errno.EPERM
  else begin
    with_write proc (fun () ->
        let* at = resolve_locked ~flags:(lookup_flags ~must_dir:true ()) proc path in
        let* sb = Kernel.make_superblock proc.Proc.kernel fs in
        (* Mount changes remove covered entries from the DLHT (§3.2/§4.3). *)
        Dcache.invalidate_structure (dcache proc) at.dentry |> ignore;
        let* _mount =
          Mount.attach proc.Proc.ns ~at ~root:(Dcache.sb_root sb) ~sb ~readonly ~nosuid
        in
        Ok ())
  end

let bind_mount ?(readonly = false) proc ~src ~dst =
  sys proc "sys_mount";
  if Cred.uid proc.Proc.cred <> 0 then Error Errno.EPERM
  else begin
    with_write proc (fun () ->
        let* src_ref = resolve_locked ~flags:(lookup_flags ~must_dir:true ()) proc src in
        let* dst_ref = resolve_locked ~flags:(lookup_flags ~must_dir:true ()) proc dst in
        Dcache.invalidate_structure (dcache proc) dst_ref.dentry |> ignore;
        let* _mount =
          Mount.attach proc.Proc.ns ~at:dst_ref ~root:src_ref.dentry
            ~sb:src_ref.dentry.d_sb ~readonly ~nosuid:false
        in
        Ok ())
  end

let umount proc path =
  sys proc "sys_umount";
  if Cred.uid proc.Proc.cred <> 0 then Error Errno.EPERM
  else begin
    with_write proc (fun () ->
        let* ref_ = resolve_locked ~flags:(lookup_flags ~must_dir:true ()) proc path in
        if not (ref_.dentry == ref_.mnt.mnt_root) then Error Errno.EINVAL
        else begin
          Dcache.invalidate_structure (dcache proc) ref_.mnt.mnt_root |> ignore;
          (match ref_.mnt.mnt_mountpoint with
          | Some (_, mountpoint) ->
            Dcache.invalidate_structure (dcache proc) mountpoint |> ignore
          | None -> ());
          Mount.detach proc.Proc.ns ref_.mnt
        end)
  end

let unshare_mount_ns proc =
  sys proc "sys_unshare";
  Dcache.with_write (dcache proc) (fun () ->
      let ns = Mount.clone_namespace proc.Proc.ns in
      proc.Proc.ns <- ns;
      let root = Mount.root ns in
      Dcache.dget root.dentry;
      Dcache.dget root.dentry;
      Dcache.dput proc.Proc.root.dentry;
      Dcache.dput proc.Proc.cwd.dentry;
      proc.Proc.root <- root;
      proc.Proc.cwd <- root;
      Ok ())

(* --- the *at() family: resolution relative to an open directory --- *)

let with_dirfd proc dirfd k =
  let* fd = Proc.find_fd proc dirfd in
  if not (Inode.is_dir fd.Proc.fd_inode) then Error Errno.ENOTDIR
  else k fd.Proc.fd_ref

let mkdirat ?mode proc dirfd path =
  sys proc "sys_mkdirat";
  with_dirfd proc dirfd (fun start ->
      match
        sharded_mkdir ~start ~mode:(Option.value mode ~default:Mode.default_dir) proc path
      with
      | Done r -> r
      | Legacy ->
      with_write proc (fun () ->
          let* p = resolve_parent_locked ~start proc path in
          match p.Walk.child with
          | Some child when dentry_is_positive child -> Error Errno.EEXIST
          | _ ->
            let* () = check_write_dir proc p in
            let* dir_inode = parent_dir_inode p in
            let* attr =
              map_fs_result
                (p.Walk.parent.dentry.d_sb.sb_fs.Fs.create (Inode.ino dir_inode) p.Walk.last
                   File_kind.Directory
                   (Option.value mode ~default:Mode.default_dir)
                   ~uid:(Cred.uid proc.Proc.cred) ~gid:(Cred.gid proc.Proc.cred))
            in
            Inode.bump_nlink dir_inode 1;
            refresh_dir_attr dir_inode;
            let child = instantiate proc p attr in
            Dcache.set_complete (dcache proc) child;
            Ok ()))

let unlinkat proc dirfd path =
  sys proc "sys_unlinkat";
  with_dirfd proc dirfd (fun start ->
      match sharded_unlink ~start proc path with
      | Done r -> r
      | Legacy ->
      with_write proc (fun () ->
          let* p = resolve_parent_locked ~start proc path in
          match p.Walk.child with
          | None -> Error Errno.ENOENT
          | Some child -> (
            match child.d_state with
            | Negative e -> Error e
            | Partial _ | Positive _ ->
              if dentry_is_dir child then Error Errno.EISDIR
              else begin
                let* () = check_not_mountpoint proc p child in
                let* () = check_write_dir proc p in
                let* dir_inode = parent_dir_inode p in
                let* child_inode = positive_inode child in
                let* () =
                  map_fs_result
                    (p.Walk.parent.dentry.d_sb.sb_fs.Fs.unlink (Inode.ino dir_inode)
                       p.Walk.last)
                in
                refresh_dir_attr dir_inode;
                Dcache.bump_dir_gen p.Walk.parent.dentry;
                Inode.bump_nlink child_inode (-1);
                if (Inode.attr child_inode).Attr.nlink <= 0 then
                  Dcache.iforget child.d_sb (Inode.ino child_inode);
                Dcache.note_unlinked (dcache proc) child;
                Ok ()
              end)))

let symlinkat proc ~target dirfd path =
  sys proc "sys_symlinkat";
  with_dirfd proc dirfd (fun start ->
      with_write proc (fun () ->
          let* p = resolve_parent_locked ~start proc path in
          match p.Walk.child with
          | Some child when dentry_is_positive child -> Error Errno.EEXIST
          | _ ->
            let* () = check_write_dir proc p in
            let* dir_inode = parent_dir_inode p in
            let* attr =
              map_fs_result
                (p.Walk.parent.dentry.d_sb.sb_fs.Fs.symlink (Inode.ino dir_inode)
                   p.Walk.last ~target ~uid:(Cred.uid proc.Proc.cred)
                   ~gid:(Cred.gid proc.Proc.cred))
            in
            refresh_dir_attr dir_inode;
            ignore (instantiate proc p attr);
            Ok ()))

let readlinkat proc dirfd path =
  sys proc "sys_readlinkat";
  with_dirfd proc dirfd (fun start ->
      let* ref_ = resolve ~start ~flags:(lookup_flags ~follow:false ()) proc path in
      let* inode = positive_inode ref_.dentry in
      if File_kind.equal (Inode.kind inode) File_kind.Symlink then Inode.symlink_target inode
      else Error Errno.EINVAL)

let faccessat proc dirfd path mask =
  Systime.timed Systime.Access_stat (fun () ->
      sys proc "sys_faccessat";
      with_dirfd proc dirfd (fun start ->
          resolve_with ~start proc path ~within:(fun ref_ ->
              let* inode = positive_inode ref_.dentry in
              permission proc inode mask)))

let getcwd proc =
  sys proc "sys_getcwd";
  let root = proc.Proc.root in
  let cwd = proc.Proc.cwd in
  if cwd.dentry.d_parent <> None && not cwd.dentry.d_hashed then
    (* the working directory was removed *)
    Error Errno.ENOENT
  else begin
    let rec build (r : path_ref) acc =
      if r.dentry == root.dentry && r.mnt == root.mnt then Ok acc
      else begin
        match Mount.follow_up r with
        | Some up -> build up acc
        | None -> (
          match r.dentry.d_parent with
          | Some parent -> build { r with dentry = parent } (r.dentry.d_name :: acc)
          | None -> Ok acc (* cwd outside the root (chrooted after chdir) *))
      end
    in
    let* comps = build cwd [] in
    Ok ("/" ^ String.concat "/" comps)
  end

(* Per-mount negative invalidation (§6.3, DragonFly-style): bump the
   superblock's negative generation so every cached negative on it lazily
   reads as a miss.  One integer store — no lock, no cache walk, and in
   particular not the global write lock a subtree invalidation would
   take. *)
let invalidate_negatives proc path =
  sys proc "sys_invalidate_negatives";
  let* ref_ = resolve proc path in
  Dcache.invalidate_negatives (dcache proc) ref_.dentry.d_sb;
  Ok ()

let invalidate_path proc path =
  sys proc "sys_invalidate_path";
  match sharded_invalidate proc path with
  | Done r -> r
  | Legacy ->
    with_write proc (fun () ->
        let* ref_ = resolve_locked ~flags:(lookup_flags ~follow:false ()) proc path in
        Dcache.invalidate_structure (dcache proc) ref_.dentry |> ignore;
        Dcache.unhash ~reclaim:true (dcache proc) ref_.dentry;
        Ok ())

(* --- convenience wrappers --- *)

let read_file proc path =
  let* fd = openf proc path [ Proc.O_RDONLY ] in
  let* attr = fstat proc fd in
  let* data = pread proc fd ~off:0 ~len:attr.Attr.size in
  let* () = close proc fd in
  Ok data

let write_file proc path data =
  let* fd = openf proc path [ Proc.O_CREAT; Proc.O_WRONLY; Proc.O_TRUNC ] in
  let* _ = write proc fd data in
  close proc fd

let readdir_path proc path =
  let* fd = openf proc path [ Proc.O_RDONLY; Proc.O_DIRECTORY ] in
  let rec drain acc =
    match getdents proc fd 128 with
    | Ok [] -> Ok (List.rev acc)
    | Ok chunk -> drain (List.rev_append chunk acc)
    | Error _ as e -> e
  in
  let result = drain [] in
  let* () = close proc fd in
  result

let mkdir_p proc path =
  let components = String.split_on_char '/' path |> List.filter (fun c -> c <> "") in
  let prefix = if Vfs.Path.is_absolute path then "/" else "" in
  let rec go base = function
    | [] -> Ok ()
    | comp :: rest -> (
      let current = if base = "" || base = "/" then base ^ comp else base ^ "/" ^ comp in
      match mkdir proc current with
      | Ok () | Error Errno.EEXIST -> go current rest
      | Error _ as e -> e)
  in
  go prefix components
