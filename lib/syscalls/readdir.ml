(** Cache-fed readdir into the per-process dirent scratch (§5.1).

    A DIR_COMPLETE directory's cached children {e are} its listing, so a
    warm readdir needs no backend call, no locks and no allocation: the
    warm path snapshots the dcache-wide write sequence, the directory's
    own-id stripe seqcount and the directory generation ([d_dir_gen]),
    walks the intrusive child list storing each entry as three parallel
    array writes into the process's preallocated {!Proc.dirent_scratch},
    then revalidates all three snapshots.  Any overlapping write section,
    any sharded mutation of this directory, and any readdir-visible change
    each bump one of the three counters, so a validated walk is a
    consistent point-in-time listing — the same §3.4 discipline the
    lockless lookup fastpath commits under.

    The cold path runs under the directory's own-id stripe (or the write
    lock when unsharded): it grows the scratch as needed, serves a
    complete directory from its cached children, and otherwise lists the
    backend and {e promotes} the result — caching unlisted names as
    [Partial] children and setting DIR_COMPLETE — so the next call is
    warm.  Promotion under the parent stripe rather than the global write
    lock is the point: concurrent listings of different directories
    proceed in parallel with each other and with sharded creates.

    This lives outside [Syscalls] because both the sequential front-end
    ([Syscalls.readdir_fill]) and the vectored ring ([Batch.push_readdir])
    share it, and [Batch] is linked before [Syscalls]. *)

open Dcache_types
open Dcache_vfs.Types
module Dcache = Dcache_vfs.Dcache
module Inode = Dcache_vfs.Inode
module Config = Dcache_vfs.Config
module Fs = Dcache_fs.Fs_intf
module Counter = Dcache_util.Stats.Counter
module Rwlock = Dcache_util.Rwlock
module Locktab = Dcache_util.Locktab
module Dlist = Dcache_util.Dlist
module Seqcount = Dcache_util.Seqcount
module Fault = Dcache_util.Fault

let dcache proc = Kernel.dcache proc.Proc.kernel
let kconfig proc = Kernel.config proc.Proc.kernel
let count proc name = Counter.incr (Kernel.counters proc.Proc.kernel) name

exception Readdir_errno of Errno.t
(** Error escape for {!fill}: boxing a [result] would put two words on the
    otherwise allocation-free warm path.  Raised cold, caught by thin
    wrappers. *)

(* Raised (constant, no allocation) when the optimistic walk would outgrow
   the scratch: growth allocates, so the locked path grows instead. *)
exception Scratch_overflow

(* Crash-fault site for the stripe-locked promotion section, registered by
   [Syscalls.install_crash_sites] under "syscalls.sharded_readdir" so it
   rides the same injector as the other sharded sections. *)
let crash_site : Fault.site option ref = ref None
let set_crash_site s = crash_site := Some s
let clear_crash_site () = crash_site := None

let[@inline] crash_point () =
  match !crash_site with None -> () | Some s -> Fault.crash_point s

(* Run [f] under whatever guards this directory's children, completeness
   bit and generation: the directory's own-id stripe (plus the rwlock read
   side) when sharded, the write lock otherwise.  Already write-locked
   callers — the batch slowpath phase runs its hooks under one
   [Dcache.with_write] — get [f] inline: the write lock excludes every
   stripe section wholesale. *)
let with_dir_stripe proc dir f =
  let d = dcache proc in
  let lock = Dcache.lock d in
  if Rwlock.write_held lock then f ()
  else begin
    match Dcache.stripes d with
    | Some tab ->
      Rwlock.read_lock lock;
      let si = Locktab.index tab dir.d_id in
      Locktab.lock tab si;
      (* Same unwind discipline as the sharded mutation sections: a leaked
         stripe leaves its seqcount odd and wedges every later probe. *)
      (try crash_point ()
       with e ->
         Locktab.unlock tab si;
         Rwlock.read_unlock lock;
         raise e);
      let r =
        try f ()
        with e ->
          Locktab.unlock tab si;
          Rwlock.read_unlock lock;
          raise e
      in
      Locktab.unlock tab si;
      Rwlock.read_unlock lock;
      r
    | None -> Dcache.with_write d f
  end

(* One intrusive pass over [dir]'s cached children into [ds] starting at
   slot [i]; returns the end slot.  Negative children are skipped — they
   are cached absence, not entries.  Everything here is field reads and
   [Array.unsafe_set] stores: the walk allocates nothing.  A torn list
   (concurrent splice) can only cut the walk short or revisit nodes; the
   [cap] check bounds it either way, and the caller's seqcount validation
   rejects whatever a race produced. *)
let rec scratch_walk ds cap node i =
  match node with
  | None -> i
  | Some n ->
    let child = Dlist.value n in
    let next = Dlist.next n in
    (match child.d_state with
    | Negative _ -> scratch_walk ds cap next i
    | Partial { p_ino; p_kind } ->
      if i >= cap then raise Scratch_overflow;
      Proc.scratch_set ds i child.d_name p_ino p_kind;
      scratch_walk ds cap next (i + 1)
    | Positive inode ->
      if i >= cap then raise Scratch_overflow;
      let attr = Inode.attr inode in
      Proc.scratch_set ds i child.d_name attr.Dcache_types.Attr.ino
        attr.Dcache_types.Attr.kind;
      scratch_walk ds cap next (i + 1))

(* One optimistic fill attempt.  Returns the end slot on success, [-1] on
   validation failure (retryable), [-2] on scratch overflow (the locked
   path must grow first). *)
let scratch_attempt d tab dir ds ~base =
  let ws = Dcache.write_seq d in
  let si = Locktab.index tab dir.d_id in
  let sq = Locktab.seq tab si in
  let vsnap = Seqcount.read_begin ws in
  let ssnap = Seqcount.read_begin sq in
  if vsnap land 1 <> 0 || ssnap land 1 <> 0 then -1
  else begin
    let gen = dir.d_dir_gen in
    if not dir.d_complete then -1
    else begin
      match
        scratch_walk ds (Proc.scratch_cap ds) (Dlist.peek_front dir.d_children)
          base
      with
      | exception Scratch_overflow -> -2
      | n ->
        (* Validation order matters: the walk's loads must all precede the
           re-reads.  Any concurrent write section (vsnap), any sharded
           mutation of this directory (ssnap) or any readdir-visible
           change (gen, completeness) invalidates the attempt. *)
        if
          Seqcount.read_validate ws vsnap
          && Seqcount.read_validate sq ssnap
          && dir.d_dir_gen = gen && dir.d_complete
        then n
        else -1
    end
  end

let scratch_retries = 4

let rec scratch_tries d tab dir ds ~base tries =
  if tries = 0 then -1
  else begin
    match scratch_attempt d tab dir ds ~base with
    | -1 -> scratch_tries d tab dir ds ~base (tries - 1)
    | n -> n (* end slot, or -2: retrying an overflow cannot help *)
  end

(* Locked fills: growth allowed, so these serve listings of any size. *)

let scratch_fill_children proc dir ~base =
  let ds = proc.Proc.dirents in
  Proc.scratch_grow ds (base + Dlist.length dir.d_children);
  let n = ref base in
  Dcache.iter_children dir (fun child ->
      match child.d_state with
      | Negative _ -> ()
      | Partial { p_ino; p_kind } ->
        Proc.scratch_set ds !n child.d_name p_ino p_kind;
        incr n
      | Positive inode ->
        let attr = Inode.attr inode in
        Proc.scratch_set ds !n child.d_name attr.Dcache_types.Attr.ino
          attr.Dcache_types.Attr.kind;
        incr n);
  !n

let scratch_fill_listing proc (listing : Fs.dirent list) ~base =
  let ds = proc.Proc.dirents in
  Proc.scratch_grow ds (base + List.length listing);
  List.fold_left
    (fun i (e : Fs.dirent) ->
      Proc.scratch_set ds i e.Fs.name e.Fs.ino e.Fs.kind;
      i + 1)
    base listing

(* Promote a backend listing into the dcache (§5.1): cache unlisted names
   as [Partial] children, and mark the directory DIR_COMPLETE unless a
   cached negative contradicts the listing (the conflict resolves through
   the coherence machinery, not here).  Returns whether the directory was
   marked complete.  Caller holds the directory's own-id stripe or the
   write lock and has revalidated the directory under it. *)
let promote_listing_locked proc dir (entries : Fs.dirent array) =
  let d = dcache proc in
  let safe = ref true in
  Array.iter
    (fun (entry : Fs.dirent) ->
      match Dcache.lookup d dir entry.Fs.name with
      | Some child -> if dentry_is_negative child then safe := false
      | None ->
        ignore
          (Dcache.add_child d dir entry.Fs.name
             (Partial { p_ino = entry.Fs.ino; p_kind = entry.Fs.kind })))
    entries;
  if !safe then begin
    Dcache.set_complete d dir;
    count proc "readdir_promoted"
  end;
  !safe

(* A directory is fit to serve/promote if it is still hashed (roots have
   no parent and are never hashed). *)
let dir_live dir = dir.d_parent = None || dir.d_hashed

let fill_locked proc inode dir ~base =
  let d = dcache proc in
  let r =
    with_dir_stripe proc dir (fun () ->
        if not (dir_live dir) then Error Errno.ENOENT
        else if Dcache.is_complete d dir then begin
          count proc "readdir_scratch_fill";
          count proc "readdir_from_cache";
          Ok (scratch_fill_children proc dir ~base)
        end
        else begin
          count proc "readdir_from_fs";
          match (Inode.fs inode).Fs.readdir (Inode.ino inode) with
          | Error e -> Error e
          | Ok listing ->
            let complete =
              (kconfig proc).Config.dir_completeness
              && promote_listing_locked proc dir (Array.of_list listing)
            in
            count proc "readdir_scratch_fill";
            if complete then Ok (scratch_fill_children proc dir ~base)
            else Ok (scratch_fill_listing proc listing ~base)
        end)
  in
  Dcache.reclaim_overflow d;
  r

(** Fill [proc]'s dirent scratch with the listing of the open directory
    [dir] (inode [inode]) starting at slot [base]; returns the end slot
    and sets [ds_n] to it.  Entries are readable through
    [proc.Proc.dirents] until the next scratch-filling call on the same
    process.  Raises {!Readdir_errno} on backend failure.  The warm path
    (sharded config, completeness on, DIR_COMPLETE directory) is lockless
    and allocation-free. *)
let fill proc inode dir ~base =
  let d = dcache proc in
  let ds = proc.Proc.dirents in
  let n =
    match Dcache.stripes d with
    | Some tab when (kconfig proc).Config.dir_completeness ->
      scratch_tries d tab dir ds ~base scratch_retries
    | _ -> -1
  in
  if n >= 0 then begin
    ds.Proc.ds_n <- n;
    Counter.bump proc.Proc.c_scratch_warm;
    n
  end
  else begin
    match fill_locked proc inode dir ~base with
    | Ok n ->
      ds.Proc.ds_n <- n;
      n
    | Error e -> raise (Readdir_errno e)
  end
