(** A /proc-style introspection file system for the simulated kernel.

    Mount it anywhere (conventionally [/proc]) to read live kernel state
    through the ordinary file API — dogfooding the pseudo file system
    substrate the paper's negative-dentry discussion covers (§5.2):

    - [dcache/stats]      — all kernel counters, one [name value] per line
    - [dcache/summary]    — dentry count and primary-table occupancy
    - [dcache/config]     — the active directory-cache configuration
    - [dcache/histograms] — per-outcome-class lookup latency (p50/p90/p99)
    - [dcache/causes]     — cause-attributed miss/invalidation counters
    - [dcache/trace]      — event-ring status plus the newest events
    - [faults]            — fault-injector sites: schedule/arrivals/injected
    - [netfs/rpc]         — netfs RPC totals (drops/retries/giveups/DRC/
                            partitions/crashes/fenced) plus exact per-site
                            fault arrival/injection tallies; a server with
                            zero traffic renders all-zero figures, never
                            the absent-server placeholder
    - [netfs/leases]      — the lease book (§3.7): epoch, grace, grant
                            gauges, and per-client grant/gate/break lines
    - [version]           — build banner

    [faults]/[netfs] attach the corresponding subsystems; without them the
    files report that nothing is attached.  Trace state is process-global,
    so [dcache/histograms]/[causes]/[trace] read the same figures from any
    kernel's procfs. *)

val make :
  ?faults:Dcache_util.Fault.t ->
  ?netfs:Dcache_fs.Netfs.server ->
  Kernel.t ->
  Dcache_fs.Fs_intf.t
