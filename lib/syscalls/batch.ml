(** Vectored submission/completion front-end (§3.9).

    A preallocated SQ/CQ ring pair over a process: callers enqueue up to
    [cap] metadata probes (stat / lstat / access), call {!submit}, and read
    completions back out of the CQ arrays.  Everything on the warm path —
    the per-op closures, the walk context, the result slots — is allocated
    once at {!create}; a warm all-hit submit performs {e zero} minor-heap
    allocation and zero rwlock acquisitions, and shares one seqcount
    validation window, one span mint and one lease-gate consult across the
    whole run (see {!Dcache_core.Fastpath.probe_batch}). *)

open Dcache_types
open Dcache_vfs.Types
module Walk = Dcache_vfs.Walk
module Dcache = Dcache_vfs.Dcache
module Inode = Dcache_vfs.Inode
module Lsm = Dcache_cred.Lsm
module Fastpath = Dcache_core.Fastpath
module Counter = Dcache_util.Stats.Counter
module Trace = Dcache_util.Trace
module Profiler = Dcache_util.Profiler

(* SQ op codes (int, not a variant: the SQ is a struct-of-arrays and an
   immediate opcode keeps pushes store-only). *)
let op_stat = 0
let op_lstat = 1
let op_access = 2
let op_readdir = 3

type state = {
  proc : Proc.t;
  cap : int;
  (* submission ring: struct of arrays, filled by the push_* calls *)
  sq_op : int array;
  sq_path : string array;
  sq_mask : Access.t array;
  mutable sq_n : int;
  (* cursor: index of the op the fastpath is currently probing; [prepare]
     advances it so the shared [within] closure knows which op it serves *)
  mutable cur : int;
  (* completion ring *)
  cq_ok : bool array;
  cq_err : Errno.t array;
  cq_attr : Attr.t array;
  (* readdir completions land in the process's dirent scratch; each slot
     records its [off, off+len) window.  The append cursor resets at
     submit, so one submission's listings share the scratch (§5.1). *)
  cq_dir_off : int array;
  cq_dir_len : int array;
  mutable dir_cursor : int;
  (* phase-2 scratch for {!Fastpath.probe_batch} *)
  deferred : int array;
  (* cached walk context, revalidated by physical equality each submit *)
  mutable ctx : Walk.ctx;
  (* counter cells cached at create: the name-based lookups allocate an
     option per call, and submit must stay word-free *)
  c_submit : Counter.cell;
  c_ops : Counter.cell;
  c_lookup : Counter.cell;
}

type t = {
  s : state;
  (* the five hooks handed to [probe_batch], allocated once here so a warm
     submit closes over nothing *)
  path_of : int -> string;
  flags_of : int -> Walk.flags;
  prepare : int -> unit;
  within : mount -> dentry -> (unit, Errno.t) result;
  complete : int -> (unit, Errno.t) result -> unit;
}

let ok_unit : (unit, Errno.t) result = Ok ()
let nofollow_flags = { Walk.follow_last = false; must_dir = false; collect = false }

(* Mirror of [Syscalls.do_stat]'s result match: positive → attr, anything
   still cached short of positive → ENOENT.  No promotion — exactly what
   the sequential stat does. *)
let stat_within s mnt dentry =
  ignore (mnt : mount);
  match dentry.d_state with
  | Positive inode ->
    s.cq_attr.(s.cur) <- Inode.attr inode;
    ok_unit
  | Partial _ | Negative _ -> Errno.to_error Errno.ENOENT

(* Mirror of [Syscalls.access]'s within: positive_inode (promoting a
   partial, as the sequential path does) then the LSM permission stack.
   The promotion branch allocates, but is unreachable on a warm all-hit
   batch — warm dentries are positive. *)
let access_within s mnt dentry =
  ignore (mnt : mount);
  let check inode =
    let reg = Kernel.registry s.proc.Proc.kernel in
    if Lsm.permission reg s.proc.Proc.cred (Inode.attr inode) s.sq_mask.(s.cur) then begin
      s.cq_attr.(s.cur) <- Inode.attr inode;
      ok_unit
    end
    else Errno.to_error Errno.EACCES
  in
  match dentry.d_state with
  | Positive inode -> check inode
  | Partial _ -> (
    match Dcache.promote dentry with
    | Ok inode -> check inode
    | Error e -> Errno.to_error e)
  | Negative e -> Errno.to_error e

(* Readdir into the process's dirent scratch at the append cursor.  The
   shared probe window validates the {e path}; the listing itself rides
   {!Readdir.fill}'s own discipline — warm DIR_COMPLETE listings are the
   lockless seqcount-validated walk (word-free), cold ones take the
   directory's stripe and promote.  Both are safe from this hook: in
   phase 1 it runs with no lock held, and in phase 2 (under the batch's
   single write lock) [Readdir] detects the held write side and runs its
   locked body inline.  Scratch writes are idempotent, so an op re-probed
   after a batch split just overwrites its own window. *)
let readdir_within s mnt dentry =
  ignore (mnt : mount);
  match dentry.d_state with
  | Positive inode ->
    if not (Inode.is_dir inode) then Errno.to_error Errno.ENOTDIR
    else begin
      let base = s.dir_cursor in
      match Readdir.fill s.proc inode dentry ~base with
      | n ->
        s.cq_dir_off.(s.cur) <- base;
        s.cq_dir_len.(s.cur) <- n - base;
        s.dir_cursor <- n;
        ok_unit
      | exception Readdir.Readdir_errno e -> Errno.to_error e
    end
  | Partial _ | Negative _ -> Errno.to_error Errno.ENOENT

let create ?(cap = 128) proc =
  if cap <= 0 then invalid_arg "Batch.create: cap must be positive";
  let filler_attr =
    match (Kernel.root proc.Proc.kernel).dentry.d_state with
    | Positive inode -> Inode.attr inode
    | Partial _ | Negative _ -> assert false
  in
  let cs = Kernel.counters proc.Proc.kernel in
  let s =
    {
      proc;
      cap;
      sq_op = Array.make cap op_stat;
      sq_path = Array.make cap "";
      sq_mask = Array.make cap Access.may_read;
      sq_n = 0;
      cur = 0;
      cq_ok = Array.make cap false;
      cq_err = Array.make cap Errno.ENOENT;
      cq_attr = Array.make cap filler_attr;
      cq_dir_off = Array.make cap 0;
      cq_dir_len = Array.make cap 0;
      dir_cursor = 0;
      deferred = Array.make cap 0;
      ctx = Proc.walk_ctx proc;
      c_submit = Counter.cell cs "batch_submit";
      c_ops = Counter.cell cs "batch_ops";
      c_lookup = Counter.cell cs "path_lookup";
    }
  in
  {
    s;
    path_of = (fun i -> s.sq_path.(i));
    flags_of =
      (fun i -> if s.sq_op.(i) = op_lstat then nofollow_flags else Walk.default_flags);
    prepare = (fun i -> s.cur <- i);
    within =
      (fun mnt dentry ->
        let op = s.sq_op.(s.cur) in
        if op = op_access then access_within s mnt dentry
        else if op = op_readdir then readdir_within s mnt dentry
        else stat_within s mnt dentry);
    complete =
      (fun i r ->
        match r with
        | Ok () -> s.cq_ok.(i) <- true
        | Error e ->
          s.cq_ok.(i) <- false;
          s.cq_err.(i) <- e);
  }

let capacity t = t.s.cap
let length t = t.s.sq_n
let reset t = t.s.sq_n <- 0

let push t op path mask =
  let s = t.s in
  if s.sq_n >= s.cap then -1
  else begin
    let slot = s.sq_n in
    s.sq_op.(slot) <- op;
    s.sq_path.(slot) <- path;
    s.sq_mask.(slot) <- mask;
    s.sq_n <- slot + 1;
    slot
  end

let push_stat t path = push t op_stat path Access.may_read
let push_lstat t path = push t op_lstat path Access.may_read
let push_access t path mask = push t op_access path mask
let push_readdir t path = push t op_readdir path Access.may_read

(* The cached context goes stale when the process changes credentials,
   chroots, chdirs or switches namespace — all rare next to submits, all
   observable by physical equality on the record fields (Proc mutators
   replace, never mutate in place). *)
let ctx_fresh s =
  let c = s.ctx in
  c.Walk.cred == s.proc.Proc.cred
  && c.Walk.root == s.proc.Proc.root
  && c.Walk.cwd == s.proc.Proc.cwd
  && c.Walk.ns == s.proc.Proc.ns

let submit t =
  let s = t.s in
  let n = s.sq_n in
  if n > 0 then begin
    Counter.bump s.c_submit;
    Counter.bump_by s.c_ops n;
    (* One lookup count per op keeps the Table-1 style per-lookup stats
       comparable with the sequential front-end; the per-path byte and
       component tallies are skipped — they would cost a string scan per
       op on the zero-allocation path. *)
    Counter.bump_by s.c_lookup n;
    (* One span mint for the whole submission (§3.8): every op's stamps
       ride the same request-scoped span. *)
    if Profiler.span_enter () <> 0 then Trace.stamp Trace.ev_batch_submit n;
    (* Listings from the previous submission die here: the scratch is one
       append arena per submission. *)
    s.dir_cursor <- 0;
    if not (ctx_fresh s) then s.ctx <- Proc.walk_ctx s.proc;
    Fastpath.probe_batch
      (Kernel.fastpath s.proc.Proc.kernel)
      s.ctx ~n ~path:t.path_of ~flags:t.flags_of ~prepare:t.prepare ~within:t.within
      ~complete:t.complete ~deferred:s.deferred
  end

let submitted t i =
  if i < 0 || i >= t.s.sq_n then invalid_arg "Batch: slot out of range"

let ok t i =
  submitted t i;
  t.s.cq_ok.(i)

let errno t i =
  submitted t i;
  t.s.cq_err.(i)

let attr t i =
  submitted t i;
  t.s.cq_attr.(i)

let result t i =
  submitted t i;
  if t.s.cq_ok.(i) then Ok t.s.cq_attr.(i) else Error t.s.cq_err.(i)

let dir_len t i =
  submitted t i;
  t.s.cq_dir_len.(i)

let in_dir t i j =
  submitted t i;
  if j < 0 || j >= t.s.cq_dir_len.(i) then
    invalid_arg "Batch: dirent out of range";
  t.s.cq_dir_off.(i) + j

let dir_name t i j = t.s.proc.Proc.dirents.Proc.ds_names.(in_dir t i j)
let dir_ino t i j = t.s.proc.Proc.dirents.Proc.ds_inos.(in_dir t i j)
let dir_kind t i j = t.s.proc.Proc.dirents.Proc.ds_kinds.(in_dir t i j)
