(** Processes: credentials, root/cwd directory references, a mount
    namespace, and an open-file table. *)

open Dcache_vfs.Types

type open_flag =
  | O_RDONLY
  | O_WRONLY
  | O_RDWR
  | O_CREAT
  | O_EXCL
  | O_TRUNC
  | O_APPEND
  | O_NOFOLLOW
  | O_DIRECTORY

(** Directory-stream state for getdents: a snapshot of the listing, the
    cursor, and whether the sequence is still eligible to mark the directory
    complete (no intervening lseek, §5.1). *)
type dir_stream = {
  mutable entries : Dcache_fs.Fs_intf.dirent array option;
  mutable index : int;
  mutable eligible : bool;
  mutable from_cache : bool;
  mutable snapshot_gen : int;
      (** the directory's mutation generation when [entries] was captured *)
}

(** Preallocated per-process dirent result buffer (§5.1): the cache-fed
    readdir stores each entry as three parallel-array writes (name, ino,
    kind), so a warm DIR_COMPLETE listing allocates nothing after the
    first fill.  [ds_n] entries are valid until the next scratch-filling
    call on the same process. *)
type dirent_scratch = {
  mutable ds_names : string array;
  mutable ds_inos : int array;
  mutable ds_kinds : Dcache_types.File_kind.t array;
  mutable ds_n : int;
}

type fd = {
  fd_num : int;
  fd_ref : path_ref;
  fd_inode : Dcache_vfs.Inode.t;
  fd_readable : bool;
  fd_writable : bool;
  fd_append : bool;
  mutable fd_pos : int;
  mutable fd_dir : dir_stream option;
}

type t = {
  kernel : Kernel.t;
  mutable cred : Dcache_cred.Cred.t;
  mutable root : path_ref;
  mutable cwd : path_ref;
  mutable ns : namespace;
  fds : (int, fd) Hashtbl.t;
  mutable next_fd : int;
  dirents : dirent_scratch;
  c_scratch_warm : Dcache_util.Stats.Counter.cell;
      (** ["readdir_scratch_warm"], resolved at spawn: name-keyed bumps
          allocate, and the warm readdir must stay word-free *)
  c_scratch_sys : Dcache_util.Stats.Counter.cell;  (** ["sys_readdir_fill"] *)
}

val scratch_cap : dirent_scratch -> int
(** Current capacity (slots) of the scratch arrays. *)

val scratch_grow : dirent_scratch -> int -> unit
(** Ensure capacity for at least the given number of entries (doubling).
    Allocates; never called on the warm path — the lockless listing bails
    to the locked fill on overflow, and the locked fill grows first. *)

val scratch_set : dirent_scratch -> int -> string -> int -> Dcache_types.File_kind.t -> unit
(** [scratch_set ds i name ino kind] stores entry [i] — three unchecked
    array stores, the warm readdir's only writes.  [i] must be below
    {!scratch_cap}. *)

val spawn : ?cred:Dcache_cred.Cred.t -> Kernel.t -> t
(** A fresh process at the kernel's root with the given credentials
    (default: a root credential shared per kernel). *)

val fork : t -> t
(** Clone cwd/root/namespace/credentials (sharing the credential object and
    hence the PCC, like a shell forking children §4.1).  The file table is
    not inherited. *)

val walk_ctx : t -> Dcache_vfs.Walk.ctx

val set_cred : t -> (Dcache_cred.Cred.Builder.t -> unit) -> unit
(** Apply a credential change through the prepare/commit protocol; an
    update that changes nothing keeps the original credential (and its
    PCC) alive. *)

val install_fd : t -> fd:(int -> fd) -> fd
val find_fd : t -> int -> (fd, Dcache_types.Errno.t) result

val find_fd_exn : t -> int -> fd
(** Allocation-free variant of {!find_fd} for the scratch readdir's warm
    path ([find_fd] boxes a result per call).
    @raise Not_found on a bad descriptor. *)

val remove_fd : t -> int -> (fd, Dcache_types.Errno.t) result
