(** Vectored submission/completion front-end (§3.9).

    An io_uring-style SQ/CQ ring pair bound to one process.  Callers
    enqueue up to [cap] metadata probes with the [push_*] calls, fire them
    with {!submit}, and read completions back from the CQ with {!ok} /
    {!errno} / {!attr}.  The ring, the per-op hook closures and the walk
    context are all allocated at {!create}; a warm all-hit submit allocates
    {e zero} minor-heap words and takes zero rwlock acquisitions, paying
    one shared seqcount validation window, one trace span and one counter
    bump set for the whole run instead of per op — see
    {!Dcache_core.Fastpath.probe_batch} for the two-phase protocol and the
    correctness argument.

    Semantics match the sequential syscalls exactly: a slot pushed with
    {!push_stat} completes with what [Syscalls.stat] would have returned
    for the same path at the same point, {!push_lstat} mirrors [lstat]
    (no trailing-symlink follow), and {!push_access} mirrors [access]
    against the LSM stack.  Differences are confined to accounting: batch
    submissions count under ["batch_submit"]/["batch_ops"] rather than the
    per-syscall counters, skip the per-path byte/component tallies, and
    run outside {!Systime} wall-clock classing (the open-loop runner
    charges batch service time to the virtual clock itself). *)

open Dcache_types

type t

val create : ?cap:int -> Proc.t -> t
(** A ring pair of capacity [cap] (default 128) over [proc].
    @raise Invalid_argument when [cap <= 0]. *)

val capacity : t -> int
val length : t -> int
(** Ops currently enqueued (and, after {!submit}, completed). *)

val reset : t -> unit
(** Empty the SQ for reuse.  CQ slots for previously submitted ops become
    stale; store-only, never shrinks. *)

val push_stat : t -> string -> int
(** Enqueue a stat probe (follow trailing symlink).  Returns the slot
    index, or [-1] when the ring is full. *)

val push_lstat : t -> string -> int
(** Enqueue an lstat probe (no trailing-symlink follow). *)

val push_access : t -> string -> Access.t -> int
(** Enqueue an access probe for the given permission mask. *)

val push_readdir : t -> string -> int
(** Enqueue a whole-directory listing (§5.1).  The entries land in the
    process's dirent scratch at an append cursor shared by the whole
    submission — batched listings ride one validation window and one
    scratch arena.  Read them back with {!dir_len} / {!dir_name} /
    {!dir_ino} / {!dir_kind}; they stay valid until the next submit or
    the next scratch-filling call ([Syscalls.readdir_fill]) on the same
    process.  Warm DIR_COMPLETE listings are served by the lockless
    seqcount-validated walk and allocate nothing; cold ones fill and
    promote under the directory's own-id stripe. *)

val submit : t -> unit
(** Resolve every enqueued op and fill the CQ.  All fastpath hits complete
    before any slowpath walk runs; misses resolve in one write-locked
    phase, grouped by path.  No-op on an empty SQ.  Ops resolve relative
    to the process's cwd at submit time. *)

val ok : t -> int -> bool
(** Did slot [i]'s op succeed?  Valid after {!submit}, until {!reset}.
    @raise Invalid_argument when [i] was not enqueued. *)

val errno : t -> int -> Errno.t
(** Slot [i]'s errno; meaningful only when [ok t i = false]. *)

val attr : t -> int -> Attr.t
(** Slot [i]'s resolved attributes; meaningful only when [ok t i = true]
    (for access ops: the checked inode's attributes).  The record is the
    inode's live attribute block, exactly what sequential [stat]
    returns — not a snapshot. *)

val result : t -> int -> (Attr.t, Errno.t) result
(** Boxed convenience view of slot [i]; allocates. *)

val dir_len : t -> int -> int
(** Entry count of readdir slot [i]; meaningful only when [ok t i]. *)

val dir_name : t -> int -> int -> string
(** [dir_name t i j] is entry [j]'s name in readdir slot [i]'s listing.
    @raise Invalid_argument when [j] is outside [0..dir_len t i - 1]. *)

val dir_ino : t -> int -> int -> int
val dir_kind : t -> int -> int -> Dcache_types.File_kind.t
