(** The simulated kernel: directory cache + fastpath + LSMs + namespaces,
    bundled behind one handle.  Two kernels with different configurations
    (e.g. {!Dcache_vfs.Config.baseline} vs {!Dcache_vfs.Config.optimized})
    over the same workload are the paper's unmodified-vs-optimized pairs. *)

open Dcache_vfs.Types

type t

val create :
  ?config:Dcache_vfs.Config.t ->
  ?lsms:Dcache_cred.Lsm.hooks list ->
  root_fs:Dcache_fs.Fs_intf.t ->
  unit ->
  t

val config : t -> Dcache_vfs.Config.t
val dcache : t -> Dcache_vfs.Dcache.t
val fastpath : t -> Dcache_core.Fastpath.t
val registry : t -> Dcache_cred.Lsm.registry
val init_ns : t -> namespace
val root : t -> path_ref
val counters : t -> Dcache_util.Stats.Counter.t

val register_lsm : t -> Dcache_cred.Lsm.hooks -> unit

val make_superblock : t -> Dcache_fs.Fs_intf.t -> (superblock, Dcache_types.Errno.t) result
(** Superblocks are cached per fs instance, so mounting the same pseudo fs
    twice aliases the same dentries (§4.3). *)

val dnlc : t -> (int, int * Dcache_fs.Fs_intf.dirent array) Hashtbl.t
(** The Solaris-comparison side cache of complete directory listings
    ((generation, entries) per dentry id); only consulted when
    [dnlc_style_completeness] is set. *)

val drop_caches : t -> unit
(** Evict every unpinned dentry — the cold-cache experiment setup (Table 2).
    The caller drops its page caches separately. *)

type scrub_report = {
  dcache_quarantined : int;
  dlht_quarantined : int;
  scrub_problems : string list;
}

val scrub : t -> scrub_report
(** Degraded-mode integrity pass (under the write lock): run
    {!Dcache_vfs.Dcache.scrub} then {!Dcache_core.Dlht.scrub} on the init
    namespace's table, quarantining inconsistent entries instead of serving
    them.  Cheap no-op on a healthy cache; tests and the [faults] bench run
    it after fault campaigns. *)

val stats_snapshot : t -> (string * int) list
val reset_stats : t -> unit
