open Dcache_vfs.Types
module Vfs = Dcache_vfs
module Dcache = Vfs.Dcache
module Mount = Vfs.Mount
module Lsm = Dcache_cred.Lsm
module Fastpath = Dcache_core.Fastpath

type t = {
  dcache : Dcache.t;
  fastpath : Fastpath.t;
  registry : Lsm.registry;
  init_ns : namespace;
  (* fs instance -> superblock (by physical identity), so mounting the same
     fs twice aliases the same dentries *)
  mutable sb_keys : (Dcache_fs.Fs_intf.t * superblock) list;
  (* Solaris-DNLC-style side cache of complete listings, keyed by dentry id
     and guarded by the directory's mutation generation (comparison mode). *)
  dnlc : (int, int * Dcache_fs.Fs_intf.dirent array) Hashtbl.t;
}

let make_superblock t fs =
  let rec find = function
    | [] -> None
    | (other_fs, sb) :: rest -> if other_fs == fs then Some sb else find rest
  in
  match find t.sb_keys with
  | Some sb -> Ok sb
  | None -> (
    match Dcache.make_superblock fs with
    | Ok sb ->
      t.sb_keys <- (fs, sb) :: t.sb_keys;
      Ok sb
    | Error _ as e -> e)

let create ?(config = Vfs.Config.baseline) ?(lsms = []) ~root_fs () =
  let dcache = Dcache.create config in
  let fastpath = Fastpath.create dcache in
  let registry = Lsm.create () in
  List.iter (Lsm.register registry) lsms;
  let init_ns = Mount.new_namespace () in
  let t =
    { dcache; fastpath; registry; init_ns; sb_keys = []; dnlc = Hashtbl.create 64 }
  in
  (match make_superblock t root_fs with
  | Ok sb -> ignore (Mount.mount_rootfs init_ns sb)
  | Error e -> invalid_arg ("Kernel.create: bad root fs: " ^ Dcache_types.Errno.to_string e));
  t

let config t = Dcache.config t.dcache
let dcache t = t.dcache
let fastpath t = t.fastpath
let registry t = t.registry
let init_ns t = t.init_ns
let root t = Mount.root t.init_ns
let counters t = Dcache.counters t.dcache
let register_lsm t hooks = Lsm.register t.registry hooks

let dnlc t = t.dnlc

let drop_caches t =
  Hashtbl.reset t.dnlc;
  Dcache.with_write t.dcache (fun () -> Dcache.purge t.dcache)

type scrub_report = {
  dcache_quarantined : int;
  dlht_quarantined : int;
  scrub_problems : string list;
}

(* Degraded-mode integrity pass: quarantine (rather than serve) any cache
   state a fault campaign managed to corrupt.  Dcache first — detaching a
   broken dentry also shoots down its DLHT entry — then a table-local pass
   over the DLHT chains. *)
let scrub t =
  Dcache.with_write t.dcache (fun () ->
      let d = Dcache.scrub t.dcache in
      let dlht_quarantined, dlht_problems =
        match Dcache_core.Dlht.of_namespace_opt t.init_ns with
        | None -> (0, [])
        | Some table ->
          let r = Dcache_core.Dlht.scrub table in
          (r.Dcache_core.Dlht.scrub_quarantined, r.Dcache_core.Dlht.scrub_problems)
      in
      {
        dcache_quarantined = d.Dcache.scrub_quarantined;
        dlht_quarantined;
        scrub_problems = d.Dcache.scrub_problems @ dlht_problems;
      })

let stats_snapshot t = Dcache_util.Stats.Counter.to_assoc (Dcache.counters t.dcache)
let reset_stats t = Dcache_util.Stats.Counter.reset (Dcache.counters t.dcache)
