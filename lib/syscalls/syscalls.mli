(** The POSIX-ish system call surface over the simulated kernel.

    Every path-based call resolves through the configured lookup machinery
    (baseline slowpath or the optimized fastpath) and performs the same
    dcache maintenance the paper's Linux prototype does: invalidation before
    permission/structure changes (§3.2), negative-dentry conversion on
    unlink/rename (§5.2), completeness tracking around mkdir and readdir
    sequences (§5.1).

    All calls return [('a, Errno.t) result]; no exceptions escape. *)

type 'a r = ('a, Dcache_types.Errno.t) result

module Batch = Batch
(** Vectored submission/completion rings (§3.9): enqueue stat / lstat /
    access probes, {!Batch.submit} them in one amortized-validation run,
    read completions from the CQ. *)

(** {1 Metadata} *)

val stat : Proc.t -> string -> Dcache_types.Attr.t r
val lstat : Proc.t -> string -> Dcache_types.Attr.t r
val fstatat : Proc.t -> int -> string -> ?follow:bool -> unit -> Dcache_types.Attr.t r
val fstat : Proc.t -> int -> Dcache_types.Attr.t r
val access : Proc.t -> string -> Dcache_types.Access.t -> unit r
val readlink : Proc.t -> string -> string r

(** {1 Files} *)

val openf : ?mode:Dcache_types.Mode.t -> Proc.t -> string -> Proc.open_flag list -> int r
val openat :
  ?mode:Dcache_types.Mode.t -> Proc.t -> int -> string -> Proc.open_flag list -> int r
val close : Proc.t -> int -> unit r
val read : Proc.t -> int -> int -> string r
val write : Proc.t -> int -> string -> int r
val pread : Proc.t -> int -> off:int -> len:int -> string r
val pwrite : Proc.t -> int -> off:int -> string -> int r

val lseek : Proc.t -> int -> int -> int r
(** Absolute positioning only ([SEEK_SET]).  On a directory fd, seeking to 0
    rewinds the stream; any other offset repositions it and disqualifies the
    in-flight sequence from marking the directory complete (§5.1). *)

val getdents : Proc.t -> int -> int -> Dcache_fs.Fs_intf.dirent list r
(** Up to [count] entries; [\[\]] means end of directory.  Served from the
    directory cache when the directory is complete (§5.1); a drained
    backend listing is promoted into the cache (children populated,
    DIR_COMPLETE set) under the directory's own-id stripe rather than the
    global write lock on sharded configurations. *)

exception Readdir_errno of Dcache_types.Errno.t
(** Error escape for {!readdir_fill} (a [result] would box two words on
    its allocation-free warm path). *)

val readdir_fill : Proc.t -> int -> int
(** Fill the per-process dirent scratch ([Proc.dirents]) with the {e
    full} listing of the open directory fd; returns the entry count.
    Entries are readable through the scratch's parallel name/ino/kind
    arrays until the next scratch-filling call on the same process.  On a
    sharded configuration with directory completeness, a warm call — the
    directory is DIR_COMPLETE and no mutation races — is lockless,
    validated by the dcache write sequence, the directory's own-id stripe
    seqcount and [d_dir_gen], and performs zero minor-heap allocation
    after the scratch's first growth.  A cold call fills under the
    directory's stripe and promotes the backend listing so the next call
    is warm.  @raise Readdir_errno on failure. *)

val truncate : Proc.t -> string -> int -> unit r

(** {1 Namespace mutations} *)

val mkdir : ?mode:Dcache_types.Mode.t -> Proc.t -> string -> unit r
val rmdir : Proc.t -> string -> unit r
val unlink : Proc.t -> string -> unit r
val rename : Proc.t -> string -> string -> unit r
val link : Proc.t -> string -> string -> unit r
val symlink : Proc.t -> target:string -> string -> unit r

val mkstemp :
  ?prng:Dcache_util.Prng.t -> ?prefix:string -> Proc.t -> string -> (int * string) r
(** Secure temporary-file creation in the given directory: random names
    retried with [O_CREAT|O_EXCL] (§5.1's file-creation workload). *)

(** {1 Attributes and security} *)

val chmod : Proc.t -> string -> Dcache_types.Mode.t -> unit r
val chown : Proc.t -> string -> uid:int -> gid:int -> unit r
val set_label : Proc.t -> string -> string option -> unit r
(** Set or clear the MAC security label (root only). *)

(** {1 Process state} *)

val chdir : Proc.t -> string -> unit r
val fchdir : Proc.t -> int -> unit r
val chroot : Proc.t -> string -> unit r

(** {1 Mounts and namespaces} *)

val mount_fs :
  ?readonly:bool -> ?nosuid:bool -> Proc.t -> Dcache_fs.Fs_intf.t -> string -> unit r
val bind_mount : ?readonly:bool -> Proc.t -> src:string -> dst:string -> unit r
val umount : Proc.t -> string -> unit r
val unshare_mount_ns : Proc.t -> unit r
(** Give the process a private copy of its mount namespace; its root and
    cwd are rebased to the new namespace's root. *)

(** {1 The *at() family} *)

val mkdirat : ?mode:Dcache_types.Mode.t -> Proc.t -> int -> string -> unit r
val unlinkat : Proc.t -> int -> string -> unit r
val symlinkat : Proc.t -> target:string -> int -> string -> unit r
val readlinkat : Proc.t -> int -> string -> string r
val faccessat : Proc.t -> int -> string -> Dcache_types.Access.t -> unit r

val getcwd : Proc.t -> string r
(** Reconstruct the working directory's path relative to the process root,
    crossing mount boundaries; [ENOENT] if the directory was removed. *)

val invalidate_path : Proc.t -> string -> unit r
(** Evict a path's cached dentry subtree (without touching the file
    system).  This is the client half of a stateful network file system's
    staleness callback (paper §4.3, §3.7): wire it to
    {!Dcache_fs.Netfs.callbacks} or a per-client
    {!Dcache_fs.Netfs.set_invalidate} hook.  With [dcache_stripes > 0] a
    shallow target is evicted under the parent + target stripe locks
    (counted as [sharded_cb_invalidate]) instead of the global write
    lock, so invalidation storms scale like the mutations that cause
    them. *)

val invalidate_negatives : Proc.t -> string -> unit r
(** Per-mount negative invalidation (§6.3, DragonFly-style): bump the
    negative generation of the superblock the path resolves on, so every
    cached negative dentry on it lazily reads as a miss at its next use.
    One integer store — no lock and no cache walk. *)

(** {1 Crash-fault coverage (stripe-locked sections)} *)

val install_crash_sites : Dcache_util.Fault.t -> unit
(** Register crash points inside the sharded mutation sections —
    ["syscalls.sharded_create"], ["syscalls.sharded_unlink"],
    ["syscalls.sharded_rename"], ["syscalls.sharded_invalidate"],
    ["syscalls.sharded_mkdir"], ["syscalls.sharded_rmdir"] — on the
    given injector.  Each fires between the stripe seqcount bump and the
    dcache splice and raises {!Dcache_util.Fault.Crash} out of the
    syscall; the section releases its stripe(s) and the read lock on the
    way out, so a subsequent {!Kernel.scrub} fully repairs the cache.
    Sites are module-global (the sections are hot paths and carry no
    injector plumbing); {!clear_crash_sites} detaches them. *)

val clear_crash_sites : unit -> unit

(** {1 Convenience} *)

val read_file : Proc.t -> string -> string r
val write_file : Proc.t -> string -> string -> unit r
val readdir_path : Proc.t -> string -> Dcache_fs.Fs_intf.dirent list r
(** open + getdents-until-empty + close. *)

val mkdir_p : Proc.t -> string -> unit r
