module Pseudofs = Dcache_fs.Pseudofs
module Netfs = Dcache_fs.Netfs
module Config = Dcache_vfs.Config
module Dcache = Dcache_vfs.Dcache
module Fault = Dcache_util.Fault
module Trace = Dcache_util.Trace
module Profiler = Dcache_util.Profiler

(* DLHT load figures (init namespace) appended to dcache/stats.  These are
   gauges, not monotonic counters — population and chain lengths go up and
   down with churn — except [dlht_resizes] and [dlht_sigless_scans], which
   only grow.  t_procfs knows the [dlht_] prefix and cross-checks them
   against [Dlht.occupancy] instead of the counter snapshot. *)
let render_dlht kernel =
  match Dcache_core.Dlht.of_namespace_opt (Kernel.init_ns kernel) with
  | None -> "dlht_attached 0\n"
  | Some t ->
    let module Dlht = Dcache_core.Dlht in
    let occ = Dlht.occupancy t in
    String.concat "\n"
      [
        "dlht_attached 1";
        Printf.sprintf "dlht_population %d" (Dlht.population t);
        Printf.sprintf "dlht_buckets %d" occ.Dlht.occ_buckets;
        Printf.sprintf "dlht_used_buckets %d" occ.Dlht.occ_used;
        Printf.sprintf "dlht_longest_chain %d" occ.Dlht.occ_longest;
        Printf.sprintf "dlht_old_pending %d" occ.Dlht.occ_old_pending;
        Printf.sprintf "dlht_resizing %d" (if Dlht.resizing t then 1 else 0);
        Printf.sprintf "dlht_resizes %d" (Dlht.resizes t);
        Printf.sprintf "dlht_sigless_scans %d" (Dlht.sigless_scans t);
        "";
      ]

(* The gauges go first: the counter tail may be truncated by a byte or two
   when the reading syscalls themselves grow a counter between the size
   (getattr) and content (read) generations of the pseudo-file. *)
let render_stats kernel () =
  Kernel.stats_snapshot kernel
  |> List.map (fun (name, value) -> Printf.sprintf "%s %d" name value)
  |> String.concat "\n"
  |> fun body -> render_dlht kernel ^ body ^ "\n"

let render_summary kernel () =
  let dcache = Kernel.dcache kernel in
  let occupancy = Dcache.bucket_occupancy dcache in
  let total = Array.fold_left ( + ) 0 occupancy in
  let buf = Buffer.create 256 in
  Printf.bprintf buf "dentries %d\n" (Dcache.dentry_count dcache);
  Printf.bprintf buf "invalidation_counter %d\n" (Dcache.invalidation_counter dcache);
  (* Prefix-resume depth gauges (§3.5): how many components each resumed
     walk skipped.  The full distribution lives in dcache/histograms
     ("class resume_depth"); these are the headline figures. *)
  let rd = Trace.resume_depth in
  Printf.bprintf buf "resume_depth_n %d\n" (Dcache_util.Stats.Lhist.count rd);
  Printf.bprintf buf "resume_depth_max %d\n" (Dcache_util.Stats.Lhist.max_value rd);
  Printf.bprintf buf "resume_depth_mean %.1f\n" (Dcache_util.Stats.Lhist.mean rd);
  Array.iteri
    (fun len count ->
      Printf.bprintf buf "buckets_len_%s%d %d (%.1f%%)\n"
        (if len = Array.length occupancy - 1 then "ge_" else "")
        len count
        (100.0 *. float_of_int count /. float_of_int (max 1 total)))
    occupancy;
  Buffer.contents buf

(* Per-stripe acquisition/contention figures for the sharded mutation
   path.  The header lines ([stripes N], [acquired], [contended]) give the
   aggregate; the per-stripe tail shows skew, which is the thing to watch
   when churn concentrates in few directories. *)
let render_stripes kernel () =
  match Dcache.stripes (Kernel.dcache kernel) with
  | None -> "stripes 0\n"
  | Some tab ->
    (* Residual global-write figures ride the sharded report: every
       [with_write] is a full-stop for the stripes, so the ratio of
       [global_write_acquired] to stripe acquisitions says how much of
       the mutation load still funnels through the big lock.
       [dlht_stripe_migrations] counts pre-resize buckets the sharded
       sections drained under their own stripe instead of waiting for a
       write-locked housekeeping pass. *)
    let globals =
      Dcache_util.Stats.Counter.get (Kernel.counters kernel)
        "global_write_acquired"
    in
    let migrations =
      match Dcache_core.Dlht.of_namespace_opt (Kernel.init_ns kernel) with
      | None -> 0
      | Some t -> Dcache_core.Dlht.stripe_migrations t
    in
    Dcache_util.Locktab.to_string tab
    ^ Printf.sprintf "global_write_acquired %d\n" globals
    ^ Printf.sprintf "dlht_stripe_migrations %d\n" migrations

(* [dcache/neglists] is the negative-dentry book (§6.3): the per-stripe
   bound, eviction and invalidation tallies, and one occupancy line per
   stripe list so a create-storm's negative footprint can be audited from
   /proc alone. *)
let render_neglists kernel () =
  let d = Kernel.dcache kernel in
  let c name = Dcache_util.Stats.Counter.get (Kernel.counters kernel) name in
  let occ = Dcache.neg_occupancy d in
  let total = Array.fold_left ( + ) 0 occ in
  let buf = Buffer.create 256 in
  Printf.bprintf buf "neg_list_cap %d\n" (Dcache.neg_list_cap d);
  Printf.bprintf buf "neg_lists %d\n" (Array.length occ);
  Printf.bprintf buf "neg_cached %d\n" total;
  Printf.bprintf buf "neg_evicted %d\n" (c "neg_evicted");
  Printf.bprintf buf "neg_gen_invalidations %d\n" (c "neg_gen_invalidations");
  Printf.bprintf buf "walk_stale_negative %d\n" (c "walk_stale_negative");
  Printf.bprintf buf "create_neg_shortcut %d\n" (c "create_neg_shortcut");
  Array.iteri (fun i n -> Printf.bprintf buf "neglist %d occupancy %d\n" i n) occ;
  Buffer.contents buf

let render_config kernel () =
  let c = Kernel.config kernel in
  String.concat "\n"
    [
      Printf.sprintf "fastpath %b" c.Config.fastpath;
      Printf.sprintf "pcc_entries %d" c.Config.pcc_entries;
      Printf.sprintf "pcc_max_entries %d" c.Config.pcc_max_entries;
      Printf.sprintf "dlht_buckets %d" c.Config.dlht_buckets;
      Printf.sprintf "sig_bits %d" c.Config.sig_bits;
      Printf.sprintf "symlink_aliases %b" c.Config.symlink_aliases;
      Printf.sprintf "dotdot %s"
        (match c.Config.dotdot with
        | Config.Dotdot_linux -> "linux"
        | Config.Dotdot_lexical -> "lexical");
      Printf.sprintf "prefix_resume %b" c.Config.prefix_resume;
      Printf.sprintf "dir_completeness %b" c.Config.dir_completeness;
      Printf.sprintf "dnlc_style_completeness %b" c.Config.dnlc_style_completeness;
      Printf.sprintf "aggressive_negative %b" c.Config.aggressive_negative;
      Printf.sprintf "deep_negative %b" c.Config.deep_negative;
      Printf.sprintf "dcache_buckets %d" c.Config.dcache_buckets;
      Printf.sprintf "dcache_stripes %d" c.Config.dcache_stripes;
      Printf.sprintf "neg_list_cap %d" c.Config.neg_list_cap;
      Printf.sprintf "max_dentries %d" c.Config.max_dentries;
      "";
    ]

(* --- observability files (PR 3) ---

   Every render closure reads live Trace / Fault / Netfs state at open
   time, so repeated reads see the current figures; formats are one
   [key value...] record per line so the t_procfs parser (and awk) can
   consume them. *)

let render_histograms () = Trace.histograms_to_string ()
let render_causes () = Trace.causes_to_string ()
let render_trace () = Trace.ring_to_string ()

(* [dcache/hot] is the per-directory cache-efficacy sketch (§3.8): top-K
   heavy hitters with their exact-count error bounds. *)
let render_hot () = Profiler.hot_to_string ()

(* [dcache/batch] is the vectored front-end's scoreboard (§3.9): ring
   traffic, how many validation windows the submissions actually paid for
   (windows/submit ≈ 1 is the amortization working), splits and phase-2
   deferrals, and the grouped-slowpath / sharded-mutation counters that
   distinguish the batched paths from their sequential equivalents. *)
let render_batch kernel () =
  let submits, ops, windows = Profiler.batch_stats () in
  let c name =
    Dcache_util.Stats.Counter.get (Kernel.counters kernel) name
  in
  String.concat "\n"
    [
      Printf.sprintf "batch_submits %d" submits;
      Printf.sprintf "batch_ops %d" ops;
      Printf.sprintf "batch_windows %d" windows;
      Printf.sprintf "batch_windows_per_submit %.2f"
        (float_of_int windows /. float_of_int (max 1 submits));
      Printf.sprintf "batch_splits %d" (c "fastpath_batch_split");
      Printf.sprintf "batch_deferred %d" (c "fastpath_batch_deferred");
      Printf.sprintf "walk_resumed_sibling %d" (c "walk_resumed_sibling");
      Printf.sprintf "sharded_mkdir %d" (c "sharded_mkdir");
      Printf.sprintf "sharded_rmdir %d" (c "sharded_rmdir");
      "";
    ]

let render_faults faults () =
  match faults with
  | None -> "no injector attached\n"
  | Some f ->
    let buf = Buffer.create 256 in
    Printf.bprintf buf "seed %d\n" (Fault.seed f);
    let sites = Fault.sites f in
    Printf.bprintf buf "sites %d\n" (List.length sites);
    List.iter
      (fun s ->
        Printf.bprintf buf "site %s schedule %s arrivals %d injected %d\n"
          (Fault.name s) (Fault.schedule_name s) (Fault.arrivals s)
          (Fault.injected s))
      sites;
    Buffer.contents buf

(* [netfs/rpc] enumerates the server's figures exactly — including the
   zero-traffic case (a server with no RPCs yet renders all-zero lines, not
   the "no … attached" placeholder reserved for a genuinely absent server)
   and the per-site fault arrival/injection tallies, so a fault-schedule
   run can be audited from /proc alone. *)
let render_netfs_rpc netfs () =
  match netfs with
  | None -> "no netfs server attached\n"
  | Some srv ->
    let s = Netfs.rpc_stats srv in
    let buf = Buffer.create 256 in
    Printf.bprintf buf "rpcs %d\n" (Netfs.rpc_count srv);
    Printf.bprintf buf "drops %d\n" s.Netfs.rs_drops;
    Printf.bprintf buf "delays %d\n" s.Netfs.rs_delays;
    Printf.bprintf buf "retries %d\n" s.Netfs.rs_retries;
    Printf.bprintf buf "giveups %d\n" s.Netfs.rs_giveups;
    Printf.bprintf buf "drc_hits %d\n" s.Netfs.rs_drc_hits;
    Printf.bprintf buf "partitions %d\n" s.Netfs.rs_partitions;
    Printf.bprintf buf "crashes %d\n" s.Netfs.rs_crashes;
    Printf.bprintf buf "fenced %d\n" s.Netfs.rs_fenced;
    let sites = Netfs.fault_sites srv in
    Printf.bprintf buf "fault_sites %d\n" (List.length sites);
    List.iter
      (fun site ->
        Printf.bprintf buf "site %s arrivals %d injected %d\n" (Fault.name site)
          (Fault.arrivals site) (Fault.injected site))
      sites;
    Buffer.contents buf

(* [netfs/leases] is the lease book (§3.7): server-side epoch/grace/grant
   gauges plus one line per registered client with its grant, gate and
   break tallies. *)
let render_netfs_leases netfs () =
  match netfs with
  | None -> "no netfs server attached\n"
  | Some srv ->
    let buf = Buffer.create 256 in
    Printf.bprintf buf "epoch %d\n" (Netfs.epoch srv);
    Printf.bprintf buf "in_grace %d\n" (if Netfs.in_grace srv then 1 else 0);
    Printf.bprintf buf "lease_ttl_ns %d\n" (Netfs.lease_ttl_ns srv);
    Printf.bprintf buf "lease_skew_ns %d\n" (Netfs.lease_skew_ns srv);
    Printf.bprintf buf "grace_ns %d\n" (Netfs.grace_ns srv);
    Printf.bprintf buf "grants %d\n" (Netfs.grant_count srv);
    let clients = Netfs.clients srv in
    Printf.bprintf buf "clients %d\n" (List.length clients);
    List.iter
      (fun c ->
        let ls = Netfs.lease_stats srv c in
        Printf.bprintf buf
          "client %d epoch %d granted %d live %d gate_live %d gate_expired %d \
           gate_miss %d breaks %d fences %d\n"
          (Netfs.client_id c) (Netfs.client_epoch c) ls.Netfs.ls_grants
          ls.Netfs.ls_live ls.Netfs.ls_gate_live ls.Netfs.ls_gate_expired
          ls.Netfs.ls_gate_miss ls.Netfs.ls_breaks ls.Netfs.ls_fences)
      clients;
    Buffer.contents buf

let ok = function Ok v -> v | Error _ -> assert false

let make ?faults ?netfs kernel =
  let p = Pseudofs.create () in
  ok (Pseudofs.add_file p "/version" ~content:(fun () -> "dcache-sim (SOSP 2015 reproduction)\n"));
  ok (Pseudofs.add_dir p "/dcache");
  ok (Pseudofs.add_file p "/dcache/stats" ~content:(render_stats kernel));
  ok (Pseudofs.add_file p "/dcache/summary" ~content:(render_summary kernel));
  ok (Pseudofs.add_file p "/dcache/config" ~content:(render_config kernel));
  ok (Pseudofs.add_file p "/dcache/stripes" ~content:(render_stripes kernel));
  ok (Pseudofs.add_file p "/dcache/neglists" ~content:(render_neglists kernel));
  ok (Pseudofs.add_file p "/dcache/histograms" ~content:render_histograms);
  ok (Pseudofs.add_file p "/dcache/causes" ~content:render_causes);
  ok (Pseudofs.add_file p "/dcache/trace" ~content:render_trace);
  ok (Pseudofs.add_file p "/dcache/hot" ~content:render_hot);
  ok (Pseudofs.add_file p "/dcache/batch" ~content:(render_batch kernel));
  ok (Pseudofs.add_file p "/faults" ~content:(render_faults faults));
  ok (Pseudofs.add_dir p "/netfs");
  ok (Pseudofs.add_file p "/netfs/rpc" ~content:(render_netfs_rpc netfs));
  ok (Pseudofs.add_file p "/netfs/leases" ~content:(render_netfs_leases netfs));
  Pseudofs.fs p
