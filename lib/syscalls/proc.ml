open Dcache_vfs.Types
module Cred = Dcache_cred.Cred
module Dcache = Dcache_vfs.Dcache

type open_flag =
  | O_RDONLY
  | O_WRONLY
  | O_RDWR
  | O_CREAT
  | O_EXCL
  | O_TRUNC
  | O_APPEND
  | O_NOFOLLOW
  | O_DIRECTORY

type dir_stream = {
  mutable entries : Dcache_fs.Fs_intf.dirent array option;
  mutable index : int;
  mutable eligible : bool;
  mutable from_cache : bool;
  mutable snapshot_gen : int;
      (** the directory's mutation generation when [entries] was captured *)
}

(* Preallocated per-process dirent result buffer (§5.1): the cache-fed
   readdir stores each entry as three parallel-array writes (name pointer,
   ino, kind), so a warm DIR_COMPLETE listing allocates nothing after the
   first fill.  Growth doubles outside the warm path; contents are valid
   until the next scratch-filling call on the same process. *)
type dirent_scratch = {
  mutable ds_names : string array;
  mutable ds_inos : int array;
  mutable ds_kinds : Dcache_types.File_kind.t array;
  mutable ds_n : int;
}

type fd = {
  fd_num : int;
  fd_ref : path_ref;
  fd_inode : Dcache_vfs.Inode.t;
  fd_readable : bool;
  fd_writable : bool;
  fd_append : bool;
  mutable fd_pos : int;
  mutable fd_dir : dir_stream option;
}

type t = {
  kernel : Kernel.t;
  mutable cred : Cred.t;
  mutable root : path_ref;
  mutable cwd : path_ref;
  mutable ns : namespace;
  fds : (int, fd) Hashtbl.t;
  mutable next_fd : int;
  dirents : dirent_scratch;
  (* counter cells resolved at spawn/fork: name-keyed bumps allocate an
     option per call, and the scratch readdir's warm path must stay
     word-free *)
  c_scratch_warm : Dcache_util.Stats.Counter.cell;
  c_scratch_sys : Dcache_util.Stats.Counter.cell;
}

let scratch_initial = 64

let make_scratch () =
  {
    ds_names = Array.make scratch_initial "";
    ds_inos = Array.make scratch_initial 0;
    ds_kinds = Array.make scratch_initial Dcache_types.File_kind.Regular;
    ds_n = 0;
  }

let scratch_cap ds = Array.length ds.ds_names

(* Double the scratch to hold at least [want] entries.  Never called on the
   warm path: the lockless listing bails to the locked fill on overflow,
   and the locked fill grows before copying. *)
let scratch_grow ds want =
  let cap = scratch_cap ds in
  if want > cap then begin
    let cap' = ref (cap * 2) in
    while !cap' < want do
      cap' := !cap' * 2
    done;
    let names = Array.make !cap' "" in
    let inos = Array.make !cap' 0 in
    let kinds = Array.make !cap' Dcache_types.File_kind.Regular in
    Array.blit ds.ds_names 0 names 0 ds.ds_n;
    Array.blit ds.ds_inos 0 inos 0 ds.ds_n;
    Array.blit ds.ds_kinds 0 kinds 0 ds.ds_n;
    ds.ds_names <- names;
    ds.ds_inos <- inos;
    ds.ds_kinds <- kinds
  end

(* One entry, three stores — the warm readdir's only writes. *)
let[@inline] scratch_set ds i name ino kind =
  Array.unsafe_set ds.ds_names i name;
  Array.unsafe_set ds.ds_inos i ino;
  Array.unsafe_set ds.ds_kinds i kind

(* One default root credential per kernel would need a kernel slot; a global
   per-process-spawn credential would defeat PCC sharing.  Share one default
   credential across all processes of the program instead. *)
let default_cred = lazy (Cred.root ())

let spawn ?cred kernel =
  let cred = match cred with Some c -> c | None -> Lazy.force default_cred in
  let root = Kernel.root kernel in
  Dcache.dget root.dentry;
  Dcache.dget root.dentry;
  (* two pins: one for root, one for cwd *)
  let cs = Kernel.counters kernel in
  {
    kernel;
    cred;
    root;
    cwd = root;
    ns = Kernel.init_ns kernel;
    fds = Hashtbl.create 16;
    next_fd = 3;
    dirents = make_scratch ();
    c_scratch_warm = Dcache_util.Stats.Counter.cell cs "readdir_scratch_warm";
    c_scratch_sys = Dcache_util.Stats.Counter.cell cs "sys_readdir_fill";
  }

let fork t =
  Dcache.dget t.root.dentry;
  Dcache.dget t.cwd.dentry;
  let cs = Kernel.counters t.kernel in
  {
    kernel = t.kernel;
    cred = t.cred;
    root = t.root;
    cwd = t.cwd;
    ns = t.ns;
    fds = Hashtbl.create 16;
    next_fd = 3;
    dirents = make_scratch ();
    c_scratch_warm = Dcache_util.Stats.Counter.cell cs "readdir_scratch_warm";
    c_scratch_sys = Dcache_util.Stats.Counter.cell cs "sys_readdir_fill";
  }

let walk_ctx t =
  {
    Dcache_vfs.Walk.cred = t.cred;
    root = t.root;
    cwd = t.cwd;
    ns = t.ns;
    registry = Kernel.registry t.kernel;
  }

let set_cred t update =
  let builder = Cred.prepare t.cred in
  update builder;
  t.cred <- Cred.Builder.commit builder

let install_fd t ~fd =
  let num = t.next_fd in
  t.next_fd <- num + 1;
  let fd = fd num in
  Hashtbl.add t.fds num fd;
  fd

let find_fd t num =
  match Hashtbl.find_opt t.fds num with
  | Some fd -> Ok fd
  | None -> Error Dcache_types.Errno.EBADF

(* Allocation-free variant for the scratch readdir's warm path: [find_fd]
   boxes a result per call.  @raise Not_found on a bad descriptor. *)
let find_fd_exn t num = Hashtbl.find t.fds num

let remove_fd t num =
  match Hashtbl.find_opt t.fds num with
  | Some fd ->
    Hashtbl.remove t.fds num;
    Ok fd
  | None -> Error Dcache_types.Errno.EBADF
