module Dlist = Dcache_util.Dlist
module Fault = Dcache_util.Fault

type page = { block : int; data : bytes; mutable dirty : bool; lru : page Dlist.node Lazy.t }

type t = {
  device : Blockdev.t;
  capacity : int;
  pages : (int, page) Hashtbl.t;
  lru : page Dlist.t;  (* front = most recently used *)
  mutable hit_count : int;
  mutable miss_count : int;
  mutable writeback_count : int;
}

let create ?(capacity_pages = 4096) device =
  assert (capacity_pages > 0);
  {
    device;
    capacity = capacity_pages;
    pages = Hashtbl.create 1024;
    lru = Dlist.create ();
    hit_count = 0;
    miss_count = 0;
    writeback_count = 0;
  }

let block_size t = Blockdev.block_size t.device

let writeback t page =
  if page.dirty then begin
    Blockdev.write_block t.device page.block page.data;
    page.dirty <- false;
    t.writeback_count <- t.writeback_count + 1
  end

let evict_one t =
  match Dlist.pop_back t.lru with
  | None -> ()
  | Some node ->
    let page = Dlist.value node in
    writeback t page;
    Hashtbl.remove t.pages page.block

let lookup t n =
  match Hashtbl.find_opt t.pages n with
  | Some page ->
    t.hit_count <- t.hit_count + 1;
    Dlist.move_to_front t.lru (Lazy.force page.lru);
    page
  | None ->
    t.miss_count <- t.miss_count + 1;
    if Hashtbl.length t.pages >= t.capacity then evict_one t;
    let data = Blockdev.read_block t.device n in
    let rec page = { block = n; data; dirty = false; lru = lazy (Dlist.node page) } in
    Hashtbl.add t.pages n page;
    Dlist.push_front t.lru (Lazy.force page.lru);
    page

(* FNV-1a over the page, for the debug-mode mutation check.  Cheap enough
   to run twice per access when enabled, and any accidental store through a
   read-only view changes it with overwhelming probability. *)
let page_sum data =
  let h = ref 0x811c9dc5 in
  for i = 0 to Bytes.length data - 1 do
    h := (!h lxor Char.code (Bytes.unsafe_get data i)) * 0x01000193 land 0x3FFFFFFFFFFFFFF
  done;
  !h

let with_page t n f =
  let page = lookup t n in
  if !Fault.checks_enabled then begin
    let before = page_sum page.data in
    let result = f page.data in
    if page_sum page.data <> before then
      failwith
        (Printf.sprintf
           "Pagecache.with_page: callback mutated block %d (use with_page_mut)" n);
    result
  end
  else f page.data

let with_page_mut t n f =
  let page = lookup t n in
  page.dirty <- true;
  f page.data

let read_page t n = Bytes.copy (lookup t n).data

let write_page t n data =
  if Bytes.length data <> block_size t then invalid_arg "Pagecache.write_page: wrong size";
  let page = lookup t n in
  Bytes.blit data 0 page.data 0 (Bytes.length data);
  page.dirty <- true

let flush t = Dlist.iter (fun page -> writeback t page) t.lru

let drop_caches t =
  flush t;
  Hashtbl.reset t.pages;
  while Dlist.pop_front t.lru <> None do
    ()
  done

(* Power loss: every cached page vanishes, dirty ones without writeback.
   The device is left holding exactly what was flushed (or evicted) before
   the crash — the state Extfs_fsck judges recovery from. *)
let crash t =
  let lost = ref 0 in
  Dlist.iter (fun page -> if page.dirty then incr lost) t.lru;
  Hashtbl.reset t.pages;
  while Dlist.pop_front t.lru <> None do
    ()
  done;
  !lost

let hits t = t.hit_count
let misses t = t.miss_count
let writebacks t = t.writeback_count
let cached_pages t = Hashtbl.length t.pages

let reset_stats t =
  t.hit_count <- 0;
  t.miss_count <- 0;
  t.writeback_count <- 0
