module Fault = Dcache_util.Fault
module Prng = Dcache_util.Prng
module Errno = Dcache_types.Errno

type config = {
  block_size : int;
  block_count : int;
  seek_ns : int64;
  sequential_ns : int64;
  transfer_ns : int64;
}

let default_config =
  {
    block_size = 4096;
    block_count = 1 lsl 18;
    seek_ns = 8_000_000L;
    sequential_ns = 50_000L;
    transfer_ns = 25_000L;
  }

(* Fault sites of one device.  [corrupt] supplies the payload randomness of
   the corruption modes (which bit flips, where a torn write tears), kept
   separate from the schedule PRNGs so arming one mode never shifts
   another's choices. *)
type faults = {
  read_fail : Fault.site;
  write_fail : Fault.site;
  torn_write : Fault.site;
  read_bitflip : Fault.site;
  corrupt : Prng.t;
}

type t = {
  config : config;
  clock : Dcache_util.Vclock.t;
  (* Blocks are allocated lazily: a fresh device reads as zeroes. *)
  store : (int, bytes) Hashtbl.t;
  mutable last_block : int;
  mutable read_count : int;
  mutable write_count : int;
  faults : faults option;
  mutable read_errors : int;
  mutable write_errors : int;
}

let attach_faults injector =
  {
    read_fail = Fault.site injector "blockdev.read_eio";
    write_fail = Fault.site injector "blockdev.write_eio";
    torn_write = Fault.site injector "blockdev.torn_write";
    read_bitflip = Fault.site injector "blockdev.read_bitflip";
    corrupt = Prng.create (Fault.seed injector lxor 0x626c6b);
  }

let create ?(config = default_config) ?faults clock =
  {
    config;
    clock;
    store = Hashtbl.create 1024;
    last_block = -2;
    read_count = 0;
    write_count = 0;
    faults = Option.map attach_faults faults;
    read_errors = 0;
    write_errors = 0;
  }

let block_size t = t.config.block_size
let block_count t = t.config.block_count

let charge_access t n =
  let position_cost =
    if n = t.last_block + 1 then t.config.sequential_ns else t.config.seek_ns
  in
  Dcache_util.Vclock.charge t.clock (Int64.add position_cost t.config.transfer_ns);
  t.last_block <- n

let check_bounds t n =
  if n < 0 || n >= t.config.block_count then
    invalid_arg (Printf.sprintf "Blockdev: block %d out of range" n)

let read_block t n =
  check_bounds t n;
  charge_access t n;
  t.read_count <- t.read_count + 1;
  match t.faults with
  | None -> (
    match Hashtbl.find_opt t.store n with
    | Some data -> Bytes.copy data
    | None -> Bytes.make t.config.block_size '\000')
  | Some f ->
    if Fault.fire f.read_fail then begin
      t.read_errors <- t.read_errors + 1;
      raise (Errno.Error Errno.EIO)
    end;
    let data =
      match Hashtbl.find_opt t.store n with
      | Some data -> Bytes.copy data
      | None -> Bytes.make t.config.block_size '\000'
    in
    if Fault.fire f.read_bitflip then begin
      (* Transient corruption (a bad transfer, not bad media): the flip
         lives only in this copy, so a re-read may see clean data. *)
      let bit = Prng.int f.corrupt (t.config.block_size * 8) in
      let byte = bit / 8 in
      Bytes.set data byte (Char.chr (Char.code (Bytes.get data byte) lxor (1 lsl (bit mod 8))))
    end;
    data

let write_block t n data =
  check_bounds t n;
  if Bytes.length data <> t.config.block_size then
    invalid_arg "Blockdev.write_block: wrong block size";
  charge_access t n;
  t.write_count <- t.write_count + 1;
  match t.faults with
  | None -> Hashtbl.replace t.store n (Bytes.copy data)
  | Some f ->
    if Fault.fire f.write_fail then begin
      t.write_errors <- t.write_errors + 1;
      raise (Errno.Error Errno.EIO)
    end;
    if Fault.fire f.torn_write then begin
      (* Power failed mid-write: a sector-aligned prefix of the new data
         lands, the tail keeps the old contents, and nobody is told.  The
         damage is only discoverable later (fsck, checksums). *)
      let sectors = t.config.block_size / 512 in
      let keep = 512 * Prng.int f.corrupt sectors in
      let merged =
        match Hashtbl.find_opt t.store n with
        | Some old -> Bytes.copy old
        | None -> Bytes.make t.config.block_size '\000'
      in
      Bytes.blit data 0 merged 0 keep;
      Hashtbl.replace t.store n merged
    end
    else Hashtbl.replace t.store n (Bytes.copy data)

let read_block_result t n =
  match read_block t n with
  | data -> Ok data
  | exception Errno.Error e -> Error e

let write_block_result t n data =
  match write_block t n data with
  | () -> Ok ()
  | exception Errno.Error e -> Error e

let reads t = t.read_count
let writes t = t.write_count
let read_errors t = t.read_errors
let write_errors t = t.write_errors

let reset_stats t =
  t.read_count <- 0;
  t.write_count <- 0;
  t.read_errors <- 0;
  t.write_errors <- 0
