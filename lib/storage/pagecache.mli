(** Write-back page cache over a {!Blockdev}.

    Models the kernel buffer/page cache: block reads hit memory when cached,
    dirty pages are written back on eviction or [flush], and [drop_caches]
    reproduces the paper's cold-cache experiments (Table 2). *)

type t

val create : ?capacity_pages:int -> Blockdev.t -> t
(** [capacity_pages] defaults to 4096 (16 MB of 4 KB pages). *)

val block_size : t -> int

val with_page : t -> int -> (bytes -> 'a) -> 'a
(** [with_page t n f] runs [f] on the cached page for block [n] (reading it
    in on a miss).  [f] must not retain or mutate the page; when
    {!Dcache_util.Fault.checks_enabled} is set a checksum taken around [f]
    turns a mutation into an immediate [Failure]. *)

val with_page_mut : t -> int -> (bytes -> 'a) -> 'a
(** Like {!with_page} but the page is marked dirty; [f] may mutate it. *)

val read_page : t -> int -> bytes
(** Copying read of a whole block. *)

val write_page : t -> int -> bytes -> unit
(** Replace a whole block (marks it dirty; must be [block_size] bytes). *)

val flush : t -> unit
(** Write back all dirty pages. *)

val drop_caches : t -> unit
(** Flush, then discard every cached page: the next access hits the disk. *)

val crash : t -> int
(** Simulated power loss: discard every cached page {e without} writing
    dirty ones back, leaving the device holding only what was flushed or
    evicted beforehand.  Returns the number of dirty pages lost.  Mount a
    fresh cache over the device to model the reboot. *)

val hits : t -> int
val misses : t -> int
val writebacks : t -> int
val cached_pages : t -> int
val reset_stats : t -> unit
