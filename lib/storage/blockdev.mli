(** Simulated block device.

    Stands in for the paper's 2 TB 7200 RPM ATA disk.  Every access charges a
    virtual clock with a simple latency model (seek + rotational delay for
    non-sequential access, plus per-block transfer time), so experiments that
    miss the page cache become I/O-bound exactly as on real hardware, without
    the simulator actually sleeping.

    A device built with [~faults] registers four sites against the injector:

    - ["blockdev.read_eio"] / ["blockdev.write_eio"]: the access fails with
      [Errno.Error EIO] (media error);
    - ["blockdev.torn_write"]: the write silently persists only a
      sector-aligned prefix of the new data (power loss mid-write);
    - ["blockdev.read_bitflip"]: one random bit of the returned copy is
      flipped (a bad transfer — transient, a re-read may be clean).

    With all sites disarmed the extra cost per access is one integer bump
    per site and no allocation. *)

type t

type config = {
  block_size : int;  (** bytes per block; the paper's ext4 uses 4096 *)
  block_count : int;
  seek_ns : int64;  (** average seek + rotational latency for a random access *)
  sequential_ns : int64;  (** extra latency when the access is sequential *)
  transfer_ns : int64;  (** per-block transfer time *)
}

val default_config : config
(** 4 KB blocks, ~8 ms random access, ~25 us transfer: a 7200 RPM disk. *)

val create : ?config:config -> ?faults:Dcache_util.Fault.t -> Dcache_util.Vclock.t -> t
(** [faults] attaches the device to a fault injector (sites above). *)

val block_size : t -> int
val block_count : t -> int

val read_block : t -> int -> bytes
(** [read_block t n] returns a copy of block [n], charging the clock.
    @raise Dcache_types.Errno.Error [EIO] when an armed read fault fires. *)

val write_block : t -> int -> bytes -> unit
(** [write_block t n data] stores [data] (must be exactly [block_size]
    bytes), charging the clock.
    @raise Dcache_types.Errno.Error [EIO] when an armed write fault fires. *)

val read_block_result : t -> int -> (bytes, Dcache_types.Errno.t) result
(** {!read_block} with the injected failure as a result instead of an
    exception. *)

val write_block_result : t -> int -> bytes -> (unit, Dcache_types.Errno.t) result

val reads : t -> int
val writes : t -> int

val read_errors : t -> int
(** Injected read failures observed so far (torn writes and bit flips are
    silent; see {!Dcache_util.Fault.injected} on their sites). *)

val write_errors : t -> int
val reset_stats : t -> unit
