(** Low-level file system interface.

    This is the analog of Linux's [inode_operations]/[file_operations] as
    seen from the VFS: file systems resolve names one component at a time
    within a parent directory inode, and never see mount points, the dcache,
    or path strings (paper §2.2-2.3).  Permission checks are the VFS's job;
    implementations only enforce structural invariants (existence, emptiness,
    link limits, space).

    All operations identify inodes by inode number, so the same interface
    works for memory-backed (ramfs, pseudofs) and disk-backed (extfs)
    implementations. *)

open Dcache_types

type dirent = { name : string; ino : int; kind : File_kind.t }

(** Attribute changes for [setattr]; [None] leaves a field untouched.
    [set_label = Some None] clears the security label. *)
type setattr = {
  set_mode : Mode.t option;
  set_uid : int option;
  set_gid : int option;
  set_size : int option;
  set_label : string option option;
}

let no_setattr =
  { set_mode = None; set_uid = None; set_gid = None; set_size = None; set_label = None }

type t = {
  fs_type : string;
  root_ino : int;
  negative_dentries : bool;
      (** Whether the VFS should cache lookup failures as negative dentries.
          Pseudo file systems (proc, sys, dev) opt out in baseline Linux
          because a miss never costs disk I/O; the paper's aggressive
          negative caching overrides this (§5.2). *)
  lookup : int -> string -> (Attr.t, Errno.t) result;
      (** [lookup dir name]: resolve one component in directory [dir].
          [Error ENOENT] is the (cacheable) "definitely absent" answer. *)
  getattr : int -> (Attr.t, Errno.t) result;
  setattr : int -> setattr -> (Attr.t, Errno.t) result;
  readdir : int -> (dirent list, Errno.t) result;
      (** Full listing excluding ["."] and [".."], in storage order. *)
  create :
    int -> string -> File_kind.t -> Mode.t -> uid:int -> gid:int -> (Attr.t, Errno.t) result;
  symlink : int -> string -> target:string -> uid:int -> gid:int -> (Attr.t, Errno.t) result;
  link : int -> string -> int -> (Attr.t, Errno.t) result;
      (** [link dir name ino]: new hard link to existing inode [ino]. *)
  unlink : int -> string -> (unit, Errno.t) result;
  rmdir : int -> string -> (unit, Errno.t) result;
  rename : int -> string -> int -> string -> (unit, Errno.t) result;
      (** [rename old_dir old_name new_dir new_name], within this fs;
          overwrites a non-directory target, POSIX-style.  As in Linux, the
          caller (the VFS, under its rename lock) is responsible for
          rejecting a directory move into its own subtree. *)
  readlink : int -> (string, Errno.t) result;
  read : int -> off:int -> len:int -> (string, Errno.t) result;
  write : int -> off:int -> string -> (int, Errno.t) result;
  sync : unit -> unit;
  pin_inode : int -> unit;
      (** VFS holds a reference (an open file): keep the inode alive even at
          link count zero — the iget side of Linux's iget/iput. *)
  unpin_inode : int -> unit;
      (** Drop a reference; an unpinned inode with no links is freed. *)
  revalidate : (int -> (bool, Errno.t) result) option;
      (** [None] for local file systems: cached dentries are trusted.
          Network file systems with close-to-open consistency over a
          stateless protocol (NFS v2/3) must revalidate every cached
          component at the server — which, as the paper observes (§4.3),
          forces the walk back to component-at-a-time RPCs and nullifies
          the direct-lookup fastpath.  [Some check]: the walk calls [check
          ino] on every cached hit; [Ok false] means the entry is stale. *)
  lease_check : (int -> bool) option;
      (** [None] for local file systems.  A leased (stateful network) file
          system supplies [Some live]: [live ino] answers — locally,
          without an RPC, and without allocating — whether this client
          still holds a live server-granted lease on [ino].  The
          direct-lookup fastpath may serve a cached verdict locklessly
          only when the deciding inode's lease is live; a dead lease
          forces the slowpath, whose per-component [revalidate] re-earns
          the lease at the server.  A file system advertising
          [lease_check] keeps its dentries published for direct lookup
          even though it also advertises [revalidate] (the revalidation is
          the lease-recovery path, not a per-hit tax). *)
}

let ( let* ) = Result.bind
