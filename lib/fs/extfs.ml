open Dcache_types
open Fs_intf
module Pagecache = Dcache_storage.Pagecache

let magic = 0x45585453 (* "EXTS" *)
let inode_size = 128
let max_name_len = 255
let max_label_len = 32
let direct_pointers = 12

(* Little-endian accessors over cached pages. *)
let get32 b off =
  Char.code (Bytes.get b off)
  lor (Char.code (Bytes.get b (off + 1)) lsl 8)
  lor (Char.code (Bytes.get b (off + 2)) lsl 16)
  lor (Char.code (Bytes.get b (off + 3)) lsl 24)

let set32 b off v =
  Bytes.set b off (Char.chr (v land 0xff));
  Bytes.set b (off + 1) (Char.chr ((v lsr 8) land 0xff));
  Bytes.set b (off + 2) (Char.chr ((v lsr 16) land 0xff));
  Bytes.set b (off + 3) (Char.chr ((v lsr 24) land 0xff))

let get16 b off = Char.code (Bytes.get b off) lor (Char.code (Bytes.get b (off + 1)) lsl 8)

let set16 b off v =
  Bytes.set b off (Char.chr (v land 0xff));
  Bytes.set b (off + 1) (Char.chr ((v lsr 8) land 0xff))

let kind_to_byte = function
  | File_kind.Regular -> 1
  | File_kind.Directory -> 2
  | File_kind.Symlink -> 3
  | File_kind.Chardev -> 4
  | File_kind.Blockdev -> 5
  | File_kind.Fifo -> 6
  | File_kind.Socket -> 7

let kind_of_byte = function
  | 1 -> Some File_kind.Regular
  | 2 -> Some File_kind.Directory
  | 3 -> Some File_kind.Symlink
  | 4 -> Some File_kind.Chardev
  | 5 -> Some File_kind.Blockdev
  | 6 -> Some File_kind.Fifo
  | 7 -> Some File_kind.Socket
  | _ -> None

(* Superblock layout (block 0):
   0: magic | 4: block_count | 8: inode_count | 12: inode_bitmap_start
   16: inode_bitmap_blocks | 20: block_bitmap_start | 24: block_bitmap_blocks
   28: itable_start | 32: itable_blocks | 36: data_start | 40: root_ino *)
type geometry = {
  block_size : int;
  block_count : int;
  inode_count : int;
  inode_bitmap_start : int;
  block_bitmap_start : int;
  itable_start : int;
  data_start : int;
}

(* On-disk inode layout (128 bytes):
   0: kind (0 = free) | 1: label_len | 2-3: mode | 4-7: uid | 8-11: gid
   12-15: nlink | 16-19: size | 20-23: (reserved)
   24-71: direct[12] | 72-75: indirect | 76-107: label *)
type dinode = {
  kind : File_kind.t;
  mode : Mode.t;
  uid : int;
  gid : int;
  nlink : int;
  size : int;
  direct : int array;
  indirect : int;
  label : string option;
}

type state = {
  cache : Pagecache.t;
  geo : geometry;
  pins : (int, int) Hashtbl.t;  (* in-memory VFS references per inode *)
  mutable inode_hint : int;  (* next-free search cursors, like ext4's *)
  mutable block_hint : int;
}

let geometry_of_device cache =
  let block_size = Pagecache.block_size cache in
  (* This is only used from mkfs/mount on a device we control. *)
  block_size

let compute_geometry cache block_count =
  let block_size = geometry_of_device cache in
  let inode_count = max 64 (block_count / 4) in
  let bits_per_block = block_size * 8 in
  let inode_bitmap_blocks = (inode_count + bits_per_block - 1) / bits_per_block in
  let block_bitmap_blocks = (block_count + bits_per_block - 1) / bits_per_block in
  let inodes_per_block = block_size / inode_size in
  let itable_blocks = (inode_count + inodes_per_block - 1) / inodes_per_block in
  let inode_bitmap_start = 1 in
  let block_bitmap_start = inode_bitmap_start + inode_bitmap_blocks in
  let itable_start = block_bitmap_start + block_bitmap_blocks in
  let data_start = itable_start + itable_blocks in
  { block_size; block_count; inode_count; inode_bitmap_start; block_bitmap_start;
    itable_start; data_start }

(* --- bitmaps --- *)

let bitmap_set st ~start bit value =
  let bits_per_block = st.geo.block_size * 8 in
  let block = start + (bit / bits_per_block) in
  let idx = bit mod bits_per_block in
  Pagecache.with_page_mut st.cache block (fun b ->
      let byte = Char.code (Bytes.get b (idx / 8)) in
      let mask = 1 lsl (idx mod 8) in
      let byte = if value then byte lor mask else byte land lnot mask in
      Bytes.set b (idx / 8) (Char.chr byte))

(* Scan for a clear bit starting at [hint]; wraps around once.  The hint
   plus early exit keep allocation O(1) amortized, like real allocators. *)
let bitmap_find_free st ~start ~count ~hint =
  let bits_per_block = st.geo.block_size * 8 in
  let blocks = (count + bits_per_block - 1) / bits_per_block in
  let found = ref None in
  let scan_block blk ~from_bit =
    Pagecache.with_page st.cache (start + blk) (fun b ->
        let base = blk * bits_per_block in
        try
          for i = from_bit / 8 to st.geo.block_size - 1 do
            let byte = Char.code (Bytes.get b i) in
            if byte <> 0xff then
              for bit = 0 to 7 do
                let global = base + (i * 8) + bit in
                if global < count && byte land (1 lsl bit) = 0 then begin
                  found := Some global;
                  raise Exit
                end
              done
          done
        with Exit -> ())
  in
  let hint = if hint >= 0 && hint < count then hint else 0 in
  let first_block = hint / bits_per_block in
  (try
     scan_block first_block ~from_bit:(hint mod bits_per_block);
     if !found <> None then raise Exit;
     for blk = first_block + 1 to blocks - 1 do
       scan_block blk ~from_bit:0;
       if !found <> None then raise Exit
     done;
     for blk = 0 to first_block do
       scan_block blk ~from_bit:0;
       if !found <> None then raise Exit
     done
   with Exit -> ());
  !found

(* --- inode table --- *)

let inode_location st ino =
  let index = ino - 1 in
  let inodes_per_block = st.geo.block_size / inode_size in
  let block = st.geo.itable_start + (index / inodes_per_block) in
  let offset = index mod inodes_per_block * inode_size in
  (block, offset)

let read_dinode st ino =
  if ino < 1 || ino > st.geo.inode_count then Error Errno.EIO
  else begin
    let block, off = inode_location st ino in
    Pagecache.with_page st.cache block (fun b ->
        match kind_of_byte (Char.code (Bytes.get b off)) with
        | None -> Error Errno.EIO
        | Some kind ->
          let label_len = Char.code (Bytes.get b (off + 1)) in
          let label =
            if label_len = 0 then None
            else Some (Bytes.sub_string b (off + 76) label_len)
          in
          let direct = Array.init direct_pointers (fun i -> get32 b (off + 24 + (i * 4))) in
          Ok
            {
              kind;
              mode = get16 b (off + 2);
              uid = get32 b (off + 4);
              gid = get32 b (off + 8);
              nlink = get32 b (off + 12);
              size = get32 b (off + 16);
              direct;
              indirect = get32 b (off + 72);
              label;
            })
  end

let write_dinode st ino dinode =
  let block, off = inode_location st ino in
  Pagecache.with_page_mut st.cache block (fun b ->
      Bytes.set b off (Char.chr (kind_to_byte dinode.kind));
      let label = Option.value dinode.label ~default:"" in
      let label_len = min max_label_len (String.length label) in
      Bytes.set b (off + 1) (Char.chr label_len);
      set16 b (off + 2) (dinode.mode land 0xffff);
      set32 b (off + 4) dinode.uid;
      set32 b (off + 8) dinode.gid;
      set32 b (off + 12) dinode.nlink;
      set32 b (off + 16) dinode.size;
      Array.iteri (fun i ptr -> set32 b (off + 24 + (i * 4)) ptr) dinode.direct;
      set32 b (off + 72) dinode.indirect;
      Bytes.fill b (off + 76) max_label_len '\000';
      Bytes.blit_string label 0 b (off + 76) label_len)

let clear_dinode st ino =
  let block, off = inode_location st ino in
  Pagecache.with_page_mut st.cache block (fun b ->
      Bytes.fill b off inode_size '\000')

let attr_of_dinode ino d =
  { Attr.ino; kind = d.kind; mode = d.mode; uid = d.uid; gid = d.gid; nlink = d.nlink;
    size = d.size; label = d.label }

(* --- allocation --- *)

let alloc_inode st =
  match
    bitmap_find_free st ~start:st.geo.inode_bitmap_start ~count:st.geo.inode_count
      ~hint:st.inode_hint
  with
  | None -> Error Errno.ENOSPC
  | Some index ->
    bitmap_set st ~start:st.geo.inode_bitmap_start index true;
    st.inode_hint <- index + 1;
    Ok (index + 1)

let free_inode st ino =
  bitmap_set st ~start:st.geo.inode_bitmap_start (ino - 1) false;
  if ino - 1 < st.inode_hint then st.inode_hint <- ino - 1;
  clear_dinode st ino

let alloc_block st =
  let data_blocks = st.geo.block_count - st.geo.data_start in
  match
    bitmap_find_free st ~start:st.geo.block_bitmap_start ~count:data_blocks
      ~hint:st.block_hint
  with
  | None -> Error Errno.ENOSPC
  | Some index ->
    bitmap_set st ~start:st.geo.block_bitmap_start index true;
    st.block_hint <- index + 1;
    let block = st.geo.data_start + index in
    Pagecache.with_page_mut st.cache block (fun b -> Bytes.fill b 0 st.geo.block_size '\000');
    Ok block

let free_block st block =
  let index = block - st.geo.data_start in
  bitmap_set st ~start:st.geo.block_bitmap_start index false;
  if index < st.block_hint then st.block_hint <- index

(* --- file block mapping --- *)

let pointers_per_block st = st.geo.block_size / 4

(** [block_for st dinode index ~alloc] maps logical block [index] of a file
    to a device block.  With [alloc], missing blocks (and the indirect block)
    are allocated and the possibly-updated dinode is returned. *)
let block_for st dinode index ~alloc =
  if index < direct_pointers then begin
    let ptr = dinode.direct.(index) in
    if ptr <> 0 then Ok (ptr, dinode)
    else if not alloc then Ok (0, dinode)
    else begin
      let* block = alloc_block st in
      let direct = Array.copy dinode.direct in
      direct.(index) <- block;
      Ok (block, { dinode with direct })
    end
  end
  else begin
    let slot = index - direct_pointers in
    if slot >= pointers_per_block st then Error Errno.ENOSPC
    else begin
      let* indirect_block, dinode =
        if dinode.indirect <> 0 then Ok (dinode.indirect, dinode)
        else if not alloc then Ok (0, dinode)
        else begin
          let* block = alloc_block st in
          Ok (block, { dinode with indirect = block })
        end
      in
      if indirect_block = 0 then Ok (0, dinode)
      else begin
        let ptr =
          Pagecache.with_page st.cache indirect_block (fun b -> get32 b (slot * 4))
        in
        if ptr <> 0 then Ok (ptr, dinode)
        else if not alloc then Ok (0, dinode)
        else begin
          let* block = alloc_block st in
          Pagecache.with_page_mut st.cache indirect_block (fun b -> set32 b (slot * 4) block);
          Ok (block, dinode)
        end
      end
    end
  end

let iter_file_blocks st dinode f =
  for i = 0 to direct_pointers - 1 do
    if dinode.direct.(i) <> 0 then f dinode.direct.(i)
  done;
  if dinode.indirect <> 0 then begin
    let ptrs =
      Pagecache.with_page st.cache dinode.indirect (fun b ->
          List.init (pointers_per_block st) (fun i -> get32 b (i * 4)))
    in
    List.iter (fun ptr -> if ptr <> 0 then f ptr) ptrs;
    f dinode.indirect
  end

let free_file_blocks st dinode = iter_file_blocks st dinode (free_block st)

(* --- directory entries ---

   A directory's data blocks hold packed records; scanning stops at a zero
   namelen byte (the block tail is kept zeroed).  Tombstones have ino = 0 but
   keep their namelen so the scan can skip them. *)

let dirent_header = 6

let dir_blocks dinode =
  Array.to_list (Array.sub dinode.direct 0 direct_pointers)
  |> List.filter (fun b -> b <> 0)

type found = { f_block : int; f_off : int; f_ino : int; f_kind : File_kind.t }

(** Scan one directory block; [f] gets each live record and may short-circuit
    by returning [Some _]. *)
let scan_block st block f =
  Pagecache.with_page st.cache block (fun b ->
      let size = st.geo.block_size in
      let rec go off =
        if off + dirent_header > size then None
        else begin
          let namelen = Char.code (Bytes.get b (off + 5)) in
          if namelen = 0 then None
          else begin
            let ino = get32 b off in
            let kind = kind_of_byte (Char.code (Bytes.get b (off + 4))) in
            let record_len = dirent_header + namelen in
            if off + record_len > size then None
            else begin
              let result =
                if ino = 0 then None
                else begin
                  match kind with
                  | None -> None
                  | Some kind ->
                    let name = Bytes.sub_string b (off + dirent_header) namelen in
                    f ~block ~off ~ino ~kind ~name
                end
              in
              match result with Some _ as r -> r | None -> go (off + record_len)
            end
          end
        end
      in
      go 0)

let find_entry st dinode name =
  let rec go = function
    | [] -> None
    | block :: rest -> (
      let hit =
        scan_block st block (fun ~block ~off ~ino ~kind ~name:entry_name ->
            if String.equal entry_name name then
              Some { f_block = block; f_off = off; f_ino = ino; f_kind = kind }
            else None)
      in
      match hit with Some _ as r -> r | None -> go rest)
  in
  go (dir_blocks dinode)

let list_entries st dinode =
  let acc = ref [] in
  List.iter
    (fun block ->
      ignore
        (scan_block st block (fun ~block:_ ~off:_ ~ino ~kind ~name ->
             acc := { name; ino; kind } :: !acc;
             None)))
    (dir_blocks dinode);
  List.rev !acc

(** Insert a dirent, reusing an exact-size tombstone or appending into zeroed
    tail space; allocates a new directory block when needed.  Returns the
    possibly grown dinode. *)
let insert_entry st dir_ino dinode ~name ~ino ~kind =
  let namelen = String.length name in
  let record_len = dirent_header + namelen in
  let write_record block off =
    Pagecache.with_page_mut st.cache block (fun b ->
        set32 b off ino;
        Bytes.set b (off + 4) (Char.chr (kind_to_byte kind));
        Bytes.set b (off + 5) (Char.chr namelen);
        Bytes.blit_string name 0 b (off + dirent_header) namelen)
  in
  (* Pass 1: exact-size tombstone or free tail space in an existing block. *)
  let try_block block =
    Pagecache.with_page st.cache block (fun b ->
        let size = st.geo.block_size in
        let rec go off =
          if off + record_len > size then None
          else begin
            let entry_namelen = Char.code (Bytes.get b (off + 5)) in
            if entry_namelen = 0 then Some off (* zeroed tail: append here *)
            else begin
              let entry_ino = get32 b off in
              if entry_ino = 0 && entry_namelen = namelen then Some off
              else go (off + dirent_header + entry_namelen)
            end
          end
        in
        go 0)
  in
  let rec place = function
    | [] ->
      (* Allocate a fresh directory block in the first free direct slot. *)
      let rec free_slot i =
        if i >= direct_pointers then Error Errno.ENOSPC
        else if dinode.direct.(i) = 0 then Ok i
        else free_slot (i + 1)
      in
      let* slot = free_slot 0 in
      let* block = alloc_block st in
      let direct = Array.copy dinode.direct in
      direct.(slot) <- block;
      let dinode = { dinode with direct; size = dinode.size + st.geo.block_size } in
      write_dinode st dir_ino dinode;
      write_record block 0;
      Ok dinode
    | block :: rest -> (
      match try_block block with
      | Some off ->
        write_record block off;
        Ok dinode
      | None -> place rest)
  in
  place (dir_blocks dinode)

let remove_entry st found =
  Pagecache.with_page_mut st.cache found.f_block (fun b -> set32 b found.f_off 0)

let dir_is_empty st dinode = list_entries st dinode = []

(* --- mkfs / mount --- *)

let mkfs cache =
  let block_size = Pagecache.block_size cache in
  (* Derive the block count from the underlying device via a probe write to
     the last block? The device knows; Pagecache doesn't expose it, so use a
     generous default consistent with Blockdev.default_config. *)
  let block_count = 1 lsl 18 in
  let geo = compute_geometry cache block_count in
  let st = { cache; geo; pins = Hashtbl.create 16; inode_hint = 0; block_hint = 0 } in
  (* Zero all metadata blocks. *)
  let zero = Bytes.make block_size '\000' in
  for blk = 0 to geo.data_start - 1 do
    Pagecache.write_page cache blk zero
  done;
  (* Superblock. *)
  Pagecache.with_page_mut cache 0 (fun b ->
      set32 b 0 magic;
      set32 b 4 geo.block_count;
      set32 b 8 geo.inode_count;
      set32 b 12 geo.inode_bitmap_start;
      set32 b 16 (geo.block_bitmap_start - geo.inode_bitmap_start);
      set32 b 20 geo.block_bitmap_start;
      set32 b 24 (geo.itable_start - geo.block_bitmap_start);
      set32 b 28 geo.itable_start;
      set32 b 32 (geo.data_start - geo.itable_start);
      set32 b 36 geo.data_start;
      set32 b 40 1);
  (* Root directory: inode 1, no data blocks yet. *)
  bitmap_set st ~start:geo.inode_bitmap_start 0 true;
  write_dinode st 1
    {
      kind = File_kind.Directory;
      mode = Mode.default_dir;
      uid = 0;
      gid = 0;
      nlink = 2;
      size = 0;
      direct = Array.make direct_pointers 0;
      indirect = 0;
      label = None;
    };
  Pagecache.flush cache

let read_geometry cache =
  let block_size = Pagecache.block_size cache in
  Pagecache.with_page cache 0 (fun b ->
      if get32 b 0 <> magic then Error Errno.EINVAL
      else
        Ok
          {
            block_size;
            block_count = get32 b 4;
            inode_count = get32 b 8;
            inode_bitmap_start = get32 b 12;
            block_bitmap_start = get32 b 20;
            itable_start = get32 b 28;
            data_start = get32 b 36;
          })

(* --- the Fs_intf implementation --- *)

let get_dir st ino =
  let* d = read_dinode st ino in
  if File_kind.equal d.kind File_kind.Directory then Ok d else Error Errno.ENOTDIR

let make_fs st =
  let lookup dir name =
    if String.length name > max_name_len then Error Errno.ENAMETOOLONG
    else begin
      let* d = get_dir st dir in
      match find_entry st d name with
      | None -> Error Errno.ENOENT
      | Some found ->
        let* child = read_dinode st found.f_ino in
        Ok (attr_of_dinode found.f_ino child)
    end
  in
  let getattr ino =
    let* d = read_dinode st ino in
    Ok (attr_of_dinode ino d)
  in
  let truncate_to d size st =
    (* Only whole-hearted growth/shrink of the byte size; blocks beyond the
       new size are kept (no hole punching), matching simple file systems. *)
    ignore st;
    { d with size }
  in
  let setattr ino changes =
    let* d = read_dinode st ino in
    let d = match changes.set_mode with Some m -> { d with mode = m } | None -> d in
    let d = match changes.set_uid with Some u -> { d with uid = u } | None -> d in
    let d = match changes.set_gid with Some g -> { d with gid = g } | None -> d in
    let d =
      match changes.set_label with
      | Some label ->
        (match label with
        | Some l when String.length l > max_label_len -> d
        | _ -> { d with label })
      | None -> d
    in
    let d =
      match (changes.set_size, d.kind) with
      | Some size, File_kind.Regular -> truncate_to d size st
      | _, _ -> d
    in
    write_dinode st ino d;
    Ok (attr_of_dinode ino d)
  in
  let readdir dir =
    let* d = get_dir st dir in
    Ok (list_entries st d)
  in
  let new_inode st kind mode ~uid ~gid ~label =
    let* ino = alloc_inode st in
    let nlink = if File_kind.equal kind File_kind.Directory then 2 else 1 in
    let d =
      { kind; mode; uid; gid; nlink; size = 0; direct = Array.make direct_pointers 0;
        indirect = 0; label }
    in
    write_dinode st ino d;
    Ok (ino, d)
  in
  let add_entry_checked dir name ~child_kind k =
    if String.length name > max_name_len then Error Errno.ENAMETOOLONG
    else begin
      let* d = get_dir st dir in
      match find_entry st d name with
      | Some _ -> Error Errno.EEXIST
      | None ->
        let* ino, child = k () in
        let* d = insert_entry st dir d ~name ~ino ~kind:child_kind in
        if File_kind.equal child_kind File_kind.Directory then
          write_dinode st dir { d with nlink = d.nlink + 1 };
        Ok (attr_of_dinode ino child)
    end
  in
  let create dir name kind mode ~uid ~gid =
    match kind with
    | File_kind.Symlink -> Error Errno.EINVAL
    | _ ->
      add_entry_checked dir name ~child_kind:kind (fun () ->
          new_inode st kind mode ~uid ~gid ~label:None)
  in
  let write_data ino data =
    (* Raw append used by symlink; assumes a fresh inode. *)
    let* d = read_dinode st ino in
    let len = String.length data in
    let block_size = st.geo.block_size in
    let rec loop off d =
      if off >= len then Ok d
      else begin
        let idx = off / block_size in
        let* block, d = block_for st d idx ~alloc:true in
        let chunk = min block_size (len - off) in
        Pagecache.with_page_mut st.cache block (fun b -> Bytes.blit_string data off b 0 chunk);
        loop (off + chunk) d
      end
    in
    let* d = loop 0 d in
    let d = { d with size = len } in
    write_dinode st ino d;
    Ok ()
  in
  let symlink dir name ~target ~uid ~gid =
    let* attr =
      add_entry_checked dir name ~child_kind:File_kind.Symlink (fun () ->
          new_inode st File_kind.Symlink Mode.rwxrwxrwx ~uid ~gid ~label:None)
    in
    let* () = write_data attr.Attr.ino target in
    getattr attr.Attr.ino
  in
  let link dir name ino =
    let* target = read_dinode st ino in
    if File_kind.equal target.kind File_kind.Directory then Error Errno.EPERM
    else begin
      if String.length name > max_name_len then Error Errno.ENAMETOOLONG
      else begin
        let* d = get_dir st dir in
        match find_entry st d name with
        | Some _ -> Error Errno.EEXIST
        | None ->
          let* _d = insert_entry st dir d ~name ~ino ~kind:target.kind in
          let target = { target with nlink = target.nlink + 1 } in
          write_dinode st ino target;
          Ok (attr_of_dinode ino target)
      end
    end
  in
  let destroy st ino d =
    free_file_blocks st d;
    free_inode st ino
  in
  let drop_nlink st ino d =
    let d = { d with nlink = d.nlink - 1 } in
    if d.nlink <= 0 then begin
      if Hashtbl.mem st.pins ino then write_dinode st ino d (* orphan until unpin *)
      else destroy st ino d
    end
    else write_dinode st ino d
  in
  let pin_inode ino =
    Hashtbl.replace st.pins ino (1 + Option.value (Hashtbl.find_opt st.pins ino) ~default:0)
  in
  let unpin_inode ino =
    match Hashtbl.find_opt st.pins ino with
    | None -> ()
    | Some n when n > 1 -> Hashtbl.replace st.pins ino (n - 1)
    | Some _ ->
      Hashtbl.remove st.pins ino;
      (match read_dinode st ino with
      | Ok d when d.nlink <= 0 -> destroy st ino d
      | Ok _ | Error _ -> ())
  in
  let unlink dir name =
    let* d = get_dir st dir in
    match find_entry st d name with
    | None -> Error Errno.ENOENT
    | Some found ->
      if File_kind.equal found.f_kind File_kind.Directory then Error Errno.EISDIR
      else begin
        let* child = read_dinode st found.f_ino in
        remove_entry st found;
        drop_nlink st found.f_ino child;
        Ok ()
      end
  in
  let rmdir dir name =
    let* d = get_dir st dir in
    match find_entry st d name with
    | None -> Error Errno.ENOENT
    | Some found ->
      if not (File_kind.equal found.f_kind File_kind.Directory) then Error Errno.ENOTDIR
      else begin
        let* child = read_dinode st found.f_ino in
        if not (dir_is_empty st child) then Error Errno.ENOTEMPTY
        else begin
          remove_entry st found;
          free_file_blocks st child;
          free_inode st found.f_ino;
          let* d = get_dir st dir in
          write_dinode st dir { d with nlink = d.nlink - 1 };
          ignore d;
          Ok ()
        end
      end
  in
  let rename old_dir old_name new_dir new_name =
    let* od = get_dir st old_dir in
    match find_entry st od old_name with
    | None -> Error Errno.ENOENT
    | Some src ->
      let* nd = get_dir st new_dir in
      let src_is_dir = File_kind.equal src.f_kind File_kind.Directory in
      let* () =
        match find_entry st nd new_name with
        | None -> Ok ()
        | Some dst when dst.f_ino = src.f_ino -> Ok ()
        | Some dst -> (
          let* dst_inode = read_dinode st dst.f_ino in
          match (src_is_dir, File_kind.equal dst.f_kind File_kind.Directory) with
          | true, true ->
            if not (dir_is_empty st dst_inode) then Error Errno.ENOTEMPTY
            else begin
              remove_entry st dst;
              free_file_blocks st dst_inode;
              free_inode st dst.f_ino;
              let* nd = get_dir st new_dir in
              write_dinode st new_dir { nd with nlink = nd.nlink - 1 };
              Ok ()
            end
          | true, false -> Error Errno.ENOTDIR
          | false, true -> Error Errno.EISDIR
          | false, false ->
            remove_entry st dst;
            drop_nlink st dst.f_ino dst_inode;
            Ok ())
      in
      (* Re-read directories: the target removal may have rewritten them. *)
      let* od = get_dir st old_dir in
      (match find_entry st od old_name with
      | None -> Error Errno.EIO
      | Some src ->
        remove_entry st src;
        let* nd = get_dir st new_dir in
        let* nd = insert_entry st new_dir nd ~name:new_name ~ino:src.f_ino ~kind:src.f_kind in
        if src_is_dir && old_dir <> new_dir then begin
          write_dinode st new_dir { nd with nlink = nd.nlink + 1 };
          let* od = get_dir st old_dir in
          write_dinode st old_dir { od with nlink = od.nlink - 1 };
          Ok ()
        end
        else Ok ())
  in
  let read_file_data st d ~off ~len =
    let block_size = st.geo.block_size in
    let available = max 0 (min len (d.size - off)) in
    let out = Bytes.create available in
    let rec loop pos =
      if pos >= available then ()
      else begin
        let file_off = off + pos in
        let idx = file_off / block_size in
        let block_off = file_off mod block_size in
        let chunk = min (block_size - block_off) (available - pos) in
        (match block_for st d idx ~alloc:false with
        | Ok (0, _) | Error _ -> Bytes.fill out pos chunk '\000'
        | Ok (block, _) ->
          Pagecache.with_page st.cache block (fun b -> Bytes.blit b block_off out pos chunk));
        loop (pos + chunk)
      end
    in
    loop 0;
    Bytes.unsafe_to_string out
  in
  let readlink ino =
    let* d = read_dinode st ino in
    if not (File_kind.equal d.kind File_kind.Symlink) then Error Errno.EINVAL
    else Ok (read_file_data st d ~off:0 ~len:d.size)
  in
  let read ino ~off ~len =
    let* d = read_dinode st ino in
    match d.kind with
    | File_kind.Directory -> Error Errno.EISDIR
    | File_kind.Symlink -> Error Errno.EINVAL
    | _ -> Ok (read_file_data st d ~off ~len)
  in
  let write ino ~off data =
    let* d = read_dinode st ino in
    match d.kind with
    | File_kind.Directory -> Error Errno.EISDIR
    | File_kind.Symlink -> Error Errno.EINVAL
    | _ ->
      let block_size = st.geo.block_size in
      let len = String.length data in
      let rec loop pos d =
        if pos >= len then Ok d
        else begin
          let file_off = off + pos in
          let idx = file_off / block_size in
          let block_off = file_off mod block_size in
          let chunk = min (block_size - block_off) (len - pos) in
          let* block, d = block_for st d idx ~alloc:true in
          Pagecache.with_page_mut st.cache block (fun b ->
              Bytes.blit_string data pos b block_off chunk);
          loop (pos + chunk) d
        end
      in
      let* d = loop 0 d in
      let d = { d with size = max d.size (off + len) } in
      write_dinode st ino d;
      Ok len
  in
  {
    fs_type = "extfs";
    root_ino = 1;
    negative_dentries = true;
    lookup;
    getattr;
    setattr;
    readdir;
    create;
    symlink;
    link;
    unlink;
    rmdir;
    rename;
    readlink;
    read;
    write;
    sync = (fun () -> Pagecache.flush st.cache);
    pin_inode;
    unpin_inode;
    revalidate = None;
    lease_check = None;
  }

(* Storage faults surface as [Errno.Error] exceptions raised inside the
   page cache; convert them into [Error] results at the interface boundary
   so the VFS sees an honest errno instead of an exception unwinding
   through a half-finished walk.  [sync]/[pin]/[unpin] have no result
   channel: a failure there leaves its pages dirty (retried by the next
   flush) and is swallowed, exactly the silent outcome a dying disk gives
   the kernel — fsck or a scrub finds the damage later. *)
let shield (fs : Fs_intf.t) =
  let open Fs_intf in
  {
    fs with
    lookup = (fun dir name -> try fs.lookup dir name with Errno.Error e -> Error e);
    getattr = (fun ino -> try fs.getattr ino with Errno.Error e -> Error e);
    setattr = (fun ino changes -> try fs.setattr ino changes with Errno.Error e -> Error e);
    readdir = (fun dir -> try fs.readdir dir with Errno.Error e -> Error e);
    create =
      (fun dir name kind mode ~uid ~gid ->
        try fs.create dir name kind mode ~uid ~gid with Errno.Error e -> Error e);
    symlink =
      (fun dir name ~target ~uid ~gid ->
        try fs.symlink dir name ~target ~uid ~gid with Errno.Error e -> Error e);
    link = (fun dir name ino -> try fs.link dir name ino with Errno.Error e -> Error e);
    unlink = (fun dir name -> try fs.unlink dir name with Errno.Error e -> Error e);
    rmdir = (fun dir name -> try fs.rmdir dir name with Errno.Error e -> Error e);
    rename =
      (fun old_dir old_name new_dir new_name ->
        try fs.rename old_dir old_name new_dir new_name with Errno.Error e -> Error e);
    readlink = (fun ino -> try fs.readlink ino with Errno.Error e -> Error e);
    read = (fun ino ~off ~len -> try fs.read ino ~off ~len with Errno.Error e -> Error e);
    write = (fun ino ~off data -> try fs.write ino ~off data with Errno.Error e -> Error e);
    sync = (fun () -> try fs.sync () with Errno.Error _ -> ());
    pin_inode = (fun ino -> try fs.pin_inode ino with Errno.Error _ -> ());
    unpin_inode = (fun ino -> try fs.unpin_inode ino with Errno.Error _ -> ());
  }

let mount cache =
  match
    let* geo = read_geometry cache in
    Ok (shield (make_fs { cache; geo; pins = Hashtbl.create 16; inode_hint = 0; block_hint = 0 }))
  with
  | result -> result
  | exception Errno.Error e -> Error e

let mkfs_and_mount cache =
  mkfs cache;
  match mount cache with
  | Ok fs -> fs
  | Error e ->
    (* Only reachable when a fault was injected between format and mount:
       propagate the device error rather than dying on an assert. *)
    raise (Errno.Error e)
