(** Simulated network file system client/server (paper §4.3, leases §3.7).

    A server wraps any local {!Fs_intf.t}; clients forward every operation
    as an RPC, charging round-trip latency to the shared virtual clock.
    Two consistency protocols are modeled:

    - {!Stateless} (NFS v2/3 close-to-open): the client cannot trust cached
      dentries and must revalidate every component at the server.  The
      client advertises a [revalidate] hook, which the VFS walk calls on
      every cached hit — re-introducing one RPC per component and, exactly
      as the paper observes, nullifying the direct-lookup fastpath (which
      refuses to publish a revalidating file system's dentries).

    - {!Stateful} (AFS / NFSv4.1 delegations): every RPC that returns an
      inode's attributes also grants the client a {e lease} on that inode —
      a promise, expiring after [lease_ttl_ns] of virtual time, that the
      server will break (with an invalidation callback) before letting the
      inode change.  The direct-lookup fastpath serves a warm hit
      locklessly only while the deciding inode's lease is live
      ({!Fs_intf.t.lease_check}); a dead lease forces the slowpath, whose
      [revalidate] re-earns the lease in one getattr round trip.

    Failure semantics (§3.7): leases make the degradation ladder honest.
    Under a {e partition} the client keeps serving still-live leases
    locklessly, degrades to revalidate-per-lookup with retry/backoff as
    they expire, and only then surfaces [EIO] (never cached as absence).
    A server {e crash/restart} voids the grant book and bumps the epoch:
    duplicate-reply-cache entries and client lease tables from the old
    epoch are fenced, and mutations stall for a grace period covering
    [lease_ttl + skew] — so a lease the dead server forgot how to break
    expires before any post-crash mutation can land.  A stale positive can
    therefore be served for at most [lease_ttl + skew] virtual ns after
    the mutation, under any schedule of drops, partitions and crashes. *)

type protocol = Stateless | Stateful

type server

val server :
  ?rpc_latency_ns:int ->
  ?faults:Dcache_util.Fault.t ->
  ?delay_ns:int ->
  ?lease_ttl_ns:int ->
  ?grace_ns:int ->
  ?skew_ns:int ->
  clock:Dcache_util.Vclock.t ->
  Fs_intf.t ->
  server
(** [rpc_latency_ns] defaults to 120_000 (a 120 µs LAN round trip).

    [faults] attaches the link to a fault injector with four sites:
    ["netfs.drop"] loses one request/reply exchange the lossy-link way (an
    idempotent request vanishes; a mutating one executes and loses its
    reply), ["netfs.delay"] adds [delay_ns] (default 2 ms) to a successful
    round trip, ["netfs.partition"] swallows the exchange before the
    server sees it (no execution, either class — and lease-break
    deliveries crossing it are lost too), ["netfs.crash"] restarts the
    server mid-exchange (epoch bump, grants voided, grace opens).

    Lease knobs default to the canonical figures in {!Dcache_vfs.Config}:
    50 ms ttl, 52 ms grace, 2 ms skew (all virtual).
    @raise Invalid_argument if [grace_ns < lease_ttl_ns + skew_ns] — the
    crash-recovery staleness argument needs grace to outlive every
    forgotten lease. *)

val rpc_count : server -> int
(** Total RPCs served, including retransmissions (for tests and
    benchmarks). *)

val reset_rpc_count : server -> unit

type retry_policy = {
  timeout_ns : int;  (** client wait before a retransmission *)
  max_retries : int;  (** retransmissions before giving up with [EIO] *)
  backoff_base_ns : int;  (** first retry delay; doubles per retry *)
  backoff_max_ns : int;  (** cap on the exponential backoff *)
}

val default_retry : retry_policy
(** 1 ms timeout, 4 retries, 0.5 ms backoff doubling up to 8 ms. *)

type rpc_stats = {
  mutable rs_drops : int;  (** exchanges lost to the drop site *)
  mutable rs_delays : int;
  mutable rs_retries : int;  (** client retransmissions *)
  mutable rs_giveups : int;  (** logical ops failed [EIO] after max retries *)
  mutable rs_drc_hits : int;  (** duplicates answered from the reply cache *)
  mutable rs_partitions : int;  (** exchanges swallowed by a partition *)
  mutable rs_crashes : int;  (** server crash/restart events *)
  mutable rs_fenced : int;  (** stale-epoch DRC replies discarded *)
}

val rpc_stats : server -> rpc_stats
val reset_rpc_stats : server -> unit

val fault_sites : server -> Dcache_util.Fault.site list
(** The server's registered fault sites (drop, delay, partition, crash) in
    that order; empty when no injector is attached.  For observability
    surfaces that enumerate per-site arrivals exactly. *)

(** {1 Clients} *)

type client
(** One client's connection state: its lease table, the server epoch it
    last observed, and its invalidation hook. *)

val connect : ?protocol:protocol -> server -> client
(** Register a new client (default {!Stateful}). *)

val client : protocol:protocol -> ?retry:retry_policy -> server -> Fs_intf.t
(** [connect] + {!fs} in one step — the historical constructor, for callers
    that never need the client handle.

    Every lost exchange costs the client its full [timeout_ns] on the
    virtual clock plus an exponentially backed-off pause before the resend.
    Retransmission is idempotency-aware and epoch-fenced: mutating requests
    that executed but lost their reply are answered from a duplicate-reply
    cache instead of re-executing, unless the entry predates a server
    crash, in which case it is fenced and the op re-executes under the new
    epoch.  After [max_retries] resends the operation fails with
    [Error EIO] — which the VFS above treats as "unknown", never caching
    it as absence. *)

val connect_fs :
  ?protocol:protocol -> ?retry:retry_policy -> server -> client * Fs_intf.t
(** [connect] + {!fs}, returning both the handle (for {!set_invalidate},
    {!lease_stats}) and the mountable file system. *)

val set_invalidate : client -> (int -> unit) -> unit
(** Wire the per-client invalidation hook: called with the inode number
    each time the server breaks one of this client's leases (and the
    delivery survives any partition).  The kernel integration points this
    at its dcache eviction. *)

val client_id : client -> int
val client_epoch : client -> int
(** The server epoch this client last observed; lags {!epoch} until its
    next completed exchange. *)

type lease_stats = {
  ls_grants : int;  (** leases granted (or refreshed) to this client *)
  ls_gate_live : int;  (** lockless gate consults answered "live" *)
  ls_gate_expired : int;  (** gate consults that found the lease expired *)
  ls_gate_miss : int;  (** gate consults with no lease on the books *)
  ls_breaks : int;  (** invalidations delivered to this client *)
  ls_fences : int;  (** lease-table flushes on an observed epoch change *)
  ls_live : int;  (** leases currently live (gauge) *)
}

val lease_stats : server -> client -> lease_stats

val clients : server -> client list
(** Registration order. *)

(** {1 Server state} *)

val epoch : server -> int
(** Bumped by every crash/restart; 0 at birth. *)

val in_grace : server -> bool
val lease_ttl_ns : server -> int
val lease_skew_ns : server -> int
val grace_ns : server -> int

val grant_count : server -> int
(** Grants currently on the server's books (gauge), across all clients. *)

val bump_generation : server -> int -> unit
(** Mark inode [ino] changed on the server out-of-band {e without}
    breaking leases: a client's next revalidation of it fails.  Prefer
    {!break_callback} for lease-coherent external mutations. *)

type callback = { mutable on_break : int -> unit }

val callbacks : server -> callback
(** The legacy server-wide callback channel, fired after the per-client
    lease breaks; integrations predating per-client handles point
    [on_break] at their cache invalidation. *)

val break_callback : server -> int -> unit
(** An external (server-side) mutation of inode [ino]: bumps its
    generation, breaks every client's lease on it (deliveries may be lost
    across a live partition — the ttl bounds that window), then fires the
    legacy [on_break] channel. *)
