(** Simulated network file system client/server (paper §4.3).

    A server wraps any local {!Fs_intf.t}; clients forward every operation
    as an RPC, charging round-trip latency to the shared virtual clock.
    Two consistency protocols are modeled:

    - {!Stateless} (NFS v2/3 close-to-open): the client cannot trust cached
      dentries and must revalidate every component at the server.  The
      client advertises a [revalidate] hook, which the VFS walk calls on
      every cached hit — re-introducing one RPC per component and, exactly
      as the paper observes, nullifying the direct-lookup fastpath (which
      refuses to bypass a revalidating file system).

    - {!Stateful} (AFS / NFSv4.1 callbacks): the server promises to notify
      the client when cached state goes stale, so cached dentries are
      trusted and the fastpath applies unchanged.  External (server-side)
      mutations are delivered as callbacks; in this simulation the test or
      benchmark triggers them explicitly with {!break_callback} after
      mutating the server fs out-of-band.

    Consistency model: all mutations by this client go through the client
    (and are therefore coherent); out-of-band server mutations are visible
    to a [Stateless] client on its next revalidation, and to a [Stateful]
    client once the callback fires. *)

type protocol = Stateless | Stateful

type server

val server :
  ?rpc_latency_ns:int ->
  ?faults:Dcache_util.Fault.t ->
  ?delay_ns:int ->
  clock:Dcache_util.Vclock.t ->
  Fs_intf.t ->
  server
(** [rpc_latency_ns] defaults to 120_000 (a 120 µs LAN round trip).

    [faults] attaches the link to a fault injector with two sites:
    ["netfs.drop"] loses one request/reply exchange (the client observes a
    timeout and retransmits, see {!retry_policy}), ["netfs.delay"] adds
    [delay_ns] (default 2 ms) to an otherwise successful round trip. *)

val rpc_count : server -> int
(** Total RPCs served, including retransmissions (for tests and
    benchmarks). *)

val reset_rpc_count : server -> unit

type retry_policy = {
  timeout_ns : int;  (** client wait before a retransmission *)
  max_retries : int;  (** retransmissions before giving up with [EIO] *)
  backoff_base_ns : int;  (** first retry delay; doubles per retry *)
  backoff_max_ns : int;  (** cap on the exponential backoff *)
}

val default_retry : retry_policy
(** 1 ms timeout, 4 retries, 0.5 ms backoff doubling up to 8 ms. *)

type rpc_stats = {
  mutable rs_drops : int;  (** exchanges lost to the drop site *)
  mutable rs_delays : int;
  mutable rs_retries : int;  (** client retransmissions *)
  mutable rs_giveups : int;  (** logical ops failed [EIO] after max retries *)
  mutable rs_drc_hits : int;  (** duplicates answered from the reply cache *)
}

val rpc_stats : server -> rpc_stats
val reset_rpc_stats : server -> unit

val client : protocol:protocol -> ?retry:retry_policy -> server -> Fs_intf.t
(** Every lost exchange costs the client its full [timeout_ns] on the
    virtual clock plus an exponentially backed-off pause before the resend.
    Retransmission is idempotency-aware: mutating requests that executed
    but lost their reply are answered from a duplicate-reply cache instead
    of re-executing (so a retried [create] does not return [EEXIST] and a
    retried [rename] cannot apply twice).  After [max_retries] resends the
    operation fails with [Error EIO] — which the VFS above treats as
    "unknown", never caching it as absence. *)

val bump_generation : server -> int -> unit
(** Mark inode [ino] changed on the server out-of-band: a [Stateless]
    client's next revalidation of it fails, forcing a re-lookup. *)

type callback = { mutable on_break : int -> unit }

val callbacks : server -> callback
(** The server-to-client callback channel; a [Stateful] integration points
    [on_break] at its cache-invalidation routine. *)

val break_callback : server -> int -> unit
(** Fire the staleness callback for inode [ino] (also bumps its
    generation). *)
