open Dcache_types
open Fs_intf

type node =
  | PDir of (string, int) Hashtbl.t
  | PFile of (unit -> string)
  | PSymlink of string

type inode = { ino : int; mode : Mode.t; node : node }
type t = {
  inodes : (int, inode) Hashtbl.t;
  mutable next_ino : int;
  mutable fs_cache : Fs_intf.t option;
}

let kind_of_node = function
  | PDir _ -> File_kind.Directory
  | PFile _ -> File_kind.Regular
  | PSymlink _ -> File_kind.Symlink

let attr_of inode =
  let kind = kind_of_node inode.node in
  let size =
    match inode.node with
    | PDir children -> 4096 + Hashtbl.length children
    | PFile gen -> String.length (gen ())
    | PSymlink target -> String.length target
  in
  Attr.make ~mode:inode.mode ~nlink:1 ~size ~ino:inode.ino ~kind ()

let get t ino =
  match Hashtbl.find_opt t.inodes ino with Some i -> Ok i | None -> Error Errno.EIO

let get_dir t ino =
  let* inode = get t ino in
  match inode.node with
  | PDir children -> Ok children
  | PFile _ | PSymlink _ -> Error Errno.ENOTDIR

let alloc t node ~mode =
  let ino = t.next_ino in
  t.next_ino <- ino + 1;
  let inode = { ino; mode; node } in
  Hashtbl.add t.inodes ino inode;
  inode

let make_fs t =
  let lookup dir name =
    let* children = get_dir t dir in
    match Hashtbl.find_opt children name with
    | Some ino -> Result.map attr_of (get t ino)
    | None -> Error Errno.ENOENT
  in
  let getattr ino = Result.map attr_of (get t ino) in
  let readdir dir =
    let* children = get_dir t dir in
    let entries =
      Hashtbl.fold
        (fun name ino acc ->
          match Hashtbl.find_opt t.inodes ino with
          | Some inode -> { name; ino; kind = kind_of_node inode.node } :: acc
          | None -> acc)
        children []
    in
    Ok (List.sort (fun a b -> compare a.name b.name) entries)
  in
  let readlink ino =
    let* inode = get t ino in
    match inode.node with
    | PSymlink target -> Ok target
    | PDir _ | PFile _ -> Error Errno.EINVAL
  in
  let read ino ~off ~len =
    let* inode = get t ino in
    match inode.node with
    | PDir _ -> Error Errno.EISDIR
    | PSymlink _ -> Error Errno.EINVAL
    | PFile gen ->
      let content = gen () in
      if off >= String.length content then Ok ""
      else Ok (String.sub content off (min len (String.length content - off)))
  in
  let eperm2 _ _ = Error Errno.EPERM in
  {
    fs_type = "pseudofs";
    root_ino = 1;
    negative_dentries = false;
    lookup;
    getattr;
    setattr = (fun _ _ -> Error Errno.EPERM);
    readdir;
    create = (fun _ _ _ _ ~uid:_ ~gid:_ -> Error Errno.EPERM);
    symlink = (fun _ _ ~target:_ ~uid:_ ~gid:_ -> Error Errno.EPERM);
    link = (fun _ _ _ -> Error Errno.EPERM);
    unlink = eperm2;
    rmdir = eperm2;
    rename = (fun _ _ _ _ -> Error Errno.EPERM);
    readlink;
    read;
    write = (fun _ ~off:_ _ -> Error Errno.EPERM);
    sync = (fun () -> ());
    pin_inode = (fun _ -> ());
    unpin_inode = (fun _ -> ());
    revalidate = None;
    lease_check = None;
  }

let create () =
  let t = { inodes = Hashtbl.create 64; next_ino = 1; fs_cache = None } in
  let root = alloc t (PDir (Hashtbl.create 16)) ~mode:Mode.default_dir in
  assert (root.ino = 1);
  t

let fs t =
  match t.fs_cache with
  | Some f -> f
  | None ->
    let f = make_fs t in
    t.fs_cache <- Some f;
    f

let split_path path =
  String.split_on_char '/' path |> List.filter (fun c -> c <> "" && c <> ".")

let resolve_parent t path =
  match List.rev (split_path path) with
  | [] -> Error Errno.EINVAL
  | name :: rev_parents ->
    let rec descend ino = function
      | [] -> Ok ino
      | comp :: rest -> (
        let* children = get_dir t ino in
        match Hashtbl.find_opt children comp with
        | Some child -> descend child rest
        | None -> Error Errno.ENOENT)
    in
    let* parent = descend 1 (List.rev rev_parents) in
    Ok (parent, name)

let add t path node ~mode =
  let* parent, name = resolve_parent t path in
  let* children = get_dir t parent in
  if Hashtbl.mem children name then Error Errno.EEXIST
  else begin
    let inode = alloc t node ~mode in
    Hashtbl.add children name inode.ino;
    Ok ()
  end

let add_dir t path = add t path (PDir (Hashtbl.create 8)) ~mode:Mode.default_dir
let add_file t path ~content = add t path (PFile content) ~mode:0o444
let add_symlink t path ~target = add t path (PSymlink target) ~mode:Mode.rwxrwxrwx

let remove t path =
  let* parent, name = resolve_parent t path in
  let* children = get_dir t parent in
  match Hashtbl.find_opt children name with
  | None -> Error Errno.ENOENT
  | Some ino ->
    Hashtbl.remove children name;
    Hashtbl.remove t.inodes ino;
    Ok ()
