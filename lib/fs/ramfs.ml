open Dcache_types
open Fs_intf

type node =
  | Dir of (string, int) Hashtbl.t
  | File of file
  | Symlink of string

and file = { mutable data : bytes; mutable size : int }

type inode = {
  ino : int;
  mutable mode : Mode.t;
  mutable uid : int;
  mutable gid : int;
  mutable nlink : int;
  pins : int Atomic.t;  (* VFS references: open files keep orphans alive;
                           pinned on the lockless open tier *)
  mutable label : string option;
  node : node;
}

(* The inode store is indexed by inode number in a slot array so reads are
   lock-free: getattr/read/write run on the lockless fastpath tier, and
   sharded mutation sections on different stripes allocate and drop inodes
   concurrently.  Slots are atomic cells; the array only grows, under
   [grow_mu], and the new array shares the old cells (references are
   copied, not values), so a domain still holding the pre-grow array
   reads and writes the very same cells. *)
type state = {
  slots : inode option Atomic.t array Atomic.t;
  grow_mu : Mutex.t;
  next_ino : int Atomic.t;
}

let kind_of_node = function
  | Dir _ -> File_kind.Directory
  | File _ -> File_kind.Regular
  | Symlink _ -> File_kind.Symlink

let size_of_node = function
  | Dir children -> 4096 + (Hashtbl.length children * 32)
  | File f -> f.size
  | Symlink target -> String.length target

let attr_of inode =
  let kind = kind_of_node inode.node in
  let size = size_of_node inode.node in
  {
    Attr.ino = inode.ino;
    kind;
    mode = inode.mode;
    uid = inode.uid;
    gid = inode.gid;
    nlink = inode.nlink;
    size;
    label = inode.label;
  }

let get state ino =
  let a = Atomic.get state.slots in
  if ino >= 0 && ino < Array.length a then begin
    match Atomic.get (Array.unsafe_get a ino) with
    | Some inode -> Ok inode
    | None -> Error Errno.EIO
  end
  else Error Errno.EIO

let forget state ino =
  let a = Atomic.get state.slots in
  if ino >= 0 && ino < Array.length a then Atomic.set (Array.unsafe_get a ino) None

let get_dir state ino =
  let* inode = get state ino in
  match inode.node with
  | Dir children -> Ok (inode, children)
  | File _ | Symlink _ -> Error Errno.ENOTDIR

let alloc state node ~mode ~uid ~gid =
  Mutex.lock state.grow_mu;
  let ino = Atomic.fetch_and_add state.next_ino 1 in
  let a = Atomic.get state.slots in
  let a =
    if ino >= Array.length a then begin
      let bigger =
        Array.init
          (max (2 * Array.length a) (ino + 1))
          (fun i -> if i < Array.length a then a.(i) else Atomic.make None)
      in
      Atomic.set state.slots bigger;
      bigger
    end
    else a
  in
  let nlink = match node with Dir _ -> 2 | File _ | Symlink _ -> 1 in
  let inode = { ino; mode; uid; gid; nlink; pins = Atomic.make 0; label = None; node } in
  Atomic.set a.(ino) (Some inode);
  Mutex.unlock state.grow_mu;
  inode

let max_name_len = 255

let check_name name k = if String.length name > max_name_len then Error Errno.ENAMETOOLONG else k ()

let create () =
  let state =
    {
      slots = Atomic.make (Array.init 1024 (fun _ -> Atomic.make None));
      grow_mu = Mutex.create ();
      next_ino = Atomic.make 1;
    }
  in
  let root = alloc state (Dir (Hashtbl.create 16)) ~mode:Mode.default_dir ~uid:0 ~gid:0 in
  let lookup dir name =
    check_name name @@ fun () ->
    let* _, children = get_dir state dir in
    match Hashtbl.find_opt children name with
    | Some ino -> Result.map attr_of (get state ino)
    | None -> Error Errno.ENOENT
  in
  let getattr ino = Result.map attr_of (get state ino) in
  let setattr ino changes =
    let* inode = get state ino in
    Option.iter (fun m -> inode.mode <- m) changes.set_mode;
    Option.iter (fun u -> inode.uid <- u) changes.set_uid;
    Option.iter (fun g -> inode.gid <- g) changes.set_gid;
    Option.iter (fun l -> inode.label <- l) changes.set_label;
    (match (changes.set_size, inode.node) with
    | Some size, File f ->
      if size <= Bytes.length f.data then f.size <- size
      else begin
        let bigger = Bytes.make size '\000' in
        Bytes.blit f.data 0 bigger 0 f.size;
        f.data <- bigger;
        f.size <- size
      end
    | Some _, (Dir _ | Symlink _) | None, _ -> ());
    Ok (attr_of inode)
  in
  let readdir dir =
    let* _, children = get_dir state dir in
    let entries =
      Hashtbl.fold
        (fun name ino acc ->
          match get state ino with
          | Ok inode -> { name; ino; kind = kind_of_node inode.node } :: acc
          | Error _ -> acc)
        children []
    in
    Ok (List.sort (fun a b -> compare a.name b.name) entries)
  in
  let add_child state dir name node ~mode ~uid ~gid =
    check_name name @@ fun () ->
    let* parent, children = get_dir state dir in
    if Hashtbl.mem children name then Error Errno.EEXIST
    else begin
      let inode = alloc state node ~mode ~uid ~gid in
      Hashtbl.add children name inode.ino;
      (match node with Dir _ -> parent.nlink <- parent.nlink + 1 | File _ | Symlink _ -> ());
      Ok (attr_of inode)
    end
  in
  let create dir name kind mode ~uid ~gid =
    match kind with
    | File_kind.Directory -> add_child state dir name (Dir (Hashtbl.create 8)) ~mode ~uid ~gid
    | File_kind.Regular | File_kind.Chardev | File_kind.Blockdev | File_kind.Fifo
    | File_kind.Socket ->
      add_child state dir name (File { data = Bytes.empty; size = 0 }) ~mode ~uid ~gid
    | File_kind.Symlink -> Error Errno.EINVAL
  in
  let symlink dir name ~target ~uid ~gid =
    add_child state dir name (Symlink target) ~mode:Mode.rwxrwxrwx ~uid ~gid
  in
  let link dir name ino =
    let* _, children = get_dir state dir in
    let* inode = get state ino in
    match inode.node with
    | Dir _ -> Error Errno.EPERM
    | File _ | Symlink _ ->
      if Hashtbl.mem children name then Error Errno.EEXIST
      else begin
        Hashtbl.add children name ino;
        inode.nlink <- inode.nlink + 1;
        Ok (attr_of inode)
      end
  in
  let drop_link state inode =
    inode.nlink <- inode.nlink - 1;
    if inode.nlink = 0 && Atomic.get inode.pins = 0 then forget state inode.ino
  in
  let pin_inode ino = match get state ino with Ok i -> Atomic.incr i.pins | Error _ -> () in
  let unpin_inode ino =
    match get state ino with
    | Ok i ->
      (* Clamp at zero: unbalanced unpins must not let pins go negative. *)
      let rec dec () =
        let p = Atomic.get i.pins in
        if p > 0 && not (Atomic.compare_and_set i.pins p (p - 1)) then dec () else max 0 (p - 1)
      in
      if dec () = 0 && i.nlink = 0 then forget state ino
    | Error _ -> ()
  in
  let unlink dir name =
    let* _, children = get_dir state dir in
    match Hashtbl.find_opt children name with
    | None -> Error Errno.ENOENT
    | Some ino -> (
      let* inode = get state ino in
      match inode.node with
      | Dir _ -> Error Errno.EISDIR
      | File _ | Symlink _ ->
        Hashtbl.remove children name;
        drop_link state inode;
        Ok ())
  in
  let rmdir dir name =
    let* parent, children = get_dir state dir in
    match Hashtbl.find_opt children name with
    | None -> Error Errno.ENOENT
    | Some ino -> (
      let* inode = get state ino in
      match inode.node with
      | File _ | Symlink _ -> Error Errno.ENOTDIR
      | Dir grandchildren ->
        if Hashtbl.length grandchildren > 0 then Error Errno.ENOTEMPTY
        else begin
          Hashtbl.remove children name;
          parent.nlink <- parent.nlink - 1;
          inode.nlink <- 0;
          if Atomic.get inode.pins = 0 then forget state ino;
          Ok ()
        end)
  in
  let rename old_dir old_name new_dir new_name =
    let* old_parent, old_children = get_dir state old_dir in
    let* new_parent, new_children = get_dir state new_dir in
    match Hashtbl.find_opt old_children old_name with
    | None -> Error Errno.ENOENT
    | Some src_ino ->
      let* src = get state src_ino in
      let src_is_dir = match src.node with Dir _ -> true | File _ | Symlink _ -> false in
      let replace_target () =
        match Hashtbl.find_opt new_children new_name with
        | None -> Ok ()
        | Some dst_ino when dst_ino = src_ino -> Ok ()
        | Some dst_ino -> (
          let* dst = get state dst_ino in
          match (src.node, dst.node) with
          | Dir _, Dir dst_children ->
            if Hashtbl.length dst_children > 0 then Error Errno.ENOTEMPTY
            else begin
              Hashtbl.remove new_children new_name;
              new_parent.nlink <- new_parent.nlink - 1;
              forget state dst_ino;
              Ok ()
            end
          | Dir _, (File _ | Symlink _) -> Error Errno.ENOTDIR
          | (File _ | Symlink _), Dir _ -> Error Errno.EISDIR
          | (File _ | Symlink _), (File _ | Symlink _) ->
            Hashtbl.remove new_children new_name;
            drop_link state dst;
            Ok ())
      in
      let* () = replace_target () in
      if Hashtbl.mem new_children new_name && Hashtbl.find new_children new_name = src_ino
      then begin
        (* Renaming onto a hard link of itself: POSIX says do nothing. *)
        if not (old_dir = new_dir && old_name = new_name) then
          Hashtbl.remove old_children old_name;
        Ok ()
      end
      else begin
        Hashtbl.remove old_children old_name;
        Hashtbl.add new_children new_name src_ino;
        if src_is_dir && old_dir <> new_dir then begin
          old_parent.nlink <- old_parent.nlink - 1;
          new_parent.nlink <- new_parent.nlink + 1
        end;
        Ok ()
      end
  in
  let readlink ino =
    let* inode = get state ino in
    match inode.node with
    | Symlink target -> Ok target
    | Dir _ | File _ -> Error Errno.EINVAL
  in
  let read ino ~off ~len =
    let* inode = get state ino in
    match inode.node with
    | Dir _ -> Error Errno.EISDIR
    | Symlink _ -> Error Errno.EINVAL
    | File f ->
      if off >= f.size then Ok ""
      else begin
        let available = min len (f.size - off) in
        Ok (Bytes.sub_string f.data off available)
      end
  in
  let write ino ~off data =
    let* inode = get state ino in
    match inode.node with
    | Dir _ -> Error Errno.EISDIR
    | Symlink _ -> Error Errno.EINVAL
    | File f ->
      let needed = off + String.length data in
      if needed > Bytes.length f.data then begin
        let capacity = max needed (max 64 (Bytes.length f.data * 2)) in
        let bigger = Bytes.make capacity '\000' in
        Bytes.blit f.data 0 bigger 0 f.size;
        f.data <- bigger
      end;
      Bytes.blit_string data 0 f.data off (String.length data);
      f.size <- max f.size needed;
      Ok (String.length data)
  in
  {
    fs_type = "ramfs";
    root_ino = root.ino;
    negative_dentries = true;
    lookup;
    getattr;
    setattr;
    readdir;
    create;
    symlink;
    link;
    unlink;
    rmdir;
    rename;
    readlink;
    read;
    write;
    sync = (fun () -> ());
    pin_inode;
    unpin_inode;
    revalidate = None;
    lease_check = None;
  }
