open Dcache_types
open Fs_intf
module Fault = Dcache_util.Fault
module Vclock = Dcache_util.Vclock
module Trace = Dcache_util.Trace

type protocol = Stateless | Stateful

type callback = { mutable on_break : int -> unit }

(* Per-server fault sites: a fired "netfs.drop" loses one exchange (the
   client sees a timeout), a fired "netfs.delay" adds [delay_ns] to an
   otherwise successful round trip. *)
type faults = { drop : Fault.site; delay : Fault.site; delay_ns : int64 }

type rpc_stats = {
  mutable rs_drops : int;  (** exchanges lost to the drop site *)
  mutable rs_delays : int;
  mutable rs_retries : int;  (** client retransmissions *)
  mutable rs_giveups : int;  (** logical ops failed EIO after max retries *)
  mutable rs_drc_hits : int;  (** duplicates answered from the reply cache *)
}

type server = {
  backing : Fs_intf.t;
  clock : Dcache_util.Vclock.t;
  rpc_latency : int64;
  generations : (int, int) Hashtbl.t;  (* per-inode change generation *)
  mutable rpcs : int;
  cb : callback;
  faults : faults option;
  stats : rpc_stats;
}

let server ?(rpc_latency_ns = 120_000) ?faults ?(delay_ns = 2_000_000) ~clock backing =
  let faults =
    Option.map
      (fun injector ->
        {
          drop = Fault.site injector "netfs.drop";
          delay = Fault.site injector "netfs.delay";
          delay_ns = Int64.of_int delay_ns;
        })
      faults
  in
  {
    backing;
    clock;
    rpc_latency = Int64.of_int rpc_latency_ns;
    generations = Hashtbl.create 256;
    rpcs = 0;
    cb = { on_break = (fun _ -> ()) };
    faults;
    stats = { rs_drops = 0; rs_delays = 0; rs_retries = 0; rs_giveups = 0; rs_drc_hits = 0 };
  }

let rpc_count t = t.rpcs
let reset_rpc_count t = t.rpcs <- 0
let rpc_stats t = t.stats

let reset_rpc_stats t =
  let s = t.stats in
  s.rs_drops <- 0;
  s.rs_delays <- 0;
  s.rs_retries <- 0;
  s.rs_giveups <- 0;
  s.rs_drc_hits <- 0

let callbacks t = t.cb

let generation t ino = Option.value (Hashtbl.find_opt t.generations ino) ~default:0

let bump_generation t ino = Hashtbl.replace t.generations ino (generation t ino + 1)

let break_callback t ino =
  bump_generation t ino;
  t.cb.on_break ino

type retry_policy = {
  timeout_ns : int;  (** how long the client waits before retransmitting *)
  max_retries : int;  (** retransmissions before giving up with [EIO] *)
  backoff_base_ns : int;  (** first retry delay; doubles per retry *)
  backoff_max_ns : int;  (** cap on the exponential backoff *)
}

let default_retry =
  { timeout_ns = 1_000_000; max_retries = 4; backoff_base_ns = 500_000; backoff_max_ns = 8_000_000 }

(* One logical RPC: at-least-once retransmission with idempotency-aware
   duplicate suppression.

   A dropped exchange is modelled pessimally for each class of request.
   For an idempotent one the request itself is lost (the server never
   executes); for a mutating one the server executes and the *reply* is
   lost — the case a duplicate-reply cache exists for.  The retransmission
   carries the same transaction id, so the server answers a recognized
   duplicate from the recorded reply instead of re-executing ([rs_drc_hits]);
   without that, a retried [create] would bounce with [EEXIST] and a retried
   [rename] could apply twice.  [reply = Some r] below {e is} the DRC entry
   for the op in flight — entries are dropped once the reply gets through,
   which is the usual "singleton slot per channel" NFS server behaviour.

   Every lost exchange burns the full client timeout on the virtual clock,
   then an exponentially backed-off pause before the resend; after
   [max_retries] resends the op fails with [EIO] — the cache above must
   treat that as "unknown", never as "absent". *)
let rpc t policy ~idempotent f =
  let rec go attempt ~reply =
    t.rpcs <- t.rpcs + 1;
    let dropped = match t.faults with Some fl -> Fault.fire fl.drop | None -> false in
    let reply =
      if dropped && idempotent then reply
      else
        match reply with
        | Some _ ->
          t.stats.rs_drc_hits <- t.stats.rs_drc_hits + 1;
          Trace.stamp Trace.ev_rpc_drc_hit attempt;
          reply
        | None -> Some (f t.backing)
    in
    if dropped then begin
      t.stats.rs_drops <- t.stats.rs_drops + 1;
      Trace.stamp Trace.ev_rpc_drop attempt;
      Vclock.charge t.clock (Int64.of_int policy.timeout_ns);
      if attempt >= policy.max_retries then begin
        t.stats.rs_giveups <- t.stats.rs_giveups + 1;
        Trace.stamp Trace.ev_rpc_giveup attempt;
        Errno.to_error Errno.EIO
      end
      else begin
        t.stats.rs_retries <- t.stats.rs_retries + 1;
        Trace.stamp Trace.ev_rpc_retry attempt;
        let backoff = min policy.backoff_max_ns (policy.backoff_base_ns lsl attempt) in
        Vclock.charge t.clock (Int64.of_int backoff);
        go (attempt + 1) ~reply
      end
    end
    else begin
      (match t.faults with
      | Some fl when Fault.fire fl.delay ->
        t.stats.rs_delays <- t.stats.rs_delays + 1;
        Vclock.charge t.clock fl.delay_ns
      | _ -> ());
      Vclock.charge t.clock t.rpc_latency;
      match reply with Some r -> r | None -> assert false
    end
  in
  go 0 ~reply:None

let client ~protocol ?(retry = default_retry) server =
  let fs = server.backing in
  (* What generation of each inode this client last saw; refreshed by any
     RPC that returns the inode's attributes. *)
  let seen : (int, int) Hashtbl.t = Hashtbl.create 256 in
  let note_attr (attr : Attr.t) =
    Hashtbl.replace seen attr.Attr.ino (generation server attr.Attr.ino);
    attr
  in
  let mutated ino =
    bump_generation server ino;
    Hashtbl.replace seen ino (generation server ino)
  in
  let revalidate ino =
    rpc server retry ~idempotent:true (fun backing ->
        match backing.getattr ino with
        | Error Errno.EIO -> Ok false (* the inode is gone on the server *)
        | Error _ as e -> Result.map (fun _ -> false) e
        | Ok _ ->
          let current = generation server ino in
          let fresh =
            match Hashtbl.find_opt seen ino with
            | Some g -> g = current
            | None -> false
          in
          Hashtbl.replace seen ino current;
          Ok fresh)
  in
  {
    fs_type = (match protocol with Stateless -> "netfs-stateless" | Stateful -> "netfs-stateful");
    root_ino = fs.root_ino;
    (* A stateless client cannot trust cached absence either: negative
       dentries are disabled so every miss re-asks the server. *)
    negative_dentries = (protocol = Stateful);
    lookup =
      (fun dir name -> rpc server retry ~idempotent:true (fun b -> Result.map note_attr (b.lookup dir name)));
    getattr = (fun ino -> rpc server retry ~idempotent:true (fun b -> Result.map note_attr (b.getattr ino)));
    setattr =
      (fun ino changes ->
        rpc server retry ~idempotent:false (fun b ->
            let result = b.setattr ino changes in
            mutated ino;
            Result.map note_attr result));
    readdir = (fun dir -> rpc server retry ~idempotent:true (fun b -> b.readdir dir));
    create =
      (fun dir name kind mode ~uid ~gid ->
        rpc server retry ~idempotent:false (fun b ->
            let result = b.create dir name kind mode ~uid ~gid in
            mutated dir;
            Result.map note_attr result));
    symlink =
      (fun dir name ~target ~uid ~gid ->
        rpc server retry ~idempotent:false (fun b ->
            let result = b.symlink dir name ~target ~uid ~gid in
            mutated dir;
            Result.map note_attr result));
    link =
      (fun dir name ino ->
        rpc server retry ~idempotent:false (fun b ->
            let result = b.link dir name ino in
            mutated dir;
            mutated ino;
            Result.map note_attr result));
    unlink =
      (fun dir name ->
        rpc server retry ~idempotent:false (fun b ->
            let result = b.unlink dir name in
            mutated dir;
            result));
    rmdir =
      (fun dir name ->
        rpc server retry ~idempotent:false (fun b ->
            let result = b.rmdir dir name in
            mutated dir;
            result));
    rename =
      (fun od on nd nn ->
        rpc server retry ~idempotent:false (fun b ->
            let result = b.rename od on nd nn in
            mutated od;
            mutated nd;
            result));
    readlink = (fun ino -> rpc server retry ~idempotent:true (fun b -> b.readlink ino));
    read = (fun ino ~off ~len -> rpc server retry ~idempotent:true (fun b -> b.read ino ~off ~len));
    write =
      (fun ino ~off data ->
        rpc server retry ~idempotent:false (fun b ->
            let result = b.write ino ~off data in
            mutated ino;
            result));
    sync = (fun () -> fs.sync ());
    pin_inode = fs.pin_inode;
    unpin_inode = fs.unpin_inode;
    revalidate = (match protocol with Stateless -> Some revalidate | Stateful -> None);
  }
