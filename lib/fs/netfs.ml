open Dcache_types
open Fs_intf
module Fault = Dcache_util.Fault
module Vclock = Dcache_util.Vclock
module Trace = Dcache_util.Trace
module Profiler = Dcache_util.Profiler

type protocol = Stateless | Stateful

type callback = { mutable on_break : int -> unit }

(* Per-server fault sites.
   - "netfs.drop": one exchange is lost in the classic lossy-link way — an
     idempotent request vanishes before execution, a mutating one executes
     but its reply vanishes (the DRC case).
   - "netfs.delay": adds [delay_ns] to an otherwise successful round trip.
   - "netfs.partition": the link is down — the exchange is lost {e before}
     the server sees it, for both request classes.  Partition differs from
     drop precisely in that a partitioned mutation never half-executes, and
     in that lease-break callbacks crossing the partition are lost too.
   - "netfs.crash": the server dies and restarts between the request being
     sent and any reply arriving: epoch bumps, every lease grant is voided,
     a grace period opens, and the in-flight exchange is lost. *)
type faults = {
  drop : Fault.site;
  delay : Fault.site;
  partition : Fault.site;
  crash : Fault.site;
  delay_ns : int64;
}

type rpc_stats = {
  mutable rs_drops : int;  (** exchanges lost to the drop site *)
  mutable rs_delays : int;
  mutable rs_retries : int;  (** client retransmissions *)
  mutable rs_giveups : int;  (** logical ops failed EIO after max retries *)
  mutable rs_drc_hits : int;  (** duplicates answered from the reply cache *)
  mutable rs_partitions : int;  (** exchanges swallowed by a partition *)
  mutable rs_crashes : int;  (** server crash/restart events *)
  mutable rs_fenced : int;  (** pre-crash DRC replies fenced by the epoch *)
}

(* One client handle: its lease table, the server epoch it last observed,
   and the invalidation hook the kernel integration wires to its dcache.
   [leases] maps inode -> client-side expiry (virtual ns, plain int): the
   lockless gate is a Hashtbl.find + integer compare, no allocation. *)
type client = {
  c_id : int;
  c_protocol : protocol;
  mutable c_epoch_seen : int;
  c_leases : (int, int) Hashtbl.t;
  c_seen : (int, int) Hashtbl.t;  (* inode -> generation last observed *)
  (* §3.8 causal tracing: inode -> span of the remote request whose
     mutation broke our lease on it, recorded at delivery and consumed by
     the lease gate's miss branch to stamp the cross-client link. *)
  c_break_spans : (int, int) Hashtbl.t;
  mutable c_on_invalidate : int -> unit;
  (* per-client lease statistics; mutable ints so the gate stays 0-alloc *)
  mutable c_grants : int;
  mutable c_gate_live : int;
  mutable c_gate_expired : int;
  mutable c_gate_miss : int;
  mutable c_breaks : int;  (* invalidations delivered to this client *)
  mutable c_fences : int;  (* lease-table flushes on an epoch change *)
}

type server = {
  backing : Fs_intf.t;
  clock : Dcache_util.Vclock.t;
  rpc_latency : int64;
  generations : (int, int) Hashtbl.t;  (* per-inode change generation *)
  mutable rpcs : int;
  cb : callback;
  faults : faults option;
  stats : rpc_stats;
  (* --- lease protocol state (§3.7) --- *)
  lease_ttl : int;
  lease_skew : int;
  grace : int;
  mutable epoch : int;  (* bumped by every crash/restart *)
  mutable grace_until : int;  (* virtual ns; mutations stall until then *)
  grants : (int, (int, int) Hashtbl.t) Hashtbl.t;
      (* inode -> (client id -> server-side expiry).  The server's book of
         promises: a mutation must break every entry here (or be unable to,
         across a partition — which is why grants also carry an expiry). *)
  mutable clients : client list;  (* registration order, for callbacks *)
  mutable next_client : int;
}

let server ?(rpc_latency_ns = 120_000) ?faults ?(delay_ns = 2_000_000)
    ?(lease_ttl_ns = 50_000_000) ?(grace_ns = 52_000_000) ?(skew_ns = 2_000_000)
    ~clock backing =
  if grace_ns < lease_ttl_ns + skew_ns then
    invalid_arg "Netfs.server: grace_ns must cover lease_ttl_ns + skew_ns";
  let faults =
    Option.map
      (fun injector ->
        {
          drop = Fault.site injector "netfs.drop";
          delay = Fault.site injector "netfs.delay";
          partition = Fault.site injector "netfs.partition";
          crash = Fault.site injector "netfs.crash";
          delay_ns = Int64.of_int delay_ns;
        })
      faults
  in
  {
    backing;
    clock;
    rpc_latency = Int64.of_int rpc_latency_ns;
    generations = Hashtbl.create 256;
    rpcs = 0;
    cb = { on_break = (fun _ -> ()) };
    faults;
    stats =
      {
        rs_drops = 0;
        rs_delays = 0;
        rs_retries = 0;
        rs_giveups = 0;
        rs_drc_hits = 0;
        rs_partitions = 0;
        rs_crashes = 0;
        rs_fenced = 0;
      };
    lease_ttl = lease_ttl_ns;
    lease_skew = skew_ns;
    grace = grace_ns;
    epoch = 0;
    grace_until = 0;
    grants = Hashtbl.create 256;
    clients = [];
    next_client = 0;
  }

let rpc_count t = t.rpcs
let reset_rpc_count t = t.rpcs <- 0
let rpc_stats t = t.stats

let reset_rpc_stats t =
  let s = t.stats in
  s.rs_drops <- 0;
  s.rs_delays <- 0;
  s.rs_retries <- 0;
  s.rs_giveups <- 0;
  s.rs_drc_hits <- 0;
  s.rs_partitions <- 0;
  s.rs_crashes <- 0;
  s.rs_fenced <- 0

let callbacks t = t.cb
let epoch t = t.epoch
let lease_ttl_ns t = t.lease_ttl
let lease_skew_ns t = t.lease_skew
let grace_ns t = t.grace

let now_ns t = Int64.to_int (Vclock.elapsed_ns t.clock)
let in_grace t = now_ns t < t.grace_until

let fault_sites t =
  match t.faults with
  | None -> []
  | Some fl -> [ fl.drop; fl.delay; fl.partition; fl.crash ]

let grant_count t =
  Hashtbl.fold (fun _ holders acc -> acc + Hashtbl.length holders) t.grants 0

let generation t ino = Option.value (Hashtbl.find_opt t.generations ino) ~default:0

let bump_generation t ino = Hashtbl.replace t.generations ino (generation t ino + 1)

(* --- the lease book --- *)

(* Grant (or refresh) a lease on [ino] to [c].  The client trusts it for
   [lease_ttl]; the server keeps it on the books for [lease_ttl + skew], so
   a client clock lagging by up to [skew] still goes stale before the
   server forgets the promise.  No grants during grace: a restarting
   server's book is empty and must stay empty until every promise it might
   have forgotten has expired. *)
let grant t c ino =
  if c.c_protocol = Stateful && not (in_grace t) then begin
    let now = now_ns t in
    Hashtbl.replace c.c_leases ino (now + t.lease_ttl);
    let holders =
      match Hashtbl.find_opt t.grants ino with
      | Some h -> h
      | None ->
        let h = Hashtbl.create 4 in
        Hashtbl.add t.grants ino h;
        h
    in
    Hashtbl.replace holders c.c_id (now + t.lease_ttl + t.lease_skew);
    c.c_grants <- c.c_grants + 1;
    Trace.stamp Trace.ev_lease_grant ino
  end

(* Break every grant on [ino], delivering an invalidation callback to each
   holder except [except] (the mutating client already knows).  A delivery
   crossing a live partition is lost — the holder keeps its (expiring)
   lease, which is exactly the window the ttl bounds.  Expired grants are
   dropped without a delivery attempt: the holder's own gate already
   refuses them. *)
let break_leases t ~except ino =
  match Hashtbl.find_opt t.grants ino with
  | None -> ()
  | Some holders ->
    let now = now_ns t in
    Hashtbl.remove t.grants ino;
    Hashtbl.iter
      (fun cid expiry ->
        if cid <> except && expiry >= now then begin
          Trace.stamp Trace.ev_lease_break ino;
          let delivered =
            match t.faults with
            | Some fl when Fault.fire fl.partition ->
              t.stats.rs_partitions <- t.stats.rs_partitions + 1;
              Trace.stamp Trace.ev_rpc_partition ino;
              false
            | _ -> true
          in
          if delivered then
            List.iter
              (fun c ->
                if c.c_id = cid then begin
                  Hashtbl.remove c.c_leases ino;
                  (* §3.8: remember which request broke us {e before}
                     delivering the invalidation — the callback re-enters
                     the holder's kernel and may replace the domain's
                     current span.  The holder's next gate miss on [ino]
                     consumes this and stamps the cross-client link. *)
                  if !Profiler.armed then
                    Hashtbl.replace c.c_break_spans ino (Profiler.current ());
                  c.c_breaks <- c.c_breaks + 1;
                  c.c_on_invalidate ino
                end)
              t.clients
        end)
      holders

(* Seed-deterministic server crash/restart: the epoch fences everything the
   old incarnation promised or half-answered, the grant book is wiped (a
   real server's lease state is volatile), and a grace period opens during
   which mutations stall and no new leases are granted.  Because
   [grace >= ttl + skew], every pre-crash client lease — which the server
   can no longer break — expires before the first post-crash mutation can
   execute, making the staleness bound structural rather than best-effort. *)
let restart t =
  t.epoch <- t.epoch + 1;
  Hashtbl.reset t.grants;
  t.grace_until <- now_ns t + t.grace;
  t.stats.rs_crashes <- t.stats.rs_crashes + 1;
  Trace.stamp Trace.ev_netfs_crash t.epoch

let break_callback t ino =
  bump_generation t ino;
  break_leases t ~except:(-1) ino;
  t.cb.on_break ino

type retry_policy = {
  timeout_ns : int;  (** how long the client waits before retransmitting *)
  max_retries : int;  (** retransmissions before giving up with [EIO] *)
  backoff_base_ns : int;  (** first retry delay; doubles per retry *)
  backoff_max_ns : int;  (** cap on the exponential backoff *)
}

let default_retry =
  { timeout_ns = 1_000_000; max_retries = 4; backoff_base_ns = 500_000; backoff_max_ns = 8_000_000 }

(* One logical RPC: at-least-once retransmission with idempotency-aware
   duplicate suppression and epoch fencing.

   Exchange loss comes in three flavours, checked in severity order:

   - crash ("netfs.crash"): the server restarts mid-exchange.  The reply —
     and for a mutating op possibly the execution — from the old
     incarnation is moot; the retransmission reaches the new epoch.
   - partition ("netfs.partition"): the link is down, the request is lost
     before the server sees it — no execution for either request class.
   - drop ("netfs.drop"): the classic lossy link.  An idempotent request is
     lost; a mutating one executes and loses its reply, the case the
     duplicate-reply cache exists for.

   [reply = Some (epoch, r)] below {e is} the DRC entry for the op in
   flight, now epoch-stamped: a retransmission that finds the entry's
   epoch current is answered from it ([rs_drc_hits]) — without that, a
   retried [create] would bounce with [EEXIST] and a retried [rename]
   could apply twice.  An entry from a {e previous} epoch is fenced
   ([rs_fenced]): the restarted server has no idea whether that reply
   described state that survived the crash, so the op re-executes under
   the current epoch.  Re-execution of a mutation during the grace period
   stalls (the clock is charged up to [grace_until]) — mutations may not
   land while forgotten pre-crash leases could still be live.

   Every lost exchange burns the full client timeout on the virtual clock,
   then an exponentially backed-off pause before the resend; after
   [max_retries] resends the op fails with [EIO] — the cache above must
   treat that as "unknown", never as "absent". *)
let rpc t policy ~idempotent f =
  (* §3.8: the wire message carries the issuing request's span, and the
     server-side execution runs under it — so client RPC and server work
     (including the lease breaks a mutation triggers) share one lane in
     the trace.  Captured once here: a DRC-fenced re-execution on a later
     attempt still belongs to the original request. *)
  let wire_span = Profiler.current () in
  let execute () =
    let run () =
      if not idempotent then begin
        let now = now_ns t in
        if now < t.grace_until then
          Vclock.charge t.clock (Int64.of_int (t.grace_until - now))
      end;
      (t.epoch, f t.backing)
    in
    if wire_span = 0 then run () else Profiler.with_span wire_span run
  in
  let rec go attempt ~reply =
    t.rpcs <- t.rpcs + 1;
    Trace.stamp Trace.ev_rpc_send attempt;
    let crashed = match t.faults with Some fl -> Fault.fire fl.crash | None -> false in
    if crashed then restart t;
    let partitioned =
      match t.faults with Some fl -> Fault.fire fl.partition | None -> false
    in
    if partitioned then begin
      t.stats.rs_partitions <- t.stats.rs_partitions + 1;
      Trace.stamp Trace.ev_rpc_partition attempt
    end;
    let dropped =
      (not crashed) && (not partitioned)
      && match t.faults with Some fl -> Fault.fire fl.drop | None -> false
    in
    let lost = crashed || partitioned || dropped in
    (* Under crash or partition the request never reaches a live server;
       under drop, an idempotent request is lost but a mutating one
       executes (reply lost). *)
    let reply =
      if crashed || partitioned || (dropped && idempotent) then reply
      else begin
        match reply with
        | Some (e, _) when e = t.epoch ->
          t.stats.rs_drc_hits <- t.stats.rs_drc_hits + 1;
          Trace.stamp Trace.ev_rpc_drc_hit attempt;
          reply
        | Some (e, _) ->
          t.stats.rs_fenced <- t.stats.rs_fenced + 1;
          Trace.stamp Trace.ev_lease_fence e;
          Some (execute ())
        | None -> Some (execute ())
      end
    in
    if lost then begin
      if dropped then begin
        t.stats.rs_drops <- t.stats.rs_drops + 1;
        Trace.stamp Trace.ev_rpc_drop attempt
      end;
      Vclock.charge t.clock (Int64.of_int policy.timeout_ns);
      if attempt >= policy.max_retries then begin
        t.stats.rs_giveups <- t.stats.rs_giveups + 1;
        Trace.stamp Trace.ev_rpc_giveup attempt;
        Errno.to_error Errno.EIO
      end
      else begin
        t.stats.rs_retries <- t.stats.rs_retries + 1;
        Trace.stamp Trace.ev_rpc_retry attempt;
        let backoff = min policy.backoff_max_ns (policy.backoff_base_ns lsl attempt) in
        Vclock.charge t.clock (Int64.of_int backoff);
        go (attempt + 1) ~reply
      end
    end
    else begin
      (match t.faults with
      | Some fl when Fault.fire fl.delay ->
        t.stats.rs_delays <- t.stats.rs_delays + 1;
        Vclock.charge t.clock fl.delay_ns
      | _ -> ());
      Vclock.charge t.clock t.rpc_latency;
      match reply with Some (_, r) -> r | None -> assert false
    end
  in
  go 0 ~reply:None

(* --- client handles --- *)

let connect ?(protocol = Stateful) server =
  let c =
    {
      c_id = server.next_client;
      c_protocol = protocol;
      c_epoch_seen = server.epoch;
      c_leases = Hashtbl.create 256;
      c_seen = Hashtbl.create 256;
      c_break_spans = Hashtbl.create 16;
      c_on_invalidate = (fun _ -> ());
      c_grants = 0;
      c_gate_live = 0;
      c_gate_expired = 0;
      c_gate_miss = 0;
      c_breaks = 0;
      c_fences = 0;
    }
  in
  server.next_client <- server.next_client + 1;
  server.clients <- server.clients @ [ c ];
  c

let set_invalidate c hook = c.c_on_invalidate <- hook

(* §3.8: the victim end of the cross-client causal edge.  A gate miss on
   an inode whose lease a remote mutation broke consumes the recorded
   breaker span and stamps the link (arg = breaker).  Int-key
   Hashtbl.find/remove allocate nothing, and the miss branch has already
   left the warm path. *)
let note_break_span c ino =
  if !Profiler.armed then begin
    match Hashtbl.find c.c_break_spans ino with
    | breaker ->
      Hashtbl.remove c.c_break_spans ino;
      Trace.stamp Trace.ev_span_link breaker
    | exception Not_found -> ()
  end
let client_id c = c.c_id
let client_epoch c = c.c_epoch_seen

type lease_stats = {
  ls_grants : int;
  ls_gate_live : int;
  ls_gate_expired : int;
  ls_gate_miss : int;
  ls_breaks : int;
  ls_fences : int;
  ls_live : int;
}

let lease_stats server c =
  let now = now_ns server in
  let live = Hashtbl.fold (fun _ e acc -> if e >= now then acc + 1 else acc) c.c_leases 0 in
  {
    ls_grants = c.c_grants;
    ls_gate_live = c.c_gate_live;
    ls_gate_expired = c.c_gate_expired;
    ls_gate_miss = c.c_gate_miss;
    ls_breaks = c.c_breaks;
    ls_fences = c.c_fences;
    ls_live = live;
  }

let clients t = t.clients

(* Client-side epoch observation: every exchange that completes tells the
   client which server incarnation answered.  A new epoch means every local
   lease was promised by a dead server — flush them all (epoch fencing on
   the client side), then resume acquiring leases from the new one. *)
let observe_epoch server c =
  if c.c_epoch_seen <> server.epoch then begin
    Trace.stamp Trace.ev_lease_fence c.c_epoch_seen;
    c.c_fences <- c.c_fences + 1;
    Hashtbl.reset c.c_leases;
    c.c_epoch_seen <- server.epoch
  end

let fs server c retry =
  let backing = server.backing in
  let protocol = c.c_protocol in
  let note_attr (attr : Attr.t) =
    Hashtbl.replace c.c_seen attr.Attr.ino (generation server attr.Attr.ino);
    grant server c attr.Attr.ino;
    attr
  in
  (* A mutation by this client: bump the server generation, break everyone
     else's leases (deliveries may be lost across a partition — their ttl
     covers that), and re-earn our own lease immediately: we just heard
     from the server, so the promise is fresh by construction. *)
  let mutated ino =
    bump_generation server ino;
    break_leases server ~except:c.c_id ino;
    Hashtbl.replace c.c_seen ino (generation server ino);
    grant server c ino
  in
  let rpc_ policy ~idempotent f =
    let r = rpc server policy ~idempotent f in
    observe_epoch server c;
    r
  in
  (* The slowpath revalidation ladder (§3.7).  A live local lease answers
     with no RPC at all; otherwise one getattr round trip checks the
     generation and re-earns the lease.  Under a partition the RPC itself
     degrades through retry/backoff to EIO — served to the caller as
     "unknown", never cached as absence. *)
  let revalidate ino =
    let live =
      protocol = Stateful
      &&
      match Hashtbl.find c.c_leases ino with
      | expiry -> now_ns server <= expiry
      | exception Not_found -> false
    in
    if live then Ok true
    else
      rpc_ retry ~idempotent:true (fun backing ->
          match backing.getattr ino with
          | Error Errno.EIO -> Ok false (* the inode is gone on the server *)
          | Error _ as e -> Result.map (fun _ -> false) e
          | Ok _ ->
            let current = generation server ino in
            let fresh =
              match Hashtbl.find_opt c.c_seen ino with
              | Some g -> g = current
              | None -> false
            in
            Hashtbl.replace c.c_seen ino current;
            if fresh then grant server c ino;
            Ok fresh)
  in
  (* The lockless lease gate (§3.7): consulted by the fastpath at its
     commit points.  One Hashtbl.find on an int key, one virtual-clock
     read, integer compares and plain int-field stores — no allocation, so
     a warm live-lease hit keeps the 0-words/0-locks guarantee.  The
     Trace stamps are load-and-branch when disarmed. *)
  let lease_check ino =
    match Hashtbl.find c.c_leases ino with
    | expiry ->
      let now = Int64.to_int (Vclock.elapsed_ns server.clock) in
      Trace.record_lease_age (server.lease_ttl - (expiry - now));
      if now <= expiry then begin
        c.c_gate_live <- c.c_gate_live + 1;
        true
      end
      else begin
        c.c_gate_expired <- c.c_gate_expired + 1;
        Trace.stamp Trace.ev_lease_expire ino;
        false
      end
    | exception Not_found ->
      c.c_gate_miss <- c.c_gate_miss + 1;
      note_break_span c ino;
      false
  in
  {
    fs_type = (match protocol with Stateless -> "netfs-stateless" | Stateful -> "netfs-stateful");
    root_ino = backing.root_ino;
    (* A stateless client cannot trust cached absence either: negative
       dentries are disabled so every miss re-asks the server. *)
    negative_dentries = (protocol = Stateful);
    lookup =
      (fun dir name -> rpc_ retry ~idempotent:true (fun b -> Result.map note_attr (b.lookup dir name)));
    getattr = (fun ino -> rpc_ retry ~idempotent:true (fun b -> Result.map note_attr (b.getattr ino)));
    setattr =
      (fun ino changes ->
        rpc_ retry ~idempotent:false (fun b ->
            let result = b.setattr ino changes in
            mutated ino;
            Result.map note_attr result));
    readdir = (fun dir -> rpc_ retry ~idempotent:true (fun b -> b.readdir dir));
    create =
      (fun dir name kind mode ~uid ~gid ->
        rpc_ retry ~idempotent:false (fun b ->
            let result = b.create dir name kind mode ~uid ~gid in
            mutated dir;
            Result.map note_attr result));
    symlink =
      (fun dir name ~target ~uid ~gid ->
        rpc_ retry ~idempotent:false (fun b ->
            let result = b.symlink dir name ~target ~uid ~gid in
            mutated dir;
            Result.map note_attr result));
    link =
      (fun dir name ino ->
        rpc_ retry ~idempotent:false (fun b ->
            let result = b.link dir name ino in
            mutated dir;
            mutated ino;
            Result.map note_attr result));
    unlink =
      (fun dir name ->
        rpc_ retry ~idempotent:false (fun b ->
            let result = b.unlink dir name in
            mutated dir;
            result));
    rmdir =
      (fun dir name ->
        rpc_ retry ~idempotent:false (fun b ->
            let result = b.rmdir dir name in
            mutated dir;
            result));
    rename =
      (fun od on nd nn ->
        rpc_ retry ~idempotent:false (fun b ->
            let result = b.rename od on nd nn in
            mutated od;
            mutated nd;
            result));
    readlink = (fun ino -> rpc_ retry ~idempotent:true (fun b -> b.readlink ino));
    read = (fun ino ~off ~len -> rpc_ retry ~idempotent:true (fun b -> b.read ino ~off ~len));
    write =
      (fun ino ~off data ->
        rpc_ retry ~idempotent:false (fun b ->
            let result = b.write ino ~off data in
            mutated ino;
            result));
    sync = (fun () -> backing.sync ());
    pin_inode = backing.pin_inode;
    unpin_inode = backing.unpin_inode;
    (* Stateless: revalidate every cached hit at the server, never publish
       for direct lookup.  Stateful: the same hook is the lease-recovery
       rung — a live lease short-circuits it with no RPC — and the gate
       below keeps the fastpath honest, so publication stays on. *)
    revalidate = Some revalidate;
    lease_check = (match protocol with Stateful -> Some lease_check | Stateless -> None);
  }

let client ~protocol ?(retry = default_retry) server =
  fs server (connect ~protocol server) retry

let connect_fs ?(protocol = Stateful) ?(retry = default_retry) server =
  let c = connect ~protocol server in
  (c, fs server c retry)
