(* Deliberately independent of extfs.ml: the checker re-implements the
   on-disk format from its specification so that a layout bug in either
   implementation shows up as a disagreement. *)

open Dcache_types
module Pagecache = Dcache_storage.Pagecache

type issue = { severity : [ `Error | `Warning ]; message : string }

type report = {
  issues : issue list;
  inodes_used : int;
  blocks_used : int;
  files : int;
  directories : int;
  symlinks : int;
}

let errors report = List.filter (fun i -> i.severity = `Error) report.issues

let magic = 0x45585453
let inode_size = 128
let direct_pointers = 12
let dirent_header = 6

let get32 b off =
  Char.code (Bytes.get b off)
  lor (Char.code (Bytes.get b (off + 1)) lsl 8)
  lor (Char.code (Bytes.get b (off + 2)) lsl 16)
  lor (Char.code (Bytes.get b (off + 3)) lsl 24)

type geo = {
  block_size : int;
  block_count : int;
  inode_count : int;
  inode_bitmap_start : int;
  block_bitmap_start : int;
  itable_start : int;
  data_start : int;
}

type dinode = {
  kind : int;  (* raw kind byte; 0 = free *)
  nlink : int;
  size : int;
  direct : int array;
  indirect : int;
}

let read_geo cache =
  Pagecache.with_page cache 0 (fun b ->
      if get32 b 0 <> magic then Error Errno.EINVAL
      else
        Ok
          {
            block_size = Pagecache.block_size cache;
            block_count = get32 b 4;
            inode_count = get32 b 8;
            inode_bitmap_start = get32 b 12;
            block_bitmap_start = get32 b 20;
            itable_start = get32 b 28;
            data_start = get32 b 36;
          })

let bitmap_get cache geo ~start bit =
  let bits_per_block = geo.block_size * 8 in
  Pagecache.with_page cache (start + (bit / bits_per_block)) (fun b ->
      let idx = bit mod bits_per_block in
      Char.code (Bytes.get b (idx / 8)) land (1 lsl (idx mod 8)) <> 0)

let read_dinode cache geo ino =
  let index = ino - 1 in
  let per_block = geo.block_size / inode_size in
  let block = geo.itable_start + (index / per_block) in
  let off = index mod per_block * inode_size in
  Pagecache.with_page cache block (fun b ->
      {
        kind = Char.code (Bytes.get b off);
        nlink = get32 b (off + 12);
        size = get32 b (off + 16);
        direct = Array.init direct_pointers (fun i -> get32 b (off + 24 + (i * 4)));
        indirect = get32 b (off + 72);
      })

let inode_blocks cache geo d =
  let direct = Array.to_list d.direct |> List.filter (fun b -> b <> 0) in
  if d.indirect = 0 then direct
  else begin
    let pointers =
      Pagecache.with_page cache d.indirect (fun b ->
          List.init (geo.block_size / 4) (fun i -> get32 b (i * 4)))
      |> List.filter (fun b -> b <> 0)
    in
    (d.indirect :: direct) @ pointers
  end

let dir_entries cache geo d =
  let entries = ref [] in
  Array.iter
    (fun block ->
      if block <> 0 then
        Pagecache.with_page cache block (fun b ->
            let rec go off =
              if off + dirent_header <= geo.block_size then begin
                let namelen = Char.code (Bytes.get b (off + 5)) in
                if namelen > 0 && off + dirent_header + namelen <= geo.block_size then begin
                  let ino = get32 b off in
                  let kind = Char.code (Bytes.get b (off + 4)) in
                  if ino <> 0 then begin
                    let name = Bytes.sub_string b (off + dirent_header) namelen in
                    entries := (name, ino, kind) :: !entries
                  end;
                  go (off + dirent_header + namelen)
                end
              end
            in
            go 0))
    d.direct;
  List.rev !entries

let check_exn cache =
  match read_geo cache with
  | Error _ as e -> Result.map (fun _ -> assert false) e
  | Ok geo ->
    let issues = ref [] in
    let problem severity fmt =
      Printf.ksprintf (fun message -> issues := { severity; message } :: !issues) fmt
    in
    (* Pass 1: scan the inode table, collecting used inodes and their block
       references. *)
    let used_inodes = Hashtbl.create 256 in
    let block_refs = Hashtbl.create 1024 in
    let files = ref 0 and directories = ref 0 and symlinks = ref 0 in
    for ino = 1 to geo.inode_count do
      let allocated = bitmap_get cache geo ~start:geo.inode_bitmap_start (ino - 1) in
      let d = read_dinode cache geo ino in
      if d.kind <> 0 && not allocated then
        problem `Error "inode %d in use but not allocated in the bitmap" ino;
      if d.kind = 0 && allocated then
        problem `Warning "inode %d allocated in the bitmap but free in the table" ino;
      if d.kind <> 0 then begin
        Hashtbl.replace used_inodes ino d;
        (match d.kind with
        | 1 -> incr files
        | 2 -> incr directories
        | 3 -> incr symlinks
        | 4 | 5 | 6 | 7 -> incr files
        | k -> problem `Error "inode %d has invalid kind byte %d" ino k);
        List.iter
          (fun block ->
            if block < geo.data_start || block >= geo.block_count then
              problem `Error "inode %d references out-of-range block %d" ino block
            else begin
              (match Hashtbl.find_opt block_refs block with
              | Some owner ->
                problem `Error "block %d referenced by both inode %d and inode %d" block
                  owner ino
              | None -> ());
              Hashtbl.replace block_refs block ino;
              if not (bitmap_get cache geo ~start:geo.block_bitmap_start (block - geo.data_start))
              then problem `Error "inode %d references unallocated block %d" ino block
            end)
          (inode_blocks cache geo d)
      end
    done;
    (* Pass 2: walk the directory tree from the root, counting references
       and checking entries. *)
    let link_counts = Hashtbl.create 256 in
    let bump ino = Hashtbl.replace link_counts ino (1 + Option.value (Hashtbl.find_opt link_counts ino) ~default:0) in
    let reachable = Hashtbl.create 256 in
    let rec walk ino =
      if not (Hashtbl.mem reachable ino) then begin
        Hashtbl.replace reachable ino ();
        match Hashtbl.find_opt used_inodes ino with
        | None -> problem `Error "reachable inode %d is not in use" ino
        | Some d when d.kind = 2 ->
          let subdirs = ref 0 in
          List.iter
            (fun (name, child_ino, ekind) ->
              if String.length name = 0 || String.contains name '/' then
                problem `Error "directory %d has malformed entry name %S" ino name;
              (match Hashtbl.find_opt used_inodes child_ino with
              | None -> problem `Error "entry %S in dir %d references free inode %d" name ino child_ino
              | Some child ->
                if child.kind <> ekind then
                  problem `Error "entry %S in dir %d has kind %d but inode %d has kind %d"
                    name ino ekind child_ino child.kind;
                if child.kind = 2 then incr subdirs);
              bump child_ino;
              walk child_ino)
            (dir_entries cache geo d);
          (* nlink of a directory = 2 (itself + '.') + one '..' per subdir;
             we model '.'/'..'-less dirents so expected = 2 + subdirs. *)
          let expected = 2 + !subdirs in
          if d.nlink <> expected then
            problem `Error "directory inode %d has nlink %d, expected %d" ino d.nlink expected
        | Some _ -> ()
      end
    in
    bump 1;
    bump 1;
    (* the root's self references *)
    walk 1;
    (* Pass 3: link counts of non-directories, and orphans. *)
    Hashtbl.iter
      (fun ino (d : dinode) ->
        if d.kind <> 2 then begin
          let refs = Option.value (Hashtbl.find_opt link_counts ino) ~default:0 in
          if Hashtbl.mem reachable ino && refs <> d.nlink then
            problem `Error "inode %d has nlink %d but %d directory references" ino d.nlink refs;
          if not (Hashtbl.mem reachable ino) then begin
            if d.nlink = 0 then
              problem `Warning "orphan inode %d (unlinked but pinned open)" ino
            else problem `Error "unreachable inode %d with nlink %d" ino d.nlink
          end
        end
        else if not (Hashtbl.mem reachable ino) then
          problem `Error "unreachable directory inode %d" ino)
      used_inodes;
    Ok
      {
        issues = List.rev !issues;
        inodes_used = Hashtbl.length used_inodes;
        blocks_used = Hashtbl.length block_refs;
        files = !files;
        directories = !directories;
        symlinks = !symlinks;
      }

(* A device that errors mid-check must fail the check, not the checker. *)
let check cache = try check_exn cache with Errno.Error e -> Error e

let pp_report fmt report =
  Format.fprintf fmt "inodes=%d blocks=%d files=%d dirs=%d symlinks=%d@."
    report.inodes_used report.blocks_used report.files report.directories report.symlinks;
  List.iter
    (fun issue ->
      Format.fprintf fmt "%s: %s@."
        (match issue.severity with `Error -> "ERROR" | `Warning -> "warning")
        issue.message)
    report.issues
