bench/main.mli:
