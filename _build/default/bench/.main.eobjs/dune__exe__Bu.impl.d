bench/bu.ml: Array Dcache_syscalls Dcache_types Dcache_util Dcache_vfs Dcache_workloads Int64 List Printf
