(* Benchmark utilities: robust timing, table formatting, environments. *)

module W = Dcache_workloads
module Kernel = Dcache_syscalls.Kernel
module Proc = Dcache_syscalls.Proc
module S = Dcache_syscalls.Syscalls
module Config = Dcache_vfs.Config
module Stats = Dcache_util.Stats

let quick = ref true

(* Repeat a measurement and keep the median: the container we run in is
   noisy, and medians recover the shape the paper reports. *)
let repeats () = if !quick then 5 else 9

let median_of_runs f =
  let samples = Array.init (repeats ()) (fun _ -> f ()) in
  Stats.median samples

(* Mean latency of [f] over a loop, in nanoseconds. *)
let latency_ns ?(iters = 2000) f =
  median_of_runs (fun () ->
      f ();
      (* warm before the timed window *)
      let t0 = Dcache_util.Clock.now_ns () in
      for _ = 1 to iters do
        f ()
      done;
      let t1 = Dcache_util.Clock.now_ns () in
      Int64.to_float (Int64.sub t1 t0) /. float_of_int iters)

(* Like [latency_ns] but also charges the environment's virtual clock
   (simulated device + fs-call time) to each operation. *)
let env_latency_ns (env : W.Env.t) ?(iters = 2000) f =
  median_of_runs (fun () ->
      f ();
      let v0 = Dcache_util.Vclock.elapsed_ns env.W.Env.vclock in
      let t0 = Dcache_util.Clock.now_ns () in
      for _ = 1 to iters do
        f ()
      done;
      let t1 = Dcache_util.Clock.now_ns () in
      let v1 = Dcache_util.Vclock.elapsed_ns env.W.Env.vclock in
      Int64.to_float (Int64.add (Int64.sub t1 t0) (Int64.sub v1 v0)) /. float_of_int iters)

let counter (env : W.Env.t) key =
  try List.assoc key (Kernel.stats_snapshot env.W.Env.kernel) with Not_found -> 0

let ok what = function
  | Ok v -> v
  | Error e -> failwith (Printf.sprintf "bench %s: %s" what (Dcache_types.Errno.to_string e))

(* --- output helpers --- *)

let header title =
  Printf.printf "\n==============================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "==============================================================\n"

let subheader title = Printf.printf "\n--- %s ---\n" title

let row fmt = Printf.printf fmt

let pct_gain ~base v = if base = 0.0 then 0.0 else (base -. v) /. base *. 100.0

(* --- environments --- *)

let ram_pair () = (W.Env.ram Config.baseline, W.Env.ram Config.optimized)

let disk_pair () = (W.Env.disk Config.baseline, W.Env.disk Config.optimized)

let scale () = if !quick then 0.6 else 1.5

(* The application tables need longer runtimes to measure reliably. *)
let app_scale () = if !quick then 2.5 else 5.0

let ns_to_us ns = ns /. 1000.0
let seconds r = W.Runner.seconds r
