examples/lookup_anatomy.ml: Dcache_syscalls Dcache_vfs Dcache_workloads Int64 List Printf String
