examples/network_fs.mli:
