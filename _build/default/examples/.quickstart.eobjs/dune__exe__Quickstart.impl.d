examples/quickstart.ml: Dcache_fs Dcache_syscalls Dcache_types Dcache_vfs List Printf
