examples/sandbox.ml: Access Dcache_cred Dcache_fs Dcache_syscalls Dcache_types Dcache_vfs Errno List Printf
