examples/maildir_server.ml: Dcache_syscalls Dcache_types Dcache_vfs Dcache_workloads Int64 List Printf
