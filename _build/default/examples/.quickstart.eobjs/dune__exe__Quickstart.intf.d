examples/quickstart.mli:
