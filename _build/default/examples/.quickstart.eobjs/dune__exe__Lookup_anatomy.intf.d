examples/lookup_anatomy.mli:
