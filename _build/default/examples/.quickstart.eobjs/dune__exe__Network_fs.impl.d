examples/network_fs.ml: Dcache_fs Dcache_syscalls Dcache_types Dcache_util Dcache_vfs Int64 List Printf
