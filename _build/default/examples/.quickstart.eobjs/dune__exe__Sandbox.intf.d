examples/sandbox.mli:
