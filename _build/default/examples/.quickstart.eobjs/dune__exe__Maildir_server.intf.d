examples/maildir_server.mli:
