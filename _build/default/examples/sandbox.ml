(* Sandboxing demo: mount namespaces, bind mounts, chroot, and a MAC
   security module — the kernel features the paper's fastpath must stay
   compatible with (§4).

   A "service" process is confined to a private namespace with a read-only
   view of shared data, a private scratch mount, a chroot, and an
   SELinux-style label policy; the demo shows that its view and the host's
   view diverge exactly as intended, while both enjoy cached lookups.

   Run with: dune exec examples/sandbox.exe *)

module Kernel = Dcache_syscalls.Kernel
module Proc = Dcache_syscalls.Proc
module S = Dcache_syscalls.Syscalls
module Config = Dcache_vfs.Config
module Cred = Dcache_cred.Cred
module Maclabel = Dcache_cred.Maclabel
open Dcache_types

let ok what = function
  | Ok v -> v
  | Error e -> failwith (Printf.sprintf "%s: %s" what (Errno.to_string e))

let show proc label path =
  match S.read_file proc path with
  | Ok contents -> Printf.printf "  [%s] %-28s -> %S\n" label path contents
  | Error e -> Printf.printf "  [%s] %-28s -> %s\n" label path (Errno.to_string e)

let () =
  (* MAC policy: the service domain may only read service-labeled files. *)
  let policy =
    [
      { Maclabel.domain = "service_t"; label = "service_data"; allow = Access.may_read };
      { Maclabel.domain = "service_t"; label = "service_exec";
        allow = Access.union Access.may_read Access.may_exec };
    ]
  in
  let kernel =
    Kernel.create ~config:Config.optimized
      ~lsms:[ Maclabel.hooks ~rules:policy ]
      ~root_fs:(Dcache_fs.Ramfs.create ()) ()
  in
  let host = Proc.spawn kernel in

  (* Host filesystem layout. *)
  ok "tree" (S.mkdir_p host "/srv/jail/data");
  ok "tree" (S.mkdir_p host "/srv/shared");
  ok "etc" (S.mkdir_p host "/etc");
  ok "secrets" (S.write_file host "/etc/shadow" "root:secret-hash");
  ok "shared" (S.write_file host "/srv/shared/motd" "welcome to the host");
  ok "svc data" (S.write_file host "/srv/jail/data/config" "service config v1");
  ok "label" (S.set_label host "/srv/jail/data/config" (Some "service_data"));
  ok "mode" (S.chmod host "/srv/shared/motd" 0o644);

  (* Confine the service: private namespace, read-only bind of the shared
     area into the jail, then chroot into it. *)
  let service = Proc.fork host in
  ok "unshare" (S.unshare_mount_ns service);
  ok "mountpoint" (S.mkdir_p service "/srv/jail/shared");
  ok "bind ro" (S.bind_mount ~readonly:true service ~src:"/srv/shared" ~dst:"/srv/jail/shared");
  ok "chroot" (S.chroot service "/srv/jail");
  ok "chdir" (S.chdir service "/");
  Proc.set_cred service (fun b ->
      Cred.Builder.set_uid b 8001;
      Cred.Builder.set_gid b 8001;
      Cred.Builder.set_label b (Some "service_t"));

  print_endline "host view:";
  show host "host" "/etc/shadow";
  show host "host" "/srv/shared/motd";
  show host "host" "/srv/jail/data/config";

  print_endline "service view (chrooted, labeled, private namespace):";
  show service "svc" "/data/config";
  show service "svc" "/shared/motd";
  show service "svc" "/etc/shadow";
  (* chroot confines even dot-dot escapes *)
  show service "svc" "/../../etc/shadow";

  print_endline "write attempts from the service:";
  (match S.write_file service "/shared/defaced" "oops" with
  | Error Errno.EROFS -> print_endline "  read-only bind mount: EROFS (good)"
  | Error e -> Printf.printf "  unexpected: %s\n" (Errno.to_string e)
  | Ok () -> print_endline "  BUG: write succeeded");

  (* The MAC module vetoes access to unlabeled-for-service files even when
     DAC would allow them. *)
  ok "plant" (S.write_file host "/srv/jail/data/host-note" "host-only note");
  ok "mode" (S.chmod host "/srv/jail/data/host-note" 0o444);
  ok "label" (S.set_label host "/srv/jail/data/host-note" (Some "host_private"));
  (match S.read_file service "/data/host-note" with
  | Error Errno.EACCES -> print_endline "  MAC label veto: EACCES (good)"
  | Error e -> Printf.printf "  unexpected: %s\n" (Errno.to_string e)
  | Ok _ -> print_endline "  BUG: MAC bypassed");

  (* Meanwhile the host namespace never saw the service's mounts. *)
  (match S.stat host "/srv/jail/shared/motd" with
  | Error Errno.ENOENT -> print_endline "host cannot see the service's private bind mount (good)"
  | _ -> print_endline "BUG: mount leaked across namespaces");

  (* All of this ran with the fastpath on; show it was actually used. *)
  let stats = Kernel.stats_snapshot kernel in
  Printf.printf "fastpath hits during the demo: %d\n"
    (try List.assoc "fastpath_hit" stats with Not_found -> 0)
