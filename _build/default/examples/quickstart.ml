(* Quickstart: build an optimized kernel over an in-memory file system, do
   ordinary file work through the syscall API, and watch the directory
   cache fastpath take over.

   Run with: dune exec examples/quickstart.exe *)

module Kernel = Dcache_syscalls.Kernel
module Proc = Dcache_syscalls.Proc
module S = Dcache_syscalls.Syscalls
module Config = Dcache_vfs.Config

let ok = function
  | Ok v -> v
  | Error e -> failwith ("unexpected errno: " ^ Dcache_types.Errno.to_string e)

let () =
  (* 1. A kernel = a configuration + a root file system.  Config.optimized
     enables everything from the paper; Config.baseline models stock
     Linux 3.14. *)
  let kernel = Kernel.create ~config:Config.optimized ~root_fs:(Dcache_fs.Ramfs.create ()) () in
  let proc = Proc.spawn kernel in

  (* 2. Ordinary POSIX-ish work. *)
  ok (S.mkdir_p proc "/home/demo/projects/dcache");
  ok (S.write_file proc "/home/demo/projects/dcache/README" "hello, directory cache");
  ok (S.symlink proc ~target:"/home/demo/projects/dcache" "/current");

  let attr = ok (S.stat proc "/current/README") in
  Printf.printf "stat via symlink: ino=%d size=%d mode=%s\n" attr.Dcache_types.Attr.ino
    attr.Dcache_types.Attr.size
    (Dcache_types.Mode.to_string attr.Dcache_types.Attr.mode);

  (* 3. The first lookup of a path walks component-at-a-time and populates
     the Direct Lookup Hash Table and the Prefix Check Cache; every later
     lookup is a single hash-table probe. *)
  Kernel.reset_stats kernel;
  for _ = 1 to 1000 do
    ignore (ok (S.stat proc "/home/demo/projects/dcache/README"))
  done;
  let stats = Kernel.stats_snapshot kernel in
  let get key = try List.assoc key stats with Not_found -> 0 in
  Printf.printf "1000 repeated stats: %d fastpath hits, %d slowpath walks\n"
    (get "fastpath_hit") (get "walk_slowpath");

  (* 4. Lookup failures are cached too (negative dentries), including whole
     missing subtrees (deep negative dentries). *)
  (match S.stat proc "/home/demo/missing/deep/path" with
  | Error Dcache_types.Errno.ENOENT -> print_endline "missing path: ENOENT (now cached)"
  | _ -> assert false);
  Kernel.reset_stats kernel;
  for _ = 1 to 1000 do
    ignore (S.stat proc "/home/demo/missing/deep/path")
  done;
  Printf.printf "1000 repeated misses: %d served by fast negative dentries\n"
    (try List.assoc "fastpath_negative_hit" (Kernel.stats_snapshot kernel) with Not_found -> 0);

  (* 5. Directory completeness: after one listing, repeat listings never
     call the low-level file system. *)
  ignore (ok (S.readdir_path proc "/home/demo/projects"));
  Kernel.reset_stats kernel;
  ignore (ok (S.readdir_path proc "/home/demo/projects"));
  Printf.printf "second readdir served from the cache: %b\n"
    ((try List.assoc "readdir_from_cache" (Kernel.stats_snapshot kernel) with Not_found -> 0)
    > 0);
  print_endline "quickstart done."
