(* Network file systems and the fastpath (paper §4.3).

   The paper's prototype cannot use direct lookup over NFS v2/3: stateless
   close-to-open consistency forces the client to revalidate every path
   component at the server, "effectively forcing a cache miss and nullifying
   any benefit to the hit path".  It predicts the optimizations would pay
   off under a stateful protocol with callbacks (AFS, NFSv4.1).  This demo
   mounts both client flavours against the same server and shows exactly
   that — including a staleness callback keeping the stateful client
   coherent with an external writer.

   Run with: dune exec examples/network_fs.exe *)

module Kernel = Dcache_syscalls.Kernel
module Proc = Dcache_syscalls.Proc
module S = Dcache_syscalls.Syscalls
module Config = Dcache_vfs.Config
module Netfs = Dcache_fs.Netfs
module Fs = Dcache_fs.Fs_intf
module Vclock = Dcache_util.Vclock

let ok what = function
  | Ok v -> v
  | Error e -> failwith (what ^ ": " ^ Dcache_types.Errno.to_string e)

let demo protocol label =
  let clock = Vclock.create () in
  let backing = Dcache_fs.Ramfs.create () in
  let server = Netfs.server ~rpc_latency_ns:120_000 ~clock backing in
  let kernel = Kernel.create ~config:Config.optimized ~root_fs:(Netfs.client ~protocol server) () in
  let p = Proc.spawn kernel in
  ok "tree" (S.mkdir_p p "/export/project/src");
  ok "file" (S.write_file p "/export/project/src/main.ml" "let () = ()");
  ignore (ok "warm" (S.stat p "/export/project/src/main.ml"));
  Netfs.reset_rpc_count server;
  Vclock.reset clock;
  let n = 100 in
  for _ = 1 to n do
    ignore (ok "stat" (S.stat p "/export/project/src/main.ml"))
  done;
  let stats = Kernel.stats_snapshot kernel in
  let get key = try List.assoc key stats with Not_found -> 0 in
  Printf.printf "[%s] %d warm stats: %d RPCs, %.1f us simulated network time/op, %d fastpath hits\n"
    label n (Netfs.rpc_count server)
    (Int64.to_float (Vclock.elapsed_ns clock) /. float_of_int n /. 1000.0)
    (get "fastpath_hit");
  (kernel, p, server, backing)

let () =
  print_endline "Stateless protocol (NFS v2/3 model): every cached component revalidates.";
  ignore (demo Netfs.Stateless "stateless");
  print_endline "\nStateful protocol (AFS/NFSv4.1 model): cached dentries are trusted.";
  let _, p, server, backing = demo Netfs.Stateful "stateful ";
  in
  (* An external writer changes the server; the callback keeps us coherent. *)
  (Netfs.callbacks server).Netfs.on_break <-
    (fun _ -> ok "cb" (S.invalidate_path p "/export/project/src"));
  let root = backing.Fs.root_ino in
  let export = ok "lookup" (backing.Fs.lookup root "export") in
  let project = ok "lookup" (backing.Fs.lookup export.Dcache_types.Attr.ino "project") in
  let src = ok "lookup" (backing.Fs.lookup project.Dcache_types.Attr.ino "src") in
  ignore
    (ok "server-side create"
       (backing.Fs.create src.Dcache_types.Attr.ino "hotfix.ml" Dcache_types.File_kind.Regular
          0o644 ~uid:0 ~gid:0));
  Netfs.break_callback server src.Dcache_types.Attr.ino;
  (match S.stat p "/export/project/src/hotfix.ml" with
  | Ok _ -> print_endline "\nafter the callback, the external hotfix.ml is visible (good)"
  | Error e -> Printf.printf "\nBUG: %s\n" (Dcache_types.Errno.to_string e))
