(* A miniature IMAP-ish mail server over a maildir mailbox — the workload
   from the paper's introduction that motivates directory completeness
   caching (§5.1, Fig. 10).  Message flags live in file names, so marking
   a message renames its file and the server re-reads the directory to
   sync its view.

   Run with: dune exec examples/maildir_server.exe *)

module Kernel = Dcache_syscalls.Kernel
module Proc = Dcache_syscalls.Proc
module S = Dcache_syscalls.Syscalls
module Config = Dcache_vfs.Config
module Maildir = Dcache_workloads.Maildir
module Runner = Dcache_workloads.Runner
module Env = Dcache_workloads.Env

type session = { proc : Proc.t; mbox : Maildir.mailbox }

let list_inbox session =
  match S.readdir_path session.proc "/var/mail/inbox/cur" with
  | Ok entries -> entries
  | Error e -> failwith (Dcache_types.Errno.to_string e)

let serve config label =
  let env = Env.disk config in
  let proc = env.Env.proc in
  let mbox = Maildir.setup proc ~root:"/var/mail/inbox" ~messages:500 ~seed:42 in
  let session = { proc; mbox } in

  (* An IMAP SELECT: list the mailbox. *)
  let inbox = list_inbox session in
  Printf.printf "[%s] SELECT inbox: %d messages\n" label (List.length inbox);

  (* A burst of client actions: mark messages seen/flagged; each action
     renames the message file and re-reads the directory. *)
  let result =
    Runner.run env (fun () -> ignore (Maildir.run_ops proc mbox ~ops:200 ~seed:7))
  in
  Printf.printf "[%s] 200 mark/unmark ops: %.2f ms (%.0f ops/s)\n" label
    (Int64.to_float result.Runner.total_ns /. 1e6)
    (200.0 /. Runner.seconds result);

  (* Concurrently, a delivery agent drops new mail into new/ and the server
     moves it to cur/. *)
  Maildir.deliver proc mbox ~n:25;
  Printf.printf "[%s] delivered 25, inbox now %d messages\n" label
    (List.length (list_inbox session));
  let counters = Kernel.stats_snapshot env.Env.kernel in
  let get key = try List.assoc key counters with Not_found -> 0 in
  Printf.printf "[%s] directory reads served from cache: %d, from the fs: %d\n\n" label
    (get "readdir_from_cache") (get "readdir_from_fs")

let () =
  serve Config.baseline "baseline ";
  serve Config.optimized "optimized"
