open Dcache_types

let max_path = 4096
let max_name = 255

type component = Cur | Up | Name of string

let split path =
  if String.length path = 0 then Error Errno.ENOENT
  else if String.length path > max_path then Error Errno.ENAMETOOLONG
  else begin
    let parts = String.split_on_char '/' path in
    let rec convert acc = function
      | [] -> Ok (List.rev acc)
      | "" :: rest -> convert acc rest
      | "." :: rest -> convert (Cur :: acc) rest
      | ".." :: rest -> convert (Up :: acc) rest
      | name :: rest ->
        if String.length name > max_name then Error Errno.ENAMETOOLONG
        else convert (Name name :: acc) rest
    in
    convert [] parts
  end

let is_absolute path = String.length path > 0 && path.[0] = '/'

let has_trailing_slash path =
  let n = String.length path in
  n > 0 && path.[n - 1] = '/'

let lexical_normalize components =
  let rec go stack = function
    | [] -> List.rev stack
    | Cur :: rest -> go stack rest
    | Up :: rest -> (
      match stack with
      | Name _ :: deeper -> go deeper rest
      | Up :: _ | [] -> go (Up :: stack) rest
      | Cur :: _ -> assert false)
    | (Name _ as c) :: rest -> go (c :: stack) rest
  in
  go [] components

let join dir rel =
  if is_absolute rel then rel
  else if has_trailing_slash dir then dir ^ rel
  else dir ^ "/" ^ rel
