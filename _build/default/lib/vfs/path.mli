(** Path string handling. *)

val max_path : int
val max_name : int

type component = Cur  (** ["."] *) | Up  (** [".."] *) | Name of string

val split : string -> (component list, Dcache_types.Errno.t) result
(** Split on ['/'], dropping empty components; validates length limits.
    An empty path yields [ENOENT] per POSIX. *)

val is_absolute : string -> bool
val has_trailing_slash : string -> bool

val lexical_normalize : component list -> component list
(** Plan 9 lexical dot-dot semantics (§4.2): [a/b/../c] -> [a/c], resolved
    purely textually.  Leading [..] components are preserved. *)

val join : string -> string -> string
(** [join dir rel]: concatenate with exactly one separator; absolute [rel]
    wins. *)
