lib/vfs/phases.ml: Array Dcache_util Int64 List
