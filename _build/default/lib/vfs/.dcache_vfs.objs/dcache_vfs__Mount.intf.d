lib/vfs/mount.mli: Dcache_types Types
