lib/vfs/dcache.ml: Array Atomic Attr Char Config Dcache_fs Dcache_types Dcache_util Errno Hashtbl Inode List Printf Result String Types
