lib/vfs/inode.mli: Dcache_fs Dcache_types
