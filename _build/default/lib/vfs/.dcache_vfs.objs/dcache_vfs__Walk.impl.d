lib/vfs/walk.ml: Access Config Dcache Dcache_cred Dcache_fs Dcache_types Dcache_util Errno File_kind Inode List Mount Path Phases Types
