lib/vfs/path.ml: Dcache_types Errno List String
