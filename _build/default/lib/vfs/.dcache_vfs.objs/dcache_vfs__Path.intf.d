lib/vfs/path.mli: Dcache_types
