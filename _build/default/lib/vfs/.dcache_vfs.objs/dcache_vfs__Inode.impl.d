lib/vfs/inode.ml: Attr Dcache_fs Dcache_types File_kind Result
