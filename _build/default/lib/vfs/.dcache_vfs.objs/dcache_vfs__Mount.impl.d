lib/vfs/mount.ml: Atomic Dcache Dcache_types Errno Hashtbl List Types
