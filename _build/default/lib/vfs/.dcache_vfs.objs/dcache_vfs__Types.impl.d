lib/vfs/types.ml: Atomic Dcache_fs Dcache_sig Dcache_types Dcache_util Hashtbl Inode
