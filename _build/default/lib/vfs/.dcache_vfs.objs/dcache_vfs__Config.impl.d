lib/vfs/config.ml:
