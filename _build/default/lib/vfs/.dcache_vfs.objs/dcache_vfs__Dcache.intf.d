lib/vfs/dcache.mli: Config Dcache_fs Dcache_types Dcache_util Inode Types
