lib/vfs/walk.mli: Dcache Dcache_cred Dcache_types Inode Types
