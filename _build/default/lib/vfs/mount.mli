(** Mounts and mount namespaces (paper §4.3).

    A mount attaches a superblock's dentry (usually its root) at a mountpoint
    dentry of another mount.  The same superblock may be mounted several
    times (mount aliases), bind mounts attach an existing subtree, and a
    namespace clone gives a process a private copy of the mount table — all
    cases the optimized dcache must stay coherent with. *)

open Types

val new_namespace : unit -> namespace

val clone_namespace : namespace -> namespace
(** Private copy of the mount tree: fresh mount objects over the same
    superblocks and dentries. *)

val mount_rootfs : namespace -> superblock -> mount
(** Install the namespace's root file system. *)

val root : namespace -> path_ref

val attach :
  namespace ->
  at:path_ref ->
  root:dentry ->
  sb:superblock ->
  readonly:bool ->
  nosuid:bool ->
  (mount, Dcache_types.Errno.t) result
(** Mount [root] (of [sb]) at [at].  [Error EBUSY] if something is already
    mounted exactly there; the mountpoint must be a directory.  Used for
    both new-fs mounts ([root = sb root]) and bind mounts ([root] is any
    cached directory dentry). *)

val detach : namespace -> mount -> (unit, Dcache_types.Errno.t) result
(** Unmount; [Error EBUSY] if other mounts are stacked on top of it. *)

val mount_lookup : namespace -> mount -> dentry -> mount option
(** The mount attached at (mount, dentry) in this namespace, if any. *)

val traverse_mounts : path_ref -> path_ref
(** Follow mounts downward repeatedly (a mountpoint may itself have a mount
    on the mounted root). *)

val is_mountpoint : namespace -> mount -> dentry -> bool

val follow_up : path_ref -> path_ref option
(** At a mount root, step to the mountpoint in the parent mount. *)
