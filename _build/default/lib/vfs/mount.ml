open Dcache_types
open Types

let next_mnt_id = Atomic.make 1
let next_ns_id = Atomic.make 1

let new_namespace () =
  {
    ns_id = Atomic.fetch_and_add next_ns_id 1;
    ns_root = None;
    ns_mounts = [];
    ns_mountpoints = Hashtbl.create 16;
    ns_ext = None;
  }

let register ns mount =
  ns.ns_mounts <- mount :: ns.ns_mounts;
  match mount.mnt_mountpoint with
  | Some (parent, dentry) -> Hashtbl.replace ns.ns_mountpoints (parent.mnt_id, dentry.d_id) mount
  | None -> ()

let mount_rootfs ns sb =
  let root_dentry = Dcache.sb_root sb in
  let mount =
    {
      mnt_id = Atomic.fetch_and_add next_mnt_id 1;
      mnt_sb = sb;
      mnt_root = root_dentry;
      mnt_mountpoint = None;
      mnt_ns = ns;
      mnt_readonly = false;
      mnt_nosuid = false;
    }
  in
  Dcache.dget root_dentry;
  ns.ns_root <- Some mount;
  register ns mount;
  mount

let root ns =
  match ns.ns_root with
  | Some mnt -> { mnt; dentry = mnt.mnt_root }
  | None -> invalid_arg "Mount.root: namespace has no root file system"

let mount_lookup ns mnt dentry = Hashtbl.find_opt ns.ns_mountpoints (mnt.mnt_id, dentry.d_id)
let is_mountpoint ns mnt dentry = mount_lookup ns mnt dentry <> None

let attach ns ~at ~root ~sb ~readonly ~nosuid =
  if not (dentry_is_dir at.dentry) then Error Errno.ENOTDIR
  else if not (dentry_is_dir root) then Error Errno.ENOTDIR
  else if is_mountpoint ns at.mnt at.dentry then Error Errno.EBUSY
  else begin
    let mount =
      {
        mnt_id = Atomic.fetch_and_add next_mnt_id 1;
        mnt_sb = sb;
        mnt_root = root;
        mnt_mountpoint = Some (at.mnt, at.dentry);
        mnt_ns = ns;
        mnt_readonly = readonly;
        mnt_nosuid = nosuid;
      }
    in
    Dcache.dget at.dentry;
    Dcache.dget root;
    register ns mount;
    Ok mount
  end

let detach ns mount =
  match mount.mnt_mountpoint with
  | None -> Error Errno.EBUSY (* the root fs cannot be unmounted *)
  | Some (parent, dentry) ->
    let stacked =
      Hashtbl.fold
        (fun (parent_id, _) child acc -> acc || (parent_id = mount.mnt_id && child != mount))
        ns.ns_mountpoints false
    in
    if stacked then Error Errno.EBUSY
    else begin
      Hashtbl.remove ns.ns_mountpoints (parent.mnt_id, dentry.d_id);
      ns.ns_mounts <- List.filter (fun m -> not (m == mount)) ns.ns_mounts;
      Dcache.dput dentry;
      Dcache.dput mount.mnt_root;
      Ok ()
    end

let rec traverse_mounts path_ref =
  match mount_lookup path_ref.mnt.mnt_ns path_ref.mnt path_ref.dentry with
  | Some mounted -> traverse_mounts { mnt = mounted; dentry = mounted.mnt_root }
  | None -> path_ref

let follow_up path_ref =
  if path_ref.dentry == path_ref.mnt.mnt_root then
    match path_ref.mnt.mnt_mountpoint with
    | Some (parent_mnt, mountpoint) -> Some { mnt = parent_mnt; dentry = mountpoint }
    | None -> None
  else None

let clone_namespace old_ns =
  let ns = new_namespace () in
  (* Rebuild mounts parent-first so mountpoint references can be remapped to
     the new mount objects. *)
  let mapping = Hashtbl.create 16 in
  let rec instantiate old_mount =
    match Hashtbl.find_opt mapping old_mount.mnt_id with
    | Some m -> m
    | None ->
      let mountpoint =
        match old_mount.mnt_mountpoint with
        | None -> None
        | Some (parent, dentry) -> Some (instantiate parent, dentry)
      in
      let mount =
        {
          mnt_id = Atomic.fetch_and_add next_mnt_id 1;
          mnt_sb = old_mount.mnt_sb;
          mnt_root = old_mount.mnt_root;
          mnt_mountpoint = mountpoint;
          mnt_ns = ns;
          mnt_readonly = old_mount.mnt_readonly;
          mnt_nosuid = old_mount.mnt_nosuid;
        }
      in
      Hashtbl.add mapping old_mount.mnt_id mount;
      Dcache.dget mount.mnt_root;
      (match mount.mnt_mountpoint with Some (_, d) -> Dcache.dget d | None -> ());
      register ns mount;
      mount
  in
  List.iter (fun m -> ignore (instantiate m)) (List.rev old_ns.ns_mounts);
  (match old_ns.ns_root with
  | Some old_root -> ns.ns_root <- Some (instantiate old_root)
  | None -> ());
  ns
