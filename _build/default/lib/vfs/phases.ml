(** Per-phase lookup instrumentation (reproduces paper Fig. 3).

    When enabled, the walk and fastpath code attribute elapsed wall time to
    the paper's five principal components of a path lookup.  Disabled by
    default because timestamping costs more than some phases themselves. *)

type phase = Init | Permission | Scan_hash | Table_lookup | Finalize

let all = [ Init; Permission; Scan_hash; Table_lookup; Finalize ]

let name = function
  | Init -> "initialization"
  | Permission -> "permission check"
  | Scan_hash -> "path scanning & hashing"
  | Table_lookup -> "hash table lookup"
  | Finalize -> "finalization"

let index = function
  | Init -> 0
  | Permission -> 1
  | Scan_hash -> 2
  | Table_lookup -> 3
  | Finalize -> 4

let enabled = ref false
let acc = Array.make 5 0L
let counts = Array.make 5 0

let reset () =
  Array.fill acc 0 5 0L;
  Array.fill counts 0 5 0

let record phase ns =
  let i = index phase in
  acc.(i) <- Int64.add acc.(i) ns;
  counts.(i) <- counts.(i) + 1

(** [timed phase f] runs [f], charging its duration to [phase] when
    instrumentation is enabled. *)
let timed phase f =
  if not !enabled then f ()
  else begin
    let t0 = Dcache_util.Clock.now_ns () in
    let result = f () in
    let t1 = Dcache_util.Clock.now_ns () in
    record phase (Int64.sub t1 t0);
    result
  end

let totals () = List.map (fun p -> (p, acc.(index p))) all
