type t = int

let may_exec = 1
let may_write = 2
let may_read = 4
let union = ( lor )
let includes mask want = mask land want = want

let to_string mask =
  Printf.sprintf "%c%c%c"
    (if mask land may_read <> 0 then 'r' else '-')
    (if mask land may_write <> 0 then 'w' else '-')
    (if mask land may_exec <> 0 then 'x' else '-')
