(** Inode attribute snapshot exchanged between the low-level file systems,
    the VFS, and the security modules. *)

type t = {
  ino : int;
  kind : File_kind.t;
  mode : Mode.t;
  uid : int;
  gid : int;
  nlink : int;
  size : int;
  label : string option;  (** security label (xattr), consumed by MAC LSMs *)
}

val make :
  ?mode:Mode.t -> ?uid:int -> ?gid:int -> ?nlink:int -> ?size:int -> ?label:string ->
  ino:int -> kind:File_kind.t -> unit -> t

val pp : Format.formatter -> t -> unit
