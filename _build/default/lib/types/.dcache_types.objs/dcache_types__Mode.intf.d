lib/types/mode.mli:
