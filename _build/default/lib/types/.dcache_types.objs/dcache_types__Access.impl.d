lib/types/access.ml: Printf
