lib/types/errno.mli:
