lib/types/attr.ml: File_kind Format Mode
