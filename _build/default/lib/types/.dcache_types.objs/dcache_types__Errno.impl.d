lib/types/errno.ml:
