lib/types/mode.ml: Printf
