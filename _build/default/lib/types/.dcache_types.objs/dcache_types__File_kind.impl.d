lib/types/file_kind.ml:
