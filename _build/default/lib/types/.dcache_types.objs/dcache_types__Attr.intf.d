lib/types/attr.mli: File_kind Format Mode
