lib/types/access.mli:
