lib/types/file_kind.mli:
