type t =
  | EPERM
  | ENOENT
  | EIO
  | EBADF
  | EACCES
  | EBUSY
  | EEXIST
  | EXDEV
  | ENOTDIR
  | EISDIR
  | EINVAL
  | EMFILE
  | ENOSPC
  | EROFS
  | EMLINK
  | ERANGE
  | ENAMETOOLONG
  | ENOTEMPTY
  | ELOOP
  | ENOTSUP

let to_string = function
  | EPERM -> "EPERM"
  | ENOENT -> "ENOENT"
  | EIO -> "EIO"
  | EBADF -> "EBADF"
  | EACCES -> "EACCES"
  | EBUSY -> "EBUSY"
  | EEXIST -> "EEXIST"
  | EXDEV -> "EXDEV"
  | ENOTDIR -> "ENOTDIR"
  | EISDIR -> "EISDIR"
  | EINVAL -> "EINVAL"
  | EMFILE -> "EMFILE"
  | ENOSPC -> "ENOSPC"
  | EROFS -> "EROFS"
  | EMLINK -> "EMLINK"
  | ERANGE -> "ERANGE"
  | ENAMETOOLONG -> "ENAMETOOLONG"
  | ENOTEMPTY -> "ENOTEMPTY"
  | ELOOP -> "ELOOP"
  | ENOTSUP -> "ENOTSUP"

let message = function
  | EPERM -> "Operation not permitted"
  | ENOENT -> "No such file or directory"
  | EIO -> "Input/output error"
  | EBADF -> "Bad file descriptor"
  | EACCES -> "Permission denied"
  | EBUSY -> "Device or resource busy"
  | EEXIST -> "File exists"
  | EXDEV -> "Invalid cross-device link"
  | ENOTDIR -> "Not a directory"
  | EISDIR -> "Is a directory"
  | EINVAL -> "Invalid argument"
  | EMFILE -> "Too many open files"
  | ENOSPC -> "No space left on device"
  | EROFS -> "Read-only file system"
  | EMLINK -> "Too many links"
  | ERANGE -> "Result too large"
  | ENAMETOOLONG -> "File name too long"
  | ENOTEMPTY -> "Directory not empty"
  | ELOOP -> "Too many levels of symbolic links"
  | ENOTSUP -> "Operation not supported"

exception Error of t
