type t = Regular | Directory | Symlink | Chardev | Blockdev | Fifo | Socket

let to_string = function
  | Regular -> "regular"
  | Directory -> "directory"
  | Symlink -> "symlink"
  | Chardev -> "chardev"
  | Blockdev -> "blockdev"
  | Fifo -> "fifo"
  | Socket -> "socket"

let to_char = function
  | Regular -> '-'
  | Directory -> 'd'
  | Symlink -> 'l'
  | Chardev -> 'c'
  | Blockdev -> 'b'
  | Fifo -> 'p'
  | Socket -> 's'

let equal (a : t) (b : t) = a = b
