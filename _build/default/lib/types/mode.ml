type t = int

let s_isuid = 0o4000
let s_isgid = 0o2000
let s_isvtx = 0o1000
let rwxrwxrwx = 0o777
let default_file = 0o644
let default_dir = 0o755
let owner_bits mode = (mode lsr 6) land 7
let group_bits mode = (mode lsr 3) land 7
let other_bits mode = mode land 7

let to_string mode =
  let triple bits =
    Printf.sprintf "%c%c%c"
      (if bits land 4 <> 0 then 'r' else '-')
      (if bits land 2 <> 0 then 'w' else '-')
      (if bits land 1 <> 0 then 'x' else '-')
  in
  triple (owner_bits mode) ^ triple (group_bits mode) ^ triple (other_bits mode)
