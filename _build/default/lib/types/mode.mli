(** Permission-bit helpers for the Unix mode word (low 12 bits). *)

type t = int

val s_isuid : t
val s_isgid : t
val s_isvtx : t

val rwxrwxrwx : t
val default_file : t
val default_dir : t

val owner_bits : t -> int
(** Shift the owner class rwx bits into the low 3 bits. *)

val group_bits : t -> int
val other_bits : t -> int
val to_string : t -> string
(** [rwxr-xr-x]-style rendering of the low 9 bits. *)
