(** Access-request masks passed to permission checks ([MAY_*] in Linux). *)

type t = int

(** execute, or search on a directory *)
val may_exec : t
val may_write : t
val may_read : t

val union : t -> t -> t
val includes : t -> t -> bool
(** [includes mask want] is true iff every bit of [want] is in [mask]. *)

val to_string : t -> string
