type t = {
  ino : int;
  kind : File_kind.t;
  mode : Mode.t;
  uid : int;
  gid : int;
  nlink : int;
  size : int;
  label : string option;
}

let make ?(mode = Mode.default_file) ?(uid = 0) ?(gid = 0) ?(nlink = 1) ?(size = 0) ?label
    ~ino ~kind () =
  { ino; kind; mode; uid; gid; nlink; size; label }

let pp fmt t =
  Format.fprintf fmt "{ino=%d; %s; %s; uid=%d; gid=%d; nlink=%d; size=%d%s}" t.ino
    (File_kind.to_string t.kind) (Mode.to_string t.mode) t.uid t.gid t.nlink t.size
    (match t.label with None -> "" | Some l -> "; label=" ^ l)
