(** File kinds, as reported in inode metadata and readdir entries. *)

type t = Regular | Directory | Symlink | Chardev | Blockdev | Fifo | Socket

val to_string : t -> string
val to_char : t -> char
(** One-letter tag as in [ls -l] ([-], [d], [l], ...). *)

val equal : t -> t -> bool
