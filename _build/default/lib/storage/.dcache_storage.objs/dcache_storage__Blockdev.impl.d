lib/storage/blockdev.ml: Bytes Dcache_util Hashtbl Int64 Printf
