lib/storage/pagecache.ml: Blockdev Bytes Dcache_util Hashtbl Lazy
