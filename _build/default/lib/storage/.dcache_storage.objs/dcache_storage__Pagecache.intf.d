lib/storage/pagecache.mli: Blockdev
