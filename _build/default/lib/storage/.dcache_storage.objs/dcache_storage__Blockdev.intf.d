lib/storage/blockdev.mli: Dcache_util
