(** Simulated block device.

    Stands in for the paper's 2 TB 7200 RPM ATA disk.  Every access charges a
    virtual clock with a simple latency model (seek + rotational delay for
    non-sequential access, plus per-block transfer time), so experiments that
    miss the page cache become I/O-bound exactly as on real hardware, without
    the simulator actually sleeping. *)

type t

type config = {
  block_size : int;  (** bytes per block; the paper's ext4 uses 4096 *)
  block_count : int;
  seek_ns : int64;  (** average seek + rotational latency for a random access *)
  sequential_ns : int64;  (** extra latency when the access is sequential *)
  transfer_ns : int64;  (** per-block transfer time *)
}

val default_config : config
(** 4 KB blocks, ~8 ms random access, ~25 us transfer: a 7200 RPM disk. *)

val create : ?config:config -> Dcache_util.Vclock.t -> t
val block_size : t -> int
val block_count : t -> int

val read_block : t -> int -> bytes
(** [read_block t n] returns a copy of block [n], charging the clock. *)

val write_block : t -> int -> bytes -> unit
(** [write_block t n data] stores [data] (must be exactly [block_size]
    bytes), charging the clock. *)

val reads : t -> int
val writes : t -> int
val reset_stats : t -> unit
