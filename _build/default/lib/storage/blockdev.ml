type config = {
  block_size : int;
  block_count : int;
  seek_ns : int64;
  sequential_ns : int64;
  transfer_ns : int64;
}

let default_config =
  {
    block_size = 4096;
    block_count = 1 lsl 18;
    seek_ns = 8_000_000L;
    sequential_ns = 50_000L;
    transfer_ns = 25_000L;
  }

type t = {
  config : config;
  clock : Dcache_util.Vclock.t;
  (* Blocks are allocated lazily: a fresh device reads as zeroes. *)
  store : (int, bytes) Hashtbl.t;
  mutable last_block : int;
  mutable read_count : int;
  mutable write_count : int;
}

let create ?(config = default_config) clock =
  {
    config;
    clock;
    store = Hashtbl.create 1024;
    last_block = -2;
    read_count = 0;
    write_count = 0;
  }

let block_size t = t.config.block_size
let block_count t = t.config.block_count

let charge_access t n =
  let position_cost =
    if n = t.last_block + 1 then t.config.sequential_ns else t.config.seek_ns
  in
  Dcache_util.Vclock.charge t.clock (Int64.add position_cost t.config.transfer_ns);
  t.last_block <- n

let check_bounds t n =
  if n < 0 || n >= t.config.block_count then
    invalid_arg (Printf.sprintf "Blockdev: block %d out of range" n)

let read_block t n =
  check_bounds t n;
  charge_access t n;
  t.read_count <- t.read_count + 1;
  match Hashtbl.find_opt t.store n with
  | Some data -> Bytes.copy data
  | None -> Bytes.make t.config.block_size '\000'

let write_block t n data =
  check_bounds t n;
  if Bytes.length data <> t.config.block_size then
    invalid_arg "Blockdev.write_block: wrong block size";
  charge_access t n;
  t.write_count <- t.write_count + 1;
  Hashtbl.replace t.store n (Bytes.copy data)

let reads t = t.read_count
let writes t = t.write_count

let reset_stats t =
  t.read_count <- 0;
  t.write_count <- 0
