(** SipHash-2-4, a software pseudorandom function.

    The paper (§3.3) weighs 2-universal hashing against a PRF for signature
    generation and finds hardware PRFs too slow to beat baseline Linux; we
    include a software PRF so the benchmark harness can reproduce that
    cost comparison (see the [fig2] bench output). *)

type key = { k0 : int64; k1 : int64 }

val key_of_seed : int -> key
val hash : key -> string -> int64
(** 64-bit SipHash-2-4 of the whole string. *)

val hash256 : key -> string -> int64 * int64 * int64 * int64
(** Four independently keyed SipHash lanes, the cheapest way to widen the
    output to signature size. *)
