lib/sig/siphash.mli:
