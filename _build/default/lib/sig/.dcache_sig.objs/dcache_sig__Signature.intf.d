lib/sig/signature.mli:
