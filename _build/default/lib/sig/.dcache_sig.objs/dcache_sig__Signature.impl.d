lib/sig/signature.ml: Array Char Hashtbl Printf String Sys Unix
