lib/sig/siphash.ml: Char Int64 String
