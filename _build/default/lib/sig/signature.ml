(* All arithmetic is on native (63-bit, untagged) ints: multiplication wraps
   modulo 2^63, which preserves the multilinear construction's universality
   for our purposes while keeping the per-byte loop allocation-free. *)

type t = { a : int; b : int; c : int; d : int }

type key = {
  seed : int;
  sig_bits : int;
  (* Per-lane per-position key material, grown on demand; entry
     [lane].(pos) is a pure function of (seed, lane, pos), so growth never
     changes existing values. *)
  mutable t0 : int array;
  mutable t1 : int array;
  mutable t2 : int array;
  mutable t3 : int array;
  (* Finalization (per-length) keys, one per lane, precomputed alongside. *)
  mutable f0 : int array;
  mutable f1 : int array;
  mutable f2 : int array;
  mutable f3 : int array;
  mutable capacity : int;
}

type state = { pos : int; l0 : int; l1 : int; l2 : int; l3 : int }

let lanes = 4
let initial_capacity = 512
let bucket_bits = 16
let max_sig_bits = 47 + (3 * 63)

let fmix z =
  let z = (z lxor (z lsr 30)) * 0x1F58476D1CE4E5B9 in
  let z = (z lxor (z lsr 27)) * 0x14D049BB133111EB in
  z lxor (z lsr 31)

let key_material seed lane pos =
  fmix (seed + (lane * 0x224BAED4963EE407) + ((pos + 1) * 0x1E3779B97F4A7C15))

let table key lane =
  match lane with 0 -> key.t0 | 1 -> key.t1 | 2 -> key.t2 | _ -> key.t3

let fin_table key lane =
  match lane with 0 -> key.f0 | 1 -> key.f1 | 2 -> key.f2 | _ -> key.f3

let fill_tables key from_pos =
  for lane = 0 to lanes - 1 do
    let t = table key lane in
    let f = fin_table key lane in
    for pos = from_pos to key.capacity - 1 do
      t.(pos) <- key_material key.seed lane pos;
      (* The finalization term for a string of length [pos]. *)
      f.(pos) <- key_material key.seed (lane + lanes) pos
    done
  done

let create_key ?(sig_bits = max_sig_bits) ~seed () =
  let sig_bits = max 1 (min max_sig_bits sig_bits) in
  let seed = fmix seed in
  let key =
    {
      seed;
      sig_bits;
      t0 = Array.make initial_capacity 0;
      t1 = Array.make initial_capacity 0;
      t2 = Array.make initial_capacity 0;
      t3 = Array.make initial_capacity 0;
      f0 = Array.make initial_capacity 0;
      f1 = Array.make initial_capacity 0;
      f2 = Array.make initial_capacity 0;
      f3 = Array.make initial_capacity 0;
      capacity = initial_capacity;
    }
  in
  fill_tables key 0;
  key

let random_key () =
  let seed =
    Hashtbl.hash (Unix.gettimeofday (), Unix.getpid (), Sys.opaque_identity (ref ()))
  in
  create_key ~seed ()

let sig_bits key = key.sig_bits

let grow key needed =
  let capacity = ref key.capacity in
  while !capacity <= needed do
    capacity := !capacity * 2
  done;
  let extend t =
    let bigger = Array.make !capacity 0 in
    Array.blit t 0 bigger 0 key.capacity;
    bigger
  in
  key.t0 <- extend key.t0;
  key.t1 <- extend key.t1;
  key.t2 <- extend key.t2;
  key.t3 <- extend key.t3;
  key.f0 <- extend key.f0;
  key.f1 <- extend key.f1;
  key.f2 <- extend key.f2;
  key.f3 <- extend key.f3;
  let old = key.capacity in
  key.capacity <- !capacity;
  fill_tables key old

let empty_state = { pos = 0; l0 = 0; l1 = 0; l2 = 0; l3 = 0 }

let feed_string key state s =
  let len = String.length s in
  if len = 0 then state
  else begin
    if state.pos + len > key.capacity then grow key (state.pos + len);
    let t0 = key.t0 and t1 = key.t1 and t2 = key.t2 and t3 = key.t3 in
    let l0 = ref state.l0 and l1 = ref state.l1 and l2 = ref state.l2 and l3 = ref state.l3 in
    let base = state.pos in
    for i = 0 to len - 1 do
      let byte = Char.code (String.unsafe_get s i) + 1 in
      let pos = base + i in
      l0 := !l0 + (Array.unsafe_get t0 pos * byte);
      l1 := !l1 + (Array.unsafe_get t1 pos * byte);
      l2 := !l2 + (Array.unsafe_get t2 pos * byte);
      l3 := !l3 + (Array.unsafe_get t3 pos * byte)
    done;
    { pos = base + len; l0 = !l0; l1 = !l1; l2 = !l2; l3 = !l3 }
  end

let feed_char key state ch =
  if state.pos >= key.capacity then grow key state.pos;
  let byte = Char.code ch + 1 in
  let pos = state.pos in
  {
    pos = pos + 1;
    l0 = state.l0 + (key.t0.(pos) * byte);
    l1 = state.l1 + (key.t1.(pos) * byte);
    l2 = state.l2 + (key.t2.(pos) * byte);
    l3 = state.l3 + (key.t3.(pos) * byte);
  }

let state_pos state = state.pos

let finalize key state =
  (* The per-length key term guarantees avalanche in the bucket bits even
     for empty or one-byte paths. *)
  if state.pos >= key.capacity then grow key state.pos;
  let pos = state.pos in
  {
    a = fmix (state.l0 + Array.unsafe_get key.f0 pos);
    b = fmix (state.l1 + Array.unsafe_get key.f1 pos);
    c = fmix (state.l2 + Array.unsafe_get key.f2 pos);
    d = fmix (state.l3 + Array.unsafe_get key.f3 pos);
  }

let hash_string key s = finalize key (feed_string key empty_state s)
let bucket t = t.a land 0xFFFF

(* The signature is laid out as: lane [a] bits 16..62 (47 bits), then lanes
   [b], [c], [d] (63 bits each).  [equal] compares the first [sig_bits] of
   that string, so a truncated key widens collision odds for tests while
   production keys compare everything. *)
let equal key x y =
  let bits = key.sig_bits in
  let mask_low n v = if n >= 63 then v else v land ((1 lsl n) - 1) in
  let seg_equal consumed width xv yv =
    let take = min width (max 0 (bits - consumed)) in
    take = 0 || mask_low take xv = mask_low take yv
  in
  seg_equal 0 47 (x.a lsr bucket_bits) (y.a lsr bucket_bits)
  && seg_equal 47 63 x.b y.b
  && seg_equal 110 63 x.c y.c
  && seg_equal 173 63 x.d y.d

let to_hex t = Printf.sprintf "%016x%016x%016x%016x" t.a t.b t.c t.d

let compare_full x y =
  match compare x.a y.a with
  | 0 -> (
    match compare x.b y.b with
    | 0 -> ( match compare x.c y.c with 0 -> compare x.d y.d | r -> r)
    | r -> r)
  | r -> r
