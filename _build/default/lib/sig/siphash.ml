type key = { k0 : int64; k1 : int64 }

let fmix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let key_of_seed seed =
  let s = Int64.of_int seed in
  { k0 = fmix64 s; k1 = fmix64 (Int64.add s 0x9E3779B97F4A7C15L) }

let rotl x b = Int64.logor (Int64.shift_left x b) (Int64.shift_right_logical x (64 - b))

type st = { mutable v0 : int64; mutable v1 : int64; mutable v2 : int64; mutable v3 : int64 }

let sipround st =
  let open Int64 in
  st.v0 <- add st.v0 st.v1;
  st.v1 <- rotl st.v1 13;
  st.v1 <- logxor st.v1 st.v0;
  st.v0 <- rotl st.v0 32;
  st.v2 <- add st.v2 st.v3;
  st.v3 <- rotl st.v3 16;
  st.v3 <- logxor st.v3 st.v2;
  st.v0 <- add st.v0 st.v3;
  st.v3 <- rotl st.v3 21;
  st.v3 <- logxor st.v3 st.v0;
  st.v2 <- add st.v2 st.v1;
  st.v1 <- rotl st.v1 17;
  st.v1 <- logxor st.v1 st.v2;
  st.v2 <- rotl st.v2 32

let load64_le s off len =
  (* Little-endian load of up to 8 available bytes, zero padded. *)
  let word = ref 0L in
  for i = min 7 (len - 1) downto 0 do
    word := Int64.logor (Int64.shift_left !word 8) (Int64.of_int (Char.code s.[off + i]))
  done;
  !word

let hash key msg =
  let open Int64 in
  let st =
    {
      v0 = logxor key.k0 0x736f6d6570736575L;
      v1 = logxor key.k1 0x646f72616e646f6dL;
      v2 = logxor key.k0 0x6c7967656e657261L;
      v3 = logxor key.k1 0x7465646279746573L;
    }
  in
  let len = String.length msg in
  let blocks = len / 8 in
  for i = 0 to blocks - 1 do
    let m = load64_le msg (i * 8) 8 in
    st.v3 <- logxor st.v3 m;
    sipround st;
    sipround st;
    st.v0 <- logxor st.v0 m
  done;
  let rem = len - (blocks * 8) in
  let last =
    let tail = if rem = 0 then 0L else load64_le msg (blocks * 8) rem in
    logor tail (shift_left (of_int (len land 0xff)) 56)
  in
  st.v3 <- logxor st.v3 last;
  sipround st;
  sipround st;
  st.v0 <- logxor st.v0 last;
  st.v2 <- logxor st.v2 0xffL;
  sipround st;
  sipround st;
  sipround st;
  sipround st;
  logxor (logxor st.v0 st.v1) (logxor st.v2 st.v3)

let hash256 key msg =
  let lane i =
    hash { k0 = Int64.add key.k0 (Int64.of_int i); k1 = Int64.add key.k1 (Int64.of_int (i * 7)) } msg
  in
  (lane 0, lane 1, lane 2, lane 3)
