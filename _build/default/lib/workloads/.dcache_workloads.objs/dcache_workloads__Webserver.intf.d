lib/workloads/webserver.mli: Dcache_syscalls
