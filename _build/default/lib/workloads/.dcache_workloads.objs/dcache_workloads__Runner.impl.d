lib/workloads/runner.ml: Dcache_syscalls Dcache_util Env Int64 List
