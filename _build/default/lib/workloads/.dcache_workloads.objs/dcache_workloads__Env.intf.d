lib/workloads/env.mli: Dcache_cred Dcache_storage Dcache_syscalls Dcache_util Dcache_vfs
