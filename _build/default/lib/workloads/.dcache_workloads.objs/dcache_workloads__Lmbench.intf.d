lib/workloads/lmbench.mli: Dcache_syscalls Dcache_types
