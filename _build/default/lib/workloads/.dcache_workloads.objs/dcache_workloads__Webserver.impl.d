lib/workloads/webserver.ml: Buffer Dcache_fs Dcache_syscalls Dcache_types List Printf
