lib/workloads/tree_gen.mli: Dcache_syscalls
