lib/workloads/apps.mli: Dcache_syscalls Tree_gen
