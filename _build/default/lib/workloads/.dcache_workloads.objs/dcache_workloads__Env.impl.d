lib/workloads/env.ml: Dcache_fs Dcache_storage Dcache_syscalls Dcache_util
