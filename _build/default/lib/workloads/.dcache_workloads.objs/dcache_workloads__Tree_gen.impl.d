lib/workloads/tree_gen.ml: Dcache_syscalls Dcache_types Dcache_util Hashtbl List Printf String
