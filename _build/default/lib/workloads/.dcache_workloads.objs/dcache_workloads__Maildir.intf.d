lib/workloads/maildir.mli: Dcache_syscalls
