lib/workloads/trace.ml: Array Dcache_syscalls Dcache_types Dcache_util Printf Result Tree_gen
