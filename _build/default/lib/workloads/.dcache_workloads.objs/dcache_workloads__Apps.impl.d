lib/workloads/apps.ml: Array Buffer Dcache_fs Dcache_syscalls Dcache_types Dcache_util Domain List Printf String Tree_gen
