lib/workloads/maildir.ml: Array Dcache_fs Dcache_syscalls Dcache_types Dcache_util List Printf String Tree_gen
