lib/workloads/trace.mli: Dcache_syscalls Tree_gen
