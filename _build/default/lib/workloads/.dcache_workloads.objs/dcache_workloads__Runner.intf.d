lib/workloads/runner.mli: Env
