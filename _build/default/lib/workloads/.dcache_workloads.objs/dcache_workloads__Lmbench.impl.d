lib/workloads/lmbench.ml: Dcache_syscalls Dcache_types Dcache_util Int64 Printf Result
