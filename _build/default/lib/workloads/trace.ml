module S = Dcache_syscalls.Syscalls
module Proc = Dcache_syscalls.Proc
module Prng = Dcache_util.Prng

type event =
  | T_stat of string
  | T_lstat of string
  | T_access of string
  | T_open_read of string
  | T_open_write of string
  | T_readdir of string
  | T_unlink of string
  | T_rename of string * string
  | T_mkdir of string
  | T_getpid

type t = { events : event array; lookups : int }

type mix = {
  stat_w : int;
  open_read_w : int;
  open_write_w : int;
  readdir_w : int;
  mutate_w : int;
  other_w : int;
}

let ibench_like =
  { stat_w = 6; open_read_w = 5; open_write_w = 2; readdir_w = 1; mutate_w = 1; other_w = 85 }

let metadata_heavy =
  { stat_w = 50; open_read_w = 20; open_write_w = 5; readdir_w = 15; mutate_w = 5; other_w = 5 }

let is_lookup = function
  | T_stat _ | T_lstat _ | T_access _ | T_open_read _ | T_open_write _ | T_readdir _
  | T_unlink _ | T_rename _ | T_mkdir _ -> true
  | T_getpid -> false

let generate ~(manifest : Tree_gen.manifest) ~mix ~events ~locality ~seed =
  let prng = Prng.create seed in
  let files = Array.of_list manifest.Tree_gen.files in
  let dirs = Array.of_list manifest.Tree_gen.dirs in
  assert (Array.length files > 0 && Array.length dirs > 0);
  (* Recently-touched window for temporal locality. *)
  let window = Array.make 32 files.(0) in
  let window_used = ref 0 in
  let touch path =
    window.(!window_used mod Array.length window) <- path;
    incr window_used
  in
  let pick_file () =
    if !window_used > 0 && Prng.float prng 1.0 < locality then
      window.(Prng.int prng (min !window_used (Array.length window)))
    else begin
      let path = Prng.choice prng files in
      touch path;
      path
    end
  in
  let pick_dir () = Prng.choice prng dirs in
  let fresh = ref 0 in
  let fresh_path () =
    incr fresh;
    Printf.sprintf "%s/trace%d" (pick_dir ()) !fresh
  in
  let total_weight =
    mix.stat_w + mix.open_read_w + mix.open_write_w + mix.readdir_w + mix.mutate_w
    + mix.other_w
  in
  let gen_event () =
    let roll = Prng.int prng total_weight in
    let rec pick roll = function
      | [] -> T_getpid
      | (w, make) :: rest -> if roll < w then make () else pick (roll - w) rest
    in
    pick roll
      [
        ( mix.stat_w,
          fun () ->
            match Prng.int prng 4 with
            | 0 -> T_lstat (pick_file ())
            | 1 -> T_access (pick_file ())
            | _ -> T_stat (pick_file ()) );
        (mix.open_read_w, fun () -> T_open_read (pick_file ()));
        (mix.open_write_w, fun () -> T_open_write (fresh_path ()));
        (mix.readdir_w, fun () -> T_readdir (pick_dir ()));
        ( mix.mutate_w,
          fun () ->
            match Prng.int prng 3 with
            | 0 -> T_mkdir (fresh_path ())
            | 1 -> T_unlink (pick_file ())
            | _ -> T_rename (pick_file (), fresh_path ()) );
        (mix.other_w, fun () -> T_getpid);
      ]
  in
  let events = Array.init events (fun _ -> gen_event ()) in
  let lookups = Array.fold_left (fun acc e -> if is_lookup e then acc + 1 else acc) 0 events in
  { events; lookups }

type outcome = { ok : int; errors : int; lookup_events : int }

let replay proc trace =
  let ok = ref 0 and errors = ref 0 in
  let note = function Ok _ -> incr ok | Error _ -> incr errors in
  (* The filler "syscall": comparable to getpid, a couple of memory ops. *)
  let filler = ref 0 in
  Array.iter
    (fun event ->
      match event with
      | T_stat path -> note (S.stat proc path)
      | T_lstat path -> note (S.lstat proc path)
      | T_access path -> note (S.access proc path Dcache_types.Access.may_read)
      | T_open_read path ->
        note
          (match S.openf proc path [ Proc.O_RDONLY ] with
          | Ok fd ->
            let r = S.read proc fd 64 in
            ignore (S.close proc fd);
            Result.map (fun _ -> ()) r
          | Error _ as e -> Result.map (fun _ -> ()) e)
      | T_open_write path ->
        note
          (match S.openf proc path [ Proc.O_CREAT; Proc.O_WRONLY ] with
          | Ok fd ->
            let r = S.write proc fd "trace" in
            ignore (S.close proc fd);
            Result.map (fun _ -> ()) r
          | Error _ as e -> Result.map (fun _ -> ()) e)
      | T_readdir path -> note (S.readdir_path proc path)
      | T_unlink path -> note (S.unlink proc path)
      | T_rename (a, b) -> note (S.rename proc a b)
      | T_mkdir path -> note (S.mkdir proc path)
      | T_getpid -> filler := !filler + 1)
    trace.events;
  { ok = !ok; errors = !errors; lookup_events = trace.lookups }
