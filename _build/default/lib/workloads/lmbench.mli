(** LMBench-style path-lookup microbenchmarks: the fixed path patterns of
    the paper's Figures 3 and 6 and the measurement loops that exercise
    them. *)

type pattern = {
  label : string;
  path : string;
  expect_errno : Dcache_types.Errno.t option;
      (** [Some e]: the lookup is supposed to fail with [e] (neg-f, neg-d) *)
}

val patterns : pattern list
(** default, 1/2/4/8-component, link-f, link-d, neg-f, neg-d, 1-dotdot,
    4-dotdot — exactly the Fig. 6 legend. *)

val fig3_paths : (string * string) list
(** The four paths of Fig. 3 (1, 2, 4, 8 components). *)

val setup : Dcache_syscalls.Proc.t -> unit
(** Create the directory chain XXX/YYY/ZZZ/AAA/BBB/CCC/DDD with an FFF file
    at every level, the LLL symlinks, the AAA/BBB chain used by 4-dotdot,
    and the /usr/include default path. *)

val measure_stat : Dcache_syscalls.Proc.t -> pattern -> iters:int -> float
(** Mean stat latency in nanoseconds over [iters] calls (after one warmup);
    raises [Failure] if the outcome does not match [expect_errno]. *)

val measure_open : Dcache_syscalls.Proc.t -> pattern -> iters:int -> float
(** Mean open+close latency in nanoseconds. *)
