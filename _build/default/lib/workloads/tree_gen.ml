module S = Dcache_syscalls.Syscalls
module Proc = Dcache_syscalls.Proc
module Prng = Dcache_util.Prng

type spec = {
  depth : int;
  fanout : int;
  files_per_dir : int;
  file_size : int;
  symlink_ratio : float;
  name_min : int;
  name_max : int;
  seed : int;
}

let source_tree ?(scale = 1.0) () =
  let s x = max 1 (int_of_float (float_of_int x *. scale)) in
  {
    depth = 4;
    fanout = 3;
    files_per_dir = s 8;
    file_size = 2048;
    symlink_ratio = 0.02;
    name_min = 4;
    name_max = 12;
    seed = 0xC0DE;
  }

let usr_tree ?(scale = 1.0) () =
  let s x = max 1 (int_of_float (float_of_int x *. scale)) in
  {
    depth = 3;
    fanout = 5;
    files_per_dir = s 10;
    file_size = 512;
    symlink_ratio = 0.08;
    name_min = 3;
    name_max = 10;
    seed = 0x05E;
  }

type manifest = {
  root : string;
  dirs : string list;
  files : string list;
  symlinks : string list;
  spec : spec;
}

let ok what = function
  | Ok v -> v
  | Error e ->
    failwith (Printf.sprintf "Tree_gen: %s failed: %s" what (Dcache_types.Errno.to_string e))

let build proc ~root spec =
  let prng = Prng.create spec.seed in
  let dirs = ref [] in
  let files = ref [] in
  let symlinks = ref [] in
  ok "mkdir_p root" (S.mkdir_p proc root);
  dirs := [ root ];
  let content = String.make spec.file_size 'x' in
  let fresh_name used =
    let rec go tries =
      let name = Prng.string prng ~min_len:spec.name_min ~max_len:spec.name_max in
      if Hashtbl.mem used name && tries < 50 then go (tries + 1)
      else begin
        Hashtbl.replace used name ();
        name
      end
    in
    go 0
  in
  let rec fill dir depth =
    let used = Hashtbl.create 16 in
    for _ = 1 to spec.files_per_dir do
      let name = fresh_name used in
      let path = dir ^ "/" ^ name in
      if Prng.float prng 1.0 < spec.symlink_ratio && !files <> [] then begin
        let target = Prng.choice_list prng !files in
        ok "symlink" (S.symlink proc ~target path);
        symlinks := path :: !symlinks
      end
      else begin
        ok "write_file" (S.write_file proc path content);
        files := path :: !files
      end
    done;
    if depth < spec.depth then begin
      for _ = 1 to spec.fanout do
        let name = fresh_name used in
        let path = dir ^ "/" ^ name in
        ok "mkdir" (S.mkdir proc path);
        dirs := path :: !dirs;
        fill path (depth + 1)
      done
    end
  in
  fill root 1;
  { root; dirs = List.rev !dirs; files = List.rev !files; symlinks = List.rev !symlinks; spec }

let flags_chars = [| ""; "S"; "RS"; "F"; "FS"; "R" |]

let build_maildir proc ~root ~messages ~seed =
  let prng = Prng.create seed in
  List.iter (fun sub -> ok "mkdir_p" (S.mkdir_p proc (root ^ "/" ^ sub))) [ "cur"; "new"; "tmp" ];
  let names = ref [] in
  for i = 1 to messages do
    let flags = Prng.choice prng flags_chars in
    let name = Printf.sprintf "%d.%06d.host:2,%s" (1000000 + i) (Prng.int prng 1000000) flags in
    let path = root ^ "/cur/" ^ name in
    ok "write mail" (S.write_file proc path (Printf.sprintf "Subject: message %d\n\nbody\n" i));
    names := name :: !names
  done;
  List.rev !names
