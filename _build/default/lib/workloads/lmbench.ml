module S = Dcache_syscalls.Syscalls
module Proc = Dcache_syscalls.Proc
module Errno = Dcache_types.Errno

type pattern = { label : string; path : string; expect_errno : Errno.t option }

let patterns =
  [
    { label = "default"; path = "/usr/include/gcc-x86_64-linux-gnu/sys/types.h";
      expect_errno = None };
    { label = "1-comp"; path = "FFF"; expect_errno = None };
    { label = "2-comp"; path = "XXX/FFF"; expect_errno = None };
    { label = "4-comp"; path = "XXX/YYY/ZZZ/FFF"; expect_errno = None };
    { label = "8-comp"; path = "XXX/YYY/ZZZ/AAA/BBB/CCC/DDD/FFF"; expect_errno = None };
    { label = "link-f"; path = "XXX/YYY/ZZZ/LLL"; expect_errno = None };
    { label = "link-d"; path = "LLL/YYY/ZZZ/FFF"; expect_errno = None };
    { label = "neg-f"; path = "XXX/YYY/ZZZ/NNN"; expect_errno = Some Errno.ENOENT };
    { label = "neg-d"; path = "NNN/XXX/YYY/FFF"; expect_errno = Some Errno.ENOENT };
    { label = "1-dotdot"; path = "XXX/../FFF"; expect_errno = None };
    { label = "4-dotdot"; path = "XXX/YYY/../../AAA/BBB/../../FFF"; expect_errno = None };
  ]

let fig3_paths =
  [
    ("Path1 (1 comp)", "FFF");
    ("Path2 (2 comp)", "XXX/FFF");
    ("Path3 (4 comp)", "XXX/YYY/ZZZ/FFF");
    ("Path4 (8 comp)", "XXX/YYY/ZZZ/AAA/BBB/CCC/DDD/FFF");
  ]

let ok what = function
  | Ok v -> v
  | Error e -> failwith (Printf.sprintf "Lmbench.%s: %s" what (Errno.to_string e))

let setup proc =
  (* The 8-component chain, with an FFF regular file at every level. *)
  let chain = [ "XXX"; "YYY"; "ZZZ"; "AAA"; "BBB"; "CCC"; "DDD" ] in
  let rec build prefix = function
    | [] -> ()
    | dir :: rest ->
      let path = prefix ^ "/" ^ dir in
      ok "mkdir" (S.mkdir_p proc path);
      ok "FFF" (S.write_file proc (path ^ "/FFF") "data");
      build path rest
  in
  ok "root FFF" (S.write_file proc "/FFF" "data");
  build "" chain;
  (* Directories used by 4-dotdot at the root. *)
  ok "AAA/BBB" (S.mkdir_p proc "/AAA/BBB");
  (* link-f: a symlink to a file in the same directory. *)
  ok "link-f" (S.symlink proc ~target:"/XXX/YYY/ZZZ/FFF" "/XXX/YYY/ZZZ/LLL");
  (* link-d: /LLL -> /XXX, so LLL/YYY/ZZZ/FFF traverses a symlinked dir. *)
  ok "link-d" (S.symlink proc ~target:"/XXX" "/LLL");
  (* The "default" absolute path from the paper. *)
  ok "usr" (S.mkdir_p proc "/usr/include/gcc-x86_64-linux-gnu/sys");
  ok "types.h" (S.write_file proc "/usr/include/gcc-x86_64-linux-gnu/sys/types.h" "types");
  (* Benchmarks run with cwd = / so the relative patterns match the paper. *)
  ok "chdir /" (S.chdir proc "/")

let check_expect label expect result =
  match (expect, result) with
  | None, Ok _ -> ()
  | Some e, Error got when got = e -> ()
  | None, Error got ->
    failwith (Printf.sprintf "Lmbench %s: unexpected %s" label (Errno.to_string got))
  | Some e, Ok _ ->
    failwith (Printf.sprintf "Lmbench %s: expected %s, got success" label (Errno.to_string e))
  | Some e, Error got ->
    failwith
      (Printf.sprintf "Lmbench %s: expected %s, got %s" label (Errno.to_string e)
         (Errno.to_string got))

let measure pattern ~iters f =
  (* Warm the caches, validating the expected outcome. *)
  check_expect pattern.label pattern.expect_errno (f ());
  let t0 = Dcache_util.Clock.now_ns () in
  for _ = 2 to iters do
    ignore (f ())
  done;
  check_expect pattern.label pattern.expect_errno (f ());
  let t1 = Dcache_util.Clock.now_ns () in
  Int64.to_float (Int64.sub t1 t0) /. float_of_int iters

let measure_stat proc pattern ~iters =
  measure pattern ~iters (fun () -> Result.map (fun _ -> ()) (S.stat proc pattern.path))

let measure_open proc pattern ~iters =
  measure pattern ~iters (fun () ->
      match S.openf proc pattern.path [ Proc.O_RDONLY ] with
      | Ok fd ->
        ignore (S.close proc fd);
        Ok ()
      | Error _ as e -> Result.map (fun _ -> ()) e)
