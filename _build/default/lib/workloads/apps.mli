(** Models of the command-line applications benchmarked in the paper
    (Tables 1 and 2): each issues the same shape of syscall traffic as the
    real tool.  [find], [du] and [updatedb] use the *at() family with
    single-component names (as the paper observes); the others use full
    paths of 3-4 components. *)

type counts = { examined : int; matched : int; bytes : int }

val find : Dcache_syscalls.Proc.t -> root:string -> pattern:string -> counts
(** Depth-first openat/getdents/fstatat walk counting name matches. *)

val du : Dcache_syscalls.Proc.t -> root:string -> counts
(** Recursive size accounting (like [du -s]). *)

val updatedb :
  Dcache_syscalls.Proc.t -> root:string -> output:string -> counts
(** Walk [root] collecting canonical paths, write the database file. *)

val tar_extract :
  Dcache_syscalls.Proc.t -> manifest:Tree_gen.manifest -> dst:string -> counts
(** Recreate the manifest tree under [dst]: mkdir + create + write, full
    paths (like unpacking a tarball). *)

val rm_rf : Dcache_syscalls.Proc.t -> root:string -> counts
(** Recursive removal with full-path unlink/rmdir. *)

(** [make] setup: an include directory plus per-source header dependencies;
    some lookups intentionally miss along the include search path, giving
    the negative-dentry traffic the paper observes (~20%). *)
type make_env = {
  headers : string list;  (** header names that exist under [include_dir] *)
  include_dir : string;
  missing_dirs : string list;  (** searched first, never contain headers *)
  obj_dir : string;
}

val make_setup :
  Dcache_syscalls.Proc.t -> root:string -> headers:int -> seed:int -> make_env

val make :
  Dcache_syscalls.Proc.t ->
  manifest:Tree_gen.manifest ->
  env:make_env ->
  headers_per_file:int ->
  seed:int ->
  counts
(** Compile every manifest file: stat + read source, search its headers
    along [missing_dirs @ include_dir], write an object file. *)

val make_parallel :
  Dcache_syscalls.Proc.t ->
  manifest:Tree_gen.manifest ->
  env:make_env ->
  headers_per_file:int ->
  seed:int ->
  jobs:int ->
  counts
(** [make -jN]: the file list is chunked across [jobs] domains, each with a
    forked process sharing the credential (and hence the PCC). *)

val git_status : Dcache_syscalls.Proc.t -> manifest:Tree_gen.manifest -> counts
(** Read the index file, then lstat every tracked file. *)

val git_diff : Dcache_syscalls.Proc.t -> manifest:Tree_gen.manifest -> counts
(** [git_status] plus reading a subset of files for content comparison. *)

val git_setup : Dcache_syscalls.Proc.t -> manifest:Tree_gen.manifest -> unit
(** Write the .git/index stand-in listing all tracked files. *)
