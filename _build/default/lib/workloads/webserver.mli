(** Apache-style directory-listing server model (paper Table 3): every
    request lists a directory (readdir + stat per entry) and renders an
    HTML index page; nothing is cached at the server level. *)

val setup : Dcache_syscalls.Proc.t -> dir:string -> files:int -> unit

val request : Dcache_syscalls.Proc.t -> dir:string -> int
(** Serve one listing request; returns the generated page size in bytes. *)
