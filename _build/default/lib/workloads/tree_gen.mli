(** Synthetic file tree generators.

    Deterministic (seeded) stand-ins for the paper's test corpora: a Linux
    source tree (for find/tar/rm/make/du/git), a /usr tree from a fresh
    debootstrap (for updatedb), and maildir mailboxes (for Dovecot). *)

type spec = {
  depth : int;  (** directory nesting below the root *)
  fanout : int;  (** subdirectories per directory *)
  files_per_dir : int;
  file_size : int;  (** bytes per regular file *)
  symlink_ratio : float;  (** fraction of files that are symlinks to peers *)
  name_min : int;
  name_max : int;
  seed : int;
}

val source_tree : ?scale:float -> unit -> spec
(** Linux-source-like shape (deep, many small files); [scale] multiplies the
    file counts (1.0 ~ 3500 files). *)

val usr_tree : ?scale:float -> unit -> spec
(** Wider and shallower, like a fresh /usr. *)

type manifest = {
  root : string;
  dirs : string list;  (** all directories, parents before children *)
  files : string list;  (** regular files *)
  symlinks : string list;
  spec : spec;
}

val build : Dcache_syscalls.Proc.t -> root:string -> spec -> manifest
(** Create the tree through the syscall layer.  Raises [Failure] on any
    syscall error (generation bugs should be loud). *)

val build_maildir :
  Dcache_syscalls.Proc.t -> root:string -> messages:int -> seed:int -> string list
(** A maildir mailbox: [root/cur] with [messages] message files whose names
    encode flags (["<id>.host:2,<flags>"]); returns the file names. *)
