(** Dovecot-style maildir IMAP server model (paper §5.1, Fig. 10).

    Marking a message as seen/flagged renames its file (the flags live in
    the file name) and then re-reads the mailbox directory to sync the mail
    list — the readdir-heavy pattern directory completeness caching
    accelerates. *)

type mailbox

val setup :
  Dcache_syscalls.Proc.t -> root:string -> messages:int -> seed:int -> mailbox

val message_count : mailbox -> int

val run_ops : Dcache_syscalls.Proc.t -> mailbox -> ops:int -> seed:int -> int
(** Perform [ops] random mark/unmark operations (rename + full directory
    re-read each); returns the number of directory entries scanned. *)

val deliver : Dcache_syscalls.Proc.t -> mailbox -> n:int -> unit
(** A delivery agent writing [n] new messages into [new/], then the server
    moving them to [cur/] — exercises create + rename + re-read. *)
