module S = Dcache_syscalls.Syscalls
module Fs = Dcache_fs.Fs_intf

let ok what = function
  | Ok v -> v
  | Error e ->
    failwith (Printf.sprintf "Webserver.%s: %s" what (Dcache_types.Errno.to_string e))

let setup proc ~dir ~files =
  ok "mkdir" (S.mkdir_p proc dir);
  for i = 1 to files do
    ok "file" (S.write_file proc (Printf.sprintf "%s/doc%05d.html" dir i) "<html/>")
  done

let request proc ~dir =
  let entries = ok "readdir" (S.readdir_path proc dir) in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "<html><body><ul>\n";
  List.iter
    (fun (e : Fs.dirent) ->
      let attr = ok "stat" (S.stat proc (dir ^ "/" ^ e.Fs.name)) in
      Buffer.add_string buf
        (Printf.sprintf "<li><a href=\"%s\">%s</a> (%d bytes)</li>\n" e.Fs.name e.Fs.name
           attr.Dcache_types.Attr.size))
    entries;
  Buffer.add_string buf "</ul></body></html>\n";
  Buffer.length buf
