module Kernel = Dcache_syscalls.Kernel
module Counter = Dcache_util.Stats.Counter

type result = {
  label : string;
  real_ns : int64;
  virt_ns : int64;
  total_ns : int64;
  path_lookups : int;
  hit_rate : float;
  neg_rate : float;
  counters : (string * int) list;
}

let run ?(label = "workload") env f =
  Env.reset_measurement env;
  let _, real_ns = Dcache_util.Clock.time_ns f in
  let virt_ns = Dcache_util.Vclock.elapsed_ns env.Env.vclock in
  let counters = Kernel.stats_snapshot env.Env.kernel in
  let get key = try List.assoc key counters with Not_found -> 0 in
  let hits = get "dcache_hit" in
  let misses = get "dcache_miss" in
  let lookups = get "path_lookup" in
  let negatives =
    get "walk_negative_hit" + get "fastpath_negative_hit" + get "complete_dir_negative"
  in
  {
    label;
    real_ns;
    virt_ns;
    total_ns = Int64.add real_ns virt_ns;
    path_lookups = lookups;
    hit_rate =
      (if hits + misses = 0 then 1.0
       else float_of_int hits /. float_of_int (hits + misses));
    neg_rate =
      (if lookups = 0 then 0.0 else float_of_int negatives /. float_of_int lookups);
    counters;
  }

let seconds r = Int64.to_float r.total_ns /. 1e9

let gain ~baseline r =
  let b = Int64.to_float baseline.total_ns in
  let v = Int64.to_float r.total_ns in
  if b = 0.0 then 0.0 else (b -. v) /. b *. 100.0
