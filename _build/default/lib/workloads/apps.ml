module S = Dcache_syscalls.Syscalls
module Proc = Dcache_syscalls.Proc
module Prng = Dcache_util.Prng
module Fs = Dcache_fs.Fs_intf
module File_kind = Dcache_types.File_kind

type counts = { examined : int; matched : int; bytes : int }

let contains ~pattern name =
  let n = String.length name and p = String.length pattern in
  if p = 0 then true
  else begin
    let rec at i = i + p <= n && (String.sub name i p = pattern || at (i + 1)) in
    at 0
  end

let ok what = function
  | Ok v -> v
  | Error e ->
    failwith (Printf.sprintf "Apps.%s: %s" what (Dcache_types.Errno.to_string e))

let drain_dir proc fd =
  let rec go acc =
    match ok "getdents" (S.getdents proc fd 64) with
    | [] -> List.rev acc
    | chunk -> go (List.rev_append chunk acc)
  in
  go []

(* Depth-first walk in the style of fts/nftw: a dirfd per level, getdents,
   fstatat per entry, openat to descend — all single-component *at calls. *)
let walk_at proc ~root f =
  let rec visit fd =
    let entries = drain_dir proc fd in
    List.iter
      (fun (e : Fs.dirent) ->
        let attr = ok "fstatat" (S.fstatat proc fd e.Fs.name ~follow:false ()) in
        f e attr;
        if File_kind.equal attr.Dcache_types.Attr.kind File_kind.Directory then begin
          let child = ok "openat" (S.openat proc fd e.Fs.name [ Proc.O_RDONLY; Proc.O_DIRECTORY ]) in
          visit child;
          ok "close" (S.close proc child)
        end)
      entries
  in
  let fd = ok "open root" (S.openf proc root [ Proc.O_RDONLY; Proc.O_DIRECTORY ]) in
  visit fd;
  ok "close root" (S.close proc fd)

let find proc ~root ~pattern =
  let examined = ref 0 and matched = ref 0 in
  walk_at proc ~root (fun e _attr ->
      incr examined;
      if contains ~pattern e.Fs.name then incr matched);
  { examined = !examined; matched = !matched; bytes = 0 }

let du proc ~root =
  let examined = ref 0 and bytes = ref 0 in
  walk_at proc ~root (fun _e attr ->
      incr examined;
      bytes := !bytes + attr.Dcache_types.Attr.size);
  { examined = !examined; matched = 0; bytes = !bytes }

let updatedb proc ~root ~output =
  let buf = Buffer.create 4096 in
  let examined = ref 0 in
  let rec visit fd prefix =
    let entries = drain_dir proc fd in
    List.iter
      (fun (e : Fs.dirent) ->
        incr examined;
        let path = prefix ^ "/" ^ e.Fs.name in
        Buffer.add_string buf path;
        Buffer.add_char buf '\n';
        let attr = ok "fstatat" (S.fstatat proc fd e.Fs.name ~follow:false ()) in
        if File_kind.equal attr.Dcache_types.Attr.kind File_kind.Directory then begin
          let child =
            ok "openat" (S.openat proc fd e.Fs.name [ Proc.O_RDONLY; Proc.O_DIRECTORY ])
          in
          visit child path;
          ok "close" (S.close proc child)
        end)
      entries
  in
  let fd = ok "open root" (S.openf proc root [ Proc.O_RDONLY; Proc.O_DIRECTORY ]) in
  visit fd root;
  ok "close" (S.close proc fd);
  ok "write db" (S.write_file proc output (Buffer.contents buf));
  { examined = !examined; matched = 0; bytes = Buffer.length buf }

let relocate ~src_root ~dst path =
  let suffix =
    let n = String.length src_root in
    if String.length path >= n && String.sub path 0 n = src_root then
      String.sub path n (String.length path - n)
    else path
  in
  dst ^ suffix

let tar_extract proc ~(manifest : Tree_gen.manifest) ~dst =
  let examined = ref 0 and bytes = ref 0 in
  ok "mkdir_p dst" (S.mkdir_p proc dst);
  let content = String.make manifest.Tree_gen.spec.Tree_gen.file_size 'y' in
  List.iter
    (fun dir ->
      incr examined;
      ok "mkdir" (S.mkdir_p proc (relocate ~src_root:manifest.Tree_gen.root ~dst dir)))
    manifest.Tree_gen.dirs;
  List.iter
    (fun file ->
      incr examined;
      bytes := !bytes + String.length content;
      ok "extract" (S.write_file proc (relocate ~src_root:manifest.Tree_gen.root ~dst file) content))
    manifest.Tree_gen.files;
  List.iter
    (fun link ->
      incr examined;
      ok "symlink"
        (S.symlink proc ~target:"." (relocate ~src_root:manifest.Tree_gen.root ~dst link)))
    manifest.Tree_gen.symlinks;
  { examined = !examined; matched = 0; bytes = !bytes }

let rm_rf proc ~root =
  let examined = ref 0 in
  let rec visit dir =
    let entries = ok "readdir" (S.readdir_path proc dir) in
    List.iter
      (fun (e : Fs.dirent) ->
        incr examined;
        let path = dir ^ "/" ^ e.Fs.name in
        match e.Fs.kind with
        | File_kind.Directory ->
          visit path;
          ok "rmdir" (S.rmdir proc path)
        | _ -> ok "unlink" (S.unlink proc path))
      entries
  in
  visit root;
  ok "rmdir root" (S.rmdir proc root);
  { examined = !examined; matched = 0; bytes = 0 }

(* --- make --- *)

type make_env = {
  headers : string list;
  include_dir : string;
  missing_dirs : string list;
  obj_dir : string;
}

let make_setup proc ~root ~headers ~seed =
  let prng = Prng.create seed in
  let include_dir = root ^ "/include" in
  let missing_dirs = [ root ^ "/arch/include"; root ^ "/generated/include" ] in
  let obj_dir = root ^ "/obj" in
  ok "mkdir include" (S.mkdir_p proc include_dir);
  (* The missing include dirs exist but are empty: searches miss. *)
  List.iter (fun d -> ok "mkdir missing" (S.mkdir_p proc d)) missing_dirs;
  ok "mkdir obj" (S.mkdir_p proc obj_dir);
  let names =
    List.init headers (fun i ->
        Printf.sprintf "%s_%d.h" (Prng.string prng ~min_len:3 ~max_len:8) i)
  in
  List.iter
    (fun name ->
      ok "write header" (S.write_file proc (include_dir ^ "/" ^ name) "#define X 1\n"))
    names;
  { headers = names; include_dir; missing_dirs; obj_dir }

let obj_name file =
  String.map (fun c -> if c = '/' then '_' else c) file ^ ".o"

let compile proc env prng headers_per_file headers_arr file =
  (* stat + read the source *)
  let _ = ok "stat src" (S.stat proc file) in
  let _ = ok "read src" (S.read_file proc file) in
  (* search each included header along the include path: the first
     directories never have it (negative dentries), the real one does *)
  for _ = 1 to headers_per_file do
    let header = headers_arr.(Prng.int prng (Array.length headers_arr)) in
    List.iter
      (fun dir ->
        match S.stat proc (dir ^ "/" ^ header) with
        | Ok _ | Error _ -> ())
      env.missing_dirs;
    let _ = ok "stat header" (S.stat proc (env.include_dir ^ "/" ^ header)) in
    ()
  done;
  (* write the object file *)
  ok "write obj" (S.write_file proc (env.obj_dir ^ "/" ^ obj_name file) "OBJ")

let make proc ~(manifest : Tree_gen.manifest) ~env ~headers_per_file ~seed =
  let prng = Prng.create seed in
  let headers_arr = Array.of_list env.headers in
  List.iter (compile proc env prng headers_per_file headers_arr) manifest.Tree_gen.files;
  { examined = List.length manifest.Tree_gen.files; matched = 0; bytes = 0 }

let make_parallel proc ~(manifest : Tree_gen.manifest) ~env ~headers_per_file ~seed ~jobs =
  let files = Array.of_list manifest.Tree_gen.files in
  let n = Array.length files in
  let jobs = max 1 (min jobs n) in
  let chunk j =
    let per = (n + jobs - 1) / jobs in
    let lo = j * per in
    let hi = min n (lo + per) in
    Array.to_list (Array.sub files lo (max 0 (hi - lo)))
  in
  let worker j () =
    let p = Proc.fork proc in
    let prng = Prng.create (seed + j) in
    let headers_arr = Array.of_list env.headers in
    List.iter (compile p env prng headers_per_file headers_arr) (chunk j)
  in
  let domains = List.init jobs (fun j -> Domain.spawn (worker j)) in
  List.iter Domain.join domains;
  { examined = n; matched = 0; bytes = 0 }

(* --- git --- *)

let index_path (manifest : Tree_gen.manifest) = manifest.Tree_gen.root ^ "/.git/index"

let git_setup proc ~(manifest : Tree_gen.manifest) =
  ok "mkdir .git" (S.mkdir_p proc (manifest.Tree_gen.root ^ "/.git"));
  let buf = Buffer.create 4096 in
  List.iter
    (fun f ->
      Buffer.add_string buf f;
      Buffer.add_char buf '\n')
    manifest.Tree_gen.files;
  ok "write index" (S.write_file proc (index_path manifest) (Buffer.contents buf))

let git_status proc ~(manifest : Tree_gen.manifest) =
  let index = ok "read index" (S.read_file proc (index_path manifest)) in
  let files = String.split_on_char '\n' index |> List.filter (fun l -> l <> "") in
  let examined = ref 0 in
  List.iter
    (fun file ->
      incr examined;
      ignore (ok "lstat" (S.lstat proc file)))
    files;
  { examined = !examined; matched = 0; bytes = String.length index }

let git_diff proc ~(manifest : Tree_gen.manifest) =
  let status = git_status proc ~manifest in
  let bytes = ref status.bytes in
  let i = ref 0 in
  List.iter
    (fun file ->
      incr i;
      if !i mod 10 = 0 then bytes := !bytes + String.length (ok "read" (S.read_file proc file)))
    manifest.Tree_gen.files;
  { status with bytes = !bytes }
