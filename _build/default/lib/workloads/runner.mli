(** Measured workload execution: wall time + simulated device time, and the
    path-lookup statistics the paper reports per application (Table 1/2). *)

type result = {
  label : string;
  real_ns : int64;  (** measured wall-clock time *)
  virt_ns : int64;  (** simulated device latency accrued (cold-cache runs) *)
  total_ns : int64;  (** real + virtual: the reported execution time *)
  path_lookups : int;
  hit_rate : float;  (** component-level dcache hit rate *)
  neg_rate : float;  (** share of lookups answered by negative dentries *)
  counters : (string * int) list;
}

val run : ?label:string -> Env.t -> (unit -> unit) -> result
(** Reset measurement state, run the workload, and collect the result. *)

val seconds : result -> float
val gain : baseline:result -> result -> float
(** Relative improvement of [result] over [baseline] in percent (positive =
    faster). *)
