module S = Dcache_syscalls.Syscalls
module Prng = Dcache_util.Prng
module Fs = Dcache_fs.Fs_intf

type mailbox = { dir : string; mutable names : string array; mutable next_uid : int }

let ok what = function
  | Ok v -> v
  | Error e ->
    failwith (Printf.sprintf "Maildir.%s: %s" what (Dcache_types.Errno.to_string e))

let setup proc ~root ~messages ~seed =
  let names = Tree_gen.build_maildir proc ~root ~messages ~seed in
  { dir = root; names = Array.of_list names; next_uid = 2_000_000 }

let message_count mbox = Array.length mbox.names

let split_flags name =
  match String.index_opt name ',' with
  | Some i -> (String.sub name 0 (i + 1), String.sub name (i + 1) (String.length name - i - 1))
  | None -> (name ^ ":2,", "")

let toggle_flag prng name =
  let base, flags = split_flags name in
  let flag = if Prng.bool prng then 'S' else 'F' in
  let flags =
    if String.contains flags flag then String.concat "" (List.filter_map (fun c ->
        if c = flag then None else Some (String.make 1 c))
        (List.init (String.length flags) (String.get flags)))
    else String.make 1 flag ^ flags
  in
  base ^ flags

let reread proc mbox =
  let entries = ok "readdir" (S.readdir_path proc (mbox.dir ^ "/cur")) in
  List.length entries

let run_ops proc mbox ~ops ~seed =
  let prng = Prng.create seed in
  let scanned = ref 0 in
  for _ = 1 to ops do
    let i = Prng.int prng (Array.length mbox.names) in
    let old_name = mbox.names.(i) in
    let new_name = toggle_flag prng old_name in
    if new_name <> old_name then begin
      ok "rename"
        (S.rename proc (mbox.dir ^ "/cur/" ^ old_name) (mbox.dir ^ "/cur/" ^ new_name));
      mbox.names.(i) <- new_name
    end;
    scanned := !scanned + reread proc mbox
  done;
  !scanned

let deliver proc mbox ~n =
  let fresh =
    List.init n (fun i ->
        let uid = mbox.next_uid + i in
        Printf.sprintf "%d.%06d.host:2," uid (uid * 7 mod 1000000))
  in
  mbox.next_uid <- mbox.next_uid + n;
  List.iter
    (fun name ->
      ok "deliver" (S.write_file proc (mbox.dir ^ "/new/" ^ name) "Subject: new\n\nbody\n"))
    fresh;
  List.iter
    (fun name ->
      ok "move" (S.rename proc (mbox.dir ^ "/new/" ^ name) (mbox.dir ^ "/cur/" ^ name)))
    fresh;
  mbox.names <- Array.append mbox.names (Array.of_list fresh);
  ignore (reread proc mbox)
