(** Synthetic system-call traces in the spirit of the iBench suite the
    paper cites (§1: 10-20% of all system calls perform a path lookup).

    A trace is generated once from a built tree with tunable locality and
    operation mix, then replayed deterministically against any kernel —
    useful for comparing cache designs on identical workloads. *)

type event =
  | T_stat of string
  | T_lstat of string
  | T_access of string
  | T_open_read of string  (** open, read a little, close *)
  | T_open_write of string  (** open(O_CREAT), write a little, close *)
  | T_readdir of string
  | T_unlink of string
  | T_rename of string * string
  | T_mkdir of string
  | T_getpid  (** a non-path syscall: pure overhead filler *)

type t = { events : event array; lookups : int }

type mix = {
  stat_w : int;
  open_read_w : int;
  open_write_w : int;
  readdir_w : int;
  mutate_w : int;  (** unlink/rename/mkdir combined *)
  other_w : int;  (** non-path syscalls *)
}

val ibench_like : mix
(** ~15% of events perform a path lookup, as in the paper's iBench quote. *)

val metadata_heavy : mix

val generate :
  manifest:Tree_gen.manifest -> mix:mix -> events:int -> locality:float -> seed:int -> t
(** [locality] in [0,1]: probability that an event reuses one of the 32 most
    recently touched paths instead of a fresh uniform pick. *)

type outcome = { ok : int; errors : int; lookup_events : int }

val replay : Dcache_syscalls.Proc.t -> t -> outcome
(** Replay the trace; per-event errors (e.g. a stat after an unlink of the
    same generated path) are counted, not fatal — identical traces must
    produce identical outcomes on any correct kernel. *)
