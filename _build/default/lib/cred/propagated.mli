(** Windows-NT-style propagated hierarchical permissions (paper §2.3).

    Windows enables direct (whole-path) lookup by storing each object's
    {e effective} permissions on the object itself, propagated from the
    parent at creation or modification time.  An access check then reads
    one object — no prefix walk — but keeping the stored permissions
    coherent with intent is the paper's "subtle manageability problem":
    when a directory's permissions change, Windows propagates to children
    {e except} those whose permissions were ever manually modified.

    This standalone model exists to quantify and demonstrate that contrast
    against the paper's approach (memoize prefix checks in memory, keep
    POSIX semantics authoritative):

    - {!effective_mode} is a single field read (like a PCC hit);
    - {!chmod} costs O(subtree) persistent updates (vs the paper's
      O(cached-subtree) in-memory invalidation);
    - the heuristic leaves manually-modified children out of later
      propagations — including the dangerous direction, where a child
      stays world-accessible after its parent was locked down. *)

type t
type node

val create : root_mode:int -> t
val root : t -> node

val add : t -> node -> string -> node
(** Create a child inheriting the parent's effective mode. *)

val add_manual : t -> node -> string -> mode:int -> node
(** Create a child with explicitly chosen permissions (marked manual). *)

val chmod : t -> node -> int -> int
(** Change a node's permissions (marking it manual) and propagate to every
    descendant {e not} marked manual; returns the number of objects
    rewritten. *)

val effective_mode : node -> int
(** The stored effective permissions: one read, no ancestor consulted. *)

val manual : node -> bool
val find : t -> node -> string -> node option
val node_count : t -> int
