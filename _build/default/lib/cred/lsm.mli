(** Linux Security Module framework (paper §4.1).

    Security modules can override or restrict permission decisions beyond
    POSIX discretionary access control.  The VFS calls {!permission} for
    every inode access on the slowpath; the optimized dcache memoizes the
    combined result in the per-credential prefix check cache, which is why
    the framework keeps decisions a pure function of (cred, attr, mask). *)

type hooks = {
  name : string;
  inode_permission : Cred.t -> Dcache_types.Attr.t -> Dcache_types.Access.t -> bool;
      (** Restrictive hook: return [false] to deny an access DAC allowed. *)
}

type registry

val create : unit -> registry
val register : registry -> hooks -> unit
val names : registry -> string list

val dac_permission : Cred.t -> Dcache_types.Attr.t -> Dcache_types.Access.t -> bool
(** POSIX discretionary check alone: owner/group/other rwx classes, with
    root's DAC_OVERRIDE (exec still requires some x bit on regular files). *)

val permission : registry -> Cred.t -> Dcache_types.Attr.t -> Dcache_types.Access.t -> bool
(** DAC, then every registered module in registration order; all must
    allow. *)

val counting : hooks -> hooks * (unit -> int)
(** [counting h] wraps [h] so calls are counted — used by tests and benches
    to demonstrate that the PCC memoizes (expensive) LSM evaluations. *)
