lib/cred/lsm.mli: Cred Dcache_types
