lib/cred/maclabel.ml: Access Attr Cred Dcache_types List Lsm
