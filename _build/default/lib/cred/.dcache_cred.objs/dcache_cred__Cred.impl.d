lib/cred/cred.ml: Atomic List
