lib/cred/propagated.ml: Hashtbl
