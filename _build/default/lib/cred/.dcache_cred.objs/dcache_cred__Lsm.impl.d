lib/cred/lsm.ml: Access Attr Cred Dcache_types File_kind List Mode
