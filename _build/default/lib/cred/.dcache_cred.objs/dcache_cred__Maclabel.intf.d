lib/cred/maclabel.mli: Dcache_types Lsm
