lib/cred/propagated.mli:
