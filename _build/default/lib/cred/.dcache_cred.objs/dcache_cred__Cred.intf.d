lib/cred/cred.mli:
