(** Label-based mandatory access control, an SELinux stand-in.

    Inodes may carry a security label (via their [Attr.label] xattr) and
    credentials carry a domain ([Cred.label]).  The policy is a list of
    [(domain, label, allowed-mask)] triples; an access to a labeled inode is
    allowed only if some triple covers it.  Unlabeled inodes and unconfined
    credentials are always allowed, like SELinux permissive types.

    Registering this module exercises the paper's claim that the PCC can
    memoize arbitrary LSM decisions (§4.1). *)

type rule = { domain : string; label : string; allow : Dcache_types.Access.t }

val hooks : rules:rule list -> Lsm.hooks
