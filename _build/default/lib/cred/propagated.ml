type node = {
  mutable mode : int;
  mutable is_manual : bool;
  children : (string, node) Hashtbl.t;
}

type t = { root_node : node; mutable count : int }

let make_node mode is_manual = { mode; is_manual; children = Hashtbl.create 4 }
let create ~root_mode = { root_node = make_node root_mode false; count = 1 }
let root t = t.root_node

let add t parent name =
  let node = make_node parent.mode false in
  Hashtbl.replace parent.children name node;
  t.count <- t.count + 1;
  node

let add_manual t parent name ~mode =
  let node = make_node mode true in
  Hashtbl.replace parent.children name node;
  t.count <- t.count + 1;
  node

let chmod _t node mode =
  node.mode <- mode;
  node.is_manual <- true;
  (* The Windows heuristic: propagate to descendants except those whose
     permissions were ever set by hand — and stop descending there, since
     their subtrees inherited from the manual setting. *)
  let rewritten = ref 1 in
  let rec propagate parent =
    Hashtbl.iter
      (fun _ child ->
        if not child.is_manual then begin
          child.mode <- mode;
          incr rewritten;
          propagate child
        end)
      parent.children
  in
  propagate node;
  !rewritten

let effective_mode node = node.mode
let manual node = node.is_manual
let find _t parent name = Hashtbl.find_opt parent.children name
let node_count t = t.count
