open Dcache_types

type rule = { domain : string; label : string; allow : Access.t }

let hooks ~rules =
  let inode_permission cred (attr : Attr.t) mask =
    match (Cred.label cred, attr.label) with
    | None, _ | _, None -> true
    | Some domain, Some label ->
      List.exists
        (fun r -> r.domain = domain && r.label = label && Access.includes r.allow mask)
        rules
  in
  { Lsm.name = "maclabel"; inode_permission }
