(** Wall-clock time helpers for measurement code. *)

val now_ns : unit -> int64
(** Monotonic-enough wall clock in nanoseconds (from [Unix.gettimeofday]). *)

val time_ns : (unit -> 'a) -> 'a * int64
(** [time_ns f] runs [f] and returns its result and elapsed nanoseconds. *)
