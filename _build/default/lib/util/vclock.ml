type t = { mutable ns : int64 }

let create () = { ns = 0L }
let charge t delta = t.ns <- Int64.add t.ns delta
let elapsed_ns t = t.ns
let reset t = t.ns <- 0L
