type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let copy g = { s0 = g.s0; s1 = g.s1; s2 = g.s2; s3 = g.s3 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let next64 g =
  let open Int64 in
  let result = mul (rotl (mul g.s1 5L) 7) 9L in
  let t = shift_left g.s1 17 in
  g.s2 <- logxor g.s2 g.s0;
  g.s3 <- logxor g.s3 g.s1;
  g.s1 <- logxor g.s1 g.s2;
  g.s0 <- logxor g.s0 g.s3;
  g.s2 <- logxor g.s2 t;
  g.s3 <- rotl g.s3 45;
  result

let int g bound =
  assert (bound > 0);
  let x = Int64.to_int (next64 g) land max_int in
  x mod bound

let int_in g lo hi =
  assert (hi >= lo);
  lo + int g (hi - lo + 1)

let float g bound =
  let x = Int64.to_float (Int64.shift_right_logical (next64 g) 11) in
  bound *. (x /. 9007199254740992.0)

let bool g = Int64.logand (next64 g) 1L = 1L
let choice g arr = arr.(int g (Array.length arr))

let choice_list g l =
  let n = List.length l in
  List.nth l (int g n)

let shuffle g arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let alphabet = "abcdefghijklmnopqrstuvwxyz0123456789"

let string g ~min_len ~max_len =
  let len = int_in g min_len max_len in
  String.init len (fun _ -> alphabet.[int g (String.length alphabet)])

let split g = create (Int64.to_int (next64 g) land max_int)
