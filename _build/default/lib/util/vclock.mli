(** Virtual nanosecond clock.

    The simulator charges the cost of events we cannot measure natively
    (disk seeks, block transfers) to a virtual clock instead of sleeping.
    A workload's "execution time" is then real CPU time plus virtual time,
    which reproduces the paper's cold-cache behaviour where disk latency
    dominates and dcache optimizations disappear into the noise. *)

type t

val create : unit -> t
val charge : t -> int64 -> unit
(** [charge t ns] advances the clock by [ns] nanoseconds. *)

val elapsed_ns : t -> int64
val reset : t -> unit
