(** Deterministic pseudo-random number generation.

    All randomness in the simulator flows through a [t] so that workloads,
    tree generators and property tests are reproducible from a seed.  The
    generator is xoshiro256** seeded via splitmix64, which is fast and has
    good statistical quality for simulation purposes (not cryptographic). *)

type t

val create : int -> t
(** [create seed] makes a fresh generator from a 63-bit seed. *)

val copy : t -> t
(** [copy g] snapshots the generator state. *)

val next64 : t -> int64
(** [next64 g] returns the next raw 64-bit output. *)

val int : t -> int -> int
(** [int g bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in g lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float g bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val choice : t -> 'a array -> 'a
(** [choice g arr] picks a uniform element. Requires [arr] non-empty. *)

val choice_list : t -> 'a list -> 'a

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val string : t -> min_len:int -> max_len:int -> string
(** Random lowercase-alphanumeric string, for file names. *)

val split : t -> t
(** [split g] derives an independent generator (for parallel workers). *)
