type t = int Atomic.t

let create () : t = Atomic.make 0
let read_begin t = Atomic.get t
let read_validate t snap = snap land 1 = 0 && Atomic.get t = snap
let write_begin t = ignore (Atomic.fetch_and_add t 1)
let write_end t = ignore (Atomic.fetch_and_add t 1)

let bump t =
  write_begin t;
  write_end t

let raw t = Atomic.get t
