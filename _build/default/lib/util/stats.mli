(** Sample statistics and histograms for the benchmark harness. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  ci95 : float;  (** half-width of the 95% confidence interval of the mean *)
}

val summarize : float array -> summary
(** [summarize samples] computes a summary; requires a non-empty array. *)

val summarize_ns : int64 array -> summary
(** Like {!summarize} on nanosecond samples. *)

val mean : float array -> float
val median : float array -> float
val percentile : float array -> float -> float
(** [percentile samples p] for [p] in [\[0,100\]] (nearest-rank, on a sorted
    copy). *)

type histogram

val histogram : ?buckets:int -> float array -> histogram
val hist_to_string : histogram -> string

(** Online counter sets, used by the kernel instrumentation. *)
module Counter : sig
  type t

  val create : unit -> t
  val incr : t -> string -> unit
  val add : t -> string -> int -> unit
  val get : t -> string -> int
  val reset : t -> unit
  val to_assoc : t -> (string * int) list
  (** Sorted by key. *)
end
