lib/util/rwlock.mli:
