lib/util/stats.mli:
