lib/util/vclock.ml: Int64
