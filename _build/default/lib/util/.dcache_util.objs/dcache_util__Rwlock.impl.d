lib/util/rwlock.ml: Atomic Domain Mutex Unix
