lib/util/seqcount.ml: Atomic
