lib/util/stats.ml: Array Buffer Float Hashtbl Int64 List Printf Stdlib String
