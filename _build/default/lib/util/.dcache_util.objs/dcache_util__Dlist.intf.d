lib/util/dlist.mli:
