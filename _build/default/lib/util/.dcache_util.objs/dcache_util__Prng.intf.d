lib/util/prng.mli:
