lib/util/clock.mli:
