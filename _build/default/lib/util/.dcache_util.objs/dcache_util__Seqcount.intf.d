lib/util/seqcount.mli:
