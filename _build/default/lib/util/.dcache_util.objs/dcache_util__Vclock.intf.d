lib/util/vclock.mli:
