let now_ns () = Int64.of_float (Unix.gettimeofday () *. 1e9)

let time_ns f =
  let t0 = now_ns () in
  let result = f () in
  let t1 = now_ns () in
  (result, Int64.sub t1 t0)
