(** Sequence counters (Linux [seqcount_t]-style).

    Writers bump the counter around a critical section; readers snapshot it
    before and after and retry (or fall back) if it changed or was odd.
    The optimized dcache uses these to detect concurrent renames/chmods
    without read-side locking (paper §3.2). *)

type t

val create : unit -> t

val read_begin : t -> int
(** Snapshot for an optimistic read section. *)

val read_validate : t -> int -> bool
(** [read_validate t snap] is true iff no write ran since [snap] was taken
    and [snap] itself was outside a write section. *)

val write_begin : t -> unit
val write_end : t -> unit

val bump : t -> unit
(** [bump t] is [write_begin; write_end]: invalidate all readers. *)

val raw : t -> int
(** Current raw value (for storing in cache entries). *)
