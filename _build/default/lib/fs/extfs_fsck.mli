(** Consistency checker for {!Extfs} volumes.

    Walks the on-disk structures directly (superblock, bitmaps, inode table,
    directory blocks) and cross-checks them, like a miniature [e2fsck]:

    - every directory entry references an allocated inode of the same kind;
    - inode link counts match the number of referencing entries (plus [.]
      and subdirectory [..] accounting for directories);
    - every block referenced by an inode is marked allocated, and no block
      is referenced twice;
    - allocated inodes/blocks are reachable from the root (orphans from
      unlinked-but-open files are reported, not failed);
    - directory entry names are well-formed.

    Used by property tests: any sequence of fs operations must leave the
    volume fsck-clean after [sync]. *)

type issue = {
  severity : [ `Error | `Warning ];
  message : string;
}

type report = {
  issues : issue list;
  inodes_used : int;
  blocks_used : int;
  files : int;
  directories : int;
  symlinks : int;
}

val errors : report -> issue list

val check : Dcache_storage.Pagecache.t -> (report, Dcache_types.Errno.t) result
(** Check a formatted volume through its page cache.  [Error EINVAL] if the
    superblock is unreadable. *)

val pp_report : Format.formatter -> report -> unit
