open Fs_intf

type costs = {
  lookup_ns : int;
  getattr_ns : int;
  readdir_base_ns : int;
  readdir_entry_ns : int;
  mutate_ns : int;
  readlink_ns : int;
}

let default_costs =
  {
    lookup_ns = 800;
    getattr_ns = 400;
    readdir_base_ns = 600;
    readdir_entry_ns = 40;
    mutate_ns = 1200;
    readlink_ns = 300;
  }

let wrap ?(costs = default_costs) ~clock fs =
  let charge ns = Dcache_util.Vclock.charge clock (Int64.of_int ns) in
  {
    fs with
    lookup =
      (fun dir name ->
        charge costs.lookup_ns;
        fs.lookup dir name);
    getattr =
      (fun ino ->
        charge costs.getattr_ns;
        fs.getattr ino);
    setattr =
      (fun ino changes ->
        charge costs.mutate_ns;
        fs.setattr ino changes);
    readdir =
      (fun dir ->
        charge costs.readdir_base_ns;
        let result = fs.readdir dir in
        (match result with
        | Ok entries -> charge (costs.readdir_entry_ns * List.length entries)
        | Error _ -> ());
        result);
    create =
      (fun dir name kind mode ~uid ~gid ->
        charge costs.mutate_ns;
        fs.create dir name kind mode ~uid ~gid);
    symlink =
      (fun dir name ~target ~uid ~gid ->
        charge costs.mutate_ns;
        fs.symlink dir name ~target ~uid ~gid);
    link =
      (fun dir name ino ->
        charge costs.mutate_ns;
        fs.link dir name ino);
    unlink =
      (fun dir name ->
        charge costs.mutate_ns;
        fs.unlink dir name);
    rmdir =
      (fun dir name ->
        charge costs.mutate_ns;
        fs.rmdir dir name);
    rename =
      (fun od on nd nn ->
        charge costs.mutate_ns;
        fs.rename od on nd nn);
    readlink =
      (fun ino ->
        charge costs.readlink_ns;
        fs.readlink ino);
  }
