(** Deterministic cost model for low-level file system calls.

    In a real kernel, every call into the file system below the VFS costs
    far more than a directory-cache hit: on-disk metadata must be mapped,
    parsed and translated into generic structures even when the page cache
    is warm (paper §5: "at best, the on-disk metadata format is still in the
    page cache, but must be translated").  Our OCaml substrate parses too,
    but its costs are small and noisy relative to the container's timer
    resolution, so benchmark environments additionally charge each fs call
    a fixed number of {e virtual} nanoseconds on the shared virtual clock.
    This keeps miss-vs-hit shape stable and deterministic; it is documented
    as a substitution in DESIGN.md.  Unit tests use unwrapped file systems.

    The charges are calibrated so that a warm dcache miss costs on the
    order of the paper's measured sub-microsecond fs work, and a readdir
    pays per-entry translation. *)

type costs = {
  lookup_ns : int;
  getattr_ns : int;
  readdir_base_ns : int;
  readdir_entry_ns : int;
  mutate_ns : int;  (** create/unlink/rmdir/rename/link/symlink/setattr *)
  readlink_ns : int;
}

val default_costs : costs

val wrap : ?costs:costs -> clock:Dcache_util.Vclock.t -> Fs_intf.t -> Fs_intf.t
