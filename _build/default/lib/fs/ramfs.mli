(** In-memory file system (like Linux tmpfs/ramfs).

    No disk, no virtual-time charges: every operation is a memory operation.
    Used as the default substrate for warm-cache experiments, where the paper
    is measuring pure dcache behaviour. *)

val create : unit -> Fs_intf.t
