open Dcache_types
open Fs_intf

type protocol = Stateless | Stateful

type callback = { mutable on_break : int -> unit }

type server = {
  backing : Fs_intf.t;
  clock : Dcache_util.Vclock.t;
  rpc_latency : int64;
  generations : (int, int) Hashtbl.t;  (* per-inode change generation *)
  mutable rpcs : int;
  cb : callback;
}

let server ?(rpc_latency_ns = 120_000) ~clock backing =
  {
    backing;
    clock;
    rpc_latency = Int64.of_int rpc_latency_ns;
    generations = Hashtbl.create 256;
    rpcs = 0;
    cb = { on_break = (fun _ -> ()) };
  }

let rpc_count t = t.rpcs
let reset_rpc_count t = t.rpcs <- 0
let callbacks t = t.cb

let generation t ino = Option.value (Hashtbl.find_opt t.generations ino) ~default:0

let bump_generation t ino = Hashtbl.replace t.generations ino (generation t ino + 1)

let break_callback t ino =
  bump_generation t ino;
  t.cb.on_break ino

(* One server round trip. *)
let rpc t f =
  t.rpcs <- t.rpcs + 1;
  Dcache_util.Vclock.charge t.clock t.rpc_latency;
  f t.backing

let client ~protocol server =
  let fs = server.backing in
  (* What generation of each inode this client last saw; refreshed by any
     RPC that returns the inode's attributes. *)
  let seen : (int, int) Hashtbl.t = Hashtbl.create 256 in
  let note_attr (attr : Attr.t) =
    Hashtbl.replace seen attr.Attr.ino (generation server attr.Attr.ino);
    attr
  in
  let mutated ino =
    bump_generation server ino;
    Hashtbl.replace seen ino (generation server ino)
  in
  let revalidate ino =
    rpc server (fun backing ->
        match backing.getattr ino with
        | Error Errno.EIO -> Ok false (* the inode is gone on the server *)
        | Error _ as e -> Result.map (fun _ -> false) e
        | Ok _ ->
          let current = generation server ino in
          let fresh =
            match Hashtbl.find_opt seen ino with
            | Some g -> g = current
            | None -> false
          in
          Hashtbl.replace seen ino current;
          Ok fresh)
  in
  {
    fs_type = (match protocol with Stateless -> "netfs-stateless" | Stateful -> "netfs-stateful");
    root_ino = fs.root_ino;
    (* A stateless client cannot trust cached absence either: negative
       dentries are disabled so every miss re-asks the server. *)
    negative_dentries = (protocol = Stateful);
    lookup =
      (fun dir name -> rpc server (fun b -> Result.map note_attr (b.lookup dir name)));
    getattr = (fun ino -> rpc server (fun b -> Result.map note_attr (b.getattr ino)));
    setattr =
      (fun ino changes ->
        rpc server (fun b ->
            let result = b.setattr ino changes in
            mutated ino;
            Result.map note_attr result));
    readdir = (fun dir -> rpc server (fun b -> b.readdir dir));
    create =
      (fun dir name kind mode ~uid ~gid ->
        rpc server (fun b ->
            let result = b.create dir name kind mode ~uid ~gid in
            mutated dir;
            Result.map note_attr result));
    symlink =
      (fun dir name ~target ~uid ~gid ->
        rpc server (fun b ->
            let result = b.symlink dir name ~target ~uid ~gid in
            mutated dir;
            Result.map note_attr result));
    link =
      (fun dir name ino ->
        rpc server (fun b ->
            let result = b.link dir name ino in
            mutated dir;
            mutated ino;
            Result.map note_attr result));
    unlink =
      (fun dir name ->
        rpc server (fun b ->
            let result = b.unlink dir name in
            mutated dir;
            result));
    rmdir =
      (fun dir name ->
        rpc server (fun b ->
            let result = b.rmdir dir name in
            mutated dir;
            result));
    rename =
      (fun od on nd nn ->
        rpc server (fun b ->
            let result = b.rename od on nd nn in
            mutated od;
            mutated nd;
            result));
    readlink = (fun ino -> rpc server (fun b -> b.readlink ino));
    read = (fun ino ~off ~len -> rpc server (fun b -> b.read ino ~off ~len));
    write =
      (fun ino ~off data ->
        rpc server (fun b ->
            let result = b.write ino ~off data in
            mutated ino;
            result));
    sync = (fun () -> fs.sync ());
    pin_inode = fs.pin_inode;
    unpin_inode = fs.unpin_inode;
    revalidate = (match protocol with Stateless -> Some revalidate | Stateful -> None);
  }
