(** Canonical path-string normalization for path-keyed stores. *)

val normalize : string -> string option
(** Collapse duplicate slashes and drop ["."] components; the result has a
    leading-slash-free canonical form where the root is [""] and children
    are ["a"], ["a/b"], ...  [None] if the path contains [".."] (the caller
    must resolve those) or an empty input. *)
