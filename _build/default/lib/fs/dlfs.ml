open Dcache_types
module Pagecache = Dcache_storage.Pagecache

type t = {
  cache : Pagecache.t;
  block_size : int;
  buckets : int;
  heads_start : int;  (* first block of the bucket-head array *)
  records_start : int;  (* first record block *)
  mutable alloc_block : int;  (* bump allocator cursor *)
  mutable alloc_off : int;
  mutable records : int;
}

type entry = { path : string; kind : File_kind.t; mode : Mode.t; size : int }

let magic = 0x444C4653 (* "DLFS" *)
let header_len = 13
let ( let* ) = Result.bind

let get32 b off =
  Char.code (Bytes.get b off)
  lor (Char.code (Bytes.get b (off + 1)) lsl 8)
  lor (Char.code (Bytes.get b (off + 2)) lsl 16)
  lor (Char.code (Bytes.get b (off + 3)) lsl 24)

let set32 b off v =
  Bytes.set b off (Char.chr (v land 0xff));
  Bytes.set b (off + 1) (Char.chr ((v lsr 8) land 0xff));
  Bytes.set b (off + 2) (Char.chr ((v lsr 16) land 0xff));
  Bytes.set b (off + 3) (Char.chr ((v lsr 24) land 0xff))

let get16 b off = Char.code (Bytes.get b off) lor (Char.code (Bytes.get b (off + 1)) lsl 8)

let set16 b off v =
  Bytes.set b off (Char.chr (v land 0xff));
  Bytes.set b (off + 1) (Char.chr ((v lsr 8) land 0xff))

(* Record addresses pack (block, offset-in-block); 0 terminates chains
   (block 0 is the superblock, so no record lives there). *)
let addr_of ~block ~off = (block lsl 12) lor off
let addr_block addr = addr lsr 12
let addr_off addr = addr land 0xfff

let kind_to_byte = function
  | File_kind.Regular -> 1
  | File_kind.Directory -> 2
  | File_kind.Symlink -> 3
  | File_kind.Chardev -> 4
  | File_kind.Blockdev -> 5
  | File_kind.Fifo -> 6
  | File_kind.Socket -> 7

let kind_of_byte = function
  | 2 -> File_kind.Directory
  | 3 -> File_kind.Symlink
  | 4 -> File_kind.Chardev
  | 5 -> File_kind.Blockdev
  | 6 -> File_kind.Fifo
  | 7 -> File_kind.Socket
  | _ -> File_kind.Regular

let path_hash path =
  let h = ref 0xcbf29ce484222 in
  String.iter (fun c -> h := (!h lxor Char.code c) * 0x100000001b3) path;
  (!h lxor (!h lsr 27)) land max_int

let rec next_pow2 n acc = if acc >= n then acc else next_pow2 n (acc * 2)

let write_super t =
  Pagecache.with_page_mut t.cache 0 (fun b ->
      set32 b 0 magic;
      set32 b 4 t.buckets;
      set32 b 8 t.heads_start;
      set32 b 12 t.records_start;
      set32 b 16 t.alloc_block;
      set32 b 20 t.alloc_off;
      set32 b 24 t.records)

(* --- bucket heads --- *)

let heads_per_block t = t.block_size / 4

let head_location t bucket =
  (t.heads_start + (bucket / heads_per_block t), bucket mod heads_per_block t * 4)

let read_head t bucket =
  let block, off = head_location t bucket in
  Pagecache.with_page t.cache block (fun b -> get32 b off)

let write_head t bucket addr =
  let block, off = head_location t bucket in
  Pagecache.with_page_mut t.cache block (fun b -> set32 b off addr)

(* --- records --- *)

let read_record t addr =
  Pagecache.with_page t.cache (addr_block addr) (fun b ->
      let off = addr_off addr in
      let next = get32 b off in
      let kind = kind_of_byte (Char.code (Bytes.get b (off + 4))) in
      let mode = get16 b (off + 5) in
      let size = get32 b (off + 7) in
      let pathlen = get16 b (off + 11) in
      let path = Bytes.sub_string b (off + header_len) pathlen in
      (next, { path; kind; mode; size }))

let set_record_next t addr next =
  Pagecache.with_page_mut t.cache (addr_block addr) (fun b -> set32 b (addr_off addr) next)

let alloc_record t entry =
  let need = header_len + String.length entry.path in
  if need > t.block_size then invalid_arg "Dlfs: path too long";
  if t.alloc_off + need > t.block_size then begin
    t.alloc_block <- t.alloc_block + 1;
    t.alloc_off <- 0
  end;
  let addr = addr_of ~block:t.alloc_block ~off:t.alloc_off in
  Pagecache.with_page_mut t.cache t.alloc_block (fun b ->
      let off = t.alloc_off in
      set32 b off 0;
      Bytes.set b (off + 4) (Char.chr (kind_to_byte entry.kind));
      set16 b (off + 5) entry.mode;
      set32 b (off + 7) entry.size;
      set16 b (off + 11) (String.length entry.path);
      Bytes.blit_string entry.path 0 b (off + header_len) (String.length entry.path));
  t.alloc_off <- t.alloc_off + need;
  addr

(* --- chain operations --- *)

let bucket_of t path = path_hash path land (t.buckets - 1)

let find_in_chain t path =
  let rec walk prev addr =
    if addr = 0 then None
    else begin
      let next, entry = read_record t addr in
      if String.equal entry.path path then Some (prev, addr, next, entry)
      else walk (Some addr) next
    end
  in
  walk None (read_head t (bucket_of t path))

let insert_record t entry =
  let bucket = bucket_of t entry.path in
  let addr = alloc_record t entry in
  set_record_next t addr (read_head t bucket);
  write_head t bucket addr;
  t.records <- t.records + 1;
  write_super t

let unlink_record t path =
  match find_in_chain t path with
  | None -> Error Errno.ENOENT
  | Some (prev, _addr, next, entry) ->
    (match prev with
    | Some prev_addr -> set_record_next t prev_addr next
    | None -> write_head t (bucket_of t entry.path) next);
    t.records <- t.records - 1;
    write_super t;
    Ok entry

(* --- public api --- *)

let mkfs_and_mount ?(buckets = 4096) cache =
  let block_size = Pagecache.block_size cache in
  let buckets = next_pow2 (max 64 buckets) 64 in
  let head_blocks = (buckets * 4 + block_size - 1) / block_size in
  let t =
    {
      cache;
      block_size;
      buckets;
      heads_start = 1;
      records_start = 1 + head_blocks;
      alloc_block = 1 + head_blocks;
      alloc_off = 0;
      records = 0;
    }
  in
  let zero = Bytes.make block_size '\000' in
  for blk = 0 to t.records_start - 1 do
    Pagecache.write_page cache blk zero
  done;
  write_super t;
  insert_record t { path = ""; kind = File_kind.Directory; mode = Mode.default_dir; size = 0 };
  t

let mount cache =
  Pagecache.with_page cache 0 (fun b ->
      if get32 b 0 <> magic then Error Errno.EINVAL
      else
        Ok
          {
            cache;
            block_size = Pagecache.block_size cache;
            buckets = get32 b 4;
            heads_start = get32 b 8;
            records_start = get32 b 12;
            alloc_block = get32 b 16;
            alloc_off = get32 b 20;
            records = get32 b 24;
          })

let normalize path =
  match Path_norm.normalize path with
  | Some p -> Ok p
  | None -> Error Errno.EINVAL

let lookup t path =
  let* path = normalize path in
  match find_in_chain t path with
  | Some (_, _, _, entry) -> Ok entry
  | None -> Error Errno.ENOENT

let parent_of path =
  match String.rindex_opt path '/' with
  | Some i -> String.sub path 0 i
  | None -> ""

let create t path kind =
  let* path = normalize path in
  if path = "" then Error Errno.EEXIST
  else begin
    match find_in_chain t path with
    | Some _ -> Error Errno.EEXIST
    | None -> (
      match find_in_chain t (parent_of path) with
      | Some (_, _, _, parent) when File_kind.equal parent.kind File_kind.Directory ->
        insert_record t
          { path; kind;
            mode = (if File_kind.equal kind File_kind.Directory then Mode.default_dir
                    else Mode.default_file);
            size = 0 };
        Ok ()
      | Some _ -> Error Errno.ENOTDIR
      | None -> Error Errno.ENOENT)
  end

(* Enumerate every live record (bucket-array scan). *)
let fold_records t f acc =
  let acc = ref acc in
  for bucket = 0 to t.buckets - 1 do
    let rec walk addr =
      if addr <> 0 then begin
        let next, entry = read_record t addr in
        acc := f !acc entry;
        walk next
      end
    in
    walk (read_head t bucket)
  done;
  !acc

let has_children t path =
  let prefix = path ^ "/" in
  fold_records t
    (fun found entry ->
      found
      || String.length entry.path > String.length prefix
         && String.sub entry.path 0 (String.length prefix) = prefix
      || (parent_of entry.path = path && entry.path <> path))
    false

let remove t path =
  let* path = normalize path in
  if path = "" then Error Errno.EPERM
  else begin
    match find_in_chain t path with
    | None -> Error Errno.ENOENT
    | Some (_, _, _, entry) ->
      if File_kind.equal entry.kind File_kind.Directory && has_children t path then
        Error Errno.ENOTEMPTY
      else Result.map (fun _ -> ()) (unlink_record t path)
  end

let rename_dir t old_path new_path =
  let* old_path = normalize old_path in
  let* new_path = normalize new_path in
  if old_path = "" then Error Errno.EPERM
  else begin
    match find_in_chain t old_path with
    | None -> Error Errno.ENOENT
    | Some (_, _, _, entry) when not (File_kind.equal entry.kind File_kind.Directory) ->
      Error Errno.ENOTDIR
    | Some _ ->
      if find_in_chain t new_path <> None then Error Errno.EEXIST
      else begin
        (* The DLFS problem in one loop: every descendant's record key is
           a full path, so all of them are rewritten on disk. *)
        let prefix = old_path ^ "/" in
        let victims =
          fold_records t
            (fun acc e ->
              if
                String.equal e.path old_path
                || String.length e.path >= String.length prefix
                   && String.sub e.path 0 (String.length prefix) = prefix
              then e :: acc
              else acc)
            []
        in
        let rewritten = ref 0 in
        List.iter
          (fun (e : entry) ->
            ignore (unlink_record t e.path);
            let suffix =
              String.sub e.path (String.length old_path)
                (String.length e.path - String.length old_path)
            in
            insert_record t { e with path = new_path ^ suffix };
            incr rewritten)
          victims;
        Ok !rewritten
      end
  end

let readdir t path =
  let* path = normalize path in
  match find_in_chain t path with
  | None -> Error Errno.ENOENT
  | Some (_, _, _, entry) when not (File_kind.equal entry.kind File_kind.Directory) ->
    Error Errno.ENOTDIR
  | Some _ ->
    Ok
      (fold_records t
         (fun acc e -> if e.path <> "" && parent_of e.path = path then
             (match String.rindex_opt e.path '/' with
              | Some i -> String.sub e.path (i + 1) (String.length e.path - i - 1) :: acc
              | None -> e.path :: acc)
           else acc)
         []
      |> List.sort compare)

let record_count t = t.records
