let normalize path =
  if String.length path = 0 then None
  else begin
    let comps =
      String.split_on_char '/' path |> List.filter (fun c -> c <> "" && c <> ".")
    in
    if List.exists (( = ) "..") comps then None else Some (String.concat "/" comps)
  end
