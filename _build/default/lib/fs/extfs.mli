(** Disk-backed file system with an ext-style on-disk format.

    Stands in for the paper's journaled ext4 volume: a superblock, inode and
    block bitmaps, a fixed inode table, and data blocks holding packed
    directory entries and file contents (12 direct pointers plus one
    indirect block).  All accesses go through the {!Dcache_storage.Pagecache},
    so a cold cache pays simulated seek and transfer latency and even a warm
    miss pays the cost of re-parsing the on-disk metadata — exactly the
    dcache-miss costs the paper's §5 optimizations avoid.

    Directory entries are packed records [ino:4 | kind:1 | namelen:1 | name];
    unlinked entries become tombstones ([ino = 0]).  Names are limited to 255
    bytes, files to [12 + block_size/4] blocks. *)

val mkfs : Dcache_storage.Pagecache.t -> unit
(** Format the device.  Destroys existing contents. *)

val mount : Dcache_storage.Pagecache.t -> (Fs_intf.t, Dcache_types.Errno.t) result
(** Mount a formatted device; [Error EINVAL] if the superblock is bad. *)

val mkfs_and_mount : Dcache_storage.Pagecache.t -> Fs_intf.t
