lib/fs/dlfs.mli: Dcache_storage Dcache_types
