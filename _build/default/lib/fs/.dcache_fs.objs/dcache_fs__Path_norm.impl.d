lib/fs/path_norm.ml: List String
