lib/fs/fs_intf.ml: Attr Dcache_types Errno File_kind Mode Result
