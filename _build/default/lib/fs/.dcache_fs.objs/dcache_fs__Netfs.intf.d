lib/fs/netfs.mli: Dcache_util Fs_intf
