lib/fs/path_norm.mli:
