lib/fs/fs_overhead.mli: Dcache_util Fs_intf
