lib/fs/extfs.mli: Dcache_storage Dcache_types Fs_intf
