lib/fs/ramfs.mli: Fs_intf
