lib/fs/netfs.ml: Attr Dcache_types Dcache_util Errno Fs_intf Hashtbl Int64 Option Result
