lib/fs/dlfs.ml: Bytes Char Dcache_storage Dcache_types Errno File_kind List Mode Path_norm Result String
