lib/fs/extfs_fsck.mli: Dcache_storage Dcache_types Format
