lib/fs/pseudofs.ml: Attr Dcache_types Errno File_kind Fs_intf Hashtbl List Mode Result String
