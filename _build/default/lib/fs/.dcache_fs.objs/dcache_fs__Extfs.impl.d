lib/fs/extfs.ml: Array Attr Bytes Char Dcache_storage Dcache_types Errno File_kind Fs_intf Hashtbl List Mode Option String
