lib/fs/extfs_fsck.ml: Array Bytes Char Dcache_storage Dcache_types Errno Format Hashtbl List Option Printf Result String
