lib/fs/fs_overhead.ml: Dcache_util Fs_intf Int64 List
