lib/fs/ramfs.ml: Attr Bytes Dcache_types Errno File_kind Fs_intf Hashtbl List Mode Option Result String
