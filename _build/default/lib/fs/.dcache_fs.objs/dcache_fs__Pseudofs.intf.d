lib/fs/pseudofs.mli: Dcache_types Fs_intf
