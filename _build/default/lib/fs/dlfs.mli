(** A DLFS-style on-disk full-path hash store (related work, paper §7).

    The Direct Lookup File System (Lensing et al., SYSTOR'13) organizes the
    {e disk} as a hash table keyed by path, so any file is found with one
    I/O — the on-disk analogue of the paper's in-memory direct lookup.  The
    paper's §7 argument is that hashing full paths {e in memory but not on
    disk} keeps the speed while avoiding DLFS's usability problems, chiefly
    that renaming a directory becomes a deep recursive re-hash of every
    descendant's on-disk record.

    This module implements the essential structure so the benchmark harness
    can quantify that trade-off on the same simulated disk: an on-disk
    bucket array plus chained path records (attributes inline), giving

    - [lookup]: hash the path, read the bucket head, walk the (short) chain
      — a constant number of block accesses;
    - [rename_dir]: rewrite the record of {e every} descendant (each a
      bucket-chain delete + insert), i.e. O(subtree) block writes.

    Deliberately minimal (no hard links, no data blocks, prefix-scan
    readdir): a comparator, not a fifth general-purpose file system. *)

type t

type entry = {
  path : string;  (** canonical, no trailing slash; [""] is the root *)
  kind : Dcache_types.File_kind.t;
  mode : Dcache_types.Mode.t;
  size : int;
}

val mkfs_and_mount : ?buckets:int -> Dcache_storage.Pagecache.t -> t
(** Format and open a store ([buckets] defaults to 4096, rounded to a power
    of two). *)

val mount : Dcache_storage.Pagecache.t -> (t, Dcache_types.Errno.t) result

val lookup : t -> string -> (entry, Dcache_types.Errno.t) result
(** One hash + one chain walk; [ENOENT] when absent.  The parent chain is
    not consulted (DLFS encodes permissions in closed form; we model only
    the structural behaviour). *)

val create : t -> string -> Dcache_types.File_kind.t -> (unit, Dcache_types.Errno.t) result
(** [EEXIST] if present; [ENOENT] if the parent path is absent. *)

val remove : t -> string -> (unit, Dcache_types.Errno.t) result
(** Removes a file or an {e empty} directory. *)

val rename_dir : t -> string -> string -> (int, Dcache_types.Errno.t) result
(** Rename a directory: every descendant record is deleted and re-inserted
    under the new prefix.  Returns the number of records rewritten. *)

val readdir : t -> string -> (string list, Dcache_types.Errno.t) result
(** Children names of a directory (full-store prefix scan; DLFS keeps
    auxiliary structures for this, we don't pretend to). *)

val record_count : t -> int
