(** Processes: credentials, root/cwd directory references, a mount
    namespace, and an open-file table. *)

open Dcache_vfs.Types

type open_flag =
  | O_RDONLY
  | O_WRONLY
  | O_RDWR
  | O_CREAT
  | O_EXCL
  | O_TRUNC
  | O_APPEND
  | O_NOFOLLOW
  | O_DIRECTORY

(** Directory-stream state for getdents: a snapshot of the listing, the
    cursor, and whether the sequence is still eligible to mark the directory
    complete (no intervening lseek, §5.1). *)
type dir_stream = {
  mutable entries : Dcache_fs.Fs_intf.dirent array option;
  mutable index : int;
  mutable eligible : bool;
  mutable from_cache : bool;
  mutable snapshot_gen : int;
      (** the directory's mutation generation when [entries] was captured *)
}

type fd = {
  fd_num : int;
  fd_ref : path_ref;
  fd_inode : Dcache_vfs.Inode.t;
  fd_readable : bool;
  fd_writable : bool;
  fd_append : bool;
  mutable fd_pos : int;
  mutable fd_dir : dir_stream option;
}

type t = {
  kernel : Kernel.t;
  mutable cred : Dcache_cred.Cred.t;
  mutable root : path_ref;
  mutable cwd : path_ref;
  mutable ns : namespace;
  fds : (int, fd) Hashtbl.t;
  mutable next_fd : int;
}

val spawn : ?cred:Dcache_cred.Cred.t -> Kernel.t -> t
(** A fresh process at the kernel's root with the given credentials
    (default: a root credential shared per kernel). *)

val fork : t -> t
(** Clone cwd/root/namespace/credentials (sharing the credential object and
    hence the PCC, like a shell forking children §4.1).  The file table is
    not inherited. *)

val walk_ctx : t -> Dcache_vfs.Walk.ctx

val set_cred : t -> (Dcache_cred.Cred.Builder.t -> unit) -> unit
(** Apply a credential change through the prepare/commit protocol; an
    update that changes nothing keeps the original credential (and its
    PCC) alive. *)

val install_fd : t -> fd:(int -> fd) -> fd
val find_fd : t -> int -> (fd, Dcache_types.Errno.t) result
val remove_fd : t -> int -> (fd, Dcache_types.Errno.t) result
