module Pseudofs = Dcache_fs.Pseudofs
module Config = Dcache_vfs.Config
module Dcache = Dcache_vfs.Dcache

let render_stats kernel () =
  Kernel.stats_snapshot kernel
  |> List.map (fun (name, value) -> Printf.sprintf "%s %d" name value)
  |> String.concat "\n"
  |> fun body -> body ^ "\n"

let render_summary kernel () =
  let dcache = Kernel.dcache kernel in
  let occupancy = Dcache.bucket_occupancy dcache in
  let total = Array.fold_left ( + ) 0 occupancy in
  let buf = Buffer.create 256 in
  Printf.bprintf buf "dentries %d\n" (Dcache.dentry_count dcache);
  Printf.bprintf buf "invalidation_counter %d\n" (Dcache.invalidation_counter dcache);
  Array.iteri
    (fun len count ->
      Printf.bprintf buf "buckets_len_%s%d %d (%.1f%%)\n"
        (if len = Array.length occupancy - 1 then "ge_" else "")
        len count
        (100.0 *. float_of_int count /. float_of_int (max 1 total)))
    occupancy;
  Buffer.contents buf

let render_config kernel () =
  let c = Kernel.config kernel in
  String.concat "\n"
    [
      Printf.sprintf "fastpath %b" c.Config.fastpath;
      Printf.sprintf "pcc_entries %d" c.Config.pcc_entries;
      Printf.sprintf "pcc_max_entries %d" c.Config.pcc_max_entries;
      Printf.sprintf "dlht_buckets %d" c.Config.dlht_buckets;
      Printf.sprintf "sig_bits %d" c.Config.sig_bits;
      Printf.sprintf "symlink_aliases %b" c.Config.symlink_aliases;
      Printf.sprintf "dotdot %s"
        (match c.Config.dotdot with
        | Config.Dotdot_linux -> "linux"
        | Config.Dotdot_lexical -> "lexical");
      Printf.sprintf "dir_completeness %b" c.Config.dir_completeness;
      Printf.sprintf "dnlc_style_completeness %b" c.Config.dnlc_style_completeness;
      Printf.sprintf "aggressive_negative %b" c.Config.aggressive_negative;
      Printf.sprintf "deep_negative %b" c.Config.deep_negative;
      Printf.sprintf "dcache_buckets %d" c.Config.dcache_buckets;
      Printf.sprintf "max_dentries %d" c.Config.max_dentries;
      "";
    ]

let ok = function Ok v -> v | Error _ -> assert false

let make kernel =
  let p = Pseudofs.create () in
  ok (Pseudofs.add_file p "/version" ~content:(fun () -> "dcache-sim (SOSP 2015 reproduction)\n"));
  ok (Pseudofs.add_dir p "/dcache");
  ok (Pseudofs.add_file p "/dcache/stats" ~content:(render_stats kernel));
  ok (Pseudofs.add_file p "/dcache/summary" ~content:(render_summary kernel));
  ok (Pseudofs.add_file p "/dcache/config" ~content:(render_config kernel));
  Pseudofs.fs p
