(** A /proc-style introspection file system for the simulated kernel.

    Mount it anywhere (conventionally [/proc]) to read live kernel state
    through the ordinary file API — dogfooding the pseudo file system
    substrate the paper's negative-dentry discussion covers (§5.2):

    - [dcache/stats]    — all kernel counters, one [name value] per line
    - [dcache/summary]  — dentry count and primary-table occupancy
    - [dcache/config]   — the active directory-cache configuration
    - [version]         — build banner *)

val make : Kernel.t -> Dcache_fs.Fs_intf.t
