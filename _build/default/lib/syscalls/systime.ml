(** Per-syscall-class time accounting (reproduces paper Fig. 1).

    When enabled, each path-based syscall's wall time is accumulated under
    its class; workloads compare the per-class totals against their total
    run time to compute the fraction spent in path-based system calls. *)

type clazz = Access_stat | Open | Chmod_chown | Unlink | Other_path

let all = [ Access_stat; Open; Chmod_chown; Unlink; Other_path ]

let name = function
  | Access_stat -> "access/stat"
  | Open -> "open"
  | Chmod_chown -> "chmod/chown"
  | Unlink -> "unlink"
  | Other_path -> "other path-based"

let index = function
  | Access_stat -> 0
  | Open -> 1
  | Chmod_chown -> 2
  | Unlink -> 3
  | Other_path -> 4

let enabled = ref false
let acc = Array.make 5 0L
let counts = Array.make 5 0

let reset () =
  Array.fill acc 0 5 0L;
  Array.fill counts 0 5 0

let timed clazz f =
  if not !enabled then f ()
  else begin
    let t0 = Dcache_util.Clock.now_ns () in
    let result = f () in
    let t1 = Dcache_util.Clock.now_ns () in
    let i = index clazz in
    acc.(i) <- Int64.add acc.(i) (Int64.sub t1 t0);
    counts.(i) <- counts.(i) + 1;
    result
  end

let totals () = List.map (fun c -> (c, acc.(index c), counts.(index c))) all
let total_path_ns () = Array.fold_left Int64.add 0L acc
