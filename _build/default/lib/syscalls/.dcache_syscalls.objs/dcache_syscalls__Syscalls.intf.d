lib/syscalls/syscalls.mli: Dcache_fs Dcache_types Dcache_util Proc
