lib/syscalls/kernel.ml: Dcache_core Dcache_cred Dcache_fs Dcache_types Dcache_util Dcache_vfs Hashtbl List
