lib/syscalls/kernel_procfs.mli: Dcache_fs Kernel
