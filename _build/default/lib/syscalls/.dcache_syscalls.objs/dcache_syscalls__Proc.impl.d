lib/syscalls/proc.ml: Dcache_cred Dcache_fs Dcache_types Dcache_vfs Hashtbl Kernel Lazy
