lib/syscalls/kernel_procfs.ml: Array Buffer Dcache_fs Dcache_vfs Kernel List Printf String
