lib/syscalls/proc.mli: Dcache_cred Dcache_fs Dcache_types Dcache_vfs Hashtbl Kernel
