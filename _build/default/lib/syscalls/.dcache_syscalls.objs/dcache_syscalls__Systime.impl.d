lib/syscalls/systime.ml: Array Dcache_util Int64 List
