lib/syscalls/syscalls.ml: Access Array Attr Dcache_core Dcache_cred Dcache_fs Dcache_types Dcache_util Dcache_vfs Errno File_kind Hashtbl Kernel List Mode Option Proc Result String Systime
