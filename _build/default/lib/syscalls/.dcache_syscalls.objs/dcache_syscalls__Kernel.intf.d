lib/syscalls/kernel.mli: Dcache_core Dcache_cred Dcache_fs Dcache_types Dcache_util Dcache_vfs Hashtbl
