open Dcache_vfs.Types
module Cred = Dcache_cred.Cred
module Dcache = Dcache_vfs.Dcache

type open_flag =
  | O_RDONLY
  | O_WRONLY
  | O_RDWR
  | O_CREAT
  | O_EXCL
  | O_TRUNC
  | O_APPEND
  | O_NOFOLLOW
  | O_DIRECTORY

type dir_stream = {
  mutable entries : Dcache_fs.Fs_intf.dirent array option;
  mutable index : int;
  mutable eligible : bool;
  mutable from_cache : bool;
  mutable snapshot_gen : int;
      (** the directory's mutation generation when [entries] was captured *)
}

type fd = {
  fd_num : int;
  fd_ref : path_ref;
  fd_inode : Dcache_vfs.Inode.t;
  fd_readable : bool;
  fd_writable : bool;
  fd_append : bool;
  mutable fd_pos : int;
  mutable fd_dir : dir_stream option;
}

type t = {
  kernel : Kernel.t;
  mutable cred : Cred.t;
  mutable root : path_ref;
  mutable cwd : path_ref;
  mutable ns : namespace;
  fds : (int, fd) Hashtbl.t;
  mutable next_fd : int;
}

(* One default root credential per kernel would need a kernel slot; a global
   per-process-spawn credential would defeat PCC sharing.  Share one default
   credential across all processes of the program instead. *)
let default_cred = lazy (Cred.root ())

let spawn ?cred kernel =
  let cred = match cred with Some c -> c | None -> Lazy.force default_cred in
  let root = Kernel.root kernel in
  Dcache.dget root.dentry;
  Dcache.dget root.dentry;
  (* two pins: one for root, one for cwd *)
  {
    kernel;
    cred;
    root;
    cwd = root;
    ns = Kernel.init_ns kernel;
    fds = Hashtbl.create 16;
    next_fd = 3;
  }

let fork t =
  Dcache.dget t.root.dentry;
  Dcache.dget t.cwd.dentry;
  {
    kernel = t.kernel;
    cred = t.cred;
    root = t.root;
    cwd = t.cwd;
    ns = t.ns;
    fds = Hashtbl.create 16;
    next_fd = 3;
  }

let walk_ctx t =
  {
    Dcache_vfs.Walk.cred = t.cred;
    root = t.root;
    cwd = t.cwd;
    ns = t.ns;
    registry = Kernel.registry t.kernel;
  }

let set_cred t update =
  let builder = Cred.prepare t.cred in
  update builder;
  t.cred <- Cred.Builder.commit builder

let install_fd t ~fd =
  let num = t.next_fd in
  t.next_fd <- num + 1;
  let fd = fd num in
  Hashtbl.add t.fds num fd;
  fd

let find_fd t num =
  match Hashtbl.find_opt t.fds num with
  | Some fd -> Ok fd
  | None -> Error Dcache_types.Errno.EBADF

let remove_fd t num =
  match Hashtbl.find_opt t.fds num with
  | Some fd ->
    Hashtbl.remove t.fds num;
    Ok fd
  | None -> Error Dcache_types.Errno.EBADF
