open Dcache_vfs.Types
module Signature = Dcache_sig.Signature

type t = { buckets : dentry list array; ns : namespace; mutable count : int }
type ns_ext += Dlht_ext of t

let of_namespace ~buckets ns =
  match ns.ns_ext with
  | Some (Dlht_ext t) -> t
  | Some _ | None ->
    let t = { buckets = Array.make buckets []; ns; count = 0 } in
    ns.ns_ext <- Some (Dlht_ext t);
    t

let bucket_of t signature = Signature.bucket signature land (Array.length t.buckets - 1)

let remove_from t d =
  match d.d_sig with
  | None ->
    (* Signature already cleared: fall back to scanning every bucket is far
       too slow, but this situation cannot arise — membership is always
       removed before the signature is cleared (Dcache.detach ordering). *)
    ()
  | Some signature ->
    let idx = bucket_of t signature in
    let before = t.buckets.(idx) in
    let after = List.filter (fun other -> not (other == d)) before in
    if List.length after < List.length before then t.count <- t.count - 1;
    t.buckets.(idx) <- after

let remove d =
  match d.d_dlht_ns with
  | None -> ()
  | Some ns ->
    (match ns.ns_ext with Some (Dlht_ext t) -> remove_from t d | Some _ | None -> ());
    d.d_dlht_ns <- None

let insert t ns d signature =
  remove d;
  let idx = bucket_of t signature in
  t.buckets.(idx) <- d :: t.buckets.(idx);
  t.count <- t.count + 1;
  d.d_dlht_ns <- Some ns

let find t ~key signature =
  let idx = bucket_of t signature in
  let rec scan = function
    | [] -> None
    | d :: rest -> (
      match d.d_sig with
      | Some s when Signature.equal key s signature -> Some d
      | Some _ | None -> scan rest)
  in
  scan t.buckets.(idx)

let population t = t.count
