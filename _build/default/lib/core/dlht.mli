(** Direct Lookup Hash Table (paper §3.1, Fig. 4).

    A second, per-mount-namespace hash table that maps the {e signature of a
    full canonical path} straight to a dentry, so a warm lookup is one probe
    instead of a component-at-a-time walk.  Lazily populated after slowpath
    walks; entries are shot down on renames, mount changes and evictions.

    A dentry lives in at most one DLHT at a time — across namespaces and
    mount aliases — favouring locality and keeping invalidation tractable
    (§4.3).  The table is keyed by the low 16 bits of the signature; chains
    compare the remaining 240 bits only (never the path string). *)

open Dcache_vfs.Types
module Signature = Dcache_sig.Signature

type t

val of_namespace : buckets:int -> namespace -> t
(** The namespace's table, created on first use (stored in [ns_ext]). *)

val insert : t -> namespace -> dentry -> Signature.t -> unit
(** Publish [dentry] under [signature]; removes any previous membership
    (other signature or other namespace) first and records the membership
    on the dentry. *)

val find : t -> key:Signature.key -> Signature.t -> dentry option
(** Probe; compares signatures per the key's configured width. *)

val remove : dentry -> unit
(** Remove [dentry] from whichever DLHT holds it (no-op when none).  Safe to
    call with the dentry's signature already current or about to change. *)

val population : t -> int
