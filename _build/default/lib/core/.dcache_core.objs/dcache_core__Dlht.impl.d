lib/core/dlht.ml: Array Dcache_sig Dcache_vfs List
