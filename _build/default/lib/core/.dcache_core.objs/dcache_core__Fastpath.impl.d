lib/core/fastpath.ml: Dcache_fs Dcache_sig Dcache_types Dcache_util Dcache_vfs Dlht Errno File_kind List Pcc
