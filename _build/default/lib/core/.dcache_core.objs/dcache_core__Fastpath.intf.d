lib/core/fastpath.mli: Dcache_sig Dcache_types Dcache_vfs
