lib/core/pcc.ml: Array Dcache_cred Dcache_vfs Hashtbl
