lib/core/dlht.mli: Dcache_sig Dcache_vfs
