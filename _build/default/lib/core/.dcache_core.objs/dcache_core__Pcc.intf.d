lib/core/pcc.mli: Dcache_cred Dcache_vfs
