open Dcache_types
open Dcache_vfs.Types
module Vfs = Dcache_vfs
module Dcache = Vfs.Dcache
module Walk = Vfs.Walk
module Path = Vfs.Path
module Config = Vfs.Config
module Phases = Vfs.Phases
module Signature = Dcache_sig.Signature
module Counter = Dcache_util.Stats.Counter

type t = {
  dcache : Dcache.t;
  key : Signature.key;
  mutable simulate_pcc_miss : bool;
}

let create dcache =
  let config = Dcache.config dcache in
  let key =
    Signature.create_key ~sig_bits:config.Config.sig_bits ~seed:config.Config.hash_seed ()
  in
  let t = { dcache; key; simulate_pcc_miss = false } in
  (Dcache.hooks dcache).on_shootdown <- Dlht.remove;
  t

let dcache t = t.dcache
let key t = t.key
let set_simulate_pcc_miss t v = t.simulate_pcc_miss <- v
let config t = Dcache.config t.dcache
let counters t = Dcache.counters t.dcache

(* --- canonical hash states (§3.1) ---

   A dentry's hash state is the multilinear state after feeding its full
   canonical path *in the mount tree of the namespace it was reached in*:
   a mounted root inherits the state of its mountpoint.  States are computed
   lazily and cached on the dentry; plain single-field writes make this safe
   to run under the read lock (racing recomputations produce equal values). *)

let rec ensure_hstate t (r : path_ref) =
  let d = r.dentry in
  match d.d_hstate with
  | Some state -> state
  | None ->
    let state =
      if d == r.mnt.mnt_root then begin
        match r.mnt.mnt_mountpoint with
        | None -> Signature.empty_state
        | Some (pmnt, mountpoint) -> ensure_hstate t { mnt = pmnt; dentry = mountpoint }
      end
      else begin
        match d.d_parent with
        | None -> Signature.empty_state
        | Some parent ->
          let parent_state = ensure_hstate t { r with dentry = parent } in
          Signature.feed_string t.key (Signature.feed_char t.key parent_state '/') d.d_name
      end
    in
    d.d_hstate <- Some state;
    if d.d_mnt = None then d.d_mnt <- Some r.mnt;
    state

(* --- the probe (§3.1, §4.2) --- *)

exception Fall_back

let real_of d = match d.d_alias with Some real -> real | None -> d

let pcc_valid t pcc d =
  (not t.simulate_pcc_miss) && Pcc.check pcc d

(* Validate a DLHT hit against the PCC: the literal dentry covers the
   literal prefix's permissions, the real dentry the translated one. *)
let validate t pcc literal real =
  if not (pcc_valid t pcc literal) then raise Fall_back;
  if (not (real == literal)) && not (pcc_valid t pcc real) then raise Fall_back

let dlht_of t ctx =
  Dlht.of_namespace ~buckets:(config t).Config.dlht_buckets ctx.Walk.ns

let pcc_of t ctx =
  let cfg = config t in
  Pcc.of_cred ~max_entries:cfg.Config.pcc_max_entries ctx.Walk.cred ctx.Walk.ns
    ~entries:cfg.Config.pcc_entries

(* One fastpath sub-lookup used by Linux dot-dot semantics (§4.2): resolve
   the prefix walked so far to a (checked) directory. *)
let probe_prefix t dlht pcc state =
  let signature = Signature.finalize t.key state in
  match Dlht.find dlht ~key:t.key signature with
  | None -> raise Fall_back
  | Some literal ->
    let real = real_of literal in
    validate t pcc literal real;
    if not (dentry_is_dir real) then raise Fall_back;
    (match real.d_mnt with Some mnt -> { mnt; dentry = real } | None -> raise Fall_back)

let rec fast_dotdot ctx (cur : path_ref) =
  if cur.dentry == ctx.Walk.root.dentry && cur.mnt == ctx.Walk.root.mnt then cur
  else begin
    match Vfs.Mount.follow_up cur with
    | Some up -> fast_dotdot ctx up
    | None -> (
      match cur.dentry.d_parent with
      | Some parent -> { cur with dentry = parent }
      | None -> cur)
  end

let probe t ctx ~(start : path_ref) ~(flags : Walk.flags) path =
  let cfg = config t in
  let dlht = dlht_of t ctx in
  let pcc = pcc_of t ctx in
  let absolute = Path.is_absolute path in
  let trailing_slash = Path.has_trailing_slash path in
  let components =
    Phases.timed Phases.Scan_hash (fun () ->
        match Path.split path with
        | Ok comps ->
          if cfg.Config.dotdot = Config.Dotdot_lexical then Path.lexical_normalize comps
          else comps
        | Error e -> raise (Errno.Error e))
  in
  let base =
    Phases.timed Phases.Init (fun () ->
        let base = if absolute then ctx.Walk.root else start in
        ensure_hstate t base)
  in
  (* Hash the canonical path, handling dot-dot per the configured
     semantics; lexical mode has already removed them. *)
  let state =
    Phases.timed Phases.Scan_hash (fun () ->
        List.fold_left
          (fun state comp ->
            match comp with
            | Path.Cur -> state
            | Path.Name name ->
              Signature.feed_string t.key (Signature.feed_char t.key state '/') name
            | Path.Up ->
              (* Linux semantics: an extra fastpath lookup of the prefix to
                 preserve permission checks, then resume from the parent's
                 state (§4.2). *)
              Counter.incr (counters t) "fastpath_dotdot_sublookup";
              let prefix = probe_prefix t dlht pcc state in
              let up = fast_dotdot ctx prefix in
              ensure_hstate t up)
          base components)
  in
  let signature = Signature.finalize t.key state in
  let literal =
    Phases.timed Phases.Table_lookup (fun () ->
        match Dlht.find dlht ~key:t.key signature with
        | Some d -> d
        | None -> raise Fall_back)
  in
  Phases.timed Phases.Permission (fun () ->
      let shallow_real = real_of literal in
      validate t pcc literal shallow_real);
  Phases.timed Phases.Finalize (fun () ->
      (* A trailing symlink is followed by one DLHT probe per hop on its
         cached target-path signature (§4.2): replacing any intermediate
         link refreshes that link's own dentry, so the chain can never
         serve a stale endpoint.  Symlink targets resolve against the
         process root, so the shortcut only applies to non-chrooted
         processes. *)
      let at_ns_root =
        ctx.Walk.root.mnt.mnt_mountpoint = None
        && ctx.Walk.root.dentry == ctx.Walk.root.mnt.mnt_root
      in
      let rec chase d limit =
        if limit = 0 then raise Fall_back
        else begin
          let is_symlink =
            match dentry_kind d with
            | Some File_kind.Symlink -> true
            | Some _ | None -> false
          in
          if is_symlink && flags.Walk.follow_last then begin
            match d.d_alias with
            | Some real when not (real == d) ->
              if not (pcc_valid t pcc real) then raise Fall_back;
              chase real (limit - 1)
            | Some _ | None -> (
              if not at_ns_root then raise Fall_back;
              match d.d_target_sig with
              | None -> raise Fall_back
              | Some target_sig -> (
                match Dlht.find dlht ~key:t.key target_sig with
                | None -> raise Fall_back
                | Some next ->
                  validate t pcc next (real_of next);
                  chase next (limit - 1)))
          end
          else begin
            match d.d_alias with
            | Some real ->
              if not (pcc_valid t pcc real) then raise Fall_back;
              real
            | None -> d
          end
        end
      in
      match literal.d_state with
      | Negative errno ->
        Counter.incr (counters t) "fastpath_negative_hit";
        Error errno
      | Positive _ | Partial _ -> (
        let final = chase literal 8 in
        match final.d_state with
        | Negative errno ->
          Counter.incr (counters t) "fastpath_negative_hit";
          Error errno
        | Partial _ -> raise Fall_back
        | Positive _ ->
          if (flags.Walk.must_dir || trailing_slash) && not (dentry_is_dir final) then
            Error Errno.ENOTDIR
          else begin
            match final.d_mnt with
            | None -> raise Fall_back
            | Some mnt ->
              final.d_last_used <- Dcache.new_tick t.dcache;
              Ok { mnt; dentry = final }
          end))

(* --- population (§3.1, §3.2) --- *)

(* Canonical signature of a symlink's target path: absolute targets resolve
   from the namespace root, relative targets from the link's own directory.
   Targets containing "." or ".." are left to the slowpath. *)
let target_signature t (r : path_ref) d inode =
  (* Only links whose body a previous (followed) resolution already read:
     population must never trigger file system calls of its own. *)
  match Vfs.Inode.cached_symlink_target inode with
  | None -> None
  | Some target -> (
    match Path.split target with
    | Error _ -> None
    | Ok comps ->
      let plain =
        List.for_all (function Path.Name _ -> true | Path.Cur | Path.Up -> false) comps
      in
      if not plain then None
      else begin
        let base =
          if Path.is_absolute target then ensure_hstate t (Vfs.Mount.root r.mnt.mnt_ns)
          else begin
            match d.d_parent with
            | Some parent -> ensure_hstate t { r with dentry = parent }
            | None -> Signature.empty_state
          end
        in
        let state =
          List.fold_left
            (fun st comp ->
              match comp with
              | Path.Name name ->
                Signature.feed_string t.key (Signature.feed_char t.key st '/') name
              | Path.Cur | Path.Up -> st)
            base comps
        in
        Some (Signature.finalize t.key state)
      end)

let populate t ctx ~visited ~absolute ~start =
  match visited with
  | [] -> ()
  | _ :: _ ->
    let ns = ctx.Walk.ns in
    let dlht = dlht_of t ctx in
    let pcc = pcc_of t ctx in
    (* Directory-reference rule (§3.2): results of a relative walk may rely
       on an open directory reference whose ancestors are no longer
       searchable; only cache prefix checks when the starting directory's
       own prefix check is still known-good. *)
    let allow_pcc =
      absolute || pcc_valid t pcc (real_of start.dentry)
    in
    List.iter
      (fun (r : path_ref) ->
        let d = r.dentry in
        (* Dentries of a revalidating (stateless network) file system can
           never be trusted without a server round trip, so they are not
           published for direct lookup at all (§4.3). *)
        if d.d_sb.sb_fs.Dcache_fs.Fs_intf.revalidate <> None then ()
        else begin
        (* Mount aliases (§4.3): a dentry is indexed under one path at a
           time; reaching it under a different mount re-signatures it and
           bumps its version in case the alias prefixes differ. *)
        (match d.d_mnt with
        | Some m when not (m == r.mnt) ->
          Dlht.remove d;
          d.d_hstate <- None;
          d.d_sig <- None;
          d.d_mnt <- Some r.mnt;
          Dcache.bump_seq d;
          Counter.incr (counters t) "mount_alias_resignature"
        | Some _ | None -> ());
        let state = ensure_hstate t r in
        let signature =
          match d.d_sig with
          | Some s -> s
          | None ->
            let s = Signature.finalize t.key state in
            d.d_sig <- Some s;
            s
        in
        d.d_mnt <- Some r.mnt;
        (* The dentries an alias redirects to must carry a mount and a PCC
           entry too, or the probe could never finish on them. *)
        let publish_target target =
          if target.d_mnt = None then target.d_mnt <- Some r.mnt;
          if allow_pcc && not t.simulate_pcc_miss then Pcc.insert pcc target
        in
        (match d.d_alias with Some real -> publish_target real | None -> ());
        (* Symlink dentries carry the signature of their target path so the
           probe can follow a trailing link (§4.2). *)
        (match (d.d_target_sig, d.d_state) with
        | None, Positive inode
          when File_kind.equal (Vfs.Inode.kind inode) File_kind.Symlink ->
          d.d_target_sig <- target_signature t r d inode
        | _ -> ());
        if not (d.d_dlht_ns == Some ns && d.d_sig = Some signature) then
          Dlht.insert dlht ns d signature;
        if allow_pcc && not t.simulate_pcc_miss then Pcc.insert pcc d
        end)
      visited;
    Counter.add (counters t) "fastpath_populated" (List.length visited)

(* --- the public lookup --- *)

(* [within] runs on the resolved location while the lock protecting it is
   still held (read side on a fastpath hit, write side on fallback), so
   callers can pin dentries or check permissions without a race against
   eviction. *)
let lookup_with t ctx ?start ?(flags = Walk.default_flags) path ~within =
  let cfg = config t in
  let start = match start with Some s -> s | None -> ctx.Walk.cwd in
  (* *at()-style lookups resolve relative to [start]; the slowpath reads the
     origin from the context's cwd. *)
  let ctx = { ctx with Walk.cwd = start } in
  let absolute = Path.is_absolute path in
  let finish (result : Walk.result_) =
    match result.Walk.outcome with
    | Ok r -> within r
    | Error e -> Error e
  in
  if not cfg.Config.fastpath then begin
    (* Baseline kernel: component-at-a-time only. *)
    match Dcache.with_read t.dcache (fun () ->
        match Walk.resolve_in_mode Walk.Rcu t.dcache ctx ~flags path with
        | result -> finish result)
    with
    | result -> result
    | exception Walk.Need_refwalk ->
      Counter.incr (counters t) "walk_refwalk_fallback";
      Dcache.with_write t.dcache (fun () ->
          finish (Walk.resolve_in_mode Walk.Ref t.dcache ctx ~flags path))
  end
  else begin
    let attempt =
      Dcache.with_read t.dcache (fun () ->
          match probe t ctx ~start ~flags path with
          | Ok r ->
            Counter.incr (counters t) "fastpath_hit";
            Some (within r)
          | Error e ->
            Counter.incr (counters t) "fastpath_hit";
            Some (Error e)
          | exception Fall_back -> None
          | exception Errno.Error e -> Some (Error e))
    in
    match attempt with
    | Some outcome -> outcome
    | None ->
      Counter.incr (counters t) "fastpath_fallback";
      Dcache.with_write t.dcache (fun () ->
          let invalidation_before = Dcache.invalidation_counter t.dcache in
          let result =
            Walk.resolve_in_mode Walk.Ref t.dcache ctx
              ~flags:{ flags with Walk.collect = true }
              path
          in
          (* §3.2: results may only repopulate the DLHT/PCC if no shootdown
             ran concurrently.  Under the coarse write lock this never
             fires; the check documents (and preserves) the protocol. *)
          if Dcache.invalidation_counter t.dcache = invalidation_before then
            populate t ctx ~visited:result.Walk.visited ~absolute ~start;
          finish result)
  end

let lookup t ctx ?start ?flags path =
  let absolute = Path.is_absolute path in
  match lookup_with t ctx ?start ?flags path ~within:(fun r -> Ok r) with
  | Ok r -> { Walk.outcome = Ok r; visited = []; absolute }
  | Error e -> { Walk.outcome = Error e; visited = []; absolute }
