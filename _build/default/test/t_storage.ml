(* Tests for the simulated block device and page cache. *)

module Blockdev = Dcache_storage.Blockdev
module Pagecache = Dcache_storage.Pagecache
module Vclock = Dcache_util.Vclock

let make_dev ?(blocks = 256) () =
  let clock = Vclock.create () in
  let config = { Blockdev.default_config with Blockdev.block_count = blocks } in
  (Blockdev.create ~config clock, clock)

let block_of_string dev s =
  let b = Bytes.make (Blockdev.block_size dev) '\000' in
  Bytes.blit_string s 0 b 0 (String.length s);
  b

let test_blockdev_roundtrip () =
  let dev, _ = make_dev () in
  Blockdev.write_block dev 3 (block_of_string dev "hello");
  let data = Blockdev.read_block dev 3 in
  Alcotest.(check string) "roundtrip" "hello" (Bytes.sub_string data 0 5);
  let zero = Blockdev.read_block dev 10 in
  Alcotest.(check char) "unwritten zero" '\000' (Bytes.get zero 0)

let test_blockdev_bounds () =
  let dev, _ = make_dev ~blocks:8 () in
  Alcotest.check_raises "oob read" (Invalid_argument "Blockdev: block 8 out of range")
    (fun () -> ignore (Blockdev.read_block dev 8));
  Alcotest.check_raises "negative" (Invalid_argument "Blockdev: block -1 out of range")
    (fun () -> ignore (Blockdev.read_block dev (-1)))

let test_blockdev_wrong_size () =
  let dev, _ = make_dev () in
  Alcotest.check_raises "size" (Invalid_argument "Blockdev.write_block: wrong block size")
    (fun () -> Blockdev.write_block dev 0 (Bytes.create 7))

let test_blockdev_latency_model () =
  let dev, clock = make_dev () in
  ignore (Blockdev.read_block dev 100);
  let random_cost = Vclock.elapsed_ns clock in
  Vclock.reset clock;
  ignore (Blockdev.read_block dev 101);
  let sequential_cost = Vclock.elapsed_ns clock in
  Alcotest.(check bool) "seek >> sequential" true (random_cost > Int64.mul 10L sequential_cost);
  Alcotest.(check int) "reads counted" 2 (Blockdev.reads dev)

let test_pagecache_hit_miss () =
  let dev, clock = make_dev () in
  let cache = Pagecache.create ~capacity_pages:16 dev in
  ignore (Pagecache.read_page cache 5);
  let after_miss = Vclock.elapsed_ns clock in
  ignore (Pagecache.read_page cache 5);
  Alcotest.(check int64) "hit is free of device time" after_miss (Vclock.elapsed_ns clock);
  Alcotest.(check int) "one hit" 1 (Pagecache.hits cache);
  Alcotest.(check int) "one miss" 1 (Pagecache.misses cache)

let test_pagecache_writeback_on_evict () =
  let dev, _ = make_dev () in
  let cache = Pagecache.create ~capacity_pages:2 dev in
  Pagecache.write_page cache 0 (block_of_string dev "zero");
  Pagecache.write_page cache 1 (block_of_string dev "one");
  Alcotest.(check int) "nothing written yet" 0 (Blockdev.writes dev);
  (* Touch a third page: the LRU dirty page must be written back. *)
  ignore (Pagecache.read_page cache 2);
  Alcotest.(check bool) "writeback happened" true (Blockdev.writes dev >= 1);
  Pagecache.flush cache;
  let direct = Blockdev.read_block dev 1 in
  Alcotest.(check string) "contents on device" "one" (Bytes.sub_string direct 0 3)

let test_pagecache_drop_caches () =
  let dev, clock = make_dev () in
  let cache = Pagecache.create dev in
  Pagecache.write_page cache 7 (block_of_string dev "persist");
  Pagecache.drop_caches cache;
  Alcotest.(check int) "empty" 0 (Pagecache.cached_pages cache);
  Vclock.reset clock;
  let data = Pagecache.read_page cache 7 in
  Alcotest.(check string) "survived" "persist" (Bytes.sub_string data 0 7);
  Alcotest.(check bool) "paid device latency" true (Vclock.elapsed_ns clock > 0L)

let test_pagecache_with_page_mut () =
  let dev, _ = make_dev () in
  let cache = Pagecache.create dev in
  Pagecache.with_page_mut cache 3 (fun b -> Bytes.blit_string "mut" 0 b 0 3);
  Alcotest.(check string) "visible" "mut"
    (Bytes.sub_string (Pagecache.read_page cache 3) 0 3);
  Pagecache.flush cache;
  Alcotest.(check string) "flushed" "mut"
    (Bytes.sub_string (Blockdev.read_block dev 3) 0 3)

let pagecache_model =
  QCheck.Test.make ~name:"pagecache+device == byte-array model" ~count:100
    QCheck.(list (triple bool (int_bound 31) (int_bound 255)))
    (fun ops ->
      let dev, _ = make_dev ~blocks:32 () in
      let cache = Pagecache.create ~capacity_pages:4 dev in
      let bs = Blockdev.block_size dev in
      let model = Array.make 32 0 in
      List.iter
        (fun (is_write, block, byte) ->
          if is_write then begin
            let b = Bytes.make bs (Char.chr byte) in
            Pagecache.write_page cache block b;
            model.(block) <- byte
          end
          else begin
            let data = Pagecache.read_page cache block in
            if Char.code (Bytes.get data 0) <> model.(block) then
              QCheck.Test.fail_reportf "block %d: got %d want %d" block
                (Char.code (Bytes.get data 0))
                model.(block)
          end)
        ops;
      (* After a flush, the raw device agrees everywhere. *)
      Pagecache.flush cache;
      Array.iteri
        (fun block byte ->
          let data = Blockdev.read_block dev block in
          if Char.code (Bytes.get data 0) <> byte then
            QCheck.Test.fail_reportf "flush block %d mismatch" block)
        model;
      true)

let suite =
  [
    Alcotest.test_case "blockdev roundtrip" `Quick test_blockdev_roundtrip;
    Alcotest.test_case "blockdev bounds" `Quick test_blockdev_bounds;
    Alcotest.test_case "blockdev wrong size" `Quick test_blockdev_wrong_size;
    Alcotest.test_case "blockdev latency model" `Quick test_blockdev_latency_model;
    Alcotest.test_case "pagecache hit/miss" `Quick test_pagecache_hit_miss;
    Alcotest.test_case "pagecache writeback on evict" `Quick test_pagecache_writeback_on_evict;
    Alcotest.test_case "pagecache drop_caches" `Quick test_pagecache_drop_caches;
    Alcotest.test_case "pagecache with_page_mut" `Quick test_pagecache_with_page_mut;
    QCheck_alcotest.to_alcotest pagecache_model;
  ]
