(* Network file system semantics (paper §4.3): stateless clients revalidate
   every cached component (nullifying direct lookup); stateful clients trust
   the cache and rely on callbacks. *)

open Dcache_types
open Kit
module Netfs = Dcache_fs.Netfs
module Vclock = Dcache_util.Vclock

let make ~protocol config =
  let clock = Vclock.create () in
  let backing = Dcache_fs.Ramfs.create () in
  let server = Netfs.server ~rpc_latency_ns:1000 ~clock backing in
  let kernel = Kernel.create ~config ~root_fs:(Netfs.client ~protocol server) () in
  (kernel, Proc.spawn kernel, server, backing, clock)

let populate p =
  get "tree" (S.mkdir_p p "/export/data");
  get "file" (S.write_file p "/export/data/file" "remote contents")

let test_basic_ops protocol config () =
  let _, p, server, _, _ = make ~protocol config in
  populate p;
  Alcotest.(check string) "read over the wire" "remote contents"
    (get "read" (S.read_file p "/export/data/file"));
  get "rename" (S.rename p "/export/data/file" "/export/data/moved");
  expect_err Errno.ENOENT "old gone" (S.stat p "/export/data/file");
  ignore (get "new" (S.stat p "/export/data/moved"));
  Alcotest.(check bool) "rpcs happened" true (Netfs.rpc_count server > 0)

let test_stateless_revalidates_every_hit () =
  let kernel, p, server, _, _ = make ~protocol:Netfs.Stateless Config.optimized in
  populate p;
  ignore (get "warm" (S.stat p "/export/data/file"));
  Netfs.reset_rpc_count server;
  Kernel.reset_stats kernel;
  for _ = 1 to 10 do
    ignore (get "hot" (S.stat p "/export/data/file"))
  done;
  (* Three cached components, each revalidated per lookup: >= 30 RPCs. *)
  Alcotest.(check bool) "per-component RPCs" true (Netfs.rpc_count server >= 30);
  (* And the fastpath never engages (§4.3). *)
  Alcotest.(check int) "no direct lookups" 0 (counter kernel "fastpath_hit")

let test_stateful_trusts_cache () =
  let kernel, p, server, _, _ = make ~protocol:Netfs.Stateful Config.optimized in
  populate p;
  ignore (get "warm" (S.stat p "/export/data/file"));
  Netfs.reset_rpc_count server;
  Kernel.reset_stats kernel;
  for _ = 1 to 10 do
    ignore (get "hot" (S.stat p "/export/data/file"))
  done;
  Alcotest.(check int) "zero RPCs when warm" 0 (Netfs.rpc_count server);
  Alcotest.(check int) "all on the fastpath" 10 (counter kernel "fastpath_hit")

let test_stateless_sees_external_changes () =
  let _, p, server, backing, _ = make ~protocol:Netfs.Stateless Config.baseline in
  populate p;
  Alcotest.(check string) "before" "remote contents"
    (get "read" (S.read_file p "/export/data/file"));
  (* Another client rewrites the file directly on the server. *)
  let attr = get "server lookup" (backing.Dcache_fs.Fs_intf.getattr 1) in
  ignore attr;
  let dir =
    get "lookup export" (backing.Dcache_fs.Fs_intf.lookup backing.Dcache_fs.Fs_intf.root_ino "export")
  in
  let data = get "lookup data" (backing.Dcache_fs.Fs_intf.lookup dir.Attr.ino "data") in
  get "server unlink" (backing.Dcache_fs.Fs_intf.unlink data.Attr.ino "file");
  ignore (get "server create"
      (backing.Dcache_fs.Fs_intf.create data.Attr.ino "file" File_kind.Regular 0o644 ~uid:0 ~gid:0));
  Netfs.bump_generation server data.Attr.ino;
  (* Revalidation notices the stale dentry and refetches. *)
  let fresh = get "after" (S.stat p "/export/data/file") in
  Alcotest.(check int) "sees the replacement (new size)" 0 fresh.Attr.size

let test_stateful_callback_invalidates () =
  let _, p, server, backing, _ = make ~protocol:Netfs.Stateful Config.optimized in
  populate p;
  ignore (get "warm" (S.stat p "/export/data/file"));
  (* Wire the callback channel to the kernel's invalidation.  A directory
     callback must drop the directory's cached subtree (including its
     completeness): its contents changed on the server. *)
  (Netfs.callbacks server).Netfs.on_break <-
    (fun _ino -> get "cb" (S.invalidate_path p "/export/data"));
  (* External replacement + callback. *)
  let dir =
    get "lookup export" (backing.Dcache_fs.Fs_intf.lookup backing.Dcache_fs.Fs_intf.root_ino "export")
  in
  let data = get "lookup data" (backing.Dcache_fs.Fs_intf.lookup dir.Attr.ino "data") in
  get "server unlink" (backing.Dcache_fs.Fs_intf.unlink data.Attr.ino "file");
  ignore (get "server create"
      (backing.Dcache_fs.Fs_intf.create data.Attr.ino "bigger" File_kind.Regular 0o644 ~uid:0 ~gid:0));
  Netfs.break_callback server data.Attr.ino;
  (* The stale path is gone; the new name is visible. *)
  expect_err Errno.ENOENT "old invalidated" (S.stat p "/export/data/file");
  ignore (get "new visible" (S.stat p "/export/data/bigger"))

let test_rpc_latency_charged () =
  let _, p, server, _, clock = make ~protocol:Netfs.Stateless Config.baseline in
  populate p;
  let v0 = Vclock.elapsed_ns clock in
  ignore (get "stat" (S.stat p "/export/data/file"));
  let delta = Int64.sub (Vclock.elapsed_ns clock) v0 in
  ignore server;
  Alcotest.(check bool) "virtual RPC time accrued" true (delta >= 1000L)

let suite =
  [
    Alcotest.test_case "stateless basic ops [baseline]" `Quick
      (test_basic_ops Netfs.Stateless Config.baseline);
    Alcotest.test_case "stateless basic ops [optimized]" `Quick
      (test_basic_ops Netfs.Stateless Config.optimized);
    Alcotest.test_case "stateful basic ops [optimized]" `Quick
      (test_basic_ops Netfs.Stateful Config.optimized);
    Alcotest.test_case "stateless revalidates every hit" `Quick
      test_stateless_revalidates_every_hit;
    Alcotest.test_case "stateful trusts the cache" `Quick test_stateful_trusts_cache;
    Alcotest.test_case "stateless sees external changes" `Quick
      test_stateless_sees_external_changes;
    Alcotest.test_case "stateful callback invalidates" `Quick
      test_stateful_callback_invalidates;
    Alcotest.test_case "rpc latency charged" `Quick test_rpc_latency_charged;
  ]
