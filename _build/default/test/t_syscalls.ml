(* Syscall-surface semantics: open flags, fd IO, directory streams,
   mkstemp, process state. *)

open Dcache_types
open Kit

let suite =
  tc_both "open O_CREAT/O_EXCL" (fun config ->
      let _, p = ram_kernel ~config () in
      let fd = get "creat" (S.openf p "/new" [ Proc.O_CREAT; Proc.O_WRONLY ]) in
      get "close" (S.close p fd);
      expect_err Errno.EEXIST "excl" (S.openf p "/new" [ Proc.O_CREAT; Proc.O_EXCL ]);
      let fd2 = get "reopen creat" (S.openf p "/new" [ Proc.O_CREAT; Proc.O_RDONLY ]) in
      get "close2" (S.close p fd2))
  @ tc_both "open O_TRUNC clears content" (fun config ->
        let _, p = ram_kernel ~config () in
        get "w" (S.write_file p "/f" "0123456789");
        let fd = get "trunc" (S.openf p "/f" [ Proc.O_WRONLY; Proc.O_TRUNC ]) in
        get "close" (S.close p fd);
        Alcotest.(check int) "empty" 0 (get "stat" (S.stat p "/f")).Attr.size)
  @ tc_both "O_APPEND writes at end" (fun config ->
        let _, p = ram_kernel ~config () in
        get "w" (S.write_file p "/log" "start-");
        let fd = get "open" (S.openf p "/log" [ Proc.O_WRONLY; Proc.O_APPEND ]) in
        ignore (get "append" (S.write p fd "more"));
        get "close" (S.close p fd);
        Alcotest.(check string) "appended" "start-more" (get "read" (S.read_file p "/log")))
  @ tc_both "read/write positions" (fun config ->
        let _, p = ram_kernel ~config () in
        let fd = get "open" (S.openf p "/f" [ Proc.O_CREAT; Proc.O_RDWR ]) in
        ignore (get "w1" (S.write p fd "abc"));
        ignore (get "w2" (S.write p fd "def"));
        ignore (get "seek" (S.lseek p fd 0));
        Alcotest.(check string) "sequential reads" "abcd" (get "r" (S.read p fd 4));
        Alcotest.(check string) "continues" "ef" (get "r2" (S.read p fd 10));
        Alcotest.(check string) "eof" "" (get "r3" (S.read p fd 10));
        Alcotest.(check string) "pread ignores pos" "cde" (get "pr" (S.pread p fd ~off:2 ~len:3));
        ignore (get "pw" (S.pwrite p fd ~off:1 "XY"));
        Alcotest.(check string) "pwrite applied" "aXYdef" (get "rf" (S.read_file p "/f"));
        get "close" (S.close p fd))
  @ tc_both "O_DIRECTORY and EISDIR" (fun config ->
        let _, p = ram_kernel ~config () in
        get "d" (S.mkdir_p p "/d");
        get "f" (S.write_file p "/f" "x");
        expect_err Errno.ENOTDIR "file as dir" (S.openf p "/f" [ Proc.O_RDONLY; Proc.O_DIRECTORY ]);
        expect_err Errno.EISDIR "write dir" (S.openf p "/d" [ Proc.O_WRONLY ]);
        let fd = get "ok" (S.openf p "/d" [ Proc.O_RDONLY; Proc.O_DIRECTORY ]) in
        get "close" (S.close p fd))
  @ tc_both "O_NOFOLLOW on trailing symlink" (fun config ->
        let _, p = ram_kernel ~config () in
        get "f" (S.write_file p "/real" "x");
        get "l" (S.symlink p ~target:"/real" "/lnk");
        expect_err Errno.ELOOP "nofollow" (S.openf p "/lnk" [ Proc.O_RDONLY; Proc.O_NOFOLLOW ]);
        let fd = get "follow" (S.openf p "/lnk" [ Proc.O_RDONLY ]) in
        get "close" (S.close p fd))
  @ tc_both "bad fd is EBADF" (fun config ->
        let _, p = ram_kernel ~config () in
        expect_err Errno.EBADF "read" (S.read p 77 1);
        expect_err Errno.EBADF "close" (S.close p 77);
        get "f" (S.write_file p "/f" "x");
        let fd = get "open ro" (S.openf p "/f" [ Proc.O_RDONLY ]) in
        expect_err Errno.EBADF "write to ro fd" (S.write p fd "nope");
        get "close" (S.close p fd);
        expect_err Errno.EBADF "double close" (S.close p fd))
  @ tc_both "getdents chunks and rewind" (fun config ->
        let _, p = ram_kernel ~config () in
        get "d" (S.mkdir_p p "/d");
        for i = 0 to 9 do
          get "f" (S.write_file p (Printf.sprintf "/d/f%d" i) "x")
        done;
        let fd = get "open" (S.openf p "/d" [ Proc.O_RDONLY; Proc.O_DIRECTORY ]) in
        let c1 = get "chunk1" (S.getdents p fd 4) in
        let c2 = get "chunk2" (S.getdents p fd 4) in
        let c3 = get "chunk3" (S.getdents p fd 4) in
        let c4 = get "chunk4" (S.getdents p fd 4) in
        Alcotest.(check int) "4+4+2+0" 10 (List.length c1 + List.length c2 + List.length c3);
        Alcotest.(check int) "eof" 0 (List.length c4);
        ignore (get "rewind" (S.lseek p fd 0));
        let again = get "again" (S.getdents p fd 100) in
        Alcotest.(check int) "full after rewind" 10 (List.length again);
        get "close" (S.close p fd))
  @ tc_both "mkstemp creates unique files" (fun config ->
        let _, p = ram_kernel ~config () in
        get "tmp" (S.mkdir_p p "/tmp");
        let prng = Dcache_util.Prng.create 1 in
        let seen = Hashtbl.create 16 in
        for _ = 1 to 50 do
          let fd, path = get "mkstemp" (S.mkstemp ~prng p "/tmp") in
          Alcotest.(check bool) "fresh" false (Hashtbl.mem seen path);
          Hashtbl.replace seen path ();
          get "close" (S.close p fd)
        done)
  @ tc_both "access checks the mask" (fun config ->
        let kernel, root_p = ram_kernel ~config () in
        get "f" (S.write_file root_p "/shared" "x");
        get "mode" (S.chmod root_p "/shared" 0o644);
        let alice_p = Proc.spawn ~cred:(alice ()) kernel in
        get "read ok" (S.access alice_p "/shared" Access.may_read);
        expect_err Errno.EACCES "write denied" (S.access alice_p "/shared" Access.may_write))
  @ tc_both "chown requires root" (fun config ->
        let kernel, root_p = ram_kernel ~config () in
        get "f" (S.write_file root_p "/f" "x");
        get "give to alice" (S.chown root_p "/f" ~uid:1000 ~gid:1000);
        let alice_p = Proc.spawn ~cred:(alice ()) kernel in
        expect_err Errno.EPERM "alice chown" (S.chown alice_p "/f" ~uid:1001 ~gid:1001);
        get "alice chmod own file" (S.chmod alice_p "/f" 0o600);
        let bob_p = Proc.spawn ~cred:(bob ()) kernel in
        expect_err Errno.EPERM "bob chmod" (S.chmod bob_p "/f" 0o777))
  @ tc_both "truncate syscall" (fun config ->
        let _, p = ram_kernel ~config () in
        get "f" (S.write_file p "/f" "0123456789");
        get "truncate" (S.truncate p "/f" 3);
        Alcotest.(check string) "shrunk" "012" (get "read" (S.read_file p "/f"));
        expect_err Errno.EINVAL "negative" (S.truncate p "/f" (-1));
        get "d" (S.mkdir_p p "/d");
        expect_err Errno.EINVAL "dir" (S.truncate p "/d" 0))
  @ tc_both "chdir/fchdir" (fun config ->
        let _, p = ram_kernel ~config () in
        get "t" (S.mkdir_p p "/w/x");
        get "f" (S.write_file p "/w/x/f" "rel");
        get "chdir" (S.chdir p "/w");
        Alcotest.(check string) "relative read" "rel" (get "read" (S.read_file p "x/f"));
        let fd = get "open x" (S.openf p "x" [ Proc.O_RDONLY; Proc.O_DIRECTORY ]) in
        get "fchdir" (S.fchdir p fd);
        Alcotest.(check string) "deeper" "rel" (get "read" (S.read_file p "f"));
        get "close" (S.close p fd);
        expect_err Errno.ENOTDIR "chdir to file" (S.chdir p "/w/x/f"))
  @ tc_both "openat/fstatat relative to dirfd" (fun config ->
        let _, p = ram_kernel ~config () in
        get "t" (S.mkdir_p p "/base/sub");
        get "f" (S.write_file p "/base/sub/leaf" "L");
        let dirfd = get "open base" (S.openf p "/base" [ Proc.O_RDONLY; Proc.O_DIRECTORY ]) in
        let a = get "fstatat" (S.fstatat p dirfd "sub/leaf" ()) in
        Alcotest.(check int) "size" 1 a.Attr.size;
        let fd = get "openat" (S.openat p dirfd "sub/leaf" [ Proc.O_RDONLY ]) in
        Alcotest.(check string) "read" "L" (get "pread" (S.pread p fd ~off:0 ~len:5));
        get "close" (S.close p fd);
        (* absolute path ignores dirfd *)
        let abs = get "fstatat abs" (S.fstatat p dirfd "/base/sub/leaf" ()) in
        Alcotest.(check int) "same ino" a.Attr.ino abs.Attr.ino;
        get "close dir" (S.close p dirfd))
  @ tc_both "unlink/rmdir errno matrix" (fun config ->
        let _, p = ram_kernel ~config () in
        get "d" (S.mkdir_p p "/d/sub");
        get "f" (S.write_file p "/d/f" "x");
        expect_err Errno.EISDIR "unlink dir" (S.unlink p "/d/sub");
        expect_err Errno.ENOTDIR "rmdir file" (S.rmdir p "/d/f");
        expect_err Errno.ENOTEMPTY "rmdir non-empty" (S.rmdir p "/d");
        expect_err Errno.ENOENT "unlink missing" (S.unlink p "/d/ghost");
        get "ok" (S.rmdir p "/d/sub"))
  @ tc_both "rename across mounts is EXDEV" (fun config ->
        let _, p = ram_kernel ~config () in
        get "m" (S.mkdir_p p "/m");
        get "f" (S.write_file p "/f" "x");
        let other = Dcache_fs.Ramfs.create () in
        get "mount" (S.mount_fs p other "/m");
        expect_err Errno.EXDEV "cross-fs" (S.rename p "/f" "/m/f"))
  @ tc_both "rename/unlink of a mountpoint is EBUSY" (fun config ->
        let _, p = ram_kernel ~config () in
        get "m" (S.mkdir_p p "/m");
        let other = Dcache_fs.Ramfs.create () in
        get "mount" (S.mount_fs p other "/m");
        expect_err Errno.EBUSY "rename mountpoint" (S.rename p "/m" "/m2");
        expect_err Errno.EBUSY "rmdir mountpoint" (S.rmdir p "/m"))
  @ tc_both "non-root cannot mount or chroot" (fun config ->
        let kernel, root_p = ram_kernel ~config () in
        get "d" (S.mkdir_p root_p "/d");
        let alice_p = Proc.spawn ~cred:(alice ()) kernel in
        expect_err Errno.EPERM "mount" (S.mount_fs alice_p (Dcache_fs.Ramfs.create ()) "/d");
        expect_err Errno.EPERM "chroot" (S.chroot alice_p "/d");
        expect_err Errno.EPERM "umount" (S.umount alice_p "/d"))
  @ tc_both "write denied without permission" (fun config ->
        let kernel, root_p = ram_kernel ~config () in
        get "f" (S.write_file root_p "/rootfile" "secret");
        get "mode" (S.chmod root_p "/rootfile" 0o600);
        let alice_p = Proc.spawn ~cred:(alice ()) kernel in
        expect_err Errno.EACCES "read" (S.openf alice_p "/rootfile" [ Proc.O_RDONLY ]);
        expect_err Errno.EACCES "write" (S.openf alice_p "/rootfile" [ Proc.O_WRONLY ]);
        get "open up" (S.chmod root_p "/rootfile" 0o644);
        let fd = get "now read" (S.openf alice_p "/rootfile" [ Proc.O_RDONLY ]) in
        get "close" (S.close alice_p fd))
  @ tc_both "create denied in unwritable directory" (fun config ->
        let kernel, root_p = ram_kernel ~config () in
        get "d" (S.mkdir_p root_p "/guarded");
        get "mode" (S.chmod root_p "/guarded" 0o755);
        let alice_p = Proc.spawn ~cred:(alice ()) kernel in
        expect_err Errno.EACCES "create" (S.write_file alice_p "/guarded/f" "x");
        expect_err Errno.EACCES "mkdir" (S.mkdir alice_p "/guarded/d");
        expect_err Errno.EACCES "symlink" (S.symlink alice_p ~target:"x" "/guarded/l"))
  @ tc_both "set_label drives the MAC module" (fun config ->
        let rules =
          [ { Dcache_cred.Maclabel.domain = "web_t"; label = "web_content";
              allow = Access.may_read } ]
        in
        let lsms = [ Dcache_cred.Maclabel.hooks ~rules ] in
        let kernel, root_p = ram_kernel ~config ~lsms () in
        get "f" (S.write_file root_p "/content" "page");
        get "mode" (S.chmod root_p "/content" 0o644);
        let web = Proc.spawn ~cred:(Cred.make ~uid:33 ~gid:33 ~label:"web_t" ()) kernel in
        ignore (get "pre-label read" (S.read_file web "/content"));
        get "label" (S.set_label root_p "/content" (Some "secret_data"));
        expect_err Errno.EACCES "denied by MAC" (S.read_file web "/content");
        get "relabel" (S.set_label root_p "/content" (Some "web_content"));
        Alcotest.(check string) "allowed again" "page" (get "read" (S.read_file web "/content")))

let at_family_suite =
  tc_both "mkdirat/unlinkat/symlinkat relative to dirfd" (fun config ->
      let _, p = ram_kernel ~config () in
      get "base" (S.mkdir_p p "/base");
      let dirfd = get "open" (S.openf p "/base" [ Proc.O_RDONLY; Proc.O_DIRECTORY ]) in
      get "mkdirat" (S.mkdirat p dirfd "sub");
      ignore (get "visible" (S.stat p "/base/sub"));
      get "symlinkat" (S.symlinkat p ~target:"/base/sub" dirfd "lnk");
      Alcotest.(check string) "readlinkat" "/base/sub" (get "rl" (S.readlinkat p dirfd "lnk"));
      get "file" (S.write_file p "/base/victim" "x");
      get "faccessat" (S.faccessat p dirfd "victim" Access.may_read);
      get "unlinkat" (S.unlinkat p dirfd "victim");
      expect_err Errno.ENOENT "gone" (S.stat p "/base/victim");
      expect_err Errno.EISDIR "unlinkat dir" (S.unlinkat p dirfd "sub");
      (* dirfd must be a directory *)
      get "f" (S.write_file p "/plain" "x");
      let filefd = get "open file" (S.openf p "/plain" [ Proc.O_RDONLY ]) in
      expect_err Errno.ENOTDIR "bad dirfd" (S.mkdirat p filefd "nope");
      get "close" (S.close p filefd);
      get "close dir" (S.close p dirfd))
  @ tc_both "getcwd follows chdir and mounts" (fun config ->
        let _, p = ram_kernel ~config () in
        Alcotest.(check string) "at root" "/" (get "cwd" (S.getcwd p));
        get "tree" (S.mkdir_p p "/a/b/c");
        get "cd" (S.chdir p "/a/b/c");
        Alcotest.(check string) "nested" "/a/b/c" (get "cwd" (S.getcwd p));
        (* across a mount boundary *)
        get "mnt" (S.mkdir_p p "/mnt");
        let other = Dcache_fs.Ramfs.create () in
        get "mount" (S.mount_fs p other "/mnt");
        get "inner" (S.mkdir_p p "/mnt/deep");
        get "cd2" (S.chdir p "/mnt/deep");
        Alcotest.(check string) "across mount" "/mnt/deep" (get "cwd" (S.getcwd p)))
  @ tc_both "getcwd of a removed directory is ENOENT" (fun config ->
        let _, p = ram_kernel ~config () in
        get "d" (S.mkdir_p p "/doomed");
        get "cd" (S.chdir p "/doomed");
        let p2 = Proc.fork p in
        get "cd away" (S.chdir p2 "/");
        get "rmdir" (S.rmdir p2 "/doomed");
        expect_err Errno.ENOENT "removed cwd" (S.getcwd p))
  @ tc_both "getcwd respects chroot" (fun config ->
        let _, p = ram_kernel ~config () in
        get "jail" (S.mkdir_p p "/jail/home");
        let j = Proc.fork p in
        get "chroot" (S.chroot j "/jail");
        get "cd" (S.chdir j "/home");
        Alcotest.(check string) "jail-relative" "/home" (get "cwd" (S.getcwd j)))

let procfs_suite =
  tc_both "kernel procfs introspection" (fun config ->
      let kernel, p = ram_kernel ~config () in
      get "mnt" (S.mkdir_p p "/proc");
      get "mount"
        (S.mount_fs p (Dcache_syscalls.Kernel_procfs.make kernel) "/proc");
      let version = get "version" (S.read_file p "/proc/version") in
      Alcotest.(check bool) "banner" true (String.length version > 0);
      let cfg = get "config" (S.read_file p "/proc/dcache/config") in
      Alcotest.(check bool) "reports fastpath flag" true
        (Kit.contains_substring cfg
           (Printf.sprintf "fastpath %b" config.Config.fastpath));
      (* stats change as the kernel runs *)
      let stats1 = get "stats1" (S.read_file p "/proc/dcache/stats") in
      get "work" (S.mkdir_p p "/workload/x");
      ignore (get "stat" (S.stat p "/workload/x"));
      let stats2 = get "stats2" (S.read_file p "/proc/dcache/stats") in
      Alcotest.(check bool) "stats are live" true (stats1 <> stats2);
      let summary = get "summary" (S.read_file p "/proc/dcache/summary") in
      Alcotest.(check bool) "has dentry count" true
        (Kit.contains_substring summary "dentries "))
