(* Tests for credentials (COW/commit) and the LSM framework. *)

open Dcache_types
open Kit
module Cred = Dcache_cred.Cred
module Lsm = Dcache_cred.Lsm
module Maclabel = Dcache_cred.Maclabel

let attr ?(mode = 0o644) ?(uid = 0) ?(gid = 0) ?label ?(kind = File_kind.Regular) () =
  Attr.make ~mode ~uid ~gid ?label ~ino:1 ~kind ()

let test_commit_unchanged_keeps_identity () =
  let c = Cred.make ~uid:5 ~gid:5 () in
  let b = Cred.prepare c in
  Cred.Builder.set_uid b 5 (* no actual change *);
  let c' = Cred.Builder.commit b in
  Alcotest.(check int) "same id" (Cred.id c) (Cred.id c');
  Alcotest.(check bool) "same object" true (c == c')

let test_commit_changed_new_identity () =
  let c = Cred.make ~uid:5 ~gid:5 () in
  let b = Cred.prepare c in
  Cred.Builder.set_uid b 6;
  let c' = Cred.Builder.commit b in
  Alcotest.(check bool) "new object" false (c == c');
  Alcotest.(check bool) "new id" true (Cred.id c <> Cred.id c');
  Alcotest.(check int) "uid applied" 6 (Cred.uid c');
  Alcotest.(check int) "original untouched" 5 (Cred.uid c)

let test_groups_normalized () =
  let c = Cred.make ~uid:1 ~gid:1 ~groups:[ 3; 1; 3; 2 ] () in
  Alcotest.(check (list int)) "sorted unique" [ 1; 2; 3 ] (Cred.groups c);
  Alcotest.(check bool) "in_group primary" true (Cred.in_group c 1);
  Alcotest.(check bool) "in_group supplementary" true (Cred.in_group c 3);
  Alcotest.(check bool) "not in group" false (Cred.in_group c 9)

type Cred.slot += Test_slot of int

let test_slots () =
  let c = Cred.make ~uid:1 ~gid:1 () in
  Alcotest.(check (option int)) "empty" None
    (Cred.find_slot c (function Test_slot v -> Some v | _ -> None));
  Cred.add_slot c (Test_slot 42);
  Alcotest.(check (option int)) "found" (Some 42)
    (Cred.find_slot c (function Test_slot v -> Some v | _ -> None))

let owner = Cred.make ~uid:100 ~gid:100 ()
let groupie = Cred.make ~uid:101 ~gid:100 ()
let stranger = Cred.make ~uid:102 ~gid:102 ()
let root = Cred.make ~uid:0 ~gid:0 ()

let test_dac_classes () =
  let a = attr ~mode:0o640 ~uid:100 ~gid:100 () in
  Alcotest.(check bool) "owner rw" true
    (Lsm.dac_permission owner a (Access.union Access.may_read Access.may_write));
  Alcotest.(check bool) "group r" true (Lsm.dac_permission groupie a Access.may_read);
  Alcotest.(check bool) "group not w" false (Lsm.dac_permission groupie a Access.may_write);
  Alcotest.(check bool) "other nothing" false (Lsm.dac_permission stranger a Access.may_read)

let test_dac_owner_class_exclusive () =
  (* The owner is checked against the owner class only: mode 0o077 denies
     the owner even though group/other would allow. *)
  let a = attr ~mode:0o077 ~uid:100 ~gid:100 () in
  Alcotest.(check bool) "owner denied" false (Lsm.dac_permission owner a Access.may_read);
  Alcotest.(check bool) "stranger allowed" true (Lsm.dac_permission stranger a Access.may_read)

let test_dac_root_override () =
  let a = attr ~mode:0o000 ~uid:100 () in
  Alcotest.(check bool) "root rw anything" true
    (Lsm.dac_permission root a (Access.union Access.may_read Access.may_write));
  Alcotest.(check bool) "root cannot exec non-x file" false
    (Lsm.dac_permission root a Access.may_exec);
  let dir = attr ~mode:0o000 ~uid:100 ~kind:File_kind.Directory () in
  Alcotest.(check bool) "root searches any dir" true (Lsm.dac_permission root dir Access.may_exec);
  let xfile = attr ~mode:0o100 ~uid:100 () in
  Alcotest.(check bool) "root exec with any x bit" true
    (Lsm.dac_permission root xfile Access.may_exec)

let test_registry_order_and_veto () =
  let registry = Lsm.create () in
  let trace = ref [] in
  let make name verdict =
    {
      Lsm.name;
      inode_permission =
        (fun _ _ _ ->
          trace := name :: !trace;
          verdict);
    }
  in
  Lsm.register registry (make "first" true);
  Lsm.register registry (make "second" false);
  Lsm.register registry (make "third" true);
  let a = attr ~mode:0o777 () in
  Alcotest.(check bool) "vetoed" false (Lsm.permission registry owner a Access.may_read);
  (* Evaluation is in registration order and short-circuits on the veto. *)
  Alcotest.(check (list string)) "order" [ "second"; "first" ] !trace;
  Alcotest.(check (list string)) "names" [ "first"; "second"; "third" ] (Lsm.names registry)

let test_lsm_cannot_grant () =
  (* A module cannot override a DAC denial: DAC runs first. *)
  let registry = Lsm.create () in
  Lsm.register registry { Lsm.name = "permissive"; inode_permission = (fun _ _ _ -> true) };
  let a = attr ~mode:0o000 ~uid:100 () in
  Alcotest.(check bool) "still denied" false (Lsm.permission registry stranger a Access.may_read)

let test_maclabel_policy () =
  let rules =
    [ { Maclabel.domain = "mail_t"; label = "spool"; allow = Access.may_read } ]
  in
  let hooks = Maclabel.hooks ~rules in
  let mail = Cred.make ~uid:8 ~gid:8 ~label:"mail_t" () in
  let web = Cred.make ~uid:33 ~gid:33 ~label:"web_t" () in
  let unconfined = Cred.make ~uid:1 ~gid:1 () in
  let labeled = attr ~mode:0o777 ~label:"spool" () in
  let unlabeled = attr ~mode:0o777 () in
  let check c a m = hooks.Lsm.inode_permission c a m in
  Alcotest.(check bool) "mail reads spool" true (check mail labeled Access.may_read);
  Alcotest.(check bool) "mail cannot write spool" false (check mail labeled Access.may_write);
  Alcotest.(check bool) "web denied" false (check web labeled Access.may_read);
  Alcotest.(check bool) "unconfined ok" true (check unconfined labeled Access.may_write);
  Alcotest.(check bool) "unlabeled ok" true (check web unlabeled Access.may_write)

let test_counting_wrapper () =
  let hooks = { Lsm.name = "h"; inode_permission = (fun _ _ _ -> true) } in
  let wrapped, calls = Lsm.counting hooks in
  let a = attr () in
  ignore (wrapped.Lsm.inode_permission owner a Access.may_read);
  ignore (wrapped.Lsm.inode_permission owner a Access.may_read);
  Alcotest.(check int) "counted" 2 (calls ())

let suite =
  [
    Alcotest.test_case "commit unchanged keeps identity" `Quick test_commit_unchanged_keeps_identity;
    Alcotest.test_case "commit changed gets new identity" `Quick test_commit_changed_new_identity;
    Alcotest.test_case "groups normalized" `Quick test_groups_normalized;
    Alcotest.test_case "extensible slots" `Quick test_slots;
    Alcotest.test_case "dac classes" `Quick test_dac_classes;
    Alcotest.test_case "dac owner class exclusive" `Quick test_dac_owner_class_exclusive;
    Alcotest.test_case "dac root override" `Quick test_dac_root_override;
    Alcotest.test_case "registry order and veto" `Quick test_registry_order_and_veto;
    Alcotest.test_case "lsm cannot grant" `Quick test_lsm_cannot_grant;
    Alcotest.test_case "maclabel policy" `Quick test_maclabel_policy;
    Alcotest.test_case "counting wrapper" `Quick test_counting_wrapper;
  ]

(* --- the Windows propagated-permission comparison (paper §2.3) --- *)

module Propagated = Dcache_cred.Propagated

let test_propagated_inheritance () =
  let t = Propagated.create ~root_mode:0o755 in
  let home = Propagated.add t (Propagated.root t) "home" in
  let docs = Propagated.add t home "docs" in
  Alcotest.(check int) "inherits" 0o755 (Propagated.effective_mode docs);
  (* chmod propagates to inherited children... *)
  let rewritten = Propagated.chmod t home 0o700 in
  Alcotest.(check int) "two objects rewritten" 2 rewritten;
  Alcotest.(check int) "child updated" 0o700 (Propagated.effective_mode docs)

let test_propagated_check_is_direct () =
  (* Effective permissions live on the object: the check never walks the
     prefix — the property that makes Windows-style direct lookup work. *)
  let t = Propagated.create ~root_mode:0o755 in
  let rec deepen node n = if n = 0 then node else deepen (Propagated.add t node "d") (n - 1) in
  let leaf = deepen (Propagated.root t) 12 in
  Alcotest.(check int) "one read suffices" 0o755 (Propagated.effective_mode leaf)

let test_propagated_manageability_anomaly () =
  (* The paper's §2.3 problem, in the dangerous direction: Alice once made
     a subdirectory world-readable by hand; later she locks her home
     directory down.  Windows' heuristic skips manually-modified children,
     so the subdirectory stays world-readable.  Our kernel's POSIX prefix
     semantics deny the same access, because reaching the subdirectory
     requires search permission on home. *)
  let t = Propagated.create ~root_mode:0o755 in
  let home = Propagated.add t (Propagated.root t) "alice" in
  let public = Propagated.add_manual t home "public" ~mode:0o755 in
  ignore (Propagated.chmod t home 0o700);
  Alcotest.(check int) "anomaly: manual child untouched" 0o755
    (Propagated.effective_mode public);
  (* same scenario through the simulated kernel: access is denied *)
  let kernel, root_p = ram_kernel ~config:Config.optimized () in
  get "tree" (S.mkdir_p root_p "/home/alice/public");
  get "own" (S.chown root_p "/home/alice" ~uid:1000 ~gid:1000);
  get "own2" (S.chown root_p "/home/alice/public" ~uid:1000 ~gid:1000);
  get "manual chmod" (S.chmod root_p "/home/alice/public" 0o755);
  get "lockdown" (S.chmod root_p "/home/alice" 0o700);
  let bob_p = Dcache_syscalls.Proc.spawn ~cred:(bob ()) kernel in
  expect_err Errno.EACCES "POSIX prefix semantics deny"
    (S.stat bob_p "/home/alice/public")

let propagated_suite =
  [
    Alcotest.test_case "propagated: inheritance + chmod propagation" `Quick
      test_propagated_inheritance;
    Alcotest.test_case "propagated: access check is one read" `Quick
      test_propagated_check_is_direct;
    Alcotest.test_case "propagated: the manageability anomaly (vs our kernel)" `Quick
      test_propagated_manageability_anomaly;
  ]
