(* Tests for the low-level file systems (ramfs, extfs, pseudofs).  The
   common POSIX-structural behaviours run against both ramfs and extfs via
   one parameterized list. *)

open Dcache_types
module Fs = Dcache_fs.Fs_intf
module Ramfs = Dcache_fs.Ramfs
module Extfs = Dcache_fs.Extfs
module Pseudofs = Dcache_fs.Pseudofs
module Pagecache = Dcache_storage.Pagecache
module Blockdev = Dcache_storage.Blockdev
module Vclock = Dcache_util.Vclock

let errno = Alcotest.testable (Fmt.of_to_string Errno.to_string) ( = )

let get what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" what (Errno.to_string e)

let expect_err expected what = function
  | Ok _ -> Alcotest.failf "%s: expected %s, got success" what (Errno.to_string expected)
  | Error e -> Alcotest.check errno what expected e

let fresh_extfs_cache () =
  let clock = Vclock.create () in
  let device = Blockdev.create clock in
  Pagecache.create ~capacity_pages:16384 device

let make_extfs () = Extfs.mkfs_and_mount (fresh_extfs_cache ())

let mkdir fs dir name =
  get "mkdir" (fs.Fs.create dir name File_kind.Directory Mode.default_dir ~uid:0 ~gid:0)

let mkfile fs dir name =
  get "create" (fs.Fs.create dir name File_kind.Regular Mode.default_file ~uid:0 ~gid:0)

let common_tests label make_fs =
  let t name f =
    Alcotest.test_case (Printf.sprintf "%s: %s" label name) `Quick (fun () -> f (make_fs ()))
  in
  [
    t "create and lookup" (fun fs ->
        let attr = mkfile fs fs.Fs.root_ino "hello" in
        let found = get "lookup" (fs.Fs.lookup fs.Fs.root_ino "hello") in
        Alcotest.(check int) "same ino" attr.Attr.ino found.Attr.ino;
        Alcotest.(check bool) "regular" true (File_kind.equal found.Attr.kind File_kind.Regular));
    t "lookup missing is ENOENT" (fun fs ->
        expect_err Errno.ENOENT "missing" (fs.Fs.lookup fs.Fs.root_ino "ghost"));
    t "create duplicate is EEXIST" (fun fs ->
        ignore (mkfile fs fs.Fs.root_ino "dup");
        expect_err Errno.EEXIST "dup"
          (fs.Fs.create fs.Fs.root_ino "dup" File_kind.Regular 0o644 ~uid:0 ~gid:0));
    t "mkdir bumps parent nlink" (fun fs ->
        let before = (get "getattr" (fs.Fs.getattr fs.Fs.root_ino)).Attr.nlink in
        ignore (mkdir fs fs.Fs.root_ino "sub");
        let after = (get "getattr" (fs.Fs.getattr fs.Fs.root_ino)).Attr.nlink in
        Alcotest.(check int) "nlink+1" (before + 1) after);
    t "write then read" (fun fs ->
        let attr = mkfile fs fs.Fs.root_ino "data" in
        let n = get "write" (fs.Fs.write attr.Attr.ino ~off:0 "abcdef") in
        Alcotest.(check int) "wrote" 6 n;
        Alcotest.(check string) "read" "abcdef"
          (get "read" (fs.Fs.read attr.Attr.ino ~off:0 ~len:100));
        Alcotest.(check string) "offset read" "cde"
          (get "read" (fs.Fs.read attr.Attr.ino ~off:2 ~len:3)));
    t "sparse write reads zeros" (fun fs ->
        let attr = mkfile fs fs.Fs.root_ino "sparse" in
        ignore (get "write" (fs.Fs.write attr.Attr.ino ~off:10000 "end"));
        let data = get "read" (fs.Fs.read attr.Attr.ino ~off:9998 ~len:5) in
        Alcotest.(check string) "hole then data" "\000\000end" data;
        let size = (get "getattr" (fs.Fs.getattr attr.Attr.ino)).Attr.size in
        Alcotest.(check int) "size" 10003 size);
    t "large file spans indirect blocks" (fun fs ->
        let attr = mkfile fs fs.Fs.root_ino "big" in
        let chunk = String.make 4096 'Q' in
        (* 60 blocks: beyond the 12 direct pointers of extfs *)
        for i = 0 to 59 do
          ignore (get "write big" (fs.Fs.write attr.Attr.ino ~off:(i * 4096) chunk))
        done;
        let back = get "read big" (fs.Fs.read attr.Attr.ino ~off:(55 * 4096) ~len:8) in
        Alcotest.(check string) "far data" "QQQQQQQQ" back;
        Alcotest.(check int) "size" (60 * 4096)
          (get "getattr" (fs.Fs.getattr attr.Attr.ino)).Attr.size);
    t "unlink removes and frees" (fun fs ->
        let attr = mkfile fs fs.Fs.root_ino "gone" in
        get "unlink" (fs.Fs.unlink fs.Fs.root_ino "gone");
        expect_err Errno.ENOENT "after unlink" (fs.Fs.lookup fs.Fs.root_ino "gone");
        ignore attr);
    t "unlink directory is EISDIR" (fun fs ->
        ignore (mkdir fs fs.Fs.root_ino "d");
        expect_err Errno.EISDIR "unlink dir" (fs.Fs.unlink fs.Fs.root_ino "d"));
    t "rmdir requires empty" (fun fs ->
        let d = mkdir fs fs.Fs.root_ino "d" in
        ignore (mkfile fs d.Attr.ino "f");
        expect_err Errno.ENOTEMPTY "non-empty" (fs.Fs.rmdir fs.Fs.root_ino "d");
        get "unlink child" (fs.Fs.unlink d.Attr.ino "f");
        get "rmdir" (fs.Fs.rmdir fs.Fs.root_ino "d");
        expect_err Errno.ENOENT "gone" (fs.Fs.lookup fs.Fs.root_ino "d"));
    t "rmdir file is ENOTDIR" (fun fs ->
        ignore (mkfile fs fs.Fs.root_ino "f");
        expect_err Errno.ENOTDIR "rmdir file" (fs.Fs.rmdir fs.Fs.root_ino "f"));
    t "readdir lists entries" (fun fs ->
        ignore (mkfile fs fs.Fs.root_ino "a");
        ignore (mkfile fs fs.Fs.root_ino "b");
        ignore (mkdir fs fs.Fs.root_ino "c");
        let names =
          get "readdir" (fs.Fs.readdir fs.Fs.root_ino)
          |> List.map (fun e -> e.Fs.name)
          |> List.sort compare
        in
        Alcotest.(check (list string)) "names" [ "a"; "b"; "c" ] names);
    t "hard links share the inode" (fun fs ->
        let a = mkfile fs fs.Fs.root_ino "orig" in
        ignore (get "write" (fs.Fs.write a.Attr.ino ~off:0 "shared"));
        let l = get "link" (fs.Fs.link fs.Fs.root_ino "alias" a.Attr.ino) in
        Alcotest.(check int) "same ino" a.Attr.ino l.Attr.ino;
        Alcotest.(check int) "nlink" 2 l.Attr.nlink;
        Alcotest.(check string) "content via link" "shared"
          (get "read" (fs.Fs.read l.Attr.ino ~off:0 ~len:10));
        get "unlink orig" (fs.Fs.unlink fs.Fs.root_ino "orig");
        Alcotest.(check string) "still readable" "shared"
          (get "read" (fs.Fs.read l.Attr.ino ~off:0 ~len:10));
        Alcotest.(check int) "nlink back to 1" 1
          (get "getattr" (fs.Fs.getattr l.Attr.ino)).Attr.nlink);
    t "link to directory is EPERM" (fun fs ->
        let d = mkdir fs fs.Fs.root_ino "d" in
        expect_err Errno.EPERM "dir link" (fs.Fs.link fs.Fs.root_ino "dl" d.Attr.ino));
    t "symlink and readlink" (fun fs ->
        let l = get "symlink" (fs.Fs.symlink fs.Fs.root_ino "l" ~target:"/x/y" ~uid:0 ~gid:0) in
        Alcotest.(check bool) "kind" true (File_kind.equal l.Attr.kind File_kind.Symlink);
        Alcotest.(check string) "target" "/x/y" (get "readlink" (fs.Fs.readlink l.Attr.ino));
        ignore (mkfile fs fs.Fs.root_ino "plain");
        let plain = get "lookup" (fs.Fs.lookup fs.Fs.root_ino "plain") in
        expect_err Errno.EINVAL "readlink file" (fs.Fs.readlink plain.Attr.ino));
    t "rename within directory" (fun fs ->
        ignore (mkfile fs fs.Fs.root_ino "old");
        get "rename" (fs.Fs.rename fs.Fs.root_ino "old" fs.Fs.root_ino "new");
        expect_err Errno.ENOENT "old gone" (fs.Fs.lookup fs.Fs.root_ino "old");
        ignore (get "new exists" (fs.Fs.lookup fs.Fs.root_ino "new")));
    t "rename across directories moves dir nlink" (fun fs ->
        let a = mkdir fs fs.Fs.root_ino "a" in
        let b = mkdir fs fs.Fs.root_ino "b" in
        ignore (mkdir fs a.Attr.ino "sub");
        let a_nlink () = (get "a" (fs.Fs.getattr a.Attr.ino)).Attr.nlink in
        let b_nlink () = (get "b" (fs.Fs.getattr b.Attr.ino)).Attr.nlink in
        Alcotest.(check int) "a nlink 3" 3 (a_nlink ());
        get "rename dir" (fs.Fs.rename a.Attr.ino "sub" b.Attr.ino "sub");
        Alcotest.(check int) "a nlink 2" 2 (a_nlink ());
        Alcotest.(check int) "b nlink 3" 3 (b_nlink ()));
    t "rename replaces a file target" (fun fs ->
        let src = mkfile fs fs.Fs.root_ino "src" in
        ignore (get "w" (fs.Fs.write src.Attr.ino ~off:0 "SRC"));
        ignore (mkfile fs fs.Fs.root_ino "dst");
        get "rename over" (fs.Fs.rename fs.Fs.root_ino "src" fs.Fs.root_ino "dst");
        let dst = get "lookup" (fs.Fs.lookup fs.Fs.root_ino "dst") in
        Alcotest.(check string) "content is source's" "SRC"
          (get "read" (fs.Fs.read dst.Attr.ino ~off:0 ~len:3)));
    t "rename dir over non-empty dir is ENOTEMPTY" (fun fs ->
        ignore (mkdir fs fs.Fs.root_ino "s");
        let d = mkdir fs fs.Fs.root_ino "d" in
        ignore (mkfile fs d.Attr.ino "kid");
        expect_err Errno.ENOTEMPTY "over non-empty"
          (fs.Fs.rename fs.Fs.root_ino "s" fs.Fs.root_ino "d"));
    t "rename file over dir is EISDIR" (fun fs ->
        ignore (mkfile fs fs.Fs.root_ino "f");
        ignore (mkdir fs fs.Fs.root_ino "d");
        expect_err Errno.EISDIR "file over dir"
          (fs.Fs.rename fs.Fs.root_ino "f" fs.Fs.root_ino "d"));
    t "setattr mode/uid/label" (fun fs ->
        let a = mkfile fs fs.Fs.root_ino "f" in
        let changed =
          get "setattr"
            (fs.Fs.setattr a.Attr.ino
               { Fs.no_setattr with
                 Fs.set_mode = Some 0o600; set_uid = Some 42; set_label = Some (Some "top") })
        in
        Alcotest.(check int) "mode" 0o600 changed.Attr.mode;
        Alcotest.(check int) "uid" 42 changed.Attr.uid;
        Alcotest.(check (option string)) "label" (Some "top") changed.Attr.label);
    t "truncate shrinks" (fun fs ->
        let a = mkfile fs fs.Fs.root_ino "f" in
        ignore (get "w" (fs.Fs.write a.Attr.ino ~off:0 "0123456789"));
        ignore (get "trunc" (fs.Fs.setattr a.Attr.ino { Fs.no_setattr with Fs.set_size = Some 4 }));
        Alcotest.(check string) "shrunk" "0123"
          (get "read" (fs.Fs.read a.Attr.ino ~off:0 ~len:100)));
    t "name too long" (fun fs ->
        let name = String.make 300 'n' in
        expect_err Errno.ENAMETOOLONG "long" (fs.Fs.lookup fs.Fs.root_ino name);
        expect_err Errno.ENAMETOOLONG "create long"
          (fs.Fs.create fs.Fs.root_ino name File_kind.Regular 0o644 ~uid:0 ~gid:0));
  ]

(* --- extfs specifics --- *)

let test_extfs_remount_persistence () =
  let cache = fresh_extfs_cache () in
  let fs = Extfs.mkfs_and_mount cache in
  let d = mkdir fs fs.Fs.root_ino "sub" in
  let f = mkfile fs d.Attr.ino "file" in
  ignore (get "write" (fs.Fs.write f.Attr.ino ~off:0 "persisted"));
  ignore (get "symlink" (fs.Fs.symlink fs.Fs.root_ino "ln" ~target:"sub/file" ~uid:0 ~gid:0));
  fs.Fs.sync ();
  (* Remount from the same device. *)
  let fs2 = get "mount" (Extfs.mount cache) in
  let d2 = get "lookup sub" (fs2.Fs.lookup fs2.Fs.root_ino "sub") in
  let f2 = get "lookup file" (fs2.Fs.lookup d2.Attr.ino "file") in
  Alcotest.(check string) "content survived" "persisted"
    (get "read" (fs2.Fs.read f2.Attr.ino ~off:0 ~len:100));
  let l2 = get "lookup ln" (fs2.Fs.lookup fs2.Fs.root_ino "ln") in
  Alcotest.(check string) "symlink survived" "sub/file"
    (get "readlink" (fs2.Fs.readlink l2.Attr.ino))

let test_extfs_bad_superblock () =
  let cache = fresh_extfs_cache () in
  (* No mkfs: magic is zero. *)
  match Extfs.mount cache with
  | Error Errno.EINVAL -> ()
  | Error e -> Alcotest.failf "expected EINVAL, got %s" (Errno.to_string e)
  | Ok _ -> Alcotest.fail "mounted garbage"

let test_extfs_many_entries_in_dir () =
  let fs = make_extfs () in
  for i = 0 to 499 do
    ignore (mkfile fs fs.Fs.root_ino (Printf.sprintf "file%03d" i))
  done;
  let entries = get "readdir" (fs.Fs.readdir fs.Fs.root_ino) in
  Alcotest.(check int) "500 entries" 500 (List.length entries);
  (* Unlink half, then reuse the tombstones. *)
  for i = 0 to 499 do
    if i mod 2 = 0 then get "unlink" (fs.Fs.unlink fs.Fs.root_ino (Printf.sprintf "file%03d" i))
  done;
  Alcotest.(check int) "250 left" 250 (List.length (get "rd" (fs.Fs.readdir fs.Fs.root_ino)));
  for i = 0 to 99 do
    ignore (mkfile fs fs.Fs.root_ino (Printf.sprintf "NEWF%03d" i))
  done;
  Alcotest.(check int) "350 after reuse" 350
    (List.length (get "rd" (fs.Fs.readdir fs.Fs.root_ino)))

let test_extfs_inode_reuse () =
  let fs = make_extfs () in
  let a = mkfile fs fs.Fs.root_ino "first" in
  get "unlink" (fs.Fs.unlink fs.Fs.root_ino "first");
  let b = mkfile fs fs.Fs.root_ino "second" in
  Alcotest.(check int) "ino reused" a.Attr.ino b.Attr.ino

(* --- pseudofs specifics --- *)

let test_pseudofs_dynamic_content () =
  let p = Pseudofs.create () in
  let counter = ref 0 in
  get "add dir" (Pseudofs.add_dir p "/sys");
  get "add file"
    (Pseudofs.add_file p "/sys/count" ~content:(fun () ->
         incr counter;
         string_of_int !counter));
  let fs = Pseudofs.fs p in
  let dir = get "lookup sys" (fs.Fs.lookup fs.Fs.root_ino "sys") in
  let file = get "lookup count" (fs.Fs.lookup dir.Attr.ino "count") in
  let read () = get "read" (fs.Fs.read file.Attr.ino ~off:0 ~len:10) in
  let first = read () in
  let second = read () in
  Alcotest.(check bool) "content regenerated" true (first <> second)

let test_pseudofs_immutable_via_fs () =
  let p = Pseudofs.create () in
  let fs = Pseudofs.fs p in
  expect_err Errno.EPERM "create"
    (fs.Fs.create fs.Fs.root_ino "x" File_kind.Regular 0o644 ~uid:0 ~gid:0);
  expect_err Errno.EPERM "unlink" (fs.Fs.unlink fs.Fs.root_ino "x");
  Alcotest.(check bool) "no negative caching" false fs.Fs.negative_dentries

let test_pseudofs_remove () =
  let p = Pseudofs.create () in
  get "add" (Pseudofs.add_file p "/gone" ~content:(fun () -> ""));
  let fs = Pseudofs.fs p in
  ignore (get "present" (fs.Fs.lookup fs.Fs.root_ino "gone"));
  get "remove" (Pseudofs.remove p "/gone");
  expect_err Errno.ENOENT "absent" (fs.Fs.lookup fs.Fs.root_ino "gone")

let suite =
  common_tests "ramfs" (fun () -> Ramfs.create ())
  @ common_tests "extfs" make_extfs
  @ [
      Alcotest.test_case "extfs remount persistence" `Quick test_extfs_remount_persistence;
      Alcotest.test_case "extfs bad superblock" `Quick test_extfs_bad_superblock;
      Alcotest.test_case "extfs many dirents + tombstones" `Quick test_extfs_many_entries_in_dir;
      Alcotest.test_case "extfs inode reuse" `Quick test_extfs_inode_reuse;
      Alcotest.test_case "pseudofs dynamic content" `Quick test_pseudofs_dynamic_content;
      Alcotest.test_case "pseudofs immutable via fs" `Quick test_pseudofs_immutable_via_fs;
      Alcotest.test_case "pseudofs remove" `Quick test_pseudofs_remove;
    ]

(* --- fsck --- *)

module Fsck = Dcache_fs.Extfs_fsck
module Prng = Dcache_util.Prng

let fsck_clean what cache =
  match Fsck.check cache with
  | Error e -> Alcotest.failf "%s: fsck failed to run: %s" what (Errno.to_string e)
  | Ok report ->
    (match Fsck.errors report with
    | [] -> report
    | issues ->
      List.iter (fun i -> Printf.printf "fsck: %s\n" i.Fsck.message) issues;
      Alcotest.failf "%s: fsck found %d errors" what (List.length issues))

let test_fsck_clean_fresh () =
  let cache = fresh_extfs_cache () in
  let fs = Extfs.mkfs_and_mount cache in
  fs.Fs.sync ();
  let report = fsck_clean "fresh volume" cache in
  Alcotest.(check int) "only the root" 1 report.Fsck.inodes_used;
  Alcotest.(check int) "one directory" 1 report.Fsck.directories

let test_fsck_after_tree () =
  let cache = fresh_extfs_cache () in
  let fs = Extfs.mkfs_and_mount cache in
  let d = mkdir fs fs.Fs.root_ino "d" in
  let sub = mkdir fs d.Attr.ino "sub" in
  let f = mkfile fs sub.Attr.ino "file" in
  ignore (get "w" (fs.Fs.write f.Attr.ino ~off:0 (String.make 9000 'z')));
  ignore (get "ln" (fs.Fs.link sub.Attr.ino "file2" f.Attr.ino));
  ignore (get "sym" (fs.Fs.symlink fs.Fs.root_ino "s" ~target:"d/sub/file" ~uid:0 ~gid:0));
  fs.Fs.sync ();
  let report = fsck_clean "small tree" cache in
  Alcotest.(check int) "dirs" 3 report.Fsck.directories;
  Alcotest.(check int) "symlinks" 1 report.Fsck.symlinks

let test_fsck_detects_corruption () =
  let cache = fresh_extfs_cache () in
  let fs = Extfs.mkfs_and_mount cache in
  ignore (mkfile fs fs.Fs.root_ino "victim");
  fs.Fs.sync ();
  ignore (fsck_clean "before corruption" cache);
  (* Flip the victim's inode bitmap bit (inode 2 -> bit 1 of block 1). *)
  Dcache_storage.Pagecache.with_page_mut cache 1 (fun b ->
      Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) land lnot 0b10)));
  (match Fsck.check cache with
  | Ok report -> Alcotest.(check bool) "corruption detected" true (Fsck.errors report <> [])
  | Error e -> Alcotest.failf "fsck: %s" (Errno.to_string e))

let fsck_random_ops =
  QCheck.Test.make ~name:"extfs stays fsck-clean under random operations" ~count:30
    QCheck.(pair small_int (list (pair (int_bound 5) (int_bound 3))))
    (fun (seed, script) ->
      let cache = fresh_extfs_cache () in
      let fs = Extfs.mkfs_and_mount cache in
      let prng = Prng.create (seed + 1) in
      (* Track a pool of live (ino, is_dir) pairs rooted at the root. *)
      let dirs = ref [ fs.Fs.root_ino ] in
      let files = ref [] in
      let name () = Prng.string prng ~min_len:1 ~max_len:12 in
      List.iter
        (fun (op, _) ->
          match op with
          | 0 -> (
            match fs.Fs.create (Prng.choice_list prng !dirs) (name ())
                    File_kind.Regular 0o644 ~uid:0 ~gid:0 with
            | Ok attr -> files := (Prng.choice_list prng !dirs, attr.Attr.ino) :: !files
            | Error _ -> ())
          | 1 -> (
            match fs.Fs.create (Prng.choice_list prng !dirs) (name ())
                    File_kind.Directory 0o755 ~uid:0 ~gid:0 with
            | Ok attr -> dirs := attr.Attr.ino :: !dirs
            | Error _ -> ())
          | 2 -> (
            (* unlink a random entry of a random dir *)
            let dir = Prng.choice_list prng !dirs in
            match fs.Fs.readdir dir with
            | Ok (entry :: _) when not (File_kind.equal entry.Fs.kind File_kind.Directory) ->
              ignore (fs.Fs.unlink dir entry.Fs.name)
            | _ -> ())
          | 3 -> (
            let dir = Prng.choice_list prng !dirs in
            match fs.Fs.readdir dir with
            | Ok (entry :: _) when File_kind.equal entry.Fs.kind File_kind.Directory -> (
              match fs.Fs.rmdir dir entry.Fs.name with
              | Ok () -> dirs := List.filter (fun i -> i <> entry.Fs.ino) !dirs
              | Error _ -> ())
            | _ -> ())
          | 4 -> (
            (* write some data to a random file *)
            match !files with
            | [] -> ()
            | _ ->
              let _, ino = Prng.choice_list prng !files in
              ignore (fs.Fs.write ino ~off:(Prng.int prng 20000) (String.make (Prng.int_in prng 1 5000) 'r')))
          | _ -> (
            (* rename between random dirs; directory cycle prevention is the
               VFS's contract, so only move non-directories here *)
            let src = Prng.choice_list prng !dirs in
            let dst = Prng.choice_list prng !dirs in
            match fs.Fs.readdir src with
            | Ok entries -> (
              match
                List.find_opt
                  (fun (e : Fs.dirent) ->
                    not (File_kind.equal e.Fs.kind File_kind.Directory))
                  entries
              with
              | Some entry -> ignore (fs.Fs.rename src entry.Fs.name dst (name ()))
              | None -> ())
            | Error _ -> ()))
        script;
      fs.Fs.sync ();
      match Fsck.check cache with
      | Error _ -> false
      | Ok report ->
        (match Fsck.errors report with
        | [] -> true
        | issues ->
          List.iter (fun i -> Printf.printf "fsck: %s\n" i.Fsck.message) issues;
          false))

(* --- ramfs/extfs observational equivalence at the fs interface --- *)

let fs_equivalence =
  QCheck.Test.make ~name:"ramfs and extfs agree on random fs-level scripts" ~count:50
    QCheck.(pair small_int (list_of_size (QCheck.Gen.int_range 1 40) (pair (int_bound 6) small_nat)))
    (fun (seed, script) ->
      let run fs =
        let prng = Prng.create (seed + 7) in
        let log = Buffer.create 256 in
        let note tag result =
          Buffer.add_string log tag;
          Buffer.add_string log
            (match result with
            | Ok () -> ":ok;"
            | Error e -> ":" ^ Errno.to_string e ^ ";")
        in
        (* All scripts address inodes through a name pool under the root so
           both file systems see identical requests. *)
        let names = [| "n0"; "n1"; "n2"; "n3" |] in
        let pick () = names.(Prng.int prng (Array.length names)) in
        let lookup name = fs.Fs.lookup fs.Fs.root_ino name in
        List.iter
          (fun (op, _) ->
            match op with
            | 0 ->
              note "create"
                (Result.map (fun _ -> ())
                   (fs.Fs.create fs.Fs.root_ino (pick ()) File_kind.Regular 0o644 ~uid:0 ~gid:0))
            | 1 ->
              note "mkdir"
                (Result.map (fun _ -> ())
                   (fs.Fs.create fs.Fs.root_ino (pick ()) File_kind.Directory 0o755 ~uid:0 ~gid:0))
            | 2 -> note "unlink" (fs.Fs.unlink fs.Fs.root_ino (pick ()))
            | 3 -> note "rmdir" (fs.Fs.rmdir fs.Fs.root_ino (pick ()))
            | 4 -> note "rename" (fs.Fs.rename fs.Fs.root_ino (pick ()) fs.Fs.root_ino (pick ()))
            | 5 -> (
              match lookup (pick ()) with
              | Ok attr ->
                Buffer.add_string log
                  (Printf.sprintf "lookup:ok(%c,%d);" (File_kind.to_char attr.Attr.kind)
                     attr.Attr.nlink)
              | Error e -> note "lookup" (Error e))
            | _ -> (
              match fs.Fs.readdir fs.Fs.root_ino with
              | Ok entries ->
                let names =
                  entries |> List.map (fun e -> e.Fs.name) |> List.sort compare
                  |> String.concat ","
                in
                Buffer.add_string log ("readdir:[" ^ names ^ "];")
              | Error e -> note "readdir" (Error e)))
          script;
        Buffer.contents log
      in
      let ram_log = run (Ramfs.create ()) in
      let ext_log = run (make_extfs ()) in
      if ram_log <> ext_log then
        QCheck.Test.fail_reportf "diverged:\nramfs: %s\nextfs: %s" ram_log ext_log;
      true)

let fsck_suite =
  [
    Alcotest.test_case "fsck: fresh volume" `Quick test_fsck_clean_fresh;
    Alcotest.test_case "fsck: after building a tree" `Quick test_fsck_after_tree;
    Alcotest.test_case "fsck: detects bitmap corruption" `Quick test_fsck_detects_corruption;
    QCheck_alcotest.to_alcotest fsck_random_ops;
    QCheck_alcotest.to_alcotest fs_equivalence;
  ]
