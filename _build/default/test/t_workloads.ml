(* Workload generators: determinism, cross-kernel agreement, and the
   supporting environments. *)

open Kit
module W = Dcache_workloads
module Fs = Dcache_fs.Fs_intf

let test_tree_gen_deterministic () =
  let build () =
    let _, p = ram_kernel () in
    W.Tree_gen.build p ~root:"/src" (W.Tree_gen.source_tree ~scale:0.3 ())
  in
  let a = build () and b = build () in
  Alcotest.(check (list string)) "same files" a.W.Tree_gen.files b.W.Tree_gen.files;
  Alcotest.(check (list string)) "same dirs" a.W.Tree_gen.dirs b.W.Tree_gen.dirs;
  Alcotest.(check bool) "non-trivial" true (List.length a.W.Tree_gen.files > 50)

let with_both_kernels f =
  let run config =
    let env = W.Env.ram config in
    let m = W.Tree_gen.build env.W.Env.proc ~root:"/src" (W.Tree_gen.source_tree ~scale:0.3 ()) in
    f env m
  in
  (run Config.baseline, run Config.optimized)

let test_find_agrees () =
  let a, b = with_both_kernels (fun env m ->
      ignore m;
      W.Apps.find env.W.Env.proc ~root:"/src" ~pattern:"a")
  in
  Alcotest.(check int) "examined" a.W.Apps.examined b.W.Apps.examined;
  Alcotest.(check int) "matched" a.W.Apps.matched b.W.Apps.matched;
  Alcotest.(check bool) "non-empty" true (a.W.Apps.examined > 0)

let test_du_agrees () =
  let a, b = with_both_kernels (fun env _ -> W.Apps.du env.W.Env.proc ~root:"/src") in
  Alcotest.(check int) "bytes" a.W.Apps.bytes b.W.Apps.bytes

let test_updatedb_agrees () =
  let a, b =
    with_both_kernels (fun env _ ->
        W.Apps.updatedb env.W.Env.proc ~root:"/src" ~output:"/db.txt")
  in
  Alcotest.(check int) "entries" a.W.Apps.examined b.W.Apps.examined;
  Alcotest.(check int) "db size" a.W.Apps.bytes b.W.Apps.bytes

let test_tar_then_rm_roundtrip () =
  let env = W.Env.ram Config.optimized in
  let p = env.W.Env.proc in
  let m = W.Tree_gen.build p ~root:"/src" (W.Tree_gen.source_tree ~scale:0.2 ()) in
  let extracted = W.Apps.tar_extract p ~manifest:m ~dst:"/dst" in
  Alcotest.(check int) "all entries extracted"
    (List.length m.W.Tree_gen.dirs + List.length m.W.Tree_gen.files
    + List.length m.W.Tree_gen.symlinks)
    extracted.W.Apps.examined;
  let du_src = W.Apps.du p ~root:"/src" in
  let du_dst = W.Apps.du p ~root:"/dst" in
  Alcotest.(check int) "same entry count" du_src.W.Apps.examined du_dst.W.Apps.examined;
  let removed = W.Apps.rm_rf p ~root:"/dst" in
  Alcotest.(check int) "all removed" du_dst.W.Apps.examined removed.W.Apps.examined;
  Kit.expect_err Dcache_types.Errno.ENOENT "gone" (S.stat p "/dst")

let test_make_produces_objects_and_negatives () =
  let env = W.Env.ram Config.baseline in
  let p = env.W.Env.proc in
  let m = W.Tree_gen.build p ~root:"/src" (W.Tree_gen.source_tree ~scale:0.2 ()) in
  let menv = W.Apps.make_setup p ~root:"/src" ~headers:20 ~seed:5 in
  W.Env.reset_measurement env;
  let c = W.Apps.make p ~manifest:m ~env:menv ~headers_per_file:6 ~seed:9 in
  Alcotest.(check int) "compiled all" (List.length m.W.Tree_gen.files) c.W.Apps.examined;
  (* Every compile searched empty include dirs first: negative traffic. *)
  Alcotest.(check bool) "negative lookups happened" true
    (counter env.W.Env.kernel "walk_negative_hit" + counter env.W.Env.kernel "negative_created" > 0);
  let objs = get "objs" (S.readdir_path p "/src/obj") in
  Alcotest.(check int) "object files" (List.length m.W.Tree_gen.files) (List.length objs)

let test_make_parallel_matches_serial () =
  let run jobs =
    let env = W.Env.ram Config.optimized in
    let p = env.W.Env.proc in
    let m = W.Tree_gen.build p ~root:"/src" (W.Tree_gen.source_tree ~scale:0.2 ()) in
    let menv = W.Apps.make_setup p ~root:"/src" ~headers:10 ~seed:5 in
    (if jobs = 1 then ignore (W.Apps.make p ~manifest:m ~env:menv ~headers_per_file:4 ~seed:9)
     else ignore (W.Apps.make_parallel p ~manifest:m ~env:menv ~headers_per_file:4 ~seed:9 ~jobs));
    List.length (get "objs" (S.readdir_path p "/src/obj"))
  in
  Alcotest.(check int) "same object count" (run 1) (run 4)

let test_git_status_and_diff () =
  let env = W.Env.ram Config.optimized in
  let p = env.W.Env.proc in
  let m = W.Tree_gen.build p ~root:"/src" (W.Tree_gen.source_tree ~scale:0.2 ()) in
  W.Apps.git_setup p ~manifest:m;
  let st = W.Apps.git_status p ~manifest:m in
  Alcotest.(check int) "tracks all files" (List.length m.W.Tree_gen.files) st.W.Apps.examined;
  let diff = W.Apps.git_diff p ~manifest:m in
  Alcotest.(check bool) "diff read some content" true (diff.W.Apps.bytes >= st.W.Apps.bytes)

let test_maildir_ops () =
  let env = W.Env.ram Config.optimized in
  let p = env.W.Env.proc in
  let mbox = W.Maildir.setup p ~root:"/mail/inbox" ~messages:50 ~seed:3 in
  Alcotest.(check int) "messages" 50 (W.Maildir.message_count mbox);
  let scanned = W.Maildir.run_ops p mbox ~ops:20 ~seed:4 in
  Alcotest.(check int) "every op rescans the mailbox" (20 * 50) scanned;
  W.Maildir.deliver p mbox ~n:5;
  Alcotest.(check int) "delivered" 55 (W.Maildir.message_count mbox);
  let listing = get "cur" (S.readdir_path p "/mail/inbox/cur") in
  Alcotest.(check int) "cur/ contents" 55 (List.length listing)

let test_webserver_request () =
  let env = W.Env.ram Config.optimized in
  let p = env.W.Env.proc in
  W.Webserver.setup p ~dir:"/www" ~files:25;
  let size1 = W.Webserver.request p ~dir:"/www" in
  let size2 = W.Webserver.request p ~dir:"/www" in
  Alcotest.(check int) "deterministic page" size1 size2;
  Alcotest.(check bool) "lists all files" true (size1 > 25 * 20)

let test_lmbench_patterns_all_resolve () =
  List.iter
    (fun config ->
      let env = W.Env.ram config in
      let p = env.W.Env.proc in
      W.Lmbench.setup p;
      List.iter
        (fun pattern ->
          (* measure_ validates expected outcomes internally. *)
          ignore (W.Lmbench.measure_stat p pattern ~iters:3);
          ignore (W.Lmbench.measure_open p pattern ~iters:3))
        W.Lmbench.patterns)
    [ Config.baseline; Config.optimized ]

let test_disk_env_cold_cache_costs_io () =
  let env = W.Env.disk Config.optimized in
  let p = env.W.Env.proc in
  ignore (W.Tree_gen.build p ~root:"/t" (W.Tree_gen.source_tree ~scale:0.1 ()));
  (* Warm: no device time. *)
  let warm = W.Runner.run env (fun () -> ignore (W.Apps.du p ~root:"/t")) in
  Alcotest.(check int64) "warm run has no disk time" 0L warm.W.Runner.virt_ns;
  (* Cold: dropped caches force reads with simulated seek latency. *)
  W.Env.drop_caches env;
  let cold = W.Runner.run env (fun () -> ignore (W.Apps.du p ~root:"/t")) in
  Alcotest.(check bool) "cold run pays for the disk" true (cold.W.Runner.virt_ns > 1_000_000L)

let test_trace_deterministic_and_equivalent () =
  let build config =
    let env = W.Env.ram config in
    let p = env.W.Env.proc in
    let m = W.Tree_gen.build p ~root:"/src" (W.Tree_gen.source_tree ~scale:0.3 ()) in
    (p, m)
  in
  let p1, m1 = build Config.baseline in
  let p2, m2 = build Config.optimized in
  let t1 = W.Trace.generate ~manifest:m1 ~mix:W.Trace.metadata_heavy ~events:2000 ~locality:0.5 ~seed:9 in
  let t2 = W.Trace.generate ~manifest:m2 ~mix:W.Trace.metadata_heavy ~events:2000 ~locality:0.5 ~seed:9 in
  Alcotest.(check bool) "same trace from same seed" true (t1.W.Trace.events = t2.W.Trace.events);
  let o1 = W.Trace.replay p1 t1 in
  let o2 = W.Trace.replay p2 t2 in
  Alcotest.(check int) "same successes" o1.W.Trace.ok o2.W.Trace.ok;
  Alcotest.(check int) "same errors" o1.W.Trace.errors o2.W.Trace.errors;
  Alcotest.(check bool) "some mutations failed benignly or succeeded" true
    (o1.W.Trace.ok > 0)

let test_trace_lookup_fraction () =
  let env = W.Env.ram Config.baseline in
  let p = env.W.Env.proc in
  let m = W.Tree_gen.build p ~root:"/src" (W.Tree_gen.source_tree ~scale:0.2 ()) in
  let t = W.Trace.generate ~manifest:m ~mix:W.Trace.ibench_like ~events:5000 ~locality:0.3 ~seed:4 in
  let frac = float_of_int t.W.Trace.lookups /. 5000.0 in
  (* the paper's iBench observation: 10-20% of syscalls do a path lookup *)
  Alcotest.(check bool) "10-20% lookups" true (frac > 0.08 && frac < 0.25)

let suite =
  [
    Alcotest.test_case "tree_gen deterministic" `Quick test_tree_gen_deterministic;
    Alcotest.test_case "find agrees across kernels" `Quick test_find_agrees;
    Alcotest.test_case "du agrees across kernels" `Quick test_du_agrees;
    Alcotest.test_case "updatedb agrees across kernels" `Quick test_updatedb_agrees;
    Alcotest.test_case "tar extract / rm -r roundtrip" `Quick test_tar_then_rm_roundtrip;
    Alcotest.test_case "make produces objects + negatives" `Quick
      test_make_produces_objects_and_negatives;
    Alcotest.test_case "make -j matches serial" `Slow test_make_parallel_matches_serial;
    Alcotest.test_case "git status/diff" `Quick test_git_status_and_diff;
    Alcotest.test_case "maildir operations" `Quick test_maildir_ops;
    Alcotest.test_case "webserver request" `Quick test_webserver_request;
    Alcotest.test_case "lmbench patterns resolve" `Quick test_lmbench_patterns_all_resolve;
    Alcotest.test_case "disk env: cold cache pays IO" `Quick test_disk_env_cold_cache_costs_io;
    Alcotest.test_case "trace: deterministic + kernel-equivalent" `Quick
      test_trace_deterministic_and_equivalent;
    Alcotest.test_case "trace: ibench lookup fraction" `Quick test_trace_lookup_fraction;
  ]
