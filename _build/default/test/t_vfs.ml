(* VFS semantics: permissions, symlinks, dot-dot, mounts, namespaces,
   negative dentries, directory references.  Every test runs on both the
   baseline and the optimized kernel — the optimizations must be invisible
   at the API. *)

open Dcache_types
open Kit
module Mode = Dcache_types.Mode

let setup config =
  let kernel, root_proc = ram_kernel ~config () in
  get "mkdir" (S.mkdir_p root_proc "/home/alice/docs");
  get "write" (S.write_file root_proc "/home/alice/docs/file.txt" "contents");
  get "chown /home/alice" (S.chown root_proc "/home/alice" ~uid:1000 ~gid:1000);
  get "chown docs" (S.chown root_proc "/home/alice/docs" ~uid:1000 ~gid:1000);
  get "chown file" (S.chown root_proc "/home/alice/docs/file.txt" ~uid:1000 ~gid:1000);
  (kernel, root_proc)

let suite =
  tc_both "stat resolves nested path" (fun config ->
      let _, p = setup config in
      let attr = get "stat" (S.stat p "/home/alice/docs/file.txt") in
      Alcotest.(check int) "size" 8 attr.Attr.size;
      Alcotest.(check bool) "kind" true (File_kind.equal attr.Attr.kind File_kind.Regular))
  @ tc_both "path variations canonicalize" (fun config ->
        let _, p = setup config in
        let ino path = (get path (S.stat p path)).Attr.ino in
        let base = ino "/home/alice/docs/file.txt" in
        Alcotest.(check int) "dot" base (ino "/home/./alice/docs/file.txt");
        Alcotest.(check int) "double slash" base (ino "//home//alice//docs//file.txt");
        Alcotest.(check int) "dotdot" base (ino "/home/alice/../alice/docs/file.txt"))
  @ tc_both "trailing slash requires a directory" (fun config ->
        let _, p = setup config in
        ignore (get "dir ok" (S.stat p "/home/alice/docs/"));
        expect_err Errno.ENOTDIR "file with slash" (S.stat p "/home/alice/docs/file.txt/"))
  @ tc_both "intermediate file is ENOTDIR" (fun config ->
        let _, p = setup config in
        expect_err Errno.ENOTDIR "under file" (S.stat p "/home/alice/docs/file.txt/deeper");
        expect_err Errno.ENOTDIR "repeat (cached)" (S.stat p "/home/alice/docs/file.txt/deeper"))
  @ tc_both "missing intermediate is ENOENT" (fun config ->
        let _, p = setup config in
        expect_err Errno.ENOENT "missing mid" (S.stat p "/home/ghost/docs/file.txt");
        expect_err Errno.ENOENT "repeat (cached)" (S.stat p "/home/ghost/docs/file.txt"))
  @ tc_both "search permission enforced per component" (fun config ->
        let kernel, root_p = setup config in
        let alice_p = Proc.spawn ~cred:(alice ()) kernel in
        let bob_p = Proc.spawn ~cred:(bob ()) kernel in
        ignore (get "alice reads" (S.stat alice_p "/home/alice/docs/file.txt"));
        get "lock down" (S.chmod root_p "/home/alice" 0o700);
        ignore (get "alice still owner" (S.stat alice_p "/home/alice/docs/file.txt"));
        expect_err Errno.EACCES "bob blocked" (S.stat bob_p "/home/alice/docs/file.txt");
        expect_err Errno.EACCES "bob blocked again" (S.stat bob_p "/home/alice/docs/file.txt");
        ignore kernel)
  @ tc_both "chmod invalidates cached permission" (fun config ->
        let kernel, root_p = setup config in
        let alice_p = Proc.spawn ~cred:(alice ()) kernel in
        (* Warm alice's caches, then revoke and verify the change bites. *)
        ignore (get "warm" (S.stat alice_p "/home/alice/docs/file.txt"));
        ignore (get "warm2" (S.stat alice_p "/home/alice/docs/file.txt"));
        get "revoke" (S.chmod root_p "/home/alice/docs" 0o000);
        expect_err Errno.EACCES "revoked" (S.stat alice_p "/home/alice/docs/file.txt");
        get "restore" (S.chmod root_p "/home/alice/docs" 0o755);
        ignore (get "restored" (S.stat alice_p "/home/alice/docs/file.txt")))
  @ tc_both "chown invalidates cached permission" (fun config ->
        let kernel, root_p = setup config in
        let alice_p = Proc.spawn ~cred:(alice ()) kernel in
        get "make private" (S.chmod root_p "/home/alice/docs" 0o700);
        ignore (get "owner ok" (S.stat alice_p "/home/alice/docs/file.txt"));
        get "steal" (S.chown root_p "/home/alice/docs" ~uid:0 ~gid:0);
        expect_err Errno.EACCES "no longer owner" (S.stat alice_p "/home/alice/docs/file.txt"))
  @ tc_both "negative dentries answer repeats" (fun config ->
        let kernel, p = setup config in
        expect_err Errno.ENOENT "first" (S.stat p "/home/alice/docs/nope");
        let misses_before = counter kernel "dcache_miss" in
        expect_err Errno.ENOENT "second" (S.stat p "/home/alice/docs/nope");
        Alcotest.(check int) "no new fs miss" misses_before (counter kernel "dcache_miss"))
  @ tc_both "file creation kills the negative dentry" (fun config ->
        let _, p = setup config in
        expect_err Errno.ENOENT "miss" (S.stat p "/home/alice/newfile");
        get "create" (S.write_file p "/home/alice/newfile" "x");
        let attr = get "now exists" (S.stat p "/home/alice/newfile") in
        Alcotest.(check int) "size" 1 attr.Attr.size)
  @ tc_both "symlinks resolve and lstat does not follow" (fun config ->
        let _, p = setup config in
        get "ln" (S.symlink p ~target:"/home/alice/docs" "/dlink");
        let through = get "through" (S.stat p "/dlink/file.txt") in
        let direct = get "direct" (S.stat p "/home/alice/docs/file.txt") in
        Alcotest.(check int) "same inode" direct.Attr.ino through.Attr.ino;
        let l = get "lstat" (S.lstat p "/dlink") in
        Alcotest.(check bool) "lstat sees link" true
          (File_kind.equal l.Attr.kind File_kind.Symlink);
        let followed = get "stat link" (S.stat p "/dlink") in
        Alcotest.(check bool) "stat follows" true
          (File_kind.equal followed.Attr.kind File_kind.Directory))
  @ tc_both "relative symlink targets" (fun config ->
        let _, p = setup config in
        get "ln" (S.symlink p ~target:"docs/file.txt" "/home/alice/shortcut");
        let a = get "via shortcut" (S.stat p "/home/alice/shortcut") in
        Alcotest.(check int) "size" 8 a.Attr.size)
  @ tc_both "symlink loops are ELOOP" (fun config ->
        let _, p = setup config in
        get "a->b" (S.symlink p ~target:"/loopb" "/loopa");
        get "b->a" (S.symlink p ~target:"/loopa" "/loopb");
        expect_err Errno.ELOOP "loop" (S.stat p "/loopa/whatever");
        expect_err Errno.ELOOP "trailing loop" (S.stat p "/loopa"))
  @ tc_both "dangling symlink is ENOENT but lstat works" (fun config ->
        let _, p = setup config in
        get "ln" (S.symlink p ~target:"/nowhere/at/all" "/dangle");
        expect_err Errno.ENOENT "follow" (S.stat p "/dangle");
        ignore (get "lstat" (S.lstat p "/dangle"));
        Alcotest.(check string) "readlink" "/nowhere/at/all" (get "rl" (S.readlink p "/dangle")))
  @ tc_both "dot-dot stops at root" (fun config ->
        let _, p = setup config in
        let root_ino = (get "root" (S.stat p "/")).Attr.ino in
        let esc = (get "escape" (S.stat p "/../../..")).Attr.ino in
        Alcotest.(check int) "clamped to root" root_ino esc)
  @ tc_both "chroot confines and blocks dot-dot escape" (fun config ->
        let kernel, p = setup config in
        get "jail" (S.mkdir_p p "/jail/inner");
        get "file" (S.write_file p "/jail/inner/f" "jailed");
        let jailed = Proc.fork p in
        get "chroot" (S.chroot jailed "/jail");
        let attr = get "stat inside" (S.stat jailed "/inner/f") in
        Alcotest.(check int) "size" 6 attr.Attr.size;
        expect_err Errno.ENOENT "outside invisible" (S.stat jailed "/home/alice/docs/file.txt");
        let jail_root = (get "root" (S.stat jailed "/")).Attr.ino in
        Alcotest.(check int) "dotdot clamped"
          jail_root
          (get "escape" (S.stat jailed "/inner/../..")).Attr.ino;
        ignore kernel)
  @ tc_both "directory references survive ancestor revocation" (fun config ->
        (* cd into a directory, then remove search permission on the parent:
           relative access keeps working, absolute re-resolution fails. *)
        let kernel, root_p = setup config in
        let alice_p = Proc.spawn ~cred:(alice ()) kernel in
        get "cd" (S.chdir alice_p "/home/alice/docs");
        ignore (get "warm" (S.stat alice_p "file.txt"));
        get "revoke" (S.chmod root_p "/home/alice" 0o000);
        ignore (get "relative still works" (S.stat alice_p "file.txt"));
        expect_err Errno.EACCES "absolute blocked"
          (S.stat alice_p "/home/alice/docs/file.txt"))
  @ tc_both "mount eclipses and umount restores" (fun config ->
        let kernel, p = setup config in
        get "mnt" (S.mkdir_p p "/mnt/data");
        get "marker" (S.write_file p "/mnt/data/under" "below");
        let other = Dcache_fs.Ramfs.create () in
        get "mount" (S.mount_fs p other "/mnt/data");
        expect_err Errno.ENOENT "eclipsed" (S.stat p "/mnt/data/under");
        get "new file" (S.write_file p "/mnt/data/above" "on top");
        ignore (get "visible" (S.stat p "/mnt/data/above"));
        get "umount" (S.umount p "/mnt/data");
        ignore (get "restored" (S.stat p "/mnt/data/under"));
        expect_err Errno.ENOENT "overlay gone" (S.stat p "/mnt/data/above");
        ignore kernel)
  @ tc_both "read-only mounts refuse writes" (fun config ->
        let _, p = setup config in
        get "mnt" (S.mkdir_p p "/mnt/ro");
        let other = Dcache_fs.Ramfs.create () in
        get "mount ro" (S.mount_fs ~readonly:true p other "/mnt/ro");
        expect_err Errno.EROFS "create" (S.write_file p "/mnt/ro/f" "x");
        expect_err Errno.EROFS "mkdir" (S.mkdir p "/mnt/ro/d"))
  @ tc_both "umount busy with nested mount" (fun config ->
        let _, p = setup config in
        get "a" (S.mkdir_p p "/m/a");
        let fs1 = Dcache_fs.Ramfs.create () in
        get "mount outer" (S.mount_fs p fs1 "/m/a");
        get "inner dir" (S.mkdir_p p "/m/a/b");
        let fs2 = Dcache_fs.Ramfs.create () in
        get "mount inner" (S.mount_fs p fs2 "/m/a/b");
        expect_err Errno.EBUSY "outer busy" (S.umount p "/m/a");
        get "umount inner" (S.umount p "/m/a/b");
        get "umount outer" (S.umount p "/m/a"))
  @ tc_both "bind mounts alias the same files" (fun config ->
        let _, p = setup config in
        get "dst" (S.mkdir_p p "/bindpoint");
        get "bind" (S.bind_mount p ~src:"/home/alice/docs" ~dst:"/bindpoint");
        let a = get "via bind" (S.stat p "/bindpoint/file.txt") in
        let b = get "direct" (S.stat p "/home/alice/docs/file.txt") in
        Alcotest.(check int) "same ino" b.Attr.ino a.Attr.ino;
        (* Writes through one alias are visible through the other. *)
        get "write via bind" (S.write_file p "/bindpoint/both.txt" "shared!");
        Alcotest.(check string) "read via original" "shared!"
          (get "read" (S.read_file p "/home/alice/docs/both.txt")))
  @ tc_both "mount namespaces isolate mounts" (fun config ->
        let kernel, p = setup config in
        get "mnt" (S.mkdir_p p "/private");
        let child = Proc.fork p in
        get "unshare" (S.unshare_mount_ns child);
        let fs = Dcache_fs.Ramfs.create () in
        get "mount in child ns" (S.mount_fs child fs "/private");
        get "child writes" (S.write_file child "/private/secret" "ns-private");
        (* The parent namespace must not see the mount. *)
        expect_err Errno.ENOENT "parent blind" (S.stat p "/private/secret");
        ignore (get "child sees" (S.stat child "/private/secret"));
        ignore kernel)
  @ tc_both "rename directory updates paths" (fun config ->
        let _, p = setup config in
        get "mk" (S.mkdir_p p "/top/inner");
        get "f" (S.write_file p "/top/inner/f" "move me");
        get "rename" (S.rename p "/top/inner" "/top/renamed");
        expect_err Errno.ENOENT "old path" (S.stat p "/top/inner/f");
        Alcotest.(check string) "new path content" "move me"
          (get "read" (S.read_file p "/top/renamed/f")))
  @ tc_both "rename into own subtree is EINVAL" (fun config ->
        let _, p = setup config in
        get "mk" (S.mkdir_p p "/r/a/b");
        expect_err Errno.EINVAL "cycle" (S.rename p "/r/a" "/r/a/b/c"))
  @ tc_both "rename onto the same path is a no-op" (fun config ->
        (* regression: this used to leak a hash-table entry by unhashing and
           re-inserting the same dentry *)
        let kernel, p = ram_kernel ~config () in
        get "f" (S.write_file p "/samefile" "keep");
        get "warm" (S.chdir p "/");
        get "rename" (S.rename p "samefile" "/samefile");
        Alcotest.(check string) "intact" "keep" (get "read" (S.read_file p "/samefile"));
        Alcotest.(check (list string)) "dcache invariants hold" []
          (Dcache_vfs.Dcache.self_check (Kernel.dcache kernel)))
  @ tc_both "rename onto hard link of itself is a no-op" (fun config ->
        let _, p = setup config in
        get "f" (S.write_file p "/one" "same");
        get "link" (S.link p "/one" "/two");
        get "rename" (S.rename p "/one" "/two");
        (* POSIX: both names remain *)
        ignore (get "one" (S.stat p "/one"));
        ignore (get "two" (S.stat p "/two")))
  @ tc_both "hard links share inode through VFS" (fun config ->
        let _, p = setup config in
        get "f" (S.write_file p "/orig" "data");
        get "ln" (S.link p "/orig" "/alias");
        let a = get "a" (S.stat p "/orig") in
        let b = get "b" (S.stat p "/alias") in
        Alcotest.(check int) "ino" a.Attr.ino b.Attr.ino;
        Alcotest.(check int) "nlink" 2 b.Attr.nlink;
        get "unlink orig" (S.unlink p "/orig");
        Alcotest.(check string) "alias still reads" "data" (get "read" (S.read_file p "/alias")))
  @ tc_both "unlinked but open file keeps working" (fun config ->
        let _, p = setup config in
        get "f" (S.write_file p "/tmpfile" "still here");
        let fd = get "open" (S.openf p "/tmpfile" [ Proc.O_RDONLY ]) in
        get "unlink" (S.unlink p "/tmpfile");
        expect_err Errno.ENOENT "path gone" (S.stat p "/tmpfile");
        Alcotest.(check string) "fd reads" "still here"
          (get "pread" (S.pread p fd ~off:0 ~len:100));
        get "close" (S.close p fd))
  @ tc_both "recycled inode numbers do not resurrect stale inodes" (fun config ->
        (* extfs reuses freed inode slots; the VFS inode cache must not hand
           back the dead directory's attributes for a new file. *)
        let clock = Dcache_util.Vclock.create () in
        let device = Dcache_storage.Blockdev.create clock in
        let cache = Dcache_storage.Pagecache.create device in
        let fs = Dcache_fs.Extfs.mkfs_and_mount cache in
        let kernel = Kernel.create ~config ~root_fs:fs () in
        let p = Proc.spawn kernel in
        get "dir" (S.mkdir_p p "/olddir/sub");
        ignore (get "warm" (S.stat p "/olddir/sub"));
        get "rm sub" (S.rmdir p "/olddir/sub");
        get "rm" (S.rmdir p "/olddir");
        get "newfile" (S.write_file p "/newfile" "fresh");
        let attr = get "stat" (S.stat p "/newfile") in
        Alcotest.(check bool) "a regular file, not a zombie directory" true
          (File_kind.equal attr.Attr.kind File_kind.Regular);
        Alcotest.(check string) "content" "fresh" (get "read" (S.read_file p "/newfile")))
  @ tc_both "pseudo fs mounts and reads" (fun config ->
        let _, p = setup config in
        let pseudo = Dcache_fs.Pseudofs.create () in
        get "meminfo"
          (Dcache_fs.Pseudofs.add_file pseudo "/meminfo" ~content:(fun () -> "MemTotal: 64G"));
        get "proc dir" (S.mkdir_p p "/proc");
        get "mount proc" (S.mount_fs p (Dcache_fs.Pseudofs.fs pseudo) "/proc");
        Alcotest.(check string) "read" "MemTotal: 64G" (get "read" (S.read_file p "/proc/meminfo"));
        expect_err Errno.ENOENT "missing proc entry" (S.stat p "/proc/nonexistent");
        expect_err Errno.ENOENT "missing again" (S.stat p "/proc/nonexistent"))

(* --- Path string handling --- *)

module Path = Dcache_vfs.Path

let path_suite =
  [
    Alcotest.test_case "path split basics" `Quick (fun () ->
        let comps path =
          match Path.split path with
          | Ok comps ->
            List.map
              (function Path.Name n -> n | Path.Cur -> "." | Path.Up -> "..")
              comps
          | Error e -> [ "ERR:" ^ Errno.to_string e ]
        in
        Alcotest.(check (list string)) "plain" [ "a"; "b" ] (comps "/a/b");
        Alcotest.(check (list string)) "relative" [ "a"; "b" ] (comps "a/b");
        Alcotest.(check (list string)) "dup slashes" [ "a"; "b" ] (comps "//a///b//");
        Alcotest.(check (list string)) "dots kept" [ "."; "a"; ".." ] (comps "./a/..");
        Alcotest.(check (list string)) "root" [] (comps "/");
        Alcotest.(check (list string)) "empty is ENOENT" [ "ERR:ENOENT" ] (comps "");
        Alcotest.(check (list string)) "long name"
          [ "ERR:ENAMETOOLONG" ]
          (comps ("/" ^ String.make 300 'x'));
        Alcotest.(check (list string)) "long path"
          [ "ERR:ENAMETOOLONG" ]
          (comps (String.concat "/" (List.init 900 (fun _ -> "abcde")))))  ;
    Alcotest.test_case "lexical normalize" `Quick (fun () ->
        let norm path =
          match Path.split path with
          | Ok comps ->
            Path.lexical_normalize comps
            |> List.map (function Path.Name n -> n | Path.Cur -> "." | Path.Up -> "..")
          | Error _ -> [ "ERR" ]
        in
        Alcotest.(check (list string)) "a/b/../c" [ "a"; "c" ] (norm "a/b/../c");
        Alcotest.(check (list string)) "leading up kept" [ ".."; "x" ] (norm "../x");
        Alcotest.(check (list string)) "collapse all" [] (norm "a/b/../..");
        Alcotest.(check (list string)) "dots dropped" [ "a" ] (norm "./a/.");
        Alcotest.(check (list string)) "deep" [ "a"; "d" ] (norm "a/b/c/../../d"));
    Alcotest.test_case "join" `Quick (fun () ->
        Alcotest.(check string) "simple" "/a/b" (Path.join "/a" "b");
        Alcotest.(check string) "trailing slash" "/a/b" (Path.join "/a/" "b");
        Alcotest.(check string) "absolute wins" "/x" (Path.join "/a" "/x"));
    Alcotest.test_case "fs_overhead charges the virtual clock" `Quick (fun () ->
        let clock = Dcache_util.Vclock.create () in
        let fs =
          Dcache_fs.Fs_overhead.wrap ~clock
            ~costs:
              { Dcache_fs.Fs_overhead.lookup_ns = 100; getattr_ns = 10;
                readdir_base_ns = 50; readdir_entry_ns = 5; mutate_ns = 200;
                readlink_ns = 7 }
            (Dcache_fs.Ramfs.create ())
        in
        ignore (fs.Dcache_fs.Fs_intf.lookup fs.Dcache_fs.Fs_intf.root_ino "missing");
        Alcotest.(check int64) "lookup charged" 100L (Dcache_util.Vclock.elapsed_ns clock);
        ignore
          (fs.Dcache_fs.Fs_intf.create fs.Dcache_fs.Fs_intf.root_ino "a"
             File_kind.Regular 0o644 ~uid:0 ~gid:0);
        ignore
          (fs.Dcache_fs.Fs_intf.create fs.Dcache_fs.Fs_intf.root_ino "b"
             File_kind.Regular 0o644 ~uid:0 ~gid:0);
        ignore (fs.Dcache_fs.Fs_intf.readdir fs.Dcache_fs.Fs_intf.root_ino);
        (* 100 + 200 + 200 + 50 + 2*5 *)
        Alcotest.(check int64) "accumulated" 560L (Dcache_util.Vclock.elapsed_ns clock));
  ]
