(* The DLFS-style on-disk path-hash comparator (paper §7). *)

open Dcache_types
module Dlfs = Dcache_fs.Dlfs
module Pagecache = Dcache_storage.Pagecache
module Blockdev = Dcache_storage.Blockdev
module Vclock = Dcache_util.Vclock

let errno = Alcotest.testable (Fmt.of_to_string Errno.to_string) ( = )

let get what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" what (Errno.to_string e)

let expect_err expected what = function
  | Ok _ -> Alcotest.failf "%s: expected %s" what (Errno.to_string expected)
  | Error e -> Alcotest.check errno what expected e

let make () =
  let clock = Vclock.create () in
  let cache = Pagecache.create ~capacity_pages:16384 (Blockdev.create clock) in
  (Dlfs.mkfs_and_mount cache, cache, clock)

let test_create_lookup () =
  let t, _, _ = make () in
  get "mkdir a" (Dlfs.create t "/a" File_kind.Directory);
  get "mkdir a/b" (Dlfs.create t "/a/b" File_kind.Directory);
  get "file" (Dlfs.create t "/a/b/f" File_kind.Regular);
  let e = get "lookup" (Dlfs.lookup t "/a/b/f") in
  Alcotest.(check bool) "regular" true (File_kind.equal e.Dlfs.kind File_kind.Regular);
  Alcotest.(check string) "canonical path" "a/b/f" e.Dlfs.path;
  (* path variations normalize *)
  ignore (get "dots" (Dlfs.lookup t "//a/./b//f"));
  expect_err Errno.ENOENT "missing" (Dlfs.lookup t "/a/b/ghost");
  expect_err Errno.ENOENT "no parent" (Dlfs.create t "/nodir/child" File_kind.Regular);
  expect_err Errno.EEXIST "dup" (Dlfs.create t "/a/b/f" File_kind.Regular);
  expect_err Errno.ENOTDIR "under file" (Dlfs.create t "/a/b/f/x" File_kind.Regular)

let test_remove_and_readdir () =
  let t, _, _ = make () in
  get "a" (Dlfs.create t "/a" File_kind.Directory);
  get "x" (Dlfs.create t "/a/x" File_kind.Regular);
  get "y" (Dlfs.create t "/a/y" File_kind.Regular);
  Alcotest.(check (list string)) "listing" [ "x"; "y" ] (get "readdir" (Dlfs.readdir t "/a"));
  expect_err Errno.ENOTEMPTY "non-empty" (Dlfs.remove t "/a");
  get "rm x" (Dlfs.remove t "/a/x");
  get "rm y" (Dlfs.remove t "/a/y");
  get "rm a" (Dlfs.remove t "/a");
  expect_err Errno.ENOENT "gone" (Dlfs.lookup t "/a")

let build_tree t ~breadth ~depth =
  let count = ref 0 in
  let rec fill prefix level =
    for i = 0 to breadth - 1 do
      let dir = Printf.sprintf "%s/d%d" prefix i in
      get "mkdir" (Dlfs.create t dir File_kind.Directory);
      incr count;
      get "file" (Dlfs.create t (dir ^ "/leaf") File_kind.Regular);
      incr count;
      if level > 1 then fill dir (level - 1)
    done
  in
  get "root dir" (Dlfs.create t "/tree" File_kind.Directory);
  fill "/tree" depth;
  !count + 1

let test_rename_rehashes_subtree () =
  let t, _, clock = make () in
  let records = build_tree t ~breadth:3 ~depth:3 in
  Vclock.reset clock;
  let rewritten = get "rename" (Dlfs.rename_dir t "/tree" "/moved") in
  Alcotest.(check int) "every record rewritten" records rewritten;
  Alcotest.(check bool) "disk time charged" true (Vclock.elapsed_ns clock > 0L);
  expect_err Errno.ENOENT "old root gone" (Dlfs.lookup t "/tree/d0/leaf");
  let e = get "new path" (Dlfs.lookup t "/moved/d1/d2/leaf") in
  Alcotest.(check bool) "still a file" true (File_kind.equal e.Dlfs.kind File_kind.Regular);
  Alcotest.(check int) "record count stable" (records + 1) (Dlfs.record_count t)

let test_persistence () =
  let clock = Vclock.create () in
  let cache = Pagecache.create ~capacity_pages:16384 (Blockdev.create clock) in
  let t = Dlfs.mkfs_and_mount cache in
  get "d" (Dlfs.create t "/persist" File_kind.Directory);
  get "f" (Dlfs.create t "/persist/file" File_kind.Regular);
  Pagecache.flush cache;
  let t2 = get "remount" (Dlfs.mount cache) in
  ignore (get "found" (Dlfs.lookup t2 "/persist/file"));
  Alcotest.(check int) "records survive" (Dlfs.record_count t) (Dlfs.record_count t2)

let test_lookup_io_is_constant () =
  (* The whole point of DLFS: lookup cost does not grow with depth. *)
  let t, cache, _ = make () in
  let rec deep prefix n =
    if n > 0 then begin
      let dir = prefix ^ "/lvl" in
      get "mkdir" (Dlfs.create t dir File_kind.Directory);
      deep dir (n - 1)
    end
  in
  get "top" (Dlfs.create t "/deep" File_kind.Directory);
  deep "/deep" 16;
  let path = "/deep" ^ String.concat "" (List.init 16 (fun _ -> "/lvl")) in
  ignore (get "warm" (Dlfs.lookup t path));
  Pagecache.reset_stats cache;
  ignore (get "lookup" (Dlfs.lookup t path));
  let accesses = Pagecache.hits cache + Pagecache.misses cache in
  Alcotest.(check bool) "constant accesses (<= 4)" true (accesses <= 4)

let suite =
  [
    Alcotest.test_case "create and lookup" `Quick test_create_lookup;
    Alcotest.test_case "remove and readdir" `Quick test_remove_and_readdir;
    Alcotest.test_case "rename rehashes the whole subtree" `Quick test_rename_rehashes_subtree;
    Alcotest.test_case "persistence across remount" `Quick test_persistence;
    Alcotest.test_case "lookup I/O independent of depth" `Quick test_lookup_io_is_constant;
  ]
