test/kit.ml: Alcotest Dcache_cred Dcache_fs Dcache_syscalls Dcache_types Dcache_vfs Errno Fmt Hashtbl List String
