test/t_concurrency.ml: Alcotest Atomic Config Dcache_types Dcache_vfs Domain Kit List Printf Proc S String
