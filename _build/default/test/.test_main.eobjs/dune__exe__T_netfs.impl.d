test/t_netfs.ml: Alcotest Attr Config Dcache_fs Dcache_types Dcache_util Errno File_kind Int64 Kernel Kit Proc S
