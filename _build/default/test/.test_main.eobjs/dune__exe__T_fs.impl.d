test/t_fs.ml: Alcotest Array Attr Buffer Bytes Char Dcache_fs Dcache_storage Dcache_types Dcache_util Errno File_kind Fmt List Mode Printf QCheck QCheck_alcotest Result String
