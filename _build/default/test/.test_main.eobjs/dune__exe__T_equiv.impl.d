test/t_equiv.ml: Access Array Attr Dcache_cred Dcache_fs Dcache_syscalls Dcache_types Dcache_vfs Errno File_kind List Printf QCheck QCheck_alcotest Result String
