test/t_syscalls.ml: Access Alcotest Attr Config Cred Dcache_cred Dcache_fs Dcache_syscalls Dcache_types Dcache_util Errno Hashtbl Kit List Printf Proc S String
