test/test_main.ml: Alcotest T_concurrency T_core T_cred T_dlfs T_equiv T_fs T_netfs T_sig T_storage T_syscalls T_util T_vfs T_workloads
