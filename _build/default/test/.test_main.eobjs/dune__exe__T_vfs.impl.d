test/t_vfs.ml: Alcotest Attr Dcache_fs Dcache_storage Dcache_types Dcache_util Dcache_vfs Errno File_kind Kernel Kit List Proc S String
