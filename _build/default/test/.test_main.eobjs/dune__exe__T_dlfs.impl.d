test/t_dlfs.ml: Alcotest Dcache_fs Dcache_storage Dcache_types Dcache_util Errno File_kind Fmt List Printf String
