test/t_sig.ml: Alcotest Char Dcache_sig Hashtbl List Printf QCheck QCheck_alcotest String
