test/t_storage.ml: Alcotest Array Bytes Char Dcache_storage Dcache_util Int64 List QCheck QCheck_alcotest String
