test/t_workloads.ml: Alcotest Config Dcache_fs Dcache_types Dcache_workloads Kit List S
