test/t_util.ml: Alcotest Array Atomic Dcache_util Dlist Domain List Prng QCheck QCheck_alcotest Rwlock Seqcount Stats String Sys Vclock
