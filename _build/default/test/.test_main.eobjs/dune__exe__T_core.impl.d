test/t_core.ml: Alcotest Attr Config Dcache_core Dcache_cred Dcache_fs Dcache_types Dcache_vfs Errno File_kind Kernel Kit List Printf Proc S
