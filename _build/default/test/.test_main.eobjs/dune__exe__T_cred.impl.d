test/t_cred.ml: Access Alcotest Attr Config Dcache_cred Dcache_syscalls Dcache_types Errno File_kind Kit S
