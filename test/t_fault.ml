(* Fault injection: the storage and network stacks under failing disks,
   crashed volumes and lossy RPCs — and the cache degrading honestly.

   The PRNG seed for every schedule comes from DCACHE_FAULT_SEED (default
   1); CI runs the suite under two fixed seeds.  Determinism means any
   failure replays exactly. *)

open Dcache_types
open Dcache_vfs.Types
open Kit
module Fault = Dcache_util.Fault
module Prng = Dcache_util.Prng
module Vclock = Dcache_util.Vclock
module Blockdev = Dcache_storage.Blockdev
module Pagecache = Dcache_storage.Pagecache
module Extfs = Dcache_fs.Extfs
module Extfs_fsck = Dcache_fs.Extfs_fsck
module Netfs = Dcache_fs.Netfs
module Fs_intf = Dcache_fs.Fs_intf
module Dcache = Dcache_vfs.Dcache
module Dlht = Dcache_core.Dlht
module Fastpath = Dcache_core.Fastpath

let seed =
  match Option.bind (Sys.getenv_opt "DCACHE_FAULT_SEED") int_of_string_opt with
  | Some s -> s
  | None -> 1

(* List.init does not promise evaluation order; fault schedules care. *)
let rec fire_seq site n =
  if n = 0 then []
  else begin
    let x = Fault.fire site in
    x :: fire_seq site (n - 1)
  end

(* --- the fault registry itself --- *)

let test_schedules () =
  let inj = Fault.create ~seed:42 () in
  let nth = Fault.site inj "t.nth" in
  Fault.arm nth (Fault.Nth 3);
  Alcotest.(check (list bool))
    "Nth 3 fires exactly once, then disarms"
    [ false; false; true; false; false; false ]
    (fire_seq nth 6);
  Alcotest.(check int) "one injection" 1 (Fault.injected nth);
  Alcotest.(check int) "six arrivals" 6 (Fault.arrivals nth);
  let w = Fault.site inj "t.window" in
  ignore (Fault.fire w);
  (* arrivals before arming don't count against the window *)
  Fault.arm w (Fault.Window { first = 2; last = 3 });
  Alcotest.(check (list bool))
    "window covers arrivals 2..3 after arming"
    [ false; true; true; false ]
    (fire_seq w 4);
  (* probabilistic schedules replay exactly from the injector seed *)
  let a = Fault.site (Fault.create ~seed:7 ()) "t.p" in
  let b = Fault.site (Fault.create ~seed:7 ()) "t.p" in
  Fault.arm a (Fault.Probability 0.3);
  Fault.arm b (Fault.Probability 0.3);
  Alcotest.(check (list bool)) "same seed, same stream" (fire_seq a 100) (fire_seq b 100);
  let rate = Fault.injected a in
  Alcotest.(check bool) "rate is roughly 0.3" true (rate > 10 && rate < 55);
  (* malformed schedules are rejected *)
  List.iter
    (fun s ->
      match Fault.arm nth s with
      | () -> Alcotest.fail "malformed schedule accepted"
      | exception Invalid_argument _ -> ())
    [ Fault.Nth 0; Fault.Probability 1.5; Fault.Window { first = 0; last = 3 } ]

let test_disarmed_fire_is_free () =
  let inj = Fault.create ~seed () in
  let site = Fault.site inj "t.cold" in
  let before = Gc.minor_words () in
  let after0 = Gc.minor_words () in
  let self = after0 -. before in
  for _ = 1 to 10_000 do
    ignore (Fault.fire site)
  done;
  let after = Gc.minor_words () in
  Alcotest.(check (float 0.0)) "disarmed fire allocates nothing" 0.0 (after -. after0 -. self);
  Alcotest.(check int) "but still counts arrivals" 10_000 (Fault.arrivals site)

(* --- block device --- *)

let bs = Blockdev.default_config.Blockdev.block_size

let test_blockdev_faults () =
  let inj = Fault.create ~seed () in
  let dev = Blockdev.create ~faults:inj (Vclock.create ()) in
  let block_a = Bytes.make bs 'A' in
  Blockdev.write_block dev 5 block_a;
  Fault.arm (Fault.site inj "blockdev.read_eio") (Fault.Nth 1);
  (match Blockdev.read_block_result dev 5 with
  | Error Errno.EIO -> ()
  | Ok _ -> Alcotest.fail "injected read fault not observed"
  | Error e -> Alcotest.failf "unexpected %s" (Errno.to_string e));
  Alcotest.(check int) "read error counted" 1 (Blockdev.read_errors dev);
  Alcotest.(check bytes) "fault was transient" block_a
    (get "re-read" (Blockdev.read_block_result dev 5));
  Fault.arm (Fault.site inj "blockdev.write_eio") (Fault.Nth 1);
  expect_err Errno.EIO "injected write fault" (Blockdev.write_block_result dev 7 block_a);
  Alcotest.(check int) "write error counted" 1 (Blockdev.write_errors dev);
  get "write after fault" (Blockdev.write_block_result dev 7 block_a);
  (* torn write: silently persists only a sector-aligned prefix *)
  let block_b = Bytes.make bs 'B' in
  Fault.arm (Fault.site inj "blockdev.torn_write") (Fault.Nth 1);
  Blockdev.write_block dev 6 block_b;
  let back = Blockdev.read_block dev 6 in
  Alcotest.(check bool) "write was torn" false (Bytes.equal back block_b);
  let torn_at = ref bs in
  Bytes.iteri
    (fun i c ->
      if c <> 'B' && !torn_at = bs then torn_at := i;
      if i >= !torn_at then
        Alcotest.(check char) (Printf.sprintf "tail keeps old byte %d" i) '\000' c)
    back;
  Alcotest.(check int) "tear is sector-aligned" 0 (!torn_at mod 512);
  (* bit flip: one bit of one read's copy, then clean again *)
  Fault.arm (Fault.site inj "blockdev.read_bitflip") (Fault.Nth 1);
  let flipped = Blockdev.read_block dev 5 in
  let diff_bits = ref 0 in
  Bytes.iteri
    (fun i c ->
      let x = Char.code c lxor Char.code (Bytes.get block_a i) in
      let rec popcount v = if v = 0 then 0 else (v land 1) + popcount (v lsr 1) in
      diff_bits := !diff_bits + popcount x)
    flipped;
  Alcotest.(check int) "exactly one bit flipped" 1 !diff_bits;
  Alcotest.(check bytes) "flip was transient" block_a (Blockdev.read_block dev 5)

(* --- page cache --- *)

let test_pagecache_crash () =
  let dev = Blockdev.create (Vclock.create ()) in
  let cache = Pagecache.create dev in
  Pagecache.write_page cache 3 (Bytes.make bs 'x');
  Pagecache.flush cache;
  Pagecache.write_page cache 3 (Bytes.make bs 'y');
  Pagecache.write_page cache 4 (Bytes.make bs 'z');
  let lost = Pagecache.crash cache in
  Alcotest.(check int) "two dirty pages lost" 2 lost;
  Alcotest.(check int) "nothing cached after power loss" 0 (Pagecache.cached_pages cache);
  Alcotest.(check char) "block 3 reverted to the flushed state" 'x'
    (Bytes.get (Blockdev.read_block dev 3) 0);
  Alcotest.(check char) "block 4 was never persisted" '\000'
    (Bytes.get (Blockdev.read_block dev 4) 0)

let test_with_page_mutation_check () =
  let dev = Blockdev.create (Vclock.create ()) in
  let cache = Pagecache.create dev in
  Fault.checks_enabled := true;
  Fun.protect
    ~finally:(fun () -> Fault.checks_enabled := false)
    (fun () ->
      ignore (Pagecache.with_page cache 0 (fun b -> Bytes.get b 0));
      (match Pagecache.with_page cache 0 (fun b -> Bytes.set b 0 '!') with
      | () -> Alcotest.fail "mutation through with_page not caught"
      | exception Failure _ -> ());
      (* the sanctioned mutation path stays open *)
      Pagecache.with_page_mut cache 0 (fun b -> Bytes.set b 0 '?'))

(* --- crash-at-every-sync-boundary property test ---

   Random op sequences against extfs; at every sync boundary the on-disk
   image (read through a fresh page cache, exactly what a crash right after
   the sync would leave) must pass fsck with zero errors.  The run ends
   with a real [Pagecache.crash] + remount, which must also recover clean:
   without a journal the honest guarantee is "you get the last sync
   boundary back", and fsck is the judge. *)

let assert_clean device what =
  let view = Pagecache.create device in
  match Extfs_fsck.check view with
  | Error e -> Alcotest.failf "%s: fsck did not run: %s" what (Errno.to_string e)
  | Ok report -> (
    match Extfs_fsck.errors report with
    | [] -> ()
    | issue :: _ as issues ->
      Alcotest.failf "%s: fsck found %d errors, first: %s" what (List.length issues)
        issue.Extfs_fsck.message)

let join dir name = if dir = "/" then "/" ^ name else dir ^ "/" ^ name

let pick prng l = List.nth l (Prng.int prng (List.length l))

let random_op prng p dirs files =
  let fresh () = Prng.string prng ~min_len:3 ~max_len:8 in
  match Prng.int prng 10 with
  | 0 | 1 -> (
    let path = join (pick prng !dirs) (fresh ()) in
    match S.mkdir p path with Ok _ -> dirs := path :: !dirs | Error _ -> ())
  | 2 | 3 | 4 -> (
    let path = join (pick prng !dirs) (fresh ()) in
    let data = String.make (Prng.int prng 6000) 'd' in
    match S.write_file p path data with Ok _ -> files := path :: !files | Error _ -> ())
  | 5 -> (
    match !files with
    | [] -> ()
    | _ -> (
      let f = pick prng !files in
      match S.unlink p f with
      | Ok _ -> files := List.filter (fun x -> x <> f) !files
      | Error _ -> ()))
  | 6 | 7 -> (
    match !files with
    | [] -> ()
    | _ -> (
      let f = pick prng !files in
      let dst = join (pick prng !dirs) (fresh ()) in
      match S.rename p f dst with
      | Ok _ -> files := dst :: List.filter (fun x -> x <> f) !files
      | Error _ -> ()))
  | 8 -> ignore (S.symlink p ~target:"/elsewhere" (join (pick prng !dirs) (fresh ())))
  | _ -> (
    match List.filter (fun d -> d <> "/") !dirs with
    | [] -> ()
    | candidates -> (
      let d = pick prng candidates in
      match S.rmdir p d with
      | Ok _ ->
        dirs := List.filter (fun x -> x <> d) !dirs;
        files := List.filter (fun f -> not (String.length f > String.length d
                                            && String.sub f 0 (String.length d + 1) = d ^ "/")) !files
      | Error _ -> ()))

let test_crash_at_sync_boundaries () =
  let prng = Prng.create seed in
  for round = 1 to 3 do
    let clock = Vclock.create () in
    let device = Blockdev.create clock in
    let cache = Pagecache.create device in
    let fs = Extfs.mkfs_and_mount cache in
    let kernel = Kernel.create ~config:Config.optimized ~root_fs:fs () in
    let p = Proc.spawn kernel in
    let dirs = ref [ "/" ] and files = ref [] in
    for i = 1 to 60 do
      random_op prng p dirs files;
      if i mod 10 = 0 then begin
        Pagecache.flush cache;
        assert_clean device (Printf.sprintf "round %d, sync boundary at op %d" round i)
      end
    done;
    (* a tail of unsynced ops, then the lights go out *)
    for _ = 1 to 8 do
      random_op prng p dirs files
    done;
    ignore (Pagecache.crash cache);
    assert_clean device (Printf.sprintf "round %d, after crash" round);
    (* reboot: remount the survived image and keep working *)
    let cache' = Pagecache.create device in
    let fs' = get "remount" (Extfs.mount cache') in
    let kernel' = Kernel.create ~config:Config.optimized ~root_fs:fs' () in
    let p' = Proc.spawn kernel' in
    ignore (get "root stats after recovery" (S.stat p' "/"));
    let dirs' = ref [ "/" ] and files' = ref [] in
    for _ = 1 to 15 do
      random_op prng p' dirs' files'
    done;
    Pagecache.flush cache';
    assert_clean device (Printf.sprintf "round %d, after recovery ops" round)
  done

(* --- netfs: drop, timeout, backoff, retry, give-up --- *)

let net_parts ?retry ~protocol () =
  let clock = Vclock.create () in
  let backing = Dcache_fs.Ramfs.create () in
  let inj = Fault.create ~seed () in
  let server = Netfs.server ~rpc_latency_ns:1000 ~faults:inj ~clock backing in
  let fs = Netfs.client ~protocol ?retry server in
  (fs, server, inj, clock, backing)

let test_netfs_retry_recovers () =
  let fs, server, inj, clock, _ = net_parts ~protocol:Netfs.Stateful () in
  let root = fs.Fs_intf.root_ino in
  ignore (get "create" (fs.Fs_intf.create root "f" File_kind.Regular 0o644 ~uid:0 ~gid:0));
  Fault.arm (Fault.site inj "netfs.drop") (Fault.Nth 1);
  let v0 = Vclock.elapsed_ns clock in
  ignore (get "lookup despite one lost exchange" (fs.Fs_intf.lookup root "f"));
  let stats = Netfs.rpc_stats server in
  Alcotest.(check int) "one drop" 1 stats.Netfs.rs_drops;
  Alcotest.(check int) "one retransmission" 1 stats.Netfs.rs_retries;
  Alcotest.(check int) "no give-up" 0 stats.Netfs.rs_giveups;
  (* timeout (1 ms) + first backoff (0.5 ms) + one successful round trip *)
  let elapsed = Int64.sub (Vclock.elapsed_ns clock) v0 in
  Alcotest.(check int64) "deterministic virtual cost" 1_501_000L elapsed

let test_netfs_backoff_growth () =
  let fs, _, inj, clock, _ = net_parts ~protocol:Netfs.Stateful () in
  Fault.arm (Fault.site inj "netfs.drop") (Fault.Window { first = 1; last = 3 });
  let v0 = Vclock.elapsed_ns clock in
  expect_err Errno.ENOENT "resolves on the 4th transmission"
    (fs.Fs_intf.lookup fs.Fs_intf.root_ino "missing");
  (* 3 timeouts + backoffs 0.5/1/2 ms + the final round trip *)
  let elapsed = Int64.sub (Vclock.elapsed_ns clock) v0 in
  Alcotest.(check int64) "3 timeouts + doubling backoff" 6_501_000L elapsed

let test_netfs_gives_up_with_eio () =
  let retry = { Netfs.default_retry with Netfs.max_retries = 2 } in
  let fs, server, inj, _, _ = net_parts ~retry ~protocol:Netfs.Stateful () in
  let drop = Fault.site inj "netfs.drop" in
  Fault.arm drop Fault.Always;
  expect_err Errno.EIO "EIO after max retries" (fs.Fs_intf.lookup fs.Fs_intf.root_ino "x");
  let stats = Netfs.rpc_stats server in
  Alcotest.(check int) "gave up once" 1 stats.Netfs.rs_giveups;
  Alcotest.(check int) "initial + 2 retries all dropped" 3 stats.Netfs.rs_drops;
  Fault.disarm drop;
  expect_err Errno.ENOENT "link heals, server answers again"
    (fs.Fs_intf.lookup fs.Fs_intf.root_ino "x")

let test_netfs_drc_executes_once () =
  let fs, server, inj, _, backing = net_parts ~protocol:Netfs.Stateful () in
  let root = fs.Fs_intf.root_ino in
  (* the create executes on the server but its reply is lost *)
  Fault.arm (Fault.site inj "netfs.drop") (Fault.Nth 1);
  ignore (get "create survives a lost reply"
      (fs.Fs_intf.create root "once" File_kind.Regular 0o644 ~uid:0 ~gid:0));
  let stats = Netfs.rpc_stats server in
  Alcotest.(check int) "duplicate answered from the reply cache" 1 stats.Netfs.rs_drc_hits;
  let entries = get "server listing" (backing.Fs_intf.readdir backing.Fs_intf.root_ino) in
  let count =
    List.length (List.filter (fun e -> e.Fs_intf.name = "once") entries)
  in
  Alcotest.(check int) "server executed the create exactly once" 1 count

(* --- the cache must not lie under transient EIO --- *)

let faulty_disk_kernel () =
  let inj = Fault.create ~seed () in
  let vclock = Vclock.create () in
  let device = Blockdev.create ~faults:inj vclock in
  let cache = Pagecache.create device in
  let fs = Extfs.mkfs_and_mount cache in
  let kernel = Kernel.create ~config:Config.optimized ~root_fs:fs () in
  (kernel, Proc.spawn kernel, inj, cache)

let dlht_population kernel =
  match Dlht.of_namespace_opt (Kernel.init_ns kernel) with
  | Some table -> Dlht.population table
  | None -> 0

let test_transient_eio_pollutes_nothing () =
  let kernel, p, inj, cache = faulty_disk_kernel () in
  get "tree" (S.mkdir_p p "/a/b");
  ignore (get "file" (S.write_file p "/a/b/f" "data"));
  Kernel.drop_caches kernel;
  Pagecache.drop_caches cache;
  let neg0 = counter kernel "negative_created" in
  let deep0 = counter kernel "deep_negative_created" in
  let pop0 = dlht_population kernel in
  let read_fail = Fault.site inj "blockdev.read_eio" in
  Fault.arm read_fail Fault.Always;
  expect_err Errno.EIO "walk reports the I/O failure" (S.stat p "/a/b/f");
  Alcotest.(check int) "no negative dentry cached" neg0 (counter kernel "negative_created");
  Alcotest.(check int) "no deep negative cached" deep0 (counter kernel "deep_negative_created");
  Alcotest.(check int) "DLHT not repopulated" pop0 (dlht_population kernel);
  Alcotest.(check bool) "populate was explicitly skipped" true
    (counter kernel "fastpath_eio_no_populate" > 0);
  (* the failure was transient: the same path resolves once the disk heals,
     proving no stale "absent" answer was cached *)
  Fault.disarm read_fail;
  ignore (get "resolves after the fault clears" (S.stat p "/a/b/f"));
  Alcotest.(check (list string)) "dcache invariants hold" []
    (Dcache.self_check (Kernel.dcache kernel))

(* --- scrub: quarantine instead of serving corrupt entries --- *)

let capture_dentry kernel p path =
  let captured = ref None in
  (match
     Fastpath.lookup_into (Kernel.fastpath kernel) (Proc.walk_ctx p) path
       ~within:(fun _mnt d ->
         captured := Some d;
         Ok ())
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "capture %s: %s" path (Errno.to_string e));
  Option.get !captured

let test_dlht_scrub_quarantines () =
  let kernel, p = ram_kernel ~config:Config.optimized () in
  get "tree" (S.mkdir_p p "/x/y");
  ignore (get "file" (S.write_file p "/x/y/z" "v"));
  ignore (get "warm" (S.stat p "/x/y/z"));
  let table = Option.get (Dlht.of_namespace_opt (Kernel.init_ns kernel)) in
  Alcotest.(check bool) "table populated" true (Dlht.population table > 0);
  (* Corrupt a chained entry the way a raced shootdown would: membership
     kept, signature gone. *)
  let d = capture_dentry kernel p "/x/y/z" in
  d.d_sig <- None;
  Alcotest.(check bool) "self_check sees the damage" true (Dlht.self_check table <> []);
  let report = Kernel.scrub kernel in
  Alcotest.(check int) "dcache side is healthy" 0 report.Kernel.dcache_quarantined;
  Alcotest.(check bool) "entry quarantined" true (report.Kernel.dlht_quarantined >= 1);
  Alcotest.(check (list string)) "table healthy after scrub" [] (Dlht.self_check table);
  (* quarantine means degrade, not lose: the slowpath re-resolves *)
  ignore (get "path still resolves" (S.stat p "/x/y/z"));
  ignore (get "and again (repopulated)" (S.stat p "/x/y/z"))

let test_dcache_scrub_quarantines () =
  let kernel, p = ram_kernel ~config:Config.optimized () in
  get "tree" (S.mkdir_p p "/q/r");
  ignore (get "file" (S.write_file p "/q/r/s" "v"));
  ignore (get "warm" (S.stat p "/q/r/s"));
  let d = capture_dentry kernel p "/q/r/s" in
  (* Simulate hash-table corruption: the dentry claims it is unhashed while
     still chained everywhere else. *)
  d.d_hashed <- false;
  Alcotest.(check bool) "self_check sees the damage" true
    (Dcache.self_check (Kernel.dcache kernel) <> []);
  let report = Kernel.scrub kernel in
  Alcotest.(check bool) "dentry quarantined" true (report.Kernel.dcache_quarantined >= 1);
  Alcotest.(check (list string)) "cache healthy after scrub" []
    (Dcache.self_check (Kernel.dcache kernel));
  ignore (get "path re-resolves from the fs" (S.stat p "/q/r/s"))

(* --- the disabled hooks must preserve the zero-allocation fastpath --- *)

let within_unit _mnt _dentry = Ok ()

let measure_minor_words iters f =
  f ();
  f ();
  let a = Gc.minor_words () in
  let b = Gc.minor_words () in
  let self = b -. a in
  for _ = 1 to iters do
    f ()
  done;
  let c = Gc.minor_words () in
  c -. b -. self

let test_disabled_hooks_keep_fastpath_allocation_free () =
  let kernel, p, inj, _cache = faulty_disk_kernel () in
  get "tree" (S.mkdir_p p "/a/b/c");
  ignore (get "file" (S.write_file p "/a/b/c/target" "x"));
  let fp = Kernel.fastpath kernel in
  let ctx = Proc.walk_ctx p in
  let probe () =
    match Fastpath.lookup_into fp ctx "/a/b/c/target" ~within:within_unit with
    | Ok () -> ()
    | Error e -> Alcotest.failf "unexpected %s" (Errno.to_string e)
  in
  probe ();
  let h0 = counter kernel "fastpath_hit" in
  let words = measure_minor_words 10_000 probe in
  Alcotest.(check bool) "probes stayed on the fastpath" true
    (counter kernel "fastpath_hit" - h0 >= 10_000);
  Alcotest.(check (float 0.0))
    "zero minor-heap words with fault hooks plumbed in" 0.0 words;
  (* and the disarmed sites themselves are free *)
  let site = Fault.site inj "blockdev.read_eio" in
  let fire () = ignore (Fault.fire site) in
  let words = measure_minor_words 10_000 fire in
  Alcotest.(check (float 0.0)) "disarmed fire allocates nothing" 0.0 words

(* --- crash points inside the stripe-locked mutation sections ---

   The sharded mutation paths (PR 6) bump the parent stripe's seqcount,
   splice, then bump again; a crash raised between the bump and the splice
   is the worst interleaving — the property is that the section releases
   its stripe(s) and the read lock on the way out, so the very next
   operation neither deadlocks nor observes a wedged odd seqcount, and
   [Kernel.scrub] + [Dcache.self_check] find nothing to repair.  A leaked
   lock fails this test by hanging it; a torn splice fails the
   self-check. *)

let crash_site_names =
  [|
    "syscalls.sharded_create";
    "syscalls.sharded_unlink";
    "syscalls.sharded_rename";
    "syscalls.sharded_invalidate";
  |]

let run_stripe_crash_schedule s =
  let inj = Fault.create ~seed:s () in
  S.install_crash_sites inj;
  Fun.protect ~finally:S.clear_crash_sites (fun () ->
      let prng = Prng.create ((s * 31) + 5) in
      let kernel, p = ram_kernel ~config:Config.optimized () in
      get "tree" (S.mkdir_p p "/w/x");
      get "tree2" (S.mkdir_p p "/w/y");
      for i = 0 to 5 do
        get "seed file" (S.write_file p (Printf.sprintf "/w/x/f%d" i) "v")
      done;
      ignore (S.stat p "/w/x/f0");
      let crashes = ref 0 in
      for round = 1 to 24 do
        (* Pick the op and arm its own section's crash point, so every
           round actually reaches an armed site. *)
        let oi = Prng.int prng (Array.length crash_site_names) in
        let site = Fault.site inj crash_site_names.(oi) in
        Fault.arm site (Fault.Nth 1);
        let op () =
          match oi with
          | 0 -> ignore (S.write_file p (Printf.sprintf "/w/x/n%d" round) "x")
          | 1 -> ignore (S.unlink p (Printf.sprintf "/w/x/f%d" (Prng.int prng 6)))
          | 2 ->
            ignore
              (S.rename p
                 (Printf.sprintf "/w/x/f%d" (Prng.int prng 6))
                 (Printf.sprintf "/w/y/r%d" round))
          | _ -> ignore (S.invalidate_path p "/w/x")
        in
        (try op () with Fault.Crash _ -> incr crashes);
        Fault.disarm site;
        (* The oops left no lock held and nothing scrub can't repair. *)
        ignore (Kernel.scrub kernel);
        Alcotest.(check (list string))
          (Printf.sprintf "seed %d round %d: dcache clean after crash+scrub" s round)
          []
          (Dcache.self_check (Kernel.dcache kernel));
        (* And the kernel keeps working: a lookup plus both flavours of
           sharded mutation would hang on a leaked stripe or read lock. *)
        ignore (S.stat p "/w/x/f0");
        get "post-crash create" (S.write_file p (Printf.sprintf "/w/x/post%d" round) "y");
        get "post-crash unlink" (S.unlink p (Printf.sprintf "/w/x/post%d" round))
      done;
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: crash points actually fired (%d)" s !crashes)
        true
        (!crashes >= 12))

let test_stripe_crash_points_scrub_repairs () =
  List.iter run_stripe_crash_schedule [ 1; 1337; 9001 ]

let suite =
  [
    Alcotest.test_case "fault schedules are deterministic" `Quick test_schedules;
    Alcotest.test_case "disarmed fire is allocation-free" `Quick test_disarmed_fire_is_free;
    Alcotest.test_case "blockdev EIO / torn write / bit flip" `Quick test_blockdev_faults;
    Alcotest.test_case "pagecache crash loses dirty pages only" `Quick test_pagecache_crash;
    Alcotest.test_case "with_page mutation caught under checks" `Quick
      test_with_page_mutation_check;
    Alcotest.test_case "crash at every sync boundary recovers clean" `Quick
      test_crash_at_sync_boundaries;
    Alcotest.test_case "netfs retry recovers from a lost exchange" `Quick
      test_netfs_retry_recovers;
    Alcotest.test_case "netfs backoff doubles per retry" `Quick test_netfs_backoff_growth;
    Alcotest.test_case "netfs gives up with EIO, heals after" `Quick
      test_netfs_gives_up_with_eio;
    Alcotest.test_case "netfs duplicate reply cache executes once" `Quick
      test_netfs_drc_executes_once;
    Alcotest.test_case "transient EIO caches nothing" `Quick
      test_transient_eio_pollutes_nothing;
    Alcotest.test_case "DLHT scrub quarantines corrupt entries" `Quick
      test_dlht_scrub_quarantines;
    Alcotest.test_case "dcache scrub quarantines corrupt dentries" `Quick
      test_dcache_scrub_quarantines;
    Alcotest.test_case "disabled fault hooks keep the fastpath allocation-free" `Quick
      test_disabled_hooks_keep_fastpath_allocation_free;
    Alcotest.test_case "stripe crash points: scrub repairs, locks released" `Quick
      test_stripe_crash_points_scrub_repairs;
  ]
