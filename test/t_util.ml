(* Tests for dcache_util: PRNG, intrusive lists, stats, locks, clocks. *)

open Dcache_util

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next64 a) (Prng.next64 b)
  done

let test_prng_bounds () =
  let g = Prng.create 7 in
  for _ = 1 to 10_000 do
    let x = Prng.int g 17 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 17)
  done;
  for _ = 1 to 1_000 do
    let x = Prng.int_in g (-5) 5 in
    Alcotest.(check bool) "in closed range" true (x >= -5 && x <= 5);
    let f = Prng.float g 2.0 in
    Alcotest.(check bool) "float range" true (f >= 0.0 && f < 2.0)
  done

let test_prng_string () =
  let g = Prng.create 3 in
  for _ = 1 to 200 do
    let s = Prng.string g ~min_len:2 ~max_len:9 in
    Alcotest.(check bool) "len" true (String.length s >= 2 && String.length s <= 9)
  done

let test_prng_split_independent () =
  let g = Prng.create 99 in
  let h = Prng.split g in
  let a = Prng.next64 g and b = Prng.next64 h in
  Alcotest.(check bool) "diverge" true (a <> b)

let test_prng_shuffle_permutation () =
  let g = Prng.create 5 in
  let arr = Array.init 50 (fun i -> i) in
  Prng.shuffle g arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 (fun i -> i)) sorted

let test_dlist_push_pop () =
  let l = Dlist.create () in
  let n1 = Dlist.node 1 and n2 = Dlist.node 2 and n3 = Dlist.node 3 in
  Dlist.push_back l n1;
  Dlist.push_back l n2;
  Dlist.push_front l n3;
  Alcotest.(check (list int)) "order" [ 3; 1; 2 ] (Dlist.to_list l);
  Alcotest.(check int) "length" 3 (Dlist.length l);
  (match Dlist.pop_front l with
  | Some n -> Alcotest.(check int) "front" 3 (Dlist.value n)
  | None -> Alcotest.fail "empty");
  (match Dlist.pop_back l with
  | Some n -> Alcotest.(check int) "back" 2 (Dlist.value n)
  | None -> Alcotest.fail "empty");
  Alcotest.(check int) "length after" 1 (Dlist.length l)

let test_dlist_remove_middle () =
  let l = Dlist.create () in
  let nodes = List.init 5 Dlist.node in
  List.iter (Dlist.push_back l) nodes;
  Dlist.remove l (List.nth nodes 2);
  Alcotest.(check (list int)) "removed middle" [ 0; 1; 3; 4 ] (Dlist.to_list l);
  Alcotest.(check bool) "unlinked" false (Dlist.linked (List.nth nodes 2));
  (* removing a detached node is a no-op *)
  Dlist.remove l (List.nth nodes 2);
  Alcotest.(check int) "len" 4 (Dlist.length l)

let test_dlist_move_to_front () =
  let l = Dlist.create () in
  let nodes = List.init 4 Dlist.node in
  List.iter (Dlist.push_back l) nodes;
  Dlist.move_to_front l (List.nth nodes 3);
  Alcotest.(check (list int)) "moved" [ 3; 0; 1; 2 ] (Dlist.to_list l);
  let fresh = Dlist.node 9 in
  Dlist.move_to_front l fresh;
  Alcotest.(check (list int)) "inserted" [ 9; 3; 0; 1; 2 ] (Dlist.to_list l)

let test_dlist_iter_remove_current () =
  let l = Dlist.create () in
  let nodes = List.init 6 Dlist.node in
  List.iter (Dlist.push_back l) nodes;
  (* Remove even values while iterating. *)
  Dlist.iter (fun v -> if v mod 2 = 0 then Dlist.remove l (List.nth nodes v)) l;
  Alcotest.(check (list int)) "odds left" [ 1; 3; 5 ] (Dlist.to_list l)

let dlist_model_test =
  QCheck.Test.make ~name:"dlist behaves like a deque model" ~count:300
    QCheck.(list (pair bool small_nat))
    (fun ops ->
      let l = Dlist.create () in
      let model = ref [] in
      List.iter
        (fun (front, v) ->
          let n = Dlist.node v in
          if front then begin
            Dlist.push_front l n;
            model := v :: !model
          end
          else begin
            Dlist.push_back l n;
            model := !model @ [ v ]
          end)
        ops;
      Dlist.to_list l = !model && Dlist.length l = List.length !model)

let test_stats_summary () =
  let s = Stats.summarize [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  Alcotest.(check (float 1e-9)) "mean" 3.0 s.Stats.mean;
  Alcotest.(check (float 1e-9)) "min" 1.0 s.Stats.min;
  Alcotest.(check (float 1e-9)) "max" 5.0 s.Stats.max;
  Alcotest.(check int) "n" 5 s.Stats.n;
  Alcotest.(check (float 1e-6)) "stddev" (sqrt 2.5) s.Stats.stddev

let test_stats_median_percentile () =
  Alcotest.(check (float 1e-9)) "odd median" 3.0 (Stats.median [| 5.0; 1.0; 3.0 |]);
  Alcotest.(check (float 1e-9)) "even median" 2.5 (Stats.median [| 4.0; 1.0; 2.0; 3.0 |]);
  let samples = Array.init 100 (fun i -> float_of_int (i + 1)) in
  Alcotest.(check (float 1e-9)) "p50" 50.0 (Stats.percentile samples 50.0);
  Alcotest.(check (float 1e-9)) "p99" 99.0 (Stats.percentile samples 99.0);
  Alcotest.(check (float 1e-9)) "p100" 100.0 (Stats.percentile samples 100.0)

let test_stats_percentile_edges () =
  let samples = Array.init 100 (fun i -> float_of_int (i + 1)) in
  Alcotest.(check (float 1e-9)) "p0 is the minimum" 1.0 (Stats.percentile samples 0.0);
  Alcotest.(check (float 1e-9)) "p100 is the maximum" 100.0 (Stats.percentile samples 100.0);
  Alcotest.(check (float 1e-9)) "singleton p0" 7.0 (Stats.percentile [| 7.0 |] 0.0);
  Alcotest.(check (float 1e-9)) "singleton p100" 7.0 (Stats.percentile [| 7.0 |] 100.0);
  Alcotest.(check (float 1e-9)) "tiny p still reports the minimum" 1.0
    (Stats.percentile samples 0.5);
  let out_of_range = Invalid_argument "Stats.percentile: p outside [0, 100]" in
  Alcotest.check_raises "p < 0 rejected" out_of_range (fun () ->
      ignore (Stats.percentile samples (-1.0)));
  Alcotest.check_raises "p > 100 rejected" out_of_range (fun () ->
      ignore (Stats.percentile samples 100.1))

let test_stats_summary_to_string () =
  let s = Stats.summary_to_string (Stats.summarize [| 1.0; 2.0; 3.0; 4.0; 5.0 |]) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " present") true (Kit.contains_substring s needle))
    [ "n=5"; "mean=3.0"; "stddev="; "min=1.0"; "max=5.0"; "ci95=" ]

let test_lhist_basic () =
  let h = Stats.Lhist.create () in
  Alcotest.(check int) "empty count" 0 (Stats.Lhist.count h);
  Alcotest.(check int) "empty percentile" 0 (Stats.Lhist.percentile h 99.0);
  for v = 1 to 1000 do
    Stats.Lhist.record h v
  done;
  Alcotest.(check int) "count" 1000 (Stats.Lhist.count h);
  Alcotest.(check int) "min" 1 (Stats.Lhist.min_value h);
  Alcotest.(check int) "max" 1000 (Stats.Lhist.max_value h);
  Alcotest.(check (float 1e-9)) "mean is exact (sum is tracked)" 500.5 (Stats.Lhist.mean h);
  Alcotest.(check int) "p0 = min" 1 (Stats.Lhist.percentile h 0.0);
  Alcotest.(check int) "p100 = max" 1000 (Stats.Lhist.percentile h 100.0);
  let p50 = Stats.Lhist.percentile h 50.0 in
  let p99 = Stats.Lhist.percentile h 99.0 in
  (* Uniform 1..1000: rank 500 lands in bucket [256, 512), rank 990 in
     [512, 1024) — bucket-midpoint resolution, ordered and in range. *)
  Alcotest.(check bool) "p50 within the covering bucket" true (p50 >= 256 && p50 < 512);
  Alcotest.(check bool) "p99 within the covering bucket" true (p99 >= 512 && p99 <= 1000);
  Alcotest.(check bool) "percentiles are ordered" true (p50 <= p99)

let test_lhist_buckets_and_reset () =
  Alcotest.(check int) "bucket_lo 0" 0 (Stats.Lhist.bucket_lo 0);
  Alcotest.(check int) "bucket_lo 1" 1 (Stats.Lhist.bucket_lo 1);
  Alcotest.(check int) "bucket_lo 4" 8 (Stats.Lhist.bucket_lo 4);
  let h = Stats.Lhist.create () in
  List.iter (Stats.Lhist.record h) [ 0; -3; 1; 2; 3; 4; 7; 8 ];
  Alcotest.(check int) "zeros and clamped negatives in bucket 0" 2
    (Stats.Lhist.bucket_count h 0);
  Alcotest.(check int) "[1,2) bucket" 1 (Stats.Lhist.bucket_count h 1);
  Alcotest.(check int) "[2,4) bucket" 2 (Stats.Lhist.bucket_count h 2);
  Alcotest.(check int) "[4,8) bucket" 2 (Stats.Lhist.bucket_count h 3);
  Alcotest.(check int) "[8,16) bucket" 1 (Stats.Lhist.bucket_count h 4);
  Alcotest.(check int) "negative clamps the minimum to 0" 0 (Stats.Lhist.min_value h);
  Stats.Lhist.reset h;
  Alcotest.(check int) "reset count" 0 (Stats.Lhist.count h);
  Alcotest.(check int) "reset max" 0 (Stats.Lhist.max_value h);
  Alcotest.(check int) "reset buckets" 0 (Stats.Lhist.bucket_count h 1)

let test_lhist_record_no_alloc () =
  let h = Stats.Lhist.create () in
  let words =
    Stats.minor_words_per_op ~iters:10_000 (fun () -> Stats.Lhist.record h 777)
  in
  Alcotest.(check (float 0.0)) "Lhist.record allocates nothing" 0.0 words

let test_trace_ring_wraparound () =
  Trace.reset ();
  Fun.protect
    ~finally:(fun () ->
      Trace.disarm ();
      Trace.configure ~capacity:8192;
      Trace.reset ())
    (fun () ->
      Trace.configure ~capacity:8;
      Trace.armed := true;
      for i = 1 to 12 do
        Trace.stamp Trace.ev_fast_hit i
      done;
      Trace.armed := false;
      Alcotest.(check int) "recorded counts every stamp" 12 (Trace.recorded ());
      Alcotest.(check int) "overwritten stamps reported" 4 (Trace.dropped ());
      let seen = ref [] in
      Trace.iter_events (fun s ts ev arg _span -> seen := (s, ts, ev, arg) :: !seen);
      let seen = List.rev !seen in
      Alcotest.(check int) "ring retains capacity events" 8 (List.length seen);
      List.iteri
        (fun k (s, ts, ev, arg) ->
          Alcotest.(check int) "oldest-first sequence" (4 + k) s;
          Alcotest.(check int) "logical timestamp = sequence" (4 + k) ts;
          Alcotest.(check string) "event name" "fastpath_hit" (Trace.event_name ev);
          Alcotest.(check int) "argument survives" (5 + k) arg)
        seen;
      let rendered = Trace.ring_to_string () in
      List.iter
        (fun needle ->
          Alcotest.(check bool) (needle ^ " in render") true
            (Kit.contains_substring rendered needle))
        [ "recorded 12"; "dropped 4"; "capacity 8"; "fastpath_hit" ];
      Alcotest.check_raises "capacity must be a power of two"
        (Invalid_argument "Trace.configure: capacity must be a positive power of two")
        (fun () -> Trace.configure ~capacity:100))

let test_trace_causes_and_latency () =
  Trace.reset ();
  Fun.protect
    ~finally:(fun () -> Trace.reset ())
    (fun () ->
      Trace.bump_cause Trace.cause_cold;
      Trace.bump_cause Trace.cause_cold;
      Trace.bump_cause Trace.cause_inval_rename;
      Alcotest.(check int) "cold" 2 (Trace.cause_count Trace.cause_cold);
      Alcotest.(check int) "rename" 1 (Trace.cause_count Trace.cause_inval_rename);
      let rendered = Trace.causes_to_string () in
      Alcotest.(check bool) "cold line" true
        (Kit.contains_substring rendered "cold 2");
      Alcotest.(check bool) "every cause named" true
        (Kit.contains_substring rendered "dir_incomplete 0");
      Trace.record_latency Trace.cls_fast 500;
      Trace.record_latency Trace.cls_fast 700;
      Alcotest.(check int) "latency recorded" 2
        (Dcache_util.Stats.Lhist.count (Trace.latency Trace.cls_fast));
      let h = Trace.histograms_to_string () in
      Alcotest.(check bool) "class line present" true
        (Kit.contains_substring h "class fastpath_hit n 2");
      Alcotest.(check bool) "empty classes still listed" true
        (Kit.contains_substring h "class eio n 0"))

let test_counter () =
  let c = Stats.Counter.create () in
  Stats.Counter.incr c "a";
  Stats.Counter.incr c "a";
  Stats.Counter.add c "b" 5;
  Alcotest.(check int) "a" 2 (Stats.Counter.get c "a");
  Alcotest.(check int) "b" 5 (Stats.Counter.get c "b");
  Alcotest.(check int) "missing" 0 (Stats.Counter.get c "zzz");
  Alcotest.(check (list (pair string int))) "assoc" [ ("a", 2); ("b", 5) ]
    (Stats.Counter.to_assoc c);
  Stats.Counter.reset c;
  Alcotest.(check int) "reset" 0 (Stats.Counter.get c "a")

let test_vclock () =
  let v = Vclock.create () in
  Vclock.charge v 100L;
  Vclock.charge v 50L;
  Alcotest.(check int64) "sum" 150L (Vclock.elapsed_ns v);
  Vclock.reset v;
  Alcotest.(check int64) "reset" 0L (Vclock.elapsed_ns v)

let test_seqcount () =
  let s = Seqcount.create () in
  let snap = Seqcount.read_begin s in
  Alcotest.(check bool) "valid" true (Seqcount.read_validate s snap);
  Seqcount.bump s;
  Alcotest.(check bool) "invalid after bump" false (Seqcount.read_validate s snap);
  Seqcount.write_begin s;
  let mid = Seqcount.read_begin s in
  Alcotest.(check bool) "odd snapshot invalid" false (Seqcount.read_validate s mid);
  Seqcount.write_end s

let test_rwlock_mutual_exclusion () =
  let lock = Rwlock.create () in
  let counter = ref 0 in
  let writers =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 1000 do
              Rwlock.with_write lock (fun () ->
                  let v = !counter in
                  counter := v + 1)
            done))
  in
  List.iter Domain.join writers;
  Alcotest.(check int) "no lost updates" 4000 !counter

let test_rwlock_readers_concurrent () =
  let lock = Rwlock.create () in
  let running = Atomic.make 0 in
  let peak = Atomic.make 0 in
  let readers =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 200 do
              Rwlock.with_read lock (fun () ->
                  let n = 1 + Atomic.fetch_and_add running 1 in
                  let rec bump () =
                    let p = Atomic.get peak in
                    if n > p && not (Atomic.compare_and_set peak p n) then bump ()
                  in
                  bump ();
                  ignore (Sys.opaque_identity (ref 0));
                  ignore (Atomic.fetch_and_add running (-1)))
            done))
  in
  List.iter Domain.join readers;
  Alcotest.(check bool) "readers overlapped" true (Atomic.get peak >= 1)

let suite =
  [
    Alcotest.test_case "prng deterministic" `Quick test_prng_deterministic;
    Alcotest.test_case "prng bounds" `Quick test_prng_bounds;
    Alcotest.test_case "prng string lengths" `Quick test_prng_string;
    Alcotest.test_case "prng split independent" `Quick test_prng_split_independent;
    Alcotest.test_case "prng shuffle permutation" `Quick test_prng_shuffle_permutation;
    Alcotest.test_case "dlist push/pop" `Quick test_dlist_push_pop;
    Alcotest.test_case "dlist remove middle" `Quick test_dlist_remove_middle;
    Alcotest.test_case "dlist move_to_front" `Quick test_dlist_move_to_front;
    Alcotest.test_case "dlist iter removing" `Quick test_dlist_iter_remove_current;
    QCheck_alcotest.to_alcotest dlist_model_test;
    Alcotest.test_case "stats summary" `Quick test_stats_summary;
    Alcotest.test_case "stats median/percentile" `Quick test_stats_median_percentile;
    Alcotest.test_case "stats percentile p0/p100 edges" `Quick test_stats_percentile_edges;
    Alcotest.test_case "stats summary_to_string" `Quick test_stats_summary_to_string;
    Alcotest.test_case "lhist basic percentiles" `Quick test_lhist_basic;
    Alcotest.test_case "lhist buckets and reset" `Quick test_lhist_buckets_and_reset;
    Alcotest.test_case "lhist record allocates nothing" `Quick test_lhist_record_no_alloc;
    Alcotest.test_case "trace ring wraparound" `Quick test_trace_ring_wraparound;
    Alcotest.test_case "trace causes and latency classes" `Quick
      test_trace_causes_and_latency;
    Alcotest.test_case "counter" `Quick test_counter;
    Alcotest.test_case "vclock" `Quick test_vclock;
    Alcotest.test_case "seqcount" `Quick test_seqcount;
    Alcotest.test_case "rwlock writers exclude" `Quick test_rwlock_mutual_exclusion;
    Alcotest.test_case "rwlock readers concurrent" `Quick test_rwlock_readers_concurrent;
  ]
