(* Tests for path signatures (multilinear hashing) and SipHash. *)

module Signature = Dcache_sig.Signature
module Siphash = Dcache_sig.Siphash

let key = Signature.create_key ~seed:1234 ()

let test_resume_equals_whole () =
  let whole = "usr/include/gcc-x86_64-linux-gnu/sys/types.h" in
  let full = Signature.hash_string key whole in
  for cut = 0 to String.length whole do
    let a = String.sub whole 0 cut in
    let b = String.sub whole cut (String.length whole - cut) in
    let st = Signature.feed_string key Signature.empty_state a in
    let st = Signature.feed_string key st b in
    let resumed = Signature.finalize key st in
    Alcotest.(check int) "same digest" 0 (Signature.compare_full full resumed)
  done

let resume_property =
  QCheck.Test.make ~name:"feed in pieces == feed whole" ~count:500
    QCheck.(pair (string_of_size (QCheck.Gen.int_bound 64)) (list small_nat))
    (fun (s, cuts) ->
      let full = Signature.hash_string key s in
      let n = String.length s in
      let cuts = List.sort_uniq compare (List.map (fun c -> c mod (n + 1)) cuts) in
      let pieces, last =
        List.fold_left
          (fun (acc, prev) cut -> (String.sub s prev (cut - prev) :: acc, cut))
          ([], 0) cuts
      in
      let pieces = List.rev (String.sub s last (n - last) :: pieces) in
      let st =
        List.fold_left (fun st piece -> Signature.feed_string key st piece)
          Signature.empty_state pieces
      in
      Signature.compare_full full (Signature.finalize key st) = 0)

let feed_char_property =
  QCheck.Test.make ~name:"feed_char == feed_string" ~count:300
    QCheck.(string_of_size (QCheck.Gen.int_bound 32))
    (fun s ->
      let by_string = Signature.feed_string key Signature.empty_state s in
      let by_char =
        String.fold_left (fun st c -> Signature.feed_char key st c) Signature.empty_state s
      in
      Signature.compare_full
        (Signature.finalize key by_string)
        (Signature.finalize key by_char)
      = 0)

let distinct_strings_property =
  QCheck.Test.make ~name:"distinct short strings don't collide (full width)" ~count:500
    QCheck.(pair (string_of_size (QCheck.Gen.int_bound 24)) (string_of_size (QCheck.Gen.int_bound 24)))
    (fun (a, b) ->
      a = b
      || not
           (Signature.equal key (Signature.hash_string key a) (Signature.hash_string key b)))

let test_prefix_no_collision () =
  (* A path and its extension must differ even though the multilinear state
     of one is a prefix of the other. *)
  let a = Signature.hash_string key "a/b" in
  let b = Signature.hash_string key "a/b/c" in
  Alcotest.(check bool) "prefix differs" false (Signature.equal key a b)

let test_empty_vs_nonempty () =
  let e = Signature.hash_string key "" in
  let x = Signature.hash_string key "x" in
  Alcotest.(check bool) "empty differs" false (Signature.equal key e x)

let test_bucket_range_and_spread () =
  let seen = Hashtbl.create 64 in
  for i = 0 to 999 do
    let b = Signature.bucket (Signature.hash_string key (Printf.sprintf "file%d" i)) in
    Alcotest.(check bool) "range" true (b >= 0 && b < 1 lsl 22);
    Hashtbl.replace seen b ()
  done;
  (* 1000 hashes into 65536 buckets: expect almost no repeats. *)
  Alcotest.(check bool) "spread" true (Hashtbl.length seen > 950)

let test_key_dependence () =
  let key2 = Signature.create_key ~seed:99999 () in
  let same = ref 0 in
  for i = 0 to 99 do
    let s = Printf.sprintf "path/%d" i in
    if
      Signature.compare_full (Signature.hash_string key s) (Signature.hash_string key2 s)
      = 0
    then incr same
  done;
  Alcotest.(check int) "keys give different digests" 0 !same

let test_truncated_sig_collides () =
  (* With a 2-bit signature, collisions among 100 strings are certain. *)
  let tiny = Signature.create_key ~sig_bits:2 ~seed:1 () in
  let digests = List.init 100 (fun i -> Signature.hash_string tiny (string_of_int i)) in
  let collision =
    List.exists
      (fun a -> List.length (List.filter (fun b -> Signature.equal tiny a b) digests) > 1)
      digests
  in
  Alcotest.(check bool) "collision found" true collision;
  Alcotest.(check int) "sig_bits clamped" 2 (Signature.sig_bits tiny)

let test_grow_consistency () =
  (* Hashing a long path must agree with hashing after the key tables have
     been grown by an even longer one. *)
  let fresh = Signature.create_key ~seed:7 () in
  let long = String.make 600 'a' in
  let longer = String.make 3000 'b' in
  let before = Signature.hash_string fresh long in
  ignore (Signature.hash_string fresh longer);
  let after = Signature.hash_string fresh long in
  Alcotest.(check int) "growth stable" 0 (Signature.compare_full before after)

(* Reference vectors from the SipHash paper (key 000102..0f, messages
   00, 00 01, ...). *)
let siphash_vectors =
  [ (0, 0x726fdb47dd0e0e31L); (1, 0x74f839c593dc67fdL); (2, 0x0d6c8009d9a94f5aL);
    (3, 0x85676696d7fb7e2dL); (8, 0x93f5f5799a932462L) ]

let test_siphash_vectors () =
  let key = { Siphash.k0 = 0x0706050403020100L; k1 = 0x0F0E0D0C0B0A0908L } in
  List.iter
    (fun (len, expected) ->
      let msg = String.init len Char.chr in
      Alcotest.(check int64)
        (Printf.sprintf "siphash len %d" len)
        expected (Siphash.hash key msg))
    siphash_vectors

let test_siphash256_lanes_differ () =
  let key = Siphash.key_of_seed 42 in
  let a, b, c, d = Siphash.hash256 key "hello" in
  Alcotest.(check bool) "lanes independent" true (a <> b && b <> c && c <> d)

let suite =
  [
    Alcotest.test_case "resume equals whole" `Quick test_resume_equals_whole;
    QCheck_alcotest.to_alcotest resume_property;
    QCheck_alcotest.to_alcotest feed_char_property;
    QCheck_alcotest.to_alcotest distinct_strings_property;
    Alcotest.test_case "prefix does not collide" `Quick test_prefix_no_collision;
    Alcotest.test_case "empty vs nonempty" `Quick test_empty_vs_nonempty;
    Alcotest.test_case "bucket range and spread" `Quick test_bucket_range_and_spread;
    Alcotest.test_case "key dependence" `Quick test_key_dependence;
    Alcotest.test_case "truncated signatures collide" `Quick test_truncated_sig_collides;
    Alcotest.test_case "table growth stable" `Quick test_grow_consistency;
    Alcotest.test_case "siphash reference vectors" `Quick test_siphash_vectors;
    Alcotest.test_case "siphash256 lanes" `Quick test_siphash256_lanes_differ;
  ]
