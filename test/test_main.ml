let () =
  Alcotest.run "dcache"
    [
      ("util", T_util.suite);
      ("signature", T_sig.suite);
      ("storage", T_storage.suite);
      ("fs", T_fs.suite @ T_fs.fsck_suite);
      ("cred", T_cred.suite @ T_cred.propagated_suite);
      ("vfs", T_vfs.suite @ T_vfs.path_suite);
      ("core", T_core.suite @ T_core.extra_suite @ T_core.chroot_suite @ T_core.dnlc_suite @ T_core.dlht_suite @ T_core.chunked_mutation_suite);
      ("alloc", T_alloc.suite);
      ("syscalls", T_syscalls.suite @ T_syscalls.at_family_suite @ T_syscalls.procfs_suite);
      ("procfs", T_procfs.suite);
      ("trace", T_trace.suite);
      ("netfs", T_netfs.suite);
      ("fault", T_fault.suite);
      ("dlfs", T_dlfs.suite);
      ("equivalence", T_equiv.suite);
      ("concurrency", T_concurrency.suite);
      ("workloads", T_workloads.suite);
    ]
