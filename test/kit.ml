(* Shared helpers for kernel-level tests. *)

open Dcache_types
module Kernel = Dcache_syscalls.Kernel
module Proc = Dcache_syscalls.Proc
module S = Dcache_syscalls.Syscalls
module Config = Dcache_vfs.Config
module Cred = Dcache_cred.Cred

let errno = Alcotest.testable (Fmt.of_to_string Errno.to_string) ( = )

let get what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: unexpected %s" what (Errno.to_string e)

let expect_err expected what = function
  | Ok _ -> Alcotest.failf "%s: expected %s, got success" what (Errno.to_string expected)
  | Error e -> Alcotest.check errno what expected e

let ram_kernel ?(config = Config.baseline) ?(lsms = []) () =
  let fs = Dcache_fs.Ramfs.create () in
  let kernel = Kernel.create ~config ~lsms ~root_fs:fs () in
  (kernel, Proc.spawn kernel)

let both_configs f =
  f "baseline" Config.baseline;
  f "optimized" Config.optimized

(* A test that must hold on both kernels. *)
let tc_both name body =
  [
    Alcotest.test_case (name ^ " [baseline]") `Quick (fun () -> body Config.baseline);
    Alcotest.test_case (name ^ " [optimized]") `Quick (fun () -> body Config.optimized);
  ]

let counter kernel key =
  try List.assoc key (Kernel.stats_snapshot kernel) with Not_found -> 0

let alice () = Cred.make ~uid:1000 ~gid:1000 ()
let bob () = Cred.make ~uid:1001 ~gid:1001 ()

(* Wrap a low-level fs, counting calls per operation — used to prove that
   cache optimizations actually elide fs work. *)
let counting_fs fs =
  let counts = Hashtbl.create 8 in
  let bump name =
    let r =
      match Hashtbl.find_opt counts name with
      | Some r -> r
      | None ->
        let r = ref 0 in
        Hashtbl.add counts name r;
        r
    in
    incr r
  in
  let get name = match Hashtbl.find_opt counts name with Some r -> !r | None -> 0 in
  let open Dcache_fs.Fs_intf in
  let wrapped =
    {
      fs with
      lookup =
        (fun dir name ->
          bump "lookup";
          fs.lookup dir name);
      getattr =
        (fun ino ->
          bump "getattr";
          fs.getattr ino);
      readdir =
        (fun dir ->
          bump "readdir";
          fs.readdir dir);
      create =
        (fun dir name kind mode ~uid ~gid ->
          bump "create";
          fs.create dir name kind mode ~uid ~gid);
    }
  in
  (wrapped, get)

let contains_substring haystack needle =
  let n = String.length haystack and m = String.length needle in
  let rec at i = i + m <= n && (String.sub haystack i m = needle || at (i + 1)) in
  m = 0 || at 0

(* --- a minimal JSON recognizer (no JSON library in the image) ---

   Hand-rolled recursive descent over the grammar; accepts exactly one
   JSON value spanning the whole string.  Shared by t_procfs and t_trace
   to validate Trace.dump_chrome output. *)

exception Bad_json

let json_valid s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then s.[!pos] else '\000' in
  let ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c = if peek () = c then incr pos else raise Bad_json in
  let literal w = String.iter expect w in
  let string_ () =
    expect '"';
    let rec go () =
      if !pos >= n then raise Bad_json
      else begin
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
          pos := !pos + 2;
          go ()
        | _ ->
          incr pos;
          go ()
      end
    in
    go ()
  in
  let number () =
    let start = !pos in
    if peek () = '-' then incr pos;
    while
      match peek () with '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true | _ -> false
    do
      incr pos
    done;
    if !pos = start then raise Bad_json
  in
  let rec value () =
    ws ();
    match peek () with
    | '{' -> obj ()
    | '[' -> arr ()
    | '"' -> string_ ()
    | 't' -> literal "true"
    | 'f' -> literal "false"
    | 'n' -> literal "null"
    | _ -> number ()
  and obj () =
    expect '{';
    ws ();
    if peek () = '}' then incr pos
    else begin
      let rec members () =
        ws ();
        string_ ();
        ws ();
        expect ':';
        value ();
        ws ();
        if peek () = ',' then begin
          incr pos;
          members ()
        end
        else expect '}'
      in
      members ()
    end
  and arr () =
    expect '[';
    ws ();
    if peek () = ']' then incr pos
    else begin
      let rec elems () =
        value ();
        ws ();
        if peek () = ',' then begin
          incr pos;
          elems ()
        end
        else expect ']'
      in
      elems ()
    end
  in
  match
    value ();
    ws ()
  with
  | () -> !pos = n
  | exception Bad_json -> false
