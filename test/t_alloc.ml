(* Allocation-discipline and DLHT-churn tests: the warm fastpath must not
   touch the minor heap (the optimization is worthless if every lookup pays
   a GC tax), the in-place path hasher must agree with the pure
   [Path.split]-based one, and intrusive bucket churn must keep the table
   structurally exact. *)

open Dcache_types
open Kit
module Fastpath = Dcache_core.Fastpath
module Dlht = Dcache_core.Dlht
module Signature = Dcache_sig.Signature
module Path = Dcache_vfs.Path
module Proc = Dcache_syscalls.Proc
module Trace = Dcache_util.Trace
module Rwlock = Dcache_util.Rwlock
module Dcache = Dcache_vfs.Dcache

(* Top-level so the measured loop doesn't even pay for a closure. *)
let within_unit _mnt _dentry = Ok ()

(* [Gc.minor_words] itself allocates its boxed float result, and that box is
   charged to the *next* reading.  Calibrate by taking two back-to-back
   readings: their difference is exactly the allocation cost of one call,
   which we subtract from the measured window. *)
let measure_minor_words iters f =
  f ();
  f ();
  (* warm *)
  let a = Gc.minor_words () in
  let b = Gc.minor_words () in
  let self = b -. a in
  for _ = 1 to iters do
    f ()
  done;
  let c = Gc.minor_words () in
  c -. b -. self

let probe_ok fp ctx path =
  match Fastpath.lookup_into fp ctx path ~within:within_unit with
  | Ok () -> ()
  | Error e -> Alcotest.failf "unexpected %s on %s" (Errno.to_string e) path

let probe_enoent fp ctx path =
  match Fastpath.lookup_into fp ctx path ~within:within_unit with
  | Ok () -> Alcotest.failf "unexpected success on %s" path
  | Error Errno.ENOENT -> ()
  | Error e -> Alcotest.failf "unexpected %s on %s" (Errno.to_string e) path

let test_warm_hit_zero_alloc () =
  (* Tracing hooks are compiled into every probe site; this asserts the
     disarmed half of the overhead discipline — the stamps are present but
     must cost nothing. *)
  Alcotest.(check bool) "tracing ring disarmed" false !Trace.armed;
  Alcotest.(check bool) "tracing timing disarmed" false !Trace.timing;
  let kernel, p = ram_kernel ~config:Config.optimized () in
  get "tree" (S.mkdir_p p "/a/b/c");
  get "file" (S.write_file p "/a/b/c/target" "payload");
  let fp = Kernel.fastpath kernel in
  let ctx = Proc.walk_ctx p in
  let hits_before () = counter kernel "fastpath_hit" in
  probe_ok fp ctx "/a/b/c/target";
  (* warmed: from here on every probe must be a DLHT hit *)
  let h0 = hits_before () in
  let iters = 10_000 in
  Rwlock.reset_acquisition_counts ();
  let words = measure_minor_words iters (fun () -> probe_ok fp ctx "/a/b/c/target") in
  let reads, writes = Rwlock.acquisition_counts () in
  Alcotest.(check int) "all probes were fastpath hits" (iters + 2) (hits_before () - h0);
  Alcotest.(check (float 0.0)) "zero minor-heap words over 10k warm hits" 0.0 words;
  (* The lockless tier: a warm hit must not fall back to the read-locked
     probe, let alone the write-locked slowpath. *)
  Alcotest.(check (pair int int)) "zero rwlock acquisitions over 10k warm hits" (0, 0)
    (reads, writes)

let test_warm_lease_hit_zero_alloc () =
  (* The lease gate sits on the lockless commit path (§3.7): a warm hit on
     a stateful network mount consults the client's lease table for the
     final inode and its parent directory.  That consult must cost nothing
     — no RPC, no lock, no minor-heap word — or the fastpath's case for
     trusting the cache collapses. *)
  let module Netfs = Dcache_fs.Netfs in
  let module Vclock = Dcache_util.Vclock in
  let clock = Vclock.create () in
  let backing = Dcache_fs.Ramfs.create () in
  let server = Netfs.server ~rpc_latency_ns:1000 ~clock backing in
  let kernel =
    Kernel.create ~config:Config.optimized
      ~root_fs:(Netfs.client ~protocol:Netfs.Stateful server)
      ()
  in
  let p = Proc.spawn kernel in
  get "tree" (S.mkdir_p p "/a/b/c");
  get "file" (S.write_file p "/a/b/c/target" "payload");
  let fp = Kernel.fastpath kernel in
  let ctx = Proc.walk_ctx p in
  probe_ok fp ctx "/a/b/c/target";
  let h0 = counter kernel "fastpath_hit" in
  let iters = 10_000 in
  Netfs.reset_rpc_count server;
  Rwlock.reset_acquisition_counts ();
  let words = measure_minor_words iters (fun () -> probe_ok fp ctx "/a/b/c/target") in
  let locks = Rwlock.acquisition_counts () in
  Alcotest.(check int) "all probes were fastpath hits" (iters + 2)
    (counter kernel "fastpath_hit" - h0);
  Alcotest.(check int) "zero RPCs over 10k live-lease hits" 0 (Netfs.rpc_count server);
  Alcotest.(check (float 0.0)) "zero minor-heap words over 10k live-lease hits" 0.0 words;
  Alcotest.(check (pair int int)) "zero rwlock acquisitions over 10k live-lease hits"
    (0, 0) locks

let test_warm_negative_hit_zero_alloc () =
  let kernel, p = ram_kernel ~config:Config.optimized () in
  get "tree" (S.mkdir_p p "/a/b");
  ignore (S.stat p "/a/b/nothing");
  (* cache the negative *)
  let fp = Kernel.fastpath kernel in
  let ctx = Proc.walk_ctx p in
  probe_enoent fp ctx "/a/b/nothing";
  let neg0 = counter kernel "fastpath_negative_hit" in
  Rwlock.reset_acquisition_counts ();
  let words =
    measure_minor_words 10_000 (fun () -> probe_enoent fp ctx "/a/b/nothing")
  in
  let locks = Rwlock.acquisition_counts () in
  Alcotest.(check bool) "served from the negative cache" true
    (counter kernel "fastpath_negative_hit" > neg0);
  Alcotest.(check (float 0.0)) "zero minor-heap words over warm negative hits" 0.0 words;
  Alcotest.(check (pair int int)) "zero rwlock acquisitions over warm negative hits" (0, 0)
    locks

(* --- armed-tracing allocation discipline ---

   The ring is three preallocated int arrays and the default timestamp is
   the stamp's own sequence number, so even an *armed* stamp must not touch
   the minor heap — and a warm fastpath hit with the ring armed must stay
   at zero words too.  (Only [timing] mode allocates: the monotonic clock
   read boxes an Int64; that mode is exercised by the bench, not here.) *)

let test_armed_ring_stamp_zero_alloc () =
  Trace.reset ();
  Trace.armed := true;
  Fun.protect
    ~finally:(fun () ->
      Trace.armed := false;
      Trace.reset ())
    (fun () ->
      let iters = 10_000 in
      let words =
        measure_minor_words iters (fun () -> Trace.stamp Trace.ev_fast_hit 7)
      in
      Alcotest.(check bool) "stamps landed in the ring" true
        (Trace.recorded () >= iters);
      Alcotest.(check (float 0.0)) "armed ring stamp allocates zero words" 0.0 words)

let test_warm_hit_armed_ring_zero_alloc () =
  let kernel, p = ram_kernel ~config:Config.optimized () in
  get "tree" (S.mkdir_p p "/a/b/c");
  get "file" (S.write_file p "/a/b/c/target" "payload");
  let fp = Kernel.fastpath kernel in
  let ctx = Proc.walk_ctx p in
  probe_ok fp ctx "/a/b/c/target";
  Trace.reset ();
  Trace.armed := true;
  Fun.protect
    ~finally:(fun () ->
      Trace.armed := false;
      Trace.reset ())
    (fun () ->
      let iters = 10_000 in
      let words =
        measure_minor_words iters (fun () -> probe_ok fp ctx "/a/b/c/target")
      in
      Alcotest.(check bool) "hits were stamped" true (Trace.recorded () >= iters);
      Alcotest.(check (float 0.0)) "warm hit with armed ring allocates zero words" 0.0
        words)

(* --- §3.8 profiler allocation discipline ---

   The profiler hooks ride the same probe sites as the ring stamps and
   owe the same debt: disarmed, one load-and-branch; armed, int/pointer
   stores into preallocated arrays.  Span minting is an increment off a
   per-domain block (the block refill is one Atomic.fetch_and_add, still
   no allocation), and a sketch update never leaves its parallel int
   arrays. *)

module Profiler = Dcache_util.Profiler

let test_profiler_hooks_zero_alloc () =
  Profiler.reset ();
  Fun.protect
    ~finally:(fun () ->
      Profiler.disarm ();
      Profiler.reset ())
    (fun () ->
      let iters = 10_000 in
      let hooks () =
        ignore (Profiler.span_enter ());
        Profiler.hh_record 7 "dir" Profiler.m_hit
      in
      let words = measure_minor_words iters hooks in
      Alcotest.(check (float 0.0)) "disarmed hooks allocate zero words" 0.0 words;
      Alcotest.(check int) "disarmed hooks record nothing" 0
        (List.length (Profiler.hot ()));
      Profiler.arm ();
      let words = measure_minor_words iters hooks in
      Alcotest.(check bool) "spans were minted" true (Profiler.current () <> 0);
      (match Profiler.hot () with
      | [ s ] ->
        Alcotest.(check bool) "sketch counted every armed call" true
          (s.Profiler.h_metrics.(Profiler.m_hit) >= iters)
      | slots -> Alcotest.failf "expected one resident slot, got %d" (List.length slots));
      Alcotest.(check (float 0.0)) "armed hooks allocate zero words" 0.0 words)

let test_warm_hit_armed_profiler_zero_alloc () =
  (* The acceptance bar for §3.8: a warm fastpath hit with the profiler
     (and the ring) armed keeps the full zero-words, zero-locks
     discipline while the sketch attributes every hit to the parent
     directory. *)
  let kernel, p = ram_kernel ~config:Config.optimized () in
  get "tree" (S.mkdir_p p "/a/b/c");
  get "file" (S.write_file p "/a/b/c/target" "payload");
  let fp = Kernel.fastpath kernel in
  let ctx = Proc.walk_ctx p in
  probe_ok fp ctx "/a/b/c/target";
  Trace.reset ();
  Profiler.reset ();
  Trace.armed := true;
  Profiler.arm ();
  Fun.protect
    ~finally:(fun () ->
      Trace.armed := false;
      Profiler.disarm ();
      Trace.reset ();
      Profiler.reset ())
    (fun () ->
      let iters = 10_000 in
      Rwlock.reset_acquisition_counts ();
      let words =
        measure_minor_words iters (fun () -> probe_ok fp ctx "/a/b/c/target")
      in
      let locks = Rwlock.acquisition_counts () in
      let hits =
        List.fold_left
          (fun acc s ->
            if s.Profiler.h_label = "c" then acc + s.Profiler.h_metrics.(Profiler.m_hit)
            else acc)
          0 (Profiler.hot ())
      in
      Alcotest.(check bool) "sketch charged the parent directory" true (hits >= iters);
      Alcotest.(check (float 0.0)) "warm hit with armed profiler allocates zero words"
        0.0 words;
      Alcotest.(check (pair int int))
        "zero rwlock acquisitions with armed profiler" (0, 0) locks)

(* --- prefix-resume snapshot discipline (§3.5) --- *)

let test_snapshot_recording_zero_alloc () =
  (* The recording hasher is the warm path now — every probe feeds through
     it — so boundary snapshots must cost six int stores per component and
     nothing on the minor heap, including re-finalizing a snapshot into a
     preallocated buf (the miss scan's probe step). *)
  let key = Signature.create_key ~seed:5 () in
  let ms = Signature.mstate () in
  let sn = Signature.snaps ~slots:64 in
  let b = Signature.buf () in
  let path = "/usr/share/doc/package/readme" in
  let words =
    measure_minor_words 10_000 (fun () ->
        Signature.mstate_reset ms;
        Signature.snaps_reset sn;
        let rc = Signature.hash_path_into_rec key ms sn ~max_name:Path.max_name path ~pos:0 in
        if rc <> Signature.scan_done then Alcotest.fail "scan did not complete";
        Signature.finalize_into key ms b;
        Signature.finalize_snap_into key sn 1 b)
  in
  Alcotest.(check int) "one snapshot per boundary" 5 (Signature.snaps_count sn);
  Alcotest.(check bool) "no overflow" false (Signature.snaps_overflowed sn);
  Alcotest.(check (float 0.0)) "snapshot recording allocates zero words" 0.0 words

let test_prefix_resume_scratch_reuse () =
  (* A prefix-resumed miss allocates real work — the suffix string, the
     visited chain, the new dentry — but must NOT allocate snapshot state:
     the per-domain scratch arrays are reused.  A fresh [snaps] for
     max_path would be ~12k words per lookup; assert each resumed miss
     stays far below that. *)
  let kernel, p = ram_kernel ~config:Config.optimized () in
  let deep = "/d0/d1/d2/d3/d4/d5/d6/d7/d8/d9/d10/d11/d12/d13/d14/d15" in
  get "chain" (S.mkdir_p p deep);
  let iters = 1_000 in
  let leaf i = Printf.sprintf "%s/f%d" deep i in
  for i = 0 to iters + 2 do
    get "leaf" (S.write_file p (leaf i) "x")
  done;
  (* Everything is warm from creation: purge, then re-warm only the
     ancestor chain, so each leaf stat below is a cold DLHT miss with all
     sixteen ancestors cached — the resumed-slowpath case. *)
  Kernel.drop_caches kernel;
  ignore (get "re-warm chain" (S.stat p deep));
  let fp = Kernel.fastpath kernel in
  let ctx = Proc.walk_ctx p in
  let resumes0 = counter kernel "fastpath_prefix_resume" in
  let i = ref 0 in
  let words =
    measure_minor_words iters (fun () ->
        probe_ok fp ctx (leaf !i);
        incr i)
  in
  let resumes = counter kernel "fastpath_prefix_resume" - resumes0 in
  Alcotest.(check bool)
    (Printf.sprintf "misses were prefix-resumed (%d)" resumes)
    true
    (resumes >= iters);
  let per_op = words /. float_of_int iters in
  Alcotest.(check bool)
    (Printf.sprintf "resumed miss reuses snapshot scratch (%.0f words/op)" per_op)
    true (per_op < 3000.0)

let test_prefix_negfail_zero_alloc () =
  (* With deep negatives off, a DIR_COMPLETE fast-fail populates no
     negative dentry, so a repeatedly probed absent name takes the verdict
     path on *every* lookup — it must obey the same zero-allocation
     discipline as a warm hit (top-level scan recursion, constant verdict
     exception, in-place substring child probe). *)
  let config = { Config.optimized with Config.deep_negative = false } in
  let kernel, p = ram_kernel ~config () in
  get "tree" (S.mkdir_p p "/a/b/c");
  get "file" (S.write_file p "/a/b/c/target" "payload");
  ignore (get "readdir" (S.readdir_path p "/a/b/c"));
  (* dir now DIR_COMPLETE *)
  let fp = Kernel.fastpath kernel in
  let ctx = Proc.walk_ctx p in
  probe_enoent fp ctx "/a/b/c/ghost";
  let n0 = counter kernel "fastpath_prefix_negfail" in
  let iters = 10_000 in
  Rwlock.reset_acquisition_counts ();
  let words =
    measure_minor_words iters (fun () -> probe_enoent fp ctx "/a/b/c/ghost")
  in
  let locks = Rwlock.acquisition_counts () in
  Alcotest.(check int) "every probe was a prefix fast-fail" (iters + 2)
    (counter kernel "fastpath_prefix_negfail" - n0);
  Alcotest.(check (float 0.0)) "zero minor-heap words over prefix fast-fails" 0.0 words;
  Alcotest.(check (pair int int)) "zero rwlock acquisitions over prefix fast-fails" (0, 0)
    locks

let test_negfail_promotion_zero_alloc () =
  (* With deep negatives on (the optimized default), the first
     DIR_COMPLETE fast-fail *promotes*: the absent name is published as a
     signed negative dentry, so every later probe is a warm negative hit —
     still zero words, zero locks, but no prefix scan at all. *)
  let kernel, p = ram_kernel ~config:Config.optimized () in
  get "tree" (S.mkdir_p p "/a/b/c");
  get "file" (S.write_file p "/a/b/c/target" "payload");
  ignore (get "readdir" (S.readdir_path p "/a/b/c"));
  let fp = Kernel.fastpath kernel in
  let ctx = Proc.walk_ctx p in
  probe_enoent fp ctx "/a/b/c/ghost";
  Alcotest.(check bool) "first fast-fail promoted a negative dentry" true
    (counter kernel "fastpath_negfail_promoted" >= 1);
  probe_enoent fp ctx "/a/b/c/ghost";
  let neg0 = counter kernel "fastpath_negative_hit" in
  let negfail0 = counter kernel "fastpath_prefix_negfail" in
  let iters = 10_000 in
  Rwlock.reset_acquisition_counts ();
  let words =
    measure_minor_words iters (fun () -> probe_enoent fp ctx "/a/b/c/ghost")
  in
  let locks = Rwlock.acquisition_counts () in
  Alcotest.(check int) "every probe was a warm negative hit" (iters + 2)
    (counter kernel "fastpath_negative_hit" - neg0);
  Alcotest.(check int) "no further prefix fast-fails" 0
    (counter kernel "fastpath_prefix_negfail" - negfail0);
  Alcotest.(check (float 0.0)) "zero minor-heap words over promoted negatives" 0.0 words;
  Alcotest.(check (pair int int)) "zero rwlock acquisitions over promoted negatives"
    (0, 0) locks

(* --- in-place hasher vs. the pure split-based hasher --- *)

let reference_signature key comps =
  let state =
    List.fold_left
      (fun st comp ->
        match comp with
        | Path.Cur | Path.Up -> st
        | Path.Name name -> Signature.feed_string key (Signature.feed_char key st '/') name)
      Signature.empty_state comps
  in
  Signature.finalize key state

let inplace_signature key ~max_name path =
  let ms = Signature.mstate () in
  let b = Signature.buf () in
  let rc = Signature.hash_path_into key ms ~max_name path ~pos:0 in
  Alcotest.(check int) (Printf.sprintf "scan of %S completes" path) Signature.scan_done rc;
  Signature.finalize_into key ms b;
  Signature.of_buf b

let check_equivalent key path =
  match Path.split path with
  | Error e -> Alcotest.failf "reference split of %S failed: %s" path (Errno.to_string e)
  | Ok comps ->
    let reference = reference_signature key comps in
    let inplace = inplace_signature key ~max_name:Path.max_name path in
    Alcotest.(check int)
      (Printf.sprintf "in-place hash of %S matches split+feed_string" path)
      0
      (Signature.compare_full reference inplace)

let test_inplace_hasher_equivalence () =
  let key = Signature.create_key ~seed:42 () in
  List.iter (check_equivalent key)
    [
      "/";
      "/a";
      "a";
      "/a/b/c";
      "a/b/c";
      "//a//b//c";
      "/a/b/c/";
      "a/b/";
      ".";
      "/.";
      "./a/./b/.";
      "/a/./b";
      "a//b///c////d";
      "/...";
      (* "..." is a regular name, not a dot-dot *)
      "/..a/b..";
      "/" ^ String.make 255 'n';
      (* longest legal component *)
    ]

let test_inplace_hasher_resume_mid_path () =
  (* Resuming from a non-empty state (the cwd case) must agree with feeding
     the whole canonical path at once. *)
  let key = Signature.create_key ~seed:43 () in
  let whole = inplace_signature key ~max_name:Path.max_name "/home/user/project/file" in
  let prefix_state =
    List.fold_left
      (fun st name -> Signature.feed_string key (Signature.feed_char key st '/') name)
      Signature.empty_state [ "home"; "user" ]
  in
  let ms = Signature.mstate () in
  let b = Signature.buf () in
  Signature.mstate_resume ms prefix_state;
  let rc = Signature.hash_path_into key ms ~max_name:Path.max_name "project/file" ~pos:0 in
  Alcotest.(check int) "resumed scan completes" Signature.scan_done rc;
  Signature.finalize_into key ms b;
  Alcotest.(check int) "resumed hash agrees" 0
    (Signature.compare_full whole (Signature.of_buf b))

let test_inplace_hasher_dotdot_cursor () =
  let key = Signature.create_key ~seed:7 () in
  let ms = Signature.mstate () in
  let b = Signature.buf () in
  let path = "a/../b" in
  let rc = Signature.hash_path_into key ms ~max_name:Path.max_name path ~pos:0 in
  Alcotest.(check int) "stops just past the dot-dot" 4 rc;
  Signature.finalize_into key ms b;
  Alcotest.(check int) "prefix state covers only \"a\"" 0
    (Signature.compare_full
       (reference_signature key [ Path.Name "a" ])
       (Signature.of_buf b));
  (* The caller re-seeds the state (here: from scratch, as if the walk
     stepped up to the root) and resumes at the returned cursor. *)
  Signature.mstate_reset ms;
  let rc2 = Signature.hash_path_into key ms ~max_name:Path.max_name path ~pos:rc in
  Alcotest.(check int) "rest of the path completes" Signature.scan_done rc2;
  Signature.finalize_into key ms b;
  Alcotest.(check int) "suffix hash is \"/b\"" 0
    (Signature.compare_full
       (reference_signature key [ Path.Name "b" ])
       (Signature.of_buf b))

let test_inplace_hasher_grow () =
  (* A fresh key starts with 512 positions of key material; a long component
     must grow it mid-feed and still agree with the pure hasher (which grows
     through the same tables). *)
  let key = Signature.create_key ~seed:9 () in
  let long = String.make 600 'x' in
  let path = "/" ^ long ^ "/" ^ String.make 700 'y' in
  let reference =
    reference_signature key [ Path.Name long; Path.Name (String.make 700 'y') ]
  in
  let inplace = inplace_signature key ~max_name:4096 path in
  Alcotest.(check int) "growth preserves equivalence" 0
    (Signature.compare_full reference inplace)

let test_inplace_hasher_toolong () =
  let key = Signature.create_key ~seed:11 () in
  let ms = Signature.mstate () in
  let path = "/ok/" ^ String.make (Path.max_name + 1) 'z' in
  let rc = Signature.hash_path_into key ms ~max_name:Path.max_name path ~pos:0 in
  Alcotest.(check int) "component over max_name is rejected" Signature.scan_toolong rc;
  (* parity with the list-based validation *)
  (match Path.split path with
  | Error Errno.ENAMETOOLONG -> ()
  | Error e -> Alcotest.failf "split: unexpected %s" (Errno.to_string e)
  | Ok _ -> Alcotest.fail "split accepted an over-long component")

(* --- intrusive DLHT churn --- *)

let dlht_of kernel (p : Proc.t) =
  let cfg = Kernel.config kernel in
  Dlht.of_namespace ~buckets:cfg.Config.dlht_buckets ~grow_load:cfg.Config.dlht_grow_load
    p.Proc.ns

let check_healthy what dlht =
  Alcotest.(check (list string)) (what ^ ": self_check clean") [] (Dlht.self_check dlht);
  let occ = Dlht.occupancy dlht in
  Alcotest.(check int)
    (what ^ ": occupancy agrees with population")
    (Dlht.population dlht) occ.Dlht.occ_entries

let test_dlht_churn () =
  let kernel, p = ram_kernel ~config:Config.optimized () in
  get "dir" (S.mkdir_p p "/dir");
  let name i = Printf.sprintf "/dir/f%d" i in
  let renamed i = Printf.sprintf "/dir/g%d" i in
  for i = 1 to 50 do
    get "create" (S.write_file p (name i) "x")
  done;
  for i = 1 to 50 do
    ignore (get "warm" (S.stat p (name i)))
  done;
  let dlht = dlht_of kernel p in
  Alcotest.(check bool) "warm walk populated the table" true (Dlht.population dlht >= 50);
  check_healthy "after warm" dlht;
  (* Unlink half: aggressive negative caching (§5.2) flips each dentry to a
     negative entry in place — the DLHT entry survives, population must not
     drift, and the ENOENT re-stats are served by the fastpath. *)
  let pop_before = Dlht.population dlht in
  for i = 1 to 25 do
    get "unlink" (S.unlink p (name i))
  done;
  check_healthy "after unlink churn" dlht;
  Alcotest.(check int) "unlink keeps negative entries resident" pop_before
    (Dlht.population dlht);
  let neg_before = counter kernel "fastpath_negative_hit" in
  for i = 1 to 25 do
    expect_err Errno.ENOENT "unlinked name misses" (S.stat p (name i))
  done;
  Alcotest.(check int) "ENOENT re-stats are fastpath negative hits"
    (neg_before + 25)
    (counter kernel "fastpath_negative_hit");
  for i = 1 to 25 do
    get "recreate" (S.write_file p (name i) "y")
  done;
  for i = 1 to 50 do
    ignore (get "re-warm" (S.stat p (name i)))
  done;
  check_healthy "after recreate" dlht;
  (* Rename churn: every rename shoots down the old path's entry. *)
  for i = 1 to 50 do
    get "rename" (S.rename p (name i) (renamed i))
  done;
  for i = 1 to 50 do
    ignore (get "warm renamed" (S.stat p (renamed i)))
  done;
  for i = 1 to 50 do
    expect_err Errno.ENOENT "old name gone" (S.stat p (name i))
  done;
  check_healthy "after rename churn" dlht;
  Kernel.drop_caches kernel;
  check_healthy "after drop_caches" dlht

let test_dlht_mount_alias_churn () =
  (* Re-signaturing under a different mount alias removes and re-inserts the
     dentry with a different signature; the chain splices must stay exact
     while two aliases fight over the same dentries. *)
  let kernel, p = ram_kernel ~config:Config.optimized () in
  get "tree" (S.mkdir_p p "/a/b");
  get "file" (S.write_file p "/a/b/t" "x");
  get "bp1" (S.mkdir_p p "/m1");
  get "bp2" (S.mkdir_p p "/m2");
  get "bind1" (S.bind_mount p ~src:"/a/b" ~dst:"/m1");
  get "bind2" (S.bind_mount p ~src:"/a/b" ~dst:"/m2");
  let dlht = dlht_of kernel p in
  for _ = 1 to 5 do
    ignore (get "via m1" (S.stat p "/m1/t"));
    ignore (get "via m2" (S.stat p "/m2/t"));
    ignore (get "direct" (S.stat p "/a/b/t"))
  done;
  Alcotest.(check bool) "aliases forced re-signatures" true
    (counter kernel "mount_alias_resignature" > 0);
  check_healthy "after alias ping-pong" dlht

let test_dlht_bucket_validation () =
  (* Baseline kernels never create a DLHT, so the namespace is free for a
     direct module-level check. *)
  let _kernel, p = ram_kernel ~config:Config.baseline () in
  Alcotest.check_raises "non-power-of-two rejected"
    (Invalid_argument "Dlht.of_namespace: bucket count must be a positive power of two")
    (fun () -> ignore (Dlht.of_namespace ~buckets:1000 ~grow_load:0 p.Proc.ns));
  Alcotest.check_raises "zero rejected"
    (Invalid_argument "Dlht.of_namespace: bucket count must be a positive power of two")
    (fun () -> ignore (Dlht.of_namespace ~buckets:0 ~grow_load:0 p.Proc.ns));
  let dlht = Dlht.of_namespace ~buckets:64 ~grow_load:0 p.Proc.ns in
  Alcotest.(check int) "fresh table is empty" 0 (Dlht.population dlht);
  let occ = Dlht.occupancy dlht in
  Alcotest.(check int) "64 buckets" 64 occ.Dlht.occ_buckets

(* --- incremental auto-resize --- *)

let test_dlht_incremental_resize () =
  (* Start tiny so the doublings are forced by an ordinary workload, then
     check the table grew without ever losing an entry: every warm re-stat
     must still be a fastpath hit, across and after the migrations. *)
  let config = { Config.optimized with Config.dlht_buckets = 16 } in
  let kernel, p = ram_kernel ~config () in
  get "dir" (S.mkdir_p p "/dir");
  let n = 300 in
  for i = 1 to n do
    get "create" (S.write_file p (Printf.sprintf "/dir/f%d" i) "x")
  done;
  for i = 1 to n do
    ignore (get "warm" (S.stat p (Printf.sprintf "/dir/f%d" i)))
  done;
  let dlht = dlht_of kernel p in
  Alcotest.(check bool) "table grew" true (Dlht.resizes dlht > 0);
  let occ = Dlht.occupancy dlht in
  Alcotest.(check bool) "bucket array doubled away from 16" true (occ.Dlht.occ_buckets > 16);
  (* grow_load bounds the load factor, so the longest chain stays short even
     though we crossed several doublings. *)
  Alcotest.(check bool) "chains stay bounded" true (occ.Dlht.occ_longest <= 16);
  check_healthy "mid-resize" dlht;
  let h0 = counter kernel "fastpath_hit" in
  for i = 1 to n do
    ignore (get "re-stat" (S.stat p (Printf.sprintf "/dir/f%d" i)))
  done;
  Alcotest.(check int) "every re-stat hit the fastpath across migrations" n
    (counter kernel "fastpath_hit" - h0);
  (* Drain any in-flight migration and make sure nothing was stranded in
     the pre-resize table. *)
  Dcache.with_write (Kernel.dcache kernel) (fun () -> Dlht.settle dlht);
  Alcotest.(check bool) "settled" false (Dlht.resizing dlht);
  let occ = Dlht.occupancy dlht in
  Alcotest.(check int) "no entries pending migration" 0 occ.Dlht.occ_old_pending;
  check_healthy "after settle" dlht;
  let h1 = counter kernel "fastpath_hit" in
  for i = 1 to n do
    ignore (get "settled re-stat" (S.stat p (Printf.sprintf "/dir/f%d" i)))
  done;
  Alcotest.(check int) "every re-stat hits after settle" n
    (counter kernel "fastpath_hit" - h1)

let test_dlht_sigless_scan_recovery () =
  (* Break the remove invariant on purpose — a chained dentry whose
     signature was cleared out from under the table — and check the
     defensive whole-table scan repairs the bucket and is counted. *)
  let kernel, p = ram_kernel ~config:Config.optimized () in
  get "tree" (S.mkdir_p p "/a/b");
  get "file" (S.write_file p "/a/b/t" "x");
  ignore (get "warm" (S.stat p "/a/b/t"));
  let fp = Kernel.fastpath kernel in
  let ctx = Proc.walk_ctx p in
  let d =
    match Fastpath.lookup_into fp ctx "/a/b/t" ~within:(fun _mnt d -> Ok d) with
    | Ok d -> d
    | Error e -> Alcotest.failf "lookup: %s" (Errno.to_string e)
  in
  let dlht = dlht_of kernel p in
  Alcotest.(check bool) "dentry is chained" true
    (d.Dcache_vfs.Types.d_dlht_ns <> None);
  let pop = Dlht.population dlht in
  Alcotest.(check int) "no scans yet" 0 (Dlht.sigless_scans dlht);
  Dcache.with_write (Kernel.dcache kernel) (fun () ->
      d.Dcache_vfs.Types.d_sig <- None;
      Dlht.remove d);
  Alcotest.(check int) "degraded removal was counted" 1 (Dlht.sigless_scans dlht);
  Alcotest.(check int) "entry left the table" (pop - 1) (Dlht.population dlht);
  check_healthy "after sigless removal" dlht;
  (* The next walk re-signatures and republishes; the table heals. *)
  ignore (get "re-stat" (S.stat p "/a/b/t"));
  Alcotest.(check int) "republished" pop (Dlht.population dlht);
  check_healthy "after republication" dlht

let test_warm_batch_zero_alloc () =
  (* The vectored front-end's whole pitch (§3.9) is amortization on top of
     the warm fastpath, so it inherits the same discipline: a warm all-hit
     submit — one shared validation window over N probes — must allocate
     zero minor-heap words and take zero rwlocks, per submit, not just
     per op. *)
  let module Batch = Dcache_syscalls.Batch in
  let kernel, p = ram_kernel ~config:Config.optimized () in
  get "tree" (S.mkdir_p p "/a/b/c");
  let n = 32 in
  let paths =
    Array.init n (fun i -> Printf.sprintf "/a/b/c/t%02d" i)
  in
  Array.iter (fun path -> get "file" (S.write_file p path "payload")) paths;
  let ring = Batch.create ~cap:n p in
  Array.iteri
    (fun i path ->
      let slot =
        match i mod 3 with
        | 0 -> Batch.push_stat ring path
        | 1 -> Batch.push_lstat ring path
        | _ -> Batch.push_access ring path Access.may_read
      in
      Alcotest.(check int) "slot" i slot)
    paths;
  (* One cold submit warms every dentry into the DLHT; the SQ persists
     across submits (only [reset] clears it), so the measured loop re-runs
     the identical batch. *)
  Batch.submit ring;
  for i = 0 to n - 1 do
    Alcotest.(check bool) (Printf.sprintf "slot %d ok" i) true (Batch.ok ring i)
  done;
  let submits0 = counter kernel "batch_submit" in
  let h0 = counter kernel "fastpath_hit" in
  let iters = 1_000 in
  Rwlock.reset_acquisition_counts ();
  let words = measure_minor_words iters (fun () -> Batch.submit ring) in
  let reads, writes = Rwlock.acquisition_counts () in
  Alcotest.(check int) "every submit ran" (iters + 2)
    (counter kernel "batch_submit" - submits0);
  Alcotest.(check int) "every probe was a fastpath hit"
    ((iters + 2) * n)
    (counter kernel "fastpath_hit" - h0);
  Alcotest.(check (float 0.0))
    (Printf.sprintf "zero minor-heap words over %d warm %d-op submits" iters n)
    0.0 words;
  Alcotest.(check (pair int int)) "zero rwlock acquisitions across all submits" (0, 0)
    (reads, writes);
  for i = 0 to n - 1 do
    Alcotest.(check bool) (Printf.sprintf "slot %d still ok" i) true (Batch.ok ring i)
  done

(* --- §5.1 cache-fed readdir allocation discipline ---

   The whole-listing scratch fill is the dirent analogue of the warm hit:
   after the first (cold, promoting, scratch-growing) call, every repeat
   on an unchanged DIR_COMPLETE directory must be a lockless seqcount-
   validated walk — zero minor-heap words, zero rwlock acquisitions, no
   stripe mutexes (asserted via the rwlock counts: the stripe sections all
   nest inside the read lock, so zero reads implies zero stripes). *)

let n_listing = 64

let test_warm_readdir_fill_zero_alloc () =
  let kernel, p = ram_kernel ~config:Config.optimized () in
  get "dir" (S.mkdir_p p "/ls");
  for i = 0 to n_listing - 1 do
    get "seed" (S.write_file p (Printf.sprintf "/ls/f%02d" i) "x")
  done;
  let fd = get "open" (S.openf p "/ls" [ Proc.O_RDONLY; Proc.O_DIRECTORY ]) in
  (* Cold fill: promotes the backend listing, marks DIR_COMPLETE, grows
     the scratch.  Everything after must be warm. *)
  let n = S.readdir_fill p fd in
  Alcotest.(check int) "cold fill sees every entry" n_listing n;
  let warm0 = counter kernel "readdir_scratch_warm" in
  let iters = 10_000 in
  Rwlock.reset_acquisition_counts ();
  let words =
    measure_minor_words iters (fun () ->
        if S.readdir_fill p fd <> n_listing then Alcotest.fail "short warm listing")
  in
  let locks = Rwlock.acquisition_counts () in
  Alcotest.(check int) "every fill took the lockless path" (iters + 2)
    (counter kernel "readdir_scratch_warm" - warm0);
  Alcotest.(check (float 0.0))
    (Printf.sprintf "zero minor-heap words over %d warm %d-entry listings" iters n_listing)
    0.0 words;
  Alcotest.(check (pair int int)) "zero rwlock acquisitions over warm listings" (0, 0)
    locks;
  (* A mutation devalidates exactly once: the next fill goes cold (stripe
     locked, re-promoted), the one after is warm again. *)
  get "churn" (S.write_file p "/ls/new" "y");
  Alcotest.(check int) "post-churn fill sees the new entry" (n_listing + 1)
    (S.readdir_fill p fd);
  let warm1 = counter kernel "readdir_scratch_warm" in
  Alcotest.(check int) "re-warmed" (n_listing + 1) (S.readdir_fill p fd);
  Alcotest.(check int) "second post-churn fill is warm again" 1
    (counter kernel "readdir_scratch_warm" - warm1)

let test_negative_list_eviction_bounded () =
  (* §6.3: negative dentries live on per-stripe bounded LRU lists.  A
     stat storm of absent names far beyond the cap must evict (counted),
     keep every list at or under the cap, and never disturb cache
     structure. *)
  let cap = 8 in
  let config = { Config.optimized with Config.neg_list_cap = cap } in
  let kernel, p = ram_kernel ~config () in
  let d = Kernel.dcache kernel in
  get "dirs" (S.mkdir_p p "/neg/a");
  get "dirs" (S.mkdir_p p "/neg/b");
  let storm = 40 * cap in
  for i = 0 to storm - 1 do
    let parent = if i land 1 = 0 then "a" else "b" in
    expect_err Errno.ENOENT "absent"
      (S.stat p (Printf.sprintf "/neg/%s/ghost%d" parent i))
  done;
  let occ = Dcache.neg_occupancy d in
  Array.iteri
    (fun i n ->
      if n > cap then
        Alcotest.failf "neg list %d holds %d entries over the cap %d" i n cap)
    occ;
  Alcotest.(check bool) "the storm forced evictions" true
    (counter kernel "neg_evicted" > 0);
  Alcotest.(check bool) "some negatives stayed resident" true
    (Array.fold_left ( + ) 0 occ > 0);
  (match Dcache.self_check d with
  | [] -> ()
  | problems -> Alcotest.failf "invariants violated:\n%s" (String.concat "\n" problems));
  (* Eviction preserves DIR_COMPLETE (detach without reclaim): a completed
     directory hit by the storm still serves absent names by verdict. *)
  ignore (get "complete" (S.readdir_path p "/neg/a"));
  for i = 0 to 4 * cap do
    expect_err Errno.ENOENT "post-complete absent"
      (S.stat p (Printf.sprintf "/neg/a/more%d" i))
  done;
  Alcotest.(check bool) "lists still bounded after the second storm" true
    (Array.for_all (fun n -> n <= cap) (Dcache.neg_occupancy d));
  (* Per-mount generation invalidation: one store devalues every cached
     negative; the names still read as absent (via the backend), and the
     stale entries are unhashed lazily as they are touched. *)
  get "invalidate" (S.invalidate_negatives p "/");
  Alcotest.(check bool) "generation bump counted" true
    (counter kernel "neg_gen_invalidations" > 0);
  (* ghost319 is the newest /neg/b negative, so the LRU still holds it and
     the walk must trip over its stale generation (ghost1 would long since
     have been evicted). *)
  expect_err Errno.ENOENT "still absent after invalidation"
    (S.stat p (Printf.sprintf "/neg/b/ghost%d" (storm - 1)));
  Alcotest.(check bool) "stale negatives were detected" true
    (counter kernel "walk_stale_negative" > 0);
  (* cap 0 disables tracking entirely: no list ever grows. *)
  let kernel0, p0 =
    ram_kernel ~config:{ Config.optimized with Config.neg_list_cap = 0 } ()
  in
  get "dir" (S.mkdir_p p0 "/z");
  for i = 0 to 99 do
    expect_err Errno.ENOENT "absent" (S.stat p0 (Printf.sprintf "/z/no%d" i))
  done;
  Alcotest.(check int) "cap 0 tracks nothing" 0
    (Array.fold_left ( + ) 0 (Dcache.neg_occupancy (Kernel.dcache kernel0)))

let suite =
  [
    Alcotest.test_case "warm fastpath hit allocates zero minor words" `Quick
      test_warm_hit_zero_alloc;
    Alcotest.test_case "warm DIR_COMPLETE readdir fill allocates zero minor words" `Quick
      test_warm_readdir_fill_zero_alloc;
    Alcotest.test_case "negative lists stay bounded under a stat storm" `Quick
      test_negative_list_eviction_bounded;
    Alcotest.test_case "warm all-hit batch submit allocates zero minor words" `Quick
      test_warm_batch_zero_alloc;
    Alcotest.test_case "warm live-lease hit allocates zero minor words" `Quick
      test_warm_lease_hit_zero_alloc;
    Alcotest.test_case "warm negative hit allocates zero minor words" `Quick
      test_warm_negative_hit_zero_alloc;
    Alcotest.test_case "armed trace ring stamp allocates zero minor words" `Quick
      test_armed_ring_stamp_zero_alloc;
    Alcotest.test_case "warm hit with armed ring allocates zero minor words" `Quick
      test_warm_hit_armed_ring_zero_alloc;
    Alcotest.test_case "profiler hooks allocate zero minor words (armed and disarmed)"
      `Quick test_profiler_hooks_zero_alloc;
    Alcotest.test_case "warm hit with armed profiler stays zero-alloc, zero-lock" `Quick
      test_warm_hit_armed_profiler_zero_alloc;
    Alcotest.test_case "snapshot recording allocates zero minor words" `Quick
      test_snapshot_recording_zero_alloc;
    Alcotest.test_case "prefix-resumed miss reuses snapshot scratch" `Quick
      test_prefix_resume_scratch_reuse;
    Alcotest.test_case "prefix negative fast-fail allocates zero minor words" `Quick
      test_prefix_negfail_zero_alloc;
    Alcotest.test_case "promoted deep negative stays zero-alloc warm" `Quick
      test_negfail_promotion_zero_alloc;
    Alcotest.test_case "in-place hasher matches split+feed_string" `Quick
      test_inplace_hasher_equivalence;
    Alcotest.test_case "in-place hasher resumes from cached state" `Quick
      test_inplace_hasher_resume_mid_path;
    Alcotest.test_case "in-place hasher dot-dot cursor protocol" `Quick
      test_inplace_hasher_dotdot_cursor;
    Alcotest.test_case "in-place hasher grows key material" `Quick test_inplace_hasher_grow;
    Alcotest.test_case "in-place hasher rejects over-long components" `Quick
      test_inplace_hasher_toolong;
    Alcotest.test_case "DLHT churn keeps chains exact" `Quick test_dlht_churn;
    Alcotest.test_case "DLHT mount-alias re-signature churn" `Quick
      test_dlht_mount_alias_churn;
    Alcotest.test_case "DLHT bucket-count validation" `Quick test_dlht_bucket_validation;
    Alcotest.test_case "DLHT incremental resize under workload" `Quick
      test_dlht_incremental_resize;
    Alcotest.test_case "DLHT sigless removal degrades loudly and heals" `Quick
      test_dlht_sigless_scan_recovery;
  ]
