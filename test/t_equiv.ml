(* Observational equivalence: random syscall sequences must behave
   identically on the baseline and the optimized kernel.  This is the
   paper's core compatibility claim — every optimization is transparent to
   applications (§1, §4.4). *)

open Dcache_types
module Kernel = Dcache_syscalls.Kernel
module Proc = Dcache_syscalls.Proc
module S = Dcache_syscalls.Syscalls
module Config = Dcache_vfs.Config
module Cred = Dcache_cred.Cred

(* Small vocabularies keep collisions (same path reused across ops) likely. *)
let names = [| "a"; "b"; "c"; "dd"; "ee" |]

type op =
  | Mkdir of string
  | Create of string * string
  | Unlink of string
  | Rmdir of string
  | Rename of string * string
  | Symlink of string * string
  | Link of string * string
  | Stat of string
  | Lstat of string
  | Read of string
  | Readdir of string
  | Chmod of string * int
  | Chdir of string
  | Getcwd
  | Access of string
  | Truncate of string * int
  | AsUser of op

let rec pp_op = function
  | Mkdir p -> "mkdir " ^ p
  | Create (p, data) -> Printf.sprintf "create %s %S" p data
  | Unlink p -> "unlink " ^ p
  | Rmdir p -> "rmdir " ^ p
  | Rename (a, b) -> Printf.sprintf "rename %s %s" a b
  | Symlink (t, p) -> Printf.sprintf "symlink %s -> %s" p t
  | Link (a, b) -> Printf.sprintf "link %s %s" a b
  | Stat p -> "stat " ^ p
  | Lstat p -> "lstat " ^ p
  | Read p -> "read " ^ p
  | Readdir p -> "readdir " ^ p
  | Chmod (p, m) -> Printf.sprintf "chmod %s %o" p m
  | Chdir p -> "chdir " ^ p
  | Getcwd -> "getcwd"
  | Access p -> "access " ^ p
  | Truncate (p, n) -> Printf.sprintf "truncate %s %d" p n
  | AsUser op -> "as-user " ^ pp_op op

let path_gen =
  QCheck.Gen.(
    let* depth = int_range 1 4 in
    let* comps = list_size (return depth) (oneofl (Array.to_list names)) in
    let* absolute = bool in
    let* dotdot = frequency [ (9, return false); (1, return true) ] in
    let comps = if dotdot && depth > 1 then List.mapi (fun i c -> if i = 1 then ".." else c) comps else comps in
    return ((if absolute then "/" else "") ^ String.concat "/" comps))

let op_gen =
  QCheck.Gen.(
    let base =
      [
        (3, map (fun p -> Mkdir p) path_gen);
        (4, map2 (fun p d -> Create (p, d)) path_gen (oneofl [ "x"; "data"; "0123456789" ]));
        (2, map (fun p -> Unlink p) path_gen);
        (1, map (fun p -> Rmdir p) path_gen);
        (2, map2 (fun a b -> Rename (a, b)) path_gen path_gen);
        (1, map2 (fun t p -> Symlink (t, p)) path_gen path_gen);
        (1, map2 (fun a b -> Link (a, b)) path_gen path_gen);
        (6, map (fun p -> Stat p) path_gen);
        (2, map (fun p -> Lstat p) path_gen);
        (2, map (fun p -> Read p) path_gen);
        (2, map (fun p -> Readdir p) path_gen);
        (1, map2 (fun p m -> Chmod (p, m)) path_gen (oneofl [ 0o755; 0o700; 0o000; 0o644 ]));
        (1, map (fun p -> Chdir p) path_gen);
        (1, return Getcwd);
        (2, map (fun p -> Access p) path_gen);
        (1, map2 (fun p n -> Truncate (p, n)) path_gen (oneofl [ 0; 3; 100 ]));
      ]
    in
    frequency ((2, map (fun op -> AsUser op) (frequency base)) :: base))

let ops_arbitrary =
  QCheck.make ~print:(fun ops -> String.concat "; " (List.map pp_op ops))
    QCheck.Gen.(list_size (int_range 1 60) op_gen)

(* Observations are normalized results: errno name, or a digest of the
   successful result.  Inode numbers are included — both kernels drive an
   identical ramfs, so even inos must agree. *)
let obs_of_attr (a : Attr.t) =
  Printf.sprintf "ino=%d kind=%c mode=%o size=%d nlink=%d" a.Attr.ino
    (File_kind.to_char a.Attr.kind) a.Attr.mode a.Attr.size a.Attr.nlink

let obs name = function
  | Ok v -> name ^ ":ok:" ^ v
  | Error e -> name ^ ":" ^ Errno.to_string e

let run_op root_p user_p op =
  let rec go p = function
    | AsUser op -> go user_p op
    | Mkdir path -> obs "mkdir" (Result.map (fun () -> "") (S.mkdir p path))
    | Create (path, data) -> obs "create" (Result.map (fun () -> "") (S.write_file p path data))
    | Unlink path -> obs "unlink" (Result.map (fun () -> "") (S.unlink p path))
    | Rmdir path -> obs "rmdir" (Result.map (fun () -> "") (S.rmdir p path))
    | Rename (a, b) -> obs "rename" (Result.map (fun () -> "") (S.rename p a b))
    | Symlink (t, path) -> obs "symlink" (Result.map (fun () -> "") (S.symlink p ~target:t path))
    | Link (a, b) -> obs "link" (Result.map (fun () -> "") (S.link p a b))
    | Stat path -> obs "stat" (Result.map obs_of_attr (S.stat p path))
    | Lstat path -> obs "lstat" (Result.map obs_of_attr (S.lstat p path))
    | Read path -> obs "read" (S.read_file p path)
    | Readdir path ->
      obs "readdir"
        (Result.map
           (fun entries ->
             entries
             |> List.map (fun e ->
                    Printf.sprintf "%s/%d/%c" e.Dcache_fs.Fs_intf.name e.Dcache_fs.Fs_intf.ino
                      (File_kind.to_char e.Dcache_fs.Fs_intf.kind))
             |> List.sort compare |> String.concat ",")
           (S.readdir_path p path))
    | Chmod (path, mode) -> obs "chmod" (Result.map (fun () -> "") (S.chmod p path mode))
    | Chdir path -> obs "chdir" (Result.map (fun () -> "") (S.chdir p path))
    | Getcwd -> obs "getcwd" (S.getcwd p)
    | Access path -> obs "access" (Result.map (fun () -> "") (S.access p path Access.may_read))
    | Truncate (path, n) -> obs "truncate" (Result.map (fun () -> "") (S.truncate p path n))
  in
  go root_p op

let run_trace config ops =
  let fs = Dcache_fs.Ramfs.create () in
  let kernel = Kernel.create ~config ~root_fs:fs () in
  let root_p = Proc.spawn kernel in
  let user_p = Proc.spawn ~cred:(Cred.make ~uid:1000 ~gid:1000 ()) kernel in
  List.map (fun op -> run_op root_p user_p op) ops

let equivalence_test extra_label config_b =
  QCheck.Test.make
    ~name:(Printf.sprintf "baseline == %s on random syscall traces" extra_label)
    ~count:150 ops_arbitrary
    (fun ops ->
      let base = run_trace Config.baseline ops in
      let opt = run_trace config_b ops in
      if base <> opt then begin
        let rec first_diff i = function
          | [], [] -> ()
          | a :: rest_a, b :: rest_b ->
            if a <> b then
              QCheck.Test.fail_reportf "op %d (%s):\n  baseline: %s\n  optimized: %s" i
                (pp_op (List.nth ops i)) a b
            else first_diff (i + 1) (rest_a, rest_b)
          | _ -> QCheck.Test.fail_reportf "trace length mismatch"
        in
        first_diff 0 (base, opt)
      end;
      true)

(* Re-running the same trace twice on one optimized kernel must agree with a
   fresh kernel on the second run's reads: cached state never goes stale. *)
let idempotence_test =
  QCheck.Test.make ~name:"optimized kernel: warm rerun of reads is stable" ~count:75
    ops_arbitrary
    (fun ops ->
      let fs = Dcache_fs.Ramfs.create () in
      let kernel = Kernel.create ~config:Config.optimized ~root_fs:fs () in
      let root_p = Proc.spawn kernel in
      let user_p = Proc.spawn ~cred:(Cred.make ~uid:1000 ~gid:1000 ()) kernel in
      ignore (List.map (fun op -> run_op root_p user_p op) ops);
      (* Now query state twice; the second (all-cached) pass must agree. *)
      let queries =
        List.filter_map
          (function
            | Stat _ | Lstat _ | Read _ | Readdir _ -> None
            | Mkdir p | Create (p, _) | Unlink p | Rmdir p | Rename (_, p)
            | Symlink (_, p) | Link (_, p) | Chmod (p, _) | Truncate (p, _) ->
              Some [ Stat p; Lstat p; Read p; Readdir p ]
            | Chdir _ | Getcwd | Access _ | AsUser _ -> None)
          ops
        |> List.concat
      in
      let pass () = List.map (fun op -> run_op root_p user_p op) queries in
      let cold = pass () in
      let warm = pass () in
      cold = warm)

(* Structural invariants hold after any operation sequence, on every
   configuration, including under eviction pressure. *)
let invariants_test name config =
  QCheck.Test.make ~name ~count:100 ops_arbitrary (fun ops ->
      let fs = Dcache_fs.Ramfs.create () in
      let kernel = Kernel.create ~config ~root_fs:fs () in
      let root_p = Proc.spawn kernel in
      let user_p = Proc.spawn ~cred:(Cred.make ~uid:1000 ~gid:1000 ()) kernel in
      ignore (List.map (fun op -> run_op root_p user_p op) ops);
      match Dcache_vfs.Dcache.self_check (Kernel.dcache kernel) with
      | [] -> true
      | problems ->
        QCheck.Test.fail_reportf "invariants violated:\n%s" (String.concat "\n" problems))

(* --- prefix-resume equivalence (§3.5) ---

   Deterministic deep-path churn: a 16-deep directory chain whose ancestors
   get warmed, then cold leaf lookups interleaved with renames, permission
   churn (including full search-permission revocation on an interior
   directory, observed by the unprivileged user) and unlinks.  The
   optimized kernel serves the cold misses through the prefix-resumed
   slowpath — the longest-cached-ancestor shortcut — while the baseline
   walks every path from the root; all observations must agree, and the
   optimized run must actually have taken resumes (else the test is
   vacuous). *)

let chain_names =
  [| "alpha"; "beta"; "gamma"; "delta"; "eps"; "zeta"; "eta"; "theta";
     "iota"; "kappa"; "lambda"; "mu"; "nu"; "xi"; "omicron"; "pi" |]

let prefix_path k = "/" ^ String.concat "/" (Array.to_list (Array.sub chain_names 0 k))

let deep_churn_ops seed =
  let rng = Random.State.make [| seed |] in
  let depth = Array.length chain_names in
  let mk = List.init depth (fun i -> Mkdir (prefix_path (i + 1))) in
  let body = ref [] in
  let emit op = body := op :: !body in
  emit (Stat (prefix_path depth));
  for i = 0 to 119 do
    let r = Random.State.int rng 100 in
    let k = 2 + Random.State.int rng (depth - 2) in
    if r < 35 then begin
      (* Cold leaf under the warm chain: the optimized side resumes from
         the deepest cached ancestor. *)
      let leaf = prefix_path depth ^ Printf.sprintf "/f%d" i in
      emit (Create (leaf, "x"));
      emit (Stat leaf)
    end
    else if r < 50 then
      (* Absent name under a cached interior dir: negative fast-fail
         territory once the dir is DIR_COMPLETE. *)
      emit (Stat (prefix_path k ^ "/nope" ^ string_of_int (i land 3)))
    else if r < 62 then begin
      (* Rename an interior directory away and back: any snapshot taken
         across the rename must be refused (§3.2 invalidation counter). *)
      let p = prefix_path k in
      let tmp = prefix_path (k - 1) ^ "/tmp" in
      emit (Rename (p, tmp));
      emit (Stat (prefix_path depth));
      emit (Rename (tmp, p));
      emit (Stat (prefix_path depth ^ "/f" ^ string_of_int (i / 2)))
    end
    else if r < 74 then begin
      (* Permission churn on an interior directory of the resumed prefix,
         including full revocation: the user's lookups below it must fail
         with EACCES on both kernels — resume may never skip the check. *)
      let p = prefix_path k in
      let mode = [| 0o755; 0o700; 0o000 |].(Random.State.int rng 3) in
      emit (Chmod (p, mode));
      emit (AsUser (Stat (prefix_path depth)));
      emit (AsUser (Stat (prefix_path depth ^ "/fz" ^ string_of_int i)));
      emit (Chmod (p, 0o755))
    end
    else if r < 86 then begin
      let leaf = prefix_path depth ^ Printf.sprintf "/f%d" (Random.State.int rng (i + 1)) in
      emit (Unlink leaf);
      emit (Stat leaf)
    end
    else begin
      emit (Readdir (prefix_path k));
      emit (Stat (prefix_path k ^ "/" ^ chain_names.(k)))
    end
  done;
  mk @ List.rev !body

let run_trace_counting config ops =
  let fs = Dcache_fs.Ramfs.create () in
  let kernel = Kernel.create ~config ~root_fs:fs () in
  let root_p = Proc.spawn kernel in
  let user_p = Proc.spawn ~cred:(Cred.make ~uid:1000 ~gid:1000 ()) kernel in
  let observations = List.map (fun op -> run_op root_p user_p op) ops in
  (observations, kernel)

let counter kernel key =
  try List.assoc key (Kernel.stats_snapshot kernel) with Not_found -> 0

let prefix_resume_churn_test seed =
  Alcotest.test_case (Printf.sprintf "prefix-resume deep churn [seed %d]" seed) `Quick
    (fun () ->
      let ops = deep_churn_ops seed in
      let base, _ = run_trace_counting Config.baseline ops in
      let opt, kernel = run_trace_counting Config.optimized ops in
      let rec first_diff i ops_left = function
        | [], [] -> ()
        | a :: rest_a, b :: rest_b ->
          let op, ops_rest =
            match ops_left with o :: r -> (pp_op o, r) | [] -> ("?", [])
          in
          if a <> b then
            Alcotest.failf "op %d (%s):\n  baseline: %s\n  optimized: %s" i op a b
          else first_diff (i + 1) ops_rest (rest_a, rest_b)
        | _ -> Alcotest.fail "trace length mismatch"
      in
      first_diff 0 ops (base, opt);
      Alcotest.(check bool) "prefix resumes exercised" true
        (counter kernel "fastpath_prefix_resume" > 0))

(* Focused revocation scenario: the user warms a deep prefix (populating
   their PCC down the chain), root revokes search permission on an interior
   directory, then the user cold-misses on a leaf that was never cached.
   The snapshot scan would offer a deep resume ancestor below the revoked
   directory; trusting it would yield ENOENT (the suffix walk never
   re-crosses the revoked dir).  Correctness demands EACCES — the chmod
   bumps every descendant's version, killing the PCC entries the resume
   validation depends on, and forcing the from-root walk. *)
let revocation_test =
  Alcotest.test_case "revoked interior search perm blocks prefix resume" `Quick
    (fun () ->
      List.iter
        (fun config ->
          let fs = Dcache_fs.Ramfs.create () in
          let kernel = Kernel.create ~config ~root_fs:fs () in
          let root_p = Proc.spawn kernel in
          let user_p = Proc.spawn ~cred:(Cred.make ~uid:1000 ~gid:1000 ()) kernel in
          let deep = prefix_path 8 in
          List.iteri
            (fun i _ ->
              match S.mkdir root_p (prefix_path (i + 1)) with
              | Ok () -> ()
              | Error e -> Alcotest.failf "mkdir: %s" (Errno.to_string e))
            (List.init 8 (fun i -> i));
          (match S.write_file root_p (deep ^ "/warm") "x" with
          | Ok () -> ()
          | Error e -> Alcotest.failf "create: %s" (Errno.to_string e));
          (* Warm the chain as the user: PCC entries for every prefix. *)
          (match S.stat user_p (deep ^ "/warm") with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "warm stat: %s" (Errno.to_string e));
          (* Root creates a leaf the user has never looked up, then revokes
             search permission two levels deep. *)
          (match S.write_file root_p (deep ^ "/cold") "y" with
          | Ok () -> ()
          | Error e -> Alcotest.failf "cold create: %s" (Errno.to_string e));
          (match S.chmod root_p (prefix_path 2) 0o000 with
          | Ok () -> ()
          | Error e -> Alcotest.failf "chmod: %s" (Errno.to_string e));
          (match S.stat user_p (deep ^ "/cold") with
          | Error Errno.EACCES -> ()
          | Ok _ -> Alcotest.fail "revoked prefix resolved for the user"
          | Error e ->
            Alcotest.failf "expected EACCES, got %s" (Errno.to_string e)))
        [ Config.baseline; Config.optimized ])

(* Deep-negative promotion (§5.2): once a DIR_COMPLETE fast-fail verdict is
   promoted to a real negative dentry, repeated probes of the same absent
   name are plain fastpath negative hits — and the application-visible
   behaviour stays exactly the baseline's ENOENT, including after the name
   is finally created. *)
let negfail_promotion_test =
  Alcotest.test_case "complete-dir fast-fail promotes to a negative dentry" `Quick
    (fun () ->
      let ops =
        [ Mkdir "/pd"; Create ("/pd/real", "x"); Readdir "/pd" ]
        @ List.concat_map
            (fun _ -> [ Stat "/pd/ghost"; Read "/pd/ghost"; Access "/pd/ghost" ])
            (List.init 6 (fun i -> i))
        @ [ Create ("/pd/ghost", "now"); Stat "/pd/ghost"; Read "/pd/ghost" ]
      in
      let base, _ = run_trace_counting Config.baseline ops in
      let opt, kernel = run_trace_counting Config.optimized ops in
      List.iteri
        (fun i (a, b) ->
          if a <> b then
            Alcotest.failf "op %d (%s):\n  baseline: %s\n  optimized: %s" i
              (pp_op (List.nth ops i)) a b)
        (List.combine base opt);
      Alcotest.(check bool) "fast-fail verdict was promoted" true
        (counter kernel "fastpath_negfail_promoted" > 0);
      Alcotest.(check bool) "later probes were warm negative hits" true
        (counter kernel "fastpath_negative_hit" > 0))

(* --- profiling transparency (§3.8) ---

   Arming the profiler (spans minted per syscall, sketch updates on every
   verdict, span-carrying ring stamps) must be invisible to applications:
   the same deterministic deep-churn trace, run disarmed and armed on the
   optimized kernel, must produce identical observations — and the armed
   run must actually have profiled something, else the test is vacuous. *)

let run_trace_armed config ops =
  let module Trace = Dcache_util.Trace in
  let module Profiler = Dcache_util.Profiler in
  Trace.reset ();
  Profiler.reset ();
  Trace.armed := true;
  Profiler.arm ();
  Fun.protect
    ~finally:(fun () ->
      Trace.armed := false;
      Profiler.disarm ();
      Trace.reset ();
      Profiler.reset ())
    (fun () ->
      let observations = run_trace config ops in
      (observations, List.length (Profiler.hot ()), Trace.recorded ()))

let profiling_transparency_test seed =
  Alcotest.test_case
    (Printf.sprintf "armed profiling is invisible to applications [seed %d]" seed)
    `Quick
    (fun () ->
      let ops = deep_churn_ops seed in
      let plain = run_trace Config.optimized ops in
      let armed, hot_slots, stamps = run_trace_armed Config.optimized ops in
      let rec first_diff i ops_left = function
        | [], [] -> ()
        | a :: rest_a, b :: rest_b ->
          let op, ops_rest =
            match ops_left with o :: r -> (pp_op o, r) | [] -> ("?", [])
          in
          if a <> b then
            Alcotest.failf "op %d (%s):\n  disarmed: %s\n  armed: %s" i op a b
          else first_diff (i + 1) ops_rest (rest_a, rest_b)
        | _ -> Alcotest.fail "trace length mismatch"
      in
      first_diff 0 ops (plain, armed);
      Alcotest.(check bool) "the sketch saw the workload" true (hot_slots > 0);
      Alcotest.(check bool) "the ring saw the workload" true (stamps > 0))

let profiling_transparency_property =
  QCheck.Test.make ~name:"armed profiling never changes syscall results" ~count:75
    ops_arbitrary
    (fun ops ->
      let plain = run_trace Config.optimized ops in
      let armed, _, _ = run_trace_armed Config.optimized ops in
      plain = armed)

(* --- batched submission equivalence (§3.9) ---

   A batch of N mixed probes (stat / lstat / access) drained through the
   vectored SQ/CQ front-end must return exactly the results of the same
   ops issued sequentially at the same point — under rename / chmod /
   unlink / create churn between rounds, in both orders (batch first, so
   its grouped phase-2 populates are observed by the sequential pass, and
   sequential first, so the batch runs all-warm). *)

module Batch = Dcache_syscalls.Batch

type probe = PStat of string | PLstat of string | PAccess of string

let pp_probe = function
  | PStat p -> "bstat " ^ p
  | PLstat p -> "blstat " ^ p
  | PAccess p -> "baccess " ^ p

let probe_sequential p = function
  | PStat path -> obs "stat" (Result.map obs_of_attr (S.stat p path))
  | PLstat path -> obs "lstat" (Result.map obs_of_attr (S.lstat p path))
  | PAccess path ->
    obs "access" (Result.map (fun () -> "") (S.access p path Access.may_read))

let probe_push ring = function
  | PStat path -> ignore (Batch.push_stat ring path)
  | PLstat path -> ignore (Batch.push_lstat ring path)
  | PAccess path -> ignore (Batch.push_access ring path Access.may_read)

let probe_obs ring k pr =
  let name = match pr with PStat _ -> "stat" | PLstat _ -> "lstat" | PAccess _ -> "access" in
  if Batch.ok ring k then
    let body = match pr with PAccess _ -> "" | _ -> obs_of_attr (Batch.attr ring k) in
    name ^ ":ok:" ^ body
  else name ^ ":" ^ Errno.to_string (Batch.errno ring k)

let batch_equiv_churn_test seed =
  Alcotest.test_case
    (Printf.sprintf "batched == sequential under churn [seed %d]" seed) `Quick
    (fun () ->
      let rng = Random.State.make [| seed |] in
      let fs = Dcache_fs.Ramfs.create () in
      let kernel = Kernel.create ~config:Config.optimized ~root_fs:fs () in
      let p = Proc.spawn kernel in
      let dirs = [| "/ba"; "/bb"; "/bc" |] in
      let req what = function
        | Ok _ -> ()
        | Error e -> Alcotest.failf "%s: %s" what (Errno.to_string e)
      in
      Array.iter (fun d -> req "mkdir" (S.mkdir p d)) dirs;
      Array.iter
        (fun d ->
          for i = 0 to 11 do
            req "file" (S.write_file p (Printf.sprintf "%s/f%d" d i) "x")
          done)
        dirs;
      req "symlink" (S.symlink p ~target:"/ba/f0" "/ba/ln");
      let n = 32 in
      let ring = Batch.create ~cap:n p in
      let random_path () =
        let d = dirs.(Random.State.int rng 3) in
        match Random.State.int rng 5 with
        | 0 -> d
        | 1 | 2 -> Printf.sprintf "%s/f%d" d (Random.State.int rng 14)
        | 3 -> Printf.sprintf "%s/nope%d" d (Random.State.int rng 4)
        | _ -> "/ba/ln"
      in
      let random_probe () =
        let path = random_path () in
        match Random.State.int rng 3 with
        | 0 -> PStat path
        | 1 -> PLstat path
        | _ -> PAccess path
      in
      for round = 0 to 19 do
        (match Random.State.int rng 4 with
        | 0 ->
          let d = dirs.(Random.State.int rng 3) in
          let i = Random.State.int rng 14 in
          ignore (S.rename p (Printf.sprintf "%s/f%d" d i) (Printf.sprintf "%s/g%d" d i))
        | 1 ->
          ignore
            (S.chmod p
               dirs.(Random.State.int rng 3)
               [| 0o755; 0o700; 0o500 |].(Random.State.int rng 3))
        | 2 ->
          ignore
            (S.unlink p
               (Printf.sprintf "%s/f%d" dirs.(Random.State.int rng 3)
                  (Random.State.int rng 14)))
        | _ ->
          ignore
            (S.write_file p
               (Printf.sprintf "%s/f%d" dirs.(Random.State.int rng 3)
                  (Random.State.int rng 14))
               "y"));
        let probes = Array.init n (fun _ -> random_probe ()) in
        Batch.reset ring;
        Array.iter (probe_push ring) probes;
        let batch_first = round land 1 = 0 in
        let batched, sequential =
          if batch_first then begin
            Batch.submit ring;
            let b = Array.mapi (fun k pr -> probe_obs ring k pr) probes in
            (b, Array.map (probe_sequential p) probes)
          end
          else begin
            let s = Array.map (probe_sequential p) probes in
            Batch.submit ring;
            (Array.mapi (fun k pr -> probe_obs ring k pr) probes, s)
          end
        in
        Array.iteri
          (fun k pr ->
            if batched.(k) <> sequential.(k) then
              Alcotest.failf "round %d probe %d (%s, %s):\n  batched: %s\n  sequential: %s"
                round k (pp_probe pr)
                (if batch_first then "batch first" else "sequential first")
                batched.(k) sequential.(k))
          probes
      done;
      Alcotest.(check bool) "batch submissions recorded" true
        (counter kernel "batch_submit" > 0);
      Alcotest.(check bool) "misses deferred to phase 2" true
        (counter kernel "fastpath_batch_deferred" > 0))

let probe_gen =
  QCheck.Gen.(
    let* path = path_gen in
    let* k = int_range 0 2 in
    return (match k with 0 -> PStat path | 1 -> PLstat path | _ -> PAccess path))

let batch_property =
  QCheck.Test.make ~name:"batched probes match sequential probes after any trace"
    ~count:100
    (QCheck.make
       ~print:(fun (ops, probes) ->
         String.concat "; " (List.map pp_op ops)
         ^ " | "
         ^ String.concat "; " (List.map pp_probe probes))
       QCheck.Gen.(
         pair (list_size (int_range 1 40) op_gen) (list_size (int_range 1 40) probe_gen)))
    (fun (ops, probes) ->
      let fs = Dcache_fs.Ramfs.create () in
      let kernel = Kernel.create ~config:Config.optimized ~root_fs:fs () in
      let root_p = Proc.spawn kernel in
      let user_p = Proc.spawn ~cred:(Cred.make ~uid:1000 ~gid:1000 ()) kernel in
      ignore (List.map (fun op -> run_op root_p user_p op) ops);
      let probes = Array.of_list probes in
      let ring = Batch.create ~cap:(Array.length probes) root_p in
      Array.iter (probe_push ring) probes;
      Batch.submit ring;
      let batched = Array.mapi (fun k pr -> probe_obs ring k pr) probes in
      let sequential = Array.map (probe_sequential root_p) probes in
      if batched <> sequential then begin
        let k = ref 0 in
        Array.iteri (fun i (b : string) -> if b <> sequential.(i) && !k = 0 then k := i + 1) batched;
        let i = max 0 (!k - 1) in
        QCheck.Test.fail_reportf "probe %d (%s):\n  batched: %s\n  sequential: %s" i
          (pp_probe probes.(i)) batched.(i) sequential.(i)
      end;
      true)

(* --- cache-fed readdir equivalence (§5.1) ---

   The promoted DIR_COMPLETE listing, the lockless scratch fill and the
   batched readdir all claim to return exactly what the backend holds.
   Check all four views of every directory against the file system's own
   [readdir] — the ground truth the cache is supposed to mirror — under
   create / unlink / rename churn, and require the optimized run to have
   actually served listings warm (else the test is vacuous). *)

let norm_dirent name ino kind =
  Printf.sprintf "%s/%d/%c" name ino (File_kind.to_char kind)

let norm_listing l = String.concat "," (List.sort compare l)

(* Ground truth straight from the backend, bypassing every cache layer. *)
let backend_listing fs p path =
  match S.stat p path with
  | Error e -> Alcotest.failf "backend stat %s: %s" path (Errno.to_string e)
  | Ok a -> (
    match fs.Dcache_fs.Fs_intf.readdir a.Attr.ino with
    | Error e -> Alcotest.failf "backend readdir %s: %s" path (Errno.to_string e)
    | Ok entries ->
      norm_listing
        (List.map
           (fun e ->
             norm_dirent e.Dcache_fs.Fs_intf.name e.Dcache_fs.Fs_intf.ino
               e.Dcache_fs.Fs_intf.kind)
           entries))

let getdents_listing p path =
  match S.readdir_path p path with
  | Error e -> Alcotest.failf "readdir_path %s: %s" path (Errno.to_string e)
  | Ok entries ->
    norm_listing
      (List.map
         (fun e ->
           norm_dirent e.Dcache_fs.Fs_intf.name e.Dcache_fs.Fs_intf.ino
             e.Dcache_fs.Fs_intf.kind)
         entries)

(* The scratch fill: open, fill the per-process dirent arrays, read them
   back out. *)
let scratch_listing p path =
  match S.openf p path [ Proc.O_RDONLY; Proc.O_DIRECTORY ] with
  | Error e -> Alcotest.failf "open %s: %s" path (Errno.to_string e)
  | Ok fd ->
    let r =
      match S.readdir_fill p fd with
      | n ->
        let ds = p.Proc.dirents in
        let rec go i acc =
          if i >= n then acc
          else
            go (i + 1)
              (norm_dirent ds.Proc.ds_names.(i) ds.Proc.ds_inos.(i) ds.Proc.ds_kinds.(i)
              :: acc)
        in
        norm_listing (go 0 [])
      | exception S.Readdir_errno e ->
        Alcotest.failf "readdir_fill %s: %s" path (Errno.to_string e)
    in
    ignore (S.close p fd);
    r

let batch_listing ring k =
  if not (Batch.ok ring k) then
    Alcotest.failf "batch readdir slot %d: %s" k (Errno.to_string (Batch.errno ring k));
  norm_listing
    (List.init (Batch.dir_len ring k) (fun j ->
         norm_dirent (Batch.dir_name ring k j) (Batch.dir_ino ring k j)
           (Batch.dir_kind ring k j)))

let readdir_equiv_churn_test seed =
  Alcotest.test_case
    (Printf.sprintf "cache-fed readdir == backend listing under churn [seed %d]" seed)
    `Quick
    (fun () ->
      let rng = Random.State.make [| seed |] in
      let fs = Dcache_fs.Ramfs.create () in
      let kernel = Kernel.create ~config:Config.optimized ~root_fs:fs () in
      let p = Proc.spawn kernel in
      let dirs = [| "/ra"; "/rb"; "/rc" |] in
      let req what = function
        | Ok _ -> ()
        | Error e -> Alcotest.failf "%s: %s" what (Errno.to_string e)
      in
      Array.iter (fun d -> req "mkdir" (S.mkdir p d)) dirs;
      Array.iter
        (fun d ->
          for i = 0 to 7 do
            req "seed" (S.write_file p (Printf.sprintf "%s/f%d" d i) "x")
          done)
        dirs;
      let ring = Batch.create ~cap:(Array.length dirs) p in
      for round = 0 to 39 do
        (* Halfway through, drop the whole cache: mkdir-born directories are
           complete from birth, so without this the fs-fed promotion path
           (readdir_from_fs -> promote) would never run. *)
        if round = 20 then Kernel.drop_caches kernel;
        (* One mutation per round; renames move entries across directories
           too, so both sides' generations churn. *)
        let d = dirs.(Random.State.int rng 3) in
        let d' = dirs.(Random.State.int rng 3) in
        let i = Random.State.int rng 12 in
        (match Random.State.int rng 5 with
        | 0 -> ignore (S.write_file p (Printf.sprintf "%s/f%d" d i) "y")
        | 1 -> ignore (S.unlink p (Printf.sprintf "%s/f%d" d i))
        | 2 ->
          ignore (S.rename p (Printf.sprintf "%s/f%d" d i) (Printf.sprintf "%s/g%d" d' i))
        | 3 -> ignore (S.mkdir p (Printf.sprintf "%s/sub%d" d (i land 3)))
        | _ ->
          (* create over a (possibly) cached negative: the shortcut path *)
          ignore (S.write_file p (Printf.sprintf "%s/n%d" d i) "z"));
        Array.iter
          (fun dir ->
            let truth = backend_listing fs p dir in
            Alcotest.(check string)
              (Printf.sprintf "round %d: getdents of %s" round dir)
              truth (getdents_listing p dir);
            Alcotest.(check string)
              (Printf.sprintf "round %d: scratch fill of %s" round dir)
              truth (scratch_listing p dir);
            (* twice: the second fill is the warm lockless path *)
            Alcotest.(check string)
              (Printf.sprintf "round %d: warm scratch fill of %s" round dir)
              truth (scratch_listing p dir))
          dirs;
        Batch.reset ring;
        Array.iter (fun dir -> ignore (Batch.push_readdir ring dir)) dirs;
        Batch.submit ring;
        Array.iteri
          (fun k dir ->
            Alcotest.(check string)
              (Printf.sprintf "round %d: batched readdir of %s" round dir)
              (backend_listing fs p dir) (batch_listing ring k))
          dirs
      done;
      Alcotest.(check bool) "listings were promoted into the cache" true
        (counter kernel "readdir_promoted" > 0);
      Alcotest.(check bool) "warm fills took the lockless path" true
        (counter kernel "readdir_scratch_warm" > 0);
      Alcotest.(check bool) "cache served listings" true
        (counter kernel "readdir_from_cache" > 0);
      match Dcache_vfs.Dcache.self_check (Kernel.dcache kernel) with
      | [] -> ()
      | problems ->
        Alcotest.failf "invariants violated:\n%s" (String.concat "\n" problems))

let rec op_paths = function
  | AsUser op -> op_paths op
  | Mkdir p | Unlink p | Rmdir p | Stat p | Lstat p | Read p | Readdir p | Chdir p
  | Access p ->
    [ p ]
  | Create (p, _) | Chmod (p, _) | Truncate (p, _) -> [ p ]
  | Rename (a, b) | Link (a, b) -> [ a; b ]
  | Symlink (_, p) -> [ p ]
  | Getcwd -> []

let readdir_equiv_property =
  QCheck.Test.make ~name:"cache-fed readdir matches the backend after any trace"
    ~count:100 ops_arbitrary
    (fun ops ->
      let fs = Dcache_fs.Ramfs.create () in
      let kernel = Kernel.create ~config:Config.optimized ~root_fs:fs () in
      let root_p = Proc.spawn kernel in
      let user_p = Proc.spawn ~cred:(Cred.make ~uid:1000 ~gid:1000 ()) kernel in
      ignore (List.map (fun op -> run_op root_p user_p op) ops);
      (* Reset any chdir the trace performed so relative candidate paths
         resolve consistently across the three views. *)
      (match S.chdir root_p "/" with Ok () -> () | Error _ -> ());
      List.iter
        (fun path ->
          match S.stat root_p path with
          | Ok a when a.Attr.kind = File_kind.Directory ->
            let truth = backend_listing fs root_p path in
            let g = getdents_listing root_p path in
            let s1 = scratch_listing root_p path in
            let s2 = scratch_listing root_p path in
            if g <> truth || s1 <> truth || s2 <> truth then
              QCheck.Test.fail_reportf
                "dir %s:\n  backend:  %s\n  getdents: %s\n  scratch:  %s\n  warm:     %s"
                path truth g s1 s2
          | _ -> ())
        ("/" :: List.concat_map op_paths ops);
      true)

let suite =
  [
    QCheck_alcotest.to_alcotest (equivalence_test "optimized" Config.optimized);
    QCheck_alcotest.to_alcotest
      (equivalence_test "optimized(lexical-dotdot disabled ablations)"
         {
           Config.optimized with
           Config.dir_completeness = false;
           deep_negative = false;
           symlink_aliases = false;
         });
    QCheck_alcotest.to_alcotest
      (equivalence_test "fastpath-only" { Config.baseline with Config.fastpath = true });
    QCheck_alcotest.to_alcotest
      (equivalence_test "tiny-cache eviction"
         { Config.optimized with Config.max_dentries = 16 });
    QCheck_alcotest.to_alcotest idempotence_test;
    prefix_resume_churn_test 1;
    prefix_resume_churn_test 1337;
    prefix_resume_churn_test 9001;
    revocation_test;
    negfail_promotion_test;
    profiling_transparency_test 1;
    profiling_transparency_test 1337;
    profiling_transparency_test 9001;
    QCheck_alcotest.to_alcotest profiling_transparency_property;
    batch_equiv_churn_test 1;
    batch_equiv_churn_test 1337;
    batch_equiv_churn_test 9001;
    QCheck_alcotest.to_alcotest batch_property;
    readdir_equiv_churn_test 1;
    readdir_equiv_churn_test 1337;
    readdir_equiv_churn_test 9001;
    QCheck_alcotest.to_alcotest readdir_equiv_property;
    QCheck_alcotest.to_alcotest (invariants_test "dcache invariants [baseline]" Config.baseline);
    QCheck_alcotest.to_alcotest (invariants_test "dcache invariants [optimized]" Config.optimized);
    QCheck_alcotest.to_alcotest
      (invariants_test "dcache invariants [tiny cache]"
         { Config.optimized with Config.max_dentries = 12 });
  ]
